// Command csplan computes a guideline cycle-stealing schedule for a
// named life function and prints the periods, the t0 bracket, the
// expected work, and the comparison against the [BCLR97] optimum where
// one is known.
//
// Usage:
//
//	csplan -life uniform -L 1000 -c 1
//	csplan -life geomdec -halflife 32 -c 1
//	csplan -life geominc -L 64 -c 0.5
//	csplan -life poly -d 3 -L 500 -c 2
//	csplan -life powerlaw -d 2 -c 1        # existence diagnostics
//
// Exit status: 0 on success, 1 when planning fails, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	discretepkg "repro/internal/discrete"
	"repro/internal/lifefn"
	"repro/internal/optimal"
	"repro/internal/sched"
	"repro/internal/worstcase"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("csplan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		lifeName = fs.String("life", "uniform", "life function: uniform, poly, geomdec, geominc, powerlaw, weibull")
		lifespan = fs.Float64("L", 1000, "potential lifespan (uniform, poly, geominc)")
		halfLife = fs.Float64("halflife", 32, "half-life (geomdec)")
		d        = fs.Float64("d", 2, "exponent (poly, powerlaw) or shape (weibull)")
		scale    = fs.Float64("scale", 32, "scale (weibull)")
		c        = fs.Float64("c", 1, "per-period communication overhead")
		maxShow  = fs.Int("show", 12, "max periods to print")
		discrete = fs.Bool("discrete", false, "also compute the exact integer-period optimum (DP)")
		q        = fs.Int("q", 0, "also compute the worst-case optimum for q adversarial interruptions")
	)
	if err := fs.Parse(argv); err != nil {
		// Parse already printed the error and usage to stderr.
		return 2
	}

	life, err := buildLife(*lifeName, *lifespan, *halfLife, *d, *scale)
	if err != nil {
		fmt.Fprintln(stderr, "csplan:", err)
		return 2
	}

	pl, err := core.NewPlanner(life, *c, core.PlanOptions{})
	if err != nil {
		fmt.Fprintln(stderr, "csplan:", err)
		return 1
	}
	plan, err := pl.PlanBest()
	if err != nil {
		fmt.Fprintln(stderr, "csplan:", fmt.Errorf("planning failed: %w", err))
		return 1
	}

	fmt.Fprintf(stdout, "life function : %s (shape: %s)\n", life, life.Shape())
	fmt.Fprintf(stdout, "overhead c    : %g\n", *c)
	fmt.Fprintf(stdout, "t0 bracket    : [%.6g, %.6g]  (Thm 3.2 lower %.6g, Thm 3.3 upper %.6g, Lemma 3.1 upper %.6g)\n",
		plan.Bracket.Lo, plan.Bracket.Hi,
		plan.Bracket.Detail.Thm32Lower, plan.Bracket.Detail.Thm33Upper, plan.Bracket.Detail.Lemma31Upper)
	fmt.Fprintf(stdout, "chosen t0     : %.6g\n", plan.T0)
	fmt.Fprintf(stdout, "periods (m=%d): ", plan.Schedule.Len())
	for i := 0; i < plan.Schedule.Len() && i < *maxShow; i++ {
		fmt.Fprintf(stdout, "%.4g ", plan.Schedule.Period(i))
	}
	if plan.Schedule.Len() > *maxShow {
		fmt.Fprintf(stdout, "... (+%d more)", plan.Schedule.Len()-*maxShow)
	}
	fmt.Fprintf(stdout, "\ntotal duration: %.6g\n", plan.Schedule.Total())
	fmt.Fprintf(stdout, "expected work : %.6g\n", plan.ExpectedWork)

	printOptimalComparison(stdout, life, *c, plan)
	printExistence(stdout, life, *c)
	if *discrete {
		printDiscrete(stdout, stderr, life, *c, plan)
	}
	if *q > 0 {
		printWorstCase(stdout, stderr, life, *c, *q)
	}
	return 0
}

func printDiscrete(stdout, stderr io.Writer, life lifefn.Life, c float64, plan core.Plan) {
	horizon := discretepkg.HorizonFor(life, 1e-9, 1<<16)
	dp, err := discretepkg.Optimal(life, c, horizon)
	if err != nil {
		fmt.Fprintln(stderr, "csplan: discrete DP:", err)
		return
	}
	rounded, err := discretepkg.RoundSchedule(plan.Schedule, c)
	if err != nil {
		fmt.Fprintln(stderr, "csplan: rounding:", err)
		return
	}
	eRounded := sched.ExpectedWork(rounded, life, c)
	fmt.Fprintf(stdout, "integer DP    : E %.6g with m=%d; rounded guideline E %.6g (loss %.4f%%)\n",
		dp.ExpectedWork, dp.Schedule.Len(), eRounded,
		100*(1-eRounded/dp.ExpectedWork))
}

func printWorstCase(stdout, stderr io.Writer, life lifefn.Life, c float64, q int) {
	horizon := life.Horizon()
	if math.IsInf(horizon, 1) {
		fmt.Fprintln(stdout, "worst-case    : needs a bounded lifespan (skipped)")
		return
	}
	res, err := worstcase.Optimal(horizon, c, q)
	if err != nil {
		fmt.Fprintln(stderr, "csplan: worst case:", err)
		return
	}
	fmt.Fprintf(stdout, "worst-case q=%d: guarantee %.6g with m=%d equal periods (closed form %.6g); E under p: %.6g\n",
		q, res.Guaranteed, res.Periods,
		worstcase.ClosedFormGuarantee(horizon, c, q),
		sched.ExpectedWork(res.Schedule, life, c))
}

func buildLife(name string, lifespan, halfLife, d, scale float64) (lifefn.Life, error) {
	switch name {
	case "uniform":
		return lifefn.NewUniform(lifespan)
	case "poly":
		return lifefn.NewPoly(int(d), lifespan)
	case "geomdec":
		if !(halfLife > 0) {
			return nil, fmt.Errorf("csplan: half-life must be positive, got %g", halfLife)
		}
		return lifefn.NewGeomDecreasing(math.Pow(2, 1/halfLife))
	case "geominc":
		return lifefn.NewGeomIncreasing(lifespan)
	case "powerlaw":
		return lifefn.NewPowerLaw(d)
	case "weibull":
		return lifefn.NewWeibull(d, scale)
	default:
		return nil, fmt.Errorf("csplan: unknown life function %q", name)
	}
}

func printOptimalComparison(stdout io.Writer, life lifefn.Life, c float64, plan core.Plan) {
	var (
		res optimal.Result
		err error
		ok  = true
	)
	switch f := life.(type) {
	case lifefn.Uniform:
		res, err = optimal.Uniform(f, c)
	case lifefn.GeomDecreasing:
		res, err = optimal.GeomDecreasing(f, c, 1e-12, 0)
	case lifefn.GeomIncreasing:
		res, err = optimal.GeomIncreasing(f, c)
	default:
		ok = false
	}
	if !ok || err != nil || !(res.ExpectedWork > 0) {
		return
	}
	fmt.Fprintf(stdout, "[BCLR97] opt  : t0 %.6g, E %.6g  (guideline/optimal = %.5f)\n",
		res.T0, res.ExpectedWork, plan.ExpectedWork/res.ExpectedWork)
}

func printExistence(stdout io.Writer, life lifefn.Life, c float64) {
	ad, err := core.AdmitsOptimal(life, c, core.PlanOptions{})
	if err != nil || ad.Admits {
		return
	}
	fmt.Fprintf(stdout, "warning       : no optimal schedule exists (%s); the plan above is best-effort\n", ad.Reason)
}
