// Command csplan computes a guideline cycle-stealing schedule for a
// named life function and prints the periods, the t0 bracket, the
// expected work, and the comparison against the [BCLR97] optimum where
// one is known.
//
// Usage:
//
//	csplan -life uniform -L 1000 -c 1
//	csplan -life geomdec -halflife 32 -c 1
//	csplan -life geominc -L 64 -c 0.5
//	csplan -life poly -d 3 -L 500 -c 2
//	csplan -life powerlaw -d 2 -c 1        # existence diagnostics
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	discretepkg "repro/internal/discrete"
	"repro/internal/lifefn"
	"repro/internal/optimal"
	"repro/internal/sched"
	"repro/internal/worstcase"
)

func main() {
	var (
		lifeName = flag.String("life", "uniform", "life function: uniform, poly, geomdec, geominc, powerlaw, weibull")
		lifespan = flag.Float64("L", 1000, "potential lifespan (uniform, poly, geominc)")
		halfLife = flag.Float64("halflife", 32, "half-life (geomdec)")
		d        = flag.Float64("d", 2, "exponent (poly, powerlaw) or shape (weibull)")
		scale    = flag.Float64("scale", 32, "scale (weibull)")
		c        = flag.Float64("c", 1, "per-period communication overhead")
		maxShow  = flag.Int("show", 12, "max periods to print")
		discrete = flag.Bool("discrete", false, "also compute the exact integer-period optimum (DP)")
		q        = flag.Int("q", 0, "also compute the worst-case optimum for q adversarial interruptions")
	)
	flag.Parse()

	life, err := buildLife(*lifeName, *lifespan, *halfLife, *d, *scale)
	if err != nil {
		fatal(err)
	}

	pl, err := core.NewPlanner(life, *c, core.PlanOptions{})
	if err != nil {
		fatal(err)
	}
	plan, err := pl.PlanBest()
	if err != nil {
		fatal(fmt.Errorf("planning failed: %w", err))
	}

	fmt.Printf("life function : %s (shape: %s)\n", life, life.Shape())
	fmt.Printf("overhead c    : %g\n", *c)
	fmt.Printf("t0 bracket    : [%.6g, %.6g]  (Thm 3.2 lower %.6g, Thm 3.3 upper %.6g, Lemma 3.1 upper %.6g)\n",
		plan.Bracket.Lo, plan.Bracket.Hi,
		plan.Bracket.Detail.Thm32Lower, plan.Bracket.Detail.Thm33Upper, plan.Bracket.Detail.Lemma31Upper)
	fmt.Printf("chosen t0     : %.6g\n", plan.T0)
	fmt.Printf("periods (m=%d): ", plan.Schedule.Len())
	for i := 0; i < plan.Schedule.Len() && i < *maxShow; i++ {
		fmt.Printf("%.4g ", plan.Schedule.Period(i))
	}
	if plan.Schedule.Len() > *maxShow {
		fmt.Printf("... (+%d more)", plan.Schedule.Len()-*maxShow)
	}
	fmt.Printf("\ntotal duration: %.6g\n", plan.Schedule.Total())
	fmt.Printf("expected work : %.6g\n", plan.ExpectedWork)

	printOptimalComparison(life, *c, plan)
	printExistence(life, *c)
	if *discrete {
		printDiscrete(life, *c, plan)
	}
	if *q > 0 {
		printWorstCase(life, *c, *q)
	}
}

func printDiscrete(life lifefn.Life, c float64, plan core.Plan) {
	horizon := discretepkg.HorizonFor(life, 1e-9, 1<<16)
	dp, err := discretepkg.Optimal(life, c, horizon)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csplan: discrete DP:", err)
		return
	}
	rounded, err := discretepkg.RoundSchedule(plan.Schedule, c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csplan: rounding:", err)
		return
	}
	eRounded := sched.ExpectedWork(rounded, life, c)
	fmt.Printf("integer DP    : E %.6g with m=%d; rounded guideline E %.6g (loss %.4f%%)\n",
		dp.ExpectedWork, dp.Schedule.Len(), eRounded,
		100*(1-eRounded/dp.ExpectedWork))
}

func printWorstCase(life lifefn.Life, c float64, q int) {
	horizon := life.Horizon()
	if math.IsInf(horizon, 1) {
		fmt.Println("worst-case    : needs a bounded lifespan (skipped)")
		return
	}
	res, err := worstcase.Optimal(horizon, c, q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csplan: worst case:", err)
		return
	}
	fmt.Printf("worst-case q=%d: guarantee %.6g with m=%d equal periods (closed form %.6g); E under p: %.6g\n",
		q, res.Guaranteed, res.Periods,
		worstcase.ClosedFormGuarantee(horizon, c, q),
		sched.ExpectedWork(res.Schedule, life, c))
}

func buildLife(name string, lifespan, halfLife, d, scale float64) (lifefn.Life, error) {
	switch name {
	case "uniform":
		return lifefn.NewUniform(lifespan)
	case "poly":
		return lifefn.NewPoly(int(d), lifespan)
	case "geomdec":
		if !(halfLife > 0) {
			return nil, fmt.Errorf("csplan: half-life must be positive, got %g", halfLife)
		}
		return lifefn.NewGeomDecreasing(math.Pow(2, 1/halfLife))
	case "geominc":
		return lifefn.NewGeomIncreasing(lifespan)
	case "powerlaw":
		return lifefn.NewPowerLaw(d)
	case "weibull":
		return lifefn.NewWeibull(d, scale)
	default:
		return nil, fmt.Errorf("csplan: unknown life function %q", name)
	}
}

func printOptimalComparison(life lifefn.Life, c float64, plan core.Plan) {
	var (
		res optimal.Result
		err error
		ok  = true
	)
	switch f := life.(type) {
	case lifefn.Uniform:
		res, err = optimal.Uniform(f, c)
	case lifefn.GeomDecreasing:
		res, err = optimal.GeomDecreasing(f, c, 1e-12, 0)
	case lifefn.GeomIncreasing:
		res, err = optimal.GeomIncreasing(f, c)
	default:
		ok = false
	}
	if !ok || err != nil || !(res.ExpectedWork > 0) {
		return
	}
	fmt.Printf("[BCLR97] opt  : t0 %.6g, E %.6g  (guideline/optimal = %.5f)\n",
		res.T0, res.ExpectedWork, plan.ExpectedWork/res.ExpectedWork)
}

func printExistence(life lifefn.Life, c float64) {
	ad, err := core.AdmitsOptimal(life, c, core.PlanOptions{})
	if err != nil || ad.Admits {
		return
	}
	fmt.Printf("warning       : no optimal schedule exists (%s); the plan above is best-effort\n", ad.Reason)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csplan:", err)
	os.Exit(1)
}
