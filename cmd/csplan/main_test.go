package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"ok", []string{"-life", "uniform", "-L", "100", "-c", "1"}, 0},
		{"geomdec", []string{"-life", "geomdec", "-halflife", "32"}, 0},
		{"discrete", []string{"-life", "uniform", "-L", "50", "-discrete"}, 0},
		{"worst case", []string{"-life", "uniform", "-L", "50", "-q", "2"}, 0},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"help", []string{"-h"}, 2},
		{"bad life", []string{"-life", "cauchy"}, 2},
		{"bad halflife", []string{"-life", "geomdec", "-halflife", "-1"}, 2},
		{"bad lifespan", []string{"-life", "uniform", "-L", "-5"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.argv, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstderr: %s", tc.argv, got, tc.want, stderr.String())
			}
		})
	}
}

func TestRunReportsPlan(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-life", "uniform", "-L", "100"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	for _, want := range []string{"t0 bracket", "expected work", "[BCLR97] opt"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("report missing %q:\n%s", want, stdout.String())
		}
	}
}
