package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const sampleStatus = `{
  "phase": "running",
  "policy": "guideline",
  "elapsed_sec": 2.5,
  "events_total": 12000,
  "events_per_sec": 4800,
  "tasks_total": 4000,
  "tasks_done": 900,
  "episodes": 42,
  "policies": [
    {"policy": "guideline", "state": "running", "episodes": 42,
     "committed_work": 1234.5, "mean_committed_per_episode": 29.4,
     "tasks_done": 900, "tasks_total": 4000, "drained": false}
  ],
  "quantiles": {
    "cs_bundle_latency": {"p50": 12.5, "p90": 20, "p99": 31.5, "p999": 44}
  }
}`

func statusServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/csrun" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRunRendersSnapshot(t *testing.T) {
	srv := statusServer(t, sampleStatus)
	var stdout, stderr bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	if got := run([]string{"-addr", addr, "-count", "1", "-plain"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"phase=running", "guideline", "900/4000", "cs_bundle_latency", "12.5", "31.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Error("-plain output contains ANSI clear sequences")
	}
}

func TestRunStopsWhenDone(t *testing.T) {
	srv := statusServer(t, `{"phase": "done", "elapsed_sec": 1}`)
	var stdout, stderr bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	// No -count: the "done" phase alone must terminate the loop.
	if got := run([]string{"-addr", addr, "-plain"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "phase=done") {
		t.Errorf("final frame missing phase=done:\n%s", stdout.String())
	}
}

func TestRunExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-no-such-flag"}, &stdout, &stderr); got != 2 {
		t.Errorf("bad flag: run = %d, want 2", got)
	}
	if got := run([]string{"-addr", ""}, &stdout, &stderr); got != 2 {
		t.Errorf("empty addr: run = %d, want 2", got)
	}
	// A port nothing listens on must fail cleanly.
	if got := run([]string{"-addr", "127.0.0.1:1", "-count", "1"}, &stdout, &stderr); got != 1 {
		t.Errorf("unreachable: run = %d, want 1", got)
	}
}
