package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const sampleStatus = `{
  "phase": "running",
  "policy": "guideline",
  "elapsed_sec": 2.5,
  "events_total": 12000,
  "events_per_sec": 4800,
  "tasks_total": 4000,
  "tasks_done": 900,
  "episodes": 42,
  "policies": [
    {"policy": "guideline", "state": "running", "episodes": 42,
     "committed_work": 1234.5, "mean_committed_per_episode": 29.4,
     "tasks_done": 900, "tasks_total": 4000, "drained": false}
  ],
  "quantiles": {
    "cs_bundle_latency": {"p50": 12.5, "p90": 20, "p99": 31.5, "p999": 44}
  }
}`

func statusServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/csrun" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRunRendersSnapshot(t *testing.T) {
	srv := statusServer(t, sampleStatus)
	var stdout, stderr bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	if got := run([]string{"-addr", addr, "-count", "1", "-plain"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"phase=running", "guideline", "900/4000", "cs_bundle_latency", "12.5", "31.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Error("-plain output contains ANSI clear sequences")
	}
}

const sampleTraces = `{
  "stats": {"offered": 10, "kept": 2, "capacity": 2048, "stored": 2},
  "traces": [
    {"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "span_id": "00f067aa0ba902b7",
     "route": "estimate", "status": 200, "total_ms": 88.5, "cache": "miss",
     "sampled_by": "slow",
     "breakdown": {"queue_ms": 3.1, "compute_ms": 80.2, "total_ms": 88.5}},
    {"trace_id": "aaaa2f3577b34da6a3ce929d0e0e4736", "span_id": "11f067aa0ba902b7",
     "route": "plan", "status": 429, "total_ms": 0.4, "sampled_by": "error",
     "breakdown": {"total_ms": 0.4}}
  ]
}`

// -traces renders the slowest sampled requests beneath the dashboard.
func TestRunRendersSlowestTraces(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/debug/csrun":
			_, _ = w.Write([]byte(sampleStatus))
		case "/debug/traces":
			if r.URL.Query().Get("order") != "slowest" || r.URL.Query().Get("limit") != "2" {
				t.Errorf("traces query = %q", r.URL.RawQuery)
			}
			_, _ = w.Write([]byte(sampleTraces))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	var stdout, stderr bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	if got := run([]string{"-addr", addr, "-count", "1", "-plain", "-traces", "2"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"slowest traces", "4bf92f3577b34da6a3ce929d0e0e4736", "estimate",
		"88.50", "80.20", "429", "error", "slow", "miss",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace table missing %q:\n%s", want, out)
		}
	}
}

// A status server without a trace store must not kill the monitor.
func TestRunTracesUnavailable(t *testing.T) {
	srv := statusServer(t, sampleStatus)
	var stdout, stderr bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	if got := run([]string{"-addr", addr, "-count", "1", "-plain", "-traces", "3"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "traces: unavailable") {
		t.Errorf("missing unavailable notice:\n%s", stdout.String())
	}
}

// csserve exposes /debug/traces but no /debug/csrun: with -traces the
// monitor must degrade to a traces-only view rather than exit 1 —
// unless the trace endpoint is missing too.
func TestRunTracesOnlyServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/traces" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(sampleTraces))
	}))
	t.Cleanup(srv.Close)
	var stdout, stderr bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	if got := run([]string{"-addr", addr, "-count", "1", "-plain", "-traces", "2"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "status: unavailable") {
		t.Errorf("missing status-unavailable notice:\n%s", out)
	}
	if !strings.Contains(out, "slowest traces") || !strings.Contains(out, "4bf92f3577b34da6a3ce929d0e0e4736") {
		t.Errorf("traces-only view missing the trace table:\n%s", out)
	}

	// Both endpoints missing is a dead server: exit 1.
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	t.Cleanup(deadSrv.Close)
	stdout.Reset()
	stderr.Reset()
	deadAddr := strings.TrimPrefix(deadSrv.URL, "http://")
	if got := run([]string{"-addr", deadAddr, "-count", "1", "-plain", "-traces", "2"}, &stdout, &stderr); got != 1 {
		t.Fatalf("run against 404-everything = %d, want 1", got)
	}
}

func TestRunStopsWhenDone(t *testing.T) {
	srv := statusServer(t, `{"phase": "done", "elapsed_sec": 1}`)
	var stdout, stderr bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	// No -count: the "done" phase alone must terminate the loop.
	if got := run([]string{"-addr", addr, "-plain"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "phase=done") {
		t.Errorf("final frame missing phase=done:\n%s", stdout.String())
	}
}

func TestRunExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-no-such-flag"}, &stdout, &stderr); got != 2 {
		t.Errorf("bad flag: run = %d, want 2", got)
	}
	if got := run([]string{"-addr", ""}, &stdout, &stderr); got != 2 {
		t.Errorf("empty addr: run = %d, want 2", got)
	}
	// A port nothing listens on must fail cleanly.
	if got := run([]string{"-addr", "127.0.0.1:1", "-count", "1"}, &stdout, &stderr); got != 1 {
		t.Errorf("unreachable: run = %d, want 1", got)
	}
}

const sampleSLO = `{
  "availability_objective": 0.999,
  "latency_objective": 0.99,
  "latency_threshold_ms": 250,
  "uptime_seconds": 120,
  "windows": [
    {"window": "5m0s", "requests": 600, "errors": 30, "error_rate": 0.05,
     "error_burn_rate": 50, "slow": 6, "slow_rate": 0.0105, "latency_burn_rate": 1.05},
    {"window": "1h0m0s", "requests": 600, "errors": 30, "error_rate": 0.05,
     "error_burn_rate": 50, "slow": 6, "slow_rate": 0.0105, "latency_burn_rate": 1.05},
    {"window": "6h0m0s", "requests": 600, "errors": 30, "error_rate": 0.05,
     "error_burn_rate": 50, "slow": 6, "slow_rate": 0.0105, "latency_burn_rate": 1.05}
  ],
  "total": {"window": "since_start", "requests": 600, "errors": 30,
    "error_rate": 0.05, "error_burn_rate": 50, "slow": 6,
    "slow_rate": 0.0105, "latency_burn_rate": 1.05},
  "alerts": [
    {"sli": "availability", "severity": "page", "short_window": "5m0s",
     "long_window": "1h0m0s", "burn_threshold": 14.4, "firing": true},
    {"sli": "latency", "severity": "ticket", "short_window": "1h0m0s",
     "long_window": "6h0m0s", "burn_threshold": 6, "firing": false}
  ]
}`

// -slo renders the burn-rate table and alert states beneath the
// dashboard, degrading with a notice when the endpoint is absent.
func TestRunRendersSLO(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/debug/csrun":
			_, _ = w.Write([]byte(sampleStatus))
		case "/debug/slo":
			_, _ = w.Write([]byte(sampleSLO))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	var stdout, stderr bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	if got := run([]string{"-addr", addr, "-count", "1", "-plain", "-slo"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"slo  availability>=0.999", "5m0s", "since_start",
		"50.00", "FIRING", "alert latency", "ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SLO view missing %q:\n%s", want, out)
		}
	}

	// Status-only server: the SLO block degrades to a notice.
	plain := statusServer(t, sampleStatus)
	stdout.Reset()
	stderr.Reset()
	plainAddr := strings.TrimPrefix(plain.URL, "http://")
	if got := run([]string{"-addr", plainAddr, "-count", "1", "-plain", "-slo"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "slo: unavailable") {
		t.Errorf("missing unavailable notice:\n%s", stdout.String())
	}
}

// An SLO-only server (csserve without -traces polling) must keep the
// monitor alive; a server with neither endpoint exits 1.
func TestRunSLOOnlyServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/slo" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(sampleSLO))
	}))
	t.Cleanup(srv.Close)
	var stdout, stderr bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://")
	if got := run([]string{"-addr", addr, "-count", "1", "-plain", "-slo"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "status: unavailable") || !strings.Contains(stdout.String(), "slo  availability") {
		t.Errorf("SLO-only view wrong:\n%s", stdout.String())
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	t.Cleanup(dead.Close)
	stdout.Reset()
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	if got := run([]string{"-addr", deadAddr, "-count", "1", "-plain", "-slo"}, &stdout, &stderr); got != 1 {
		t.Fatalf("run against 404-everything = %d, want 1", got)
	}
}
