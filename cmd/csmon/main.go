// Command csmon is a live terminal monitor for a running csfarm (or
// any command serving the /debug/csrun status endpoint): it polls the
// endpoint and renders a refreshing dashboard of run phase, events/sec,
// per-policy E(S;p) progress and latency quantile summaries.
//
// Usage:
//
//	csmon -addr localhost:9090                 # refresh until the run ends
//	csmon -addr localhost:9090 -interval 250ms
//	csmon -addr localhost:9090 -count 1 -plain # one snapshot, no ANSI
//	csmon -addr localhost:8080 -traces 5       # also show the 5 slowest
//	                                           # recent request traces
//	csmon -addr localhost:8080 -slo            # also show SLO burn rates
//
// With -traces N the dashboard also polls /debug/traces (csserve's
// tail-sampled request trace store) and renders the N slowest recent
// requests with their per-phase latency breakdown. With -slo it also
// polls /debug/slo and renders the rolling-window error/latency burn
// rates and the multi-window alert states. Any endpoint may be missing
// — csserve has no /debug/csrun, csfarm has no trace store or SLO
// tracker — and the dashboard degrades to whichever is present; only
// when nothing answers does it exit 1.
//
// Exit status: 0 when the monitored run reaches phase "done" (or after
// -count polls), 1 when the endpoint cannot be fetched or parsed, 2 on
// usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("csmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "localhost:9090", "host:port of the monitored command's -metrics-addr server")
		interval = fs.Duration("interval", time.Second, "poll interval")
		count    = fs.Int("count", 0, "stop after this many polls (0: until the run is done)")
		plain    = fs.Bool("plain", false, "append frames instead of clearing the terminal (for logs and pipes)")
		traces   = fs.Int("traces", 0, "also show the N slowest recent request traces from /debug/traces (0 disables)")
		slo      = fs.Bool("slo", false, "also show SLO burn rates and alert states from /debug/slo")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *addr == "" {
		fmt.Fprintln(stderr, "csmon: -addr is required")
		return 2
	}

	url := "http://" + *addr + "/debug/csrun"
	client := &http.Client{Timeout: 5 * time.Second}
	for polls := 0; ; {
		st, statusErr := fetch(client, url)
		if !*plain {
			// ANSI clear-screen + home keeps one refreshing frame.
			fmt.Fprint(stdout, "\x1b[2J\x1b[H")
		}
		if statusErr == nil {
			render(stdout, *addr, st)
		} else if *traces > 0 || *slo {
			// csserve has a trace store but no run status; monitoring
			// just the traces is still useful, so note the gap and go
			// on. Only when the trace fetch fails too is there nothing
			// left to monitor.
			fmt.Fprintf(stdout, "csmon %s  status: unavailable (%v)\n", *addr, statusErr)
		} else {
			fmt.Fprintln(stderr, "csmon:", statusErr)
			return 1
		}
		if *traces > 0 {
			tracesURL := fmt.Sprintf("http://%s/debug/traces?order=slowest&limit=%d", *addr, *traces)
			recs, err := fetchTraces(client, tracesURL)
			switch {
			case err == nil:
				renderTraces(stdout, recs)
			case statusErr != nil:
				fmt.Fprintln(stderr, "csmon:", err)
				return 1
			default:
				// The status endpoint may live on a server without a
				// trace store; keep monitoring, note the gap.
				fmt.Fprintf(stdout, "traces: unavailable (%v)\n", err)
			}
		}
		if *slo {
			snap, err := fetchSLO(client, "http://"+*addr+"/debug/slo")
			switch {
			case err == nil:
				renderSLO(stdout, snap)
			case statusErr != nil && *traces == 0:
				fmt.Fprintln(stderr, "csmon:", err)
				return 1
			default:
				fmt.Fprintf(stdout, "slo: unavailable (%v)\n", err)
			}
		}
		polls++
		if st.Phase == "done" || (*count > 0 && polls >= *count) {
			return 0
		}
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, url string) (obs.RunStatus, error) {
	var st obs.RunStatus
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decoding %s: %w", url, err)
	}
	return st, nil
}

func fetchTraces(client *http.Client, url string) ([]obs.TraceRecord, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var body struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return body.Traces, nil
}

func fetchSLO(client *http.Client, url string) (obs.SLOSnapshot, error) {
	var snap obs.SLOSnapshot
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decoding %s: %w", url, err)
	}
	return snap, nil
}

func renderSLO(w io.Writer, snap obs.SLOSnapshot) {
	fmt.Fprintf(w, "slo  availability>=%.4g  latency: %.4g under %.0fms  uptime=%.0fs\n",
		snap.AvailabilityObjective, snap.LatencyObjective, snap.LatencyThresholdMS, snap.UptimeSeconds)
	fmt.Fprintf(w, "%-12s %9s %7s %10s %9s %7s %10s %9s\n",
		"window", "requests", "errors", "err_rate", "err_burn", "slow", "slow_rate", "lat_burn")
	rows := append(append([]obs.SLOWindow(nil), snap.Windows...), snap.Total)
	for _, win := range rows {
		fmt.Fprintf(w, "%-12s %9d %7d %10.4f %9.2f %7d %10.4f %9.2f\n",
			win.Window, win.Requests, win.Errors, win.ErrorRate, win.ErrorBurnRate,
			win.Slow, win.SlowRate, win.LatencyBurnRate)
	}
	for _, a := range snap.Alerts {
		state := "ok"
		if a.Firing {
			state = "FIRING"
		}
		fmt.Fprintf(w, "alert %-12s %-6s burn>=%-5.3g over %s+%s: %s\n",
			a.SLI, a.Severity, a.BurnThreshold, a.ShortWindow, a.LongWindow, state)
	}
}

func renderTraces(w io.Writer, recs []obs.TraceRecord) {
	if len(recs) == 0 {
		fmt.Fprintln(w, "traces: none sampled yet")
		return
	}
	fmt.Fprintf(w, "%-32s %-9s %4s %9s %8s %8s %8s %6s %-6s\n",
		"slowest traces", "route", "code", "total_ms", "queue", "coalesce", "compute", "cache", "why")
	for _, r := range recs {
		fmt.Fprintf(w, "%-32s %-9s %4d %9.2f %8.2f %8.2f %8.2f %6s %-6s\n",
			r.TraceID, r.Route, r.Status, r.TotalMS,
			r.Breakdown["queue_ms"], r.Breakdown["coalesce_ms"], r.Breakdown["compute_ms"],
			r.Cache, r.SampledBy)
	}
}

func render(w io.Writer, addr string, st obs.RunStatus) {
	fmt.Fprintf(w, "csmon %s  phase=%s  elapsed=%.1fs  events=%d  ev/s=%.0f",
		addr, st.Phase, st.ElapsedSec, st.EventsTotal, st.EventsPerSec)
	if st.FlightDropped > 0 {
		fmt.Fprintf(w, "  flight_dropped=%d", st.FlightDropped)
	}
	fmt.Fprintln(w)
	if len(st.Policies) > 0 {
		fmt.Fprintf(w, "%-16s %-8s %9s %12s %10s %11s %10s\n",
			"policy", "state", "episodes", "committed", "E(S;p)", "tasks", "makespan")
		for _, p := range st.Policies {
			tasks := fmt.Sprintf("%d/%d", p.TasksDone, p.TasksTotal)
			makespan := "-"
			if p.State == "done" || p.State == "failed" {
				makespan = fmt.Sprintf("%.0f", p.Makespan)
				if !p.Drained {
					makespan += "!"
				}
			}
			fmt.Fprintf(w, "%-16s %-8s %9d %12.1f %10.2f %11s %10s\n",
				p.Policy, p.State, p.Episodes, p.Committed, p.MeanCommitted, tasks, makespan)
		}
	}
	if len(st.Quantiles) > 0 {
		names := make([]string, 0, len(st.Quantiles))
		for name := range st.Quantiles {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "%-28s %10s %10s %10s %10s\n", "quantiles", "p50", "p90", "p99", "p999")
		for _, name := range names {
			q := st.Quantiles[name]
			fmt.Fprintf(w, "%-28s %10.3g %10.3g %10.3g %10.3g\n",
				name, q["p50"], q["p90"], q["p99"], q["p999"])
		}
	}
}
