package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRunExitCodes(t *testing.T) {
	small := []string{"-workers", "2", "-tasks", "40", "-policies", "fixed:25"}
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"ok", small, 0},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"help", []string{"-h"}, 2},
		{"bad dist", []string{"-dist", "cauchy"}, 2},
		{"bad policy", append(append([]string{}, small[:4]...), "-policies", "nope"), 1},
		{"bad trace format", append(append([]string{}, small...), "-trace", filepath.Join(t.TempDir(), "x"), "-trace-format", "xml"), 2},
		{"not drained", append(append([]string{}, small...), "-maxtime", "5"), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.argv, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstderr: %s", tc.argv, got, tc.want, stderr.String())
			}
		})
	}
}

func TestRunUsageOnFlagError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	run([]string{"-no-such-flag"}, &stdout, &stderr)
	if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-policies") {
		t.Errorf("flag error did not print usage:\n%s", stderr.String())
	}
}

// TestRunProgress: -progress prints at least one live line (the final
// flush on shutdown) without changing the exit code or the table.
func TestRunProgress(t *testing.T) {
	var stdout, stderr bytes.Buffer
	argv := []string{"-workers", "2", "-tasks", "40", "-policies", "fixed:25",
		"-progress", "-progress-every", "10ms", "-flight", "64"}
	if got := run(argv, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	if !strings.Contains(stderr.String(), "csfarm: [") {
		t.Errorf("no progress lines on stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "fixed:25") {
		t.Errorf("result table missing:\n%s", stdout.String())
	}
}

// TestStatusEndpoint drives the board through a policy run shape and
// asserts /debug/csrun serves the live snapshot as valid JSON.
func TestStatusEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	counting := &obs.CountingSink{}
	counting.Emit(obs.Event{Kind: "dispatch"})
	bd := newBoard(reg, counting, nil, 2, 40)
	bd.startPolicy("fixed:25")
	reg.Quantiles("cs_bundle_latency", "").Observe(12.5)

	srv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetStatus(bd.snapshot)

	resp, err := http.Get("http://" + srv.Addr() + "/debug/csrun")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/csrun = %d", resp.StatusCode)
	}
	var st obs.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status is not valid JSON: %v", err)
	}
	if st.Phase != "running" || st.Policy != "fixed:25" || st.EventsTotal != 1 {
		t.Errorf("status = %+v", st)
	}
	if _, ok := st.Quantiles["cs_bundle_latency"]; !ok {
		t.Errorf("status missing bundle latency quantiles: %+v", st.Quantiles)
	}
}

// TestRunChromeTrace drives the full CLI path: a farm run with -trace
// -trace-format chrome must leave behind a valid trace_event JSON file.
func TestRunChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	argv := []string{"-workers", "2", "-tasks", "40", "-policies", "fixed:25",
		"-trace", path, "-trace-format", "chrome"}
	if got := run(argv, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}
}
