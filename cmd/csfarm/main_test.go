package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	small := []string{"-workers", "2", "-tasks", "40", "-policies", "fixed:25"}
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"ok", small, 0},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"help", []string{"-h"}, 2},
		{"bad dist", []string{"-dist", "cauchy"}, 2},
		{"bad policy", append(append([]string{}, small[:4]...), "-policies", "nope"), 1},
		{"bad trace format", append(append([]string{}, small...), "-trace", filepath.Join(t.TempDir(), "x"), "-trace-format", "xml"), 2},
		{"not drained", append(append([]string{}, small...), "-maxtime", "5"), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.argv, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstderr: %s", tc.argv, got, tc.want, stderr.String())
			}
		})
	}
}

func TestRunUsageOnFlagError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	run([]string{"-no-such-flag"}, &stdout, &stderr)
	if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-policies") {
		t.Errorf("flag error did not print usage:\n%s", stderr.String())
	}
}

// TestRunChromeTrace drives the full CLI path: a farm run with -trace
// -trace-format chrome must leave behind a valid trace_event JSON file.
func TestRunChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	argv := []string{"-workers", "2", "-tasks", "40", "-policies", "fixed:25",
		"-trace", path, "-trace-format", "chrome"}
	if got := run(argv, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}
}
