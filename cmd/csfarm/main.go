// Command csfarm simulates a data-parallel task farm over a network of
// borrowable workstations and compares chunking policies end to end —
// the workload the paper's introduction motivates, at the system level.
//
// Usage:
//
//	csfarm                                  # defaults: 8 workers, 4000 tasks
//	csfarm -workers 16 -tasks 20000 -c 2
//	csfarm -dist bimodal -lo 0.5 -hi 6
//	csfarm -policies guideline,fixed:25,allatonce
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/rng"
)

func main() {
	var (
		workers  = flag.Int("workers", 8, "number of borrowable workstations")
		tasks    = flag.Int("tasks", 4000, "number of tasks in the job")
		overhead = flag.Float64("c", 1, "per-bundle communication overhead")
		distName = flag.String("dist", "uniform", "task duration distribution: uniform, lognormal, bimodal, pareto")
		lo       = flag.Float64("lo", 0.5, "min task duration")
		hi       = flag.Float64("hi", 3, "max task duration")
		policies = flag.String("policies", "guideline,fixed:25,allatonce", "comma-separated policies: guideline, progressive, fixed:<chunk>, allatonce")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		maxTime  = flag.Float64("maxtime", 1e7, "abort horizon")
	)
	flag.Parse()

	dist, err := parseDist(*distName)
	if err != nil {
		fatal(err)
	}

	// Heterogeneous office: alternating memoryless and bounded owners,
	// mixed speeds.
	lives := make([]lifefn.Life, *workers)
	speeds := make([]float64, *workers)
	for i := range lives {
		var l lifefn.Life
		var err error
		if i%2 == 0 {
			l, err = lifefn.NewGeomDecreasing(math.Pow(2, 1.0/(30+10*float64(i%5))))
		} else {
			l, err = lifefn.NewUniform(100 + 50*float64(i%5))
		}
		if err != nil {
			fatal(err)
		}
		lives[i] = l
		speeds[i] = 0.5 + 0.5*float64(i%3)
	}

	fmt.Printf("%-16s %10s %12s %12s %10s %8s %9s\n",
		"policy", "makespan", "committed", "lost", "overhead", "effcy%", "episodes")
	for _, polSpec := range strings.Split(*policies, ",") {
		polSpec = strings.TrimSpace(polSpec)
		ws := make([]nowsim.Worker, *workers)
		for i := range ws {
			factory, err := policyFactory(polSpec, lives[i], *overhead)
			if err != nil {
				fatal(err)
			}
			ws[i] = nowsim.Worker{
				ID:    i,
				Owner: nowsim.LifeOwner{Life: lives[i]},
				BusySampler: func(r *rng.Source) float64 {
					return r.Uniform(10, 40)
				},
				PolicyFactory: factory,
				Speed:         speeds[i],
			}
		}
		pool, err := nowsim.NewWorkload(nowsim.WorkloadSpec{
			Tasks: *tasks, Dist: dist, Lo: *lo, Hi: *hi, Mu: 0, Sigma: 0.75,
		}, rng.New(*seed))
		if err != nil {
			fatal(err)
		}
		res, err := nowsim.RunFarm(nowsim.FarmConfig{
			Workers:  ws,
			Overhead: *overhead,
			Seed:     *seed,
			MaxTime:  *maxTime,
		}, pool)
		if err != nil {
			fatal(err)
		}
		status := ""
		if !res.Drained {
			status = " (NOT DRAINED)"
		}
		fmt.Printf("%-16s %10.0f %12.0f %12.0f %10.0f %8.1f %9d%s\n",
			polSpec, res.Makespan, res.CommittedWork, res.LostWork,
			res.OverheadTime, 100*res.Efficiency(), res.Episodes, status)
	}
}

func parseDist(name string) (nowsim.DurationDist, error) {
	switch name {
	case "uniform":
		return nowsim.DistUniform, nil
	case "lognormal":
		return nowsim.DistLogNormal, nil
	case "bimodal":
		return nowsim.DistBimodal, nil
	case "pareto":
		return nowsim.DistParetoCapped, nil
	default:
		return 0, fmt.Errorf("csfarm: unknown distribution %q", name)
	}
}

func policyFactory(spec string, l lifefn.Life, c float64) (func() nowsim.Policy, error) {
	switch {
	case spec == "guideline":
		pl, err := core.NewPlanner(l, c, core.PlanOptions{})
		if err != nil {
			return nil, err
		}
		plan, err := pl.PlanBest()
		if err != nil {
			return nil, fmt.Errorf("csfarm: planning for %s: %w", l, err)
		}
		return func() nowsim.Policy {
			return nowsim.NewSchedulePolicy(plan.Schedule, "guideline")
		}, nil
	case spec == "progressive":
		return func() nowsim.Policy {
			p, err := nowsim.NewProgressivePolicy(l, c, core.PlanOptions{ScanPoints: 16})
			if err != nil {
				return &nowsim.FixedChunkPolicy{Chunk: 10 * c}
			}
			return p
		}, nil
	case strings.HasPrefix(spec, "fixed:"):
		chunk, err := strconv.ParseFloat(strings.TrimPrefix(spec, "fixed:"), 64)
		if err != nil || !(chunk > 0) {
			return nil, fmt.Errorf("csfarm: bad fixed chunk in %q", spec)
		}
		return func() nowsim.Policy { return &nowsim.FixedChunkPolicy{Chunk: chunk} }, nil
	case spec == "allatonce":
		return func() nowsim.Policy { return &nowsim.FixedChunkPolicy{Chunk: 1e6} }, nil
	default:
		return nil, fmt.Errorf("csfarm: unknown policy %q", spec)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csfarm:", err)
	os.Exit(1)
}
