// Command csfarm simulates a data-parallel task farm over a network of
// borrowable workstations and compares chunking policies end to end —
// the workload the paper's introduction motivates, at the system level.
//
// Usage:
//
//	csfarm                                  # defaults: 8 workers, 4000 tasks
//	csfarm -workers 16 -tasks 20000 -c 2
//	csfarm -dist bimodal -lo 0.5 -hi 6
//	csfarm -policies guideline,fixed:25,allatonce
//	csfarm -trace run.json -trace-format chrome   # per-worker timeline
//	csfarm -metrics-addr :9090                    # /metrics, /debug/pprof,
//	                                              # /debug/csrun (csmon)
//	csfarm -progress                              # live lines on stderr
//	csfarm -flight 8192                           # ring of last events,
//	                                              # dumped on failure/SIGQUIT
//
// Exit status: 0 on success, 1 when any policy run fails or leaves the
// farm undrained, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/obs"
	"repro/internal/rng"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("csfarm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workers  = fs.Int("workers", 8, "number of borrowable workstations")
		tasks    = fs.Int("tasks", 4000, "number of tasks in the job")
		overhead = fs.Float64("c", 1, "per-bundle communication overhead")
		distName = fs.String("dist", "uniform", "task duration distribution: uniform, lognormal, bimodal, pareto")
		lo       = fs.Float64("lo", 0.5, "min task duration")
		hi       = fs.Float64("hi", 3, "max task duration")
		policies = fs.String("policies", "guideline,fixed:25,allatonce", "comma-separated policies: guideline, progressive, fixed:<chunk>, allatonce")
		seed     = fs.Uint64("seed", 1, "RNG seed")
		maxTime  = fs.Float64("maxtime", 1e7, "abort horizon")
		progress = fs.Bool("progress", false, "print live run progress to stderr")
		progEvr  = fs.Duration("progress-every", time.Second, "interval between -progress lines")
	)
	var obsFlags obs.Flags
	obsFlags.Register(fs)
	if err := fs.Parse(argv); err != nil {
		// Parse already printed the error and usage to stderr.
		return 2
	}

	dist, err := nowsim.ParseDist(*distName)
	if err != nil {
		fmt.Fprintln(stderr, "csfarm:", err)
		return 2
	}

	reg := obs.NewRegistry()
	session, err := obsFlags.Setup(reg)
	if err != nil {
		fmt.Fprintln(stderr, "csfarm:", err)
		return 2
	}
	defer session.Close()
	o := nowsim.Obs{Sink: session.Sink}

	// Live monitoring (the -progress ticker and /debug/csrun) needs the
	// registry plus an event counter; both stay off otherwise so
	// unmonitored runs keep the nil-instrumentation fast path.
	monitoring := *progress || session.Server != nil
	var bd *board
	if monitoring {
		counting := &obs.CountingSink{Next: session.Sink}
		o.Sink = counting
		o.Metrics = reg
		bd = newBoard(reg, counting, session.Flight, *workers, *tasks)
		session.Server.SetStatus(bd.snapshot)
	}
	if *progress {
		// The ticker goroutine shares stderr with the main loop.
		stderr = &syncWriter{w: stderr}
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			runProgress(stderr, bd, *progEvr, stop)
		}()
		defer func() { close(stop); <-done }()
	}
	if session.Server != nil {
		fmt.Fprintf(stderr, "csfarm: serving metrics on %s\n", session.Server.Addr())
	}

	// Heterogeneous office: alternating memoryless and bounded owners,
	// mixed speeds.
	lives := make([]lifefn.Life, *workers)
	speeds := make([]float64, *workers)
	for i := range lives {
		var l lifefn.Life
		var err error
		if i%2 == 0 {
			l, err = lifefn.NewGeomDecreasing(math.Pow(2, 1.0/(30+10*float64(i%5))))
		} else {
			l, err = lifefn.NewUniform(100 + 50*float64(i%5))
		}
		if err != nil {
			fmt.Fprintln(stderr, "csfarm:", err)
			return 1
		}
		lives[i] = l
		speeds[i] = 0.5 + 0.5*float64(i%3)
	}

	failures := 0
	fmt.Fprintf(stdout, "%-16s %10s %12s %12s %10s %8s %9s\n",
		"policy", "makespan", "committed", "lost", "overhead", "effcy%", "episodes")
	for _, polSpec := range strings.Split(*policies, ",") {
		polSpec = strings.TrimSpace(polSpec)
		if bd != nil {
			bd.startPolicy(polSpec)
		}
		ws := make([]nowsim.Worker, *workers)
		bad := false
		for i := range ws {
			spec, err := nowsim.ParsePolicy(polSpec, lives[i], *overhead, core.PlanOptions{})
			if err != nil {
				fmt.Fprintln(stderr, "csfarm:", err)
				failures++
				bad = true
				break
			}
			ws[i] = nowsim.Worker{
				ID:    i,
				Owner: nowsim.LifeOwner{Life: lives[i]},
				BusySampler: func(r *rng.Source) float64 {
					return r.Uniform(10, 40)
				},
				PolicyFactory: spec.Factory,
				Speed:         speeds[i],
			}
		}
		if bad {
			if bd != nil {
				bd.endPolicy(0, 0, 0, 0, false, true)
			}
			continue
		}
		pool, err := nowsim.NewWorkload(nowsim.WorkloadSpec{
			Tasks: *tasks, Dist: dist, Lo: *lo, Hi: *hi, Mu: 0, Sigma: 0.75,
		}, rng.New(*seed))
		if err != nil {
			fmt.Fprintln(stderr, "csfarm:", err)
			failures++
			if bd != nil {
				bd.endPolicy(0, 0, 0, 0, false, true)
			}
			continue
		}
		res, err := nowsim.RunFarm(nowsim.FarmConfig{
			Workers:  ws,
			Overhead: *overhead,
			Seed:     *seed,
			MaxTime:  *maxTime,
			Obs:      o,
		}, pool)
		if err != nil {
			fmt.Fprintln(stderr, "csfarm:", err)
			failures++
			if bd != nil {
				bd.endPolicy(0, 0, 0, 0, false, true)
			}
			continue
		}
		status := ""
		if !res.Drained {
			status = " (NOT DRAINED)"
			failures++
		}
		if bd != nil {
			bd.endPolicy(res.Makespan, res.CommittedWork, res.Episodes,
				res.TasksCompleted, res.Drained, !res.Drained)
		}
		fmt.Fprintf(stdout, "%-16s %10.0f %12.0f %12.0f %10.0f %8.1f %9d%s\n",
			polSpec, res.Makespan, res.CommittedWork, res.LostWork,
			res.OverheadTime, 100*res.Efficiency(), res.Episodes, status)
	}
	if bd != nil {
		bd.finish()
	}
	if err := session.Close(); err != nil {
		fmt.Fprintln(stderr, "csfarm:", err)
		failures++
	}
	if failures > 0 {
		if session.Flight != nil {
			fmt.Fprintln(stderr, "csfarm: dumping flight recorder (last events before failure):")
			if err := session.Flight.Dump(stderr); err != nil {
				fmt.Fprintln(stderr, "csfarm:", err)
			}
		}
		return 1
	}
	return 0
}
