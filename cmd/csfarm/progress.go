package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/nowsim"
	"repro/internal/obs"
)

// syncWriter serializes writes so the progress goroutine and the main
// loop can share stderr without interleaving torn lines.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// board tracks a csfarm run for live monitoring: it produces the
// /debug/csrun RunStatus snapshots and the -progress lines. All live
// numbers come from registry atomics and the counting sink, so
// snapshotting from the HTTP or ticker goroutine never touches the
// simulation. The mutex only guards the policy bookkeeping, which the
// main loop updates between runs.
type board struct {
	mu       sync.Mutex
	start    time.Time
	reg      *obs.Registry
	counting *obs.CountingSink
	flight   *obs.FlightRecorder

	phase      string
	tasksTotal int
	workers    int
	policies   []obs.PolicyStatus
	cur        int

	// Registry values at the current policy's start; live minus base is
	// the policy's own progress.
	baseEpisodes  uint64
	baseCommitted float64
	baseTasks     uint64
}

func newBoard(reg *obs.Registry, counting *obs.CountingSink, flight *obs.FlightRecorder, workers, tasksTotal int) *board {
	return &board{
		start:      time.Now(),
		reg:        reg,
		counting:   counting,
		flight:     flight,
		phase:      "starting",
		tasksTotal: tasksTotal,
		workers:    workers,
		cur:        -1,
	}
}

func (b *board) episodesLive() uint64 {
	return b.reg.Counter("cs_episodes_total", "").Value()
}

func (b *board) committedLive() float64 {
	return b.reg.Gauge("cs_committed_work", "").Value()
}

func (b *board) tasksLive() uint64 {
	var sum uint64
	for i := 0; i < b.workers; i++ {
		sum += b.reg.Counter(obs.Labeled("cs_worker_tasks_completed_total", "worker", nowsim.WorkerLabel(i)), "").Value()
	}
	return sum
}

// startPolicy opens a new policy entry and rebases the registry deltas.
func (b *board) startPolicy(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.phase = "running"
	b.baseEpisodes = b.episodesLive()
	b.baseCommitted = b.committedLive()
	b.baseTasks = b.tasksLive()
	b.policies = append(b.policies, obs.PolicyStatus{
		Policy: name, State: "running", TasksTotal: b.tasksTotal,
	})
	b.cur = len(b.policies) - 1
}

// endPolicy finalizes the current policy entry from its finished run.
func (b *board) endPolicy(makespan, committed float64, episodes, tasksDone int, drained, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur < 0 {
		return
	}
	p := &b.policies[b.cur]
	p.State = "done"
	if failed {
		p.State = "failed"
	}
	p.Episodes = uint64(episodes)
	p.Committed = committed
	if episodes > 0 {
		p.MeanCommitted = committed / float64(episodes)
	}
	p.TasksDone = tasksDone
	p.Makespan = makespan
	p.Drained = drained
	b.cur = -1
}

func (b *board) finish() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.phase = "done"
}

// snapshot assembles the live RunStatus served at /debug/csrun.
func (b *board) snapshot() obs.RunStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	elapsed := time.Since(b.start).Seconds()
	st := obs.RunStatus{
		Phase:       b.phase,
		ElapsedSec:  elapsed,
		EventsTotal: b.counting.Count(),
		TasksTotal:  b.tasksTotal,
		Quantiles:   b.reg.QuantileSnapshot(),
	}
	if elapsed > 0 {
		st.EventsPerSec = float64(st.EventsTotal) / elapsed
	}
	if b.flight != nil {
		st.FlightDropped = b.flight.Dropped()
	}
	st.Policies = append([]obs.PolicyStatus(nil), b.policies...)
	if b.cur >= 0 {
		p := &st.Policies[b.cur]
		p.Episodes = b.episodesLive() - b.baseEpisodes
		p.Committed = b.committedLive() - b.baseCommitted
		if p.Episodes > 0 {
			p.MeanCommitted = p.Committed / float64(p.Episodes)
		}
		p.TasksDone = int(b.tasksLive() - b.baseTasks)
		st.Policy = p.Policy
		st.Episodes = p.Episodes
		st.TasksDone = p.TasksDone
	}
	return st
}

// progressLine renders one -progress line from a snapshot.
func progressLine(st obs.RunStatus) string {
	pol := st.Policy
	if pol == "" {
		pol = st.Phase
	}
	line := fmt.Sprintf("csfarm: [%s] episodes=%d committed=%.0f tasks=%d/%d ev/s=%.0f",
		pol, st.Episodes, policyCommitted(st), st.TasksDone, st.TasksTotal, st.EventsPerSec)
	if q, ok := st.Quantiles["cs_bundle_latency"]; ok {
		line += fmt.Sprintf(" bundle_p50=%.2f bundle_p99=%.2f", q["p50"], q["p99"])
	}
	return line + "\n"
}

func policyCommitted(st obs.RunStatus) float64 {
	for _, p := range st.Policies {
		if p.Policy == st.Policy {
			return p.Committed
		}
	}
	return 0
}

// runProgress prints a progress line every interval until stop is
// closed, then once more so short runs still log a final state.
func runProgress(w io.Writer, b *board, interval time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			fmt.Fprint(w, progressLine(b.snapshot()))
		case <-stop:
			fmt.Fprint(w, progressLine(b.snapshot()))
			return
		}
	}
}
