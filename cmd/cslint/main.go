// Command cslint runs the repository's analyzer suite (see
// internal/analysis/suite). It works both standalone:
//
//	cslint ./...
//
// and as a vet tool, which type-checks against the build cache's export
// data instead of re-loading source:
//
//	go vet -vettool=$(pwd)/bin/cslint ./...
//
// Exit codes follow the repo CLI convention: 0 clean, 1 findings,
// 2 usage errors.
package main

import (
	"os"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
)

func main() {
	os.Exit(driver.Main(os.Args, os.Stdout, os.Stderr, suite.All))
}
