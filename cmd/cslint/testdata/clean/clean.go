// Package clean satisfies every analyzer: cslint must exit 0 here both
// standalone and through go vet -vettool.
package clean

import "math"

// Near compares within a tolerance, the way the suite wants.
func Near(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}
