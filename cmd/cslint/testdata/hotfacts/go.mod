module hotfacts

go 1.22
