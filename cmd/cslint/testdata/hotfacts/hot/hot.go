// Package hot is the importing side of the vettool facts fixture: both
// findings below depend on dep's exported facts.
package hot

import (
	"sync"

	"hotfacts/dep"
)

// Trial is a hot-path root that transitively reaches dep.Fill's
// allocation.
//
//cs:hotpath vet-trial
func Trial(n int) float64 {
	xs := dep.Fill(n)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// World carries two mutexes handed to dep.LockPair in both orders.
type World struct {
	a, b sync.Mutex
}

// Crossed closes a lock-order cycle through dep.LockPair's
// param-relative summary.
func Crossed(w *World) {
	dep.LockPair(&w.a, &w.b)
	dep.LockPair(&w.b, &w.a)
}
