// Package dep is the helper side of the vettool facts fixture: its
// allocation site and its param-relative lock edge reach the hot
// package only if hotalloc and lockorder facts round-trip through the
// .vetx files cmd/go passes between per-package invocations.
package dep

import "sync"

// Fill builds a fresh buffer — an allocation a hot path must not
// reach.
func Fill(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// LockPair locks its arguments in argument order; the exported summary
// carries the param:0 -> param:1 edge importers instantiate.
func LockPair(first, second *sync.Mutex) {
	first.Lock()
	second.Lock()
	second.Unlock()
	first.Unlock()
}
