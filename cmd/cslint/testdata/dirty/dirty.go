// Package dirty violates the suite on purpose: cslint must exit 1 here
// both standalone and through go vet -vettool.
package dirty

import "fmt"

// Same computes a == b exactly (floatcmp finding) and prints from a
// library package (printlint finding).
func Same(a, b float64) bool {
	fmt.Println("comparing", a, b)
	return a == b
}
