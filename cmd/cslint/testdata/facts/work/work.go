// Package work is clean on its own (not a guarded simulator package)
// but exports a flow summary recording the raw subtraction, which the
// driver must carry to importers — in-process standalone and through
// .vetx files under go vet.
package work

// Budget returns the raw, sign-preserving difference.
func Budget(t, c float64) float64 { return t - c }
