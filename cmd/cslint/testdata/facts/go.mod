module facts

go 1.22
