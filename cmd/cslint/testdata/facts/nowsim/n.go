// Package nowsim triggers the interprocedural nonnegwork finding: the
// raw subtraction lives in the dependency, so only cross-package facts
// can surface it here.
package nowsim

import "facts/work"

// Use hides a raw work subtraction behind the dependency call.
func Use(t, c float64) float64 {
	return work.Budget(t, c)
}
