package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
)

// runLint invokes the driver in-process from dir, returning exit code,
// stdout and stderr.
func runLint(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	if dir != "" {
		old, err := os.Getwd()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Chdir(dir); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := os.Chdir(old); err != nil {
				t.Fatal(err)
			}
		}()
	}
	var stdout, stderr bytes.Buffer
	code := driver.Main(append([]string{"cslint"}, args...), &stdout, &stderr, suite.All)
	return code, stdout.String(), stderr.String()
}

func TestStandaloneDirty(t *testing.T) {
	code, out, _ := runLint(t, filepath.Join("testdata", "dirty"), "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"[floatcmp]", "[printlint]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s finding:\n%s", want, out)
		}
	}
}

func TestStandaloneClean(t *testing.T) {
	code, out, errout := runLint(t, filepath.Join("testdata", "clean"), "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out, errout)
	}
	if out != "" {
		t.Errorf("clean package produced output: %s", out)
	}
}

// TestStandaloneCrossPackageFacts checks that the standalone driver
// carries flow summaries dependency-first: the raw subtraction lives in
// facts/work, the finding surfaces at the call in facts/nowsim.
func TestStandaloneCrossPackageFacts(t *testing.T) {
	code, out, _ := runLint(t, filepath.Join("testdata", "facts"), "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "hides a raw work subtraction") || !strings.Contains(out, "[nonnegwork]") {
		t.Errorf("output missing the interprocedural nonnegwork finding:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runLint(t, filepath.Join("testdata", "dirty"), "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("-json produced an empty array on the dirty fixture")
	}
	seen := make(map[string]bool)
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("diagnostic with missing fields: %+v", d)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("diagnostic file %q not relative to the working directory", d.File)
		}
		seen[d.Analyzer] = true
	}
	if !seen["floatcmp"] || !seen["printlint"] {
		t.Errorf("-json diagnostics missing expected analyzers: %v", seen)
	}

	// A clean tree must still emit valid JSON: an empty array, exit 0.
	code, out, _ = runLint(t, filepath.Join("testdata", "clean"), "-json", "./...")
	if code != 0 {
		t.Fatalf("clean -json exit = %d, want 0\n%s", code, out)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output = %q, want []", out)
	}
}

// sarifLog mirrors the SARIF 2.1.0 subset cslint emits. The test
// decodes with DisallowUnknownFields both ways: every field here must
// be in the output, and the output must contain nothing beyond the
// schema subset — a network-free schema validation.
type sarifLog struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI       string `json:"uri"`
						URIBaseID string `json:"uriBaseId"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
						EndLine     int `json:"endLine"`
						EndColumn   int `json:"endColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

func TestSARIFOutput(t *testing.T) {
	code, out, _ := runLint(t, filepath.Join("testdata", "dirty"), "-sarif", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	var log sarifLog
	dec := json.NewDecoder(strings.NewReader(out))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&log); err != nil {
		t.Fatalf("-sarif output does not match the SARIF 2.1.0 subset: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("sarif $schema = %q, want a 2.1.0 schema URI", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("sarif runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "cslint" {
		t.Errorf("tool.driver.name = %q, want cslint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(suite.All) {
		t.Errorf("rules = %d, want %d (one per analyzer)", len(run.Tool.Driver.Rules), len(suite.All))
	}
	if len(run.Results) == 0 {
		t.Fatal("dirty fixture produced no sarif results")
	}
	for _, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Errorf("result ruleIndex %d out of range", r.RuleIndex)
			continue
		}
		if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("result ruleId %q does not match rules[%d].id %q", r.RuleID, r.RuleIndex, got)
		}
		if r.Level != "warning" || r.Message.Text == "" {
			t.Errorf("result missing level/message: %+v", r)
		}
		if len(r.Locations) != 1 {
			t.Errorf("result has %d locations, want 1", len(r.Locations))
			continue
		}
		pl := r.Locations[0].PhysicalLocation
		if pl.ArtifactLocation.URIBaseID != "SRCROOT" {
			t.Errorf("uriBaseId = %q, want SRCROOT", pl.ArtifactLocation.URIBaseID)
		}
		if filepath.IsAbs(pl.ArtifactLocation.URI) || strings.Contains(pl.ArtifactLocation.URI, `\`) {
			t.Errorf("artifact uri %q is not a relative slash path", pl.ArtifactLocation.URI)
		}
		reg := pl.Region
		if reg.StartLine <= 0 || reg.StartColumn <= 0 {
			t.Errorf("region start not positive: %+v", reg)
		}
		if reg.EndLine != 0 && (reg.EndLine < reg.StartLine ||
			(reg.EndLine == reg.StartLine && reg.EndColumn < reg.StartColumn)) {
			t.Errorf("region end precedes start: %+v", reg)
		}
	}

	// A clean tree still emits a complete, valid log with empty results.
	code, out, _ = runLint(t, filepath.Join("testdata", "clean"), "-sarif", "./...")
	if code != 0 {
		t.Fatalf("clean -sarif exit = %d, want 0\n%s", code, out)
	}
	log = sarifLog{}
	dec = json.NewDecoder(strings.NewReader(out))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&log); err != nil {
		t.Fatalf("clean -sarif output invalid: %v\n%s", err, out)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 0 {
		t.Errorf("clean tree sarif should have one run with zero results:\n%s", out)
	}
	if len(log.Runs[0].Tool.Driver.Rules) != len(suite.All) {
		t.Errorf("clean tree sarif still documents %d rules, want %d", len(log.Runs[0].Tool.Driver.Rules), len(suite.All))
	}
}

// TestJSONEndOffsets pins the endLine/endCol fields: range-reporting
// analyzers must carry a span, and end never precedes start.
func TestJSONEndOffsets(t *testing.T) {
	code, out, _ := runLint(t, filepath.Join("testdata", "dirty"), "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		EndLine int    `json:"endLine"`
		EndCol  int    `json:"endCol"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output: %v\n%s", err, out)
	}
	withEnd := 0
	for _, d := range diags {
		if d.EndLine == 0 {
			continue
		}
		withEnd++
		if d.EndLine < d.Line || (d.EndLine == d.Line && d.EndCol < d.Col) {
			t.Errorf("diagnostic end %d:%d precedes start %d:%d in %s", d.EndLine, d.EndCol, d.Line, d.Col, d.File)
		}
	}
	if withEnd == 0 {
		t.Error("no diagnostic carried an end offset; range reporting is wired to -json")
	}
}

func TestBaseline(t *testing.T) {
	bl := filepath.Join(t.TempDir(), "lint-baseline.json")

	// Recording the baseline exits 0 regardless of findings.
	code, out, errout := runLint(t, filepath.Join("testdata", "dirty"), "-baseline", bl, "-write-baseline", "./...")
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0\nstdout: %s\nstderr: %s", code, out, errout)
	}

	// With the fresh baseline every finding is suppressed.
	code, out, _ = runLint(t, filepath.Join("testdata", "dirty"), "-baseline", bl, "./...")
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\n%s", code, out)
	}
	if out != "" {
		t.Errorf("baselined run still reported findings:\n%s", out)
	}

	// Dropping one entry makes exactly that finding "new" again.
	data, err := os.ReadFile(bl)
	if err != nil {
		t.Fatal(err)
	}
	var bf struct {
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatalf("baseline is not valid JSON: %v\n%s", err, data)
	}
	if len(bf.Findings) < 2 {
		t.Fatalf("baseline recorded %d findings, want >= 2", len(bf.Findings))
	}
	bf.Findings = bf.Findings[1:]
	trimmed, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bl, trimmed, 0o666); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runLint(t, filepath.Join("testdata", "dirty"), "-baseline", bl, "./...")
	if code != 1 {
		t.Fatalf("run with trimmed baseline exit = %d, want 1\n%s", code, out)
	}
	if n := strings.Count(strings.TrimSpace(out), "\n") + 1; n != 1 {
		t.Errorf("trimmed baseline surfaced %d findings, want exactly 1:\n%s", n, out)
	}

	// A missing baseline file is a usage error, not silence.
	code, _, errout = runLint(t, filepath.Join("testdata", "dirty"), "-baseline", bl+".missing", "./...")
	if code != 2 {
		t.Fatalf("missing baseline exit = %d, want 2\n%s", code, errout)
	}
}

// TestBaselinePortableAcrossCwd: diagnostic paths are anchored at the
// enclosing go.mod, not the invocation directory, so a baseline
// recorded at the module root suppresses the same findings when cslint
// runs from a subdirectory.
func TestBaselinePortableAcrossCwd(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module tmpmod\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "sub"), 0o777); err != nil {
		t.Fatal(err)
	}
	src := "package sub\n\n// Same is a deliberate floatcmp finding.\nfunc Same(a, b float64) bool { return a == b }\n"
	if err := os.WriteFile(filepath.Join(root, "sub", "sub.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}

	// A plain run from the subdirectory reports the module-root-relative
	// path, not one relative to the invocation directory.
	code, out, errout := runLint(t, filepath.Join(root, "sub"), "./...")
	if code != 1 {
		t.Fatalf("subdir run exit = %d, want 1\nstdout: %s\nstderr: %s", code, out, errout)
	}
	if want := filepath.Join("sub", "sub.go"); !strings.Contains(out, want) {
		t.Errorf("subdir run did not report %s-anchored path:\n%s", want, out)
	}

	// Baseline recorded at the module root...
	bl := filepath.Join(root, "lint-baseline.json")
	code, out, errout = runLint(t, root, "-baseline", bl, "-write-baseline", "./...")
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0\nstdout: %s\nstderr: %s", code, out, errout)
	}

	// ...suppresses the same finding when applied from the subdirectory.
	code, out, _ = runLint(t, filepath.Join(root, "sub"), "-baseline", bl, "./...")
	if code != 0 {
		t.Fatalf("baselined subdir run exit = %d, want 0\n%s", code, out)
	}
	if out != "" {
		t.Errorf("baselined subdir run still reported findings:\n%s", out)
	}
}

func TestAnalyzerToggle(t *testing.T) {
	// Disabling both triggered analyzers must turn the dirty fixture clean.
	code, out, _ := runLint(t, filepath.Join("testdata", "dirty"),
		"-floatcmp=false", "-printlint=false", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 with analyzers disabled\n%s", code, out)
	}
}

func TestVersionProbe(t *testing.T) {
	// cmd/go probes -V=full and requires `<name> version <ver>`; for a
	// devel version the last field must carry a build ID.
	code, out, _ := runLint(t, "", "-V=full")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	fields := strings.Fields(out)
	if len(fields) < 3 || fields[1] != "version" {
		t.Fatalf("-V=full output %q does not satisfy the go vet protocol", out)
	}
	if fields[2] == "devel" && !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("devel version without buildID: %q", out)
	}
}

func TestFlagsProbe(t *testing.T) {
	code, out, _ := runLint(t, "", "-flags")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal([]byte(out), &flags); err != nil {
		t.Fatalf("-flags output is not the JSON cmd/go expects: %v\n%s", err, out)
	}
	if len(flags) != len(suite.All) {
		t.Fatalf("-flags advertised %d analyzers, want %d", len(flags), len(suite.All))
	}
}

func TestUsageError(t *testing.T) {
	code, _, _ := runLint(t, "", "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 for a bad flag", code)
	}
}

// TestVettool runs the built binary through the real go vet -vettool
// protocol against both fixtures.
func TestVettool(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go not in PATH: %v", err)
	}
	tool := filepath.Join(t.TempDir(), "cslint-under-test")
	build := exec.Command(goTool, "build", "-o", tool, "repro/cmd/cslint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cslint: %v\n%s", err, out)
	}

	vet := func(dir string) (int, string) {
		cmd := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), string(out)
		}
		t.Fatalf("go vet: %v\n%s", err, out)
		return -1, ""
	}

	if code, out := vet(filepath.Join("testdata", "dirty")); code == 0 {
		t.Errorf("go vet -vettool on dirty fixture exited 0\n%s", out)
	} else if !strings.Contains(out, "[floatcmp]") {
		t.Errorf("go vet -vettool output missing floatcmp finding:\n%s", out)
	}
	if code, out := vet(filepath.Join("testdata", "clean")); code != 0 {
		t.Errorf("go vet -vettool on clean fixture exited %d\n%s", code, out)
	}
	// The facts fixture only fires if flow summaries round-trip through
	// the .vetx files cmd/go passes between per-package invocations.
	if code, out := vet(filepath.Join("testdata", "facts")); code == 0 {
		t.Errorf("go vet -vettool on facts fixture exited 0 (vetx facts not propagated?)\n%s", out)
	} else if !strings.Contains(out, "hides a raw work subtraction") {
		t.Errorf("go vet -vettool output missing the interprocedural finding:\n%s", out)
	}
	// The hotfacts fixture fires only if hotalloc allocation-site facts
	// and lockorder lock summaries both cross package boundaries
	// through the same .vetx channel.
	if code, out := vet(filepath.Join("testdata", "hotfacts")); code == 0 {
		t.Errorf("go vet -vettool on hotfacts fixture exited 0 (vetx facts not propagated?)\n%s", out)
	} else {
		if !strings.Contains(out, "reaches dep.Fill") || !strings.Contains(out, "[hotalloc]") {
			t.Errorf("go vet -vettool output missing the cross-package hotalloc finding:\n%s", out)
		}
		if !strings.Contains(out, "lock-order cycle") || !strings.Contains(out, "[lockorder]") {
			t.Errorf("go vet -vettool output missing the cross-package lockorder finding:\n%s", out)
		}
	}
}
