package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
)

// runLint invokes the driver in-process from dir, returning exit code,
// stdout and stderr.
func runLint(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	if dir != "" {
		old, err := os.Getwd()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Chdir(dir); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := os.Chdir(old); err != nil {
				t.Fatal(err)
			}
		}()
	}
	var stdout, stderr bytes.Buffer
	code := driver.Main(append([]string{"cslint"}, args...), &stdout, &stderr, suite.All)
	return code, stdout.String(), stderr.String()
}

func TestStandaloneDirty(t *testing.T) {
	code, out, _ := runLint(t, filepath.Join("testdata", "dirty"), "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"[floatcmp]", "[printlint]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s finding:\n%s", want, out)
		}
	}
}

func TestStandaloneClean(t *testing.T) {
	code, out, errout := runLint(t, filepath.Join("testdata", "clean"), "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out, errout)
	}
	if out != "" {
		t.Errorf("clean package produced output: %s", out)
	}
}

func TestAnalyzerToggle(t *testing.T) {
	// Disabling both triggered analyzers must turn the dirty fixture clean.
	code, out, _ := runLint(t, filepath.Join("testdata", "dirty"),
		"-floatcmp=false", "-printlint=false", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 with analyzers disabled\n%s", code, out)
	}
}

func TestVersionProbe(t *testing.T) {
	// cmd/go probes -V=full and requires `<name> version <ver>`; for a
	// devel version the last field must carry a build ID.
	code, out, _ := runLint(t, "", "-V=full")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	fields := strings.Fields(out)
	if len(fields) < 3 || fields[1] != "version" {
		t.Fatalf("-V=full output %q does not satisfy the go vet protocol", out)
	}
	if fields[2] == "devel" && !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("devel version without buildID: %q", out)
	}
}

func TestFlagsProbe(t *testing.T) {
	code, out, _ := runLint(t, "", "-flags")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal([]byte(out), &flags); err != nil {
		t.Fatalf("-flags output is not the JSON cmd/go expects: %v\n%s", err, out)
	}
	if len(flags) != len(suite.All) {
		t.Fatalf("-flags advertised %d analyzers, want %d", len(flags), len(suite.All))
	}
}

func TestUsageError(t *testing.T) {
	code, _, _ := runLint(t, "", "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 for a bad flag", code)
	}
}

// TestVettool runs the built binary through the real go vet -vettool
// protocol against both fixtures.
func TestVettool(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go not in PATH: %v", err)
	}
	tool := filepath.Join(t.TempDir(), "cslint-under-test")
	build := exec.Command(goTool, "build", "-o", tool, "repro/cmd/cslint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cslint: %v\n%s", err, out)
	}

	vet := func(dir string) (int, string) {
		cmd := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), string(out)
		}
		t.Fatalf("go vet: %v\n%s", err, out)
		return -1, ""
	}

	if code, out := vet(filepath.Join("testdata", "dirty")); code == 0 {
		t.Errorf("go vet -vettool on dirty fixture exited 0\n%s", out)
	} else if !strings.Contains(out, "[floatcmp]") {
		t.Errorf("go vet -vettool output missing floatcmp finding:\n%s", out)
	}
	if code, out := vet(filepath.Join("testdata", "clean")); code != 0 {
		t.Errorf("go vet -vettool on clean fixture exited %d\n%s", code, out)
	}
}
