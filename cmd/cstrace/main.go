// Command cstrace demonstrates the trace pipeline: it generates a
// synthetic owner-absence trace with a known ground truth, optionally
// right-censors it, fits a life function by product-limit estimation
// plus monotone smoothing, plans on the fit, and reports the fit error
// and the schedule regret against planning on the truth.
//
// Usage:
//
//	cstrace -truth uniform -L 200 -sessions 1000 -c 1
//	cstrace -truth geomdec -halflife 32 -sessions 500 -censor 60
//	cstrace -trace plans.json -trace-format chrome   # schedule timeline
//
// Exit status: 0 on success, 1 on runtime failures (fit or planning),
// 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cstrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		truthName = fs.String("truth", "uniform", "ground-truth life function: uniform, poly, geomdec, geominc")
		lifespan  = fs.Float64("L", 200, "potential lifespan")
		halfLife  = fs.Float64("halflife", 32, "half-life (geomdec)")
		d         = fs.Int("d", 2, "exponent (poly)")
		sessions  = fs.Int("sessions", 1000, "number of absence observations")
		censor    = fs.Float64("censor", 0, "right-censor observations at this duration (0 = none)")
		knots     = fs.Int("knots", 32, "smoothing knots")
		c         = fs.Float64("c", 1, "per-period communication overhead")
		seed      = fs.Uint64("seed", 1, "RNG seed")
	)
	var obsFlags obs.Flags
	obsFlags.Register(fs)
	if err := fs.Parse(argv); err != nil {
		// Parse already printed the error and usage to stderr.
		return 2
	}

	truth, err := nowsim.BuildLife(*truthName, *lifespan, *halfLife, *d)
	if err != nil {
		fmt.Fprintln(stderr, "cstrace:", err)
		return 2
	}

	reg := obs.NewRegistry()
	session, err := obsFlags.Setup(reg)
	if err != nil {
		fmt.Fprintln(stderr, "cstrace:", err)
		return 2
	}
	defer session.Close()
	var metrics *obs.Registry
	if session.Server != nil {
		metrics = reg
		fmt.Fprintf(stderr, "cstrace: serving metrics on %s\n", session.Server.Addr())
	}

	absences := trace.SampleAbsences(truth, *sessions, rng.New(*seed))
	if *censor > 0 {
		absences = trace.CensorAt(absences, *censor)
	}
	fit, err := trace.FitLife(absences, trace.FitOptions{Knots: *knots})
	if err != nil {
		fmt.Fprintln(stderr, "cstrace:", fmt.Errorf("fit failed: %w", err))
		return 1
	}

	span := trace.EffectiveSpan(truth)
	ks := trace.KSDistance(fit, truth, span, 400)
	fmt.Fprintf(stdout, "truth          : %s\n", truth)
	fmt.Fprintf(stdout, "trace          : %d sessions (censor %g, knots %d, seed %d)\n", *sessions, *censor, *knots, *seed)
	fmt.Fprintf(stdout, "fitted         : %s (shape %s, horizon %g)\n", fit, fit.Shape(), fit.Horizon())
	fmt.Fprintf(stdout, "KS distance    : %.4f\n", ks)

	truthPlan, err := plan(truth, *c, metrics)
	if err != nil {
		fmt.Fprintln(stderr, "cstrace:", fmt.Errorf("planning on truth: %w", err))
		return 1
	}
	fitPlan, err := plan(fit, *c, metrics)
	if err != nil {
		fmt.Fprintln(stderr, "cstrace:", fmt.Errorf("planning on fit: %w", err))
		return 1
	}
	if session.Sink != nil {
		// Render the two schedules as timelines: the truth plan traces as
		// worker 0, the fit plan as worker 1, each period a
		// dispatch/commit span — chrome format shows them side by side.
		emitPlan(session.Sink, 0, truthPlan)
		emitPlan(session.Sink, 1, fitPlan)
	}
	eUnderTruth := sched.ExpectedWork(fitPlan.Schedule, truth, *c)
	if err := session.Close(); err != nil {
		fmt.Fprintln(stderr, "cstrace:", err)
		return 1
	}
	fmt.Fprintf(stdout, "plan on truth  : t0 %.5g, m %d, E %.6g\n", truthPlan.T0, truthPlan.Schedule.Len(), truthPlan.ExpectedWork)
	fmt.Fprintf(stdout, "plan on fit    : t0 %.5g, m %d, E-under-truth %.6g\n", fitPlan.T0, fitPlan.Schedule.Len(), eUnderTruth)
	fmt.Fprintf(stdout, "regret         : %.3f%%\n", 100*(1-eUnderTruth/truthPlan.ExpectedWork))
	return 0
}

func plan(l lifefn.Life, c float64, metrics *obs.Registry) (core.Plan, error) {
	pl, err := core.NewPlanner(l, c, core.PlanOptions{Metrics: metrics})
	if err != nil {
		return core.Plan{}, err
	}
	return pl.PlanBest()
}

// emitPlan replays a plan's schedule as dispatch/commit event pairs on
// the given worker lane, so trace exporters render it as a timeline.
func emitPlan(sink obs.Sink, worker int, p core.Plan) {
	now := 0.0
	for i := 0; i < p.Schedule.Len(); i++ {
		t := p.Schedule.Period(i)
		sink.Emit(obs.Event{Time: now, Worker: worker, Kind: nowsim.EventDispatch.String(), Period: i, Length: t})
		now += t
		sink.Emit(obs.Event{Time: now, Worker: worker, Kind: nowsim.EventCommit.String(), Period: i, Length: t})
	}
}
