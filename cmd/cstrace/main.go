// Command cstrace demonstrates the trace pipeline: it generates a
// synthetic owner-absence trace with a known ground truth, optionally
// right-censors it, fits a life function by product-limit estimation
// plus monotone smoothing, plans on the fit, and reports the fit error
// and the schedule regret against planning on the truth.
//
// Usage:
//
//	cstrace -truth uniform -L 200 -sessions 1000 -c 1
//	cstrace -truth geomdec -halflife 32 -sessions 500 -censor 60
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	var (
		truthName = flag.String("truth", "uniform", "ground-truth life function: uniform, poly, geomdec, geominc")
		lifespan  = flag.Float64("L", 200, "potential lifespan")
		halfLife  = flag.Float64("halflife", 32, "half-life (geomdec)")
		d         = flag.Int("d", 2, "exponent (poly)")
		sessions  = flag.Int("sessions", 1000, "number of absence observations")
		censor    = flag.Float64("censor", 0, "right-censor observations at this duration (0 = none)")
		knots     = flag.Int("knots", 32, "smoothing knots")
		c         = flag.Float64("c", 1, "per-period communication overhead")
		seed      = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	truth, err := buildLife(*truthName, *lifespan, *halfLife, *d)
	if err != nil {
		fatal(err)
	}

	obs := trace.SampleAbsences(truth, *sessions, rng.New(*seed))
	if *censor > 0 {
		obs = trace.CensorAt(obs, *censor)
	}
	fit, err := trace.FitLife(obs, trace.FitOptions{Knots: *knots})
	if err != nil {
		fatal(fmt.Errorf("fit failed: %w", err))
	}

	span := trace.EffectiveSpan(truth)
	ks := trace.KSDistance(fit, truth, span, 400)
	fmt.Printf("truth          : %s\n", truth)
	fmt.Printf("trace          : %d sessions (censor %g, knots %d, seed %d)\n", *sessions, *censor, *knots, *seed)
	fmt.Printf("fitted         : %s (shape %s, horizon %g)\n", fit, fit.Shape(), fit.Horizon())
	fmt.Printf("KS distance    : %.4f\n", ks)

	truthPlan, err := plan(truth, *c)
	if err != nil {
		fatal(fmt.Errorf("planning on truth: %w", err))
	}
	fitPlan, err := plan(fit, *c)
	if err != nil {
		fatal(fmt.Errorf("planning on fit: %w", err))
	}
	eUnderTruth := sched.ExpectedWork(fitPlan.Schedule, truth, *c)
	fmt.Printf("plan on truth  : t0 %.5g, m %d, E %.6g\n", truthPlan.T0, truthPlan.Schedule.Len(), truthPlan.ExpectedWork)
	fmt.Printf("plan on fit    : t0 %.5g, m %d, E-under-truth %.6g\n", fitPlan.T0, fitPlan.Schedule.Len(), eUnderTruth)
	fmt.Printf("regret         : %.3f%%\n", 100*(1-eUnderTruth/truthPlan.ExpectedWork))
}

func plan(l lifefn.Life, c float64) (core.Plan, error) {
	pl, err := core.NewPlanner(l, c, core.PlanOptions{})
	if err != nil {
		return core.Plan{}, err
	}
	return pl.PlanBest()
}

func buildLife(name string, lifespan, halfLife float64, d int) (lifefn.Life, error) {
	switch name {
	case "uniform":
		return lifefn.NewUniform(lifespan)
	case "poly":
		return lifefn.NewPoly(d, lifespan)
	case "geomdec":
		if !(halfLife > 0) {
			return nil, fmt.Errorf("cstrace: half-life must be positive, got %g", halfLife)
		}
		return lifefn.NewGeomDecreasing(math.Pow(2, 1/halfLife))
	case "geominc":
		return lifefn.NewGeomIncreasing(lifespan)
	default:
		return nil, fmt.Errorf("cstrace: unknown life function %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstrace:", err)
	os.Exit(1)
}
