package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	small := []string{"-sessions", "200", "-L", "100"}
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"ok", small, 0},
		{"censored", append(append([]string{}, small...), "-censor", "40"), 0},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"help", []string{"-h"}, 2},
		{"bad truth", []string{"-truth", "cauchy"}, 2},
		{"bad lifespan", []string{"-truth", "uniform", "-L", "-5"}, 2},
		// Censoring every observation below any event leaves nothing to
		// fit: a runtime failure, not a usage error.
		{"unfittable", append(append([]string{}, small...), "-censor", "1e-12"), 1},
		{"bad trace format", append(append([]string{}, small...), "-trace", filepath.Join(t.TempDir(), "x"), "-trace-format", "xml"), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.argv, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstderr: %s", tc.argv, got, tc.want, stderr.String())
			}
		})
	}
}

func TestRunReportsRegret(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-sessions", "400", "-L", "100"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	for _, want := range []string{"KS distance", "plan on truth", "regret"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("report missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestRunChromeTrace drives the schedule-timeline path end to end: the
// emitted plan comparison must be a valid trace_event JSON file.
func TestRunChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.json")
	var stdout, stderr bytes.Buffer
	argv := []string{"-sessions", "200", "-L", "100", "-trace", path, "-trace-format", "chrome"}
	if got := run(argv, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}
}
