// Command csbench regenerates the paper-reproduction experiments
// (E1–E11 in DESIGN.md) and prints their tables.
//
// Usage:
//
//	csbench                  # run everything, aligned text output
//	csbench -run E1,E4       # selected experiments
//	csbench -format md       # GitHub-flavored markdown (EXPERIMENTS.md)
//	csbench -format csv      # CSV, one table after another
//	csbench -list            # list experiment ids and sources
//	csbench -perf            # hot-path micro-benchmarks -> BENCH_perf.json
//	csbench -compare BENCH_perf.json
//	                         # rerun the suite, fail (exit 1) if any
//	                         # benchmark breaches its ns/op or allocs/op
//	                         # budget against the committed history
//	csbench -compare old.json -against new.json
//	                         # pure file-vs-file diff, no measuring
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated experiment ids (default: all)")
		format   = flag.String("format", "text", "output format: text, md, csv")
		list     = flag.Bool("list", false, "list experiments and exit")
		timing   = flag.Bool("timing", false, "print per-experiment wall time to stderr")
		perf     = flag.Bool("perf", false, "run the hot-path micro-benchmark suite instead of the experiments")
		perfRuns = flag.Int("perf-runs", 5, "repetitions per -perf benchmark (min and median are reported)")
		perfOut  = flag.String("perf-out", "BENCH_perf.json", "output file for the -perf JSON report")

		compare     = flag.String("compare", "", "baseline perf JSON; rerun the suite (or diff -against) and exit 1 on any budget breach")
		against     = flag.String("against", "", "candidate perf JSON for -compare (pure file diff, skips measuring)")
		compareOut  = flag.String("compare-out", "", "write the machine-readable -compare diff JSON here")
		nsBudget    = flag.Float64("ns-budget", 1.75, "max candidate/baseline ratio of min ns/op before -compare fails")
		allocBudget = flag.Float64("alloc-budget", 1.15, "max candidate/baseline ratio of min allocs/op before -compare fails")
		allocSlack  = flag.Float64("alloc-slack", 2, "absolute allocs/op increase always tolerated (shields near-zero baselines)")
	)
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, *against, *perfRuns, *compareOut,
			*nsBudget, *allocBudget, *allocSlack, os.Stdout, os.Stderr))
	}
	if *perf {
		os.Exit(runPerf(*perfRuns, *perfOut, os.Stdout, os.Stderr))
	}

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %-70s [%s]\n", e.ID, e.Title, e.Source)
		}
		return
	}

	selected := all
	if *runList != "" {
		selected = selected[:0:0]
		for _, id := range strings.Split(*runList, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var write func(t *report.Table) error
	switch *format {
	case "text":
		write = func(t *report.Table) error { return t.WriteText(os.Stdout) }
	case "md":
		write = func(t *report.Table) error { return t.WriteMarkdown(os.Stdout) }
	case "csv":
		write = func(t *report.Table) error { return t.WriteCSV(os.Stdout) }
	default:
		fmt.Fprintf(os.Stderr, "csbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	exit := 0
	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "csbench: %s failed: %v\n", e.ID, err)
			exit = 1
			continue
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		if err := write(tbl); err != nil {
			fmt.Fprintf(os.Stderr, "csbench: writing %s: %v\n", e.ID, err)
			exit = 1
		}
		fmt.Println()
	}
	os.Exit(exit)
}
