package main

// The -perf suite: calibrated micro-benchmarks over the episode, farm
// and sink hot paths, written to BENCH_perf.json (ns/op and allocs/op;
// min and median over -perf-runs repetitions). A custom harness rather
// than testing.Benchmark keeps the whole suite under a few seconds:
// each measurement is calibrated to ~25ms instead of benchtime's 1s,
// which is plenty for min-of-N on these single-digit-microsecond ops.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/serve"
)

// perfSchedule mirrors the nowsim bench schedule: 64 shrinking periods,
// long enough that per-episode setup does not dominate.
var perfSchedule = func() sched.Schedule {
	periods := make([]float64, 64)
	for i := range periods {
		periods[i] = 40 - 0.5*float64(i)
	}
	return sched.MustNew(periods...)
}()

const (
	perfOverhead = 1.0
	perfReclaim  = 1e9 // never reclaimed: all 64 periods dispatch and commit
)

type perfSample struct {
	nsPerOp     float64
	allocsPerOp float64
}

// measureOnce calibrates the iteration count to roughly 25ms of work,
// then takes one measured run with allocation accounting.
func measureOnce(f func(n int)) perfSample {
	const target = 25 * time.Millisecond
	n := 1
	for {
		start := time.Now()
		f(n)
		elapsed := time.Since(start)
		if elapsed >= target || n >= 1<<28 {
			break
		}
		next := 2 * n
		if elapsed > 0 {
			ideal := int(1.2 * float64(target) / float64(elapsed) * float64(n))
			if ideal > next {
				next = ideal
			}
		}
		n = next
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f(n)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return perfSample{
		nsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
		allocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// perfBenchResult is one benchmark's aggregated JSON record.
type perfBenchResult struct {
	Name              string  `json:"name"`
	NsPerOpMin        float64 `json:"ns_per_op_min"`
	NsPerOpMedian     float64 `json:"ns_per_op_median"`
	AllocsPerOpMin    float64 `json:"allocs_per_op_min"`
	AllocsPerOpMedian float64 `json:"allocs_per_op_median"`
}

type perfReport struct {
	Suite      string            `json:"suite"`
	GoVersion  string            `json:"go_version"`
	Runs       int               `json:"runs"`
	Benchmarks []perfBenchResult `json:"benchmarks"`
	// NilObsOverheadPercent is the acceptance-criterion number: the
	// min-of-N episode/obs-disabled cost over the min-of-N
	// episode/uninstrumented baseline, in percent. Min is the standard
	// noise-floor estimator for microbenchmarks; the budget is <= 2%.
	NilObsOverheadPercent float64 `json:"nil_obs_overhead_percent"`
}

func perfFarmConfig(o nowsim.Obs) (nowsim.FarmConfig, *nowsim.TaskPool, error) {
	l, err := lifefn.NewUniform(80)
	if err != nil {
		return nowsim.FarmConfig{}, nil, err
	}
	ws := make([]nowsim.Worker, 2)
	for i := range ws {
		ws[i] = nowsim.Worker{
			ID:    i,
			Owner: nowsim.LifeOwner{Life: l},
			BusySampler: func(r *rng.Source) float64 {
				return r.Uniform(5, 15)
			},
			PolicyFactory: func() nowsim.Policy { return &nowsim.FixedChunkPolicy{Chunk: 20} },
		}
	}
	pool, err := nowsim.NewUniformTasks(80, 1.5)
	if err != nil {
		return nowsim.FarmConfig{}, nil, err
	}
	return nowsim.FarmConfig{Workers: ws, Overhead: 1, Seed: 7, MaxTime: 1e6, Obs: o}, pool, nil
}

// perfBenchmarks builds the suite. Each entry's func runs n operations.
func perfBenchmarks() ([]string, map[string]func(n int) error) {
	order := []string{
		"episode/uninstrumented",
		"episode/obs-disabled",
		"episode/jsonl-sink",
		"episode/metrics",
		"farm/uninstrumented",
		"farm/flight-sink",
		"sink/jsonl-emit",
		"sink/flight-emit",
		"sink/chrome-emit",
		"span/start-end",
		"hdr/observe",
		"hotpath/engine-reuse",
		"hotpath/expected-work",
		"hotpath/gradient-into",
		"hotpath/cache-hit",
	}
	sample := obs.Event{Time: 1.5, Worker: 3, Kind: "commit", Period: 2, Length: 4.5, Tasks: 7}
	suite := map[string]func(n int) error{
		"episode/uninstrumented": func(n int) error {
			pol := nowsim.NewSchedulePolicy(perfSchedule, "perf")
			for i := 0; i < n; i++ {
				nowsim.RunEpisode(pol, perfOverhead, perfReclaim)
			}
			return nil
		},
		"episode/obs-disabled": func(n int) error {
			pol := nowsim.NewSchedulePolicy(perfSchedule, "perf")
			for i := 0; i < n; i++ {
				nowsim.RunEpisodeObs(pol, perfOverhead, perfReclaim, 0, nowsim.Obs{})
			}
			return nil
		},
		"episode/jsonl-sink": func(n int) error {
			pol := nowsim.NewSchedulePolicy(perfSchedule, "perf")
			o := nowsim.Obs{Sink: obs.NewJSONLSink(io.Discard)}
			for i := 0; i < n; i++ {
				nowsim.RunEpisodeObs(pol, perfOverhead, perfReclaim, 0, o)
			}
			return nil
		},
		"episode/metrics": func(n int) error {
			pol := nowsim.NewSchedulePolicy(perfSchedule, "perf")
			o := nowsim.Obs{Metrics: obs.NewRegistry()}
			for i := 0; i < n; i++ {
				nowsim.RunEpisodeObs(pol, perfOverhead, perfReclaim, 0, o)
			}
			return nil
		},
		"farm/uninstrumented": func(n int) error {
			for i := 0; i < n; i++ {
				cfg, pool, err := perfFarmConfig(nowsim.Obs{})
				if err != nil {
					return err
				}
				if _, err := nowsim.RunFarm(cfg, pool); err != nil {
					return err
				}
			}
			return nil
		},
		"farm/flight-sink": func(n int) error {
			for i := 0; i < n; i++ {
				fr := obs.NewFlightRecorder(1024)
				cfg, pool, err := perfFarmConfig(nowsim.Obs{Sink: fr})
				if err != nil {
					return err
				}
				if _, err := nowsim.RunFarm(cfg, pool); err != nil {
					return err
				}
			}
			return nil
		},
		"sink/jsonl-emit": func(n int) error {
			s := obs.NewJSONLSink(io.Discard)
			for i := 0; i < n; i++ {
				s.Emit(sample)
			}
			return s.Close()
		},
		"sink/flight-emit": func(n int) error {
			fr := obs.NewFlightRecorder(4096)
			for i := 0; i < n; i++ {
				fr.Emit(sample)
			}
			return nil
		},
		"sink/chrome-emit": func(n int) error {
			// The Chrome sink buffers everything until Close; one
			// sink per measured batch keeps that realistic.
			s := obs.NewChromeSink(io.Discard)
			for i := 0; i < n; i++ {
				s.Emit(sample)
			}
			return s.Close()
		},
		"span/start-end": func(n int) error {
			sp := obs.NewSpanner(obs.NewJSONLSink(io.Discard))
			for i := 0; i < n; i++ {
				sp.Start(float64(i), 0, "episode", obs.SpanAttrs{}).End(float64(i) + 1)
			}
			return nil
		},
		"hdr/observe": func(n int) error {
			var h obs.QuantileHist
			for i := 0; i < n; i++ {
				h.Observe(float64(i%1000) + 0.5)
			}
			return nil
		},
		// The hotpath/* entries pin the //cs:hotpath allocation budgets
		// (see the AllocsPerRun tests next to each root): their
		// committed allocs/op floors are ~0, so any steady-state
		// allocation creeping back breaches -compare immediately.
		"hotpath/engine-reuse": func(n int) error {
			var eng nowsim.Engine
			nop := func() {}
			for i := 0; i < n; i++ {
				eng.After(1, nop)
				eng.Step()
			}
			return nil
		},
		"hotpath/expected-work": func(n int) error {
			u, err := lifefn.NewUniform(2000)
			if err != nil {
				return err
			}
			// Box into the interface once, outside the measured loop —
			// re-boxing a concrete life per call is itself the
			// allocation pattern hotalloc flags.
			var l lifefn.Life = u
			sink := 0.0
			for i := 0; i < n; i++ {
				sink += sched.ExpectedWork(perfSchedule, l, perfOverhead)
			}
			_ = sink
			return nil
		},
		"hotpath/gradient-into": func(n int) error {
			u, err := lifefn.NewUniform(2000)
			if err != nil {
				return err
			}
			var l lifefn.Life = u
			buf := make([]float64, perfSchedule.Len())
			for i := 0; i < n; i++ {
				buf = sched.GradientInto(buf, perfSchedule, l, perfOverhead)
			}
			return nil
		},
		"hotpath/cache-hit": func(n int) error {
			c := serve.NewCache(256, 8, serve.CacheMetrics{})
			c.Put("hot-key", 42)
			for i := 0; i < n; i++ {
				if _, ok := c.Get("hot-key"); !ok {
					return fmt.Errorf("cache miss on resident key")
				}
			}
			return nil
		},
	}
	return order, suite
}

// runPerf executes the suite and writes the JSON report. Exit code 0 on
// success, 1 on any benchmark or write error.
func runPerf(runs int, outPath string, stdout, stderr io.Writer) int {
	report, code := collectPerf(runs, stdout, stderr)
	if code != 0 {
		return code
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "csbench:", err)
		return 1
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "csbench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", outPath)
	return 0
}

// collectPerf runs the whole suite and returns the aggregated report
// (shared by -perf, which persists it, and -compare, which diffs it
// against a baseline).
func collectPerf(runs int, stdout, stderr io.Writer) (perfReport, int) {
	if runs < 1 {
		runs = 1
	}
	order, suite := perfBenchmarks()
	report := perfReport{
		Suite:     "cycle-stealing hot paths",
		GoVersion: runtime.Version(),
		Runs:      runs,
	}
	mins := make(map[string]float64)
	for _, name := range order {
		bench := suite[name]
		var benchErr error
		f := func(n int) {
			if err := bench(n); err != nil && benchErr == nil {
				benchErr = err
			}
		}
		ns := make([]float64, 0, runs)
		allocs := make([]float64, 0, runs)
		for r := 0; r < runs; r++ {
			s := measureOnce(f)
			ns = append(ns, s.nsPerOp)
			allocs = append(allocs, s.allocsPerOp)
		}
		if benchErr != nil {
			fmt.Fprintf(stderr, "csbench: perf %s: %v\n", name, benchErr)
			return report, 1
		}
		res := perfBenchResult{
			Name:              name,
			NsPerOpMin:        minOf(ns),
			NsPerOpMedian:     median(ns),
			AllocsPerOpMin:    minOf(allocs),
			AllocsPerOpMedian: median(allocs),
		}
		report.Benchmarks = append(report.Benchmarks, res)
		mins[name] = res.NsPerOpMin
		fmt.Fprintf(stdout, "%-24s %12.1f ns/op (min %.1f)  %8.2f allocs/op\n",
			name, res.NsPerOpMedian, res.NsPerOpMin, res.AllocsPerOpMedian)
	}
	base := mins["episode/uninstrumented"]
	if base > 0 {
		report.NilObsOverheadPercent = 100 * (mins["episode/obs-disabled"] - base) / base
	}
	fmt.Fprintf(stdout, "nil-obs overhead: %+.2f%% (budget: <= 2%% on a quiet machine)\n",
		report.NilObsOverheadPercent)
	return report, 0
}
