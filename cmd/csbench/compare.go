package main

// The -compare gate: diff a freshly measured (or pre-recorded) perf
// report against a committed baseline and fail on budget breaches.
// This is the perf-history regression gate: BENCH_perf.json in the
// repo is the history, `csbench -compare BENCH_perf.json` is the
// check, and the machine-readable diff (-compare-out) is the artifact
// a CI run uploads so a breach is diagnosable without re-running.
//
// Budgets are ratios on the min-of-N statistics — min is the standard
// noise-floor estimator for microbenchmarks, so ratios of mins compare
// best-case against best-case and survive machine-to-machine noise far
// better than medians. A small absolute slack shields near-zero
// baselines (0.00 allocs/op, single-digit-ns ops) from infinite or
// wildly amplified ratios.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// nsSlackNs is the absolute ns/op increase always tolerated on top of
// the ratio budget: a 5 ns op drifting to 12 ns is timer noise, not a
// regression worth failing CI over.
const nsSlackNs = 25.0

// perfDelta is one benchmark's baseline-vs-candidate comparison.
type perfDelta struct {
	Name          string  `json:"name"`
	BaseNsMin     float64 `json:"base_ns_per_op_min"`
	NewNsMin      float64 `json:"new_ns_per_op_min"`
	NsRatio       float64 `json:"ns_ratio"`
	BaseAllocsMin float64 `json:"base_allocs_per_op_min"`
	NewAllocsMin  float64 `json:"new_allocs_per_op_min"`
	AllocsRatio   float64 `json:"allocs_ratio"`
	NsBreach      bool    `json:"ns_breach"`
	AllocBreach   bool    `json:"alloc_breach"`
	// Missing marks a benchmark present in the baseline but absent from
	// the candidate — always a breach: silently dropping a benchmark is
	// how a regression hides from its own gate.
	Missing bool `json:"missing,omitempty"`
}

// perfComparison is the machine-readable diff -compare-out persists.
type perfComparison struct {
	Baseline    string      `json:"baseline"`
	Candidate   string      `json:"candidate"`
	GoVersion   string      `json:"go_version"`
	NsBudget    float64     `json:"ns_budget"`
	AllocBudget float64     `json:"alloc_budget"`
	AllocSlack  float64     `json:"alloc_slack"`
	Breaches    int         `json:"breaches"`
	Regressed   bool        `json:"regressed"`
	Deltas      []perfDelta `json:"deltas"`
	// Added lists candidate benchmarks the baseline does not know —
	// informational, never a breach (refresh the history to adopt them).
	Added []string `json:"added,omitempty"`
}

func loadPerfReport(path string) (perfReport, error) {
	var r perfReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return r, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return r, nil
}

// comparePerf diffs candidate against baseline under the budgets.
func comparePerf(base, cand perfReport, baseName, candName string, nsBudget, allocBudget, allocSlack float64) perfComparison {
	cmp := perfComparison{
		Baseline:    baseName,
		Candidate:   candName,
		GoVersion:   cand.GoVersion,
		NsBudget:    nsBudget,
		AllocBudget: allocBudget,
		AllocSlack:  allocSlack,
	}
	candByName := make(map[string]perfBenchResult, len(cand.Benchmarks))
	for _, b := range cand.Benchmarks {
		candByName[b.Name] = b
	}
	baseNames := make(map[string]bool, len(base.Benchmarks))
	for _, bb := range base.Benchmarks {
		baseNames[bb.Name] = true
		d := perfDelta{
			Name:          bb.Name,
			BaseNsMin:     bb.NsPerOpMin,
			BaseAllocsMin: bb.AllocsPerOpMin,
		}
		cb, ok := candByName[bb.Name]
		if !ok {
			d.Missing = true
			cmp.Breaches++
			cmp.Deltas = append(cmp.Deltas, d)
			continue
		}
		d.NewNsMin = cb.NsPerOpMin
		d.NewAllocsMin = cb.AllocsPerOpMin
		if bb.NsPerOpMin > 0 {
			d.NsRatio = cb.NsPerOpMin / bb.NsPerOpMin
		}
		if bb.AllocsPerOpMin > 0 {
			d.AllocsRatio = cb.AllocsPerOpMin / bb.AllocsPerOpMin
		}
		if cb.NsPerOpMin > bb.NsPerOpMin*nsBudget+nsSlackNs {
			d.NsBreach = true
			cmp.Breaches++
		}
		if cb.AllocsPerOpMin > bb.AllocsPerOpMin*allocBudget+allocSlack {
			d.AllocBreach = true
			cmp.Breaches++
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	for _, cb := range cand.Benchmarks {
		if !baseNames[cb.Name] {
			cmp.Added = append(cmp.Added, cb.Name)
		}
	}
	sort.Strings(cmp.Added)
	cmp.Regressed = cmp.Breaches > 0
	return cmp
}

// runCompare is the -compare entry point. The candidate report comes
// from -against when given (a pure file-vs-file diff, fully
// deterministic — what the smoke test's negative case uses) or from a
// fresh run of the suite. Exit codes: 0 within budget, 1 budget
// breach, 2 bad input.
func runCompare(basePath, againstPath string, runs int, outPath string, nsBudget, allocBudget, allocSlack float64, stdout, stderr io.Writer) int {
	base, err := loadPerfReport(basePath)
	if err != nil {
		fmt.Fprintln(stderr, "csbench: compare baseline:", err)
		return 2
	}
	var cand perfReport
	candName := againstPath
	if againstPath != "" {
		if cand, err = loadPerfReport(againstPath); err != nil {
			fmt.Fprintln(stderr, "csbench: compare candidate:", err)
			return 2
		}
	} else {
		candName = "live"
		var code int
		if cand, code = collectPerf(runs, stdout, stderr); code != 0 {
			return code
		}
	}

	cmp := comparePerf(base, cand, basePath, candName, nsBudget, allocBudget, allocSlack)

	fmt.Fprintf(stdout, "comparing %s (baseline) vs %s (candidate)\n", cmp.Baseline, cmp.Candidate)
	for _, d := range cmp.Deltas {
		switch {
		case d.Missing:
			fmt.Fprintf(stdout, "BREACH   %-24s missing from candidate\n", d.Name)
		case d.NsBreach || d.AllocBreach:
			fmt.Fprintf(stdout, "BREACH   %-24s ns/op %10.1f -> %10.1f (x%.2f, budget x%.2f)  allocs/op %6.2f -> %6.2f (budget x%.2f+%g)\n",
				d.Name, d.BaseNsMin, d.NewNsMin, d.NsRatio, nsBudget,
				d.BaseAllocsMin, d.NewAllocsMin, allocBudget, allocSlack)
		default:
			fmt.Fprintf(stdout, "ok       %-24s ns/op %10.1f -> %10.1f (x%.2f)  allocs/op %6.2f -> %6.2f\n",
				d.Name, d.BaseNsMin, d.NewNsMin, d.NsRatio, d.BaseAllocsMin, d.NewAllocsMin)
		}
	}
	for _, name := range cmp.Added {
		fmt.Fprintf(stdout, "new      %-24s not in baseline (refresh the history to adopt)\n", name)
	}

	if outPath != "" {
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "csbench:", err)
			return 2
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "csbench:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s\n", outPath)
	}

	if cmp.Regressed {
		fmt.Fprintf(stdout, "FAIL: %d budget breach(es)\n", cmp.Breaches)
		return 1
	}
	fmt.Fprintf(stdout, "PASS: %d benchmark(s) within budget\n", len(cmp.Deltas))
	return 0
}
