package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkReport(benches ...perfBenchResult) perfReport {
	return perfReport{Suite: "test", GoVersion: "go0.0", Runs: 3, Benchmarks: benches}
}

func bench(name string, nsMin, allocsMin float64) perfBenchResult {
	return perfBenchResult{
		Name: name, NsPerOpMin: nsMin, NsPerOpMedian: nsMin * 1.1,
		AllocsPerOpMin: allocsMin, AllocsPerOpMedian: allocsMin,
	}
}

func TestComparePerfIdenticalPasses(t *testing.T) {
	base := mkReport(bench("a", 1000, 4), bench("b", 50, 0))
	cmp := comparePerf(base, base, "old", "new", 1.75, 1.15, 2)
	if cmp.Regressed || cmp.Breaches != 0 {
		t.Fatalf("identical reports regressed: %+v", cmp)
	}
	if len(cmp.Deltas) != 2 || cmp.Deltas[0].NsRatio != 1 {
		t.Errorf("deltas = %+v", cmp.Deltas)
	}
}

func TestComparePerfNsBreach(t *testing.T) {
	base := mkReport(bench("a", 1000, 4))
	cand := mkReport(bench("a", 2000, 4)) // x2 > x1.75 budget (+25ns slack)
	cmp := comparePerf(base, cand, "old", "new", 1.75, 1.15, 2)
	if !cmp.Regressed || cmp.Breaches != 1 || !cmp.Deltas[0].NsBreach {
		t.Fatalf("2x ns regression not flagged: %+v", cmp)
	}
	// Within budget: x1.5 passes.
	ok := comparePerf(base, mkReport(bench("a", 1500, 4)), "old", "new", 1.75, 1.15, 2)
	if ok.Regressed {
		t.Fatalf("1.5x flagged under a 1.75x budget: %+v", ok)
	}
}

func TestComparePerfNsSlackShieldsTinyOps(t *testing.T) {
	// 5ns -> 20ns is x4 but inside the +25ns absolute slack.
	base := mkReport(bench("tiny", 5, 0))
	cmp := comparePerf(base, mkReport(bench("tiny", 20, 0)), "old", "new", 1.75, 1.15, 2)
	if cmp.Regressed {
		t.Fatalf("timer-noise drift on a tiny op flagged: %+v", cmp)
	}
}

func TestComparePerfAllocBreachAndSlack(t *testing.T) {
	base := mkReport(bench("a", 1000, 0), bench("b", 1000, 100))
	// 0 -> 2 allocs: within the absolute slack of 2.
	ok := comparePerf(base, mkReport(bench("a", 1000, 2), bench("b", 1000, 100)), "o", "n", 1.75, 1.15, 2)
	if ok.Regressed {
		t.Fatalf("zero-baseline alloc drift inside slack flagged: %+v", ok)
	}
	// 100 -> 120: x1.2 > x1.15 budget + 2 slack (threshold 117).
	bad := comparePerf(base, mkReport(bench("a", 1000, 0), bench("b", 1000, 120)), "o", "n", 1.75, 1.15, 2)
	if !bad.Regressed || !bad.Deltas[1].AllocBreach {
		t.Fatalf("20%% alloc regression not flagged: %+v", bad)
	}
}

func TestComparePerfMissingIsBreachAddedIsNot(t *testing.T) {
	base := mkReport(bench("kept", 100, 1), bench("dropped", 100, 1))
	cand := mkReport(bench("kept", 100, 1), bench("brandnew", 100, 1))
	cmp := comparePerf(base, cand, "o", "n", 1.75, 1.15, 2)
	if !cmp.Regressed || cmp.Breaches != 1 {
		t.Fatalf("dropped benchmark not a breach: %+v", cmp)
	}
	var missing *perfDelta
	for i := range cmp.Deltas {
		if cmp.Deltas[i].Name == "dropped" {
			missing = &cmp.Deltas[i]
		}
	}
	if missing == nil || !missing.Missing {
		t.Fatalf("missing delta not marked: %+v", cmp.Deltas)
	}
	if len(cmp.Added) != 1 || cmp.Added[0] != "brandnew" {
		t.Errorf("added = %v", cmp.Added)
	}
}

func writeReport(t *testing.T, dir, name string, r perfReport) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The -against file-vs-file path: deterministic exit codes 0/1/2 and a
// machine-readable diff artifact.
func TestRunCompareFileVsFile(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", mkReport(bench("a", 1000, 4)))
	same := writeReport(t, dir, "same.json", mkReport(bench("a", 1000, 4)))
	regressed := writeReport(t, dir, "bad.json", mkReport(bench("a", 9000, 4)))
	outPath := filepath.Join(dir, "diff.json")

	var stdout, stderr bytes.Buffer
	if code := runCompare(base, same, 1, outPath, 1.75, 1.15, 2, &stdout, &stderr); code != 0 {
		t.Fatalf("identical compare exit = %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "PASS") {
		t.Errorf("stdout missing PASS: %s", stdout.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("diff artifact not written: %v", err)
	}
	var cmp perfComparison
	if err := json.Unmarshal(data, &cmp); err != nil {
		t.Fatalf("diff artifact not JSON: %v", err)
	}
	if cmp.Regressed || len(cmp.Deltas) != 1 {
		t.Errorf("diff artifact = %+v", cmp)
	}

	stdout.Reset()
	if code := runCompare(base, regressed, 1, outPath, 1.75, 1.15, 2, &stdout, &stderr); code != 1 {
		t.Fatalf("regressed compare exit = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "BREACH") || !strings.Contains(stdout.String(), "FAIL") {
		t.Errorf("stdout missing breach report: %s", stdout.String())
	}
	data, err = os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &cmp); err != nil {
		t.Fatal(err)
	}
	if !cmp.Regressed || cmp.Breaches != 1 {
		t.Errorf("regressed diff artifact = %+v", cmp)
	}
}

func TestRunCompareBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", mkReport(bench("a", 1, 1)))
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := runCompare(filepath.Join(dir, "nope.json"), good, 1, "", 1.75, 1.15, 2, &out, &out); code != 2 {
		t.Errorf("missing baseline exit = %d, want 2", code)
	}
	if code := runCompare(good, empty, 1, "", 1.75, 1.15, 2, &out, &out); code != 2 {
		t.Errorf("empty candidate exit = %d, want 2", code)
	}
}
