// Command cssim Monte-Carlo-simulates cycle-stealing policies on a
// scenario and reports committed work, losses and the match against the
// analytic E(S; p).
//
// Usage:
//
//	cssim -life uniform -L 1000 -c 1 -episodes 100000
//	cssim -life geomdec -halflife 32 -c 1 -policy fixed -chunk 10
//	cssim -life geominc -L 64 -c 1 -policy progressive
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/sched"
)

func main() {
	var (
		lifeName = flag.String("life", "uniform", "life function: uniform, poly, geomdec, geominc")
		lifespan = flag.Float64("L", 1000, "potential lifespan")
		halfLife = flag.Float64("halflife", 32, "half-life (geomdec)")
		d        = flag.Int("d", 2, "exponent (poly)")
		c        = flag.Float64("c", 1, "per-period communication overhead")
		policy   = flag.String("policy", "guideline", "policy: guideline, fixed, progressive")
		chunk    = flag.Float64("chunk", 10, "chunk size (fixed policy)")
		episodes = flag.Int("episodes", 100000, "number of Monte-Carlo episodes")
		seed     = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	life, err := buildLife(*lifeName, *lifespan, *halfLife, *d)
	if err != nil {
		fatal(err)
	}

	var (
		pol      nowsim.Policy
		analytic = math.NaN()
	)
	switch *policy {
	case "guideline":
		pl, err := core.NewPlanner(life, *c, core.PlanOptions{})
		if err != nil {
			fatal(err)
		}
		plan, err := pl.PlanBest()
		if err != nil {
			fatal(err)
		}
		pol = nowsim.NewSchedulePolicy(plan.Schedule, "guideline")
		analytic = plan.ExpectedWork
	case "fixed":
		pol = &nowsim.FixedChunkPolicy{Chunk: *chunk}
	case "progressive":
		pp, err := nowsim.NewProgressivePolicy(life, *c, core.PlanOptions{})
		if err != nil {
			fatal(err)
		}
		pol = pp
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	res := nowsim.MonteCarlo(pol, nowsim.LifeOwner{Life: life}, *c, *episodes, *seed)
	fmt.Printf("scenario      : %s, c=%g, policy=%s, %d episodes (seed %d)\n",
		life, *c, pol, *episodes, *seed)
	fmt.Printf("work          : %s\n", res.Work)
	fmt.Printf("lost          : %s\n", res.Lost)
	fmt.Printf("periods/eps   : %s\n", res.Periods)
	fmt.Printf("reclaimed     : %d/%d episodes\n", res.Reclaimed, res.Episodes)
	if !math.IsNaN(analytic) {
		z := 0.0
		if res.Work.StdErr > 0 {
			z = math.Abs(res.Work.Mean-analytic) / res.Work.StdErr
		}
		fmt.Printf("analytic E    : %.6g (z = %.2f)\n", analytic, z)
	}
	_ = sched.Schedule{}
}

func buildLife(name string, lifespan, halfLife float64, d int) (lifefn.Life, error) {
	switch name {
	case "uniform":
		return lifefn.NewUniform(lifespan)
	case "poly":
		return lifefn.NewPoly(d, lifespan)
	case "geomdec":
		if !(halfLife > 0) {
			return nil, fmt.Errorf("cssim: half-life must be positive, got %g", halfLife)
		}
		return lifefn.NewGeomDecreasing(math.Pow(2, 1/halfLife))
	case "geominc":
		return lifefn.NewGeomIncreasing(lifespan)
	default:
		return nil, fmt.Errorf("cssim: unknown life function %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cssim:", err)
	os.Exit(1)
}
