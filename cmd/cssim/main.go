// Command cssim Monte-Carlo-simulates cycle-stealing policies on a
// scenario and reports committed work, losses and the match against the
// analytic E(S; p).
//
// Usage:
//
//	cssim -life uniform -L 1000 -c 1 -episodes 100000
//	cssim -life geomdec -halflife 32 -c 1 -policy fixed -chunk 10
//	cssim -life geominc -L 64 -c 1 -policy progressive
//	cssim -episodes 2000 -trace episodes.jsonl      # structured trace
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/nowsim"
	"repro/internal/obs"
)

func main() {
	var (
		lifeName = flag.String("life", "uniform", "life function: uniform, poly, geomdec, geominc")
		lifespan = flag.Float64("L", 1000, "potential lifespan")
		halfLife = flag.Float64("halflife", 32, "half-life (geomdec)")
		d        = flag.Int("d", 2, "exponent (poly)")
		c        = flag.Float64("c", 1, "per-period communication overhead")
		policy   = flag.String("policy", "guideline", "policy: guideline, fixed, progressive, allatonce")
		chunk    = flag.Float64("chunk", 10, "chunk size (fixed policy)")
		episodes = flag.Int("episodes", 100000, "number of Monte-Carlo episodes")
		seed     = flag.Uint64("seed", 1, "RNG seed")
	)
	var obsFlags obs.Flags
	obsFlags.Register(nil)
	flag.Parse()

	life, err := nowsim.BuildLife(*lifeName, *lifespan, *halfLife, *d)
	if err != nil {
		fatal(err)
	}

	// The historical -policy fixed + -chunk pair maps onto the shared
	// "fixed:<chunk>" spec; all other names pass through unchanged.
	polSpec := *policy
	if polSpec == "fixed" {
		polSpec = fmt.Sprintf("fixed:%g", *chunk)
	}
	spec, err := nowsim.ParsePolicy(polSpec, life, *c, core.PlanOptions{})
	if err != nil {
		fatal(err)
	}
	analytic := math.NaN()
	if spec.Plan != nil {
		analytic = spec.Plan.ExpectedWork
	}

	reg := obs.NewRegistry()
	session, err := obsFlags.Setup(reg)
	if err != nil {
		fatal(err)
	}
	defer session.Close()
	o := nowsim.Obs{Sink: session.Sink}
	if session.Server != nil {
		o.Metrics = reg
		fmt.Fprintf(os.Stderr, "cssim: serving metrics on %s\n", session.Server.Addr())
	}

	pol := spec.Factory()
	res := nowsim.MonteCarloObs(pol, nowsim.LifeOwner{Life: life}, *c, *episodes, *seed, o)
	if err := session.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("scenario      : %s, c=%g, policy=%s, %d episodes (seed %d)\n",
		life, *c, pol, *episodes, *seed)
	fmt.Printf("work          : %s\n", res.Work)
	fmt.Printf("lost          : %s\n", res.Lost)
	fmt.Printf("periods/eps   : %s\n", res.Periods)
	fmt.Printf("reclaimed     : %d/%d episodes\n", res.Reclaimed, res.Episodes)
	if !math.IsNaN(analytic) {
		z := 0.0
		if res.Work.StdErr > 0 {
			z = math.Abs(res.Work.Mean-analytic) / res.Work.StdErr
		}
		fmt.Printf("analytic E    : %.6g (z = %.2f)\n", analytic, z)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cssim:", err)
	os.Exit(1)
}
