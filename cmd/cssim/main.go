// Command cssim Monte-Carlo-simulates cycle-stealing policies on a
// scenario and reports committed work, losses and the match against the
// analytic E(S; p).
//
// Usage:
//
//	cssim -life uniform -L 1000 -c 1 -episodes 100000
//	cssim -life geomdec -halflife 32 -c 1 -policy fixed -chunk 10
//	cssim -life geominc -L 64 -c 1 -policy progressive
//	cssim -episodes 2000 -trace episodes.jsonl      # structured trace
//
// Exit status: 0 on success, 1 on runtime failures, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/nowsim"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cssim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		lifeName = fs.String("life", "uniform", "life function: uniform, poly, geomdec, geominc")
		lifespan = fs.Float64("L", 1000, "potential lifespan")
		halfLife = fs.Float64("halflife", 32, "half-life (geomdec)")
		d        = fs.Int("d", 2, "exponent (poly)")
		c        = fs.Float64("c", 1, "per-period communication overhead")
		policy   = fs.String("policy", "guideline", "policy: guideline, fixed, progressive, allatonce")
		chunk    = fs.Float64("chunk", 10, "chunk size (fixed policy)")
		episodes = fs.Int("episodes", 100000, "number of Monte-Carlo episodes")
		seed     = fs.Uint64("seed", 1, "RNG seed")
	)
	var obsFlags obs.Flags
	obsFlags.Register(fs)
	if err := fs.Parse(argv); err != nil {
		// Parse already printed the error and usage to stderr.
		return 2
	}

	life, err := nowsim.BuildLife(*lifeName, *lifespan, *halfLife, *d)
	if err != nil {
		fmt.Fprintln(stderr, "cssim:", err)
		return 2
	}

	// The historical -policy fixed + -chunk pair maps onto the shared
	// "fixed:<chunk>" spec; all other names pass through unchanged.
	polSpec := *policy
	if polSpec == "fixed" {
		polSpec = fmt.Sprintf("fixed:%g", *chunk)
	}
	spec, err := nowsim.ParsePolicy(polSpec, life, *c, core.PlanOptions{})
	if err != nil {
		fmt.Fprintln(stderr, "cssim:", err)
		return 2
	}
	analytic := math.NaN()
	if spec.Plan != nil {
		analytic = spec.Plan.ExpectedWork
	}

	reg := obs.NewRegistry()
	session, err := obsFlags.Setup(reg)
	if err != nil {
		fmt.Fprintln(stderr, "cssim:", err)
		return 2
	}
	defer session.Close()
	o := nowsim.Obs{Sink: session.Sink}
	if session.Server != nil {
		o.Metrics = reg
		fmt.Fprintf(stderr, "cssim: serving metrics on %s\n", session.Server.Addr())
	}

	pol := spec.Factory()
	res := nowsim.MonteCarloObs(pol, nowsim.LifeOwner{Life: life}, *c, *episodes, *seed, o)
	if err := session.Close(); err != nil {
		fmt.Fprintln(stderr, "cssim:", err)
		return 1
	}
	fmt.Fprintf(stdout, "scenario      : %s, c=%g, policy=%s, %d episodes (seed %d)\n",
		life, *c, pol, *episodes, *seed)
	fmt.Fprintf(stdout, "work          : %s\n", res.Work)
	fmt.Fprintf(stdout, "lost          : %s\n", res.Lost)
	fmt.Fprintf(stdout, "periods/eps   : %s\n", res.Periods)
	fmt.Fprintf(stdout, "reclaimed     : %d/%d episodes\n", res.Reclaimed, res.Episodes)
	if !math.IsNaN(analytic) {
		z := 0.0
		if res.Work.StdErr > 0 {
			z = math.Abs(res.Work.Mean-analytic) / res.Work.StdErr
		}
		fmt.Fprintf(stdout, "analytic E    : %.6g (z = %.2f)\n", analytic, z)
	}
	return 0
}
