package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	small := []string{"-episodes", "200", "-L", "100"}
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"ok", small, 0},
		{"fixed policy", append(append([]string{}, small...), "-policy", "fixed", "-chunk", "10"), 0},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"help", []string{"-h"}, 2},
		{"bad life", []string{"-life", "cauchy"}, 2},
		{"bad lifespan", []string{"-life", "uniform", "-L", "-5"}, 2},
		{"bad policy", append(append([]string{}, small...), "-policy", "nope"), 2},
		{"bad chunk", append(append([]string{}, small...), "-policy", "fixed", "-chunk", "-1"), 2},
		{"bad trace format", append(append([]string{}, small...), "-trace", filepath.Join(t.TempDir(), "x"), "-trace-format", "xml"), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.argv, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstderr: %s", tc.argv, got, tc.want, stderr.String())
			}
		})
	}
}

func TestRunReportsWork(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-episodes", "500", "-L", "100"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	for _, want := range []string{"scenario", "work", "analytic E"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("report missing %q:\n%s", want, stdout.String())
		}
	}
}
