// Command csgate is the cluster front tier: it consistent-hash-routes
// plan and estimate requests across N csserve replicas by their
// canonical cache key, so every key has one owner replica and the
// cluster as a whole computes each distinct question at most once.
// Rendezvous hashing means adding or draining a replica remaps only
// that replica's own arc — a rolling restart never invalidates the
// survivors' caches.
//
// Usage:
//
//	csgate -replicas http://h1:8080,http://h2:8080,http://h3:8080
//	csgate -addr :8090 -probe 500ms -retries 2
//	csgate -trace-store 4096 -slo-target 0.999
//
// Routing walks the key's preference order (owner first, then the
// replica that would take over if the owner drained): a replica that
// is draining (healthz 503), marked down by the prober, or fails in
// transport is skipped or retried around, so a rolling replica restart
// costs clients nothing but a failover hop. 429s pass through — load
// shedding is the replica's answer, not a routing failure.
//
// Endpoints: POST /v1/plan and POST /v1/estimate (proxied),
// GET /v1/healthz (the gate's cluster view: per-replica up / draining
// / down), /metrics, /debug/pprof and /debug/vars from the shared obs
// mux, GET /debug/traces (gate-level request traces, stitched above
// the replicas' own), and GET /debug/slo (gate-level burn rates — the
// user-facing SLO, measured in front of the whole fleet).
//
// Exit status: 0 on clean shutdown, 1 on serve failure, 2 on usage
// errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

// version is the build stamp reported by /v1/healthz; override with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/csgate
var version = "dev"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Replica health states, as the prober and the forwarding path see
// them. Transitions are monotone within a probe interval: forwarding
// only ever degrades a replica (up -> draining/down); the prober is
// what promotes it back.
const (
	stateUp int32 = iota
	stateDraining
	stateDown
)

func stateName(s int32) string {
	switch s {
	case stateUp:
		return "up"
	case stateDraining:
		return "draining"
	default:
		return "down"
	}
}

// replica is one backend's identity plus its last observed health.
type replica struct {
	url    string
	state  atomic.Int32
	up     *obs.Gauge
	routed *obs.Counter
}

// gate is the routing core: the ring, the replica table, and the
// forwarding client.
type gate struct {
	ring     *cluster.Ring
	replicas map[string]*replica
	client   *http.Client
	retries  int

	start    time.Time
	draining atomic.Bool

	failover  *obs.Counter
	exhausted *obs.Counter
}

func newGate(urls []string, retries int, clientTimeout time.Duration, reg *obs.Registry) *gate {
	g := &gate{
		ring:     cluster.NewRing(urls),
		replicas: make(map[string]*replica, len(urls)),
		client:   &http.Client{Timeout: clientTimeout},
		retries:  retries,
		start:    time.Now(),
		failover: reg.Counter("cs_gate_failover_total",
			"requests re-routed past a draining, down, or failing replica"),
		exhausted: reg.Counter("cs_gate_exhausted_total",
			"requests that failed on every candidate replica (answered 502)"),
	}
	for _, u := range g.ring.Nodes() {
		rep := &replica{
			url: u,
			up: reg.Gauge(obs.Labeled("cs_gate_replica_up", "replica", u),
				"replica health as the prober sees it (1 up, 0.5 draining, 0 down)"),
			routed: reg.Counter(obs.Labeled("cs_gate_routed_total", "replica", u),
				"requests forwarded to this replica"),
		}
		rep.up.Set(1)
		g.replicas[u] = rep
	}
	return g
}

// canonicalKey derives the routing key for a request body: the same
// canonical cache key the replica will compute, so the ring and the
// replica caches agree on key identity. A body the gate cannot
// canonicalize still routes deterministically (by its raw bytes) and
// lets the owner replica produce the real 4xx.
func canonicalKey(route string, body []byte) string {
	switch route {
	case "plan":
		var spec serve.PlanSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return string(body)
		}
		norm, err := spec.Canonicalize()
		if err != nil {
			return string(body)
		}
		return norm.Key()
	case "estimate":
		var spec serve.EstimateSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return string(body)
		}
		norm, err := spec.Canonicalize()
		if err != nil {
			return string(body)
		}
		return norm.Key()
	}
	return string(body)
}

// httpError mirrors the replicas' JSON error payload.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// proxy returns the handler that routes one endpoint. It buffers the
// request body (needed for both key derivation and replay on
// failover), then walks the key's candidate replicas — healthy ones in
// preference order first, unhealthy ones after as a last resort in
// case the prober's view is stale.
func (g *gate) proxy(route, path string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if g.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, httpError{Error: "gate is draining"})
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, httpError{Error: "bad request body: " + err.Error()})
			return
		}
		key := canonicalKey(route, body)
		rt := obs.ReqTraceFrom(r.Context())

		var healthy, unhealthy []*replica
		for _, u := range g.ring.Owners(key, g.ring.Len()) {
			rep := g.replicas[u]
			if rep.state.Load() == stateUp {
				healthy = append(healthy, rep)
			} else {
				unhealthy = append(unhealthy, rep)
			}
		}
		candidates := append(healthy, unhealthy...)
		attempts := g.retries + 1
		if attempts > len(candidates) {
			attempts = len(candidates)
		}
		for i := 0; i < attempts; i++ {
			if i > 0 {
				g.failover.Inc()
			}
			if g.forward(w, r, candidates[i], path, body, rt) {
				return
			}
			if r.Context().Err() != nil {
				break // client gone: stop burning replicas
			}
		}
		g.exhausted.Inc()
		writeJSON(w, http.StatusBadGateway, httpError{Error: "no replica could serve the request"})
	})
}

// forward sends the buffered body to rep and, on success, streams the
// response back. It returns false — without having written anything —
// when the attempt should fail over: transport error (replica marked
// down) or 503 (replica draining / pool closed; marked draining). A
// 429 is a real answer: shedding passes through to the client.
func (g *gate) forward(w http.ResponseWriter, r *http.Request, rep *replica, path string, body []byte, rt *obs.ReqTrace) bool {
	endProxy := rt.StartPhase("proxy")
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, rep.url+path, bytes.NewReader(body))
	if err != nil {
		endProxy("replica", rep.url, "outcome", "error")
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	if tc := rt.Context(); tc.Valid() {
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	}
	resp, err := g.client.Do(req)
	if err != nil {
		rep.state.Store(stateDown)
		rep.up.Set(0)
		endProxy("replica", rep.url, "outcome", "down")
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		rep.state.Store(stateDraining)
		rep.up.Set(0.5)
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		endProxy("replica", rep.url, "outcome", "draining")
		return false
	}
	rep.routed.Inc()
	rt.Annotate("replica", rep.url)
	h := w.Header()
	h.Set("X-CS-Replica", rep.url)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		h.Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	endProxy("replica", rep.url, "outcome", "ok")
	return true
}

// probeOnce sweeps every replica's /v1/healthz concurrently: 200 is
// up, 503 is draining (csserve answers it from BeginDrain to pool
// close), anything else — including transport failure — is down.
func (g *gate) probeOnce(ctx context.Context, timeout time.Duration) {
	var wg sync.WaitGroup
	for _, rep := range g.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.url+"/v1/healthz", nil)
			if err != nil {
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				rep.state.Store(stateDown)
				rep.up.Set(0)
				return
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			switch resp.StatusCode {
			case http.StatusOK:
				rep.state.Store(stateUp)
				rep.up.Set(1)
			case http.StatusServiceUnavailable:
				rep.state.Store(stateDraining)
				rep.up.Set(0.5)
			default:
				rep.state.Store(stateDown)
				rep.up.Set(0)
			}
		}(rep)
	}
	wg.Wait()
}

// ReplicaHealth is one backend's row in the gate healthz payload.
type ReplicaHealth struct {
	URL   string `json:"url"`
	State string `json:"state"`
}

// Healthz is the gate's cluster view.
type Healthz struct {
	Status        string          `json:"status"`
	Version       string          `json:"version"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	RingSize      int             `json:"ring_size"`
	Up            int             `json:"up"`
	Replicas      []ReplicaHealth `json:"replicas"`
}

func (g *gate) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Healthz{
		Version:       version,
		UptimeSeconds: time.Since(g.start).Seconds(),
		RingSize:      g.ring.Len(),
	}
	for _, u := range g.ring.Nodes() {
		st := g.replicas[u].state.Load()
		if st == stateUp {
			h.Up++
		}
		h.Replicas = append(h.Replicas, ReplicaHealth{URL: u, State: stateName(st)})
	}
	status := http.StatusOK
	switch {
	case g.draining.Load():
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	case h.Up == 0:
		h.Status = "unavailable"
		status = http.StatusServiceUnavailable
	case h.Up < h.RingSize:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	writeJSON(w, status, h)
}

func run(argv []string, stdout, stderr io.Writer) int {
	return runApp(argv, stdout, stderr, nil, nil)
}

// runApp is run with test hooks: when ready is non-nil it receives the
// bound listen address once serving, and a receive on stop triggers
// the same graceful drain as SIGTERM.
func runApp(argv []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("csgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8090", "listen address (use :0 for an ephemeral port)")
		replicas = fs.String("replicas", "", "comma-separated base URLs of the csserve replicas (required)")
		probe    = fs.Duration("probe", 500*time.Millisecond, "replica health-probe interval (negative disables the prober)")
		retries  = fs.Int("retries", -1, "failed-replica retry hops per request (-1 = try every candidate)")
		timeout  = fs.Duration("timeout", 5*time.Minute, "outbound request timeout (covers a cold Monte-Carlo estimate)")
		grace    = fs.Duration("grace", 15*time.Second, "shutdown grace period for in-flight requests")

		traceStore   = fs.Int("trace-store", 2048, "request trace store capacity in records (negative disables tracing)")
		traceSample  = fs.Float64("trace-sample", 0.1, "probability of keeping an unremarkable request's trace")
		traceSlowest = fs.Int("trace-slowest", 8, "always keep the slowest N requests per -trace-window")
		traceWindow  = fs.Duration("trace-window", 10*time.Second, "comparison window for -trace-slowest")

		sloTarget        = fs.Float64("slo-target", 0.999, "availability objective: target fraction of non-5xx responses")
		sloLatencyMS     = fs.Float64("slo-latency-ms", 250, "latency SLI threshold in milliseconds")
		sloLatencyTarget = fs.Float64("slo-latency-target", 0.99, "latency objective: target fraction of served responses under -slo-latency-ms")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "csgate: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(stderr, "csgate: -replicas is required (comma-separated base URLs)")
		return 2
	}

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *traceStore >= 0 {
		tracer = obs.NewTracer(obs.TracerConfig{
			Capacity:   *traceStore,
			SampleRate: *traceSample,
			SlowestK:   *traceSlowest,
			Window:     *traceWindow,
		})
	}
	slo := obs.NewSLOTracker(obs.SLOConfig{
		AvailabilityObjective: *sloTarget,
		LatencyObjective:      *sloLatencyTarget,
		LatencyThresholdMS:    *sloLatencyMS,
	})
	nRetries := *retries
	if nRetries < 0 {
		nRetries = len(urls) - 1
	}
	g := newGate(urls, nRetries, *timeout, reg)

	mux := obs.NewMux(reg)
	mux.Handle("POST /v1/plan", obs.InstrumentHandler(reg, "plan", tracer, slo, g.proxy("plan", "/v1/plan")))
	mux.Handle("POST /v1/estimate", obs.InstrumentHandler(reg, "estimate", tracer, slo, g.proxy("estimate", "/v1/estimate")))
	mux.Handle("GET /v1/healthz", obs.InstrumentHandler(reg, "healthz", tracer, nil, http.HandlerFunc(g.handleHealthz)))
	if tracer != nil {
		mux.Handle("GET /debug/traces", tracer)
	}
	mux.Handle("GET /debug/slo", slo)
	srv := &http.Server{Handler: mux}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "csgate:", err)
		return 1
	}
	fmt.Fprintf(stderr, "csgate: listening on %s, routing %d replicas\n", lis.Addr(), len(urls))
	if ready != nil {
		ready <- lis.Addr().String()
	}

	probeCtx, cancelProbe := context.WithCancel(context.Background())
	defer cancelProbe()
	if *probe > 0 {
		//lint:allow goroutinecap the prober owns no shared state beyond the replicas' atomics; probeCtx cancellation stops it
		go func() {
			ticker := time.NewTicker(*probe)
			defer ticker.Stop()
			g.probeOnce(probeCtx, *probe)
			for {
				select {
				case <-ticker.C:
					g.probeOnce(probeCtx, *probe)
				case <-probeCtx.Done():
					return
				}
			}
		}()
	}

	termCtx, cancelTerm := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancelTerm()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "csgate:", err)
		return 1
	case <-termCtx.Done():
	case <-stop: // nil when not under test: blocks forever
	}

	fmt.Fprintln(stderr, "csgate: draining")
	g.draining.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "csgate: shutdown:", err)
		code = 1
	}
	fmt.Fprintln(stdout, "csgate: drained")
	return code
}
