package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeReplica is a stand-in csserve backend: answers plan/estimate
// with a stamped payload naming itself, healthz per its mode, and
// counts the requests it served.
type fakeReplica struct {
	name   string
	srv    *httptest.Server
	mode   atomic.Int32 // 0 ok, 1 draining (503 everywhere), 2 dead (conn refused)
	served atomic.Int64
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{name: name}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.mode.Load() != 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	serve := func(w http.ResponseWriter, r *http.Request) {
		if f.mode.Load() != 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
			return
		}
		f.served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"served_by":%q,"traceparent":%q}`, f.name, r.Header.Get("traceparent"))
	}
	mux.HandleFunc("POST /v1/plan", serve)
	mux.HandleFunc("POST /v1/estimate", serve)
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// startGate boots runApp on an ephemeral port routing the given
// replicas and returns the base URL plus a drain func.
func startGate(t *testing.T, extraArgs []string, replicas ...*fakeReplica) string {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, f := range replicas {
		urls[i] = f.srv.URL
	}
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-replicas", strings.Join(urls, ","),
		"-probe", "-1ms", // deterministic tests: health moves only via forwarding
		"-grace", "2s",
	}, extraArgs...)
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() { code <- runApp(args, &stdout, &stderr, ready, stop) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("gate never became ready; stderr: %s", stderr.String())
	}
	t.Cleanup(func() {
		close(stop)
		select {
		case c := <-code:
			if c != 0 {
				t.Errorf("gate exit code = %d; stderr: %s", c, stderr.String())
			}
		case <-time.After(5 * time.Second):
			t.Error("gate never exited")
		}
	})
	return "http://" + addr
}

type gateReply struct {
	ServedBy    string `json:"served_by"`
	Traceparent string `json:"traceparent"`
	Error       string `json:"error"`
}

func postPlan(t *testing.T, base, body string) (int, string, gateReply) {
	t.Helper()
	resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out gateReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding reply: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("X-CS-Replica"), out
}

// Routing is deterministic per key, spreads distinct keys, and
// canonically equivalent bodies land on one replica.
func TestGateConsistentRouting(t *testing.T) {
	reps := []*fakeReplica{
		newFakeReplica(t, "r0"), newFakeReplica(t, "r1"), newFakeReplica(t, "r2"),
	}
	base := startGate(t, nil, reps...)

	// Same key always routes to the same replica.
	first := ""
	for i := 0; i < 5; i++ {
		status, rep, out := postPlan(t, base, `{"life":"uniform","lifespan":450}`)
		if status != 200 {
			t.Fatalf("status %d (%s)", status, out.Error)
		}
		if out.Traceparent == "" {
			t.Error("gate did not propagate a traceparent to the replica")
		}
		if first == "" {
			first = rep
		} else if rep != first {
			t.Fatalf("request %d routed to %s, earlier ones to %s", i, rep, first)
		}
	}

	// Bodies that canonicalize to the same spec share a route: uniform
	// ignores halflife and d, and lifespan 1000 is the default.
	routes := map[string]bool{}
	for _, body := range []string{
		`{}`,
		`{"life":"uniform"}`,
		`{"life":"uniform","lifespan":1000,"halflife":7,"d":5}`,
	} {
		_, rep, _ := postPlan(t, base, body)
		routes[rep] = true
	}
	if len(routes) != 1 {
		t.Errorf("canonically equal bodies hit %d replicas, want 1", len(routes))
	}

	// Distinct keys spread: with 64 keys over 3 replicas every replica
	// should see traffic.
	for i := 0; i < 64; i++ {
		postPlan(t, base, fmt.Sprintf(`{"life":"uniform","lifespan":%d}`, 100+i))
	}
	for _, f := range reps {
		if f.served.Load() == 0 {
			t.Errorf("replica %s served nothing across 64 distinct keys", f.name)
		}
	}
}

// A draining (503) replica and a dead replica are routed around with
// no client-visible error; the reply names the survivor.
func TestGateFailover(t *testing.T) {
	reps := []*fakeReplica{
		newFakeReplica(t, "r0"), newFakeReplica(t, "r1"), newFakeReplica(t, "r2"),
	}
	base := startGate(t, nil, reps...)

	byURL := map[string]*fakeReplica{}
	for _, f := range reps {
		byURL[f.srv.URL] = f
	}
	body := `{"life":"geomdec","halflife":12}`
	status, owner, _ := postPlan(t, base, body)
	if status != 200 {
		t.Fatalf("baseline status %d", status)
	}

	// Draining owner: 503 passes over to the next preferred replica.
	byURL[owner].mode.Store(1)
	status, second, out := postPlan(t, base, body)
	if status != 200 {
		t.Fatalf("status %d after owner drained (%s)", status, out.Error)
	}
	if second == owner {
		t.Fatalf("request still routed to draining replica %s", owner)
	}

	// Dead owner too: close its listener outright.
	byURL[owner].srv.Close()
	status, third, out := postPlan(t, base, body)
	if status != 200 {
		t.Fatalf("status %d after owner died (%s)", status, out.Error)
	}
	if third != second {
		t.Errorf("failover target moved from %s to %s with no ring change", second, third)
	}

	// All replicas draining: the gate answers 502 after exhausting the
	// ring, not a hang and not a raw transport error.
	for _, f := range reps {
		f.mode.Store(1)
	}
	status, _, out = postPlan(t, base, body)
	if status != http.StatusBadGateway {
		t.Fatalf("status %d with whole cluster draining, want 502", status)
	}
	if out.Error == "" {
		t.Error("502 carried no JSON error body")
	}
}

// healthz reports the prober's view and degrades with the fleet.
func TestGateHealthz(t *testing.T) {
	reps := []*fakeReplica{newFakeReplica(t, "r0"), newFakeReplica(t, "r1")}
	base := startGate(t, []string{"-probe", "25ms"}, reps...)

	get := func() (int, Healthz) {
		t.Helper()
		resp, err := http.Get(base + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Healthz
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	status, h := get()
	if status != 200 || h.Status != "ok" || h.Up != 2 || h.RingSize != 2 || len(h.Replicas) != 2 {
		t.Fatalf("healthy cluster healthz = %d %+v", status, h)
	}

	reps[0].mode.Store(1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, h = get()
		if h.Status == "degraded" || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status != 200 || h.Status != "degraded" || h.Up != 1 {
		t.Fatalf("half-drained cluster healthz = %d %+v", status, h)
	}

	reps[1].mode.Store(1)
	deadline = time.Now().Add(2 * time.Second)
	for {
		status, h = get()
		if h.Status == "unavailable" || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status != http.StatusServiceUnavailable || h.Status != "unavailable" {
		t.Fatalf("dead cluster healthz = %d %+v", status, h)
	}
}

// Usage errors exit 2 without serving.
func TestGateUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                          // missing -replicas
		{"-replicas", " , "},        // effectively empty
		{"-bogus"},                  // unknown flag
		{"-replicas", "x", "extra"}, // positional junk
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2; stderr: %s", args, code, stderr.String())
		}
	}
}
