// Command csserve is the long-running planning and estimation service:
// the paper's guideline schedule (system 3.6) and Monte-Carlo E(S;p)
// estimates behind an HTTP/JSON API, built to survive production
// traffic — sharded LRU plan cache, request coalescing, and a bounded
// worker pool that sheds load with 429 instead of queueing unboundedly.
//
// Usage:
//
//	csserve                              # listen on :8080
//	csserve -addr :9000 -workers 8 -queue 128
//	csserve -plan-cache 8192 -est-cache 1024 -shards 32
//	csserve -timeout 5s -max-timeout 30s -max-episodes 1000000
//	csserve -flight 4096                 # ring of recent requests,
//	                                     # dumped to stderr on SIGQUIT
//	csserve -trace-store 4096 -trace-sample 0.5 -trace-slowest 16
//	csserve -runtime-sample 10s -leak-limit 0
//	csserve -slo-target 0.999 -slo-latency-ms 250 -slo-latency-target 0.99
//	csserve -self http://h1:8080 -peers http://h2:8080,http://h3:8080 \
//	        -fill steal                  # join a cluster (see csgate)
//
// Endpoints: POST /v1/plan, POST /v1/estimate, GET /v1/healthz, plus
// /metrics, /debug/vars and /debug/pprof from the shared obs mux, and
// GET /debug/traces — the tail-sampled request trace store (always
// keeps errors and the slowest -trace-slowest per -trace-window;
// keeps the rest with probability -trace-sample). Requests carry W3C
// traceparent in, X-Trace-Id and Server-Timing out.
//
// Runtime observability: the runtime/metrics bridge samples GC pause
// quantiles, heap residency, allocation throughput, scheduler latency
// and the goroutine population into /metrics every -runtime-sample;
// GET /debug/slo reports rolling-window error and latency burn rates
// against the -slo-* objectives; GET /debug/delta/allocs and
// GET /debug/delta/heap diff two in-process heap-profile snapshots
// ?seconds apart — allocation sources or live-heap growth since the
// last GC, with no restart and no external tooling.
//
// Clustering: with -self and -peers the replica joins a consistent-
// hash cluster (fronted by csgate). It mounts the peer protocol
// (GET /v1/peer/cache/{key}, POST /v1/peer/warm, GET /v1/peer/hot),
// fills cache misses from peers per -fill (steal pulls on miss, share
// push-replicates on compute), pulls peers' hot entries for its own
// arc at startup, and hands its hottest -warm-hot entries to their
// next owners before exiting — a rolling restart keeps the cluster's
// working set warm instead of recomputing it.
//
// SIGTERM or SIGINT drains gracefully: healthz flips to 503 first (so
// the csgate prober routes around this replica), the hot working set
// is handed to peers, then the listener stops accepting, in-flight
// requests get -grace to finish, and the worker pool is closed.
// SIGQUIT dumps the flight ring and keeps serving.
//
// Exit status: 0 on clean shutdown, 1 on serve failure, 2 on usage
// errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

// version is the build stamp reported by /v1/healthz; override with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/csserve
var version = "dev"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	return runApp(argv, stdout, stderr, nil, nil)
}

// runApp is run with test hooks: when ready is non-nil it receives the
// bound listen address once serving, and a receive on stop triggers the
// same graceful drain as SIGTERM.
func runApp(argv []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("csserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		workers     = fs.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		queue       = fs.Int("queue", 64, "bounded request queue capacity (0 = default 64, negative = unbuffered hand-off); full queue answers 429")
		planCache   = fs.Int("plan-cache", 4096, "plan LRU cache entries (0 = default, negative disables)")
		estCache    = fs.Int("est-cache", 512, "estimate LRU cache entries (0 = default, negative disables)")
		shards      = fs.Int("shards", 16, "LRU cache shard count")
		timeout     = fs.Duration("timeout", 10*time.Second, "default per-request compute deadline")
		maxTimeout  = fs.Duration("max-timeout", 60*time.Second, "ceiling on client-requested timeout_ms")
		maxEpisodes = fs.Int("max-episodes", 2_000_000, "ceiling on episodes per /v1/estimate request")
		flight      = fs.Int("flight", 0, "keep the last N requests in a flight ring, dumped on SIGQUIT (0 disables)")
		grace       = fs.Duration("grace", 15*time.Second, "shutdown grace period for in-flight requests")

		traceStore   = fs.Int("trace-store", 2048, "request trace store capacity in records (negative disables tracing)")
		traceSample  = fs.Float64("trace-sample", 0.1, "probability of keeping an unremarkable request's trace (errors and the slowest are always kept; negative keeps none)")
		traceSlowest = fs.Int("trace-slowest", 8, "always keep the slowest N requests per -trace-window")
		traceWindow  = fs.Duration("trace-window", 10*time.Second, "comparison window for -trace-slowest")

		runtimeSample = fs.Duration("runtime-sample", 10*time.Second, "runtime/metrics bridge sampling interval (negative disables the bridge)")
		leakLimit     = fs.Int("leak-limit", 0, "goroutine count the leak watchdog alarms on (0 = derive from the first sample)")

		sloTarget        = fs.Float64("slo-target", 0.999, "availability objective: target fraction of non-5xx responses")
		sloLatencyMS     = fs.Float64("slo-latency-ms", 250, "latency SLI threshold in milliseconds")
		sloLatencyTarget = fs.Float64("slo-latency-target", 0.99, "latency objective: target fraction of served responses under -slo-latency-ms")

		self            = fs.String("self", "", "this replica's own base URL in the cluster ring (enables clustering with -peers)")
		peers           = fs.String("peers", "", "comma-separated base URLs of the other replicas")
		fill            = fs.String("fill", cluster.FillSteal, "cluster fill policy: steal (pull on miss) or share (push on compute)")
		peerTimeout     = fs.Duration("peer-timeout", 250*time.Millisecond, "per-attempt peer fetch timeout (a slow peer must stay cheaper than local compute)")
		peerConcurrency = fs.Int("peer-concurrency", 8, "bound on concurrent outbound peer fetches")
		warmHot         = fs.Int("warm-hot", 128, "hottest cache entries handed to peers on drain and offered at startup")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "csserve: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	reg := obs.NewRegistry()
	var fr *obs.FlightRecorder
	if *flight > 0 {
		fr = obs.NewFlightRecorder(*flight)
	}
	var tracer *obs.Tracer
	if *traceStore >= 0 {
		tracer = obs.NewTracer(obs.TracerConfig{
			Capacity:   *traceStore,
			SampleRate: *traceSample,
			SlowestK:   *traceSlowest,
			Window:     *traceWindow,
		})
	}
	slo := obs.NewSLOTracker(obs.SLOConfig{
		AvailabilityObjective: *sloTarget,
		LatencyObjective:      *sloLatencyTarget,
		LatencyThresholdMS:    *sloLatencyMS,
	})
	var bridge *obs.RuntimeBridge
	if *runtimeSample >= 0 {
		bridge = obs.NewRuntimeBridge(reg, obs.RuntimeBridgeConfig{
			Interval:  *runtimeSample,
			LeakLimit: *leakLimit,
		})
		bridge.Start()
		//lint:allow goroutinecap Stop closes the sampler's stop channel; the bridge is internally synchronized
		defer bridge.Stop()
	}
	s := serve.New(serve.Config{
		Workers:              *workers,
		Queue:                *queue,
		PlanCacheEntries:     *planCache,
		EstimateCacheEntries: *estCache,
		CacheShards:          *shards,
		DefaultTimeout:       *timeout,
		MaxTimeout:           *maxTimeout,
		MaxEpisodes:          *maxEpisodes,
		Registry:             reg,
		Flight:               fr,
		Tracer:               tracer,
		SLO:                  slo,
		Runtime:              bridge,
		Version:              version,
	})

	var node *cluster.Node
	if *self != "" || *peers != "" {
		if *self == "" {
			fmt.Fprintln(stderr, "csserve: -peers requires -self (this replica's own URL in the ring)")
			return 2
		}
		var peerURLs []string
		for _, u := range strings.Split(*peers, ",") {
			u = strings.TrimSuffix(strings.TrimSpace(u), "/")
			if u != "" {
				peerURLs = append(peerURLs, u)
			}
		}
		var err error
		node, err = cluster.NewNode(cluster.Config{
			Self:        strings.TrimSuffix(*self, "/"),
			Peers:       peerURLs,
			Fill:        *fill,
			Timeout:     *peerTimeout,
			Concurrency: *peerConcurrency,
			HotN:        *warmHot,
			Registry:    reg,
		}, s)
		if err != nil {
			fmt.Fprintln(stderr, "csserve:", err)
			return 2
		}
		defer node.Close()
		s.SetPeers(node)
	}

	mux := obs.NewMux(reg)
	s.Routes(mux)
	if node != nil {
		node.Routes(mux)
	}
	if tracer != nil {
		mux.Handle("GET /debug/traces", tracer)
	}
	mux.Handle("GET /debug/slo", slo)
	mux.Handle("GET /debug/delta/allocs", obs.DeltaProfileHandler(obs.DeltaAllocs))
	mux.Handle("GET /debug/delta/heap", obs.DeltaProfileHandler(obs.DeltaHeap))
	srv := &http.Server{Handler: mux}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "csserve:", err)
		return 1
	}
	fmt.Fprintf(stderr, "csserve: listening on %s\n", lis.Addr())

	// Warm start before announcing readiness: pull the peers' hot lists
	// and install the entries this replica owns, so the first wave after
	// a restart is served from cache instead of recomputed. Bounded by
	// the per-attempt peer timeout; peers that are down cost one timeout
	// each and nothing more.
	if node != nil {
		warmCtx, cancelWarm := context.WithTimeout(context.Background(), 10*time.Second)
		if n := node.WarmStart(warmCtx); n > 0 {
			fmt.Fprintf(stderr, "csserve: warm start installed %d entries from peers\n", n)
		}
		cancelWarm()
	}
	if ready != nil {
		ready <- lis.Addr().String()
	}

	// SIGQUIT dumps the flight ring without exiting; SIGTERM/SIGINT (or
	// the test stop hook) start the graceful drain.
	if fr != nil {
		quitCh := make(chan os.Signal, 1)
		signal.Notify(quitCh, syscall.SIGQUIT)
		defer signal.Stop(quitCh)
		go func() {
			for range quitCh {
				_ = fr.Dump(stderr)
			}
		}()
	}
	termCtx, cancelTerm := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancelTerm()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "csserve:", err)
		return 1
	case <-termCtx.Done():
	case <-stop: // nil when not under test: blocks forever
	}

	fmt.Fprintln(stderr, "csserve: draining")
	// Drain order matters in a cluster: flip healthz to 503 first so
	// the gate prober routes new traffic around this replica, then hand
	// the hot working set to the keys' next owners while the listener
	// still serves in-flight requests, and only then stop accepting.
	s.BeginDrain()
	if node != nil {
		handoffCtx, cancelHandoff := context.WithTimeout(context.Background(), *grace)
		if n := node.Handoff(handoffCtx); n > 0 {
			fmt.Fprintf(stderr, "csserve: handed %d hot entries to peers\n", n)
		}
		cancelHandoff()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "csserve: shutdown:", err)
		code = 1
	}
	s.Drain()
	fmt.Fprintln(stdout, "csserve: drained")
	return code
}
