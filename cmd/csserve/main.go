// Command csserve is the long-running planning and estimation service:
// the paper's guideline schedule (system 3.6) and Monte-Carlo E(S;p)
// estimates behind an HTTP/JSON API, built to survive production
// traffic — sharded LRU plan cache, request coalescing, and a bounded
// worker pool that sheds load with 429 instead of queueing unboundedly.
//
// Usage:
//
//	csserve                              # listen on :8080
//	csserve -addr :9000 -workers 8 -queue 128
//	csserve -plan-cache 8192 -est-cache 1024 -shards 32
//	csserve -timeout 5s -max-timeout 30s -max-episodes 1000000
//	csserve -flight 4096                 # ring of recent requests,
//	                                     # dumped to stderr on SIGQUIT
//	csserve -trace-store 4096 -trace-sample 0.5 -trace-slowest 16
//	csserve -runtime-sample 10s -leak-limit 0
//	csserve -slo-target 0.999 -slo-latency-ms 250 -slo-latency-target 0.99
//
// Endpoints: POST /v1/plan, POST /v1/estimate, GET /v1/healthz, plus
// /metrics, /debug/vars and /debug/pprof from the shared obs mux, and
// GET /debug/traces — the tail-sampled request trace store (always
// keeps errors and the slowest -trace-slowest per -trace-window;
// keeps the rest with probability -trace-sample). Requests carry W3C
// traceparent in, X-Trace-Id and Server-Timing out.
//
// Runtime observability: the runtime/metrics bridge samples GC pause
// quantiles, heap residency, allocation throughput, scheduler latency
// and the goroutine population into /metrics every -runtime-sample;
// GET /debug/slo reports rolling-window error and latency burn rates
// against the -slo-* objectives; GET /debug/delta/allocs and
// GET /debug/delta/heap diff two in-process heap-profile snapshots
// ?seconds apart — allocation sources or live-heap growth since the
// last GC, with no restart and no external tooling.
//
// SIGTERM or SIGINT drains gracefully: the listener stops accepting,
// in-flight requests get -grace to finish, then the worker pool is
// closed. SIGQUIT dumps the flight ring and keeps serving.
//
// Exit status: 0 on clean shutdown, 1 on serve failure, 2 on usage
// errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// version is the build stamp reported by /v1/healthz; override with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/csserve
var version = "dev"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	return runApp(argv, stdout, stderr, nil, nil)
}

// runApp is run with test hooks: when ready is non-nil it receives the
// bound listen address once serving, and a receive on stop triggers the
// same graceful drain as SIGTERM.
func runApp(argv []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("csserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		workers     = fs.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		queue       = fs.Int("queue", 64, "bounded request queue capacity (0 = default 64, negative = unbuffered hand-off); full queue answers 429")
		planCache   = fs.Int("plan-cache", 4096, "plan LRU cache entries (0 = default, negative disables)")
		estCache    = fs.Int("est-cache", 512, "estimate LRU cache entries (0 = default, negative disables)")
		shards      = fs.Int("shards", 16, "LRU cache shard count")
		timeout     = fs.Duration("timeout", 10*time.Second, "default per-request compute deadline")
		maxTimeout  = fs.Duration("max-timeout", 60*time.Second, "ceiling on client-requested timeout_ms")
		maxEpisodes = fs.Int("max-episodes", 2_000_000, "ceiling on episodes per /v1/estimate request")
		flight      = fs.Int("flight", 0, "keep the last N requests in a flight ring, dumped on SIGQUIT (0 disables)")
		grace       = fs.Duration("grace", 15*time.Second, "shutdown grace period for in-flight requests")

		traceStore   = fs.Int("trace-store", 2048, "request trace store capacity in records (negative disables tracing)")
		traceSample  = fs.Float64("trace-sample", 0.1, "probability of keeping an unremarkable request's trace (errors and the slowest are always kept; negative keeps none)")
		traceSlowest = fs.Int("trace-slowest", 8, "always keep the slowest N requests per -trace-window")
		traceWindow  = fs.Duration("trace-window", 10*time.Second, "comparison window for -trace-slowest")

		runtimeSample = fs.Duration("runtime-sample", 10*time.Second, "runtime/metrics bridge sampling interval (negative disables the bridge)")
		leakLimit     = fs.Int("leak-limit", 0, "goroutine count the leak watchdog alarms on (0 = derive from the first sample)")

		sloTarget        = fs.Float64("slo-target", 0.999, "availability objective: target fraction of non-5xx responses")
		sloLatencyMS     = fs.Float64("slo-latency-ms", 250, "latency SLI threshold in milliseconds")
		sloLatencyTarget = fs.Float64("slo-latency-target", 0.99, "latency objective: target fraction of served responses under -slo-latency-ms")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "csserve: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	reg := obs.NewRegistry()
	var fr *obs.FlightRecorder
	if *flight > 0 {
		fr = obs.NewFlightRecorder(*flight)
	}
	var tracer *obs.Tracer
	if *traceStore >= 0 {
		tracer = obs.NewTracer(obs.TracerConfig{
			Capacity:   *traceStore,
			SampleRate: *traceSample,
			SlowestK:   *traceSlowest,
			Window:     *traceWindow,
		})
	}
	slo := obs.NewSLOTracker(obs.SLOConfig{
		AvailabilityObjective: *sloTarget,
		LatencyObjective:      *sloLatencyTarget,
		LatencyThresholdMS:    *sloLatencyMS,
	})
	var bridge *obs.RuntimeBridge
	if *runtimeSample >= 0 {
		bridge = obs.NewRuntimeBridge(reg, obs.RuntimeBridgeConfig{
			Interval:  *runtimeSample,
			LeakLimit: *leakLimit,
		})
		bridge.Start()
		//lint:allow goroutinecap Stop closes the sampler's stop channel; the bridge is internally synchronized
		defer bridge.Stop()
	}
	s := serve.New(serve.Config{
		Workers:              *workers,
		Queue:                *queue,
		PlanCacheEntries:     *planCache,
		EstimateCacheEntries: *estCache,
		CacheShards:          *shards,
		DefaultTimeout:       *timeout,
		MaxTimeout:           *maxTimeout,
		MaxEpisodes:          *maxEpisodes,
		Registry:             reg,
		Flight:               fr,
		Tracer:               tracer,
		SLO:                  slo,
		Runtime:              bridge,
		Version:              version,
	})

	mux := obs.NewMux(reg)
	s.Routes(mux)
	if tracer != nil {
		mux.Handle("GET /debug/traces", tracer)
	}
	mux.Handle("GET /debug/slo", slo)
	mux.Handle("GET /debug/delta/allocs", obs.DeltaProfileHandler(obs.DeltaAllocs))
	mux.Handle("GET /debug/delta/heap", obs.DeltaProfileHandler(obs.DeltaHeap))
	srv := &http.Server{Handler: mux}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "csserve:", err)
		return 1
	}
	fmt.Fprintf(stderr, "csserve: listening on %s\n", lis.Addr())
	if ready != nil {
		ready <- lis.Addr().String()
	}

	// SIGQUIT dumps the flight ring without exiting; SIGTERM/SIGINT (or
	// the test stop hook) start the graceful drain.
	if fr != nil {
		quitCh := make(chan os.Signal, 1)
		signal.Notify(quitCh, syscall.SIGQUIT)
		defer signal.Stop(quitCh)
		go func() {
			for range quitCh {
				_ = fr.Dump(stderr)
			}
		}()
	}
	termCtx, cancelTerm := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancelTerm()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "csserve:", err)
		return 1
	case <-termCtx.Done():
	case <-stop: // nil when not under test: blocks forever
	}

	fmt.Fprintln(stderr, "csserve: draining")
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "csserve: shutdown:", err)
		code = 1
	}
	s.Drain()
	fmt.Fprintln(stdout, "csserve: drained")
	return code
}
