package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// replicaProc is one csserve process under test.
type replicaProc struct {
	addr   string
	stop   chan struct{}
	code   chan int
	stderr *bytes.Buffer
}

// reservePorts binds and immediately releases n ephemeral ports, so a
// cluster's replica set can be configured before any replica starts
// (every -self/-peers list needs all addresses up front).
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lis.Addr().String()
		lis.Close()
	}
	return addrs
}

// startReplica boots runApp as one cluster member and waits for ready
// (which follows the warm start, so a returned replica has already
// pulled its arc from the peers).
func startReplica(t *testing.T, addr, fill string, all []string) *replicaProc {
	t.Helper()
	peers := make([]string, len(all))
	for i, a := range all {
		peers[i] = "http://" + a
	}
	p := &replicaProc{
		stop:   make(chan struct{}),
		code:   make(chan int, 1),
		stderr: &bytes.Buffer{},
	}
	ready := make(chan string, 1)
	var stdout bytes.Buffer
	// Hand the goroutine locals, not p: p.addr is written after spawn.
	codeCh, errBuf, stopCh := p.code, p.stderr, p.stop
	go func() {
		codeCh <- runApp([]string{
			"-addr", addr,
			"-self", "http://" + addr,
			"-peers", strings.Join(peers, ","),
			"-fill", fill,
			"-workers", "2",
			"-grace", "5s",
			"-runtime-sample", "-1s",
		}, &stdout, errBuf, ready, stopCh)
	}()
	select {
	case p.addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("replica %s never became ready; stderr: %s", addr, p.stderr.String())
	}
	return p
}

// drain stops the replica and waits for a clean exit — the full
// sequence: healthz 503, hot handoff to peers, listener shutdown.
func (p *replicaProc) drain(t *testing.T) {
	t.Helper()
	close(p.stop)
	select {
	case c := <-p.code:
		if c != 0 {
			t.Fatalf("replica %s exited %d; stderr: %s", p.addr, c, p.stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("replica %s never exited", p.addr)
	}
}

type clusterPlanResponse struct {
	Key        string `json:"key"`
	Cached     bool   `json:"cached"`
	Coalesced  bool   `json:"coalesced"`
	PeerFilled bool   `json:"peer_filled"`
	Error      string `json:"error"`
}

// The rolling-restart invariant, end to end for both fill policies: a
// two-replica cluster computes a key set once (routed to owners the
// way csgate and csload -targets route), one replica drains and
// restarts, and the next routed wave is served entirely without fresh
// computation — every response is a cache hit or a peer fill.
func TestClusterWarmRestart(t *testing.T) {
	for _, fill := range []string{cluster.FillSteal, cluster.FillShare} {
		t.Run(fill, func(t *testing.T) {
			addrs := reservePorts(t, 2)
			r0 := startReplica(t, addrs[0], fill, addrs)
			r1 := startReplica(t, addrs[1], fill, addrs)
			defer func() { // r0 may already be drained; guard with select
				for _, p := range []*replicaProc{r0, r1} {
					select {
					case <-p.stop:
					default:
						p.drain(t)
					}
				}
			}()

			// Route each body to its key's owner, exactly as the gate
			// would.
			ring := cluster.NewRing([]string{"http://" + addrs[0], "http://" + addrs[1]})
			post := func(body string) clusterPlanResponse {
				t.Helper()
				var spec serve.PlanSpec
				if err := json.Unmarshal([]byte(body), &spec); err != nil {
					t.Fatal(err)
				}
				norm, err := spec.Canonicalize()
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.Post(ring.Owner(norm.Key())+"/v1/plan", "application/json", strings.NewReader(body))
				if err != nil {
					t.Fatalf("posting %s: %v", body, err)
				}
				defer resp.Body.Close()
				var out clusterPlanResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != 200 {
					t.Fatalf("status %d for %s: %s", resp.StatusCode, body, out.Error)
				}
				return out
			}

			bodies := make([]string, 16)
			for i := range bodies {
				bodies[i] = fmt.Sprintf(`{"life":"uniform","lifespan":%d}`, 300+i)
			}
			// Cold wave: everything computes fresh, each key on its owner.
			for _, b := range bodies {
				if out := post(b); out.Cached || out.PeerFilled {
					t.Fatalf("cold wave response for %s was already cached/peer-filled", b)
				}
			}

			// Rolling restart of replica 0: drain (handoff to r1), then
			// boot a fresh process on the same address (warm start pulls
			// its arc back before ready).
			r0.drain(t)
			r0 = startReplica(t, addrs[0], fill, addrs)

			// Warm wave: zero fresh computations cluster-wide. Keys owned
			// by r1 never left its cache; keys owned by r0 came back via
			// handoff + warm start (or, under steal, a peer fill).
			for _, b := range bodies {
				out := post(b)
				if !out.Cached && !out.Coalesced && !out.PeerFilled {
					t.Errorf("fill=%s: post-restart wave recomputed %s", fill, b)
				}
			}
		})
	}
}
