package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// Boot the full binary (ephemeral port), serve a plan twice, check the
// cache and metrics surfaces, then drain via the stop hook.
func TestServeEndToEnd(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() {
		code <- runApp([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-flight", "64"},
			&stdout, &stderr, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server never became ready; stderr: %s", stderr.String())
	}
	base := "http://" + addr

	body := `{"life":"uniform","lifespan":450}`
	var first, second struct {
		Cached       bool    `json:"cached"`
		ExpectedWork float64 `json:"expected_work"`
	}
	for i, out := range []*struct {
		Cached       bool    `json:"cached"`
		ExpectedWork float64 `json:"expected_work"`
	}{&first, &second} {
		resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if first.Cached || !second.Cached {
		t.Errorf("cached flags = %v/%v, want false/true", first.Cached, second.Cached)
	}
	if !(second.ExpectedWork > 0) {
		t.Errorf("expected_work = %g", second.ExpectedWork)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		`cs_serve_cache_hits_total{route="plan"} 1`,
		`cs_http_request_ms{route="plan",quantile="0.99"}`,
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}

	close(stop)
	select {
	case c := <-code:
		if c != 0 {
			t.Errorf("exit code = %d; stderr: %s", c, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after stop")
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Errorf("stdout missing drain message: %s", stdout.String())
	}
}

// With -trace-sample 1 every request lands in the trace store. A
// request carrying a W3C traceparent must come back stitched under the
// caller's trace ID with the attribution invariant intact, and healthz
// must report build and runtime diagnostics.
func TestServeTracing(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() {
		code <- runApp([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-trace-sample", "1"},
			&stdout, &stderr, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server never became ready; stderr: %s", stderr.String())
	}
	base := "http://" + addr
	defer func() {
		close(stop)
		select {
		case <-code:
		case <-time.After(10 * time.Second):
			t.Fatal("server did not drain after stop")
		}
	}()

	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodPost, base+"/v1/estimate",
		strings.NewReader(`{"life":"uniform","lifespan":300,"policy":"fixed:10","episodes":50000}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("estimate status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "0123456789abcdef0123456789abcdef" {
		t.Errorf("X-Trace-Id = %q, want the caller's trace ID", got)
	}
	if st := resp.Header.Get("Server-Timing"); !strings.Contains(st, "total;dur=") {
		t.Errorf("Server-Timing = %q, want a total entry", st)
	}

	resp, err = http.Get(base + "/debug/traces?trace=0123456789abcdef0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Traces []struct {
			TraceID   string             `json:"trace_id"`
			ParentID  string             `json:"parent_id"`
			Remote    bool               `json:"remote"`
			Status    int                `json:"status"`
			Breakdown map[string]float64 `json:"breakdown"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(body.Traces) != 1 {
		t.Fatalf("traces for the caller's ID = %d, want 1", len(body.Traces))
	}
	rec := body.Traces[0]
	if !rec.Remote || rec.ParentID != "00f067aa0ba902b7" {
		t.Errorf("stitch wrong: remote=%v parent=%q", rec.Remote, rec.ParentID)
	}
	b := rec.Breakdown
	if !(b["compute_ms"] > 0) {
		t.Errorf("compute_ms = %g, want > 0", b["compute_ms"])
	}
	if sum := b["queue_ms"] + b["coalesce_ms"] + b["compute_ms"]; sum > b["total_ms"] {
		t.Errorf("attribution invariant violated: %g > total %g", sum, b["total_ms"])
	}

	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
		NumCPU    int    `json:"num_cpu"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Version != "dev" || !strings.HasPrefix(hz.GoVersion, "go") || hz.NumCPU < 1 {
		t.Errorf("healthz diagnostics = %+v", hz)
	}
}

func TestServeUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &out); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"positional"}, &out, &out); code != 2 {
		t.Errorf("positional arg exit = %d, want 2", code)
	}
}

func TestServeBadAddr(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:99999"}, &out, &out); code != 1 {
		t.Errorf("bad addr exit = %d, want 1", code)
	}
}
