package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// Boot the full binary (ephemeral port), serve a plan twice, check the
// cache and metrics surfaces, then drain via the stop hook.
func TestServeEndToEnd(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() {
		code <- runApp([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-flight", "64"},
			&stdout, &stderr, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server never became ready; stderr: %s", stderr.String())
	}
	base := "http://" + addr

	body := `{"life":"uniform","lifespan":450}`
	var first, second struct {
		Cached       bool    `json:"cached"`
		ExpectedWork float64 `json:"expected_work"`
	}
	for i, out := range []*struct {
		Cached       bool    `json:"cached"`
		ExpectedWork float64 `json:"expected_work"`
	}{&first, &second} {
		resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if first.Cached || !second.Cached {
		t.Errorf("cached flags = %v/%v, want false/true", first.Cached, second.Cached)
	}
	if !(second.ExpectedWork > 0) {
		t.Errorf("expected_work = %g", second.ExpectedWork)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		`cs_serve_cache_hits_total{route="plan"} 1`,
		`cs_http_request_ms{route="plan",quantile="0.99"}`,
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}

	close(stop)
	select {
	case c := <-code:
		if c != 0 {
			t.Errorf("exit code = %d; stderr: %s", c, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after stop")
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Errorf("stdout missing drain message: %s", stdout.String())
	}
}

// With -trace-sample 1 every request lands in the trace store. A
// request carrying a W3C traceparent must come back stitched under the
// caller's trace ID with the attribution invariant intact, and healthz
// must report build and runtime diagnostics.
func TestServeTracing(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() {
		code <- runApp([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-trace-sample", "1"},
			&stdout, &stderr, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server never became ready; stderr: %s", stderr.String())
	}
	base := "http://" + addr
	defer func() {
		close(stop)
		select {
		case <-code:
		case <-time.After(10 * time.Second):
			t.Fatal("server did not drain after stop")
		}
	}()

	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodPost, base+"/v1/estimate",
		strings.NewReader(`{"life":"uniform","lifespan":300,"policy":"fixed:10","episodes":50000}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("estimate status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "0123456789abcdef0123456789abcdef" {
		t.Errorf("X-Trace-Id = %q, want the caller's trace ID", got)
	}
	if st := resp.Header.Get("Server-Timing"); !strings.Contains(st, "total;dur=") {
		t.Errorf("Server-Timing = %q, want a total entry", st)
	}

	resp, err = http.Get(base + "/debug/traces?trace=0123456789abcdef0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Traces []struct {
			TraceID   string             `json:"trace_id"`
			ParentID  string             `json:"parent_id"`
			Remote    bool               `json:"remote"`
			Status    int                `json:"status"`
			Breakdown map[string]float64 `json:"breakdown"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(body.Traces) != 1 {
		t.Fatalf("traces for the caller's ID = %d, want 1", len(body.Traces))
	}
	rec := body.Traces[0]
	if !rec.Remote || rec.ParentID != "00f067aa0ba902b7" {
		t.Errorf("stitch wrong: remote=%v parent=%q", rec.Remote, rec.ParentID)
	}
	b := rec.Breakdown
	if !(b["compute_ms"] > 0) {
		t.Errorf("compute_ms = %g, want > 0", b["compute_ms"])
	}
	if sum := b["queue_ms"] + b["coalesce_ms"] + b["compute_ms"]; sum > b["total_ms"] {
		t.Errorf("attribution invariant violated: %g > total %g", sum, b["total_ms"])
	}

	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
		NumCPU    int    `json:"num_cpu"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Version != "dev" || !strings.HasPrefix(hz.GoVersion, "go") || hz.NumCPU < 1 {
		t.Errorf("healthz diagnostics = %+v", hz)
	}
}

func TestServeUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &out); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"positional"}, &out, &out); code != 2 {
		t.Errorf("positional arg exit = %d, want 2", code)
	}
}

func TestServeBadAddr(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:99999"}, &out, &out); code != 1 {
		t.Errorf("bad addr exit = %d, want 1", code)
	}
}

// The runtime-observability surfaces: /debug/slo burn rates fed by the
// instrumented routes, /debug/delta/* on-demand profiling, and the
// healthz runtime block (GC cycles, last pause, leak verdict).
func TestServeRuntimeObservability(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() {
		code <- runApp([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-runtime-sample", "50ms"},
			&stdout, &stderr, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server never became ready; stderr: %s", stderr.String())
	}
	base := "http://" + addr
	defer func() {
		close(stop)
		select {
		case <-code:
		case <-time.After(10 * time.Second):
			t.Fatal("server did not drain after stop")
		}
	}()

	// One good and one bad request feed the SLO windows.
	resp, err := http.Post(base+"/v1/plan", "application/json",
		strings.NewReader(`{"life":"uniform","lifespan":450}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/plan", "application/json", strings.NewReader(`not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad body status = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(base + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var slo struct {
		AvailabilityObjective float64 `json:"availability_objective"`
		Windows               []struct {
			Window        string  `json:"window"`
			Requests      uint64  `json:"requests"`
			ErrorBurnRate float64 `json:"error_burn_rate"`
		} `json:"windows"`
		Total struct {
			Requests uint64 `json:"requests"`
		} `json:"total"`
		Alerts []struct {
			SLI string `json:"sli"`
		} `json:"alerts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	//lint:allow floatcmp the default objective round-trips JSON exactly
	if slo.AvailabilityObjective != 0.999 || len(slo.Windows) != 3 || len(slo.Alerts) != 4 {
		t.Errorf("slo shape wrong: %+v", slo)
	}
	// Both plan requests were served (400 is not an SLO error); healthz
	// probes must not appear.
	if slo.Total.Requests != 2 {
		t.Errorf("slo total requests = %d, want 2 (healthz excluded)", slo.Total.Requests)
	}

	resp, err = http.Get(base + "/debug/delta/heap?seconds=0.05&top=3")
	if err != nil {
		t.Fatal(err)
	}
	var prof struct {
		Mode           string `json:"mode"`
		MemProfileRate int    `json:"mem_profile_rate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&prof); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if prof.Mode != "heap" || prof.MemProfileRate <= 0 {
		t.Errorf("delta profile = %+v", prof)
	}

	// The delta endpoint ran GCs, so healthz must now report cycles and
	// a pause history, and the bridge's watchdog verdict.
	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Runtime struct {
			GCCycles       uint32  `json:"gc_cycles"`
			GCPauseTotalMS float64 `json:"gc_pause_total_ms"`
			HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
			NumGoroutine   int     `json:"num_goroutine"`
			LeakSuspected  bool    `json:"goroutine_leak_suspected"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Runtime.GCCycles < 1 || hz.Runtime.GCPauseTotalMS <= 0 {
		t.Errorf("healthz runtime GC block = %+v", hz.Runtime)
	}
	if hz.Runtime.HeapAllocBytes == 0 || hz.Runtime.NumGoroutine < 1 {
		t.Errorf("healthz runtime heap block = %+v", hz.Runtime)
	}
	if hz.Runtime.LeakSuspected {
		t.Errorf("leak suspected on a healthy server")
	}

	// The bridge publishes cs_runtime_ series into the shared registry.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		"cs_runtime_goroutines ",
		"cs_runtime_gc_cycles_total ",
		`cs_runtime_gc_pause_ms{quantile="0.99"}`,
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// Per-phase allocation attribution must surface in the stored trace
// and the Server-Timing header.
func TestServeAllocAttribution(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() {
		code <- runApp([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-trace-sample", "1"},
			&stdout, &stderr, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server never became ready; stderr: %s", stderr.String())
	}
	base := "http://" + addr
	defer func() {
		close(stop)
		select {
		case <-code:
		case <-time.After(10 * time.Second):
			t.Fatal("server did not drain after stop")
		}
	}()

	resp, err := http.Post(base+"/v1/estimate", "application/json",
		strings.NewReader(`{"life":"uniform","lifespan":300,"policy":"fixed:10","episodes":50000}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("estimate status = %d", resp.StatusCode)
	}
	if st := resp.Header.Get("Server-Timing"); !strings.Contains(st, ";alloc=") {
		t.Errorf("Server-Timing = %q, want an ;alloc= param", st)
	}

	resp, err = http.Get(base + "/debug/traces?route=estimate&limit=1")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Traces []struct {
			AllocObjects uint64 `json:"alloc_objects"`
			AllocBytes   uint64 `json:"alloc_bytes"`
			Phases       []struct {
				Name         string `json:"name"`
				AllocObjects uint64 `json:"alloc_objects"`
			} `json:"phases"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(body.Traces) != 1 {
		t.Fatalf("stored traces = %d, want 1", len(body.Traces))
	}
	rec := body.Traces[0]
	if rec.AllocObjects == 0 || rec.AllocBytes == 0 {
		t.Errorf("trace alloc totals = %d/%d, want > 0", rec.AllocObjects, rec.AllocBytes)
	}
	computeSeen := false
	for _, p := range rec.Phases {
		if p.Name == "compute" {
			computeSeen = true
			if p.AllocObjects == 0 {
				t.Errorf("compute phase recorded no allocations")
			}
		}
	}
	if !computeSeen {
		t.Errorf("no compute phase in trace: %+v", rec.Phases)
	}
}
