package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// Boot the full binary (ephemeral port), serve a plan twice, check the
// cache and metrics surfaces, then drain via the stop hook.
func TestServeEndToEnd(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() {
		code <- runApp([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-flight", "64"},
			&stdout, &stderr, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("server never became ready; stderr: %s", stderr.String())
	}
	base := "http://" + addr

	body := `{"life":"uniform","lifespan":450}`
	var first, second struct {
		Cached       bool    `json:"cached"`
		ExpectedWork float64 `json:"expected_work"`
	}
	for i, out := range []*struct {
		Cached       bool    `json:"cached"`
		ExpectedWork float64 `json:"expected_work"`
	}{&first, &second} {
		resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if first.Cached || !second.Cached {
		t.Errorf("cached flags = %v/%v, want false/true", first.Cached, second.Cached)
	}
	if !(second.ExpectedWork > 0) {
		t.Errorf("expected_work = %g", second.ExpectedWork)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		`cs_serve_cache_hits_total{route="plan"} 1`,
		`cs_http_request_ms{route="plan",quantile="0.99"}`,
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}

	close(stop)
	select {
	case c := <-code:
		if c != 0 {
			t.Errorf("exit code = %d; stderr: %s", c, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after stop")
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Errorf("stdout missing drain message: %s", stdout.String())
	}
}

func TestServeUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &out); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"positional"}, &out, &out); code != 2 {
		t.Errorf("positional arg exit = %d, want 2", code)
	}
}

func TestServeBadAddr(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:99999"}, &out, &out); code != 1 {
		t.Errorf("bad addr exit = %d, want 1", code)
	}
}
