package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	// A long deadline: the race detector slows simulation several-fold,
	// and these tests assert on coalescing, not latency.
	s := serve.New(serve.Config{Workers: 2, DefaultTimeout: 5 * time.Minute})
	mux := http.NewServeMux()
	s.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return ts
}

// Two waves of identical plan specs: the warm wave must be fully
// cached and the server-side-elapsed speedup must show it.
func TestLoadColdWarmPlanWaves(t *testing.T) {
	ts := startServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-endpoint", "plan",
		"-requests", "8", "-concurrency", "4", "-waves", "2",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad report: %v\n%s", err, stdout.String())
	}
	if len(rep.Waves) != 2 {
		t.Fatalf("waves = %d, want 2", len(rep.Waves))
	}
	cold, warm := rep.Waves[0], rep.Waves[1]
	if cold.OK != 8 || warm.OK != 8 || cold.Errors+warm.Errors != 0 {
		t.Fatalf("ok/errors wrong: %+v %+v", cold, warm)
	}
	if warm.Cached != 8 {
		t.Errorf("warm cached = %d, want 8", warm.Cached)
	}
	if cold.Cached != 0 {
		t.Errorf("cold cached = %d, want 0", cold.Cached)
	}
	if rep.SpeedupServerElapsed <= 1 {
		t.Errorf("server-elapsed speedup = %g, want > 1", rep.SpeedupServerElapsed)
	}
	if cold.Status["200"] != 8 {
		t.Errorf("cold status map = %v", cold.Status)
	}
	if !(cold.P99MS >= cold.P50MS) {
		t.Errorf("p99 %g < p50 %g", cold.P99MS, cold.P50MS)
	}
	for _, w := range rep.Waves {
		if !(w.MaxMS >= w.P99MS) {
			t.Errorf("wave %d: max %g < p99 %g", w.Wave, w.MaxMS, w.P99MS)
		}
		// Even without a trace store the server echoes X-Trace-Id, so
		// every wave can name its slowest request's trace.
		if len(w.SlowestTraceID) != 32 {
			t.Errorf("wave %d: slowest_trace_id = %q, want 32 hex chars", w.Wave, w.SlowestTraceID)
		}
	}
}

// Identical concurrent estimate specs must coalesce: the wave's
// cached+coalesced count accounts for all but one request.
func TestLoadEstimateCoalesces(t *testing.T) {
	ts := startServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-endpoint", "estimate",
		"-requests", "6", "-concurrency", "6", "-waves", "1",
		"-distinct", "1", "-episodes", "60000", "-policy", "fixed:10",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	w := rep.Waves[0]
	if w.OK != 6 || w.Errors != 0 {
		t.Fatalf("wave = %+v", w)
	}
	if fresh := w.Requests - w.Cached - w.Coalesced; fresh > 1 {
		t.Errorf("%d fresh computations, want at most 1 (%+v)", fresh, w)
	}
}

func TestLoadUsageErrors(t *testing.T) {
	var out bytes.Buffer
	for _, argv := range [][]string{
		{"-endpoint", "nope"},
		{"-requests", "0"},
		{"-no-such-flag"},
	} {
		if code := run(argv, &out, &out); code != 2 {
			t.Errorf("argv %v: exit = %d, want 2", argv, code)
		}
	}
}

// A dead target is a transport error: report it and exit 1.
func TestLoadTransportErrorsExit1(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", "http://127.0.0.1:1", "-requests", "2", "-waves", "1",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Waves[0].Errors != 2 {
		t.Errorf("errors = %d, want 2", rep.Waves[0].Errors)
	}
}
