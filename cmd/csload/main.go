// Command csload drives a running csserve with waves of concurrent
// requests and reports per-wave latency, status and cache statistics as
// JSON. Its job is to make the serving layer's scaling behaviour
// observable from the outside: wave 1 against a cold cache pays the
// full planning cost, wave 2 re-sends the same specs and should be
// served from the LRU cache orders of magnitude faster. The report
// carries both wall-clock and server-side-elapsed speedups so CI can
// assert on the latter, which is immune to HTTP jitter, plus
// client-side p50/p99/max latency per wave.
//
// Every request carries a W3C traceparent header, so load waves are
// visible as stitched traces in the server's /debug/traces store; each
// wave reports the trace ID of its slowest request for direct lookup.
//
// Usage:
//
//	csload -addr http://localhost:8080                 # 2 waves x 32 plans
//	csload -requests 64 -concurrency 16 -distinct 64   # all-distinct cold wave
//	csload -endpoint estimate -episodes 200000         # Monte-Carlo load
//	csload -waves 1 -distinct 32 -timeout-ms 50        # burst: expect 429s
//	csload -targets http://h1:8080,http://h2:8080      # client-side shard map
//
// With -targets the load generator is its own front tier: each spec's
// canonical cache key picks a replica through the same rendezvous ring
// csgate uses, so a gateless cluster still sees consistent-hash
// routing. The report then carries per-target request/error counts,
// and cluster-level dedup counters: fresh (computed from scratch:
// neither cached, coalesced nor peer-filled), peer_filled, and
// max_fresh_per_key — in a healthy cluster at most 1 per wave.
//
// Exit status: 0 when every request got an HTTP response (any status),
// 1 when transport errors occurred — including a subset of -targets
// replicas being unreachable (partial-replica failure: the reachable
// targets' requests still complete and are still reported), 2 on
// usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// targetStats is one replica's share of a wave under -targets.
type targetStats struct {
	Requests int `json:"requests"`
	Errors   int `json:"errors"` // transport failures against this target
}

// waveReport is one wave's aggregate view of the service.
type waveReport struct {
	Wave            int            `json:"wave"`
	Requests        int            `json:"requests"`
	OK              int            `json:"ok"`
	Errors          int            `json:"errors"` // transport failures, not HTTP statuses
	Status          map[string]int `json:"status"`
	Cached          int            `json:"cached"`
	Coalesced       int            `json:"coalesced"`
	PeerFilled      int            `json:"peer_filled"`
	Fresh           int            `json:"fresh"` // 200s computed from scratch (not cached/coalesced/peer-filled)
	MaxFreshPerKey  int            `json:"max_fresh_per_key"`
	WallMS          float64        `json:"wall_ms"`
	P50MS           float64        `json:"p50_ms"`
	P99MS           float64        `json:"p99_ms"`
	MaxMS           float64        `json:"max_ms"`
	SlowestTraceID  string         `json:"slowest_trace_id,omitempty"`
	ServerElapsedMS float64        `json:"server_elapsed_ms_total"`

	Targets map[string]*targetStats `json:"targets,omitempty"`
}

type report struct {
	Endpoint             string       `json:"endpoint"`
	Waves                []waveReport `json:"waves"`
	SpeedupWall          float64      `json:"speedup_wall"`
	SpeedupServerElapsed float64      `json:"speedup_server_elapsed"`
}

// result is one request's outcome, written only by its own worker.
type result struct {
	status     int // 0 on transport error
	cached     bool
	coalesced  bool
	peerFilled bool
	latencyMS  float64
	elapsedMS  float64
	traceID    string
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("csload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://localhost:8080", "base URL of the csserve instance (or csgate)")
		targets     = fs.String("targets", "", "comma-separated replica base URLs; requests shard across them by canonical cache key (overrides -addr)")
		endpoint    = fs.String("endpoint", "plan", "endpoint to drive: plan or estimate")
		requests    = fs.Int("requests", 32, "requests per wave")
		concurrency = fs.Int("concurrency", 8, "concurrent in-flight requests")
		waves       = fs.Int("waves", 2, "number of waves; wave 2+ re-sends wave 1's specs")
		distinct    = fs.Int("distinct", 0, "distinct specs per wave (0 = one per request)")
		lifespan    = fs.Float64("lifespan", 600, "base lifespan; distinct specs step it by one")
		overhead    = fs.Float64("c", 1, "per-chunk communication overhead")
		life        = fs.String("life", "poly", "life function family for the generated specs")
		degree      = fs.Int("d", 3, "polynomial degree when -life poly")
		policy      = fs.String("policy", "guideline", "policy for -endpoint estimate")
		episodes    = fs.Int("episodes", 100_000, "episodes for -endpoint estimate")
		timeoutMS   = fs.Int("timeout-ms", 0, "per-request timeout_ms field (0 = server default)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *endpoint != "plan" && *endpoint != "estimate" {
		fmt.Fprintf(stderr, "csload: unknown endpoint %q (want plan or estimate)\n", *endpoint)
		return 2
	}
	if *requests <= 0 || *waves <= 0 || *concurrency <= 0 {
		fmt.Fprintln(stderr, "csload: -requests, -waves and -concurrency must be positive")
		return 2
	}
	if *distinct <= 0 || *distinct > *requests {
		*distinct = *requests
	}

	// The client-side shard map: with -targets each spec's canonical
	// key picks its replica through the same rendezvous ring csgate
	// builds, so this load generator and a gate in front of the same
	// replicas route identically.
	var ring *cluster.Ring
	if *targets != "" {
		var urls []string
		for _, u := range strings.Split(*targets, ",") {
			u = strings.TrimSuffix(strings.TrimSpace(u), "/")
			if u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			fmt.Fprintln(stderr, "csload: -targets given but contains no URLs")
			return 2
		}
		ring = cluster.NewRing(urls)
	}

	// Pre-build the request bodies: spec i of a wave varies lifespan by
	// i mod distinct, so every wave covers the same key set and warm
	// waves hit the cold wave's cache entries. Each body's canonical
	// cache key (the same one the replica derives) labels it for
	// per-key fresh counting and, under -targets, picks its replica.
	bodies := make([][]byte, *requests)
	keys := make([]string, *requests)
	urls := make([]string, *requests)
	for i := range bodies {
		spec := map[string]any{
			"life":     *life,
			"lifespan": *lifespan + float64(i%*distinct),
			"c":        *overhead,
		}
		if *life == "poly" {
			spec["d"] = *degree
		}
		if *timeoutMS > 0 {
			spec["timeout_ms"] = *timeoutMS
		}
		if *endpoint == "estimate" {
			spec["policy"] = *policy
			spec["episodes"] = *episodes
			spec["seed"] = 1 + i%*distinct
		}
		b, err := json.Marshal(spec)
		if err != nil {
			fmt.Fprintln(stderr, "csload:", err)
			return 2
		}
		bodies[i] = b
		key, err := canonicalKey(*endpoint, b)
		if err != nil {
			fmt.Fprintf(stderr, "csload: generated spec %d does not canonicalize: %v\n", i, err)
			return 2
		}
		keys[i] = key
		base := *addr
		if ring != nil {
			base = ring.Owner(key)
		}
		urls[i] = base + "/v1/" + *endpoint
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	rep := report{Endpoint: *endpoint}
	for w := 0; w < *waves; w++ {
		rep.Waves = append(rep.Waves, runWave(client, urls, w+1, bodies, keys, *concurrency, ring != nil))
	}
	if n := len(rep.Waves); n >= 2 {
		cold, warm := rep.Waves[0], rep.Waves[n-1]
		rep.SpeedupWall = ratio(cold.WallMS, warm.WallMS)
		rep.SpeedupServerElapsed = ratio(cold.ServerElapsedMS, warm.ServerElapsedMS)
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, "csload:", err)
		return 1
	}
	for _, w := range rep.Waves {
		if w.Errors > 0 {
			fmt.Fprintf(stderr, "csload: wave %d had %d transport errors\n", w.Wave, w.Errors)
			return 1
		}
	}
	return 0
}

// canonicalKey derives a generated body's cache key by the replica's
// own rules, so the shard map and per-key fresh counting agree with
// the cluster on key identity.
func canonicalKey(endpoint string, body []byte) (string, error) {
	if endpoint == "estimate" {
		var spec serve.EstimateSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return "", err
		}
		norm, err := spec.Canonicalize()
		if err != nil {
			return "", err
		}
		return norm.Key(), nil
	}
	var spec serve.PlanSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		return "", err
	}
	norm, err := spec.Canonicalize()
	if err != nil {
		return "", err
	}
	return norm.Key(), nil
}

// runWave fires the bodies at their URLs over `concurrency` workers.
// Results land in per-request slots, each written by exactly one
// worker, so aggregation needs no locks.
func runWave(client *http.Client, urls []string, wave int, bodies [][]byte, keys []string, concurrency int, sharded bool) waveReport {
	results := make([]result, len(bodies))
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = doRequest(client, urls[i], bodies[i])
			}
		}()
	}
	for i := range bodies {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	rep := waveReport{
		Wave:     wave,
		Requests: len(bodies),
		Status:   map[string]int{},
		WallMS:   float64(wall) / float64(time.Millisecond),
	}
	if sharded {
		rep.Targets = map[string]*targetStats{}
	}
	freshByKey := map[string]int{}
	latencies := make([]float64, 0, len(results))
	for i, r := range results {
		if sharded {
			target := strings.TrimSuffix(urls[i], "/v1/plan")
			target = strings.TrimSuffix(target, "/v1/estimate")
			ts := rep.Targets[target]
			if ts == nil {
				ts = &targetStats{}
				rep.Targets[target] = ts
			}
			ts.Requests++
			if r.status == 0 {
				ts.Errors++
			}
		}
		// Transport failures (status 0) carry no latency or trace ID;
		// they count only as errors, so a wave with no HTTP responses
		// reports max_ms 0 and omits slowest_trace_id instead of
		// fabricating them from zero-value results.
		if r.status == 0 {
			rep.Errors++
			continue
		}
		rep.Status[strconv.Itoa(r.status)]++
		latencies = append(latencies, r.latencyMS)
		if len(latencies) == 1 || r.latencyMS > rep.MaxMS {
			rep.MaxMS = r.latencyMS
			rep.SlowestTraceID = r.traceID
		}
		if r.status == http.StatusOK {
			rep.OK++
			rep.ServerElapsedMS += r.elapsedMS
			// A fresh computation is one nothing deduplicated: not a
			// cache hit, not coalesced onto another in-flight request,
			// not filled from a peer. The per-key max is the cluster's
			// compute-once invariant made observable: > 1 means two
			// replicas (or two waves of one replica) paid for the same
			// question.
			if !r.cached && !r.coalesced && !r.peerFilled {
				rep.Fresh++
				freshByKey[keys[i]]++
				if freshByKey[keys[i]] > rep.MaxFreshPerKey {
					rep.MaxFreshPerKey = freshByKey[keys[i]]
				}
			}
		}
		if r.cached {
			rep.Cached++
		}
		if r.coalesced {
			rep.Coalesced++
		}
		if r.peerFilled {
			rep.PeerFilled++
		}
	}
	rep.P50MS = quantile(latencies, 0.50)
	rep.P99MS = quantile(latencies, 0.99)
	return rep
}

func doRequest(client *http.Client, url string, body []byte) result {
	// Root a trace per request so the server's spans stitch under it;
	// the server echoes the trace ID back in X-Trace-Id.
	tc := obs.NewTraceContext()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return result{}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return result{}
	}
	defer resp.Body.Close()
	var payload struct {
		Cached     bool    `json:"cached"`
		Coalesced  bool    `json:"coalesced"`
		PeerFilled bool    `json:"peer_filled"`
		ElapsedMS  float64 `json:"elapsed_ms"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&payload)
	traceID := resp.Header.Get(obs.TraceIDHeader)
	if traceID == "" {
		traceID = tc.TraceIDString() // older server: still report what we sent
	}
	return result{
		status:     resp.StatusCode,
		cached:     payload.Cached,
		coalesced:  payload.Coalesced,
		peerFilled: payload.PeerFilled,
		latencyMS:  float64(time.Since(start)) / float64(time.Millisecond),
		elapsedMS:  payload.ElapsedMS,
		traceID:    traceID,
	}
}

// quantile returns the q-quantile of xs by nearest-rank on a sorted
// copy; 0 when xs is empty.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// ratio guards the speedup division: a fully cached warm wave can
// report ~0 elapsed, which would make the speedup meaninglessly
// infinite (and unrepresentable in JSON). Clamp the denominator to a
// microsecond.
func ratio(num, den float64) float64 {
	const floorMS = 1e-3
	if den < floorMS {
		den = floorMS
	}
	return num / den
}
