# Development targets. `make ci` is the gate a change must pass;
# `make bench-obs` snapshots the observability overhead claim.

GO ?= go

.PHONY: all build test race vet fmt-check ci bench bench-obs

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet build race

bench:
	$(GO) test -bench=. -benchmem ./...

# Writes BENCH_obs.json: baseline vs nil-sink vs jsonl-sink episode
# runner timings, plus the measured nil-sink overhead percentage.
bench-obs:
	BENCH_OBS_OUT=$(CURDIR)/BENCH_obs.json $(GO) test ./internal/nowsim -run TestObsOverheadSnapshot -v
	@cat $(CURDIR)/BENCH_obs.json
