# Development targets. `make ci` is the gate a change must pass;
# `make bench-obs` snapshots the observability overhead claim.

GO ?= go
FUZZTIME ?= 10s
LOAD_ADDR ?= http://localhost:8080

.PHONY: all build test race vet lint lint-sarif lint-fix-check fmt-check ci bench bench-obs bench-perf bench-compare fuzz-smoke serve-smoke cluster-smoke loadtest

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# cslint's own sources. The binary is a real file target keyed on them,
# so back-to-back lint invocations rebuild nothing (the Go build cache
# does the incremental work when a source file does change).
CSLINT_SRCS := $(shell find cmd/cslint internal/analysis -name '*.go' -not -path '*/testdata/*')

bin/cslint: $(CSLINT_SRCS) go.mod
	$(GO) build -o $@ ./cmd/cslint

# Build the repo's own analyzer suite (all eleven analyzers, including
# the cfg+dataflow abstract-interpretation trio unitflow/probrange/
# ctxguard) and run it over the whole tree. Any finding (see DESIGN.md
# sections 7, 9 and 12) fails the build; intentional violations carry
# //lint:allow <analyzer> <reason> annotations.
lint: bin/cslint
	./bin/cslint ./...

# Same run, rendered as a SARIF 2.1.0 log for code-scanning UIs. The
# log is written even when findings make the target fail, so CI can
# upload it unconditionally.
lint-sarif: bin/cslint
	./bin/cslint -sarif ./... > cslint.sarif

# Regenerate the lint baseline into a scratch file and require it to
# match the committed lint-baseline.json: a fixed finding still listed
# (stale entry) and a new unbaselined finding both fail, so the
# baseline only ever shrinks deliberately.
lint-fix-check: bin/cslint
	./bin/cslint -baseline bin/lint-baseline.check.json -write-baseline ./...
	diff -u lint-baseline.json bin/lint-baseline.check.json

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet lint lint-fix-check build race serve-smoke cluster-smoke bench-compare

# Boot csserve and drive it with csload: cache speedup, coalescing,
# 429 load shedding, metrics surface and graceful drain, asserted with
# jq. Artifacts land in serve-smoke-out/ (override with SMOKE_DIR).
serve-smoke:
	bash scripts/serve-smoke.sh

# Boot a 3-replica csserve cluster behind csgate and jq-assert the
# horizontal scaling story for both fill policies: at most one fresh
# computation per key cluster-wide per wave, warm-wave speedup through
# the gate, zero non-429 client errors during a rolling replica
# restart, and a fully warm wave after the restarted replica rejoins.
# Artifacts land in cluster-smoke-out/<fill>/ (override with
# CLUSTER_SMOKE_DIR).
cluster-smoke:
	FILL=steal bash scripts/cluster-smoke.sh
	FILL=share bash scripts/cluster-smoke.sh

# Ad-hoc load generation against an already-running csserve
# (override LOAD_ADDR, e.g. make loadtest LOAD_ADDR=http://host:9000).
loadtest:
	$(GO) run ./cmd/csload -addr $(LOAD_ADDR)

# Short fuzz sessions over the boundary-facing parsers — the CLI spec
# parsers and the wire-facing traceparent header parser: no panics, and
# accepted inputs must round-trip through their canonical forms.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParsePolicy$$' -fuzztime $(FUZZTIME) ./internal/nowsim
	$(GO) test -run '^$$' -fuzz '^FuzzParseDist$$' -fuzztime $(FUZZTIME) ./internal/nowsim
	$(GO) test -run '^$$' -fuzz '^FuzzBuildLife$$' -fuzztime $(FUZZTIME) ./internal/nowsim
	$(GO) test -run '^$$' -fuzz '^FuzzParseTraceparent$$' -fuzztime $(FUZZTIME) ./internal/obs
	$(GO) test -run '^$$' -fuzz '^FuzzParseCSDirective$$' -fuzztime $(FUZZTIME) ./internal/analysis
	$(GO) test -run '^$$' -fuzz '^FuzzParseHotpathDirective$$' -fuzztime $(FUZZTIME) ./internal/analysis/callgraph

bench:
	$(GO) test -bench=. -benchmem ./...

# Writes BENCH_obs.json: baseline vs nil-sink vs jsonl-sink episode
# runner timings, plus the measured nil-sink overhead percentage.
bench-obs:
	BENCH_OBS_OUT=$(CURDIR)/BENCH_obs.json $(GO) test ./internal/nowsim -run TestObsOverheadSnapshot -v
	@cat $(CURDIR)/BENCH_obs.json

# Writes BENCH_perf.json: calibrated micro-benchmarks over the episode,
# farm and sink hot paths (ns/op, allocs/op; min and median of N runs),
# plus the nil-obs overhead percentage the acceptance criterion bounds.
bench-perf:
	$(GO) run ./cmd/csbench -perf -perf-out $(CURDIR)/BENCH_perf.json

# Perf-history regression gate: re-run the calibrated suite live and
# diff it against the committed BENCH_perf.json under the per-benchmark
# ns/op and allocs/op budgets (exit 1 on any breach; budgets and slack
# are csbench -compare flags). The machine-readable diff lands in
# bin/bench-compare.json. Refresh the committed history with
# `make bench-perf` after a deliberate performance change.
bench-compare:
	$(GO) run ./cmd/csbench -compare $(CURDIR)/BENCH_perf.json -compare-out $(CURDIR)/bin/bench-compare.json
