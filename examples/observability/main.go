// Observability: wire a trace sink and a metrics registry into a small
// task-farm simulation, then show what falls out — a structured JSONL
// event stream on stderr-adjacent files and a Prometheus text
// exposition on stdout.
//
// The same plumbing backs the CLI flags (-trace, -trace-format,
// -metrics-addr) on csfarm, cssim and cstrace; see README
// "Observability" and DESIGN.md §6.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/obs"
	"repro/internal/rng"
)

func main() {
	const (
		overhead = 1.0
		workers  = 3
		tasks    = 300
	)

	// A buffer sink captures every simulation event in memory; a JSONL
	// or Chrome sink writing to a file drops in the same slot.
	var sink obs.BufferSink
	reg := obs.NewRegistry()

	ws := make([]nowsim.Worker, workers)
	for i := range ws {
		l, err := lifefn.NewUniform(120 + 40*float64(i))
		if err != nil {
			log.Fatal(err)
		}
		ws[i] = nowsim.Worker{
			ID:    i,
			Owner: nowsim.LifeOwner{Life: l},
			BusySampler: func(r *rng.Source) float64 {
				return r.Uniform(10, 30)
			},
			PolicyFactory: func() nowsim.Policy {
				return &nowsim.FixedChunkPolicy{Chunk: 20}
			},
		}
	}
	pool, err := nowsim.NewWorkload(nowsim.WorkloadSpec{
		Tasks: tasks, Dist: nowsim.DistUniform, Lo: 0.5, Hi: 3,
	}, rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	res, err := nowsim.RunFarm(nowsim.FarmConfig{
		Workers:  ws,
		Overhead: overhead,
		Seed:     7,
		MaxTime:  1e7,
		Obs:      nowsim.Obs{Sink: &sink, Metrics: reg},
	}, pool)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("farm: makespan %.0f, committed %.0f, drained %v\n",
		res.Makespan, res.CommittedWork, res.Drained)

	events := sink.Events
	fmt.Printf("\ntrace: %d events; the first five:\n", len(events))
	for _, e := range events[:5] {
		fmt.Printf("  t=%-8.2f worker=%d %-13s period=%d len=%.1f tasks=%d\n",
			e.Time, e.Worker, e.Kind, e.Period, e.Length, e.Tasks)
	}

	fmt.Println("\nPrometheus exposition (/metrics):")
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
