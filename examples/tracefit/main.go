// Tracefit: the paper assumes the reclaim risk is "garnered possibly
// from trace data". This example plays that story end to end: observe
// an owner's absences, fit a smooth life function, plan on the fit, and
// measure how much expected work the approximation costs compared to
// planning with perfect knowledge.
package main

import (
	"fmt"
	"log"

	cyclesteal "repro"
)

func main() {
	// Ground truth the example pretends not to know: the owner's
	// absences have a 32-second half-life (the paper's geometrically
	// decreasing lifespan scenario).
	truth, err := cyclesteal.HalfLife(32)
	if err != nil {
		log.Fatal(err)
	}
	const overhead = 1.0

	perfect, err := cyclesteal.Plan(truth, overhead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planning with perfect knowledge: t0 %.2f, E %.2f\n",
		perfect.T0, perfect.ExpectedWork)

	for _, sessions := range []int{30, 100, 1000, 10000} {
		// Watch the owner leave `sessions` times.
		obs := cyclesteal.SampleAbsences(truth, sessions, cyclesteal.NewRand(7))
		fitted, err := cyclesteal.FitLifeFromTrace(obs, 32)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := cyclesteal.Plan(fitted, overhead)
		if err != nil {
			log.Fatal(err)
		}
		// The schedule was built from the fit, but reality follows the
		// truth — evaluate it there.
		e := cyclesteal.ExpectedWork(plan.Schedule, truth, overhead)
		fmt.Printf("fit from %5d sessions: t0 %6.2f, E under truth %6.2f (regret %5.2f%%)\n",
			sessions, plan.T0, e, 100*(1-e/perfect.ExpectedWork))
	}

	fmt.Println("\nregret decays with trace size: modest owner observation")
	fmt.Println("suffices for near-optimal cycle-stealing, as the paper argues.")
}
