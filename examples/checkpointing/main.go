// Checkpointing: the paper's Section 1 Remark observes that its model
// also covers scheduling saves in a fault-prone computing system
// (Coffman–Flatto–Krenin 1993): an inter-failure interval is an
// episode, the save cost is the overhead c, and work since the last
// save dies with a failure like an interrupted period dies with a
// returning owner.
//
// This example runs a 2000-unit computation on a machine whose failures
// have a 60-unit half-life, with saves costing 2 units, and compares
// guideline-derived save schedules against fixed save intervals.
package main

import (
	"fmt"
	"log"

	cyclesteal "repro"
)

func main() {
	const (
		totalWork = 2000.0
		saveCost  = 2.0
		runs      = 500
	)
	failure, err := cyclesteal.HalfLife(60)
	if err != nil {
		log.Fatal(err)
	}

	// Plan save intervals with the cycle-stealing guidelines: the
	// failure survival is the life function, the save cost is c.
	plan, err := cyclesteal.Plan(failure, saveCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guideline save interval: %.1f units of work per save "+
		"(expected committed work per failure interval: %.1f)\n\n",
		plan.T0-saveCost, plan.ExpectedWork)

	policies := []struct {
		name    string
		factory func() cyclesteal.Policy
	}{
		{"guideline", func() cyclesteal.Policy {
			return cyclesteal.NewSchedulePolicy(plan.Schedule, "guideline")
		}},
		{"save every 10", func() cyclesteal.Policy { return cyclesteal.NewFixedChunkPolicy(10) }},
		{"save every 50", func() cyclesteal.Policy { return cyclesteal.NewFixedChunkPolicy(50) }},
		{"save every 200", func() cyclesteal.Policy { return cyclesteal.NewFixedChunkPolicy(200) }},
	}

	fmt.Printf("%-15s %12s %10s %12s %12s\n", "policy", "makespan", "failures", "lost work", "save time")
	for _, pol := range policies {
		var makespan, failures, lost, save float64
		src := cyclesteal.NewRand(2718)
		for i := 0; i < runs; i++ {
			res, err := cyclesteal.RunCheckpointed(cyclesteal.CheckpointConfig{
				TotalWork:     totalWork,
				SaveCost:      saveCost,
				Failure:       failure,
				RebootCost:    5,
				PolicyFactory: pol.factory,
			}, src.Split())
			if err != nil {
				log.Fatal(err)
			}
			makespan += res.Makespan
			failures += float64(res.Failures)
			lost += res.LostWork
			save += res.SaveTime
		}
		n := float64(runs)
		fmt.Printf("%-15s %12.0f %10.1f %12.0f %12.0f\n",
			pol.name, makespan/n, failures/n, lost/n, save/n)
	}

	fmt.Println("\nthe guideline intervals balance save overhead against redo risk;")
	fmt.Println("fixed intervals pay either too many saves or too much lost work.")
}
