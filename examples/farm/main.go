// Farm: the data-parallel workload the paper's introduction motivates —
// a coordinator steals cycles from a whole network of workstations to
// grind through thousands of independent tasks of known durations
// (parameter sweeps, render frames, Monte-Carlo batches).
//
// Each workstation's owner keeps coming and going; every absence is a
// cycle-stealing episode. The example compares three chunking policies
// end to end on the same discrete-event simulation: the paper's
// guideline schedules, a fixed "send 30 seconds of work at a time"
// rule, and all-at-once trust.
package main

import (
	"fmt"
	"log"

	cyclesteal "repro"
)

func main() {
	const (
		overhead  = 1.0 // per-bundle round-trip setup, seconds
		taskCount = 4000
		workers   = 8
	)

	// A heterogeneous office: some owners take short breaks with a
	// half-life, others leave for bounded stretches.
	lives := make([]cyclesteal.Life, workers)
	for i := range lives {
		var (
			l   cyclesteal.Life
			err error
		)
		if i%2 == 0 {
			l, err = cyclesteal.HalfLife(40 + 10*float64(i))
		} else {
			l, err = cyclesteal.UniformRisk(150 + 50*float64(i))
		}
		if err != nil {
			log.Fatal(err)
		}
		lives[i] = l
	}

	type policySpec struct {
		name    string
		factory func(l cyclesteal.Life) func() cyclesteal.Policy
	}
	specs := []policySpec{
		{"guideline", func(l cyclesteal.Life) func() cyclesteal.Policy {
			plan, err := cyclesteal.Plan(l, overhead)
			if err != nil {
				log.Fatal(err)
			}
			return func() cyclesteal.Policy {
				return cyclesteal.NewSchedulePolicy(plan.Schedule, "guideline")
			}
		}},
		{"fixed-30s", func(l cyclesteal.Life) func() cyclesteal.Policy {
			return func() cyclesteal.Policy { return cyclesteal.NewFixedChunkPolicy(30) }
		}},
		{"all-at-once", func(l cyclesteal.Life) func() cyclesteal.Policy {
			return func() cyclesteal.Policy { return cyclesteal.NewFixedChunkPolicy(500) }
		}},
	}

	fmt.Printf("%-12s %10s %12s %12s %10s %9s\n",
		"policy", "makespan", "committed", "lost", "overhead", "effcy")
	for _, spec := range specs {
		ws := make([]cyclesteal.Worker, workers)
		for i, l := range lives {
			life := l
			ws[i] = cyclesteal.Worker{
				ID:    i,
				Owner: cyclesteal.LifeOwner{Life: life},
				BusySampler: func(r *cyclesteal.Rand) float64 {
					return r.Uniform(20, 60) // owner works 20-60s between breaks
				},
				PolicyFactory: spec.factory(life),
			}
		}
		pool, err := cyclesteal.NewRandomTasks(taskCount, 0.5, 3, cyclesteal.NewRand(1))
		if err != nil {
			log.Fatal(err)
		}
		res, err := cyclesteal.RunFarm(cyclesteal.FarmConfig{
			Workers:  ws,
			Overhead: overhead,
			Seed:     99,
			MaxTime:  1e7,
		}, pool)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.0f %12.0f %12.0f %10.0f %8.1f%%\n",
			spec.name, res.Makespan, res.CommittedWork, res.LostWork,
			res.OverheadTime, 100*res.Efficiency())
	}

	fmt.Println("\nguideline chunking finishes the job sooner and wastes far less")
	fmt.Println("borrowed time than either naive rule — the paper's tension between")
	fmt.Println("overhead (few big chunks) and loss risk (many small chunks), resolved.")
}
