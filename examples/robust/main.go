// Robust: what if you don't trust the risk model? This example walks
// the full decision a practitioner faces:
//
//  1. plan optimally for the expected case (this paper's guidelines);
//  2. plan for a bounded adversary (the sequel's worst-case regime);
//  3. measure what each plan costs under the other criterion — the
//     price of robustness;
//  4. check what happens if the assumed life function is simply wrong.
package main

import (
	"fmt"
	"log"

	cyclesteal "repro"
)

func main() {
	const (
		lifespan = 600.0 // owner away at most 10 minutes (seconds)
		overhead = 2.0   // per-chunk setup
	)
	life, err := cyclesteal.UniformRisk(lifespan)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Expected-case plan.
	expected, err := cyclesteal.Plan(life, overhead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected-case plan : %d periods, t0 %.1f, E = %.1f\n",
		expected.Schedule.Len(), expected.T0, expected.ExpectedWork)

	// 2. Worst-case plans for increasing adversary budgets. Note the
	// threat model differs: the adversary interrupts q times but the
	// machine stays available for the whole lifespan, whereas the
	// expected-case owner departs once and ends the episode — so
	// guarantees can exceed the single-departure expected work.
	fmt.Println("\nbounded-adversary guarantees (q strikes destroy q periods):")
	fmt.Printf("%4s %6s %12s %12s %14s\n", "q", "m", "guarantee", "E(wc plan)", "E sacrificed")
	for _, q := range []int{1, 2, 4, 8} {
		wcSched, guarantee, err := cyclesteal.WorstCaseOptimal(lifespan, overhead, q)
		if err != nil {
			log.Fatal(err)
		}
		eWc := cyclesteal.ExpectedWork(wcSched, life, overhead)
		fmt.Printf("%4d %6d %12.1f %12.1f %13.1f%%\n",
			q, wcSched.Len(), guarantee, eWc,
			100*(1-eWc/expected.ExpectedWork))
	}

	// 3. The expected plan's exposure: what does the adversary do to it?
	fmt.Println("\nexpected-case plan under the adversary:")
	for _, q := range []int{1, 2, 4, 8} {
		fmt.Printf("  q=%d: guaranteed %.1f (worst-case plan would guarantee more)\n",
			q, cyclesteal.GuaranteedWork(expected.Schedule, overhead, q))
	}

	// 4. Model error: the owner actually follows a 90s half-life.
	actual, err := cyclesteal.HalfLife(90)
	if err != nil {
		log.Fatal(err)
	}
	right, err := cyclesteal.Plan(actual, overhead)
	if err != nil {
		log.Fatal(err)
	}
	misinformed := cyclesteal.ExpectedWork(expected.Schedule, actual, overhead)
	fmt.Printf("\nif the model is wrong (true risk: 90s half-life):\n")
	fmt.Printf("  plan-for-uniform under truth: E = %.1f\n", misinformed)
	fmt.Printf("  plan-for-truth:               E = %.1f (%.1f%% was lost to misspecification)\n",
		right.ExpectedWork, 100*(1-misinformed/right.ExpectedWork))
	fmt.Println("\nmoral: fit the life function from traces (see examples/tracefit);")
	fmt.Println("hedge with worst-case schedules only when owners are truly adversarial.")
}
