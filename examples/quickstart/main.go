// Quickstart: plan a cycle-stealing episode with the paper's
// guidelines and check the plan against both the provably optimal
// schedule and a Monte-Carlo simulation.
//
// Scenario: workstation B's owner is away for at most 1000 seconds,
// with uniform reclaim risk (the paper's p(t) = 1 - t/L). Shipping a
// bundle of work to B and collecting its results costs 2 seconds of
// setup per round trip.
package main

import (
	"fmt"
	"log"

	cyclesteal "repro"
)

func main() {
	life, err := cyclesteal.UniformRisk(1000)
	if err != nil {
		log.Fatal(err)
	}
	const overhead = 2.0

	plan, err := cyclesteal.Plan(life, overhead)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Cycle-stealing plan for", life)
	fmt.Printf("  t0 search bracket (Thms 3.2/3.3): [%.2f, %.2f]\n",
		plan.Bracket.Lo, plan.Bracket.Hi)
	fmt.Printf("  chosen first period t0: %.2f\n", plan.T0)
	fmt.Printf("  periods (%d, decreasing by c each step — eq. 4.1):\n    ", plan.Schedule.Len())
	for i := 0; i < plan.Schedule.Len(); i += 8 {
		fmt.Printf("%.1f ", plan.Schedule.Period(i))
	}
	fmt.Printf("...\n  expected committed work: %.1f of %d available\n",
		plan.ExpectedWork, 1000)

	// How close is the guideline schedule to the ad-hoc optimum of
	// Bhatt-Chung-Leighton-Rosenberg (IEEE ToC 1997)?
	_, optE, err := cyclesteal.OptimalFor(life, overhead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  provably optimal E: %.1f  (guideline achieves %.3f%%)\n",
		optE, 100*plan.ExpectedWork/optE)

	// And does the analytic expectation match a simulated NOW?
	mean, ci := cyclesteal.SimulateEpisodes(plan.Schedule, life, overhead, 50_000, 42)
	fmt.Printf("  simulated (50k episodes): %.1f ± %.1f\n", mean, ci)
}
