#!/usr/bin/env bash
# End-to-end smoke test of the horizontal scaling layer: boots a
# 3-replica csserve cluster behind csgate and asserts the cluster
# design's promises with jq —
#
#   * compute-once: a cold wave of distinct specs through the gate
#     causes at most ONE fresh computation per key cluster-wide
#     (consistent-hash routing gives every key one owner; coalescing
#     dedupes concurrent duplicates on that owner);
#   * warm-wave speedup through the gate, same gate as the single-node
#     smoke (>= 10x server-side elapsed);
#   * rolling restart: with load flowing through the gate, one replica
#     is drained and restarted — zero transport errors and no status
#     other than 200/429 reaches the client, and the wave after the
#     restart is served entirely without fresh computation (warm
#     handoff on drain + warm start on boot);
#   * the peer protocol: under steal fill, a non-owner replica asked
#     directly for a cached key pulls it from the owner (peer_filled).
#
# FILL selects the fill policy (steal | share, default steal); the CI
# matrix runs both. Artifacts (gate + replica logs, csload reports,
# trace dumps, /debug/slo snapshots) land in $CLUSTER_SMOKE_DIR/$FILL
# for CI to upload on failure.
#
# Requires: jq, curl.
set -euo pipefail

FILL="${FILL:-steal}"
case "$FILL" in
  steal|share) ;;
  *) echo "cluster-smoke: unknown FILL=$FILL (want steal or share)" >&2; exit 2 ;;
esac

SMOKE_DIR="${CLUSTER_SMOKE_DIR:-cluster-smoke-out}/$FILL"
BASE_PORT="${CLUSTER_SMOKE_PORT:-18180}"
GO="${GO:-go}"

R0_PORT=$BASE_PORT
R1_PORT=$((BASE_PORT + 1))
R2_PORT=$((BASE_PORT + 2))
GATE_PORT=$((BASE_PORT + 3))
R0="http://127.0.0.1:$R0_PORT"
R1="http://127.0.0.1:$R1_PORT"
R2="http://127.0.0.1:$R2_PORT"
GATE="http://127.0.0.1:$GATE_PORT"
PEERS="$R0,$R1,$R2"

mkdir -p "$SMOKE_DIR"
rm -f "$SMOKE_DIR"/*.json "$SMOKE_DIR"/*.txt "$SMOKE_DIR"/*.log

R0_PID=""
R1_PID=""
R2_PID=""
GATE_PID=""
cleanup() {
  status=$?
  if [ $status -ne 0 ]; then
    echo "cluster-smoke($FILL): FAILED (artifacts in $SMOKE_DIR)" >&2
    # Post-mortem: trace stores and SLO burn rates from every tier.
    curl -sf "$GATE/debug/traces?limit=200" >"$SMOKE_DIR/gate-traces-failure.json" 2>/dev/null || true
    curl -sf "$GATE/debug/slo" >"$SMOKE_DIR/gate-slo-failure.json" 2>/dev/null || true
    for i in 0 1 2; do
      port=$((BASE_PORT + i))
      curl -sf "http://127.0.0.1:$port/debug/traces?limit=200" \
        >"$SMOKE_DIR/replica$i-traces-failure.json" 2>/dev/null || true
      curl -sf "http://127.0.0.1:$port/debug/slo" \
        >"$SMOKE_DIR/replica$i-slo-failure.json" 2>/dev/null || true
    done
  fi
  for pid in "$GATE_PID" "$R0_PID" "$R1_PID" "$R2_PID"; do
    [ -n "$pid" ] && kill -TERM "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  exit $status
}
trap cleanup EXIT

$GO build -o bin/csserve ./cmd/csserve
$GO build -o bin/csgate ./cmd/csgate
$GO build -o bin/csload ./cmd/csload

wait_healthy() {
  local url=$1
  for _ in $(seq 1 100); do
    if curl -sf "$url/v1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "cluster-smoke: $url never became healthy" >&2
  return 1
}

start_replica() {
  local idx=$1 port=$2
  ./bin/csserve -addr "127.0.0.1:$port" -self "http://127.0.0.1:$port" \
    -peers "$PEERS" -fill "$FILL" -trace-sample 1 -runtime-sample -1s \
    2>>"$SMOKE_DIR/replica$idx.log" >>"$SMOKE_DIR/replica$idx.out" &
}

echo "cluster-smoke($FILL): booting 3 replicas + gate"
start_replica 0 "$R0_PORT"; R0_PID=$!
start_replica 1 "$R1_PORT"; R1_PID=$!
start_replica 2 "$R2_PORT"; R2_PID=$!
wait_healthy "$R0"
wait_healthy "$R1"
wait_healthy "$R2"

./bin/csgate -addr "127.0.0.1:$GATE_PORT" -replicas "$PEERS" \
  -probe 100ms -trace-sample 1 \
  2>"$SMOKE_DIR/gate.log" >"$SMOKE_DIR/gate.out" &
GATE_PID=$!
wait_healthy "$GATE"
curl -sf "$GATE/v1/healthz" >"$SMOKE_DIR/gate-healthz.json"
jq -e '.status == "ok" and .up == 3 and .ring_size == 3' "$SMOKE_DIR/gate-healthz.json"

# --- compute-once and warm speedup through the gate ------------------
echo "cluster-smoke($FILL): cold/warm waves through the gate"
./bin/csload -addr "$GATE" -endpoint plan \
  -requests 24 -concurrency 8 -waves 2 >"$SMOKE_DIR/load-gate.json"
jq -e '.waves[0].ok == 24 and .waves[1].ok == 24' "$SMOKE_DIR/load-gate.json"
jq -e '[.waves[].errors] | add == 0' "$SMOKE_DIR/load-gate.json"
# The cluster-wide compute-once invariant: at most one fresh
# computation per key per wave. Every request for a key lands on its
# owner replica, where cache + coalescing dedupe it.
jq -e '.waves[0].max_fresh_per_key <= 1' "$SMOKE_DIR/load-gate.json"
# The warm wave recomputes nothing anywhere in the cluster...
jq -e '.waves[1].fresh == 0' "$SMOKE_DIR/load-gate.json"
# ...and is served >= 10x faster end to end, through the gate.
jq -e '.speedup_server_elapsed >= 10' "$SMOKE_DIR/load-gate.json"

# The gate spread the 24 distinct keys: more than one replica served.
curl -sf "$GATE/metrics" >"$SMOKE_DIR/gate-metrics.txt"
routed=$(grep -c '^cs_gate_routed_total{replica="[^"]*"} [1-9]' "$SMOKE_DIR/gate-metrics.txt" || true)
if [ "$routed" -lt 2 ]; then
  echo "cluster-smoke: only $routed replicas saw traffic for 24 distinct keys" >&2
  exit 1
fi

# --- the peer protocol, observed directly ----------------------------
if [ "$FILL" = steal ]; then
  echo "cluster-smoke($FILL): non-owner steal fills from the owner"
  # Ask every replica directly for one warmed key: the owner answers
  # cached, the two non-owners must pull it over the peer protocol
  # rather than recompute.
  body='{"life":"poly","lifespan":600,"d":3,"c":1}'
  : >"$SMOKE_DIR/steal-direct.json"
  for url in "$R0" "$R1" "$R2"; do
    curl -sf -X POST -H 'Content-Type: application/json' -d "$body" \
      "$url/v1/plan" >>"$SMOKE_DIR/steal-direct.json"
  done
  jq -s -e '[.[] | select(.peer_filled)] | length >= 1' "$SMOKE_DIR/steal-direct.json"
  jq -s -e 'all(.[]; .cached or .coalesced or .peer_filled)' "$SMOKE_DIR/steal-direct.json"
  curl -sf "$R0/metrics" >"$SMOKE_DIR/replica0-metrics.txt"
  grep -q 'cs_cluster_peer_serve_total{outcome="hit"}' "$SMOKE_DIR/replica0-metrics.txt"
else
  echo "cluster-smoke($FILL): compute-time push replication"
  # Under share every cold computation was pushed to the key's
  # next-preferred peer; some replica must have installed entries.
  installs=0
  for i in 0 1 2; do
    port=$((BASE_PORT + i))
    curl -sf "http://127.0.0.1:$port/metrics" >"$SMOKE_DIR/replica$i-metrics.txt"
    n=$(awk '$1 == "cs_cluster_warm_installed_total" { print int($2) }' \
      "$SMOKE_DIR/replica$i-metrics.txt")
    installs=$((installs + ${n:-0}))
  done
  if [ "$installs" -lt 1 ]; then
    echo "cluster-smoke: share fill pushed no replicas any entries" >&2
    exit 1
  fi
fi

# --- rolling replica restart under load ------------------------------
echo "cluster-smoke($FILL): rolling restart of replica 0 under load"
./bin/csload -addr "$GATE" -endpoint plan \
  -requests 24 -concurrency 8 -waves 20 >"$SMOKE_DIR/load-rolling.json" &
LOAD_PID=$!
sleep 0.3
kill -TERM "$R0_PID"
wait "$R0_PID"
grep -q drained "$SMOKE_DIR/replica0.out"
start_replica 0 "$R0_PORT"; R0_PID=$!
wait_healthy "$R0"
wait "$LOAD_PID"
# Zero transport errors and nothing but 200/429 reached the client
# while a third of the cluster went away and came back.
jq -e 'all(.waves[]; .errors == 0)' "$SMOKE_DIR/load-rolling.json"
jq -e 'all(.waves[]; (.status | keys) - ["200", "429"] == [])' "$SMOKE_DIR/load-rolling.json"

# Wait for the gate's prober to route to the restarted replica again,
# then demand a fully warm wave: the restarted replica must serve its
# arc from the handed-off-and-warm-started cache, not recompute it.
for _ in $(seq 1 50); do
  if curl -sf "$GATE/v1/healthz" | jq -e '.up == 3' >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
curl -sf "$GATE/v1/healthz" >"$SMOKE_DIR/gate-healthz-after.json"
jq -e '.up == 3 and .status == "ok"' "$SMOKE_DIR/gate-healthz-after.json"

./bin/csload -addr "$GATE" -endpoint plan \
  -requests 24 -concurrency 8 -waves 1 >"$SMOKE_DIR/load-postrestart.json"
jq -e '.waves[0].ok == 24 and .waves[0].errors == 0' "$SMOKE_DIR/load-postrestart.json"
jq -e '.waves[0].fresh == 0' "$SMOKE_DIR/load-postrestart.json"

# --- gate-level observability ----------------------------------------
echo "cluster-smoke($FILL): gate SLO and trace surfaces"
curl -sf "$GATE/debug/slo" >"$SMOKE_DIR/gate-slo.json"
jq -e '.total.requests >= 1 and .total.errors == 0' "$SMOKE_DIR/gate-slo.json"
curl -sf "$GATE/debug/traces?limit=50" >"$SMOKE_DIR/gate-traces.json"
jq -e '.traces | length >= 1' "$SMOKE_DIR/gate-traces.json"
# Gate traces carry the proxy phase with the chosen replica.
jq -e '[.traces[] | select([.phases[]? | select(.name == "proxy")] | length > 0)]
  | length >= 1' "$SMOKE_DIR/gate-traces.json"

# The client-side shard map agrees with the gate: csload -targets
# routes by the same ring, so a warm wave straight at the replicas is
# also fully deduped.
echo "cluster-smoke($FILL): csload -targets client-side shard map"
./bin/csload -targets "$PEERS" -endpoint plan \
  -requests 24 -concurrency 8 -waves 1 >"$SMOKE_DIR/load-targets.json"
jq -e '.waves[0].ok == 24 and .waves[0].errors == 0' "$SMOKE_DIR/load-targets.json"
jq -e '.waves[0].fresh == 0' "$SMOKE_DIR/load-targets.json"
jq -e '.waves[0].targets | length == 3' "$SMOKE_DIR/load-targets.json"

echo "cluster-smoke($FILL): OK"
