#!/usr/bin/env bash
# End-to-end smoke test of the serving layer: boots csserve, drives it
# with csload, and asserts the scaling behaviour the design promises —
# cache speedup on identical requests, coalescing of concurrent
# duplicates, 429 load-shedding on a saturated pool, a live /metrics
# surface, and stitched request traces whose per-phase attribution
# satisfies queue + coalesce + compute <= total. Also gates the runtime
# observability surface: the runtime/metrics bridge series in the
# scrape, per-phase allocation deltas in stored traces, a well-formed
# /debug/slo burn-rate report, delta heap profiling, the healthz
# runtime block, and the csbench -compare regression gate (including a
# negative test that a synthetic breach exits nonzero). Artifacts
# (server log, metrics scrape, load reports, trace store dump) land in
# $SMOKE_DIR for CI to upload on failure.
#
# Requires: jq, curl.
set -euo pipefail

SMOKE_DIR="${SMOKE_DIR:-serve-smoke-out}"
PORT="${SMOKE_PORT:-18080}"
BURST_PORT=$((PORT + 1))
GO="${GO:-go}"

mkdir -p "$SMOKE_DIR"
rm -f "$SMOKE_DIR"/*.json "$SMOKE_DIR"/*.txt "$SMOKE_DIR"/*.log

SERVER_PID=""
BURST_PID=""
cleanup() {
  status=$?
  if [ $status -ne 0 ]; then
    echo "serve-smoke: FAILED (artifacts in $SMOKE_DIR)" >&2
    # Ask the server for a post-mortem flight dump and grab the trace
    # store before it dies.
    [ -n "$SERVER_PID" ] && kill -QUIT "$SERVER_PID" 2>/dev/null && sleep 0.5 || true
    [ -n "$SERVER_PID" ] && curl -sf "http://127.0.0.1:$PORT/debug/traces?limit=200" \
      >"$SMOKE_DIR/traces-failure.json" 2>/dev/null || true
  fi
  [ -n "$SERVER_PID" ] && kill -TERM "$SERVER_PID" 2>/dev/null || true
  [ -n "$BURST_PID" ] && kill -TERM "$BURST_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  exit $status
}
trap cleanup EXIT

$GO build -o bin/csserve ./cmd/csserve
$GO build -o bin/csload ./cmd/csload

wait_healthy() {
  local port=$1
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:$port/v1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "serve-smoke: server on :$port never became healthy" >&2
  return 1
}

# --- main server: cache, coalescing, metrics, trace assertions ------
# -trace-sample 1 keeps every request's trace so the gates below see a
# fully populated store; -runtime-sample 250ms makes the runtime bridge
# publish within the smoke's lifetime.
./bin/csserve -addr "127.0.0.1:$PORT" -flight 4096 -trace-sample 1 \
  -runtime-sample 250ms \
  2>"$SMOKE_DIR/server.log" >"$SMOKE_DIR/server.out" &
SERVER_PID=$!
wait_healthy "$PORT"

echo "serve-smoke: cold/warm plan waves"
./bin/csload -addr "http://127.0.0.1:$PORT" -endpoint plan \
  -requests 24 -concurrency 8 -waves 2 >"$SMOKE_DIR/load-plan.json"
jq -e '.waves[0].ok == 24 and .waves[1].ok == 24' "$SMOKE_DIR/load-plan.json"
jq -e '[.waves[].errors] | add == 0' "$SMOKE_DIR/load-plan.json"
jq -e '.waves[1].cached == 24' "$SMOKE_DIR/load-plan.json"
# The acceptance criterion: the warm wave of identical specs is served
# >= 10x faster (server-side elapsed, immune to HTTP jitter).
jq -e '.speedup_server_elapsed >= 10' "$SMOKE_DIR/load-plan.json"
# Client-side tail reporting: every wave names its slowest request's
# trace ID, and max is at least p99.
jq -e 'all(.waves[]; .max_ms >= .p99_ms and (.slowest_trace_id | length == 32))' \
  "$SMOKE_DIR/load-plan.json"

echo "serve-smoke: concurrent identical estimates coalesce"
./bin/csload -addr "http://127.0.0.1:$PORT" -endpoint estimate \
  -requests 8 -concurrency 8 -waves 1 -distinct 1 -episodes 300000 \
  >"$SMOKE_DIR/load-estimate.json"
jq -e '.waves[0].ok == 8 and .waves[0].errors == 0' "$SMOKE_DIR/load-estimate.json"
jq -e '.waves[0] | (.requests - .cached - .coalesced) <= 1' "$SMOKE_DIR/load-estimate.json"

echo "serve-smoke: metrics surface"
curl -sf "http://127.0.0.1:$PORT/metrics" >"$SMOKE_DIR/metrics.txt"
grep -q 'cs_http_request_ms{route="plan",quantile="0.99"}' "$SMOKE_DIR/metrics.txt"
# Cache hit ratio must be nonzero after the warm wave.
awk '$1 == "cs_serve_cache_hits_total{route=\"plan\"}" { hits = $2 }
     END { exit (hits > 0 ? 0 : 1) }' "$SMOKE_DIR/metrics.txt"
# The classic text format has no exemplar syntax: the default scrape
# must stay parseable by a plain Prometheus scraper.
if grep -q ' # {' "$SMOKE_DIR/metrics.txt"; then
  echo "serve-smoke: classic /metrics scrape carries exemplar syntax" >&2
  exit 1
fi
# A scraper negotiating OpenMetrics gets exemplar trace IDs on the
# latency histogram buckets for drill-down, and a terminating # EOF.
curl -sf -H 'Accept: application/openmetrics-text' \
  "http://127.0.0.1:$PORT/metrics" >"$SMOKE_DIR/metrics-openmetrics.txt"
grep -q '^# EOF$' "$SMOKE_DIR/metrics-openmetrics.txt"
grep -Eq 'cs_http_request_duration_ms_bucket\{[^}]*\} [0-9]+ # \{trace_id="[0-9a-f]{32}"\}' \
  "$SMOKE_DIR/metrics-openmetrics.txt"

echo "serve-smoke: runtime/metrics bridge series in the scrape"
# The bridge samples every 250ms, so by now the gauges and the
# delta-published cumulative counters must all be in the exposition.
grep -q '^cs_runtime_goroutines ' "$SMOKE_DIR/metrics.txt"
grep -q '^cs_runtime_heap_live_bytes ' "$SMOKE_DIR/metrics.txt"
grep -q '^cs_runtime_gc_cycles_total ' "$SMOKE_DIR/metrics.txt"
grep -q '^cs_runtime_alloc_bytes_total ' "$SMOKE_DIR/metrics.txt"
grep -q 'cs_runtime_gc_pause_ms{quantile="0.99"}' "$SMOKE_DIR/metrics.txt"
grep -q 'cs_runtime_sched_latency_ms{quantile="0.5"}' "$SMOKE_DIR/metrics.txt"
# The load waves allocated: the alloc-throughput counter is nonzero.
awk '$1 == "cs_runtime_alloc_objects_total" { n = $2 }
     END { exit (n > 0 ? 0 : 1) }' "$SMOKE_DIR/metrics.txt"

echo "serve-smoke: trace store and latency attribution"
curl -sf "http://127.0.0.1:$PORT/debug/traces?limit=200" >"$SMOKE_DIR/traces.json"
jq -e '.traces | length >= 1' "$SMOKE_DIR/traces.json"
# csload roots every request with a traceparent, so server spans must
# be stitched under remote parents.
jq -e '[.traces[] | select(.remote)] | length >= 1' "$SMOKE_DIR/traces.json"
# The attribution invariant: accounted phase time never exceeds the
# request's total.
jq -e 'all(.traces[];
  (.breakdown.queue_ms // 0) + (.breakdown.coalesce_ms // 0) + (.breakdown.compute_ms // 0)
  <= .breakdown.total_ms)' "$SMOKE_DIR/traces.json"
# Cold estimates did real work: some trace accounts compute time.
jq -e '[.traces[] | select((.breakdown.compute_ms // 0) > 0)] | length >= 1' \
  "$SMOKE_DIR/traces.json"
# Per-phase allocation attribution: at least one stored trace carries a
# phase with a nonzero alloc delta, and the record-level totals equal
# the sum over the serving-path phases (nested instrumentation spans
# like "mc" are reported per-phase but excluded from the rollup).
jq -e '[.traces[] | select([.phases[]? | .alloc_objects // 0] | add > 0)]
  | length >= 1' "$SMOKE_DIR/traces.json"
jq -e 'all(.traces[];
  (.alloc_objects // 0) == ([.phases[]?
    | select(.name == "queue" or .name == "cache"
             or .name == "coalesce" or .name == "compute")
    | .alloc_objects // 0] | add // 0))' "$SMOKE_DIR/traces.json"

echo "serve-smoke: SLO burn-rate report"
curl -sf "http://127.0.0.1:$PORT/debug/slo" >"$SMOKE_DIR/slo.json"
jq -e '.availability_objective > 0 and .availability_objective < 1' "$SMOKE_DIR/slo.json"
jq -e '.windows | length >= 1' "$SMOKE_DIR/slo.json"
# The load waves were all 2xx: requests counted, burn rates well-formed
# and quiet (healthz polling is excluded from the SLI, so the counts
# reflect plan/estimate traffic only).
jq -e '.total.requests >= 1 and .total.errors == 0' "$SMOKE_DIR/slo.json"
jq -e 'all(.windows[]; .error_burn_rate >= 0 and .latency_burn_rate >= 0)' \
  "$SMOKE_DIR/slo.json"
# All four burn-rate alert pairs are present; with zero errors the
# availability pairs must be quiet. (The latency pairs may legitimately
# fire: the heavy Monte-Carlo estimates exceed the default 250ms
# threshold, which is the alert doing its job.)
jq -e '.alerts | length == 4 and all(.[]; .burn_threshold > 0)' "$SMOKE_DIR/slo.json"
jq -e 'all(.alerts[] | select(.sli == "availability"); .firing == false)' \
  "$SMOKE_DIR/slo.json"

echo "serve-smoke: delta heap profile"
# Also forces two GC cycles, so the healthz gate below can demand a
# nonzero gc_cycles even on a fast machine.
curl -sf "http://127.0.0.1:$PORT/debug/delta/heap?seconds=0.2&top=5" \
  >"$SMOKE_DIR/delta-heap.json"
jq -e '.mode == "heap" and .seconds == 0.2 and (.stacks | type == "array")' \
  "$SMOKE_DIR/delta-heap.json"

echo "serve-smoke: healthz diagnostics"
curl -sf "http://127.0.0.1:$PORT/v1/healthz" >"$SMOKE_DIR/healthz.json"
jq -e '.version != "" and (.go_version | startswith("go")) and .num_cpu >= 1' \
  "$SMOKE_DIR/healthz.json"
jq -e '.plan_cache.per_shard | length >= 1' "$SMOKE_DIR/healthz.json"
# The runtime block: GC accounting (the delta profile above forced
# cycles), live heap numbers, and a quiet leak watchdog.
jq -e '.runtime.gc_cycles >= 1 and .runtime.gc_pause_total_ms > 0' \
  "$SMOKE_DIR/healthz.json"
jq -e '.runtime.heap_alloc_bytes > 0 and .runtime.num_goroutine >= 1' \
  "$SMOKE_DIR/healthz.json"
jq -e '.runtime.goroutine_leak_suspected == false' "$SMOKE_DIR/healthz.json"

echo "serve-smoke: graceful drain"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
grep -q drained "$SMOKE_DIR/server.out"
SERVER_PID=""

# --- tiny burst server: full queue must shed load with 429 ----------
echo "serve-smoke: 429 load shedding on a saturated pool"
./bin/csserve -addr "127.0.0.1:$BURST_PORT" -workers 1 -queue 1 \
  2>"$SMOKE_DIR/burst-server.log" >/dev/null &
BURST_PID=$!
wait_healthy "$BURST_PORT"
./bin/csload -addr "http://127.0.0.1:$BURST_PORT" -endpoint estimate \
  -requests 16 -concurrency 16 -waves 1 -episodes 400000 \
  >"$SMOKE_DIR/load-burst.json"
# The burst must mix shed (429) and served (200) responses with zero
# transport errors: load shedding never drops an in-flight response.
jq -e '.waves[0].errors == 0' "$SMOKE_DIR/load-burst.json"
jq -e '.waves[0].status["429"] >= 1' "$SMOKE_DIR/load-burst.json"
jq -e '.waves[0].status["200"] >= 1' "$SMOKE_DIR/load-burst.json"
jq -e '.waves[0].status | keys - ["200", "429"] == []' "$SMOKE_DIR/load-burst.json"
kill -TERM "$BURST_PID"
wait "$BURST_PID"
BURST_PID=""

# --- perf-history regression gate: deterministic file-vs-file --------
echo "serve-smoke: csbench -compare pass/breach exit codes"
$GO build -o bin/csbench ./cmd/csbench
cat >"$SMOKE_DIR/perf-base.json" <<'EOF'
{"suite":"smoke","go_version":"go0.0","runs":1,"benchmarks":[
  {"name":"hot/path","ns_per_op_min":1000,"ns_per_op_median":1100,
   "allocs_per_op_min":4,"allocs_per_op_median":4}]}
EOF
cat >"$SMOKE_DIR/perf-breach.json" <<'EOF'
{"suite":"smoke","go_version":"go0.0","runs":1,"benchmarks":[
  {"name":"hot/path","ns_per_op_min":9000,"ns_per_op_median":9900,
   "allocs_per_op_min":4,"allocs_per_op_median":4}]}
EOF
# Identical baseline and candidate must pass with a clean diff artifact.
./bin/csbench -compare "$SMOKE_DIR/perf-base.json" \
  -against "$SMOKE_DIR/perf-base.json" \
  -compare-out "$SMOKE_DIR/perf-diff-ok.json" >/dev/null
jq -e '.regressed == false and .breaches == 0' "$SMOKE_DIR/perf-diff-ok.json"
# A 9x ns/op regression must breach the budget and exit nonzero.
if ./bin/csbench -compare "$SMOKE_DIR/perf-base.json" \
  -against "$SMOKE_DIR/perf-breach.json" \
  -compare-out "$SMOKE_DIR/perf-diff-breach.json" >/dev/null; then
  echo "serve-smoke: csbench -compare passed a 9x regression" >&2
  exit 1
fi
jq -e '.regressed == true and .breaches == 1' "$SMOKE_DIR/perf-diff-breach.json"
jq -e '.deltas[0].ns_breach == true' "$SMOKE_DIR/perf-diff-breach.json"

echo "serve-smoke: OK"
