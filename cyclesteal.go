// Package cyclesteal is a production-oriented implementation of the
// cycle-stealing scheduling guidelines of Rosenberg, "Guidelines for
// Data-Parallel Cycle-Stealing in Networks of Workstations, I"
// (CMPSCI TR 98-15 / IPPS 1998), together with everything the paper
// builds on: the [Bhatt–Chung–Leighton–Rosenberg 1997] optimal
// schedules it compares against, baseline policies, a discrete-event
// NOW simulator, owner-trace fitting, and the fault-tolerant
// checkpointing adaptation of the paper's Remark.
//
// # The model in one paragraph
//
// Workstation A borrows workstation B under a draconian contract: when
// B's owner returns, whatever B was doing is destroyed. A schedules the
// episode as periods t0, t1, ...; each period costs a communication
// overhead c and commits t-c units of work only if the owner stays away
// past its end. Risk is captured by a life function p(t) = probability
// the owner has not returned by time t. The goal is to maximize
// expected committed work E = Σ (t_i ⊖ c)·p(T_i).
//
// # Quick start
//
//	life, _ := cyclesteal.UniformRisk(1000)        // owner returns within 1000s, uniform risk
//	plan, _ := cyclesteal.Plan(life, 2)            // overhead: 2s per chunk round-trip
//	fmt.Println(plan.Schedule)                     // decreasing chunk sizes, paper's (4.1)
//	fmt.Println(plan.ExpectedWork)                 // ≈ the [BCLR97] optimum
//
// The facade re-exports the most used types; the full surface lives in
// the internal packages (core, lifefn, sched, optimal, baseline,
// nowsim, trace, faultsim), each documented independently.
package cyclesteal

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/sched"
)

// Re-exported core types. See the originating packages for full
// documentation.
type (
	// Life is a survival function p(t) describing reclaim risk.
	Life = lifefn.Life
	// Shape classifies a life function's curvature.
	Shape = lifefn.Shape
	// Schedule is a sequence of period lengths.
	Schedule = sched.Schedule
	// PlanResult is a guideline plan: schedule, t0, bracket, E.
	PlanResult = core.Plan
	// PlanOptions tunes generation and the t0 search.
	PlanOptions = core.PlanOptions
	// Planner derives guideline schedules for one configuration.
	Planner = core.Planner
	// Policy decides period lengths during a simulated episode.
	Policy = nowsim.Policy
	// EpisodeResult is one simulated episode's outcome.
	EpisodeResult = nowsim.EpisodeResult
)

// Shape values.
const (
	ShapeUnknown = lifefn.Unknown
	ShapeConcave = lifefn.Concave
	ShapeConvex  = lifefn.Convex
	ShapeLinear  = lifefn.Linear
)

// UniformRisk returns the uniform-risk life function p(t) = 1 - t/L:
// the owner returns within L time units, all instants equally risky.
func UniformRisk(lifespan float64) (Life, error) { return lifefn.NewUniform(lifespan) }

// PolynomialRisk returns p_{d,L}(t) = 1 - t^d/L^d: risk concentrated
// near the end of the lifespan (concave for d >= 2).
func PolynomialRisk(d int, lifespan float64) (Life, error) { return lifefn.NewPoly(d, lifespan) }

// HalfLife returns the geometrically decreasing lifespan life function
// a^{-t} parameterized by its half-life: the probability the owner is
// still away halves every halfLife time units.
func HalfLife(halfLife float64) (Life, error) {
	if !(halfLife > 0) || math.IsInf(halfLife, 0) {
		return nil, fmt.Errorf("cyclesteal: half-life must be positive and finite, got %g", halfLife)
	}
	return lifefn.NewGeomDecreasing(math.Pow(2, 1/halfLife))
}

// DoublingRisk returns the geometrically increasing risk life function
// (2^L - 2^t)/(2^L - 1): the interruption risk doubles every time unit
// (the paper's "coffee break" scenario).
func DoublingRisk(lifespan float64) (Life, error) { return lifefn.NewGeomIncreasing(lifespan) }

// FromTraceSamples builds a life function from tabulated survival
// samples (ts strictly increasing from 0, ps nonincreasing from 1); see
// internal/trace for fitting raw absence observations.
func FromTraceSamples(ts, ps []float64) (Life, error) { return lifefn.NewEmpirical(ts, ps) }

// Plan computes the guideline schedule for life function l and
// per-period overhead c with default options: the Theorem 3.2/3.3
// bracket for t0, a bracketed search, and forward generation through
// system (3.6).
func Plan(l Life, c float64) (PlanResult, error) {
	return PlanWith(l, c, PlanOptions{})
}

// PlanWith is Plan with explicit options.
func PlanWith(l Life, c float64, opt PlanOptions) (PlanResult, error) {
	pl, err := core.NewPlanner(l, c, opt)
	if err != nil {
		return PlanResult{}, err
	}
	return pl.PlanBest()
}

// ExpectedWork evaluates E(S; p) — equation (2.1) — for any schedule.
func ExpectedWork(s Schedule, l Life, c float64) float64 {
	return sched.ExpectedWork(s, l, c)
}

// SimulateEpisodes Monte-Carlo-runs a schedule against owners whose
// reclaim times follow l, returning the mean committed work and its
// 95% confidence half-width. It is the empirical counterpart of
// ExpectedWork.
func SimulateEpisodes(s Schedule, l Life, c float64, episodes int, seed uint64) (mean, ci95 float64) {
	res := nowsim.MonteCarlo(nowsim.NewSchedulePolicy(s, "facade"),
		nowsim.LifeOwner{Life: l}, c, episodes, seed)
	return res.Work.Mean, res.Work.CI95
}
