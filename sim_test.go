package cyclesteal

import (
	"math"
	"testing"
)

func TestSimulationFacadeEndToEnd(t *testing.T) {
	life, err := UniformRisk(200)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(life, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Single-episode wrappers.
	pol := NewSchedulePolicy(plan.Schedule, "facade-test")
	res := RunEpisode(pol, 1, 150)
	if !(res.Work > 0) {
		t.Errorf("episode work = %g", res.Work)
	}
	fixed := NewFixedChunkPolicy(10)
	if r := RunEpisode(fixed, 1, 35); r.PeriodsCommitted != 3 {
		t.Errorf("fixed policy committed %d periods, want 3", r.PeriodsCommitted)
	}
	prog, err := NewProgressivePolicy(life, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := RunEpisode(prog, 1, 150); !(r.Work > 0) {
		t.Errorf("progressive episode work = %g", r.Work)
	}

	// Task-level wrappers.
	pool, err := NewUniformTasks(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	tres := RunTaskEpisode(NewSchedulePolicy(plan.Schedule, "tasks"), pool, 1, 150)
	if tres.TasksCompleted == 0 {
		t.Error("no tasks completed")
	}
	rpool, err := NewRandomTasks(50, 1, 3, NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if rpool.Remaining() != 50 {
		t.Error("random pool size")
	}

	// Parallel Monte-Carlo wrapper must agree with the serial one.
	m1, _ := SimulateEpisodes(plan.Schedule, life, 1, 5000, 9)
	m2, _ := SimulateEpisodesParallel(plan.Schedule, life, 1, 5000, 9, 4)
	if math.Abs(m1-m2) > 0.05*m1 {
		t.Errorf("serial %g vs parallel %g diverge beyond noise", m1, m2)
	}
}

func TestFarmFacade(t *testing.T) {
	life, _ := UniformRisk(150)
	plan, err := Plan(life, 1)
	if err != nil {
		t.Fatal(err)
	}
	workers := []Worker{{
		ID:            0,
		Owner:         LifeOwner{Life: life},
		PolicyFactory: func() Policy { return NewSchedulePolicy(plan.Schedule, "farm") },
	}}
	pool, _ := NewUniformTasks(100, 2)
	res, err := RunFarm(FarmConfig{Workers: workers, Overhead: 1, Seed: 4, MaxTime: 1e6}, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained || res.TasksCompleted != 100 {
		t.Errorf("farm result: %+v", res)
	}
}

func TestCheckpointFacade(t *testing.T) {
	failure, _ := HalfLife(40)
	res, err := RunCheckpointed(CheckpointConfig{
		TotalWork:     100,
		SaveCost:      1,
		Failure:       failure,
		PolicyFactory: func() Policy { return NewFixedChunkPolicy(9) },
	}, NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Makespan < 100 {
		t.Errorf("checkpoint result: %+v", res)
	}
}

func TestTraceFacade(t *testing.T) {
	truth, _ := UniformRisk(100)
	obs := SampleAbsences(truth, 1500, NewRand(8))
	fit, err := FitLifeFromTrace(obs, 24)
	if err != nil {
		t.Fatal(err)
	}
	if p := fit.P(50); math.Abs(p-0.5) > 0.06 {
		t.Errorf("fitted P(50) = %g", p)
	}
}

func TestOptimalForFacade(t *testing.T) {
	cases := []Life{}
	u, _ := UniformRisk(300)
	h, _ := HalfLife(24)
	d, _ := DoublingRisk(48)
	p, _ := PolynomialRisk(2, 300)
	cases = append(cases, u, h, d, p)
	for _, l := range cases {
		s, e, err := OptimalFor(l, 1)
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if !(e > 0) || s.Len() == 0 {
			t.Errorf("%v: degenerate optimal (E=%g, m=%d)", l, e, s.Len())
		}
		// The guideline plan must be within a hair of the optimum.
		plan, err := Plan(l, 1)
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if plan.ExpectedWork < 0.99*e {
			t.Errorf("%v: guideline %g below 99%% of optimal %g", l, plan.ExpectedWork, e)
		}
	}
}
