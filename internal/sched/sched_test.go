package sched

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lifefn"
)

func TestNewRejectsBadPeriods(t *testing.T) {
	for _, bad := range [][]float64{{0}, {-1}, {1, math.Inf(1)}, {math.NaN()}} {
		if _, err := New(bad...); !errors.Is(err, ErrInvalidSchedule) {
			t.Errorf("New(%v): err = %v, want ErrInvalidSchedule", bad, err)
		}
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := []float64{3, 2, 1}
	s, err := New(in...)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = 99
	if s.Period(0) != 3 {
		t.Error("schedule aliases caller's slice")
	}
}

func TestBoundaries(t *testing.T) {
	s := MustNew(5, 3, 2)
	want := []float64{5, 8, 10}
	got := s.Boundaries()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("T_%d = %g, want %g", i, got[i], want[i])
		}
	}
	if math.Abs(s.Total()-10) > 1e-12 {
		t.Errorf("total = %g, want 10", s.Total())
	}
	if math.Abs(s.Boundary(1)-8) > 1e-12 {
		t.Errorf("Boundary(1) = %g, want 8", s.Boundary(1))
	}
}

func TestPositiveSub(t *testing.T) {
	if PositiveSub(5, 3) != 2 || PositiveSub(3, 5) != 0 || PositiveSub(4, 4) != 0 {
		t.Error("PositiveSub wrong")
	}
}

func TestTimeForInvertsPositiveSub(t *testing.T) {
	for _, tc := range []struct{ w, c float64 }{{2, 1}, {5, 0}, {0.25, 3.5}, {1e-9, 1e3}} {
		period := TimeFor(tc.w, tc.c)
		got := PositiveSub(period, tc.c)
		// Exact in real arithmetic; in floats the round trip loses at
		// most an ulp of the larger magnitude.
		if math.Abs(got-tc.w) > 1e-12*(tc.w+tc.c) {
			t.Errorf("PositiveSub(TimeFor(%g, %g), %g) = %g, want %g", tc.w, tc.c, tc.c, got, tc.w)
		}
	}
}

// TestCommitProbabilitiesClampNoisyLife pins the clamp-before-store in
// CommitProbabilities: a numerically noisy life function can report
// p(T_k) > p(T_{k-1}), and the per-period mass must still come out a
// probability, never a small negative.
func TestCommitProbabilitiesClampNoisyLife(t *testing.T) {
	noisy := lifefn.Func{
		PFunc: func(x float64) float64 {
			if x <= 0 {
				return 1
			}
			if x >= 10 {
				return 0
			}
			// Non-monotone ripple on a linear decay.
			return 1 - x/10 + 0.01*math.Sin(40*x)
		},
		DerivFunc: func(x float64) float64 {
			if x < 0 || x > 10 {
				return 0
			}
			return -1.0/10 + 0.4*math.Cos(40*x)
		},
		Lifespan: 10,
	}
	s := MustNew(0.05, 0.05, 0.05, 0.05, 0.1, 0.1, 0.2, 0.4)
	probs := CommitProbabilities(s, noisy)
	if len(probs) != s.Len()+1 {
		t.Fatalf("len(probs) = %d, want %d", len(probs), s.Len()+1)
	}
	for k, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("probs[%d] = %g, escapes [0, 1]", k, p)
		}
	}
}

func TestExpectedWorkHandComputed(t *testing.T) {
	// Uniform L=10, c=1, S = (4, 3):
	// E = (4-1)·p(4) + (3-1)·p(7) = 3·0.6 + 2·0.3 = 2.4.
	l, _ := lifefn.NewUniform(10)
	s := MustNew(4, 3)
	if got := ExpectedWork(s, l, 1); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("E = %g, want 2.4", got)
	}
}

func TestExpectedWorkUsesPositiveSubtraction(t *testing.T) {
	// A period shorter than c contributes zero, not negative, work.
	l, _ := lifefn.NewUniform(10)
	s := MustNew(0.5, 4)
	// E = 0 + (4-1)·p(4.5) = 3·0.55.
	if got := ExpectedWork(s, l, 1); math.Abs(got-3*0.55) > 1e-12 {
		t.Errorf("E = %g, want %g", got, 3*0.55)
	}
}

func TestExpectedWorkEmptySchedule(t *testing.T) {
	l, _ := lifefn.NewUniform(10)
	if got := ExpectedWork(Schedule{}, l, 1); got != 0 {
		t.Errorf("E(empty) = %g", got)
	}
}

func TestExpectedWorkPanicsOnNegativeC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative c")
		}
	}()
	l, _ := lifefn.NewUniform(10)
	ExpectedWork(MustNew(1), l, -1)
}

func TestRealizedWorkBoundaryCases(t *testing.T) {
	s := MustNew(4, 3, 2)
	c := 1.0
	// Reclaim before first period completes: nothing.
	if got := RealizedWork(s, c, 4); got != 0 {
		t.Errorf("reclaim at exactly T_0: work = %g, want 0 (period lost)", got)
	}
	if got := RealizedWork(s, c, 4.0001); got != 3 {
		t.Errorf("reclaim just after T_0: work = %g, want 3", got)
	}
	if got := RealizedWork(s, c, 100); got != 3+2+1 {
		t.Errorf("never reclaimed: work = %g, want 6", got)
	}
	if got := RealizedWork(s, c, 0); got != 0 {
		t.Errorf("instant reclaim: work = %g, want 0", got)
	}
}

func TestRealizedWorkMatchesExpectedWorkInMean(t *testing.T) {
	// Deterministic check of the identity E[W(R)] = E(S; p) for the
	// uniform distribution by direct integration over reclaim times.
	l, _ := lifefn.NewUniform(10)
	s := MustNew(4, 3, 2)
	c := 1.0
	// R ~ Uniform(0, 10); E[W] = (1/10)·∫ W(r) dr. W is a step function
	// with steps at T_i: W = 0 on [0,4], 3 on (4,7], 5 on (7,9], 6 on (9,10].
	want := (3*3 + 5*2 + 6*1) / 10.0
	if got := ExpectedWork(s, l, c); math.Abs(got-want) > 1e-12 {
		t.Errorf("E = %g, want %g", got, want)
	}
}

func TestNormalizeMergesUnproductivePeriods(t *testing.T) {
	c := 1.0
	s := MustNew(0.5, 0.3, 4, 0.9, 3, 0.2)
	n := Normalize(s, c)
	// 0.5+0.3 carried into 4 → 4.8; 0.9 carried into 3 → 3.9; trailing
	// 0.2 dropped.
	want := MustNew(4.8, 3.9)
	if !n.Equal(want, 1e-12) {
		t.Errorf("normalized = %v, want %v", n, want)
	}
}

func TestNormalizeNeverDecreasesExpectedWork(t *testing.T) {
	l, _ := lifefn.NewUniform(20)
	c := 1.0
	cases := []Schedule{
		MustNew(0.5, 5, 0.5, 5),
		MustNew(1, 1, 1, 1, 1),
		MustNew(10, 0.2),
		MustNew(0.9),
	}
	for _, s := range cases {
		n := Normalize(s, c)
		if ExpectedWork(n, l, c) < ExpectedWork(s, l, c)-1e-12 {
			t.Errorf("Normalize lowered E for %v", s)
		}
		for i := 0; i < n.Len(); i++ {
			if n.Period(i) <= c {
				t.Errorf("normalized period %d = %g <= c", i, n.Period(i))
			}
		}
	}
}

func TestNormalizePropertyProposition21(t *testing.T) {
	// Property (Proposition 2.1): for random schedules and the uniform
	// life function, the normal form never loses expected work and all
	// its periods exceed c.
	l, _ := lifefn.NewUniform(50)
	c := 1.0
	check := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true
		}
		periods := make([]float64, len(raw))
		for i, r := range raw {
			periods[i] = 0.05 + float64(r)/32 // spans (0.05, 8]
		}
		s, err := New(periods...)
		if err != nil {
			return false
		}
		n := Normalize(s, c)
		if ExpectedWork(n, l, c) < ExpectedWork(s, l, c)-1e-9 {
			return false
		}
		for i := 0; i < n.Len(); i++ {
			if n.Period(i) <= c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestShift(t *testing.T) {
	s := MustNew(4, 3)
	up, err := s.Shift(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Equal(MustNew(4.5, 3), 1e-12) {
		t.Errorf("shift up = %v", up)
	}
	down, err := s.Shift(1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !down.Equal(MustNew(4, 2), 1e-12) {
		t.Errorf("shift down = %v", down)
	}
	if _, err := s.Shift(1, -3); err == nil {
		t.Error("shift emptying a period accepted")
	}
	if _, err := s.Shift(5, 1); err == nil {
		t.Error("out-of-range shift accepted")
	}
}

func TestPerturbPreservesOtherBoundaries(t *testing.T) {
	s := MustNew(4, 3, 2)
	p, err := s.Perturb(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(MustNew(4.5, 2.5, 2), 1e-12) {
		t.Errorf("perturbed = %v", p)
	}
	if math.Abs(p.Total()-s.Total()) > 1e-12 {
		t.Error("perturbation changed total duration")
	}
	if math.Abs(p.Boundary(1)-s.Boundary(1)) > 1e-12 {
		t.Error("perturbation moved T_1")
	}
	if _, err := s.Perturb(2, 0.1); err == nil {
		t.Error("perturbing last period accepted")
	}
	if _, err := s.Perturb(0, 3); err == nil {
		t.Error("perturbation emptying successor accepted")
	}
}

func TestMergeFirstAndSplitFirstAreInverse(t *testing.T) {
	s := MustNew(4, 3, 2)
	m, err := s.MergeFirst()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(MustNew(7, 2), 1e-12) {
		t.Errorf("merged = %v", m)
	}
	back, err := m.SplitFirst(4)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s, 1e-12) {
		t.Errorf("split = %v, want %v", back, s)
	}
}

func TestMergeSplitErrors(t *testing.T) {
	if _, err := MustNew(4).MergeFirst(); err == nil {
		t.Error("MergeFirst on 1-period schedule accepted")
	}
	if _, err := (Schedule{}).SplitFirst(1); err == nil {
		t.Error("SplitFirst on empty schedule accepted")
	}
	if _, err := MustNew(4).SplitFirst(4); err == nil {
		t.Error("SplitFirst at period end accepted")
	}
}

func TestPrefixAppend(t *testing.T) {
	s := MustNew(4, 3, 2)
	if got := s.Prefix(2); !got.Equal(MustNew(4, 3), 1e-12) {
		t.Errorf("Prefix(2) = %v", got)
	}
	if got := s.Prefix(10); got.Len() != 3 {
		t.Errorf("Prefix(10).Len() = %d", got.Len())
	}
	if got := s.Prefix(-1); got.Len() != 0 {
		t.Errorf("Prefix(-1).Len() = %d", got.Len())
	}
	ap, err := s.Append(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Len() != 4 || ap.Period(3) != 1.5 {
		t.Errorf("Append = %v", ap)
	}
	if _, err := s.Append(-1); err == nil {
		t.Error("Append(-1) accepted")
	}
}

func TestStringFormat(t *testing.T) {
	s := MustNew(4, 3)
	str := s.String()
	if !strings.Contains(str, "4") || !strings.Contains(str, "total=7") {
		t.Errorf("String() = %q", str)
	}
}

func TestPropertyShiftDownNeverBeatsOptimalStructure(t *testing.T) {
	// Sanity property used throughout Section 3's proofs: shrinking the
	// final period of a schedule under uniform risk changes E by exactly
	// the work lost in that period (boundary effects only at T_last).
	l, _ := lifefn.NewUniform(100)
	c := 1.0
	s := MustNew(10, 8, 6)
	base := ExpectedWork(s, l, c)
	shifted, _ := s.Shift(2, -1)
	delta := base - ExpectedWork(shifted, l, c)
	// E difference = (6-1)p(24) - (5-1)p(23) = 5·0.76 - 4·0.77.
	want := 5*0.76 - 4*0.77
	if math.Abs(delta-want) > 1e-12 {
		t.Errorf("delta = %g, want %g", delta, want)
	}
}
