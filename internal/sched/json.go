package sched

import (
	"encoding/json"
	"fmt"
)

// scheduleJSON is the wire form of a Schedule.
type scheduleJSON struct {
	Periods []float64 `json:"periods"`
}

// MarshalJSON encodes the schedule as {"periods": [t0, t1, ...]}, so
// plans can be persisted and shipped between processes.
func (s Schedule) MarshalJSON() ([]byte, error) {
	return json.Marshal(scheduleJSON{Periods: s.Periods()})
}

// UnmarshalJSON decodes and validates a schedule: every period must be
// positive and finite, exactly as New requires.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var wire scheduleJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return fmt.Errorf("sched: decoding schedule: %w", err)
	}
	decoded, err := New(wire.Periods...)
	if err != nil {
		return err
	}
	*s = decoded
	return nil
}
