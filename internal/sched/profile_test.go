package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWorkProfileSteps(t *testing.T) {
	s := MustNew(4, 3, 2)
	c := 1.0
	steps := WorkProfile(s, c)
	want := []ProfileStep{
		{0, 4, 0},
		{4, 7, 3},
		{7, 9, 5},
		{9, math.Inf(1), 6},
	}
	if len(steps) != len(want) {
		t.Fatalf("got %d steps", len(steps))
	}
	for i, w := range want {
		g := steps[i]
		//lint:allow floatcmp work units are exact integers in float form
		if math.Abs(g.From-w.From) > 1e-12 || g.Work != w.Work {
			t.Errorf("step %d = %+v, want %+v", i, g, w)
		}
		if math.IsInf(w.Until, 1) != math.IsInf(g.Until, 1) {
			t.Errorf("step %d Until = %g, want %g", i, g.Until, w.Until)
		} else if !math.IsInf(w.Until, 1) && math.Abs(g.Until-w.Until) > 1e-12 {
			t.Errorf("step %d Until = %g, want %g", i, g.Until, w.Until)
		}
	}
}

func TestWorkProfileAgreesWithRealizedWork(t *testing.T) {
	// Property: for random schedules and reclaim times, looking up the
	// profile equals calling RealizedWork.
	check := func(raw []uint8, ri uint16) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		c := 1.0
		periods := make([]float64, len(raw))
		for i, r := range raw {
			periods[i] = 0.2 + float64(r)/32
		}
		s, err := New(periods...)
		if err != nil {
			return false
		}
		r := float64(ri) / 1024 * s.Total() * 1.2
		steps := WorkProfile(s, c)
		var fromProfile float64
		for _, st := range steps {
			if r > st.From && r <= st.Until {
				fromProfile = st.Work
				break
			}
		}
		if r == 0 {
			fromProfile = 0
		}
		return math.Abs(fromProfile-RealizedWork(s, c, r)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestWorkProfileEmpty(t *testing.T) {
	steps := WorkProfile(Schedule{}, 1)
	if len(steps) != 1 || steps[0].Work != 0 || !math.IsInf(steps[0].Until, 1) {
		t.Errorf("empty profile = %+v", steps)
	}
}
