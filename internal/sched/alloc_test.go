package sched

import (
	"testing"

	"repro/internal/lifefn"
)

// The //cs:hotpath roots in this package are held to a zero-allocation
// steady state; these tests pin that budget at runtime.

func allocLife(t *testing.T) lifefn.Life {
	t.Helper()
	l, err := lifefn.NewUniform(100)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func allocSchedule(t *testing.T, n int) Schedule {
	t.Helper()
	periods := make([]float64, n)
	for i := range periods {
		periods[i] = 2
	}
	s, err := New(periods...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestExpectedWorkAllocFree: evaluating E(S; p) — the inner loop of
// every optimizer and of the Monte-Carlo validation — allocates
// nothing.
func TestExpectedWorkAllocFree(t *testing.T) {
	l := allocLife(t)
	s := allocSchedule(t, 32)
	var sink float64
	avg := testing.AllocsPerRun(100, func() {
		sink = ExpectedWork(s, l, 0.5)
	})
	_ = sink
	if avg != 0 {
		t.Fatalf("ExpectedWork allocates %.2f/run, want 0", avg)
	}
}

// TestGradientIntoAllocFree: with an adequate caller buffer, a
// gradient evaluation allocates nothing — the buffer doubles as
// boundary storage, so not even a scratch slice is needed.
func TestGradientIntoAllocFree(t *testing.T) {
	l := allocLife(t)
	s := allocSchedule(t, 32)
	buf := make([]float64, s.Len())
	avg := testing.AllocsPerRun(100, func() {
		buf = GradientInto(buf, s, l, 0.5)
	})
	if avg != 0 {
		t.Fatalf("GradientInto with a reused buffer allocates %.2f/run, want 0", avg)
	}
}

// TestGradientIntoMatchesGradient: the in-place boundary trick must
// reproduce Gradient's values exactly (same Kahan accumulation order).
func TestGradientIntoMatchesGradient(t *testing.T) {
	l := allocLife(t)
	s := allocSchedule(t, 17)
	want := Gradient(s, l, 0.5)
	got := GradientInto(make([]float64, 0), s, l, 0.5)
	if len(got) != len(want) {
		t.Fatalf("length mismatch: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		//lint:allow floatcmp the in-place rewrite must be bit-identical, not merely close
		if got[i] != want[i] {
			t.Fatalf("grad[%d] = %g, want %g (must be bit-identical)", i, got[i], want[i])
		}
	}
}
