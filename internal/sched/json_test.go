package sched

import (
	"encoding/json"
	"testing"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := MustNew(4.5, 3.25, 2)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s, 0) {
		t.Errorf("round trip: %v != %v", back, s)
	}
}

func TestScheduleJSONValidates(t *testing.T) {
	var s Schedule
	if err := json.Unmarshal([]byte(`{"periods":[1,-2]}`), &s); err == nil {
		t.Error("negative period accepted")
	}
	if err := json.Unmarshal([]byte(`{"periods":[0]}`), &s); err == nil {
		t.Error("zero period accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &s); err == nil {
		t.Error("garbage accepted")
	}
}

func TestScheduleJSONEmpty(t *testing.T) {
	var s Schedule
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("empty round trip has %d periods", back.Len())
	}
}

func TestScheduleJSONInsideStruct(t *testing.T) {
	// Plans embed Schedule; verify it composes.
	type plan struct {
		T0       float64  `json:"t0"`
		Schedule Schedule `json:"schedule"`
	}
	in := plan{T0: 4.5, Schedule: MustNew(4.5, 3.5)}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out plan
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.T0 != 4.5 || !out.Schedule.Equal(in.Schedule, 0) {
		t.Errorf("struct round trip: %+v", out)
	}
}
