package sched

import (
	"math"
	"testing"

	"repro/internal/lifefn"
)

func TestGradientMatchesFiniteDifference(t *testing.T) {
	l, _ := lifefn.NewUniform(100)
	s := MustNew(20, 15, 10, 5)
	c := 1.0
	grad := Gradient(s, l, c)
	const h = 1e-6
	for k := 0; k < s.Len(); k++ {
		up, err := s.Shift(k, h)
		if err != nil {
			t.Fatal(err)
		}
		down, err := s.Shift(k, -h)
		if err != nil {
			t.Fatal(err)
		}
		fd := (ExpectedWork(up, l, c) - ExpectedWork(down, l, c)) / (2 * h)
		if math.Abs(grad[k]-fd) > 1e-6*(1+math.Abs(fd)) {
			t.Errorf("∂E/∂t_%d = %g, finite difference %g", k, grad[k], fd)
		}
	}
}

func TestGradientZeroIsSystem31(t *testing.T) {
	// Hand-build the uniform-risk optimal arithmetic schedule and check
	// the gradient vanishes in every coordinate (system 3.1 holds).
	L, c := 100.0, 1.0
	// Optimal m ≈ sqrt(2L/c) = 14.14; use m=14, t0 = L/m + (m-1)c/2.
	m := 14
	t0 := L/float64(m) + float64(m-1)*c/2
	periods := make([]float64, m)
	for k := range periods {
		periods[k] = t0 - float64(k)*c
	}
	l, _ := lifefn.NewUniform(L)
	s := MustNew(periods...)
	grad := Gradient(s, l, c)
	// Interior stationarity: all partials equal (they share the common
	// value p(T_{m-1})·∂/...); for the exactly optimal schedule the
	// common value is p(T_{m-1}) + (t_{m-1}-c)p'(T_{m-1}) ≈ 0 since the
	// schedule exhausts L and the last period is barely productive.
	for k, g := range grad {
		if math.Abs(g) > 0.02 {
			t.Errorf("∂E/∂t_%d = %g, want ≈ 0 at the optimum", k, g)
		}
	}
}

func TestGradientUnproductivePeriodHasNoDirectTerm(t *testing.T) {
	l, _ := lifefn.NewUniform(100)
	s := MustNew(10, 0.5, 10) // middle period below c=1
	grad := Gradient(s, l, 1)
	// Finite difference (one-sided from above won't match two-sided at
	// the kink, so shift well below the kink): shrinking t_1 only moves
	// later boundaries.
	const h = 1e-6
	up, _ := s.Shift(1, h)
	down, _ := s.Shift(1, -h)
	fd := (ExpectedWork(up, l, 1) - ExpectedWork(down, l, 1)) / (2 * h)
	if math.Abs(grad[1]-fd) > 1e-6 {
		t.Errorf("∂E/∂t_1 = %g, fd = %g", grad[1], fd)
	}
	if grad[1] >= 0 {
		t.Errorf("stretching a dead period should only hurt: %g", grad[1])
	}
}

func TestGradientEmptySchedule(t *testing.T) {
	l, _ := lifefn.NewUniform(10)
	if g := Gradient(Schedule{}, l, 1); len(g) != 0 {
		t.Errorf("gradient of empty schedule = %v", g)
	}
}
