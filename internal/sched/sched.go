// Package sched defines cycle-stealing schedules and the work functional
// of Rosenberg's model: a schedule is the sequence of period lengths
// t_0, t_1, ... into which workstation A partitions workstation B's
// potential availability, and its quality is the expected committed work
// E(S; p) = Σ (t_i ⊖ c) p(T_i) of equation (2.1).
//
// The package also implements the schedule transformations the paper's
// proofs revolve around — shifts S^{⟨k,±δ⟩}, perturbations S^{[k,±δ]},
// merges and splits — and the productive normal form of Proposition 2.1.
package sched

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/lifefn"
	"repro/internal/numeric"
)

// ErrInvalidSchedule reports a schedule with nonpositive or non-finite
// period lengths.
var ErrInvalidSchedule = errors.New("sched: invalid schedule")

// Schedule is a finite cycle-stealing schedule: the ordered period
// lengths t_0, t_1, .... Period k occupies the half-open time interval
// (T_{k-1}, T_k]. The zero value is the empty schedule, which performs
// no work.
//
// Infinite schedules (which arise for unbounded-horizon life functions)
// are represented by finite prefixes long enough that the omitted tail's
// contribution to expected work is negligible; the planners in
// internal/core and internal/optimal choose that prefix length.
type Schedule struct {
	periods []float64 //cs:unit time
}

// New returns a schedule with the given period lengths. Every period
// must be positive and finite.
//
//cs:unit periods=time
func New(periods ...float64) (Schedule, error) {
	for i, t := range periods {
		if !(t > 0) || math.IsInf(t, 0) || math.IsNaN(t) {
			return Schedule{}, fmt.Errorf("%w: period %d has length %g", ErrInvalidSchedule, i, t)
		}
	}
	return Schedule{periods: append([]float64(nil), periods...)}, nil
}

// MustNew is New but panics on invalid input; for literals in tests and
// examples.
//
//cs:unit periods=time
func MustNew(periods ...float64) Schedule {
	s, err := New(periods...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of periods m.
func (s Schedule) Len() int { return len(s.periods) }

// Period returns t_k.
//
//cs:unit return=time
func (s Schedule) Period(k int) float64 { return s.periods[k] }

// Periods returns a copy of the period lengths.
//
//cs:unit return=time
func (s Schedule) Periods() []float64 { return append([]float64(nil), s.periods...) }

// Boundary returns T_k = t_0 + ... + t_k, the end time of period k.
//
//cs:unit return=time
func (s Schedule) Boundary(k int) float64 {
	var sum numeric.KahanSum
	for i := 0; i <= k; i++ {
		sum.Add(s.periods[i])
	}
	return sum.Value()
}

// Boundaries returns all period end times T_0, ..., T_{m-1}.
//
//cs:unit return=time
func (s Schedule) Boundaries() []float64 {
	out := make([]float64, len(s.periods))
	var sum numeric.KahanSum
	for i, t := range s.periods {
		sum.Add(t)
		out[i] = sum.Value()
	}
	return out
}

// Total returns the schedule's overall duration T_{m-1} (0 when empty).
//
//cs:unit return=time
func (s Schedule) Total() float64 {
	var sum numeric.KahanSum
	for _, t := range s.periods {
		sum.Add(t)
	}
	return sum.Value()
}

// String renders the schedule compactly: "[t0 t1 ... | total=T]".
func (s Schedule) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, t := range s.periods {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.6g", t)
	}
	fmt.Fprintf(&b, " | total=%.6g]", s.Total())
	return b.String()
}

// PositiveSub is the paper's ⊖ operator: max(0, x-y). This is the one
// blessed site where a difference of times becomes work, so the
// conversion below carries an explicit unitflow suppression.
//
//cs:unit x=time y=time return=work
func PositiveSub(x, y float64) float64 {
	if d := x - y; d > 0 {
		return d //lint:allow unitflow x ⊖ y is the sanctioned time→work conversion
	}
	return 0
}

// TimeFor returns the period length that commits w units of work under
// per-period overhead c: the inverse of the ⊖ operator on productive
// periods, PositiveSub(TimeFor(w, c), c) == w for w > 0. It is the
// model's unit-work-rate assumption made explicit — a period of wall
// length t computes for t-c of it — and the sanctioned work→time
// conversion, mirroring PositiveSub in the other direction.
//
//cs:unit w=work c=time return=time
func TimeFor(w, c float64) float64 {
	return w + c //lint:allow unitflow committed work re-enters the clock one-for-one under the unit work rate
}

// ExpectedWork evaluates E(S; p) = Σ_i (t_i ⊖ c) p(T_i), equation (2.1):
// the expected committed work of schedule s under life function l with
// per-period communication overhead c. It panics if c is negative.
//
//cs:hotpath expected-work
//cs:unit c=time return=work
func ExpectedWork(s Schedule, l lifefn.Life, c float64) float64 {
	if c < 0 {
		panic(fmt.Sprintf("sched: negative overhead c=%g", c)) //lint:allow hotalloc panic path, never taken in steady state
	}
	var e numeric.KahanSum
	var elapsed numeric.KahanSum
	for _, t := range s.periods {
		elapsed.Add(t)
		if w := PositiveSub(t, c); w > 0 {
			e.Add(w * l.P(elapsed.Value()))
		}
	}
	return e.Value()
}

// RealizedWork returns the work actually committed when the owner
// reclaims the workstation at time r: the sum of t_i ⊖ c over every
// period that completes strictly before the reclamation ("if B is
// reclaimed by time T_k, the episode ends" — a period ending exactly at
// the reclaim instant is lost). The discrete-event simulator and the
// analytic E(S; p) meet through this function: E[RealizedWork(s, c, R)]
// with P(R > t) = p(t) equals ExpectedWork(s, l, c).
//
//cs:unit c=time r=time return=work
func RealizedWork(s Schedule, c, r float64) float64 {
	var w numeric.KahanSum
	var elapsed numeric.KahanSum
	for _, t := range s.periods {
		elapsed.Add(t)
		if !(elapsed.Value() < r) {
			break
		}
		w.Add(PositiveSub(t, c))
	}
	return w.Value()
}

// Gradient returns ∂E/∂t_k for every period of the schedule:
//
//	∂E/∂t_k = p(T_k) + Σ_{j >= k} (t_j - c)·p'(T_j),
//
// since stretching period k delays every later boundary too. Setting
// these partials to zero is exactly the paper's system (3.1) — so a
// near-zero gradient is an independent, coordinate-wise certificate
// that a schedule is stationary, complementing core.Residual36 (which
// checks the consecutive-difference form (3.6)). Periods at or below c
// contribute their boundary-shift terms but no direct work term,
// matching the one-sided derivative of the ⊖ operator from above.
//
//cs:unit c=time
func Gradient(s Schedule, l lifefn.Life, c float64) []float64 {
	return GradientInto(nil, s, l, c)
}

// GradientInto is Gradient writing into grad, which is grown only when
// its capacity is short: an optimizer iterating on a fixed-length
// schedule reuses one buffer across all its gradient evaluations. The
// buffer doubles as boundary storage — the forward pass leaves T_k in
// grad[k], and the backward pass reads each boundary just before
// overwriting it — so the steady state allocates nothing at all.
//
//cs:hotpath gradient
//cs:unit c=time
func GradientInto(grad []float64, s Schedule, l lifefn.Life, c float64) []float64 {
	m := s.Len()
	if cap(grad) < m {
		grad = make([]float64, m) //lint:allow hotalloc grows only when the caller's buffer is short
	}
	grad = grad[:m]
	var sum numeric.KahanSum
	for k, t := range s.periods {
		sum.Add(t)
		grad[k] = sum.Value()
	}
	// Suffix sums of (t_j - c)·p'(T_j), built back to front.
	suffix := 0.0
	for k := m - 1; k >= 0; k-- {
		bound := grad[k]
		direct := 0.0
		if w := PositiveSub(s.periods[k], c); w > 0 {
			suffix += w * l.Deriv(bound)
			direct = l.P(bound)
		}
		grad[k] = direct + suffix
	}
	return grad
}

// ProfileStep is one step of a schedule's realized-work profile: for
// reclaim times r with From < r <= Until, exactly Work units commit.
type ProfileStep struct {
	From, Until float64 //cs:unit time
	Work        float64 //cs:unit work
}

// WorkProfile returns the schedule's realized work as a step function
// of the reclaim time: RealizedWork(s, c, r) == step.Work for the step
// containing r. The last step has Until = +Inf (the owner never
// returned). The profile is what worst-case and competitive analyses
// consume wholesale.
//
//cs:unit c=time
func WorkProfile(s Schedule, c float64) []ProfileStep {
	steps := make([]ProfileStep, 0, s.Len()+1)
	var elapsed numeric.KahanSum
	prevTime := 0.0
	acc := 0.0
	for _, t := range s.periods {
		elapsed.Add(t)
		steps = append(steps, ProfileStep{From: prevTime, Until: elapsed.Value(), Work: acc})
		acc += PositiveSub(t, c)
		prevTime = elapsed.Value()
	}
	steps = append(steps, ProfileStep{From: prevTime, Until: math.Inf(1), Work: acc})
	return steps
}

// CommitProbabilities returns the exact distribution of the number of
// committed periods under life function l: element k is the probability
// that exactly k periods complete before the owner returns,
//
//	P(k) = p(T_{k-1}) - p(T_k)  for k < m (with T_{-1} = 0),
//	P(m) = p(T_{m-1}),
//
// where m = s.Len(). The returned slice has m+1 elements summing to 1.
// It powers the distribution-level (chi-square) validation of the
// discrete-event simulator, beyond the mean identity E(S;p).
//
//cs:unit return=probability
func CommitProbabilities(s Schedule, l lifefn.Life) []float64 {
	m := s.Len()
	probs := make([]float64, m+1) //cs:unit probability
	prev := 1.0
	var elapsed numeric.KahanSum
	for k := 0; k < m; k++ {
		elapsed.Add(s.periods[k])
		cur := l.P(elapsed.Value())
		// Clamp before storing: a non-monotone (numerically noisy) life
		// function may give p(T_k) > p(T_{k-1}), and the stored mass
		// must already be a probability.
		d := prev - cur
		if d < 0 {
			d = 0
		}
		probs[k] = d
		prev = cur
	}
	probs[m] = prev
	return probs
}

// Normalize returns the productive normal form of Proposition 2.1: a
// schedule that accomplishes at least as much expected work and whose
// periods all have length > c. Each unproductive period (length <= c) is
// merged into its successor — the merged period ends at the same instant
// with a longer productive part, so no term of (2.1) decreases — and an
// unproductive final period, which contributes nothing, is dropped.
//
//cs:unit c=time
func Normalize(s Schedule, c float64) Schedule {
	if c < 0 {
		panic(fmt.Sprintf("sched: negative overhead c=%g", c))
	}
	out := make([]float64, 0, len(s.periods))
	carry := 0.0
	for _, t := range s.periods {
		t += carry
		carry = 0
		if t <= c {
			carry = t
			continue
		}
		out = append(out, t)
	}
	// A trailing carry is an unproductive final period: drop it.
	return Schedule{periods: out}
}

// Shift returns S^{⟨k,δ⟩}: the schedule with t_k replaced by t_k + delta
// (negative delta shrinks the period). It fails if the adjusted period
// would not be positive.
//
//cs:unit delta=time
func (s Schedule) Shift(k int, delta float64) (Schedule, error) {
	if k < 0 || k >= len(s.periods) {
		return Schedule{}, fmt.Errorf("%w: shift index %d of %d", ErrInvalidSchedule, k, len(s.periods))
	}
	t := s.periods[k] + delta
	if !(t > 0) {
		return Schedule{}, fmt.Errorf("%w: shift makes period %d nonpositive (%g)", ErrInvalidSchedule, k, t)
	}
	p := s.Periods()
	p[k] = t
	return Schedule{periods: p}, nil
}

// Perturb returns S^{[k,δ]}: t_k grows by delta while t_{k+1} shrinks by
// delta (Section 5.1), preserving every boundary except T_k. It fails if
// either adjusted period would not be positive.
//
//cs:unit delta=time
func (s Schedule) Perturb(k int, delta float64) (Schedule, error) {
	if k < 0 || k+1 >= len(s.periods) {
		return Schedule{}, fmt.Errorf("%w: perturb index %d of %d", ErrInvalidSchedule, k, len(s.periods))
	}
	a := s.periods[k] + delta
	b := s.periods[k+1] - delta
	if !(a > 0) || !(b > 0) {
		return Schedule{}, fmt.Errorf("%w: perturbation δ=%g empties period %d or %d", ErrInvalidSchedule, delta, k, k+1)
	}
	p := s.Periods()
	p[k], p[k+1] = a, b
	return Schedule{periods: p}, nil
}

// MergeFirst returns the schedule t_0+t_1, t_2, ... used in the proof of
// Theorem 3.2. It fails on schedules with fewer than two periods.
func (s Schedule) MergeFirst() (Schedule, error) {
	if len(s.periods) < 2 {
		return Schedule{}, fmt.Errorf("%w: cannot merge first periods of %d-period schedule", ErrInvalidSchedule, len(s.periods))
	}
	p := make([]float64, len(s.periods)-1)
	p[0] = s.periods[0] + s.periods[1]
	copy(p[1:], s.periods[2:])
	return Schedule{periods: p}, nil
}

// SplitFirst returns the schedule tHat, t_0-tHat, t_1, ... used in the
// proof of Lemma 3.1. tHat must lie strictly inside (0, t_0).
//
//cs:unit tHat=time
func (s Schedule) SplitFirst(tHat float64) (Schedule, error) {
	if len(s.periods) == 0 {
		return Schedule{}, fmt.Errorf("%w: cannot split empty schedule", ErrInvalidSchedule)
	}
	if !(tHat > 0) || !(tHat < s.periods[0]) {
		return Schedule{}, fmt.Errorf("%w: split point %g outside (0, %g)", ErrInvalidSchedule, tHat, s.periods[0])
	}
	p := make([]float64, 0, len(s.periods)+1)
	p = append(p, tHat, s.periods[0]-tHat)
	p = append(p, s.periods[1:]...)
	return Schedule{periods: p}, nil
}

// Prefix returns the schedule consisting of the first n periods.
func (s Schedule) Prefix(n int) Schedule {
	if n > len(s.periods) {
		n = len(s.periods)
	}
	if n < 0 {
		n = 0
	}
	return Schedule{periods: append([]float64(nil), s.periods[:n]...)}
}

// Append returns the schedule with extra periods appended.
//
//cs:unit periods=time
func (s Schedule) Append(periods ...float64) (Schedule, error) {
	p := append(s.Periods(), periods...)
	return New(p...)
}

// Equal reports whether two schedules have the same periods within tol.
func (s Schedule) Equal(o Schedule, tol float64) bool {
	if len(s.periods) != len(o.periods) {
		return false
	}
	for i := range s.periods {
		if math.Abs(s.periods[i]-o.periods[i]) > tol {
			return false
		}
	}
	return true
}
