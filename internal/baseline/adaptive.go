package baseline

import (
	"fmt"
	"math"
)

// Adaptive is an online, model-free chunking policy in the spirit of
// congestion control: it carries a chunk-size estimate across episodes,
// growing it multiplicatively after a fully successful episode (no work
// lost — chunks were probably too timid) and shrinking it after an
// episode that lost its first period (too bold). Within an episode it
// dispatches the current estimate repeatedly.
//
// It exists as the "no knowledge, no fitting" baseline between the
// risk-oblivious Doubling ramp and the trace-fitted guideline plans:
// experiment E21 measures how quickly it closes the gap to the oracle
// and where it plateaus. It implements nowsim.Policy structurally
// (NextPeriod/Reset/String) without importing that package.
type Adaptive struct {
	// Chunk is the current chunk-size estimate.
	chunk float64
	// Grow and Shrink are the multiplicative factors (defaults 1.25
	// and 0.5).
	grow, shrink float64
	// min and max clamp the estimate.
	min, max float64
	// Episode bookkeeping.
	dispatched int
	committed  int
}

// AdaptiveOptions configures NewAdaptive.
type AdaptiveOptions struct {
	// Initial chunk estimate; must exceed the overhead the caller will
	// simulate with.
	Initial float64
	// Grow > 1 is the success multiplier (default 1.25).
	Grow float64
	// Shrink in (0, 1) is the failure multiplier (default 0.5).
	Shrink float64
	// Min and Max clamp the estimate (defaults: Initial/16 and
	// Initial·256).
	Min, Max float64
}

// NewAdaptive returns an adaptive policy starting from opt.Initial.
func NewAdaptive(opt AdaptiveOptions) (*Adaptive, error) {
	if !(opt.Initial > 0) {
		return nil, fmt.Errorf("baseline: adaptive initial chunk must be positive, got %g", opt.Initial)
	}
	a := &Adaptive{
		chunk:  opt.Initial,
		grow:   opt.Grow,
		shrink: opt.Shrink,
		min:    opt.Min,
		max:    opt.Max,
	}
	if a.grow <= 1 {
		a.grow = 1.25
	}
	if !(a.shrink > 0) || a.shrink >= 1 {
		a.shrink = 0.5
	}
	if a.min <= 0 {
		a.min = opt.Initial / 16
	}
	if a.max <= a.min {
		a.max = opt.Initial * 256
	}
	return a, nil
}

// Chunk returns the current estimate (exported for learning-curve
// inspection).
func (a *Adaptive) Chunk() float64 { return a.chunk }

// NextPeriod implements the policy interface: dispatch the current
// estimate.
func (a *Adaptive) NextPeriod(elapsed float64) (float64, bool) {
	a.dispatched++
	return a.chunk, true
}

// RecordCommit informs the policy that its latest period completed.
// The episode driver in nowsim does not call this (policies are
// observation-free there); Reset infers outcomes instead, so Adaptive
// works unmodified under nowsim while callers driving it manually can
// feed explicit outcomes.
func (a *Adaptive) RecordCommit() { a.committed++ }

// Reset ends an episode and updates the estimate from what the episode
// revealed: the driver dispatches one more period than commits whenever
// the owner returned mid-period, so dispatched == committed means a
// fully voluntary episode (never happens with an infinite-chunk budget)
// and dispatched > committed means the last period died.
//
// Heuristic: if at least one period committed before the loss, the
// estimate was survivable — grow gently; if the very first period died,
// shrink hard.
func (a *Adaptive) Reset() {
	if a.dispatched > 0 {
		if a.committed == 0 {
			a.chunk *= a.shrink
		} else if a.committed >= a.dispatched {
			// Fully clean episode.
			a.chunk *= a.grow
		} else if a.committed >= 2 {
			a.chunk *= math.Sqrt(a.grow)
		}
		a.chunk = math.Min(math.Max(a.chunk, a.min), a.max)
	}
	a.dispatched, a.committed = 0, 0
}

// ObserveCommitted lets an episode driver report how many of the
// dispatched periods committed, for drivers that know (nowsim results
// carry the count); call immediately before Reset.
func (a *Adaptive) ObserveCommitted(committed int) { a.committed = committed }

// String names the policy.
func (a *Adaptive) String() string { return fmt.Sprintf("adaptive(chunk=%.3g)", a.chunk) }
