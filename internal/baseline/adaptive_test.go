package baseline

import (
	"math"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/rng"
)

// Adaptive must satisfy the simulator's policy interface.
var _ nowsim.Policy = (*Adaptive)(nil)

func TestAdaptiveDefaultsAndValidation(t *testing.T) {
	if _, err := NewAdaptive(AdaptiveOptions{}); err == nil {
		t.Error("zero initial accepted")
	}
	a, err := NewAdaptive(AdaptiveOptions{Initial: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Chunk() != 8 {
		t.Errorf("chunk = %g", a.Chunk())
	}
	if got, ok := a.NextPeriod(0); !ok || got != 8 {
		t.Errorf("NextPeriod = %g, %v", got, ok)
	}
}

func TestAdaptiveShrinksOnFirstPeriodLoss(t *testing.T) {
	a, _ := NewAdaptive(AdaptiveOptions{Initial: 16})
	a.NextPeriod(0)
	a.ObserveCommitted(0)
	a.Reset()
	if a.Chunk() >= 16 {
		t.Errorf("chunk %g did not shrink after total loss", a.Chunk())
	}
}

func TestAdaptiveGrowsOnCleanEpisode(t *testing.T) {
	a, _ := NewAdaptive(AdaptiveOptions{Initial: 16})
	a.NextPeriod(0)
	a.NextPeriod(16)
	a.ObserveCommitted(2)
	a.Reset()
	if a.Chunk() <= 16 {
		t.Errorf("chunk %g did not grow after clean episode", a.Chunk())
	}
}

func TestAdaptiveClamps(t *testing.T) {
	a, _ := NewAdaptive(AdaptiveOptions{Initial: 8, Min: 4, Max: 12})
	for i := 0; i < 50; i++ {
		a.NextPeriod(0)
		a.ObserveCommitted(0)
		a.Reset()
	}
	if a.Chunk() < 4 {
		t.Errorf("chunk %g below min", a.Chunk())
	}
	for i := 0; i < 50; i++ {
		a.NextPeriod(0)
		a.NextPeriod(0)
		a.ObserveCommitted(2)
		a.Reset()
	}
	if a.Chunk() > 12 {
		t.Errorf("chunk %g above max", a.Chunk())
	}
}

func TestAdaptiveLearnsAcrossEpisodes(t *testing.T) {
	// Against a memoryless owner (optimal chunk ≈ c + 1/ln a ≈ 24.1 for
	// half-life 16, c=1), an adaptive policy started far too large must
	// come down into a sane band and outperform its own starting point.
	l, err := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/16))
	if err != nil {
		t.Fatal(err)
	}
	const c = 1.0
	a, _ := NewAdaptive(AdaptiveOptions{Initial: 200})
	owner := nowsim.LifeOwner{Life: l}
	// Pre-draw the reclaim sequence so adaptive and the non-learning
	// control face identical owners.
	src := rng.New(99)
	const episodes = 400
	reclaims := make([]float64, episodes)
	for i := range reclaims {
		reclaims[i] = owner.ReclaimAfter(src)
	}
	var adaptiveWork float64
	for i, r := range reclaims {
		res := nowsim.RunEpisode(a, c, r)
		a.ObserveCommitted(res.PeriodsCommitted)
		// Note: RunEpisode calls Reset at the START of an episode, so
		// the update uses the previous episode's counters — exactly the
		// cross-episode learning loop we want.
		if i >= episodes/2 {
			adaptiveWork += res.Work
		}
	}
	var fixedWork float64
	fixed := &nowsim.FixedChunkPolicy{Chunk: 200}
	for i, r := range reclaims {
		res := nowsim.RunEpisode(fixed, c, r)
		if i >= episodes/2 {
			fixedWork += res.Work
		}
	}
	if adaptiveWork <= fixedWork {
		t.Errorf("adaptive (%g) did not beat its non-learning start (%g)", adaptiveWork, fixedWork)
	}
	// The estimate must have descended from 200 toward the optimal
	// ≈ c + 1/ln a ≈ 24.1.
	if a.Chunk() > 100 || a.Chunk() < 2 {
		t.Errorf("chunk settled at %g, want a sane band around ~24", a.Chunk())
	}
}
