package baseline

import (
	"math"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/sched"
)

func uniform(t *testing.T, l float64) lifefn.Life {
	t.Helper()
	u, err := lifefn.NewUniform(l)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestAllAtOnce(t *testing.T) {
	l := uniform(t, 100)
	s, err := AllAtOnce(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || math.Abs(s.Period(0)-100) > 1e-9 {
		t.Errorf("schedule = %v", s)
	}
	// Under uniform risk, all-at-once commits nothing in expectation.
	if e := sched.ExpectedWork(s, l, 1); e != 0 {
		t.Errorf("E = %g, want 0 (p(L) = 0)", e)
	}
}

func TestAllAtOnceFailsOnShortSpan(t *testing.T) {
	if _, err := AllAtOnce(uniform(t, 0.5), 1); err == nil {
		t.Error("span < c accepted")
	}
}

func TestEqualChunks(t *testing.T) {
	l := uniform(t, 100)
	s, err := EqualChunks(l, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if math.Abs(s.Period(i)-10) > 1e-9 {
			t.Fatalf("period %d = %g", i, s.Period(i))
		}
	}
	if _, err := EqualChunks(l, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestEqualChunksNormalizesUnproductive(t *testing.T) {
	// 200 chunks of length 0.5 <= c merge pairwise and beyond.
	l := uniform(t, 100)
	s, err := EqualChunks(l, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if s.Period(i) <= 1 {
			t.Fatalf("unproductive chunk survived normalization: %g", s.Period(i))
		}
	}
}

func TestFixedChunk(t *testing.T) {
	l := uniform(t, 100)
	s, err := FixedChunk(l, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 14 chunks of 7 = 98, remainder 2 > c kept.
	if s.Len() != 15 {
		t.Fatalf("len = %d", s.Len())
	}
	if math.Abs(s.Total()-100) > 1e-9 {
		t.Errorf("total = %g", s.Total())
	}
	if _, err := FixedChunk(l, 1, 0); err == nil {
		t.Error("t=0 accepted")
	}
}

func TestBestFixedChunkBeatsArbitraryChunks(t *testing.T) {
	l := uniform(t, 1000)
	c := 1.0
	best, err := BestFixedChunk(l, c)
	if err != nil {
		t.Fatal(err)
	}
	eBest := sched.ExpectedWork(best, l, c)
	for _, chunk := range []float64{2, 5, 10, 50, 200, 999} {
		s, err := FixedChunk(l, c, chunk)
		if err != nil {
			continue
		}
		if e := sched.ExpectedWork(s, l, c); e > eBest+1e-6 {
			t.Errorf("chunk %g beats BestFixedChunk: %g > %g", chunk, e, eBest)
		}
	}
}

func TestGreedyUniform(t *testing.T) {
	// Greedy first period for p_{1,L} maximizes (t-c)(1-t/L): t = (L+c)/2.
	l := uniform(t, 100)
	s, err := Greedy(l, 1, GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Period(0)-50.5) > 1e-3 {
		t.Errorf("greedy t0 = %g, want 50.5", s.Period(0))
	}
	// Greedy is suboptimal for uniform risk (Section 6): its E must be
	// below the optimal ~E of the arithmetic schedule.
	e := sched.ExpectedWork(s, l, 1)
	if !(e > 0) {
		t.Fatal("greedy accomplished nothing")
	}
}

func TestGreedyGeomDecreasingMatchesOptimal(t *testing.T) {
	// Section 6: greedy IS optimal for the geometrically decreasing
	// lifespan scenario. Its first period must maximize (t-c)a^{-t},
	// i.e. t = c + 1/ln a, and all periods must be equal.
	a := math.Pow(2, 1.0/16)
	g, err := lifefn.NewGeomDecreasing(a)
	if err != nil {
		t.Fatal(err)
	}
	c := 1.0
	s, err := Greedy(g, c, GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := c + 1/math.Log(a)
	if math.Abs(s.Period(0)-want) > 1e-3 {
		t.Errorf("greedy t0 = %g, want %g", s.Period(0), want)
	}
	for k := 1; k < s.Len()-1; k++ {
		if math.Abs(s.Period(k)-s.Period(0)) > 1e-3 {
			t.Fatalf("greedy periods not equal at %d: %g vs %g", k, s.Period(k), s.Period(0))
		}
	}
}

func TestGreedyFailsWhenNothingProductive(t *testing.T) {
	if _, err := Greedy(uniform(t, 0.5), 1, GreedyOptions{}); err == nil {
		t.Error("greedy succeeded with L < c")
	}
}

func TestDoubling(t *testing.T) {
	l := uniform(t, 1000)
	s, err := Doubling(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Geometric ramp 2, 4, 8, ... plus a remainder.
	for k := 1; k < s.Len()-1; k++ {
		if math.Abs(s.Period(k)-2*s.Period(k-1)) > 1e-9 {
			t.Fatalf("period %d = %g, want double of %g", k, s.Period(k), s.Period(k-1))
		}
	}
	if s.Total() > 1000+1e-9 {
		t.Errorf("total = %g overruns span", s.Total())
	}
	if _, err := Doubling(uniform(t, 1.5), 1); err == nil {
		t.Error("doubling on tiny span accepted")
	}
}

func TestBaselinesAreNormalized(t *testing.T) {
	l := uniform(t, 500)
	c := 3.0
	build := []func() (sched.Schedule, error){
		func() (sched.Schedule, error) { return AllAtOnce(l, c) },
		func() (sched.Schedule, error) { return EqualChunks(l, c, 7) },
		func() (sched.Schedule, error) { return FixedChunk(l, c, 11) },
		func() (sched.Schedule, error) { return BestFixedChunk(l, c) },
		func() (sched.Schedule, error) { return Greedy(l, c, GreedyOptions{}) },
		func() (sched.Schedule, error) { return Doubling(l, c) },
	}
	for i, b := range build {
		s, err := b()
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		for k := 0; k < s.Len(); k++ {
			if s.Period(k) <= c {
				t.Errorf("builder %d: period %d = %g <= c", i, k, s.Period(k))
			}
		}
	}
}
