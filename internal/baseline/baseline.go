// Package baseline provides the reference scheduling policies the
// guideline schedules are compared against in the experiments:
//
//   - AllAtOnce: one period spanning the whole opportunity — what a
//     cycle-stealer with no risk model and full trust would do;
//   - EqualChunks / FixedChunk: the natural "pick a chunk size" policies
//     practitioners use;
//   - Greedy: the myopic recipe discussed in Section 6 of the paper,
//     which maximizes each period's own expected yield in isolation;
//   - Doubling: a risk-oblivious geometric ramp in the spirit of the
//     randomized commitment strategies of Awerbuch, Azar, Fiat and
//     Leighton (STOC 1996), reference [2].
//
// All constructors return schedules in the productive normal form of
// Proposition 2.1.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/lifefn"
	"repro/internal/numeric"
	"repro/internal/sched"
)

// span returns the scheduling horizon: the life function's horizon when
// finite, otherwise the point where survival decays below 1e-12.
func span(l lifefn.Life) float64 {
	if h := l.Horizon(); !math.IsInf(h, 1) {
		return h
	}
	s := 1.0
	for l.P(s) > 1e-12 && s < 1e12 {
		s *= 2
	}
	return s
}

// AllAtOnce returns the single-period schedule covering the entire
// opportunity. Under any life function that actually decays it commits
// work only with probability p(span), making it the canonical loser the
// paper's Section 1 tension argument starts from.
func AllAtOnce(l lifefn.Life, c float64) (sched.Schedule, error) {
	sp := span(l)
	if sp <= c {
		return sched.Schedule{}, fmt.Errorf("baseline: span %g does not exceed overhead %g", sp, c)
	}
	s, err := sched.New(sp)
	if err != nil {
		return sched.Schedule{}, err
	}
	return sched.Normalize(s, c), nil
}

// EqualChunks splits the opportunity into n equal periods.
func EqualChunks(l lifefn.Life, c float64, n int) (sched.Schedule, error) {
	if n < 1 {
		return sched.Schedule{}, fmt.Errorf("baseline: need at least 1 chunk, got %d", n)
	}
	sp := span(l)
	t := sp / float64(n)
	if t <= 0 {
		return sched.Schedule{}, fmt.Errorf("baseline: empty chunks for span %g", sp)
	}
	periods := make([]float64, n)
	for i := range periods {
		periods[i] = t
	}
	s, err := sched.New(periods...)
	if err != nil {
		return sched.Schedule{}, err
	}
	return sched.Normalize(s, c), nil
}

// FixedChunk tiles the opportunity with periods of length t (the final
// fragment is kept only if productive).
func FixedChunk(l lifefn.Life, c, t float64) (sched.Schedule, error) {
	if !(t > 0) {
		return sched.Schedule{}, fmt.Errorf("baseline: chunk length must be positive, got %g", t)
	}
	sp := span(l)
	n := int(sp / t)
	if n > 1_000_000 {
		n = 1_000_000
	}
	periods := make([]float64, 0, n+1)
	total := 0.0
	for i := 0; i < n; i++ {
		periods = append(periods, t)
		total += t
	}
	if rem := sp - total; rem > c {
		periods = append(periods, rem)
	}
	if len(periods) == 0 {
		return sched.Schedule{}, fmt.Errorf("baseline: no chunks fit span %g", sp)
	}
	s, err := sched.New(periods...)
	if err != nil {
		return sched.Schedule{}, err
	}
	return sched.Normalize(s, c), nil
}

// BestFixedChunk searches chunk lengths in (c, span] for the fixed-chunk
// schedule with the highest expected work — the strongest "one number to
// tune" baseline.
func BestFixedChunk(l lifefn.Life, c float64) (sched.Schedule, error) {
	sp := span(l)
	if sp <= c {
		return sched.Schedule{}, fmt.Errorf("baseline: span %g does not exceed overhead %g", sp, c)
	}
	objective := func(t float64) float64 {
		s, err := FixedChunk(l, c, t)
		if err != nil {
			return math.Inf(-1)
		}
		return sched.ExpectedWork(s, l, c)
	}
	t, _, err := numeric.MaximizeScan(objective, c*(1+1e-9), sp, 128, numeric.MaxOptions{Tol: 1e-9})
	if err != nil {
		return sched.Schedule{}, fmt.Errorf("baseline: fixed-chunk search: %w", err)
	}
	return FixedChunk(l, c, t)
}

// GreedyOptions tunes the greedy scheduler.
type GreedyOptions struct {
	// MaxPeriods caps the schedule length; 10_000 if zero.
	MaxPeriods int
	// MinGain stops the greedy loop once a period's expected yield
	// drops below it; 1e-12 if zero.
	MinGain float64
}

// Greedy builds a schedule by the myopic recipe of Section 6: with the
// episode having reached time τ, the next period length maximizes the
// period's own expected committed work (t - c)·p(τ + t). The paper
// observes this recipe is optimal for the geometrically decreasing
// lifespan scenario and suboptimal for the uniform-risk one; the E7
// experiment quantifies both.
func Greedy(l lifefn.Life, c float64, opt GreedyOptions) (sched.Schedule, error) {
	if opt.MaxPeriods <= 0 {
		opt.MaxPeriods = 10_000
	}
	if opt.MinGain <= 0 {
		opt.MinGain = 1e-12
	}
	sp := span(l)
	var periods []float64
	tau := 0.0
	for len(periods) < opt.MaxPeriods && tau < sp {
		hi := sp - tau
		if hi <= c {
			break
		}
		yield := func(t float64) float64 { return (t - c) * l.P(tau+t) }
		t, gain, err := numeric.MaximizeScan(yield, c*(1+1e-12), hi, 64, numeric.MaxOptions{Tol: 1e-11})
		if err != nil {
			return sched.Schedule{}, fmt.Errorf("baseline: greedy step at τ=%g: %w", tau, err)
		}
		if gain < opt.MinGain || t <= c {
			break
		}
		periods = append(periods, t)
		tau += t
	}
	if len(periods) == 0 {
		return sched.Schedule{}, fmt.Errorf("baseline: greedy found no productive period")
	}
	s, err := sched.New(periods...)
	if err != nil {
		return sched.Schedule{}, err
	}
	return sched.Normalize(s, c), nil
}

// Doubling returns the risk-oblivious geometric ramp: periods
// 2c, 4c, 8c, ... until the opportunity is covered. Doubling commits
// at least a constant fraction of any prefix it survives while paying
// only logarithmically many overheads — the shape of the [2]-style
// strategies for stealing cycles with no risk knowledge.
func Doubling(l lifefn.Life, c float64) (sched.Schedule, error) {
	sp := span(l)
	if sp <= 2*c {
		return sched.Schedule{}, fmt.Errorf("baseline: span %g too short for doubling with c=%g", sp, c)
	}
	var periods []float64
	t, total := 2*c, 0.0
	for total+t <= sp && len(periods) < 200 {
		periods = append(periods, t)
		total += t
		t *= 2
	}
	if rem := sp - total; rem > c {
		periods = append(periods, rem)
	}
	s, err := sched.New(periods...)
	if err != nil {
		return sched.Schedule{}, err
	}
	return sched.Normalize(s, c), nil
}
