// Package faultsim adapts the cycle-stealing guidelines to the problem
// the paper's Section 1 Remark points at: scheduling saves in a
// fault-prone computing system (Coffman, Flatto, Krenin, Acta
// Informatica 30, 1993). The formal correspondence: an inter-failure
// interval plays the role of a cycle-stealing episode, a save's cost
// plays the communication overhead c, and work since the last save is
// destroyed by a failure exactly as an interrupted period is destroyed
// by a returning owner. The expected work committed per interval is
// therefore E(S; p) with p the inter-failure survival function, and the
// guideline schedules of internal/core apply verbatim to choosing save
// points.
//
// Unlike a cycle-stealing episode, the computation does not end at a
// failure: the machine reboots and a fresh interval begins, so a job of
// fixed total work is a renewal process whose expected makespan the
// simulator measures.
package faultsim

import (
	"errors"
	"fmt"

	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Config describes a fault-prone run.
type Config struct {
	// TotalWork is the job size in work units.
	TotalWork float64 //cs:unit work
	// SaveCost is the checkpoint cost c, paid at the end of every
	// committed chunk.
	SaveCost float64 //cs:unit time
	// Failure is the survival function of each inter-failure interval
	// (renewed after every failure).
	Failure lifefn.Life
	// RebootCost is wall time lost to each failure before work resumes.
	RebootCost float64 //cs:unit time
	// PolicyFactory builds the save-interval policy for each
	// inter-failure interval; chunk lengths include the save cost,
	// mirroring period semantics.
	PolicyFactory func() nowsim.Policy
	// MaxIntervals aborts runaway simulations. Zero means 10_000_000.
	MaxIntervals int
}

// Result is the outcome of one fault-prone run.
type Result struct {
	// Makespan is the wall time to commit TotalWork.
	Makespan float64 //cs:unit time
	// Failures is the number of failures survived.
	Failures int
	// LostWork is the total work destroyed by failures.
	LostWork float64 //cs:unit work
	// SaveTime is the total time spent writing checkpoints.
	SaveTime float64 //cs:unit time
	// Completed reports whether the job finished within MaxIntervals.
	Completed bool
}

// Run executes one fault-prone computation with failures sampled from
// src.
func Run(cfg Config, src *rng.Source) (Result, error) {
	if cfg.TotalWork <= 0 {
		return Result{}, fmt.Errorf("faultsim: total work must be positive, got %g", cfg.TotalWork)
	}
	if cfg.SaveCost < 0 || cfg.RebootCost < 0 {
		return Result{}, fmt.Errorf("faultsim: negative costs (save %g, reboot %g)", cfg.SaveCost, cfg.RebootCost)
	}
	if cfg.Failure == nil || cfg.PolicyFactory == nil {
		return Result{}, errors.New("faultsim: failure model and policy factory are required")
	}
	maxIntervals := cfg.MaxIntervals
	if maxIntervals <= 0 {
		maxIntervals = 10_000_000
	}

	var res Result
	committed := 0.0
	clock := 0.0
	horizon := cfg.Failure.Horizon()
	bound := 0.0
	if horizon > 0 && horizon < 1e300 {
		bound = horizon
	}
	for interval := 0; interval < maxIntervals; interval++ {
		failAt := src.FromSurvival(cfg.Failure.P, bound) // relative to interval start
		policy := cfg.PolicyFactory()
		policy.Reset()
		elapsed := 0.0 // within this interval
		failed := false
		for {
			remaining := cfg.TotalWork - committed
			if remaining <= 0 {
				res.Makespan = clock + elapsed
				res.Completed = true
				return res, nil
			}
			t, ok := policy.NextPeriod(elapsed)
			if !ok || t <= cfg.SaveCost {
				// Policy exhausted mid-job: idle until the failure
				// resets the machine (a deliberately pessimal policy
				// corner; good policies never hit it).
				break
			}
			// Do not overshoot the job: the final chunk shrinks to the
			// remaining work plus its save.
			if sched.PositiveSub(t, cfg.SaveCost) > remaining {
				t = sched.TimeFor(remaining, cfg.SaveCost)
			}
			if elapsed+t < failAt {
				elapsed += t
				committed += sched.PositiveSub(t, cfg.SaveCost)
				res.SaveTime += cfg.SaveCost
				continue
			}
			// Failure strikes during the chunk: its work is lost.
			res.LostWork += sched.PositiveSub(t, cfg.SaveCost)
			failed = true
			break
		}
		if !failed {
			// Idled out: wait for the failure to reset the interval.
		}
		res.Failures++
		clock += failAt + cfg.RebootCost
	}
	res.Makespan = clock
	return res, fmt.Errorf("faultsim: job unfinished after %d intervals (%.3g of %.3g committed)", maxIntervals, committed, cfg.TotalWork)
}

// MonteCarloResult aggregates repeated fault-prone runs.
type MonteCarloResult struct {
	Makespan stats.Summary
	Failures stats.Summary
	LostWork stats.Summary
	SaveTime stats.Summary
	Runs     int
}

// MonteCarlo repeats Run n times with independent failure streams and
// aggregates the outcomes.
func MonteCarlo(cfg Config, n int, seed uint64) (MonteCarloResult, error) {
	root := rng.New(seed)
	var makespan, failures, lost, save stats.Running
	for i := 0; i < n; i++ {
		r, err := Run(cfg, root.Split())
		if err != nil {
			return MonteCarloResult{}, fmt.Errorf("faultsim: run %d: %w", i, err)
		}
		makespan.Add(r.Makespan)
		failures.Add(float64(r.Failures))
		lost.Add(r.LostWork)
		save.Add(r.SaveTime)
	}
	return MonteCarloResult{
		Makespan: stats.Summarize(&makespan),
		Failures: stats.Summarize(&failures),
		LostWork: stats.Summarize(&lost),
		SaveTime: stats.Summarize(&save),
		Runs:     n,
	}, nil
}
