package faultsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/rng"
	"repro/internal/sched"
)

func geomFailure(t *testing.T, halfLife float64) lifefn.Life {
	t.Helper()
	g, err := lifefn.NewGeomDecreasing(math.Pow(2, 1/halfLife))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fixedPolicy(chunk float64) func() nowsim.Policy {
	return func() nowsim.Policy { return &nowsim.FixedChunkPolicy{Chunk: chunk} }
}

func TestRunCompletesWithoutFailures(t *testing.T) {
	// Failure horizon far beyond the job: one interval, no failures.
	long, _ := lifefn.NewUniform(1e9)
	cfg := Config{
		TotalWork:     100,
		SaveCost:      1,
		Failure:       long,
		PolicyFactory: fixedPolicy(11), // 10 work + 1 save per chunk
	}
	res, err := Run(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	// 10 chunks of 11 = 110 wall time.
	if math.Abs(res.Makespan-110) > 1e-9 {
		t.Errorf("makespan = %g, want 110", res.Makespan)
	}
	if res.Failures != 0 || res.LostWork != 0 {
		t.Errorf("failures=%d lost=%g", res.Failures, res.LostWork)
	}
	if math.Abs(res.SaveTime-10) > 1e-9 {
		t.Errorf("save time = %g, want 10", res.SaveTime)
	}
}

func TestRunFinalChunkShrinks(t *testing.T) {
	long, _ := lifefn.NewUniform(1e9)
	cfg := Config{
		TotalWork:     15,
		SaveCost:      1,
		Failure:       long,
		PolicyFactory: fixedPolicy(11),
	}
	res, err := Run(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Chunk 1: 10 work, 11 wall. Chunk 2 shrinks to 5 work + save = 6.
	if math.Abs(res.Makespan-17) > 1e-9 {
		t.Errorf("makespan = %g, want 17", res.Makespan)
	}
}

func TestRunSurvivesFailures(t *testing.T) {
	cfg := Config{
		TotalWork:     200,
		SaveCost:      1,
		Failure:       geomFailure(t, 40),
		RebootCost:    2,
		PolicyFactory: fixedPolicy(9),
	}
	res, err := Run(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if res.Failures == 0 {
		t.Error("expected at least one failure with a 40-unit half-life and 200 work")
	}
	// Makespan accounts for work, saves, losses and reboots.
	minimum := 200.0 + res.SaveTime
	if res.Makespan < minimum {
		t.Errorf("makespan %g below work+saves %g", res.Makespan, minimum)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := Config{
		TotalWork:     100,
		SaveCost:      1,
		Failure:       geomFailure(t, 30),
		PolicyFactory: fixedPolicy(8),
	}
	a, err := Run(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow floatcmp same-seed determinism: bit-identical
	if a.Makespan != b.Makespan || a.Failures != b.Failures {
		t.Error("same seed produced different runs")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	long, _ := lifefn.NewUniform(10)
	src := rng.New(1)
	if _, err := Run(Config{TotalWork: 0, Failure: long, PolicyFactory: fixedPolicy(1)}, src); err == nil {
		t.Error("zero work accepted")
	}
	if _, err := Run(Config{TotalWork: 1, SaveCost: -1, Failure: long, PolicyFactory: fixedPolicy(1)}, src); err == nil {
		t.Error("negative save cost accepted")
	}
	if _, err := Run(Config{TotalWork: 1}, src); err == nil {
		t.Error("missing failure model accepted")
	}
}

func TestGuidelineSavesBeatNaiveSaves(t *testing.T) {
	// The headline claim of the Remark: guideline-derived save
	// intervals (from the cycle-stealing planner, with the failure
	// survival as life function) beat badly chosen fixed intervals.
	failure := geomFailure(t, 25)
	c := 1.0
	pl, err := core.NewPlanner(failure, c, core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		TotalWork:  300,
		SaveCost:   c,
		Failure:    failure,
		RebootCost: 1,
	}
	run := func(factory func() nowsim.Policy) float64 {
		cfg := base
		cfg.PolicyFactory = factory
		mc, err := MonteCarlo(cfg, 400, 2024)
		if err != nil {
			t.Fatal(err)
		}
		return mc.Makespan.Mean
	}
	guideline := run(func() nowsim.Policy {
		return nowsim.NewSchedulePolicy(plan.Schedule, "guideline")
	})
	tooBig := run(fixedPolicy(120))        // saves far too rare
	tooSmall := run(fixedPolicy(c + 0.25)) // overhead swamps work
	if guideline >= tooBig {
		t.Errorf("guideline %g not better than rare saves %g", guideline, tooBig)
	}
	if guideline >= tooSmall {
		t.Errorf("guideline %g not better than frantic saves %g", guideline, tooSmall)
	}
}

func TestMonteCarloAggregates(t *testing.T) {
	cfg := Config{
		TotalWork:     50,
		SaveCost:      1,
		Failure:       geomFailure(t, 30),
		PolicyFactory: fixedPolicy(8),
	}
	mc, err := MonteCarlo(cfg, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Runs != 200 || mc.Makespan.N != 200 {
		t.Errorf("runs = %d", mc.Runs)
	}
	if mc.Makespan.Mean < 50 {
		t.Errorf("mean makespan %g below total work", mc.Makespan.Mean)
	}
}

var _ = sched.Schedule{}
