package faultsim_test

import (
	"fmt"
	"log"

	"repro/internal/faultsim"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/rng"
)

// The Remark's application: run a 100-unit job on a machine whose
// failures have a bounded horizon, saving every 9 work units.
func Example() {
	failure, err := lifefn.NewUniform(1e9) // effectively failure-free run
	if err != nil {
		log.Fatal(err)
	}
	res, err := faultsim.Run(faultsim.Config{
		TotalWork: 100,
		SaveCost:  1,
		Failure:   failure,
		PolicyFactory: func() nowsim.Policy {
			return &nowsim.FixedChunkPolicy{Chunk: 10} // 9 work + 1 save
		},
	}, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan=%.0f failures=%d saves=%.0f\n",
		res.Makespan, res.Failures, res.SaveTime)
	// Output: makespan=112 failures=0 saves=12
}
