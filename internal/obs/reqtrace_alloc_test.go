package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// StartPhase must bracket the phase with the exact allocation counters
// and stamp the deltas on the recorded span.
func TestStartPhaseCapturesAllocDeltas(t *testing.T) {
	rt := NewReqTrace("plan")
	end := rt.StartPhase(PhaseCompute)
	sink := make([][]byte, 0, 128)
	for i := 0; i < 128; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	runtime.KeepAlive(sink)
	end()

	rec := rt.Finalize(200)
	if len(rec.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(rec.Phases))
	}
	p := rec.Phases[0]
	if p.AllocObjects < 128 {
		t.Errorf("alloc_objects = %d, want >= 128", p.AllocObjects)
	}
	if p.AllocBytes < 128*4096 {
		t.Errorf("alloc_bytes = %d, want >= %d", p.AllocBytes, 128*4096)
	}
	// Finalize rolls the per-phase deltas up onto the record.
	if rec.AllocObjects != p.AllocObjects || rec.AllocBytes != p.AllocBytes {
		t.Errorf("record totals %d/%d != phase %d/%d",
			rec.AllocObjects, rec.AllocBytes, p.AllocObjects, p.AllocBytes)
	}
}

func TestAddPhaseAllocSumsIntoRecord(t *testing.T) {
	rt := NewReqTrace("estimate")
	now := time.Now()
	rt.AddPhaseAlloc(PhaseQueue, now, time.Millisecond, 10, 1000)
	rt.AddPhaseAlloc(PhaseCompute, now, 2*time.Millisecond, 30, 5000)
	rt.AddPhase(PhaseCache, now, time.Microsecond, "outcome", "miss") // zero allocs
	// Nested instrumentation spans (mc runs inside compute) report
	// per-phase but must not double-count in the record totals.
	rt.AddPhaseAlloc("mc", now, time.Millisecond, 29, 4900)
	rec := rt.Finalize(200)
	if rec.AllocObjects != 40 || rec.AllocBytes != 6000 {
		t.Errorf("totals = %d objs / %d bytes, want 40/6000", rec.AllocObjects, rec.AllocBytes)
	}
	for _, p := range rec.Phases {
		if p.Name == PhaseCache && (p.AllocObjects != 0 || p.AllocBytes != 0) {
			t.Errorf("AddPhase stamped alloc deltas: %+v", p)
		}
	}
}

// Server-Timing carries the phase's allocation object count as a
// custom ;alloc= param — and omits it for alloc-free phases so the
// header stays small.
func TestServerTimingAllocParam(t *testing.T) {
	rt := NewReqTrace("plan")
	now := time.Now()
	rt.AddPhaseAlloc(PhaseCompute, now, 5*time.Millisecond, 1380, 99000)
	rt.AddPhase(PhaseCache, now, time.Millisecond, "outcome", "miss")
	st := rt.ServerTiming()
	if !strings.Contains(st, "compute;dur=") || !strings.Contains(st, ";alloc=1380") {
		t.Errorf("Server-Timing = %q, want compute with ;alloc=1380", st)
	}
	if strings.Contains(st, "cache;dur=1.000;alloc") {
		t.Errorf("alloc-free phase carries an alloc param: %q", st)
	}
	if !strings.Contains(st, "total;dur=") {
		t.Errorf("Server-Timing lost the total: %q", st)
	}
}

func TestAddPhaseAllocNilAndFinalized(t *testing.T) {
	var rt *ReqTrace
	rt.AddPhaseAlloc(PhaseQueue, time.Now(), time.Millisecond, 5, 500) // no panic

	live := NewReqTrace("plan")
	live.Finalize(200)
	live.AddPhaseAlloc(PhaseCompute, time.Now(), time.Millisecond, 5, 500)
	if rec := live.Finalize(200); rec.AllocObjects != 0 {
		t.Errorf("post-Finalize phase leaked into the record: %+v", rec)
	}
}
