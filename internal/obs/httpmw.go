package obs

import (
	"net/http"
	"strconv"
	"time"
)

// ResponseRecorder wraps a ResponseWriter and captures the status code
// actually sent, so middleware can attribute a request to its outcome.
// A handler that writes a body without an explicit WriteHeader is
// recorded as 200, matching net/http's behaviour.
type ResponseRecorder struct {
	http.ResponseWriter
	code int
}

// NewResponseRecorder wraps w.
func NewResponseRecorder(w http.ResponseWriter) *ResponseRecorder {
	return &ResponseRecorder{ResponseWriter: w}
}

// WriteHeader records the first status code and forwards it.
func (r *ResponseRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write forwards the body, defaulting the recorded status to 200 the
// way the underlying ResponseWriter does.
func (r *ResponseRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// Code returns the recorded status code (200 when the handler wrote a
// body without WriteHeader, 0 when nothing was written at all).
func (r *ResponseRecorder) Code() int { return r.code }

// InstrumentHandler wraps next so every request updates two series on
// reg:
//
//	cs_http_requests_total{route="<route>",code="<status>"}  counter
//	cs_http_request_ms{route="<route>"}                      quantile summary
//
// The latency summary is a QuantileHist (p50/p90/p99/p999 at fixed
// relative error), recorded in milliseconds. Routes are a closed,
// caller-chosen vocabulary — never derived from the request path — so
// the label space stays bounded.
func InstrumentHandler(reg *Registry, route string, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	lat := reg.Quantiles(Labeled("cs_http_request_ms", "route", route),
		"HTTP request latency in milliseconds (log-bucketed quantile summary)")
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rec := NewResponseRecorder(w)
		start := time.Now()
		next.ServeHTTP(rec, req)
		lat.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		code := rec.Code()
		if code == 0 {
			code = http.StatusOK
		}
		reg.Counter(Labeled("cs_http_requests_total", "route", route, "code", strconv.Itoa(code)),
			"HTTP requests by route and status code").Inc()
	})
}
