package obs

import (
	"net/http"
	"strconv"
	"time"
)

// ResponseRecorder wraps a ResponseWriter and captures the status code
// actually sent, so middleware can attribute a request to its outcome.
// A handler that writes a body without an explicit WriteHeader is
// recorded as 200, matching net/http's behaviour.
type ResponseRecorder struct {
	http.ResponseWriter
	code int
}

// NewResponseRecorder wraps w.
func NewResponseRecorder(w http.ResponseWriter) *ResponseRecorder {
	return &ResponseRecorder{ResponseWriter: w}
}

// WriteHeader records the first status code and forwards it.
func (r *ResponseRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write forwards the body, defaulting the recorded status to 200 the
// way the underlying ResponseWriter does.
func (r *ResponseRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// Code returns the recorded status code (200 when the handler wrote a
// body without WriteHeader, 0 when nothing was written at all).
func (r *ResponseRecorder) Code() int { return r.code }

// timingWriter stamps the trace response headers (Server-Timing with
// the per-phase breakdown, X-Trace-Id) at the moment the handler
// commits the response — the latest point headers can still be set,
// and by then the serving path has recorded its phases.
type timingWriter struct {
	*ResponseRecorder
	rt *ReqTrace
}

func (tw *timingWriter) stamp() {
	if tw.Code() != 0 {
		return // headers already committed
	}
	h := tw.Header()
	h.Set("Server-Timing", tw.rt.ServerTiming())
	h.Set(TraceIDHeader, tw.rt.TraceID())
}

func (tw *timingWriter) WriteHeader(code int) {
	tw.stamp()
	tw.ResponseRecorder.WriteHeader(code)
}

func (tw *timingWriter) Write(p []byte) (int, error) {
	tw.stamp()
	return tw.ResponseRecorder.Write(p)
}

// httpLatencyBuckets bound cs_http_request_duration_ms: 0.25ms to
// ~8.2s in doubling steps, wide enough for a cached lookup and a cold
// multi-second Monte-Carlo estimate alike.
var httpLatencyBuckets = ExpBuckets(0.25, 2, 16)

// InstrumentHandler wraps next so every request updates three series
// on reg:
//
//	cs_http_requests_total{route="<route>",code="<status>"}  counter
//	cs_http_request_ms{route="<route>"}                      quantile summary
//	cs_http_request_duration_ms{route="<route>"}             histogram
//
// The latency summary is a QuantileHist (p50/p90/p99/p999 at fixed
// relative error), recorded in milliseconds; the fixed-bucket
// histogram carries the same latencies so exemplars have a legal home
// (the OpenMetrics exposition attaches trace IDs to its bucket lines —
// summary quantiles may not carry exemplars in any format). Routes are
// a closed, caller-chosen vocabulary — never derived from the request
// path — so the label space stays bounded.
//
// It is also where a request's trace begins: an incoming W3C
// traceparent header continues the caller's trace (csload -> csserve
// stitch into one), anything else roots a fresh one. The ReqTrace
// rides the request context so the serving path can attribute queue /
// cache / coalesce / compute time; the response carries Server-Timing
// and X-Trace-Id headers, the latency histogram gets the trace ID as
// an exemplar, and the finalized record is offered to tr's tail
// sampler (tr may be nil — headers and context still work, nothing is
// stored). When slo is non-nil every outcome also feeds the rolling
// SLO windows, so /debug/slo burn rates cover exactly the
// instrumented routes.
func InstrumentHandler(reg *Registry, route string, tr *Tracer, slo *SLOTracker, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	lat := reg.Quantiles(Labeled("cs_http_request_ms", "route", route),
		"HTTP request latency in milliseconds (log-bucketed quantile summary)")
	latHist := reg.Histogram(Labeled("cs_http_request_duration_ms", "route", route),
		"HTTP request latency in milliseconds (fixed buckets; OpenMetrics bucket lines carry trace-ID exemplars)",
		httpLatencyBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var rt *ReqTrace
		if parent, err := ParseTraceparent(req.Header.Get(TraceparentHeader)); err == nil {
			rt = ContinueReqTrace(parent, route)
		} else {
			rt = NewReqTrace(route)
		}
		req = req.WithContext(ContextWithReqTrace(req.Context(), rt))
		tw := &timingWriter{ResponseRecorder: NewResponseRecorder(w), rt: rt}
		start := time.Now()
		next.ServeHTTP(tw, req)
		code := tw.Code()
		if code == 0 {
			code = http.StatusOK
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		lat.Observe(ms)
		latHist.ObserveExemplar(ms, rt.TraceID())
		reg.Counter(Labeled("cs_http_requests_total", "route", route, "code", strconv.Itoa(code)),
			"HTTP requests by route and status code").Inc()
		slo.Record(code, ms)
		tr.Offer(rt.Finalize(code))
	})
}
