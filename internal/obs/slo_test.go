package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// sloAt builds a tracker on a fake clock starting at a fixed instant.
func sloAt(cfg SLOConfig) (*SLOTracker, *time.Time) {
	clock := time.Unix(1_000_000, 0)
	tr := NewSLOTracker(cfg)
	tr.now = func() time.Time { return clock }
	// start was stamped with the real clock in NewSLOTracker; re-anchor.
	tr.start = clock
	return tr, &clock
}

func TestSLONilSafe(t *testing.T) {
	var tr *SLOTracker
	tr.Record(200, 1)
	snap := tr.Snapshot()
	if snap.Windows != nil || snap.Total.Requests != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
}

func TestSLOBurnRateMath(t *testing.T) {
	tr, _ := sloAt(SLOConfig{
		AvailabilityObjective: 0.99, // error budget 1%
		LatencyObjective:      0.9,  // slow budget 10%
		LatencyThresholdMS:    100,
		Windows:               []time.Duration{5 * time.Second, 20 * time.Second, 60 * time.Second},
	})
	for i := 0; i < 90; i++ {
		tr.Record(200, 10) // fast success
	}
	for i := 0; i < 10; i++ {
		tr.Record(500, 10) // error
	}
	snap := tr.Snapshot()
	if len(snap.Windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(snap.Windows))
	}
	w := snap.Windows[0]
	if w.Requests != 100 || w.Errors != 10 {
		t.Fatalf("window counts = %+v", w)
	}
	if math.Abs(w.ErrorRate-0.1) > 1e-9 {
		t.Errorf("error_rate = %v, want 0.1", w.ErrorRate)
	}
	// burn = error_rate / (1 - objective) = 0.1 / 0.01 = 10.
	if math.Abs(w.ErrorBurnRate-10) > 1e-6 {
		t.Errorf("error_burn_rate = %v, want 10", w.ErrorBurnRate)
	}
	if snap.Total.Requests != 100 || snap.Total.Window != "since_start" {
		t.Errorf("total window = %+v", snap.Total)
	}
}

func TestSLOLatencySLI(t *testing.T) {
	tr, _ := sloAt(SLOConfig{
		AvailabilityObjective: 0.999,
		LatencyObjective:      0.9,
		LatencyThresholdMS:    100,
	})
	tr.Record(200, 50)   // fast
	tr.Record(200, 500)  // slow
	tr.Record(429, 500)  // shed load: served (not an error), slow
	tr.Record(500, 5000) // error: excluded from the latency SLI
	tr.Record(0, 1)      // no response at all: error

	snap := tr.Snapshot()
	w := snap.Windows[0]
	if w.Requests != 5 || w.Errors != 2 || w.Slow != 2 {
		t.Fatalf("counts = req %d err %d slow %d, want 5/2/2", w.Requests, w.Errors, w.Slow)
	}
	// slow_rate is over served (non-error) responses: 2 of 3.
	if math.Abs(w.SlowRate-2.0/3.0) > 1e-9 {
		t.Errorf("slow_rate = %v, want 2/3", w.SlowRate)
	}
	// latency burn = slow_rate / (1 - 0.9).
	if math.Abs(w.LatencyBurnRate-20.0/3.0) > 1e-6 {
		t.Errorf("latency_burn_rate = %v, want 20/3", w.LatencyBurnRate)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	tr, clock := sloAt(SLOConfig{
		Windows: []time.Duration{5 * time.Second, 20 * time.Second, 60 * time.Second},
	})
	tr.Record(500, 1)
	*clock = clock.Add(10 * time.Second)
	tr.Record(200, 1)
	snap := tr.Snapshot()
	// The error has aged out of the 5s window but not the 20s or 60s.
	if w := snap.Windows[0]; w.Requests != 1 || w.Errors != 0 {
		t.Errorf("5s window = %+v, want the old error expired", w)
	}
	if w := snap.Windows[1]; w.Requests != 2 || w.Errors != 1 {
		t.Errorf("20s window = %+v, want both requests", w)
	}
	if snap.Total.Requests != 2 || snap.Total.Errors != 1 {
		t.Errorf("total = %+v, must never expire", snap.Total)
	}
	if snap.UptimeSeconds != 10 {
		t.Errorf("uptime = %v, want 10", snap.UptimeSeconds)
	}
}

func TestSLORingReuseAcrossWraps(t *testing.T) {
	// A bucket slot reused for a much later second must shed its old
	// counts (the ring is longest-window+1 seconds wide).
	tr, clock := sloAt(SLOConfig{
		Windows: []time.Duration{2 * time.Second, 3 * time.Second, 4 * time.Second},
	})
	tr.Record(500, 1)
	*clock = clock.Add(5 * time.Second) // same slot index mod ring length
	tr.Record(200, 1)
	snap := tr.Snapshot()
	for i, w := range snap.Windows {
		if w.Errors != 0 {
			t.Errorf("window %d still sees the pre-wrap error: %+v", i, w)
		}
	}
}

func TestSLOAlertsFiring(t *testing.T) {
	tr, _ := sloAt(SLOConfig{
		AvailabilityObjective: 0.999,
		Windows:               []time.Duration{5 * time.Second, 20 * time.Second, 60 * time.Second},
	})
	snap := tr.Snapshot()
	if len(snap.Alerts) != 4 {
		t.Fatalf("alerts = %d, want availability+latency x page+ticket", len(snap.Alerts))
	}
	for _, a := range snap.Alerts {
		if a.Firing {
			t.Errorf("alert firing with zero traffic: %+v", a)
		}
	}
	// 100% errors: burn 1000 in every window, everything fires.
	for i := 0; i < 20; i++ {
		tr.Record(500, 1)
	}
	snap = tr.Snapshot()
	for _, a := range snap.Alerts {
		if a.SLI == "availability" && !a.Firing {
			t.Errorf("availability alert not firing at 100%% errors: %+v", a)
		}
		if a.SLI == "latency" && a.Firing {
			t.Errorf("latency alert firing with no slow requests: %+v", a)
		}
	}
	page := snap.Alerts[0]
	//lint:allow floatcmp the burn threshold is a hardcoded constant
	if page.Severity != "page" || page.BurnThreshold != 14.4 || page.ShortWindow != "5s" {
		t.Errorf("page pair = %+v", page)
	}
}

func TestSLOConcurrentRecord(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{})
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow goroutinecap Record is internally synchronized; the race is the point of the test
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				status := 200
				if i%10 == 0 {
					status = 500
				}
				tr.Record(status, float64(i%400))
			}
		}(w)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if snap.Total.Requests != workers*per {
		t.Errorf("total requests = %d, want %d", snap.Total.Requests, workers*per)
	}
	if snap.Total.Errors != workers*per/10 {
		t.Errorf("total errors = %d, want %d", snap.Total.Errors, workers*per/10)
	}
}

func TestSLOServeHTTP(t *testing.T) {
	tr, _ := sloAt(SLOConfig{})
	tr.Record(200, 1)
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var snap SLOSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	//lint:allow floatcmp the default objective round-trips JSON exactly
	if snap.AvailabilityObjective != 0.999 || len(snap.Windows) != 3 {
		t.Errorf("snapshot = %+v", snap)
	}
	rec2 := httptest.NewRecorder()
	tr.ServeHTTP(rec2, httptest.NewRequest("POST", "/debug/slo", nil))
	if rec2.Code != 405 {
		t.Errorf("POST status = %d, want 405", rec2.Code)
	}
}
