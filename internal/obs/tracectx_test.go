package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("NewTraceContext produced invalid context %+v", tc)
	}
	if !tc.Sampled {
		t.Fatalf("fresh root context must be sampled")
	}
	hdr := tc.Traceparent()
	if len(hdr) != 55 {
		t.Fatalf("traceparent length = %d, want 55 (%q)", len(hdr), hdr)
	}
	back, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if back != tc {
		t.Fatalf("round trip mismatch: %+v != %+v", back, tc)
	}
}

func TestParseTraceparentValid(t *testing.T) {
	const hdr = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent: %v", err)
	}
	if tc.TraceIDString() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", tc.TraceIDString())
	}
	if tc.SpanIDString() != "00f067aa0ba902b7" {
		t.Errorf("span id = %s", tc.SpanIDString())
	}
	if !tc.Sampled {
		t.Errorf("flags 01 must set Sampled")
	}
	// Unsampled flags.
	tc2, err := ParseTraceparent(hdr[:53] + "00")
	if err != nil {
		t.Fatalf("ParseTraceparent flags=00: %v", err)
	}
	if tc2.Sampled {
		t.Errorf("flags 00 must clear Sampled")
	}
	// A future version may carry trailing fields.
	tc3, err := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	if err != nil {
		t.Fatalf("future-version trailing fields must parse: %v", err)
	}
	if !tc3.Sampled || tc3.TraceIDString() != tc.TraceIDString() {
		t.Errorf("future-version parse mismatch: %+v", tc3)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []struct{ name, hdr string }{
		{"empty", ""},
		{"short", "00-abc"},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"uppercase hex", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"bad separator", "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"non-hex", "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01"},
		{"v00 trailing", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x"},
		{"trailing no dash", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x"},
	}
	for _, tt := range bad {
		if _, err := ParseTraceparent(tt.hdr); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want error", tt.name, tt.hdr)
		}
	}
}

func TestNewChildKeepsTrace(t *testing.T) {
	root := NewTraceContext()
	child := root.NewChild()
	if child.TraceID != root.TraceID {
		t.Errorf("child changed trace id")
	}
	if child.SpanID == root.SpanID {
		t.Errorf("child reused parent span id")
	}
	if child.Sampled != root.Sampled {
		t.Errorf("child changed sampled flag")
	}
}

func TestNewTraceContextUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceContext().TraceIDString()
		if seen[id] {
			t.Fatalf("duplicate trace id %s after %d draws", id, i)
		}
		if strings.ToLower(id) != id {
			t.Fatalf("trace id %s not lowercase", id)
		}
		seen[id] = true
	}
}
