// Package obs is the repository's observability layer, built on the
// standard library alone. It provides three things:
//
//   - a lock-cheap metrics registry — monotone counters, float gauges
//     and fixed-bucket histograms, all updated with atomics — with
//     Prometheus text exposition and expvar publishing;
//   - a structured trace sink (Sink) with JSONL and Chrome trace_event
//     exporters, so a simulation run renders as a per-worker timeline
//     in chrome://tracing or Perfetto;
//   - HTTP wiring for /metrics, /debug/vars and /debug/pprof, plus a
//     shared flag helper the CLIs use for -trace / -trace-format /
//     -metrics-addr.
//
// The simulators in internal/nowsim and the planner in internal/core
// accept these hooks as optional, nil-safe fields: a nil Sink and a nil
// *Registry disable the instrumentation at (benchmarked) zero cost.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can move in either direction. Add uses
// a compare-and-swap loop, so gauges double as float accumulators
// (committed work, lost work, ...) that stay safe under concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge's value.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Buckets are upper bounds in
// increasing order; observations above the last bound land in the
// implicit +Inf bucket. Observation is a linear scan plus two atomic
// adds — bucket counts are per-bucket (not cumulative) internally and
// cumulated only at exposition time, so Observe never contends across
// buckets.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is +Inf
	sum    Gauge
	n      atomic.Uint64

	// Per-bucket exemplar slots, allocated on the first ObserveExemplar
	// so exemplar-free histograms pay one nil pointer load.
	exemplars atomic.Pointer[[]atomic.Pointer[Exemplar]]
}

// Exemplar ties an observed value to the trace that produced it, in
// the OpenMetrics sense: a concrete request behind a bucket count. The
// exposition attaches exemplars to histogram bucket lines, and only in
// the OpenMetrics format — the classic text format has no syntax for
// them, and summary quantiles may not carry them in either format.
type Exemplar struct {
	Value   float64
	TraceID string
}

// bucketIndex returns the index of the bucket holding v; the last
// index is the implicit +Inf bucket.
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// ObserveExemplar records v like Observe and, when traceID is
// nonempty, publishes (v, traceID) as the exemplar for v's bucket.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	slots := h.exemplars.Load()
	if slots == nil {
		fresh := make([]atomic.Pointer[Exemplar], len(h.counts))
		if !h.exemplars.CompareAndSwap(nil, &fresh) {
			slots = h.exemplars.Load() // lost the race; use the winner's
		} else {
			slots = &fresh
		}
	}
	(*slots)[h.bucketIndex(v)].Store(&Exemplar{Value: v, TraceID: traceID})
}

// exemplarAt returns bucket i's latest exemplar, or nil.
func (h *Histogram) exemplarAt(i int) *Exemplar {
	slots := h.exemplars.Load()
	if slots == nil {
		return nil
	}
	return (*slots)[i].Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// ExpBuckets returns n bucket bounds start, start·factor, ...
// start·factor^(n-1) — the usual choice for period lengths and other
// scale-free quantities.
func ExpBuckets(start, factor float64, n int) []float64 {
	if !(start > 0) || !(factor > 1) || n <= 0 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%g, %g, %d)", start, factor, n))
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// metricKind tags a registered metric for TYPE lines and expvar.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindQuantile
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindQuantile:
		return "summary"
	default:
		return "untyped"
	}
}

type entry struct {
	name string // full name, possibly with {label="value"} suffix
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	q    *QuantileHist
}

// Registry holds named metrics. Registration takes a mutex; updates to
// the returned metrics are lock-free atomics, so the hot path never
// touches the registry again. Series names may carry a Prometheus label
// suffix (see Labeled); series sharing a base name are grouped under
// one HELP/TYPE pair at exposition.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	help    map[string]string // base name -> help (first registration wins)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*entry),
		help:    make(map[string]string),
	}
}

// Labeled renders name{k1="v1",k2="v2",...} from alternating key/value
// pairs — the series-name convention the registry understands.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("obs: Labeled needs alternating key/value pairs")
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		sb.WriteString(kv[i+1])
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// baseName strips a {label} suffix.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitSeries returns the base name and the label body (without braces,
// empty when unlabeled).
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func (r *Registry) lookup(name, help string, kind metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindQuantile:
		e.q = &QuantileHist{}
	}
	r.entries[name] = e
	base := baseName(name)
	if _, ok := r.help[base]; !ok {
		r.help[base] = help
	}
	return e
}

// Counter returns the counter registered under name, creating it on
// first use. help documents the base name (first registration wins).
// Registering the same name with a different metric type panics: that
// is always a programming error.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter).c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge).g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (later calls may pass
// nil buckets). Bounds must be strictly increasing.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as histogram", name, e.kind))
		}
		return e.h
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q buckets not increasing: %v", name, buckets))
		}
	}
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.entries[name] = &entry{name: name, kind: kindHistogram, h: h}
	base := baseName(name)
	if _, ok := r.help[base]; !ok {
		r.help[base] = help
	}
	return h
}

// Quantiles returns the log-bucketed quantile histogram registered
// under name, creating it on first use. It is exposed in the
// Prometheus text format as a summary with quantile labels 0.5, 0.9,
// 0.99 and 0.999, accurate to QuantileHist's fixed relative error.
func (r *Registry) Quantiles(name, help string) *QuantileHist {
	return r.lookup(name, help, kindQuantile).q
}

// snapshot returns the entries sorted by (base name, series name) —
// the deterministic exposition order.
func (r *Registry) snapshot() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		bi, bj := baseName(es[i].name), baseName(es[j].name)
		if bi != bj {
			return bi < bj
		}
		return es[i].name < es[j].name
	})
	return es
}

// WritePrometheus writes the registry in the classic Prometheus text
// exposition format (version 0.0.4). The classic format has no
// exemplar syntax, so exemplars are never emitted here — a payload
// carrying them would fail to parse in every standard scraper. Series
// are sorted, so the output is deterministic for a quiescent registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics writes the registry in the OpenMetrics 1.0 text
// format: counter families are named without their _total sample
// suffix, histogram bucket lines carry trace-ID exemplars when
// recorded, and the payload is terminated by # EOF. Exemplars appear
// only on histogram buckets — OpenMetrics forbids them on summary
// quantile lines.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.write(w, true)
}

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	es := r.snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	var sb strings.Builder
	lastBase := ""
	for _, e := range es {
		base, labels := splitSeries(e.name)
		if base != lastBase {
			family, kind := base, e.kind.String()
			if openMetrics {
				family, kind = openMetricsFamily(base, e.kind)
			}
			if h := help[base]; h != "" {
				fmt.Fprintf(&sb, "# HELP %s %s\n", family, h)
			}
			fmt.Fprintf(&sb, "# TYPE %s %s\n", family, kind)
			lastBase = base
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&sb, "%s %d\n", e.name, e.c.Value())
		case kindGauge:
			fmt.Fprintf(&sb, "%s %s\n", e.name, formatFloat(e.g.Value()))
		case kindHistogram:
			writeHistogram(&sb, base, labels, e.h, openMetrics)
		case kindQuantile:
			writeQuantiles(&sb, base, labels, e.q)
		}
	}
	if openMetrics {
		sb.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// openMetricsFamily maps a series base name to its OpenMetrics metric
// family name and type. OpenMetrics names a counter family without the
// _total suffix its samples carry; a counter whose name does not follow
// that convention is exposed as unknown rather than as an invalid
// counter family.
func openMetricsFamily(base string, k metricKind) (family, typ string) {
	if k == kindCounter {
		if fam, ok := strings.CutSuffix(base, "_total"); ok {
			return fam, "counter"
		}
		return base, "unknown"
	}
	return base, k.String()
}

func writeQuantiles(sb *strings.Builder, base, labels string, q *QuantileHist) {
	if q.Count() > 0 {
		for _, p := range standardQuantiles {
			fmt.Fprintf(sb, "%s{%squantile=%q} %s\n",
				base, joinLabels(labels), trimFloat(p), formatFloat(q.Quantile(p)))
		}
	}
	fmt.Fprintf(sb, "%s_sum%s %s\n", base, braced(labels), formatFloat(q.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", base, braced(labels), q.Count())
}

func writeHistogram(sb *strings.Builder, base, labels string, h *Histogram, exemplars bool) {
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.upper) {
			le = formatFloat(h.upper[i])
		}
		fmt.Fprintf(sb, "%s_bucket{%sle=%q} %d", base, joinLabels(labels), le, cum)
		if exemplars {
			if e := h.exemplarAt(i); e != nil {
				fmt.Fprintf(sb, " # {trace_id=%q} %s", e.TraceID, formatFloat(e.Value))
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(sb, "%s_sum%s %s\n", base, braced(labels), formatFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", base, braced(labels), h.Count())
}

func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return trimFloat(v)
}
