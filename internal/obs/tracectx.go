package obs

// W3C trace-context support: the request-scoped identity that stitches
// csload -> csserve (and, later, csserve -> csserve shard hops) into
// one distributed trace. A TraceContext travels between processes as a
// `traceparent` HTTP header and inside a process as a context.Context
// value (see reqtrace.go), so every hop of the serving path — queue
// wait, cache lookup, coalesce wait, Monte-Carlo compute — can be
// attributed to the request that paid for it.

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// TraceContext is the parsed form of a W3C traceparent header: a
// 16-byte trace ID shared by every span of a distributed trace, the
// 8-byte ID of one span within it, and the sampled flag. The zero
// TraceContext is invalid.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Sampled bool
}

// Valid reports whether both IDs are nonzero, the W3C validity rule.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceIDString returns the 32-char lowercase hex trace ID.
func (tc TraceContext) TraceIDString() string {
	return hex.EncodeToString(tc.TraceID[:])
}

// SpanIDString returns the 16-char lowercase hex span ID.
func (tc TraceContext) SpanIDString() string {
	return hex.EncodeToString(tc.SpanID[:])
}

// Traceparent renders the version-00 header value:
// 00-<trace-id>-<span-id>-<flags>.
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceIDString() + "-" + tc.SpanIDString() + "-" + flags
}

// TraceparentHeader is the W3C header name carrying a TraceContext
// between processes (header names are case-insensitive; the spec
// spells it lowercase).
const TraceparentHeader = "traceparent"

// TraceIDHeader is the response header a traced server stamps with the
// request's trace ID, so any client can look the request up at
// /debug/traces without parsing traceparent.
const TraceIDHeader = "X-Trace-Id"

// ParseTraceparent parses a traceparent header value. Per the W3C
// recommendation a malformed value is an error and the caller should
// restart the trace: version ff is forbidden, IDs must be lowercase
// hex and nonzero, and versions above 00 may carry extra fields after
// the flags (accepted and ignored).
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	// version-format: 2 hex "-" 32 hex "-" 16 hex "-" 2 hex [ "-" ... ]
	if len(s) < 55 {
		return tc, fmt.Errorf("obs: traceparent too short (%d bytes)", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("obs: traceparent missing separators")
	}
	version, err := hexByte(s[0:2])
	if err != nil {
		return tc, fmt.Errorf("obs: traceparent version: %w", err)
	}
	if version == 0xff {
		return tc, fmt.Errorf("obs: traceparent version ff is forbidden")
	}
	if len(s) > 55 {
		if version == 0 {
			return tc, fmt.Errorf("obs: version-00 traceparent has trailing bytes")
		}
		if s[55] != '-' {
			return tc, fmt.Errorf("obs: traceparent trailing bytes without separator")
		}
	}
	if err := hexLower(s[3:35], tc.TraceID[:]); err != nil {
		return tc, fmt.Errorf("obs: traceparent trace-id: %w", err)
	}
	if err := hexLower(s[36:52], tc.SpanID[:]); err != nil {
		return tc, fmt.Errorf("obs: traceparent parent-id: %w", err)
	}
	flags, err := hexByte(s[53:55])
	if err != nil {
		return tc, fmt.Errorf("obs: traceparent flags: %w", err)
	}
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("obs: traceparent with all-zero id")
	}
	tc.Sampled = flags&0x01 != 0
	return tc, nil
}

// hexLower decodes exactly len(dst)*2 lowercase hex digits. The spec
// requires lowercase; uppercase input is rejected so equality of the
// re-rendered header is byte-exact.
func hexLower(s string, dst []byte) error {
	if len(s) != 2*len(dst) {
		return fmt.Errorf("want %d hex digits, got %d", 2*len(dst), len(s))
	}
	for i := 0; i < len(dst); i++ {
		hi, ok1 := hexNibble(s[2*i])
		lo, ok2 := hexNibble(s[2*i+1])
		if !ok1 || !ok2 {
			return fmt.Errorf("invalid lowercase hex %q", s)
		}
		dst[i] = hi<<4 | lo
	}
	return nil
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

func hexByte(s string) (byte, error) {
	var b [1]byte
	if err := hexLower(s, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// ID generation: a process-unique splitmix64 stream seeded once from
// crypto/rand. Trace IDs need uniqueness, not unpredictability, and
// splitmix64 over a random seed gives collision-free IDs within a
// process and a 2^-64-per-pair chance across processes — without
// putting math/rand anywhere near the determinism-guarded simulator
// packages.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		// crypto/rand failing is effectively fatal elsewhere; a fixed
		// seed still yields process-unique IDs, just predictable ones.
		idState.Store(0x9e3779b97f4a7c15)
	}
}

// nextID64 returns the next nonzero 64-bit ID.
func nextID64() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// NewTraceContext returns a fresh sampled root context with random
// trace and span IDs.
func NewTraceContext() TraceContext {
	var tc TraceContext
	binary.BigEndian.PutUint64(tc.TraceID[0:8], nextID64())
	binary.BigEndian.PutUint64(tc.TraceID[8:16], nextID64())
	binary.BigEndian.PutUint64(tc.SpanID[:], nextID64())
	tc.Sampled = true
	return tc
}

// NewChild returns a context for a child span: same trace ID and
// sampled flag, fresh span ID.
func (tc TraceContext) NewChild() TraceContext {
	child := tc
	binary.BigEndian.PutUint64(child.SpanID[:], nextID64())
	return child
}
