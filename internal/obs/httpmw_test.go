package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestInstrumentHandlerRecordsStatusAndLatency(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHandler(reg, "plan", nil, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "nope", http.StatusTooManyRequests)
			return
		}
		_, _ = w.Write([]byte("ok")) // implicit 200
	}))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/plan", nil))
		if rec.Code != 200 {
			t.Fatalf("status = %d, want 200", rec.Code)
		}
		if rec.Header().Get(TraceIDHeader) == "" {
			t.Fatalf("response missing %s header", TraceIDHeader)
		}
		if !strings.Contains(rec.Header().Get("Server-Timing"), "total;dur=") {
			t.Fatalf("Server-Timing = %q, want total;dur=", rec.Header().Get("Server-Timing"))
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/plan?fail=1", nil))
	if rec.Code != 429 {
		t.Fatalf("status = %d, want 429", rec.Code)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cs_http_requests_total{route="plan",code="200"} 3`,
		`cs_http_requests_total{route="plan",code="429"} 1`,
		`cs_http_request_ms{route="plan",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := reg.Quantiles(Labeled("cs_http_request_ms", "route", "plan"), "").Count(); got != 4 {
		t.Errorf("latency observations = %d, want 4", got)
	}
}

func TestInstrumentHandlerNilRegistryPassesThrough(t *testing.T) {
	called := false
	h := InstrumentHandler(nil, "x", nil, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		called = true
		w.WriteHeader(http.StatusNoContent)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if !called || rec.Code != http.StatusNoContent {
		t.Fatalf("pass-through failed: called=%v code=%d", called, rec.Code)
	}
}

// Satellite requirement: InstrumentHandler under concurrent
// mixed-status load must keep exact per-code counters and histogram
// counts (run under -race in CI).
func TestInstrumentHandlerConcurrentMixedStatus(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerConfig{Capacity: 4096, SampleRate: -1})
	codes := []int{200, 404, 429, 500}
	h := InstrumentHandler(reg, "mix", tr, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var code int
		if _, err := fmt.Sscanf(r.URL.Query().Get("code"), "%d", &code); err != nil {
			t.Errorf("bad code param: %v", err)
			code = 500
		}
		end := StartPhase(r.Context(), PhaseCompute)
		end()
		if code == 200 {
			_, _ = w.Write([]byte("ok"))
			return
		}
		http.Error(w, "no", code)
	}))

	const perCode = 25
	var wg sync.WaitGroup
	for _, code := range codes {
		for i := 0; i < perCode; i++ {
			wg.Add(1)
			go func(code int) {
				defer wg.Done()
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/v1/mix?code=%d", code), nil))
				if rec.Code != code {
					t.Errorf("status = %d, want %d", rec.Code, code)
				}
			}(code)
		}
	}
	wg.Wait()

	for _, code := range codes {
		name := Labeled("cs_http_requests_total", "route", "mix", "code", fmt.Sprintf("%d", code))
		if got := reg.Counter(name, "").Value(); got != perCode {
			t.Errorf("%s = %d, want %d", name, got, perCode)
		}
	}
	lat := reg.Quantiles(Labeled("cs_http_request_ms", "route", "mix"), "")
	if got := lat.Count(); got != uint64(len(codes)*perCode) {
		t.Errorf("histogram count = %d, want %d", got, len(codes)*perCode)
	}
	// With the rate coin disabled, the tail sampler must have kept
	// exactly the error-status requests.
	st := tr.Stats()
	if st.Offered != uint64(len(codes)*perCode) {
		t.Errorf("offered = %d, want %d", st.Offered, len(codes)*perCode)
	}
	if st.ByReason[SampledError] != 3*perCode {
		t.Errorf("kept by error = %d, want %d", st.ByReason[SampledError], 3*perCode)
	}
	for _, rec := range tr.Query(TraceQuery{Status: 429, Limit: 1000}) {
		if rec.SampledBy != SampledError {
			t.Errorf("429 trace sampled by %q, want error", rec.SampledBy)
		}
		sum := rec.Breakdown["queue_ms"] + rec.Breakdown["coalesce_ms"] + rec.Breakdown["compute_ms"]
		if sum > rec.TotalMS {
			t.Errorf("invariant violated: %v > %v", sum, rec.TotalMS)
		}
	}
}

// An incoming W3C traceparent must continue the remote trace rather
// than rooting a new one, and the trace ID must round-trip through the
// response header and the store.
func TestInstrumentHandlerStitchesRemoteParent(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerConfig{SampleRate: 1})
	h := InstrumentHandler(reg, "plan", tr, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	parent := NewTraceContext()
	req := httptest.NewRequest("GET", "/v1/plan", nil)
	req.Header.Set(TraceparentHeader, parent.Traceparent())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(TraceIDHeader); got != parent.TraceIDString() {
		t.Fatalf("%s = %q, want remote trace id %q", TraceIDHeader, got, parent.TraceIDString())
	}
	recs := tr.Query(TraceQuery{TraceID: parent.TraceIDString()})
	if len(recs) != 1 {
		t.Fatalf("stored traces = %d, want 1", len(recs))
	}
	if !recs[0].Remote || recs[0].ParentID != parent.SpanIDString() {
		t.Fatalf("stored record not stitched: %+v", recs[0])
	}
	// A malformed traceparent roots a fresh trace instead.
	req2 := httptest.NewRequest("GET", "/v1/plan", nil)
	req2.Header.Set(TraceparentHeader, "00-bogus")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	if got := rec2.Header().Get(TraceIDHeader); got == "" || got == parent.TraceIDString() {
		t.Fatalf("malformed parent handled wrong: trace id %q", got)
	}
}
