package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInstrumentHandlerRecordsStatusAndLatency(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHandler(reg, "plan", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "nope", http.StatusTooManyRequests)
			return
		}
		_, _ = w.Write([]byte("ok")) // implicit 200
	}))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/plan", nil))
		if rec.Code != 200 {
			t.Fatalf("status = %d, want 200", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/plan?fail=1", nil))
	if rec.Code != 429 {
		t.Fatalf("status = %d, want 429", rec.Code)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cs_http_requests_total{route="plan",code="200"} 3`,
		`cs_http_requests_total{route="plan",code="429"} 1`,
		`cs_http_request_ms{route="plan",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := reg.Quantiles(Labeled("cs_http_request_ms", "route", "plan"), "").Count(); got != 4 {
		t.Errorf("latency observations = %d, want 4", got)
	}
}

func TestInstrumentHandlerNilRegistryPassesThrough(t *testing.T) {
	called := false
	h := InstrumentHandler(nil, "x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		called = true
		w.WriteHeader(http.StatusNoContent)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if !called || rec.Code != http.StatusNoContent {
		t.Fatalf("pass-through failed: called=%v code=%d", called, rec.Code)
	}
}
