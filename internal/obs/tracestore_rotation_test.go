package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Window rotation on the injectable clock: the admission floor carried
// from a full window must gate warm-up keeps in the next one, and a
// sparse window must keep the previous floor instead of defining a
// meaningless one.
func TestTracerRotationFloorCarryOverFakeClock(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: -1, SlowestK: 3, Window: 10 * time.Second})
	var clock atomic.Int64 // seconds since the tracer's birth
	base := tr.windowStart
	tr.now = func() time.Time { return base.Add(time.Duration(clock.Load()) * time.Second) }

	// Window 1 fills the slow buffer: floor will be 100.
	for i, ms := range []float64{100, 150, 200} {
		if !tr.Offer(mkRec("w1", 200, ms)) {
			t.Fatalf("warm-up keep %d dropped in the first window", i)
		}
	}
	clock.Store(11) // rotate

	// Post-rotation warm-up: below the carried floor drops, above keeps.
	if tr.Offer(mkRec("fast", 200, 1)) {
		t.Fatalf("1ms kept as slow right after rotation (floor 100 not carried)")
	}
	if !tr.Offer(mkRec("slow", 200, 150)) {
		t.Fatalf("150ms dropped during warm-up despite beating the carried floor")
	}

	// Window 2 ends sparse (2 buffer entries < K): its floor must NOT
	// replace the carried one, so 50ms still drops in window 3's warm-up
	// while a genuinely slow record keeps.
	clock.Store(22)
	if tr.Offer(mkRec("mid", 200, 50)) {
		t.Fatalf("sparse window redefined the admission floor")
	}
	if !tr.Offer(mkRec("w3slow", 200, 120)) {
		t.Fatalf("120ms dropped despite beating the (still carried) floor")
	}
}

// Concurrent Offers racing a window rotation must neither panic nor
// lose counts (run under -race in CI). The invariant checked is
// conservation: every offer is counted, keeps never exceed offers, and
// per-reason counts sum to the keeps.
func TestTracerConcurrentOffersAcrossRotation(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 256, SampleRate: -1, SlowestK: 4, Window: time.Millisecond})
	const workers, per = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow goroutinecap Offer is internally synchronized; the race is the point of the test
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				status := 200
				if i%7 == 0 {
					status = 500
				}
				rec := mkRec("t", status, float64((w*per+i)%300))
				tr.Offer(rec)
				if i%50 == 0 {
					time.Sleep(time.Millisecond) // straddle rotations
				}
			}
		}(w)
	}
	wg.Wait()
	st := tr.Stats()
	if st.Offered != workers*per {
		t.Fatalf("offered = %d, want %d", st.Offered, workers*per)
	}
	if st.Kept > st.Offered {
		t.Fatalf("kept %d > offered %d", st.Kept, st.Offered)
	}
	var byReason uint64
	for _, n := range st.ByReason {
		byReason += n
	}
	if byReason != st.Kept {
		t.Fatalf("reason counts sum to %d, kept = %d", byReason, st.Kept)
	}
	// Errors are unconditional keeps regardless of rotation races.
	wantErrs := uint64(0)
	for i := 0; i < per; i++ {
		if i%7 == 0 {
			wantErrs += workers
		}
	}
	if st.ByReason[SampledError] != wantErrs {
		t.Fatalf("errors kept = %d, want %d", st.ByReason[SampledError], wantErrs)
	}
}

// Snapshot (and the individual quantile reads underneath it) must be
// safe while writers record — the live-monitor path. Run under -race.
func TestQuantileHistSnapshotDuringRecord(t *testing.T) {
	var h QuantileHist
	const workers, per = 4, 2000
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%1000) + 0.25)
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()
	for {
		snap := h.Snapshot()
		if snap != nil {
			for k, v := range snap {
				if v < 0 {
					t.Errorf("%s = %v while recording", k, v)
				}
			}
			if snap["p50"] > snap["p999"] {
				t.Errorf("quantiles inverted mid-record: %+v", snap)
			}
		}
		if h.Max() > 1000 {
			t.Errorf("max = %v, beyond any observed value", h.Max())
		}
		select {
		case <-done:
			if got := h.Count(); got != workers*per {
				t.Fatalf("count = %d, want %d", got, workers*per)
			}
			if snap := h.Snapshot(); snap["p999"] <= 0 {
				t.Fatalf("final snapshot = %+v", snap)
			}
			return
		default:
		}
	}
}
