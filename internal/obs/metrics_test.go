package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cs_test_total", "test counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("cs_test_total", "ignored"); again != c {
		t.Error("second registration returned a different counter")
	}
	g := r.Gauge("cs_test_gauge", "test gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cs_conc_total", "")
	g := r.Gauge("cs_conc_gauge", "")
	h := r.Histogram("cs_conc_hist", "", []float64{1, 2, 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(i % 6))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 4000 {
		t.Errorf("gauge = %g, want 4000", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cs_hist", "period lengths", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE cs_hist histogram",
		`cs_hist_bucket{le="1"} 2`,
		`cs_hist_bucket{le="10"} 3`,
		`cs_hist_bucket{le="100"} 4`,
		`cs_hist_bucket{le="+Inf"} 5`,
		"cs_hist_sum 556.5",
		"cs_hist_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusLabelsGrouping(t *testing.T) {
	r := NewRegistry()
	r.Gauge(Labeled("cs_worker_committed", "worker", "1"), "per-worker committed work").Set(3)
	r.Gauge(Labeled("cs_worker_committed", "worker", "0"), "per-worker committed work").Set(7)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE cs_worker_committed gauge") != 1 {
		t.Errorf("labeled series not grouped under one TYPE line:\n%s", out)
	}
	w0 := strings.Index(out, `cs_worker_committed{worker="0"} 7`)
	w1 := strings.Index(out, `cs_worker_committed{worker="1"} 3`)
	if w0 < 0 || w1 < 0 || w0 > w1 {
		t.Errorf("series missing or unsorted (w0=%d, w1=%d):\n%s", w0, w1, out)
	}
	if !strings.Contains(out, "# HELP cs_worker_committed per-worker committed work") {
		t.Errorf("missing HELP line:\n%s", out)
	}
}

func TestHistogramLabeled(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Labeled("cs_len", "worker", "2"), "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cs_len_bucket{worker="2",le="1"} 1`,
		`cs_len_bucket{worker="2",le="+Inf"} 2`,
		`cs_len_sum{worker="2"} 3.5`,
		`cs_len_count{worker="2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("cs_x", "")
	r.Gauge("cs_x", "")
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		//lint:allow floatcmp bucket bounds are exact powers of two
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestDeterministicExposition(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("b_total", "bb").Add(2)
		r.Gauge("a_gauge", "aa").Set(1)
		r.Histogram("c_hist", "cc", []float64{1, 2}).Observe(1.5)
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if build() != build() {
		t.Error("exposition is not deterministic")
	}
}
