package obs

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// Run-status snapshots: the JSON document a command serves at
// /debug/csrun (see Server.SetStatus) and csmon renders. The producer
// (csfarm's status board) assembles a RunStatus on demand from atomic
// counters and registry reads, so serving a snapshot never blocks the
// simulation.

// PolicyStatus is one policy's progress within a multi-policy run.
type PolicyStatus struct {
	Policy string `json:"policy"`
	// State is "pending", "running", "done" or "failed".
	State    string `json:"state"`
	Episodes uint64 `json:"episodes"`
	// Committed is the committed work accumulated by this policy's run.
	Committed float64 `json:"committed_work"`
	// MeanCommitted is Committed/Episodes — the running E(S;p) estimate.
	MeanCommitted float64 `json:"mean_committed_per_episode"`
	TasksDone     int     `json:"tasks_done"`
	TasksTotal    int     `json:"tasks_total"`
	Makespan      float64 `json:"makespan,omitempty"`
	Drained       bool    `json:"drained"`
}

// RunStatus is the live snapshot of a run.
type RunStatus struct {
	// Phase is "starting", "running" or "done".
	Phase string `json:"phase"`
	// Policy names the policy currently running, when any.
	Policy       string  `json:"policy,omitempty"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	EventsTotal  uint64  `json:"events_total"`
	EventsPerSec float64 `json:"events_per_sec"`
	TasksTotal   int     `json:"tasks_total,omitempty"`
	TasksDone    int     `json:"tasks_done,omitempty"`
	Episodes     uint64  `json:"episodes,omitempty"`
	// Policies lists per-policy progress in run order.
	Policies []PolicyStatus `json:"policies,omitempty"`
	// Quantiles maps metric base name -> {"p50": v, ..., "p999": v},
	// snapshotted from the registry's QuantileHist series.
	Quantiles map[string]map[string]float64 `json:"quantiles,omitempty"`
	// FlightDropped is the flight recorder's head-drop count, when one
	// is attached.
	FlightDropped uint64 `json:"flight_dropped,omitempty"`
}

// QuantileSnapshot collects the standard quantile set of every
// registered QuantileHist series, keyed by series name — the Quantiles
// payload of a RunStatus. Empty histograms are skipped.
func (r *Registry) QuantileSnapshot() map[string]map[string]float64 {
	out := make(map[string]map[string]float64)
	for _, e := range r.snapshot() {
		if e.kind != kindQuantile {
			continue
		}
		if snap := e.q.Snapshot(); snap != nil {
			out[e.name] = snap
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// CountingSink wraps a sink with an atomic event counter — the
// events/sec source for live monitoring, readable from the HTTP
// goroutine while the simulation emits. Next may be nil to count only.
type CountingSink struct {
	n    atomic.Uint64
	Next Sink
}

// Emit implements Sink.
func (c *CountingSink) Emit(e Event) {
	c.n.Add(1)
	if c.Next != nil {
		c.Next.Emit(e)
	}
}

// Count returns the number of events emitted so far.
func (c *CountingSink) Count() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// statusHandler serves the current RunStatus as JSON. The status
// function is swapped atomically, so the mux can be built before the
// command knows its run shape.
type statusHandler struct {
	fn atomic.Value // func() RunStatus
}

func (h *statusHandler) set(fn func() RunStatus) {
	if fn != nil {
		h.fn.Store(fn)
	}
}

func (h *statusHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	fn, _ := h.fn.Load().(func() RunStatus)
	if fn == nil {
		http.Error(w, "no run status registered", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(fn())
}
