package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Event is one structured trace record. The schema is deliberately
// flat and simulator-agnostic: Time is simulation time, Worker tags the
// emitting workstation (0 for single-workstation runs), Kind is a short
// verb ("dispatch", "commit", "kill", "steal", ...), and the remaining
// fields qualify it where meaningful (zero otherwise).
type Event struct {
	Time   float64
	Worker int
	Kind   string
	Period int
	Length float64
	Tasks  int
}

// Sink consumes trace events. Implementations need not be
// goroutine-safe: the simulators emit from a single goroutine (parallel
// Monte-Carlo buffers per block and replays in deterministic order).
//
// Sink fields on simulator configs are nil-safe: a nil Sink disables
// tracing entirely, and the emission sites guard with a single nil
// check so the disabled cost is one predictable branch.
type Sink interface {
	Emit(Event)
}

// BufferSink collects events in memory — for tests and for the
// deterministic replay of parallel runs.
type BufferSink struct {
	Events []Event
}

// Emit implements Sink.
func (b *BufferSink) Emit(e Event) { b.Events = append(b.Events, e) }

// MultiSink fans one event stream out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(e)
		}
	}
}

// trimFloat formats a float with the shortest round-trip decimal
// representation — deterministic across runs and platforms.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// JSONLSink writes one JSON object per event, one per line. Field
// order and float formatting are fixed, so identical event streams
// produce byte-identical files — the property the determinism
// regression tests assert.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONLSink wraps w in a buffered JSONL exporter. Call Close (or at
// least Flush via Close) before reading the output.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	if s == nil || s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, e.Time, 'g', -1, 64)
	b = append(b, `,"w":`...)
	b = strconv.AppendInt(b, int64(e.Worker), 10)
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, e.Kind)
	b = append(b, `,"period":`...)
	b = strconv.AppendInt(b, int64(e.Period), 10)
	b = append(b, `,"len":`...)
	b = strconv.AppendFloat(b, e.Length, 'g', -1, 64)
	b = append(b, `,"tasks":`...)
	b = strconv.AppendInt(b, int64(e.Tasks), 10)
	b = append(b, '}', '\n')
	s.buf = b
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Close flushes the writer and returns the first error seen.
func (s *JSONLSink) Close() error {
	if s == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// chromeTsScale maps one simulation time unit to Chrome's microsecond
// timestamps: 1 sim unit = 1000 µs = 1 ms, matching displayTimeUnit.
const chromeTsScale = 1000

// ChromeSink exports events in the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// load the output in chrome://tracing or https://ui.perfetto.dev to see
// each worker as a timeline row, dispatched periods as slices (cat
// "commit" or "kill" by outcome), and voluntary-end/steal markers as
// instants. Dispatch events open a slice keyed by (worker, period);
// the matching commit or kill closes it.
type ChromeSink struct {
	w       *bufio.Writer
	buf     []byte
	err     error
	started bool
	n       int
	open    map[int64]chromeSpan
	named   map[int]bool
}

type chromeSpan struct {
	start  float64
	length float64
}

// NewChromeSink wraps w in a trace_event exporter. Close writes the
// JSON trailer; an unclosed file is not valid JSON.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{
		w:     bufio.NewWriterSize(w, 1<<16),
		open:  make(map[int64]chromeSpan),
		named: make(map[int]bool),
	}
}

func (s *ChromeSink) writeRaw(b []byte) {
	if s.err != nil {
		return
	}
	if !s.started {
		if _, err := s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
			s.err = err
			return
		}
		s.started = true
	}
	if s.n > 0 {
		if _, err := s.w.WriteString(",\n"); err != nil {
			s.err = err
			return
		}
	}
	s.n++
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

func (s *ChromeSink) ensureThread(worker int) {
	if s.named[worker] {
		return
	}
	s.named[worker] = true
	name := fmt.Sprintf("worker %d", worker)
	b := s.buf[:0]
	b = append(b, `{"name":"thread_name","ph":"M","pid":0,"tid":`...)
	b = strconv.AppendInt(b, int64(worker), 10)
	b = append(b, `,"args":{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `}}`...)
	s.buf = b
	s.writeRaw(b)
}

// Emit implements Sink.
func (s *ChromeSink) Emit(e Event) {
	if s == nil || s.err != nil {
		return
	}
	s.ensureThread(e.Worker)
	key := int64(e.Worker)<<32 | int64(uint32(e.Period))
	switch e.Kind {
	case "dispatch":
		s.open[key] = chromeSpan{start: e.Time, length: e.Length}
	case "commit", "kill":
		sp, ok := s.open[key]
		if !ok {
			// Tolerate streams without dispatch events: synthesize the
			// span from the reported length.
			sp = chromeSpan{start: e.Time - e.Length, length: e.Length}
		}
		delete(s.open, key)
		dur := (e.Time - sp.start) * chromeTsScale
		if dur < 0 {
			dur = 0
		}
		b := s.buf[:0]
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, "p"+strconv.Itoa(e.Period))
		b = append(b, `,"cat":`...)
		b = strconv.AppendQuote(b, e.Kind)
		b = append(b, `,"ph":"X","ts":`...)
		b = strconv.AppendFloat(b, sp.start*chromeTsScale, 'g', -1, 64)
		b = append(b, `,"dur":`...)
		b = strconv.AppendFloat(b, dur, 'g', -1, 64)
		b = append(b, `,"pid":0,"tid":`...)
		b = strconv.AppendInt(b, int64(e.Worker), 10)
		b = append(b, `,"args":{"period":`...)
		b = strconv.AppendInt(b, int64(e.Period), 10)
		b = append(b, `,"len":`...)
		b = strconv.AppendFloat(b, e.Length, 'g', -1, 64)
		b = append(b, `,"tasks":`...)
		b = strconv.AppendInt(b, int64(e.Tasks), 10)
		b = append(b, `}}`...)
		s.buf = b
		s.writeRaw(b)
	default:
		b := s.buf[:0]
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, e.Kind)
		b = append(b, `,"ph":"i","s":"t","ts":`...)
		b = strconv.AppendFloat(b, e.Time*chromeTsScale, 'g', -1, 64)
		b = append(b, `,"pid":0,"tid":`...)
		b = strconv.AppendInt(b, int64(e.Worker), 10)
		b = append(b, `,"args":{"tasks":`...)
		b = strconv.AppendInt(b, int64(e.Tasks), 10)
		b = append(b, `}}`...)
		s.buf = b
		s.writeRaw(b)
	}
}

// Close writes the JSON trailer and flushes. Periods still open (a
// dispatch whose outcome never arrived, e.g. a run cut off at MaxTime)
// are dropped: trace viewers reject dangling begin events, and a
// truncated run is exactly when that happens.
func (s *ChromeSink) Close() error {
	if s == nil {
		return nil
	}
	if s.err == nil && !s.started {
		// No events: still produce a valid, empty trace.
		if _, err := s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
			s.err = err
		}
		s.started = true
	}
	if s.err == nil {
		if _, err := s.w.WriteString("\n]}\n"); err != nil {
			s.err = err
		}
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}
