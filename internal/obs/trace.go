package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Event is one structured trace record. The schema is deliberately
// flat and simulator-agnostic: Time is simulation time, Worker tags the
// emitting workstation (0 for single-workstation runs), Kind is a short
// verb ("dispatch", "commit", "kill", "steal", ...), and the remaining
// fields qualify it where meaningful (zero otherwise).
//
// Phase, Span and Parent are the span extension (see span.go): Phase is
// PhaseBegin/PhaseEnd for span boundary events and empty for point
// events; Span is the span's ID; Parent attributes the event (span or
// point) to an enclosing span. All three are zero on plain events, and
// the exporters omit them when zero, so span-free traces are unchanged.
type Event struct {
	Time   float64
	Worker int
	Kind   string
	Period int
	Length float64
	Tasks  int
	Phase  string
	Span   uint64
	Parent uint64
}

// spanful reports whether the event carries any span field.
func (e Event) spanful() bool {
	return e.Phase != "" || e.Span != 0 || e.Parent != 0
}

// Sink consumes trace events. Implementations need not be
// goroutine-safe: the simulators emit from a single goroutine (parallel
// Monte-Carlo buffers per block and replays in deterministic order).
//
// Sink fields on simulator configs are nil-safe: a nil Sink disables
// tracing entirely, and the emission sites guard with a single nil
// check so the disabled cost is one predictable branch.
type Sink interface {
	Emit(Event)
}

// BufferSink collects events in memory — for tests and for the
// deterministic replay of parallel runs.
type BufferSink struct {
	Events []Event
}

// Emit implements Sink.
func (b *BufferSink) Emit(e Event) { b.Events = append(b.Events, e) }

// MultiSink fans one event stream out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(e)
		}
	}
}

// trimFloat formats a float with the shortest round-trip decimal
// representation — deterministic across runs and platforms.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendEventJSON renders one event as a single JSON object with fixed
// field order and float formatting, so identical event streams produce
// byte-identical output. Shared by JSONLSink and the flight recorder's
// dump.
func appendEventJSON(b []byte, e Event) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, e.Time, 'g', -1, 64)
	b = append(b, `,"w":`...)
	b = strconv.AppendInt(b, int64(e.Worker), 10)
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, e.Kind)
	b = append(b, `,"period":`...)
	b = strconv.AppendInt(b, int64(e.Period), 10)
	b = append(b, `,"len":`...)
	b = strconv.AppendFloat(b, e.Length, 'g', -1, 64)
	b = append(b, `,"tasks":`...)
	b = strconv.AppendInt(b, int64(e.Tasks), 10)
	if e.spanful() {
		if e.Phase != "" {
			b = append(b, `,"ph":`...)
			b = strconv.AppendQuote(b, e.Phase)
		}
		if e.Span != 0 {
			b = append(b, `,"span":`...)
			b = strconv.AppendUint(b, e.Span, 10)
		}
		if e.Parent != 0 {
			b = append(b, `,"parent":`...)
			b = strconv.AppendUint(b, e.Parent, 10)
		}
	}
	b = append(b, '}', '\n')
	return b
}

// JSONLSink writes one JSON object per event, one per line. Field
// order and float formatting are fixed, so identical event streams
// produce byte-identical files — the property the determinism
// regression tests assert.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONLSink wraps w in a buffered JSONL exporter. Call Close (or at
// least Flush via Close) before reading the output.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	if s == nil || s.err != nil {
		return
	}
	s.buf = appendEventJSON(s.buf[:0], e)
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// Close flushes the writer and returns the first error seen.
func (s *JSONLSink) Close() error {
	if s == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// chromeTsScale maps one simulation time unit to Chrome's microsecond
// timestamps: 1 sim unit = 1000 µs = 1 ms, matching displayTimeUnit.
const chromeTsScale = 1000

// chromePid is the single process ID all rows share; each worker is a
// thread of it. A constant pid plus tid = Worker gives every worker a
// stable identity across runs and policies, which is what lets two
// traces of the same scenario be diffed row by row.
const chromePid = 1

// ChromeSink exports events in the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// load the output in chrome://tracing or https://ui.perfetto.dev to see
// each worker as a timeline row, dispatched periods as slices (cat
// "commit" or "kill" by outcome), span begin/end pairs ("worker",
// "episode", "mc-batch") as nested B/E slices, and voluntary-end/steal
// markers as instants.
//
// Events are buffered per worker (tid) and written at Close sorted by
// timestamp with a stable arrival-order tie-break, so each thread's
// stream is time-ordered even when multiple workers interleave — the
// ordering trace viewers assume when matching B/E pairs. Unbalanced
// span events are repaired at Close: an end with no open begin on its
// thread is dropped, and a begin never ended (a run cut off at MaxTime)
// gets a synthetic end at the thread's last timestamp. The buffering
// means a Chrome trace of a huge run holds every event in memory; for
// such runs use the flight recorder or JSONL instead.
type ChromeSink struct {
	w   *bufio.Writer
	buf []byte
	err error
	seq int
	// open tracks dispatched periods by (worker, period) so a commit or
	// kill closes the matching X slice.
	open map[int64]chromeSpan
	// perTid buffers rendered records by worker; tids remembers
	// first-seen order for deterministic output.
	perTid map[int][]chromeRecord
	tids   []int
}

type chromeSpan struct {
	start  float64
	length float64
}

type chromeRecord struct {
	ts    float64 // microseconds
	seq   int     // arrival order: stable tie-break
	phase byte    // 'B', 'E' or 0 for everything else
	kind  string
	body  []byte
}

// NewChromeSink wraps w in a trace_event exporter. Close writes the
// buffered events and the JSON trailer; an unclosed file is not valid
// JSON.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{
		w:      bufio.NewWriterSize(w, 1<<16),
		open:   make(map[int64]chromeSpan),
		perTid: make(map[int][]chromeRecord),
	}
}

// record buffers one rendered event on worker's thread.
func (s *ChromeSink) record(worker int, ts float64, phase byte, kind string, body []byte) {
	if _, ok := s.perTid[worker]; !ok {
		s.tids = append(s.tids, worker)
	}
	s.perTid[worker] = append(s.perTid[worker], chromeRecord{
		ts: ts, seq: s.seq, phase: phase, kind: kind,
		body: append([]byte(nil), body...),
	})
	s.seq++
}

// Emit implements Sink.
func (s *ChromeSink) Emit(e Event) {
	if s == nil || s.err != nil {
		return
	}
	switch {
	case e.Phase == PhaseBegin:
		b := s.buf[:0]
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, e.Kind)
		b = append(b, `,"cat":"span","ph":"B","ts":`...)
		b = strconv.AppendFloat(b, e.Time*chromeTsScale, 'g', -1, 64)
		b = s.appendPidTid(b, e.Worker)
		b = append(b, `,"args":{"span":`...)
		b = strconv.AppendUint(b, e.Span, 10)
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, e.Parent, 10)
		if e.Tasks != 0 {
			b = append(b, `,"tasks":`...)
			b = strconv.AppendInt(b, int64(e.Tasks), 10)
		}
		b = append(b, `}}`...)
		s.buf = b
		s.record(e.Worker, e.Time*chromeTsScale, 'B', e.Kind, b)
	case e.Phase == PhaseEnd:
		b := s.buf[:0]
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, e.Kind)
		b = append(b, `,"cat":"span","ph":"E","ts":`...)
		b = strconv.AppendFloat(b, e.Time*chromeTsScale, 'g', -1, 64)
		b = s.appendPidTid(b, e.Worker)
		b = append(b, `,"args":{"span":`...)
		b = strconv.AppendUint(b, e.Span, 10)
		b = append(b, `}}`...)
		s.buf = b
		s.record(e.Worker, e.Time*chromeTsScale, 'E', e.Kind, b)
	case e.Kind == "dispatch":
		key := int64(e.Worker)<<32 | int64(uint32(e.Period))
		s.open[key] = chromeSpan{start: e.Time, length: e.Length}
		s.touch(e.Worker)
	case e.Kind == "commit" || e.Kind == "kill":
		key := int64(e.Worker)<<32 | int64(uint32(e.Period))
		sp, ok := s.open[key]
		if !ok {
			// Tolerate streams without dispatch events: synthesize the
			// span from the reported length.
			sp = chromeSpan{start: e.Time - e.Length, length: e.Length}
		}
		delete(s.open, key)
		dur := (e.Time - sp.start) * chromeTsScale
		if dur < 0 {
			dur = 0
		}
		b := s.buf[:0]
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, "p"+strconv.Itoa(e.Period))
		b = append(b, `,"cat":`...)
		b = strconv.AppendQuote(b, e.Kind)
		b = append(b, `,"ph":"X","ts":`...)
		b = strconv.AppendFloat(b, sp.start*chromeTsScale, 'g', -1, 64)
		b = append(b, `,"dur":`...)
		b = strconv.AppendFloat(b, dur, 'g', -1, 64)
		b = s.appendPidTid(b, e.Worker)
		b = append(b, `,"args":{"period":`...)
		b = strconv.AppendInt(b, int64(e.Period), 10)
		b = append(b, `,"len":`...)
		b = strconv.AppendFloat(b, e.Length, 'g', -1, 64)
		b = append(b, `,"tasks":`...)
		b = strconv.AppendInt(b, int64(e.Tasks), 10)
		b = append(b, `}}`...)
		s.buf = b
		s.record(e.Worker, sp.start*chromeTsScale, 0, e.Kind, b)
	default:
		b := s.buf[:0]
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, e.Kind)
		b = append(b, `,"ph":"i","s":"t","ts":`...)
		b = strconv.AppendFloat(b, e.Time*chromeTsScale, 'g', -1, 64)
		b = s.appendPidTid(b, e.Worker)
		b = append(b, `,"args":{"tasks":`...)
		b = strconv.AppendInt(b, int64(e.Tasks), 10)
		b = append(b, `}}`...)
		s.buf = b
		s.record(e.Worker, e.Time*chromeTsScale, 0, e.Kind, b)
	}
}

func (s *ChromeSink) appendPidTid(b []byte, worker int) []byte {
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, chromePid, 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(worker), 10)
	return b
}

// touch registers worker as a known tid without buffering a record, so
// a worker whose only activity is an open dispatch still gets a named
// row.
func (s *ChromeSink) touch(worker int) {
	if _, ok := s.perTid[worker]; !ok {
		s.tids = append(s.tids, worker)
		s.perTid[worker] = nil
	}
}

func (s *ChromeSink) writeRaw(started *bool, n *int, b []byte) {
	if s.err != nil {
		return
	}
	if !*started {
		if _, err := s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
			s.err = err
			return
		}
		*started = true
	}
	if *n > 0 {
		if _, err := s.w.WriteString(",\n"); err != nil {
			s.err = err
			return
		}
	}
	*n++
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Close sorts each thread's buffered events by timestamp (stable in
// arrival order), repairs unbalanced span pairs, writes everything with
// process/thread metadata, and flushes. Periods still open (a dispatch
// whose outcome never arrived, e.g. a run cut off at MaxTime) are
// dropped: trace viewers reject dangling begin events, and a truncated
// run is exactly when that happens.
func (s *ChromeSink) Close() error {
	if s == nil {
		return nil
	}
	started, n := false, 0

	// Metadata first: process name, then one thread_name plus
	// thread_sort_index per tid in sorted order, so rows render stably.
	tids := append([]int(nil), s.tids...)
	sort.Ints(tids)
	if len(tids) > 0 {
		b := s.buf[:0]
		b = append(b, `{"name":"process_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, chromePid, 10)
		b = append(b, `,"tid":0,"args":{"name":"cyclesteal"}}`...)
		s.buf = b
		s.writeRaw(&started, &n, b)
	}
	for _, tid := range tids {
		name := fmt.Sprintf("worker %d", tid)
		if tid < 0 {
			// Negative workers are synthetic rows (the Monte-Carlo
			// coordinator emits mc-batch spans as worker -1).
			name = "coordinator"
		}
		b := s.buf[:0]
		b = append(b, `{"name":"thread_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, chromePid, 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(tid), 10)
		b = append(b, `,"args":{"name":`...)
		b = strconv.AppendQuote(b, name)
		b = append(b, `}}`...)
		s.buf = b
		s.writeRaw(&started, &n, b)
		b = s.buf[:0]
		b = append(b, `{"name":"thread_sort_index","ph":"M","pid":`...)
		b = strconv.AppendInt(b, chromePid, 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(tid), 10)
		b = append(b, `,"args":{"sort_index":`...)
		b = strconv.AppendInt(b, int64(tid), 10)
		b = append(b, `}}`...)
		s.buf = b
		s.writeRaw(&started, &n, b)
	}

	for _, tid := range tids {
		recs := s.perTid[tid]
		sort.SliceStable(recs, func(i, j int) bool {
			if recs[i].ts != recs[j].ts { //lint:allow floatcmp equal timestamps defer to stable arrival order
				return recs[i].ts < recs[j].ts
			}
			return recs[i].seq < recs[j].seq
		})
		depth := 0
		lastTs := 0.0
		var openKinds []string
		for _, r := range recs {
			if r.ts > lastTs {
				lastTs = r.ts
			}
			switch r.phase {
			case 'B':
				depth++
				openKinds = append(openKinds, r.kind)
			case 'E':
				if depth == 0 {
					continue // orphan end: would corrupt the viewer's stack
				}
				depth--
				openKinds = openKinds[:len(openKinds)-1]
			}
			s.writeRaw(&started, &n, r.body)
		}
		// Synthesize ends for spans left open, innermost first.
		for i := len(openKinds) - 1; i >= 0; i-- {
			b := s.buf[:0]
			b = append(b, `{"name":`...)
			b = strconv.AppendQuote(b, openKinds[i])
			b = append(b, `,"cat":"span","ph":"E","ts":`...)
			b = strconv.AppendFloat(b, lastTs, 'g', -1, 64)
			b = s.appendPidTid(b, tid)
			b = append(b, `,"args":{"truncated":true}}`...)
			s.buf = b
			s.writeRaw(&started, &n, b)
		}
	}

	if s.err == nil && !started {
		// No events: still produce a valid, empty trace.
		if _, err := s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
			s.err = err
		}
		started = true
	}
	if s.err == nil {
		if _, err := s.w.WriteString("\n]}\n"); err != nil {
			s.err = err
		}
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}
