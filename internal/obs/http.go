package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler serves the registry in the Prometheus text exposition
// format, negotiating the flavour on the Accept header: a scraper
// asking for application/openmetrics-text gets the OpenMetrics
// exposition (which is where histogram-bucket exemplars live);
// everything else gets the classic exemplar-free 0.0.4 text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if acceptsOpenMetrics(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// acceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics exposition. Prometheus lists it as the preferred media
// type with version and q parameters; matching the media type of each
// alternative is enough, and anything unrecognised falls back to the
// classic format.
func acceptsOpenMetrics(accept string) bool {
	for _, alt := range strings.Split(accept, ",") {
		mediaType, _, _ := strings.Cut(alt, ";")
		if strings.TrimSpace(mediaType) == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

// PublishExpvar publishes the registry under the given expvar name, so
// /debug/vars includes a live JSON snapshot of every metric. Counters
// render as integers, gauges as floats, histograms as
// {count, sum, buckets}. Publishing the same name twice is a no-op
// (expvar forbids re-publication); the first registry wins.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} {
		out := make(map[string]interface{})
		for _, e := range r.snapshot() {
			switch e.kind {
			case kindCounter:
				out[e.name] = e.c.Value()
			case kindGauge:
				out[e.name] = e.g.Value()
			case kindHistogram:
				buckets := make(map[string]uint64, len(e.h.counts))
				cum := uint64(0)
				for i := range e.h.counts {
					cum += e.h.counts[i].Load()
					le := "+Inf"
					if i < len(e.h.upper) {
						le = formatFloat(e.h.upper[i])
					}
					buckets[le] = cum
				}
				out[e.name] = map[string]interface{}{
					"count":   e.h.Count(),
					"sum":     e.h.Sum(),
					"buckets": buckets,
				}
			case kindQuantile:
				q := map[string]interface{}{
					"count": e.q.Count(),
					"sum":   e.q.Sum(),
				}
				for k, v := range e.q.Snapshot() {
					q[k] = v
				}
				out[e.name] = q
			}
		}
		return out
	}))
}

// NewMux builds an http.ServeMux exposing /metrics (Prometheus text,
// when reg is non-nil), /debug/vars (expvar) and the /debug/pprof
// endpoints — explicitly wired rather than via the pprof package's
// DefaultServeMux side effects, so importing obs never mutates global
// HTTP state.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics/pprof HTTP server.
type Server struct {
	srv    *http.Server
	lis    net.Listener
	status statusHandler
}

// Serve starts an HTTP server on addr (e.g. "localhost:9090" or
// ":0" for an ephemeral port) exposing reg via NewMux plus the
// /debug/csrun run-status endpoint (404 until SetStatus is called). It
// returns once the listener is bound; serving continues in a background
// goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	if reg != nil {
		reg.PublishExpvar("metrics")
	}
	s := &Server{lis: lis}
	mux := NewMux(reg)
	mux.Handle("/debug/csrun", &s.status)
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// SetStatus registers the snapshot function behind /debug/csrun. It is
// nil-safe on both sides (a nil server or nil fn is a no-op), so
// commands can wire status unconditionally.
func (s *Server) SetStatus(fn func() RunStatus) {
	if s == nil || fn == nil {
		return
	}
	s.status.set(fn)
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close shuts the server down immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
