package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Time: 0, Worker: 0, Kind: "dispatch", Period: 0, Length: 4},
		{Time: 4, Worker: 0, Kind: "commit", Period: 0, Length: 4, Tasks: 3},
		{Time: 4, Worker: 1, Kind: "dispatch", Period: 0, Length: 2.5},
		{Time: 5, Worker: 1, Kind: "kill", Period: 0, Length: 2.5, Tasks: 2},
		{Time: 5, Worker: 0, Kind: "steal", Tasks: 2},
		{Time: 6, Worker: 0, Kind: "voluntary-end", Period: -1},
	}
}

func TestJSONLDeterministicAndParsable(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		s := NewJSONLSink(&buf)
		for _, e := range sampleEvents() {
			s.Emit(e)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("JSONL output is not byte-identical across runs")
	}
	lines := strings.Split(strings.TrimSpace(string(a)), "\n")
	if len(lines) != len(sampleEvents()) {
		t.Fatalf("got %d lines, want %d", len(lines), len(sampleEvents()))
	}
	var first struct {
		T      float64 `json:"t"`
		W      int     `json:"w"`
		Kind   string  `json:"kind"`
		Period int     `json:"period"`
		Len    float64 `json:"len"`
		Tasks  int     `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if first.Kind != "dispatch" || first.Len != 4 {
		t.Errorf("line 0 round-trip = %+v", first)
	}
}

// chromeTrace is the trace_event container format.
type chromeTrace struct {
	DisplayTimeUnit string                   `json:"displayTimeUnit"`
	TraceEvents     []map[string]interface{} `json:"traceEvents"`
}

func TestChromeSinkValidTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	for _, e := range sampleEvents() {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var slices, instants, meta int
	for _, ev := range tr.TraceEvents {
		ph, _ := ev["ph"].(string)
		for _, key := range []string{"ph", "pid", "tid", "name"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event missing %q: %v", key, ev)
			}
		}
		switch ph {
		case "X":
			slices++
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
			if _, ok := ev["ts"]; !ok {
				t.Errorf("complete event missing ts: %v", ev)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q: %v", ph, ev)
		}
	}
	// 1 commit slice + 1 kill slice, 2 instants (steal, voluntary-end),
	// 1 process_name plus thread_name and thread_sort_index per worker.
	if slices != 2 || instants != 2 || meta != 5 {
		t.Errorf("got %d slices, %d instants, %d metadata; want 2, 2, 5\n%s",
			slices, instants, meta, buf.String())
	}
}

func TestChromeSinkKillWithoutDispatch(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.Emit(Event{Time: 7, Worker: 3, Kind: "kill", Period: 2, Length: 3})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	found := false
	for _, ev := range tr.TraceEvents {
		if ev["ph"] == "X" {
			found = true
			if ts := ev["ts"].(float64); ts != 4*chromeTsScale {
				t.Errorf("synthesized span ts = %g, want %g", ts, 4.0*chromeTsScale)
			}
		}
	}
	if !found {
		t.Error("kill without dispatch produced no slice")
	}
}

func TestChromeSinkEmptyIsValid(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(tr.TraceEvents) != 0 {
		t.Errorf("empty trace has %d events", len(tr.TraceEvents))
	}
}

func TestBufferAndMultiSink(t *testing.T) {
	var a, b BufferSink
	m := MultiSink{&a, nil, &b}
	for _, e := range sampleEvents() {
		m.Emit(e)
	}
	if len(a.Events) != len(sampleEvents()) || len(b.Events) != len(sampleEvents()) {
		t.Errorf("multi-sink fan-out: %d, %d events", len(a.Events), len(b.Events))
	}
	if a.Events[0].Kind != "dispatch" {
		t.Errorf("first buffered event = %+v", a.Events[0])
	}
}

func TestNilSinksAreSafe(t *testing.T) {
	var j *JSONLSink
	var c *ChromeSink
	j.Emit(Event{})
	c.Emit(Event{})
	if err := j.Close(); err != nil {
		t.Error(err)
	}
	if err := c.Close(); err != nil {
		t.Error(err)
	}
}
