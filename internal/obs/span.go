package obs

// Span support: a lightweight begin/end pair layered on the existing
// Event schema and Sink interface. A Spanner allocates span IDs
// sequentially from 1, so a run that creates one Spanner per trace gets
// deterministic IDs and byte-identical traces across repeats — the same
// reproducibility contract the point events already honor.
//
// Span events reuse the flat Event struct: Phase is PhaseBegin or
// PhaseEnd, Span is the span's own ID and Parent its parent's (0 for
// roots). Point events may also carry a Parent, attributing them to the
// enclosing span without opening one (that is how dispatch/commit/kill
// events hang off their episode span). The JSONL exporter appends the
// span fields only when set, so traces without spans are byte-identical
// to pre-span output; the Chrome exporter renders spans as nested
// trace_event "B"/"E" pairs.
//
// Construct span events through a Spanner (or the nowsim.Obs wrappers
// that hold one), never as raw Event literals: the obssafe analyzer
// flags literals that set Phase/Span/Parent outside obs packages,
// because hand-rolled span events bypass ID allocation and make
// unbalanced begin/end pairs easy.

// Phase values for span events. The empty string marks a point event.
const (
	PhaseBegin = "B"
	PhaseEnd   = "E"
)

// SpanAttrs carries the optional Event fields recorded on a span's
// begin event.
type SpanAttrs struct {
	Period int
	Length float64
	Tasks  int
}

// Spanner allocates span IDs and emits begin/end events through a sink.
// A nil *Spanner (from NewSpanner(nil)) is fully inert: Start returns
// an inactive Span whose methods no-op, so callers need no nil checks.
// Spanner is not goroutine-safe; like sinks, it is driven from the
// single emitting goroutine.
type Spanner struct {
	sink Sink
	next uint64
}

// NewSpanner returns a Spanner emitting through sink, or nil (inert)
// when sink is nil.
func NewSpanner(sink Sink) *Spanner {
	if sink == nil {
		return nil
	}
	return &Spanner{sink: sink}
}

// Span is one live span. The zero Span is inactive: End and Child
// no-op (Child returns another inactive Span) and ID returns 0.
type Span struct {
	sp     *Spanner
	id     uint64
	parent uint64
	worker int
	kind   string
}

// Start opens a root span of the given kind on worker at the given
// simulation time and emits its begin event.
func (s *Spanner) Start(time float64, worker int, kind string, a SpanAttrs) Span {
	return s.start(time, worker, kind, 0, a)
}

func (s *Spanner) start(time float64, worker int, kind string, parent uint64, a SpanAttrs) Span {
	if s == nil {
		return Span{}
	}
	s.next++
	sp := Span{sp: s, id: s.next, parent: parent, worker: worker, kind: kind}
	s.sink.Emit(Event{
		Time: time, Worker: worker, Kind: kind,
		Period: a.Period, Length: a.Length, Tasks: a.Tasks,
		Phase: PhaseBegin, Span: sp.id, Parent: parent,
	})
	return sp
}

// Child opens a child span of s (same worker) and emits its begin
// event. On an inactive Span it returns another inactive Span.
func (s Span) Child(time float64, kind string, a SpanAttrs) Span {
	if s.sp == nil {
		return Span{}
	}
	return s.sp.start(time, s.worker, kind, s.id, a)
}

// End emits the span's end event. Ending an inactive Span is a no-op;
// ending twice emits twice (callers own the pairing, and the Chrome
// exporter drops unbalanced ends).
func (s Span) End(time float64) {
	if s.sp == nil {
		return
	}
	s.sp.sink.Emit(Event{
		Time: time, Worker: s.worker, Kind: s.kind,
		Phase: PhaseEnd, Span: s.id, Parent: s.parent,
	})
}

// ID returns the span's trace-unique ID, or 0 for an inactive Span —
// the value point events carry in their Parent field to attach to this
// span.
func (s Span) ID() uint64 { return s.id }

// Attach returns e with its Parent set to this span — the sanctioned
// way to attribute a point event to a span without a raw literal (which
// obssafe would flag). On an inactive Span, e passes through with
// Parent 0, i.e. unattributed.
func (s Span) Attach(e Event) Event {
	e.Parent = s.id
	return e
}

// Active reports whether the span will emit on End.
func (s Span) Active() bool { return s.sp != nil }
