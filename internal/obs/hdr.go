package obs

import (
	"math"
	"sync/atomic"
)

// QuantileHist is a lock-free log-bucketed histogram (HDR-style) with a
// fixed relative error, for the tail statistics fixed-bucket histograms
// cannot resolve: period lengths, per-episode committed work, bundle
// latencies and idle times all span orders of magnitude, and the
// interesting effects live at p99 and beyond.
//
// Positive values are bucketed by their binary exponent plus the top
// hdrSubBits mantissa bits: every octave [2^e, 2^(e+1)) splits into
// hdrSubCount linear sub-buckets, so a bucket's width is at most
// 1/hdrSubCount of its lower bound and the mid-bucket representative
// returned by Quantile is within RelativeError (= 1/(2·hdrSubCount)) of
// any value in the bucket. Exponents are clamped to [hdrMinExp,
// hdrMaxExp]; values at or below zero land in a dedicated zero bucket
// whose representative is 0.
//
// Observe is two atomic adds plus a CAS loop for the running sum and
// max — no locks, safe under concurrent writers, and safe to snapshot
// from another goroutine while the simulation emits (the live-monitor
// path). A quiescent histogram yields deterministic quantiles.
type QuantileHist struct {
	counts [hdrBuckets]atomic.Uint64
	zero   atomic.Uint64
	n      atomic.Uint64
	sum    Gauge
	max    atomic.Uint64 // float64 bits; valid only when n > 0
}

const (
	hdrSubBits  = 5
	hdrSubCount = 1 << hdrSubBits // 32 sub-buckets per octave
	hdrMinExp   = -64             // smallest distinguished value: 2^-64
	hdrMaxExp   = 64              // everything >= 2^64 shares the top octave
	hdrBuckets  = (hdrMaxExp - hdrMinExp + 1) * hdrSubCount
)

// HDRRelativeError is the advertised worst-case relative error of
// Quantile against any exact order statistic in the same bucket:
// half of one sub-bucket's width over its lower bound.
const HDRRelativeError = 1.0 / (2 * hdrSubCount)

// hdrIndex maps a positive value to its bucket index.
func hdrIndex(v float64) int {
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7ff) - 1023
	if exp < hdrMinExp {
		return 0
	}
	if exp > hdrMaxExp {
		return hdrBuckets - 1
	}
	sub := int(bits >> (52 - hdrSubBits) & (hdrSubCount - 1))
	return (exp-hdrMinExp)*hdrSubCount + sub
}

// hdrValue returns the representative (mid-bucket) value of bucket i.
func hdrValue(i int) float64 {
	exp := hdrMinExp + i/hdrSubCount
	sub := i % hdrSubCount
	return math.Ldexp(1+(float64(sub)+0.5)/hdrSubCount, exp)
}

// Observe records one value. NaN observations are dropped; values at or
// below zero count in the zero bucket.
func (h *QuantileHist) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v <= 0 {
		h.zero.Add(1)
		v = 0
	} else {
		h.counts[hdrIndex(v)].Add(1)
	}
	h.n.Add(1)
	h.sum.Add(v)
	// v is >= 0 here, so the zero initial bits are a valid floor.
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *QuantileHist) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observations (negatives counted as 0).
func (h *QuantileHist) Sum() float64 { return h.sum.Value() }

// Max returns the largest observation, or 0 when empty.
func (h *QuantileHist) Max() float64 {
	if h.n.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile returns the q-quantile (q in [0, 1]) as the representative
// value of the bucket holding the ceil(q·n)-th smallest observation,
// within HDRRelativeError of the exact order statistic. It returns NaN
// on an empty histogram and clamps q outside [0, 1].
func (h *QuantileHist) Quantile(q float64) float64 {
	n := h.n.Load()
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	cum := h.zero.Load()
	if rank <= cum {
		return 0
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if rank <= cum {
			return hdrValue(i)
		}
	}
	// Concurrent writers can race n ahead of the bucket counts; the
	// largest seen value is the right answer for the top rank.
	return h.Max()
}

// standardQuantiles are the exposed summary quantiles.
var standardQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// standardQuantileLabels label standardQuantiles in exposition and
// status snapshots (p50 ... p999).
var standardQuantileLabels = []string{"p50", "p90", "p99", "p999"}

// Snapshot returns the standard quantile set keyed p50/p90/p99/p999 —
// the payload the /debug/csrun endpoint and csmon render. Empty
// histograms return nil.
func (h *QuantileHist) Snapshot() map[string]float64 {
	if h.Count() == 0 {
		return nil
	}
	out := make(map[string]float64, len(standardQuantiles))
	for i, q := range standardQuantiles {
		out[standardQuantileLabels[i]] = h.Quantile(q)
	}
	return out
}
