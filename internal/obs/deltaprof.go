package obs

// On-demand delta profiling: GET /debug/delta/allocs and
// /debug/delta/heap diff two runtime.MemProfile snapshots taken
// `seconds` apart and return the stacks whose allocation (or heap
// residency) grew the most in between, symbolized and JSON-encoded —
// "where did the garbage come from in the last two seconds" without
// restarting the server or shipping pprof protobufs to another tool.
//
// Stack-level numbers inherit runtime.MemProfileRate sampling (one
// sample per ~512 KiB allocated by default), so small allocation sites
// may be invisible; the top-level totals come from the exact
// runtime/metrics allocation counters and are not sampled. Each
// snapshot is preceded by runtime.GC() so the profile reflects
// completed mark cycles — the endpoint is a diagnostic, not a hot
// path.

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// DeltaMode selects what a delta profile ranks by.
type DeltaMode string

const (
	// DeltaAllocs ranks stacks by bytes allocated during the window —
	// allocation churn, the GC-pressure view.
	DeltaAllocs DeltaMode = "allocs"
	// DeltaHeap ranks stacks by growth of live (in-use) bytes during
	// the window — residency, the leak-hunting view.
	DeltaHeap DeltaMode = "heap"
)

// DeltaStack is one call stack's growth between the two snapshots.
type DeltaStack struct {
	Funcs        []string `json:"funcs"` // innermost first, "pkg.Fn file:line"
	AllocObjects int64    `json:"alloc_objects"`
	AllocBytes   int64    `json:"alloc_bytes"`
	InUseObjects int64    `json:"inuse_objects"`
	InUseBytes   int64    `json:"inuse_bytes"`
}

// DeltaProfile is the /debug/delta/{allocs,heap} payload.
type DeltaProfile struct {
	Mode    DeltaMode `json:"mode"`
	Seconds float64   `json:"seconds"`
	// Exact process-wide deltas from runtime/metrics (not sampled).
	TotalAllocObjects uint64 `json:"total_alloc_objects"`
	TotalAllocBytes   uint64 `json:"total_alloc_bytes"`
	// MemProfileRate documents the sampling granularity of the
	// per-stack numbers below.
	MemProfileRate int          `json:"mem_profile_rate"`
	Stacks         []DeltaStack `json:"stacks"`
}

// memSnapshot is one MemProfile capture keyed by call stack.
type memSnapshot map[[32]uintptr]runtime.MemProfileRecord

func takeMemSnapshot() memSnapshot {
	// Two GCs: the first queues recently dropped objects for sweep, the
	// second updates the profile with their death — the same reason
	// net/http/pprof's heap?gc=1 runs a GC before writing.
	runtime.GC()
	n, _ := runtime.MemProfile(nil, true)
	recs := make([]runtime.MemProfileRecord, n+64)
	for {
		var ok bool
		n, ok = runtime.MemProfile(recs, true)
		if ok {
			recs = recs[:n]
			break
		}
		recs = make([]runtime.MemProfileRecord, n+64)
	}
	snap := make(memSnapshot, len(recs))
	for _, r := range recs {
		key := r.Stack0
		if have, dup := snap[key]; dup {
			have.AllocObjects += r.AllocObjects
			have.AllocBytes += r.AllocBytes
			have.FreeObjects += r.FreeObjects
			have.FreeBytes += r.FreeBytes
			snap[key] = have
		} else {
			snap[key] = r
		}
	}
	return snap
}

// diffSnapshots returns per-stack growth of after over before. Stacks
// new in after count in full; stacks only in before are dropped (their
// deltas are <= 0 in every mode we rank by).
func diffSnapshots(before, after memSnapshot) []DeltaStack {
	out := make([]DeltaStack, 0, 32)
	for key, a := range after {
		b := before[key] // zero record when absent
		d := DeltaStack{
			AllocObjects: a.AllocObjects - b.AllocObjects,
			AllocBytes:   a.AllocBytes - b.AllocBytes,
			InUseObjects: a.InUseObjects() - b.InUseObjects(),
			InUseBytes:   a.InUseBytes() - b.InUseBytes(),
		}
		if d.AllocObjects == 0 && d.AllocBytes == 0 && d.InUseObjects == 0 && d.InUseBytes == 0 {
			continue
		}
		d.Funcs = symbolize(a.Stack())
		out = append(out, d)
	}
	return out
}

func symbolize(pcs []uintptr) []string {
	if len(pcs) == 0 {
		return nil
	}
	frames := runtime.CallersFrames(pcs)
	var out []string
	for {
		f, more := frames.Next()
		if f.Function != "" {
			out = append(out, f.Function+" "+f.File+":"+strconv.Itoa(f.Line))
		}
		if !more {
			break
		}
	}
	return out
}

// DeltaProfileHandler serves one delta-profile mode. Query parameters:
// seconds (float, default 2, clamped to [0.05, 60]) and top (int,
// default 20, the number of stacks returned). The wait honours request
// cancellation, so an impatient client does not pin the handler.
func DeltaProfileHandler(mode DeltaMode) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		seconds := 2.0
		if v := r.URL.Query().Get("seconds"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, "bad seconds: "+err.Error(), http.StatusBadRequest)
				return
			}
			seconds = f
		}
		if seconds < 0.05 {
			seconds = 0.05
		}
		if seconds > 60 {
			seconds = 60
		}
		top := 20
		if v := r.URL.Query().Get("top"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, "bad top", http.StatusBadRequest)
				return
			}
			top = n
		}

		objs0, bytes0 := HeapAllocs()
		before := takeMemSnapshot()
		select {
		case <-time.After(time.Duration(seconds * float64(time.Second))):
		case <-r.Context().Done():
			return
		}
		after := takeMemSnapshot()
		objs1, bytes1 := HeapAllocs()

		stacks := diffSnapshots(before, after)
		sort.Slice(stacks, func(i, j int) bool {
			if mode == DeltaHeap {
				return stacks[i].InUseBytes > stacks[j].InUseBytes
			}
			return stacks[i].AllocBytes > stacks[j].AllocBytes
		})
		if len(stacks) > top {
			stacks = stacks[:top]
		}
		resp := DeltaProfile{
			Mode:              mode,
			Seconds:           seconds,
			TotalAllocObjects: objs1 - objs0,
			TotalAllocBytes:   bytes1 - bytes0,
			MemProfileRate:    runtime.MemProfileRate,
			Stacks:            stacks,
		}
		if resp.Stacks == nil {
			resp.Stacks = []DeltaStack{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}
