package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
	"time"
)

func TestRuntimeBridgeNilSafe(t *testing.T) {
	var b *RuntimeBridge
	b.Start()
	//lint:allow goroutinecap nil receiver: Start is a no-op and spawns nothing
	b.SampleNow()
	b.Stop()
	if b.LeakSuspected() {
		t.Errorf("nil bridge suspects a leak")
	}
}

func TestRuntimeBridgePublishesSeries(t *testing.T) {
	reg := NewRegistry()
	b := NewRuntimeBridge(reg, RuntimeBridgeConfig{})
	b.SampleNow()
	runtime.GC() // guarantee at least one completed cycle between samples
	b.SampleNow()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"cs_runtime_goroutines ",
		"cs_runtime_heap_live_bytes ",
		"cs_runtime_heap_goal_bytes ",
		"cs_runtime_mem_total_bytes ",
		"cs_runtime_gc_cycles_total ",
		"cs_runtime_alloc_objects_total ",
		"cs_runtime_alloc_bytes_total ",
		`cs_runtime_gc_pause_ms{quantile="0.99"}`,
		`cs_runtime_sched_latency_ms{quantile="0.5"}`,
		"cs_runtime_goroutine_limit ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if b.goroutines.Value() < 1 {
		t.Errorf("goroutine gauge = %v, want >= 1", b.goroutines.Value())
	}
	if b.heapLive.Value() <= 0 {
		t.Errorf("heap live gauge = %v, want > 0", b.heapLive.Value())
	}
	// The forced GC between the two samples must surface as a counter
	// delta, proving cumulative runtime counters publish monotonically.
	if got := b.gcCycles.Value(); got < 1 {
		t.Errorf("gc cycles counter = %d, want >= 1", got)
	}
	if got := b.allocObjs.Value(); got == 0 {
		t.Errorf("alloc objects counter = 0, want > 0")
	}
}

func TestRuntimeBridgeStartStop(t *testing.T) {
	reg := NewRegistry()
	b := NewRuntimeBridge(reg, RuntimeBridgeConfig{Interval: time.Millisecond})
	b.Start()
	//lint:allow goroutinecap idempotent-Start is the assertion; the bridge is internally synchronized
	b.Start() // second Start is a no-op, not a second goroutine
	// The immediate sample inside Start populates the gauges without
	// waiting a tick.
	if b.goroutines.Value() < 1 {
		t.Errorf("no immediate sample on Start: goroutines = %v", b.goroutines.Value())
	}
	b.Stop()
	b.Stop() // idempotent
}

func TestRuntimeBridgeWatchdog(t *testing.T) {
	reg := NewRegistry()
	b := NewRuntimeBridge(reg, RuntimeBridgeConfig{LeakLimit: 10, LeakConsecutive: 2})

	b.watchdogLocked(50)
	if b.LeakSuspected() {
		t.Fatalf("one sample over the limit already flagged")
	}
	b.watchdogLocked(50)
	if !b.LeakSuspected() {
		t.Fatalf("two consecutive samples over the limit not flagged")
	}
	if got := b.leakEvents.Value(); got != 1 {
		t.Errorf("leak events = %d, want 1", got)
	}
	// Recovery clears the flag and resets the streak.
	b.watchdogLocked(5)
	if b.LeakSuspected() {
		t.Fatalf("flag not cleared after a healthy sample")
	}
	b.watchdogLocked(50)
	if b.LeakSuspected() {
		t.Fatalf("streak not reset: one post-recovery sample flagged")
	}
	b.watchdogLocked(50)
	if !b.LeakSuspected() || b.leakEvents.Value() != 2 {
		t.Errorf("second leak episode not counted: suspected=%v events=%d",
			b.LeakSuspected(), b.leakEvents.Value())
	}
}

func TestRuntimeBridgeWatchdogDerivesLimit(t *testing.T) {
	reg := NewRegistry()
	b := NewRuntimeBridge(reg, RuntimeBridgeConfig{})
	b.watchdogLocked(4)
	if b.leakLimit != 128 {
		t.Errorf("derived limit = %d, want the 128 floor", b.leakLimit)
	}
	b2 := NewRuntimeBridge(NewRegistry(), RuntimeBridgeConfig{})
	b2.watchdogLocked(100)
	if b2.leakLimit != 800 {
		t.Errorf("derived limit = %d, want 8x first sample", b2.leakLimit)
	}
}

func TestHeapAllocsMonotone(t *testing.T) {
	objs0, bytes0 := HeapAllocs()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	runtime.KeepAlive(sink)
	objs1, bytes1 := HeapAllocs()
	if objs1 <= objs0 || bytes1 <= bytes0 {
		t.Errorf("counters did not advance: objects %d->%d bytes %d->%d",
			objs0, objs1, bytes0, bytes1)
	}
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{1, 1, 2},
		Buckets: []float64{0, 1, 2, 4},
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0, 1},    // rank clamps to 1 -> first bucket's upper bound
		{0.25, 1}, // rank 1
		{0.5, 2},  // rank 2 -> second bucket
		{1, 4},    // rank 4 -> last bucket
	} {
		//lint:allow floatcmp quantiles resolve to exact bucket boundaries
		if got := histQuantile(h, tc.q); got != tc.want {
			t.Errorf("q=%v: got %v, want %v", tc.q, got, tc.want)
		}
	}
	// Unbounded top bucket falls back to its finite lower bound.
	inf := &metrics.Float64Histogram{
		Counts:  []uint64{1},
		Buckets: []float64{8, math.Inf(1)},
	}
	if got := histQuantile(inf, 1); got != 8 {
		t.Errorf("+Inf bucket: got %v, want lower bound 8", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Errorf("empty histogram: got %v, want 0", got)
	}
}

func TestReadRuntimeHealth(t *testing.T) {
	runtime.GC()
	h := ReadRuntimeHealth()
	if h.GCCycles < 1 {
		t.Errorf("gc_cycles = %d, want >= 1 after a forced GC", h.GCCycles)
	}
	if h.GCPauseTotalMS <= 0 {
		t.Errorf("gc_pause_total_ms = %v, want > 0", h.GCPauseTotalMS)
	}
	if h.HeapAllocBytes == 0 || h.HeapSysBytes == 0 || h.NextGCBytes == 0 {
		t.Errorf("heap numbers zero: %+v", h)
	}
	if h.NumGoroutine < 1 {
		t.Errorf("num_goroutine = %d", h.NumGoroutine)
	}
	if h.GoroutineLeakSuspected {
		t.Errorf("leak suspected without a bridge")
	}
}
