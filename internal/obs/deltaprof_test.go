package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestDeltaProfileHandlerAllocs(t *testing.T) {
	h := DeltaProfileHandler(DeltaAllocs)

	// Churn allocations while the profiling window is open so the exact
	// totals have something to count.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = make([]byte, 64<<10)
			}
		}
	}()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/delta/allocs?seconds=0.05&top=5", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var p DeltaProfile
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if p.Mode != DeltaAllocs {
		t.Errorf("mode = %q, want allocs", p.Mode)
	}
	//lint:allow floatcmp the handler echoes the parsed query value verbatim
	if p.Seconds != 0.05 {
		t.Errorf("seconds = %v, want 0.05", p.Seconds)
	}
	if p.TotalAllocBytes == 0 || p.TotalAllocObjects == 0 {
		t.Errorf("exact totals zero under an allocation churn: %+v", p)
	}
	if p.MemProfileRate <= 0 {
		t.Errorf("mem_profile_rate = %d", p.MemProfileRate)
	}
	if len(p.Stacks) > 5 {
		t.Errorf("top=5 returned %d stacks", len(p.Stacks))
	}
	for _, s := range p.Stacks {
		if len(s.Funcs) == 0 {
			t.Errorf("stack with no symbolized frames: %+v", s)
		}
	}
}

func TestDeltaProfileHandlerHeapMode(t *testing.T) {
	h := DeltaProfileHandler(DeltaHeap)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/?seconds=0.01", nil)) // clamps to 0.05
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var p DeltaProfile
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	//lint:allow floatcmp the clamp floor is an exact constant
	if p.Mode != DeltaHeap || p.Seconds != 0.05 {
		t.Errorf("mode=%q seconds=%v, want heap/0.05", p.Mode, p.Seconds)
	}
	if p.Stacks == nil {
		t.Errorf("stacks must encode as [], not null")
	}
}

func TestDeltaProfileHandlerBadRequests(t *testing.T) {
	h := DeltaProfileHandler(DeltaAllocs)
	for _, q := range []string{"?seconds=x", "?top=0", "?top=x"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/"+q, nil))
		if rec.Code != 400 {
			t.Errorf("%s: status = %d, want 400", q, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/", nil))
	if rec.Code != 405 {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

func TestDeltaProfileHandlerHonoursCancellation(t *testing.T) {
	h := DeltaProfileHandler(DeltaAllocs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/?seconds=60", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()
	<-done // must return promptly, not sleep 60s
	if rec.Body.Len() != 0 {
		t.Errorf("cancelled request produced a body: %s", rec.Body.String())
	}
}

func TestDiffSnapshotsCountsNewStacks(t *testing.T) {
	var key [32]uintptr
	key[0] = 1
	before := memSnapshot{}
	after := memSnapshot{}
	var rec = after[key] // zero
	rec.AllocObjects = 10
	rec.AllocBytes = 1024
	after[key] = rec
	ds := diffSnapshots(before, after)
	if len(ds) != 1 || ds[0].AllocObjects != 10 || ds[0].AllocBytes != 1024 {
		t.Fatalf("new-stack delta = %+v", ds)
	}
	// Unchanged stacks are elided.
	if ds2 := diffSnapshots(after, after); len(ds2) != 0 {
		t.Errorf("identical snapshots produced deltas: %+v", ds2)
	}
}
