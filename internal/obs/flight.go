package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// FlightRecorder is a bounded ring-buffer sink: it keeps the last N
// events and drops from the head, counting what it dropped. A 10^7-step
// farm run stays debuggable without a multi-gigabyte JSONL file — any
// command can enable it with -flight N and dump the tail on failure or
// SIGQUIT.
//
// Unlike the file sinks, Emit takes a mutex: the dump path (a signal
// handler or a failure branch) runs on another goroutine, and a flight
// recorder is opt-in, so the lock is never on an uninstrumented path.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
	total   uint64
}

// DefaultFlightEvents is the ring capacity when -flight is enabled
// without an explicit size.
const DefaultFlightEvents = 4096

// NewFlightRecorder returns a recorder keeping the last n events
// (DefaultFlightEvents when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &FlightRecorder{buf: make([]Event, n)}
}

// Emit implements Sink. Once the ring is full, each new event drops the
// oldest retained one.
func (f *FlightRecorder) Emit(e Event) {
	f.mu.Lock()
	f.total++
	if f.wrapped {
		f.dropped++
	}
	f.buf[f.next] = e
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.wrapped = true
	}
	f.mu.Unlock()
}

// Snapshot returns the retained events in emission order plus the count
// of head-dropped events. The slice is a copy; the recorder keeps
// running.
func (f *FlightRecorder) Snapshot() (events []Event, dropped uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wrapped {
		events = make([]Event, 0, len(f.buf))
		events = append(events, f.buf[f.next:]...)
		events = append(events, f.buf[:f.next]...)
	} else {
		events = append([]Event(nil), f.buf[:f.next]...)
	}
	return events, f.dropped
}

// Dropped returns the number of events lost to head-drop so far.
func (f *FlightRecorder) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Total returns the number of events ever emitted to the recorder.
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Dump writes the retained tail as JSONL: a header object
// {"flight":{"kept":K,"dropped":D,"total":T}} followed by one event
// per line in the JSONLSink encoding, so existing trace tooling reads
// the dump unchanged.
func (f *FlightRecorder) Dump(w io.Writer) error {
	events, dropped := f.Snapshot()
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf []byte
	buf = append(buf, `{"flight":{"kept":`...)
	buf = strconv.AppendInt(buf, int64(len(events)), 10)
	buf = append(buf, `,"dropped":`...)
	buf = strconv.AppendUint(buf, dropped, 10)
	buf = append(buf, `,"total":`...)
	buf = strconv.AppendUint(buf, dropped+uint64(len(events)), 10)
	buf = append(buf, `}}`...)
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, e := range events {
		buf = appendEventJSON(buf[:0], e)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
