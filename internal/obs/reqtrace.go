package obs

// Request-scoped latency attribution. A ReqTrace is created per HTTP
// request by InstrumentHandler and carried down the serving path via
// context.Context; each stage (cache lookup, pool queue wait,
// singleflight coalesce wait, plan/Monte-Carlo compute) records a
// PhaseSpan against it. When the request finishes, Finalize snapshots
// the trace into a TraceRecord for the tail sampler.
//
// Concurrency: phases arrive from several goroutines — the handler
// goroutine, the singleflight leader goroutine and the pool worker —
// so ReqTrace is mutex-guarded. A computation that outlives its
// request (a coalesced leader whose client gave up while followers
// still wait) keeps a pointer to the leader's ReqTrace; phases
// recorded after Finalize are dropped, which is what preserves the
// attribution invariant queue + coalesce + compute <= total on every
// published record.

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"time"
)

// PhaseSpan is one attributed interval within a request, offsets in
// milliseconds from the request's start. AllocObjects/AllocBytes are
// the process-wide heap-allocation deltas across the phase (from the
// exact runtime/metrics counters): on a request running alone they are
// the phase's own allocation bill; under concurrency — most visibly a
// coalesced follower whose "coalesce" wait brackets the leader's
// compute — they include other goroutines' allocations too. DESIGN.md
// section 13 spells out the caveat.
type PhaseSpan struct {
	Name         string            `json:"name"`
	StartMS      float64           `json:"start_ms"`
	DurMS        float64           `json:"dur_ms"`
	AllocObjects uint64            `json:"alloc_objects,omitempty"`
	AllocBytes   uint64            `json:"alloc_bytes,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
}

// Phase names the serving path records. Breakdown keys are derived as
// "<name>_ms"; only the first three participate in the attribution
// invariant (cache lookups overlap none of them but are reported
// separately).
const (
	PhaseQueue    = "queue"    // pool submission -> worker pickup
	PhaseCoalesce = "coalesce" // waiting on another request's in-flight compute
	PhaseCompute  = "compute"  // planner recurrence or Monte-Carlo
	PhaseCache    = "cache"    // LRU lookup, attr "outcome" hit|miss
	PhasePeer     = "peer"     // cluster peer cache fill, attr "outcome" hit|miss
)

// ReqTrace is one request's live trace. A nil *ReqTrace is fully
// inert: every method no-ops (or returns a zero value), so
// uninstrumented paths need no checks.
type ReqTrace struct {
	tc     TraceContext
	parent [8]byte // remote parent span, zero when locally rooted
	remote bool
	route  string
	start  time.Time

	mu        sync.Mutex
	finalized bool
	phases    []PhaseSpan
	attrs     map[string]string
}

// NewReqTrace starts a locally rooted trace for route.
func NewReqTrace(route string) *ReqTrace {
	return &ReqTrace{tc: NewTraceContext(), route: route, start: time.Now()}
}

// ContinueReqTrace starts a trace stitched under a remote parent (a
// parsed incoming traceparent): same trace ID, fresh span ID, the
// parent's span recorded for cross-process stitching.
func ContinueReqTrace(parent TraceContext, route string) *ReqTrace {
	rt := &ReqTrace{
		tc:     parent.NewChild(),
		parent: parent.SpanID,
		remote: true,
		route:  route,
		start:  time.Now(),
	}
	return rt
}

// Context returns the trace context this request's spans live under.
func (rt *ReqTrace) Context() TraceContext {
	if rt == nil {
		return TraceContext{}
	}
	return rt.tc
}

// TraceID returns the hex trace ID, "" on a nil trace.
func (rt *ReqTrace) TraceID() string {
	if rt == nil {
		return ""
	}
	return rt.tc.TraceIDString()
}

// AddPhase records one completed phase. attrs are alternating
// key/value pairs (a trailing odd key is ignored). Phases recorded
// after Finalize are dropped.
func (rt *ReqTrace) AddPhase(name string, start time.Time, d time.Duration, attrs ...string) {
	rt.AddPhaseAlloc(name, start, d, 0, 0, attrs...)
}

// AddPhaseAlloc is AddPhase plus the phase's allocation deltas, for
// call sites that bracket the phase with obs.HeapAllocs themselves
// (the pool's queue wait spans two goroutines, so the closure-based
// StartPhase cannot carry its snapshot across).
func (rt *ReqTrace) AddPhaseAlloc(name string, start time.Time, d time.Duration, allocObjs, allocBytes uint64, attrs ...string) {
	if rt == nil {
		return
	}
	ps := PhaseSpan{
		Name:         name,
		StartMS:      clampNonNeg(float64(start.Sub(rt.start)) / float64(time.Millisecond)),
		DurMS:        clampNonNeg(float64(d) / float64(time.Millisecond)),
		AllocObjects: allocObjs,
		AllocBytes:   allocBytes,
	}
	if len(attrs) >= 2 {
		ps.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			ps.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	rt.mu.Lock()
	if !rt.finalized {
		rt.phases = append(rt.phases, ps)
	}
	rt.mu.Unlock()
}

// StartPhase starts a phase now and returns the function that ends it;
// an unended phase records nothing. The phase's heap-allocation deltas
// are captured alongside its duration (see PhaseSpan for the
// process-global caveat).
func (rt *ReqTrace) StartPhase(name string) func(attrs ...string) {
	if rt == nil {
		return func(...string) {}
	}
	t0 := time.Now()
	objs0, bytes0 := HeapAllocs()
	return func(attrs ...string) {
		d := time.Since(t0)
		objs1, bytes1 := HeapAllocs()
		rt.AddPhaseAlloc(name, t0, d, objs1-objs0, bytes1-bytes0, attrs...)
	}
}

// Annotate attaches a key/value attribute to the trace root.
func (rt *ReqTrace) Annotate(k, v string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	if !rt.finalized {
		if rt.attrs == nil {
			rt.attrs = make(map[string]string)
		}
		rt.attrs[k] = v
	}
	rt.mu.Unlock()
}

// ServerTiming renders the phases recorded so far (plus the running
// total) in the Server-Timing response-header syntax, e.g.
// "cache;dur=0.01;desc=miss, queue;dur=0.4, compute;dur=5.2;alloc=1380,
// total;dur=5.7" — the alloc param is the phase's heap-allocation
// object count, so a slow response names where the garbage came from
// without a round-trip to /debug/traces. Empty on a nil trace.
func (rt *ReqTrace) ServerTiming() string {
	if rt == nil {
		return ""
	}
	total := float64(time.Since(rt.start)) / float64(time.Millisecond)
	rt.mu.Lock()
	phases := rt.phases
	var sb strings.Builder
	for _, p := range phases {
		if sb.Len() > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Name)
		sb.WriteString(";dur=")
		sb.WriteString(strconv.FormatFloat(p.DurMS, 'f', 3, 64))
		if p.AllocObjects > 0 {
			sb.WriteString(";alloc=")
			sb.WriteString(strconv.FormatUint(p.AllocObjects, 10))
		}
		if out, ok := p.Attrs["outcome"]; ok {
			sb.WriteString(";desc=")
			sb.WriteString(out)
		}
	}
	rt.mu.Unlock()
	if sb.Len() > 0 {
		sb.WriteString(", ")
	}
	sb.WriteString("total;dur=")
	sb.WriteString(strconv.FormatFloat(total, 'f', 3, 64))
	return sb.String()
}

// Finalize closes the trace: the total is stamped, late phases are
// locked out, and the snapshot is returned for the tail sampler. The
// zero record (empty TraceID) is returned on a nil trace.
func (rt *ReqTrace) Finalize(status int) TraceRecord {
	if rt == nil {
		return TraceRecord{}
	}
	totalMS := float64(time.Since(rt.start)) / float64(time.Millisecond)
	rt.mu.Lock()
	rt.finalized = true
	phases := append([]PhaseSpan(nil), rt.phases...)
	var attrs map[string]string
	if len(rt.attrs) > 0 {
		attrs = make(map[string]string, len(rt.attrs))
		for k, v := range rt.attrs {
			attrs[k] = v
		}
	}
	rt.mu.Unlock()

	rec := TraceRecord{
		TraceID:       rt.tc.TraceIDString(),
		SpanID:        rt.tc.SpanIDString(),
		Remote:        rt.remote,
		Route:         rt.route,
		Status:        status,
		StartUnixNano: rt.start.UnixNano(),
		TotalMS:       totalMS,
		Phases:        phases,
		Attrs:         attrs,
	}
	if rt.remote {
		rec.ParentID = hexOf(rt.parent[:])
	}
	rec.Breakdown = make(map[string]float64, len(phases)+1)
	for _, p := range phases {
		rec.Breakdown[p.Name+"_ms"] += p.DurMS
		// Alloc totals sum only the serving-path phases: nested
		// instrumentation (the Monte-Carlo "mc" span inside compute)
		// would double-count its enclosing phase's delta.
		switch p.Name {
		case PhaseQueue, PhaseCoalesce, PhaseCompute, PhaseCache, PhasePeer:
			rec.AllocObjects += p.AllocObjects
			rec.AllocBytes += p.AllocBytes
		}
		if p.Name == PhaseCache {
			if out, ok := p.Attrs["outcome"]; ok {
				rec.Cache = out
			}
		}
	}
	rec.Breakdown["total_ms"] = totalMS
	return rec
}

func hexOf(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 2*len(b))
	for i, c := range b {
		out[2*i] = digits[c>>4]
		out[2*i+1] = digits[c&0xf]
	}
	return string(out)
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// Context plumbing. The serving path passes a ReqTrace down through
// context.Context so layers that know nothing of HTTP (the pool, the
// Monte-Carlo runner) can still attribute their time. All helpers are
// nil-safe: on a context without a trace they return inert values, so
// the uninstrumented cost is one context lookup per call site — never
// per episode.

type reqTraceKey struct{}

// ContextWithReqTrace returns ctx carrying rt.
func ContextWithReqTrace(ctx context.Context, rt *ReqTrace) context.Context {
	if rt == nil {
		return ctx
	}
	return context.WithValue(ctx, reqTraceKey{}, rt)
}

// ReqTraceFrom returns the context's ReqTrace, nil when absent.
func ReqTraceFrom(ctx context.Context) *ReqTrace {
	rt, _ := ctx.Value(reqTraceKey{}).(*ReqTrace)
	return rt
}

// StartPhase starts a phase on the context's trace; on an untraced
// context the returned end function no-ops.
func StartPhase(ctx context.Context, name string) func(attrs ...string) {
	return ReqTraceFrom(ctx).StartPhase(name)
}

// Annotate attaches an attribute to the context's trace, if any.
func Annotate(ctx context.Context, k, v string) {
	ReqTraceFrom(ctx).Annotate(k, v)
}
