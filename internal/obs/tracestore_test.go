package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func mkRec(id string, status int, totalMS float64) TraceRecord {
	return TraceRecord{
		TraceID:   id,
		SpanID:    "span" + id,
		Route:     "estimate",
		Status:    status,
		TotalMS:   totalMS,
		Breakdown: map[string]float64{"compute_ms": totalMS / 2, "total_ms": totalMS},
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Offer(mkRec("a", 200, 1)) {
		t.Errorf("nil Tracer kept a record")
	}
	if got := tr.Query(TraceQuery{}); got != nil {
		t.Errorf("nil Query = %v", got)
	}
	if st := tr.Stats(); st.Offered != 0 {
		t.Errorf("nil Stats = %+v", st)
	}
}

func TestTracerKeepsErrorsAlways(t *testing.T) {
	// Rate sampling off, slow budget tiny: errors must still all land.
	tr := NewTracer(TracerConfig{SampleRate: -1, SlowestK: 1})
	tr.Offer(mkRec("fast", 200, 1)) // takes the slow slot
	for i := 0; i < 10; i++ {
		if !tr.Offer(mkRec("e", 429, 0.1)) {
			t.Fatalf("429 record %d dropped", i)
		}
	}
	if !tr.Offer(mkRec("boom", 500, 0.1)) {
		t.Fatalf("500 record dropped")
	}
	st := tr.Stats()
	if st.ByReason[SampledError] != 11 {
		t.Errorf("errors kept = %d, want 11", st.ByReason[SampledError])
	}
}

func TestTracerSlowestKWindow(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: -1, SlowestK: 2, Window: time.Hour})
	if !tr.Offer(mkRec("a", 200, 10)) || !tr.Offer(mkRec("b", 200, 20)) {
		t.Fatalf("first K records must fill the slow budget")
	}
	if tr.Offer(mkRec("c", 200, 5)) {
		t.Fatalf("record faster than the window's K slowest was kept")
	}
	if !tr.Offer(mkRec("d", 200, 30)) {
		t.Fatalf("record slower than the window minimum was dropped")
	}
	// After d, the window's slowest two are {20, 30}; 15 < 20 drops.
	if tr.Offer(mkRec("e", 200, 15)) {
		t.Fatalf("15ms kept against window {20,30}")
	}
}

func TestTracerRateSampling(t *testing.T) {
	always := NewTracer(TracerConfig{SampleRate: 1, SlowestK: 1, Window: time.Hour})
	always.Offer(mkRec("s", 200, 100))
	kept := 0
	for i := 0; i < 50; i++ {
		if always.Offer(mkRec("r", 200, 1)) {
			kept++
		}
	}
	if kept != 50 {
		t.Errorf("SampleRate=1 kept %d/50", kept)
	}
	never := NewTracer(TracerConfig{SampleRate: -1, SlowestK: 1, Window: time.Hour})
	never.Offer(mkRec("s", 200, 100))
	for i := 0; i < 50; i++ {
		if never.Offer(mkRec("r", 200, 1)) {
			t.Fatalf("SampleRate<0 kept a record")
		}
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4, SampleRate: 1})
	for i := 0; i < 20; i++ {
		tr.Offer(mkRec("x", 500, float64(i)))
	}
	st := tr.Stats()
	if st.Stored != 4 || st.Capacity != 4 {
		t.Fatalf("stored/capacity = %d/%d, want 4/4", st.Stored, st.Capacity)
	}
	recs := tr.Query(TraceQuery{Limit: 100})
	if len(recs) != 4 {
		t.Fatalf("query returned %d, want 4", len(recs))
	}
	// Most recent first: totals 19, 18, 17, 16.
	if recs[0].TotalMS < recs[3].TotalMS {
		t.Errorf("not most-recent-first: %v ... %v", recs[0].TotalMS, recs[3].TotalMS)
	}
}

func TestTracerQueryFilters(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1, SlowestK: 1, Window: time.Hour})
	tr.Offer(mkRec("a", 200, 50))
	tr.Offer(mkRec("b", 429, 1))
	slowWithQueue := mkRec("c", 200, 80)
	slowWithQueue.Breakdown["queue_ms"] = 10
	slowWithQueue.Route = "plan"
	tr.Offer(slowWithQueue)

	if got := tr.Query(TraceQuery{Status: 429}); len(got) != 1 || got[0].TraceID != "b" {
		t.Errorf("status filter: %+v", got)
	}
	if got := tr.Query(TraceQuery{MinMS: 60}); len(got) != 1 || got[0].TraceID != "c" {
		t.Errorf("min_ms filter: %+v", got)
	}
	if got := tr.Query(TraceQuery{Phase: "queue"}); len(got) != 1 || got[0].TraceID != "c" {
		t.Errorf("phase filter: %+v", got)
	}
	if got := tr.Query(TraceQuery{Route: "plan"}); len(got) != 1 || got[0].TraceID != "c" {
		t.Errorf("route filter: %+v", got)
	}
	slowest := tr.Query(TraceQuery{Slowest: true, Limit: 2})
	if len(slowest) != 2 || slowest[0].TraceID != "c" || slowest[1].TraceID != "a" {
		t.Errorf("slowest order: %+v", slowest)
	}
}

func TestTracerHTTPEndpoint(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	tr.Offer(mkRec("aaa", 200, 42))
	tr.Offer(mkRec("bbb", 429, 1))

	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?status=429", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Stats  TracerStats   `json:"stats"`
		Traces []TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if resp.Stats.Kept != 2 || len(resp.Traces) != 1 || resp.Traces[0].TraceID != "bbb" {
		t.Fatalf("response = %+v", resp)
	}

	for _, bad := range []string{"?min_ms=x", "?status=x", "?limit=x"} {
		rec := httptest.NewRecorder()
		tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces"+bad, nil))
		if rec.Code != 400 {
			t.Errorf("%s: status = %d, want 400", bad, rec.Code)
		}
	}
	rec2 := httptest.NewRecorder()
	tr.ServeHTTP(rec2, httptest.NewRequest("POST", "/debug/traces", nil))
	if rec2.Code != 405 {
		t.Errorf("POST status = %d, want 405", rec2.Code)
	}
}

func TestTracerWindowResetCarriesFloor(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: -1, SlowestK: 2, Window: time.Hour})
	if !tr.Offer(mkRec("a", 200, 100)) || !tr.Offer(mkRec("b", 200, 200)) {
		t.Fatalf("first window's warm-up records dropped")
	}
	// Force a window rollover: the full window's admission floor
	// (100ms) carries forward, so a fast record right after the reset
	// is no longer "slow" by default.
	tr.mu.Lock()
	tr.windowStart = time.Now().Add(-2 * time.Hour)
	tr.mu.Unlock()
	if tr.Offer(mkRec("fast", 200, 1)) {
		t.Fatalf("fast record kept as slow right after a window reset")
	}
	// A warm-up record beating the carried floor is still kept.
	if !tr.Offer(mkRec("slow", 200, 150)) {
		t.Fatalf("record above the carried floor dropped during warm-up")
	}
}

func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("cs_lat_ms", "latency", []float64{1, 10, 100})
	h.Observe(5) // exemplar-free observation: no slot array allocated
	if h.exemplars.Load() != nil {
		t.Fatalf("Observe allocated exemplar slots")
	}
	h.ObserveExemplar(5, "t-mid")
	h.ObserveExemplar(1000, "t-inf")
	h.ObserveExemplar(7, "") // no trace ID: observed, no exemplar
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if e := h.exemplarAt(1); e == nil || e.TraceID != "t-mid" || e.Value != 5 {
		t.Errorf("bucket 1 exemplar = %+v, want t-mid", e)
	}
	if e := h.exemplarAt(3); e == nil || e.TraceID != "t-inf" {
		t.Errorf("+Inf bucket exemplar = %+v, want t-inf", e)
	}
	if e := h.exemplarAt(0); e != nil {
		t.Errorf("empty bucket exemplar = %+v, want nil", e)
	}
}

func TestExemplarInExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram(Labeled("cs_http_request_duration_ms", "route", "plan"),
		"latency", []float64{1, 10, 100})
	h.ObserveExemplar(7.5, "deadbeefdeadbeefdeadbeefdeadbeef")
	reg.Quantiles(Labeled("cs_http_request_ms", "route", "plan"), "latency").Observe(7.5)
	reg.Counter("cs_req_total", "requests").Inc()

	// The classic text format has no exemplar syntax: the scrape must
	// stay parseable, so no exemplar may appear anywhere.
	var classic strings.Builder
	if err := reg.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "# {") {
		t.Errorf("classic exposition carries exemplar syntax:\n%s", classic.String())
	}

	// The OpenMetrics exposition attaches the exemplar to the bucket
	// line, names the counter family without its _total suffix, and
	// terminates with # EOF.
	var om strings.Builder
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	want := `cs_http_request_duration_ms_bucket{route="plan",le="10"} 1 # {trace_id="deadbeefdeadbeefdeadbeefdeadbeef"} 7.5`
	if !strings.Contains(out, want) {
		t.Errorf("OpenMetrics exposition missing bucket exemplar %q:\n%s", want, out)
	}
	if !strings.Contains(out, "# TYPE cs_req counter\n") || !strings.Contains(out, "cs_req_total 1\n") {
		t.Errorf("OpenMetrics counter family not renamed:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics exposition not terminated by # EOF:\n%s", out)
	}
	// Summary quantile lines may not carry exemplars in any format.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "quantile=") && strings.Contains(line, "# {") {
			t.Errorf("summary quantile line carries an exemplar: %s", line)
		}
	}
}

func TestMetricsHandlerNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cs_req_total", "requests").Inc()
	srv := reg.Handler()

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default Content-Type = %q, want text/plain", ct)
	}
	if strings.Contains(rec.Body.String(), "# EOF") {
		t.Errorf("classic exposition carries # EOF")
	}

	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept",
		"application/openmetrics-text; version=1.0.0; charset=utf-8, text/plain;q=0.5")
	srv.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("negotiated Content-Type = %q, want application/openmetrics-text", ct)
	}
	if !strings.HasSuffix(rec.Body.String(), "# EOF\n") {
		t.Errorf("OpenMetrics response not terminated by # EOF:\n%s", rec.Body.String())
	}
}
