package obs

// Bounded in-memory trace store with tail-based sampling and the
// GET /debug/traces query endpoint.
//
// Head sampling (deciding at request start) cannot know which requests
// will matter; the requests worth keeping are exactly the ones whose
// outcome is only known at the end — errors, shed load, and the slow
// tail. So the Tracer samples at Finalize time: errors and 429s are
// always kept, the slowest K per time window are always kept, and the
// rest are kept with a fixed probability so the store also reflects
// normal traffic. Kept records land in a fixed-size ring; memory is
// bounded by Capacity regardless of load.

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceRecord is one finalized request trace — the unit the sampler
// keeps and /debug/traces serves. Breakdown sums phase durations by
// name ("queue_ms", "coalesce_ms", "compute_ms", ...) plus "total_ms";
// the serving path guarantees queue+coalesce+compute <= total because
// phases arriving after Finalize are dropped.
type TraceRecord struct {
	TraceID       string             `json:"trace_id"`
	SpanID        string             `json:"span_id"`
	ParentID      string             `json:"parent_id,omitempty"`
	Remote        bool               `json:"remote,omitempty"`
	Route         string             `json:"route"`
	Status        int                `json:"status"`
	StartUnixNano int64              `json:"start_unix_nano"`
	TotalMS       float64            `json:"total_ms"`
	AllocObjects  uint64             `json:"alloc_objects,omitempty"`
	AllocBytes    uint64             `json:"alloc_bytes,omitempty"`
	Cache         string             `json:"cache,omitempty"`
	Breakdown     map[string]float64 `json:"breakdown"`
	Phases        []PhaseSpan        `json:"phases,omitempty"`
	Attrs         map[string]string  `json:"attrs,omitempty"`
	SampledBy     string             `json:"sampled_by,omitempty"`
}

// TracerConfig sizes the store and tunes the tail-sampling policy.
// Zero values select the defaults in parentheses.
type TracerConfig struct {
	Capacity   int           // ring size in records (2048)
	SampleRate float64       // probabilistic keep for unremarkable requests (0.1); negative disables
	SlowestK   int           // always-keep budget for the slowest requests per window (8)
	Window     time.Duration // slowest-K comparison window (10s)
}

// Sample reasons stamped into TraceRecord.SampledBy.
const (
	SampledError = "error" // status >= 400 (incl. 429) or no status at all
	SampledSlow  = "slow"  // among the SlowestK totals in the current window
	SampledRate  = "rate"  // won the SampleRate coin toss
)

// Tracer is the tail sampler plus ring store. It is an http.Handler
// serving the /debug/traces query API. A nil *Tracer is inert: Offer
// drops everything, so untraced deployments pay one nil check.
type Tracer struct {
	cfg TracerConfig
	now func() time.Time // injectable clock for window-rotation tests

	mu          sync.Mutex
	ring        []TraceRecord
	next        int // ring insertion cursor
	filled      bool
	offered     uint64
	kept        uint64
	byReason    map[string]uint64
	windowStart time.Time
	slowest     []float64 // ascending; the cfg.SlowestK largest totals seen this window
	slowFloor   float64   // admission floor carried from the last full window
}

// NewTracer builds a Tracer, applying defaults for zero config fields.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 2048
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 0.1
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SlowestK <= 0 {
		cfg.SlowestK = 8
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Second
	}
	t := &Tracer{
		cfg:      cfg,
		now:      time.Now,
		ring:     make([]TraceRecord, cfg.Capacity),
		byReason: make(map[string]uint64, 3),
	}
	t.windowStart = t.now()
	return t
}

// Offer submits a finalized record to the sampler and reports whether
// it was kept. Records with an empty TraceID (a nil ReqTrace's
// Finalize) are ignored.
func (t *Tracer) Offer(rec TraceRecord) bool {
	if t == nil || rec.TraceID == "" {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.offered++
	reason := t.sampleReason(rec)
	if reason == "" {
		return false
	}
	rec.SampledBy = reason
	t.kept++
	t.byReason[reason]++
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	return true
}

// sampleReason applies the tail policy; "" means drop. Caller holds mu.
func (t *Tracer) sampleReason(rec TraceRecord) string {
	// Errors and shed load (429) always matter; a record with no
	// status at all means the handler died, which matters most.
	if rec.Status >= 400 || rec.Status == 0 {
		return SampledError
	}
	// Slowest K per window. The buffer tracks the K largest totals
	// observed this window; while it is still warming up after a
	// reset, a record is only *kept* as slow if it also beats the
	// floor carried from the last full window — otherwise the first K
	// arrivals of every window would be labeled slow regardless of
	// latency. Records below the carried floor still fall through to
	// rate sampling.
	now := t.now()
	if now.Sub(t.windowStart) > t.cfg.Window {
		t.windowStart = now
		// Only a full buffer defines a meaningful floor; a sparse
		// window keeps the previous one.
		if len(t.slowest) >= t.cfg.SlowestK {
			t.slowFloor = t.slowest[0]
		}
		t.slowest = t.slowest[:0]
	}
	warm := len(t.slowest) >= t.cfg.SlowestK
	if !warm || rec.TotalMS > t.slowest[0] {
		i := sort.SearchFloat64s(t.slowest, rec.TotalMS)
		t.slowest = append(t.slowest, 0)
		copy(t.slowest[i+1:], t.slowest[i:])
		t.slowest[i] = rec.TotalMS
		if len(t.slowest) > t.cfg.SlowestK {
			t.slowest = t.slowest[1:]
		}
		if warm || rec.TotalMS >= t.slowFloor {
			return SampledSlow
		}
	}
	// Probabilistic remainder: a splitmix64 draw mapped to [0, 1).
	coin := float64(nextID64()>>11) / (1 << 53)
	if coin < t.cfg.SampleRate {
		return SampledRate
	}
	return ""
}

// TracerStats is the store's self-description, embedded in the
// /debug/traces response and available to health surfaces.
type TracerStats struct {
	Offered  uint64            `json:"offered"`
	Kept     uint64            `json:"kept"`
	ByReason map[string]uint64 `json:"by_reason,omitempty"`
	Capacity int               `json:"capacity"`
	Stored   int               `json:"stored"`
}

// Stats returns current sampler counters. Nil-safe.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TracerStats{
		Offered:  t.offered,
		Kept:     t.kept,
		Capacity: len(t.ring),
		Stored:   t.storedLocked(),
	}
	if len(t.byReason) > 0 {
		st.ByReason = make(map[string]uint64, len(t.byReason))
		for k, v := range t.byReason {
			st.ByReason[k] = v
		}
	}
	return st
}

func (t *Tracer) storedLocked() int {
	if t.filled {
		return len(t.ring)
	}
	return t.next
}

// TraceQuery filters a store read. Zero fields match everything.
type TraceQuery struct {
	MinMS   float64 // keep records with TotalMS >= MinMS
	Status  int     // keep records with this exact status
	Route   string  // keep records on this route
	Phase   string  // keep records whose breakdown has "<Phase>_ms" > 0
	TraceID string  // keep records of this trace
	Slowest bool    // order by TotalMS descending instead of most recent first
	Limit   int     // max records returned (default 50)
}

// Query returns matching records, most recent first (or slowest first
// when q.Slowest). Nil-safe.
func (t *Tracer) Query(q TraceQuery) []TraceRecord {
	if t == nil {
		return nil
	}
	if q.Limit <= 0 {
		q.Limit = 50
	}
	t.mu.Lock()
	stored := t.storedLocked()
	recs := make([]TraceRecord, 0, stored)
	// Walk backwards from the cursor: most recent first.
	for i := 0; i < stored; i++ {
		idx := t.next - 1 - i
		if idx < 0 {
			idx += len(t.ring)
		}
		rec := t.ring[idx]
		if rec.TotalMS < q.MinMS {
			continue
		}
		if q.Status != 0 && rec.Status != q.Status {
			continue
		}
		if q.Route != "" && rec.Route != q.Route {
			continue
		}
		if q.TraceID != "" && rec.TraceID != q.TraceID {
			continue
		}
		if q.Phase != "" && !(rec.Breakdown[q.Phase+"_ms"] > 0) {
			continue
		}
		recs = append(recs, rec)
	}
	t.mu.Unlock()
	if q.Slowest {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].TotalMS > recs[j].TotalMS })
	}
	if len(recs) > q.Limit {
		recs = recs[:q.Limit]
	}
	return recs
}

// tracesResponse is the /debug/traces payload.
type tracesResponse struct {
	Stats  TracerStats   `json:"stats"`
	Traces []TraceRecord `json:"traces"`
}

// ServeHTTP answers GET /debug/traces. Query parameters: min_ms
// (float), status (int), route, phase (breakdown key without the _ms
// suffix), trace (trace ID), order=slowest|recent, limit (int).
func (t *Tracer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	qp := r.URL.Query()
	var q TraceQuery
	if v := qp.Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "bad min_ms: "+err.Error(), http.StatusBadRequest)
			return
		}
		q.MinMS = f
	}
	if v := qp.Get("status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad status: "+err.Error(), http.StatusBadRequest)
			return
		}
		q.Status = n
	}
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
			return
		}
		q.Limit = n
	}
	q.Route = qp.Get("route")
	q.Phase = qp.Get("phase")
	q.TraceID = qp.Get("trace")
	q.Slowest = qp.Get("order") == "slowest"

	resp := tracesResponse{Stats: t.Stats(), Traces: t.Query(q)}
	if resp.Traces == nil {
		resp.Traces = []TraceRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}
