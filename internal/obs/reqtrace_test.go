package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReqTraceNilSafe(t *testing.T) {
	var rt *ReqTrace
	rt.AddPhase(PhaseQueue, time.Now(), time.Millisecond)
	rt.StartPhase(PhaseCompute)() // must not panic
	rt.Annotate("k", "v")
	if got := rt.ServerTiming(); got != "" {
		t.Errorf("nil ServerTiming = %q, want empty", got)
	}
	if rec := rt.Finalize(200); rec.TraceID != "" {
		t.Errorf("nil Finalize returned non-zero record %+v", rec)
	}
	if rt.TraceID() != "" {
		t.Errorf("nil TraceID nonempty")
	}
	// Context helpers on an untraced context are inert too.
	ctx := context.Background()
	if ReqTraceFrom(ctx) != nil {
		t.Errorf("ReqTraceFrom(background) != nil")
	}
	StartPhase(ctx, PhaseCompute)("k", "v")
	Annotate(ctx, "k", "v")
	if ContextWithReqTrace(ctx, nil) != ctx {
		t.Errorf("ContextWithReqTrace(nil) must return ctx unchanged")
	}
}

func TestReqTraceBreakdownAndInvariant(t *testing.T) {
	rt := NewReqTrace("estimate")
	t0 := time.Now()
	rt.AddPhase(PhaseCache, t0, 10*time.Microsecond, "outcome", "miss")
	rt.AddPhase(PhaseQueue, t0, 2*time.Millisecond)
	rt.AddPhase(PhaseCompute, t0, 5*time.Millisecond, "episodes", "1000")
	rt.AddPhase(PhaseCompute, t0, time.Millisecond) // summed per name
	rt.Annotate("coalesced", "false")
	time.Sleep(10 * time.Millisecond) // ensure total dominates the phases
	rec := rt.Finalize(200)

	if rec.TraceID != rt.TraceID() || len(rec.TraceID) != 32 {
		t.Fatalf("record trace id %q", rec.TraceID)
	}
	if rec.Route != "estimate" || rec.Status != 200 {
		t.Fatalf("record route/status = %s/%d", rec.Route, rec.Status)
	}
	if rec.Cache != "miss" {
		t.Errorf("Cache = %q, want miss", rec.Cache)
	}
	if rec.Remote || rec.ParentID != "" {
		t.Errorf("local root marked remote: %+v", rec)
	}
	if got := rec.Breakdown["compute_ms"]; got < 5.9 || got > 6.1 {
		t.Errorf("compute_ms = %v, want ~6", got)
	}
	if got := rec.Breakdown["queue_ms"]; got < 1.9 || got > 2.1 {
		t.Errorf("queue_ms = %v, want ~2", got)
	}
	if rec.Attrs["coalesced"] != "false" {
		t.Errorf("attrs = %+v", rec.Attrs)
	}
	sum := rec.Breakdown["queue_ms"] + rec.Breakdown["coalesce_ms"] + rec.Breakdown["compute_ms"]
	if sum > rec.TotalMS {
		t.Errorf("attribution invariant violated: queue+coalesce+compute = %v > total %v", sum, rec.TotalMS)
	}
	if len(rec.Phases) != 4 {
		t.Errorf("phases = %d, want 4", len(rec.Phases))
	}
}

func TestReqTraceDropsPhasesAfterFinalize(t *testing.T) {
	rt := NewReqTrace("plan")
	end := rt.StartPhase(PhaseCompute)
	rec1 := rt.Finalize(200)
	end() // the leader finishing after the request ended must be dropped
	rt.AddPhase(PhaseQueue, time.Now(), time.Hour)
	rt.Annotate("late", "true")
	rec2 := rt.Finalize(200)
	if len(rec1.Phases) != 0 || len(rec2.Phases) != 0 {
		t.Fatalf("late phases leaked: %d then %d", len(rec1.Phases), len(rec2.Phases))
	}
	if rec2.Attrs["late"] != "" {
		t.Fatalf("late annotation leaked: %+v", rec2.Attrs)
	}
	sum := rec2.Breakdown["queue_ms"] + rec2.Breakdown["coalesce_ms"] + rec2.Breakdown["compute_ms"]
	if sum > rec2.TotalMS {
		t.Fatalf("invariant violated after late phases: %v > %v", sum, rec2.TotalMS)
	}
}

func TestReqTraceConcurrentPhases(t *testing.T) {
	rt := NewReqTrace("plan")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		//lint:allow goroutinecap ReqTrace is internally mutex-guarded; sharing it across goroutines is the behaviour under test
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rt.StartPhase(PhaseCompute)("w", "x")
				rt.Annotate("k", "v")
				_ = rt.ServerTiming()
			}
		}()
	}
	wg.Wait()
	rec := rt.Finalize(200)
	if len(rec.Phases) != 800 {
		t.Fatalf("phases = %d, want 800", len(rec.Phases))
	}
}

func TestContinueReqTraceStitches(t *testing.T) {
	parent := NewTraceContext()
	rt := ContinueReqTrace(parent, "estimate")
	if rt.Context().TraceID != parent.TraceID {
		t.Fatalf("continued trace changed trace id")
	}
	if rt.Context().SpanID == parent.SpanID {
		t.Fatalf("continued trace reused parent span id")
	}
	rec := rt.Finalize(200)
	if !rec.Remote {
		t.Errorf("continued record not marked remote")
	}
	if rec.ParentID != parent.SpanIDString() {
		t.Errorf("ParentID = %q, want %q", rec.ParentID, parent.SpanIDString())
	}
}

func TestServerTimingFormat(t *testing.T) {
	rt := NewReqTrace("plan")
	t0 := time.Now()
	rt.AddPhase(PhaseCache, t0, 100*time.Microsecond, "outcome", "hit")
	st := rt.ServerTiming()
	if !strings.HasPrefix(st, "cache;dur=0.100;desc=hit") {
		t.Errorf("ServerTiming = %q", st)
	}
	if !strings.Contains(st, "total;dur=") {
		t.Errorf("ServerTiming missing total: %q", st)
	}
}
