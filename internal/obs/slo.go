package obs

// Rolling-window SLO tracking with multi-window burn rates, in the
// Google-SRE shape: an availability objective (non-5xx responses) and
// a latency objective (fast responses) each consume an error budget of
// (1 - objective); the burn rate is how many times faster than budget
// the service is currently failing. Burn 1.0 spends exactly the
// budget over the SLO period; burn 14.4 on both a short and a long
// window is the classic page condition (it exhausts a 30-day budget in
// ~2 days), burn 6 on the slow pair is the ticket condition.
//
// The tracker keeps one-second buckets in a ring sized to the longest
// window, so memory is fixed and Record is O(1) under a mutex — cheap
// against request latencies measured in microseconds-to-seconds.
// GET /debug/slo serves the snapshot; csmon -slo renders it.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SLOConfig declares the objectives. Zero values select the defaults
// in parentheses.
type SLOConfig struct {
	// AvailabilityObjective is the target fraction of non-error
	// responses (0.999). Errors are 5xx and transport-level failures
	// (status 0); 4xx — including 429 shed load — count as served.
	AvailabilityObjective float64
	// LatencyObjective is the target fraction of served (non-5xx)
	// responses faster than LatencyThresholdMS (0.99).
	LatencyObjective float64
	// LatencyThresholdMS is the latency SLI threshold (250).
	LatencyThresholdMS float64
	// Windows are the rolling burn-rate windows, ascending (5m, 1h,
	// 6h). The first two form the page pair, the last two the ticket
	// pair.
	Windows []time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if !(c.AvailabilityObjective > 0 && c.AvailabilityObjective < 1) {
		c.AvailabilityObjective = 0.999
	}
	if !(c.LatencyObjective > 0 && c.LatencyObjective < 1) {
		c.LatencyObjective = 0.99
	}
	if c.LatencyThresholdMS <= 0 {
		c.LatencyThresholdMS = 250
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{5 * time.Minute, time.Hour, 6 * time.Hour}
	}
	return c
}

// sloBucket is one second of traffic.
type sloBucket struct {
	sec            int64 // unix second this bucket currently represents
	req, err, slow uint64
}

// SLOTracker records request outcomes and serves burn-rate snapshots.
// A nil *SLOTracker is inert. Create with NewSLOTracker.
type SLOTracker struct {
	cfg SLOConfig
	now func() time.Time // injectable for tests

	mu      sync.Mutex
	ring    []sloBucket
	start   time.Time
	totReq  uint64
	totErr  uint64
	totSlow uint64
}

// NewSLOTracker builds a tracker, applying defaults for zero config
// fields.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	longest := cfg.Windows[len(cfg.Windows)-1]
	secs := int(longest/time.Second) + 1
	t := &SLOTracker{
		cfg:  cfg,
		now:  time.Now,
		ring: make([]sloBucket, secs),
	}
	t.start = t.now()
	return t
}

// Record counts one finished request: its HTTP status (0 for a request
// that never produced a response) and its latency. Nil-safe.
func (t *SLOTracker) Record(status int, latencyMS float64) {
	if t == nil {
		return
	}
	isErr := status == 0 || status >= 500
	isSlow := !isErr && latencyMS > t.cfg.LatencyThresholdMS
	sec := t.now().Unix()
	t.mu.Lock()
	b := &t.ring[sec%int64(len(t.ring))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.req++
	t.totReq++
	if isErr {
		b.err++
		t.totErr++
	}
	if isSlow {
		b.slow++
		t.totSlow++
	}
	t.mu.Unlock()
}

// SLOWindow is one window's view in the snapshot.
type SLOWindow struct {
	Window          string  `json:"window"` // "5m0s", or "since_start"
	Requests        uint64  `json:"requests"`
	Errors          uint64  `json:"errors"`
	ErrorRate       float64 `json:"error_rate"`
	ErrorBurnRate   float64 `json:"error_burn_rate"`
	Slow            uint64  `json:"slow"`
	SlowRate        float64 `json:"slow_rate"`
	LatencyBurnRate float64 `json:"latency_burn_rate"`
}

// SLOAlert is one multi-window burn-rate rule's current state.
type SLOAlert struct {
	SLI           string  `json:"sli"`      // "availability" or "latency"
	Severity      string  `json:"severity"` // "page" or "ticket"
	ShortWindow   string  `json:"short_window"`
	LongWindow    string  `json:"long_window"`
	BurnThreshold float64 `json:"burn_threshold"`
	Firing        bool    `json:"firing"`
}

// SLOSnapshot is the /debug/slo payload.
type SLOSnapshot struct {
	AvailabilityObjective float64     `json:"availability_objective"`
	LatencyObjective      float64     `json:"latency_objective"`
	LatencyThresholdMS    float64     `json:"latency_threshold_ms"`
	UptimeSeconds         float64     `json:"uptime_seconds"`
	Windows               []SLOWindow `json:"windows"`
	Total                 SLOWindow   `json:"total"`
	Alerts                []SLOAlert  `json:"alerts"`
}

// fill computes the derived rates for a window's raw counts.
func (t *SLOTracker) fill(w *SLOWindow) {
	if w.Requests > 0 {
		w.ErrorRate = float64(w.Errors) / float64(w.Requests)
		served := w.Requests - w.Errors
		if served > 0 {
			w.SlowRate = float64(w.Slow) / float64(served)
		}
	}
	w.ErrorBurnRate = w.ErrorRate / (1 - t.cfg.AvailabilityObjective)
	w.LatencyBurnRate = w.SlowRate / (1 - t.cfg.LatencyObjective)
}

// Snapshot returns the current multi-window view. Nil-safe (zero
// snapshot).
func (t *SLOTracker) Snapshot() SLOSnapshot {
	if t == nil {
		return SLOSnapshot{}
	}
	nowSec := t.now().Unix()
	snap := SLOSnapshot{
		AvailabilityObjective: t.cfg.AvailabilityObjective,
		LatencyObjective:      t.cfg.LatencyObjective,
		LatencyThresholdMS:    t.cfg.LatencyThresholdMS,
		UptimeSeconds:         t.now().Sub(t.start).Seconds(),
	}
	wins := make([]SLOWindow, len(t.cfg.Windows))
	winSecs := make([]int64, len(t.cfg.Windows))
	for i, d := range t.cfg.Windows {
		wins[i].Window = d.String()
		winSecs[i] = int64(d / time.Second)
	}
	t.mu.Lock()
	for i := range t.ring {
		b := t.ring[i]
		if b.sec == 0 || b.req == 0 {
			continue
		}
		age := nowSec - b.sec
		if age < 0 {
			continue
		}
		for j := range wins {
			if age < winSecs[j] {
				wins[j].Requests += b.req
				wins[j].Errors += b.err
				wins[j].Slow += b.slow
			}
		}
	}
	snap.Total = SLOWindow{
		Window:   "since_start",
		Requests: t.totReq,
		Errors:   t.totErr,
		Slow:     t.totSlow,
	}
	t.mu.Unlock()
	for i := range wins {
		t.fill(&wins[i])
	}
	t.fill(&snap.Total)
	snap.Windows = wins
	snap.Alerts = t.alerts(wins)
	return snap
}

// alerts evaluates the standard multi-window rules over the computed
// windows: page when both windows of the fast pair burn >= 14.4,
// ticket when both windows of the slow pair burn >= 6.
func (t *SLOTracker) alerts(wins []SLOWindow) []SLOAlert {
	if len(wins) < 2 {
		return []SLOAlert{}
	}
	type pair struct {
		short, long int
		threshold   float64
		severity    string
	}
	pairs := []pair{
		{0, 1, 14.4, "page"},
		{len(wins) - 2, len(wins) - 1, 6, "ticket"},
	}
	out := make([]SLOAlert, 0, 2*len(pairs))
	for _, p := range pairs {
		s, l := wins[p.short], wins[p.long]
		out = append(out,
			SLOAlert{
				SLI: "availability", Severity: p.severity,
				ShortWindow: s.Window, LongWindow: l.Window, BurnThreshold: p.threshold,
				Firing: s.ErrorBurnRate >= p.threshold && l.ErrorBurnRate >= p.threshold,
			},
			SLOAlert{
				SLI: "latency", Severity: p.severity,
				ShortWindow: s.Window, LongWindow: l.Window, BurnThreshold: p.threshold,
				Firing: s.LatencyBurnRate >= p.threshold && l.LatencyBurnRate >= p.threshold,
			})
	}
	return out
}

// ServeHTTP answers GET /debug/slo with the snapshot.
func (t *SLOTracker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t.Snapshot()); err != nil {
		// Headers are gone; nothing better to do than log-by-status.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}
