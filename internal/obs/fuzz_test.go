package obs

import (
	"strings"
	"testing"
)

// FuzzParseTraceparent asserts ParseTraceparent never panics, rejects
// everything the W3C grammar forbids, and round-trips everything it
// accepts: re-rendering the parsed context with Traceparent and parsing
// again must reproduce the identical TraceContext.
func FuzzParseTraceparent(f *testing.F) {
	for _, seed := range []string{
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00",
		// Future version with a trailing field: accepted and ignored.
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
		// Forbidden version.
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		// All-zero IDs are invalid.
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		// Uppercase hex is forbidden by the spec.
		"00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01",
		// Structural damage: short, wrong separators, trailing junk.
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333",
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x",
		"",
		"garbage",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tc, err := ParseTraceparent(s)
		if err != nil {
			return
		}
		if !tc.Valid() {
			t.Fatalf("ParseTraceparent(%q) accepted an invalid context %+v", s, tc)
		}
		// Whatever was accepted must survive a render/parse round trip
		// bit-for-bit (the render is always version 00).
		hdr := tc.Traceparent()
		back, err := ParseTraceparent(hdr)
		if err != nil {
			t.Fatalf("re-rendered header %q from %q does not parse: %v", hdr, s, err)
		}
		if back != tc {
			t.Fatalf("round trip changed context: %+v -> %+v (via %q)", tc, back, hdr)
		}
		// The rendered form is canonical version-00: fixed length,
		// lowercase, with the sampled bit alone in the flags.
		if len(hdr) != 55 || hdr != strings.ToLower(hdr) {
			t.Fatalf("Traceparent() = %q, not a canonical version-00 header", hdr)
		}
	})
}
