package obs

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// hdrSamplers are the distribution shapes the paper's quantities span:
// bounded uniform busy periods, skewed lognormal latencies, and
// heavy-tailed pareto episode lengths where only the log-bucketed
// histogram keeps the tail resolved. Seeds are fixed: the test is a
// deterministic property check, not a statistical one.
var hdrSamplers = []struct {
	name   string
	seed   uint64
	sample func(r *rng.Source) float64
}{
	{"uniform", 11, func(r *rng.Source) float64 { return r.Uniform(0.5, 500) }},
	{"lognormal", 12, func(r *rng.Source) float64 { return r.LogNormal(1.0, 1.5) }},
	{"pareto", 13, func(r *rng.Source) float64 {
		// Inverse-transform Pareto(xm=1, alpha=1.5): heavy tail, finite
		// mean, infinite variance — the worst case for fixed buckets.
		return math.Pow(1-r.Float64Open(), -1/1.5)
	}},
}

// TestQuantileHistAccuracy: for every distribution and a grid of
// quantiles, the histogram's answer is within the advertised
// HDRRelativeError of the exact order statistic computed by sorting.
func TestQuantileHistAccuracy(t *testing.T) {
	const n = 20000
	grid := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for _, d := range hdrSamplers {
		t.Run(d.name, func(t *testing.T) {
			r := rng.New(d.seed)
			var h QuantileHist
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = d.sample(r)
				h.Observe(xs[i])
			}
			sort.Float64s(xs)
			for _, q := range grid {
				// Same rank convention as Quantile: ceil(q·n) clamped to [1, n].
				rank := int(math.Ceil(q * n))
				if rank < 1 {
					rank = 1
				}
				if rank > n {
					rank = n
				}
				exact := xs[rank-1]
				got := h.Quantile(q)
				if relErr := math.Abs(got-exact) / exact; relErr > HDRRelativeError {
					t.Errorf("q=%g: hist %g vs exact %g, relative error %.4f > %.4f",
						q, got, exact, relErr, HDRRelativeError)
				}
			}
			if got, want := h.Count(), uint64(n); got != want {
				t.Errorf("Count = %d, want %d", got, want)
			}
			if max := h.Max(); math.Abs(max-xs[n-1]) > 1e-12*xs[n-1] {
				t.Errorf("Max = %g, want %g", max, xs[n-1])
			}
		})
	}
}

// TestQuantileHistEdgeCases pins the non-positive and empty behavior the
// doc comments promise.
func TestQuantileHistEdgeCases(t *testing.T) {
	var h QuantileHist
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile is not NaN")
	}
	if h.Snapshot() != nil {
		t.Error("empty histogram snapshot is not nil")
	}
	h.Observe(-3)
	h.Observe(0)
	h.Observe(math.NaN()) // dropped
	h.Observe(2)
	if got, want := h.Count(), uint64(3); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	// Ranks 1..2 are the zero bucket, rank 3 the positive observation.
	if got := h.Quantile(0.5); got > 0 {
		t.Errorf("median of {<=0, <=0, 2} = %g, want 0", got)
	}
	if got := h.Quantile(1); math.Abs(got-2)/2 > HDRRelativeError {
		t.Errorf("p100 = %g, want 2 within %.4f", got, HDRRelativeError)
	}
	snap := h.Snapshot()
	if len(snap) != len(standardQuantiles) {
		t.Errorf("snapshot keys = %v", snap)
	}
	for _, label := range standardQuantileLabels {
		if _, ok := snap[label]; !ok {
			t.Errorf("snapshot missing %s: %v", label, snap)
		}
	}
}
