package obs

import (
	"flag"
	"fmt"
	"os"
)

// Flags is the observability flag set shared by the CLIs, so csfarm,
// cssim and cstrace expose identical -trace / -trace-format /
// -metrics-addr behaviour and cannot drift.
type Flags struct {
	Trace       string
	TraceFormat string
	MetricsAddr string
}

// Register installs the flags on fs (flag.CommandLine when fs is nil).
func (f *Flags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Trace, "trace", "", "write a structured event trace to this file")
	fs.StringVar(&f.TraceFormat, "trace-format", "jsonl", "trace format: jsonl, or chrome (load in chrome://tracing / Perfetto)")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
}

// Session holds the live observability resources a CLI opened from its
// flags. All methods are nil-safe; the zero Session is fully disabled.
type Session struct {
	// Sink is the trace sink, nil when -trace was not given.
	Sink Sink
	// Server is the metrics server, nil when -metrics-addr was not
	// given.
	Server *Server

	file   *os.File
	closer interface{ Close() error }
	closed bool
}

// Setup opens the trace file and metrics server requested by the flags.
// reg may be nil when the caller keeps no metrics. On error, anything
// already opened is closed.
func (f *Flags) Setup(reg *Registry) (*Session, error) {
	s := &Session{}
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, fmt.Errorf("obs: create trace file: %w", err)
		}
		s.file = file
		switch f.TraceFormat {
		case "jsonl":
			sink := NewJSONLSink(file)
			s.Sink, s.closer = sink, sink
		case "chrome":
			sink := NewChromeSink(file)
			s.Sink, s.closer = sink, sink
		default:
			_ = file.Close()
			return nil, fmt.Errorf("obs: unknown trace format %q (want jsonl or chrome)", f.TraceFormat)
		}
	}
	if f.MetricsAddr != "" {
		srv, err := Serve(f.MetricsAddr, reg)
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		s.Server = srv
	}
	return s, nil
}

// Close flushes and closes the trace file and stops the metrics server.
// It is idempotent, so callers can Close explicitly to check the flush
// error and still keep a defer for early-exit paths.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.closer != nil {
		if err := s.closer.Close(); err != nil {
			first = err
		}
	}
	if s.file != nil {
		if err := s.file.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.Server != nil {
		if err := s.Server.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
