package obs

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// Flags is the observability flag set shared by the CLIs, so csfarm,
// cssim and cstrace expose identical -trace / -trace-format /
// -metrics-addr / -flight behaviour and cannot drift.
type Flags struct {
	Trace       string
	TraceFormat string
	MetricsAddr string
	Flight      int
}

// Register installs the flags on fs (flag.CommandLine when fs is nil).
func (f *Flags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Trace, "trace", "", "write a structured event trace to this file")
	fs.StringVar(&f.TraceFormat, "trace-format", "jsonl", "trace format: jsonl, or chrome (load in chrome://tracing / Perfetto)")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	fs.IntVar(&f.Flight, "flight", 0, "keep the last N trace events in a flight-recorder ring, dumped on failure or SIGQUIT (0 disables)")
}

// Session holds the live observability resources a CLI opened from its
// flags. All methods are nil-safe; the zero Session is fully disabled.
type Session struct {
	// Sink is the sink the caller should emit to: the trace file sink,
	// the flight recorder, both (fanned out), or nil when neither flag
	// was given.
	Sink Sink
	// Server is the metrics server, nil when -metrics-addr was not
	// given.
	Server *Server
	// Flight is the flight recorder, nil when -flight was not given.
	// On SIGQUIT the session dumps it to stderr and keeps running
	// (installing the handler replaces the default quit-with-core
	// behaviour); callers should also dump it on failure paths.
	Flight *FlightRecorder

	file    *os.File
	closer  interface{ Close() error }
	sigDone chan struct{}
	sigCh   chan os.Signal
	closed  bool
}

// Setup opens the trace file, flight recorder and metrics server
// requested by the flags. reg may be nil when the caller keeps no
// metrics. On error, anything already opened is closed.
func (f *Flags) Setup(reg *Registry) (*Session, error) {
	s := &Session{}
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, fmt.Errorf("obs: create trace file: %w", err)
		}
		s.file = file
		switch f.TraceFormat {
		case "jsonl":
			sink := NewJSONLSink(file)
			s.Sink, s.closer = sink, sink
		case "chrome":
			sink := NewChromeSink(file)
			s.Sink, s.closer = sink, sink
		default:
			_ = file.Close()
			return nil, fmt.Errorf("obs: unknown trace format %q (want jsonl or chrome)", f.TraceFormat)
		}
	}
	if f.Flight > 0 {
		s.Flight = NewFlightRecorder(f.Flight)
		if s.Sink != nil {
			s.Sink = MultiSink{s.Sink, s.Flight}
		} else {
			s.Sink = s.Flight
		}
		s.sigCh = make(chan os.Signal, 1)
		s.sigDone = make(chan struct{})
		signal.Notify(s.sigCh, syscall.SIGQUIT)
		go func(fr *FlightRecorder, ch chan os.Signal, done chan struct{}) {
			for {
				select {
				case <-ch:
					_ = fr.Dump(os.Stderr)
				case <-done:
					return
				}
			}
		}(s.Flight, s.sigCh, s.sigDone)
	}
	if f.MetricsAddr != "" {
		srv, err := Serve(f.MetricsAddr, reg)
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		s.Server = srv
	}
	return s, nil
}

// Close flushes and closes the trace file, stops the SIGQUIT handler
// and stops the metrics server. It is idempotent, so callers can Close
// explicitly to check the flush error and still keep a defer for
// early-exit paths.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.sigCh != nil {
		signal.Stop(s.sigCh)
		close(s.sigDone)
	}
	if s.closer != nil {
		if err := s.closer.Close(); err != nil {
			first = err
		}
	}
	if s.file != nil {
		if err := s.file.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.Server != nil {
		if err := s.Server.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
