package obs

// Runtime/resource observability: a bridge from the Go runtime's
// runtime/metrics stream into the atomic registry, plus a goroutine
// leak watchdog. The planner only pays off if it costs less than the
// cycles it steals (ROADMAP item 2); this file is where the process's
// own resource consumption — GC pauses, heap residency, allocation
// throughput, scheduler latency, goroutine population — becomes
// scrapeable through the same Prometheus/OpenMetrics exposition the
// serving metrics use.
//
// The bridge samples on a configurable ticker; every sample is a
// single runtime/metrics.Read over a fixed sample set (no allocation
// after construction) fanned out into gauges, delta-counters and
// quantile gauges. Histogram-valued runtime metrics (GC pause, STW
// scheduler latency) are cumulative since process start, so their
// quantiles describe the whole life of the process — exactly the right
// shape for "has this process ever stalled", and cheap to compute.

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// Runtime metric names sampled by the bridge, in sample-slice order.
const (
	rmGoroutines   = "/sched/goroutines:goroutines"
	rmHeapLive     = "/memory/classes/heap/objects:bytes"
	rmHeapGoal     = "/gc/heap/goal:bytes"
	rmMemTotal     = "/memory/classes/total:bytes"
	rmGCCycles     = "/gc/cycles/total:gc-cycles"
	rmAllocObjects = "/gc/heap/allocs:objects"
	rmAllocBytes   = "/gc/heap/allocs:bytes"
	rmGCPauses     = "/sched/pauses/total/gc:seconds"
	rmSchedLat     = "/sched/latencies:seconds"
)

// HeapAllocs returns the cumulative count and bytes of heap
// allocations since process start, straight from runtime/metrics. Two
// reads bracket a region; their difference is the region's allocation
// bill. The counters are process-global: concurrent goroutines'
// allocations land in whichever regions are open, so deltas are exact
// for the process and attributive only to the extent the region ran
// alone (the per-phase caveat DESIGN.md section 13 documents).
func HeapAllocs() (objects, bytes uint64) {
	var s [2]metrics.Sample
	s[0].Name = rmAllocObjects
	s[1].Name = rmAllocBytes
	metrics.Read(s[:])
	if s[0].Value.Kind() == metrics.KindUint64 {
		objects = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		bytes = s[1].Value.Uint64()
	}
	return objects, bytes
}

// RuntimeBridgeConfig tunes the bridge. Zero values select defaults in
// parentheses.
type RuntimeBridgeConfig struct {
	// Interval between samples (10s).
	Interval time.Duration
	// LeakLimit is the goroutine count treated as a suspected leak. 0
	// derives it from the first sample: max(128, 8x the count then).
	LeakLimit int
	// LeakConsecutive is how many consecutive samples must exceed
	// LeakLimit before the watchdog flags a leak (3) — a one-sample
	// burst of request handlers is not a leak.
	LeakConsecutive int
}

func (c RuntimeBridgeConfig) withDefaults() RuntimeBridgeConfig {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.LeakConsecutive <= 0 {
		c.LeakConsecutive = 3
	}
	return c
}

// RuntimeBridge periodically samples the Go runtime into a Registry.
// Create with NewRuntimeBridge, start the ticker with Start, stop it
// with Stop; SampleNow takes one synchronous sample (Start's ticker
// does the same thing). A nil *RuntimeBridge is inert.
type RuntimeBridge struct {
	cfg RuntimeBridgeConfig
	reg *Registry

	samples []metrics.Sample // fixed set, reused every tick
	idx     map[string]int   // name -> index in samples

	goroutines *Gauge
	heapLive   *Gauge
	heapGoal   *Gauge
	memTotal   *Gauge
	gcCycles   *Counter
	allocObjs  *Counter
	allocBytes *Counter
	gcPauseQ   []*Gauge // cs_runtime_gc_pause_ms{quantile=...}
	schedLatQ  []*Gauge // cs_runtime_sched_latency_ms{quantile=...}

	// Delta state for the cumulative runtime counters.
	lastGCCycles   uint64
	lastAllocObjs  uint64
	lastAllocBytes uint64

	// Watchdog state.
	leakLimit     int
	leakStreak    int
	leakSuspected atomic.Bool
	leakGauge     *Gauge
	leakLimitG    *Gauge
	leakEvents    *Counter

	mu      sync.Mutex // guards samples + delta/watchdog state across SampleNow callers
	stop    chan struct{}
	stopped sync.Once
	started atomic.Bool
}

// runtimeQuantiles are the exposed quantiles for histogram-valued
// runtime metrics; "1" is the observed maximum.
var runtimeQuantiles = []float64{0.5, 0.9, 0.99, 1}

var runtimeQuantileLabels = []string{"0.5", "0.9", "0.99", "1"}

// NewRuntimeBridge registers the bridge's metric set on reg and
// returns a bridge ready to Start (or to drive manually via
// SampleNow). reg must be non-nil.
func NewRuntimeBridge(reg *Registry, cfg RuntimeBridgeConfig) *RuntimeBridge {
	cfg = cfg.withDefaults()
	names := []string{
		rmGoroutines, rmHeapLive, rmHeapGoal, rmMemTotal,
		rmGCCycles, rmAllocObjects, rmAllocBytes, rmGCPauses, rmSchedLat,
	}
	b := &RuntimeBridge{
		cfg:     cfg,
		reg:     reg,
		samples: make([]metrics.Sample, len(names)),
		idx:     make(map[string]int, len(names)),
		stop:    make(chan struct{}),

		goroutines: reg.Gauge("cs_runtime_goroutines", "live goroutines (runtime/metrics bridge)"),
		heapLive:   reg.Gauge("cs_runtime_heap_live_bytes", "bytes occupied by live and not-yet-swept heap objects"),
		heapGoal:   reg.Gauge("cs_runtime_heap_goal_bytes", "heap size the GC is pacing toward"),
		memTotal:   reg.Gauge("cs_runtime_mem_total_bytes", "all memory mapped by the Go runtime"),
		gcCycles:   reg.Counter("cs_runtime_gc_cycles_total", "completed GC cycles"),
		allocObjs:  reg.Counter("cs_runtime_alloc_objects_total", "cumulative heap objects allocated"),
		allocBytes: reg.Counter("cs_runtime_alloc_bytes_total", "cumulative heap bytes allocated"),
		leakGauge:  reg.Gauge("cs_runtime_goroutine_leak_suspected", "1 while the goroutine watchdog suspects a leak"),
		leakLimitG: reg.Gauge("cs_runtime_goroutine_limit", "goroutine count the leak watchdog alarms on"),
		leakEvents: reg.Counter("cs_runtime_goroutine_leak_events_total", "transitions into the leak-suspected state"),
		leakLimit:  cfg.LeakLimit,
	}
	for i, n := range names {
		b.samples[i].Name = n
		b.idx[n] = i
	}
	for _, q := range runtimeQuantileLabels {
		b.gcPauseQ = append(b.gcPauseQ, reg.Gauge(
			Labeled("cs_runtime_gc_pause_ms", "quantile", q),
			"GC stop-the-world pause quantiles in milliseconds, over all pauses since process start"))
		b.schedLatQ = append(b.schedLatQ, reg.Gauge(
			Labeled("cs_runtime_sched_latency_ms", "quantile", q),
			"scheduler latency quantiles in milliseconds (time goroutines spend runnable before running), since process start"))
	}
	return b
}

// Start begins sampling on the configured interval (after one
// immediate sample, so the exposition is populated before the first
// tick). Safe to call once; nil-safe.
func (b *RuntimeBridge) Start() {
	if b == nil || !b.started.CompareAndSwap(false, true) {
		return
	}
	b.SampleNow()
	go func() {
		t := time.NewTicker(b.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				b.SampleNow()
			case <-b.stop:
				return
			}
		}
	}()
}

// Stop ends the sampling goroutine. Nil-safe, idempotent.
func (b *RuntimeBridge) Stop() {
	if b == nil {
		return
	}
	b.stopped.Do(func() { close(b.stop) })
}

// LeakSuspected reports whether the watchdog currently suspects a
// goroutine leak. Nil-safe.
func (b *RuntimeBridge) LeakSuspected() bool {
	if b == nil {
		return false
	}
	return b.leakSuspected.Load()
}

// SampleNow takes one sample of the runtime metric set and publishes
// it. Nil-safe; safe for concurrent callers.
func (b *RuntimeBridge) SampleNow() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	metrics.Read(b.samples)

	if v, ok := b.uint64At(rmGoroutines); ok {
		b.goroutines.Set(float64(v))
		b.watchdogLocked(int(v))
	}
	if v, ok := b.uint64At(rmHeapLive); ok {
		b.heapLive.Set(float64(v))
	}
	if v, ok := b.uint64At(rmHeapGoal); ok {
		b.heapGoal.Set(float64(v))
	}
	if v, ok := b.uint64At(rmMemTotal); ok {
		b.memTotal.Set(float64(v))
	}
	// Cumulative runtime counters arrive as absolute values; the
	// registry's counters are monotone, so publish the delta since the
	// previous sample.
	if v, ok := b.uint64At(rmGCCycles); ok && v >= b.lastGCCycles {
		b.gcCycles.Add(v - b.lastGCCycles)
		b.lastGCCycles = v
	}
	if v, ok := b.uint64At(rmAllocObjects); ok && v >= b.lastAllocObjs {
		b.allocObjs.Add(v - b.lastAllocObjs)
		b.lastAllocObjs = v
	}
	if v, ok := b.uint64At(rmAllocBytes); ok && v >= b.lastAllocBytes {
		b.allocBytes.Add(v - b.lastAllocBytes)
		b.lastAllocBytes = v
	}
	if h, ok := b.histAt(rmGCPauses); ok {
		publishHistQuantiles(b.gcPauseQ, h, 1e3) // seconds -> ms
	}
	if h, ok := b.histAt(rmSchedLat); ok {
		publishHistQuantiles(b.schedLatQ, h, 1e3)
	}
}

// watchdogLocked advances the leak heuristic with one goroutine count.
func (b *RuntimeBridge) watchdogLocked(goroutines int) {
	if b.leakLimit <= 0 {
		// Derive the limit from the first observation: generous enough
		// that steady request traffic never trips it, tight enough that
		// an unbounded goroutine-per-event bug does.
		b.leakLimit = 8 * goroutines
		if b.leakLimit < 128 {
			b.leakLimit = 128
		}
	}
	b.leakLimitG.Set(float64(b.leakLimit))
	if goroutines > b.leakLimit {
		b.leakStreak++
	} else {
		b.leakStreak = 0
		if b.leakSuspected.CompareAndSwap(true, false) {
			b.leakGauge.Set(0)
		}
	}
	if b.leakStreak >= b.cfg.LeakConsecutive {
		if b.leakSuspected.CompareAndSwap(false, true) {
			b.leakGauge.Set(1)
			b.leakEvents.Inc()
		}
	}
}

func (b *RuntimeBridge) uint64At(name string) (uint64, bool) {
	s := b.samples[b.idx[name]]
	if s.Value.Kind() != metrics.KindUint64 {
		return 0, false
	}
	return s.Value.Uint64(), true
}

func (b *RuntimeBridge) histAt(name string) (*metrics.Float64Histogram, bool) {
	s := b.samples[b.idx[name]]
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil, false
	}
	return s.Value.Float64Histogram(), true
}

// publishHistQuantiles writes runtimeQuantiles of h (scaled) into gs.
func publishHistQuantiles(gs []*Gauge, h *metrics.Float64Histogram, scale float64) {
	for i, q := range runtimeQuantiles {
		gs[i].Set(histQuantile(h, q) * scale)
	}
}

// histQuantile computes the q-quantile of a runtime/metrics cumulative
// bucket histogram, taking each bucket's upper bound as its
// representative (the pessimistic choice for a latency). Unbounded
// edge buckets fall back to their finite side. Returns 0 for an empty
// histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			hi := h.Buckets[i+1]
			if !math.IsInf(hi, 1) {
				return hi
			}
			lo := h.Buckets[i]
			if !math.IsInf(lo, -1) {
				return lo
			}
			return 0
		}
	}
	return 0
}

// RuntimeHealth is the runtime block of the /v1/healthz payload: the
// numbers a smoke test needs to assert the runtime bridge's view of
// the process is live, in one cheap read.
type RuntimeHealth struct {
	GCCycles       uint32  `json:"gc_cycles"`
	LastGCPauseMS  float64 `json:"last_gc_pause_ms"`
	GCPauseTotalMS float64 `json:"gc_pause_total_ms"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	NextGCBytes    uint64  `json:"next_gc_bytes"`
	NumGoroutine   int     `json:"num_goroutine"`
	// GoroutineLeakSuspected reflects the bridge watchdog; always false
	// when no bridge is running.
	GoroutineLeakSuspected bool `json:"goroutine_leak_suspected"`
}

// ReadRuntimeHealth snapshots the runtime for a health endpoint. It
// uses runtime.ReadMemStats (the only stdlib source of the *last* GC
// pause) — fine at healthz frequency, not something to put on a hot
// path.
func ReadRuntimeHealth() RuntimeHealth {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	h := RuntimeHealth{
		GCCycles:       m.NumGC,
		GCPauseTotalMS: float64(m.PauseTotalNs) / 1e6,
		HeapAllocBytes: m.HeapAlloc,
		HeapSysBytes:   m.HeapSys,
		NextGCBytes:    m.NextGC,
		NumGoroutine:   runtime.NumGoroutine(),
	}
	if m.NumGC > 0 {
		h.LastGCPauseMS = float64(m.PauseNs[(m.NumGC+255)%256]) / 1e6
	}
	return h
}
