package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsVarsPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cs_http_test_total", "served requests").Add(3)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "cs_http_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(body, "cs_http_test_total") {
		t.Errorf("/debug/vars missing published registry:\n%s", body)
	}

	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestCLIFlagsSetup(t *testing.T) {
	dir := t.TempDir()
	f := Flags{Trace: dir + "/run.jsonl", TraceFormat: "jsonl"}
	s, err := f.Setup(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Sink == nil {
		t.Fatal("no sink opened")
	}
	s.Sink.Emit(Event{Time: 1, Kind: "dispatch", Length: 2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	f = Flags{Trace: dir + "/run.json", TraceFormat: "nope"}
	if _, err := f.Setup(nil); err == nil {
		t.Error("bad trace format did not error")
	}

	var zero Flags
	s, err = zero.Setup(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Sink != nil || s.Server != nil {
		t.Error("zero flags opened resources")
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
}
