package competitive

import (
	"math"
	"testing"

	"repro/internal/sched"
)

func TestRatioHandComputed(t *testing.T) {
	// S = (4, 8), c = 1, over r in [2, 20].
	// W(r) = 0 for r <= 4, 3 for 4 < r <= 12, 10 for r > 12.
	// Worst points: r=4 (0/3 = 0)… but rmin=4.5 avoids the zero head:
	// candidates r=12 (3/11), r=20 (10/19), r=4.5 (3/3.5).
	s := sched.MustNew(4, 8)
	rho, err := Ratio(s, 1, 4.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 / 11
	if math.Abs(rho-want) > 1e-12 {
		t.Errorf("ratio = %g, want %g", rho, want)
	}
}

func TestRatioZeroBeforeFirstBoundary(t *testing.T) {
	// If rmin falls before T_0, the adversary kills the first period
	// and the deterministic ratio is 0.
	s := sched.MustNew(10)
	rho, err := Ratio(s, 1, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rho != 0 {
		t.Errorf("ratio = %g, want 0", rho)
	}
}

func TestRatioRejectsBadArgs(t *testing.T) {
	s := sched.MustNew(5)
	if _, err := Ratio(s, 1, 0.5, 10); err == nil {
		t.Error("rmin <= c accepted")
	}
	if _, err := Ratio(s, 1, 5, 4); err == nil {
		t.Error("horizon <= rmin accepted")
	}
	if _, err := Ratio(s, -1, 2, 4); err == nil {
		t.Error("negative c accepted")
	}
}

func TestGeometricRamp(t *testing.T) {
	s, err := GeometricRamp(2, 2, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 2, 4, 8, 16, 32 sum to 62; next (64) would pass 100.
	want := sched.MustNew(2, 4, 8, 16, 32)
	if !s.Equal(want, 1e-12) {
		t.Errorf("ramp = %v", s)
	}
	if _, err := GeometricRamp(0.5, 2, 1, 100); err == nil {
		t.Error("base <= c accepted")
	}
	if _, err := GeometricRamp(2, 0.5, 1, 100); err == nil {
		t.Error("gamma < 1 accepted")
	}
}

func TestGeometricRampFlat(t *testing.T) {
	s, err := GeometricRamp(5, 1, 1, 23)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 { // 5+5+5+5 = 20 <= 23; a fifth would pass
		t.Errorf("flat ramp len = %d: %v", s.Len(), s)
	}
}

func TestDoublingBeatsFixedChunkInWorstCase(t *testing.T) {
	// The motivating fact for [2]-style strategies: with no risk
	// knowledge, a doubling ramp's worst-case ratio beats any fixed
	// chunk whose size is wrong for the adversary's r.
	c, rmin, horizon := 1.0, 8.0, 4096.0
	ramp, err := GeometricRamp(2, 2, c, horizon)
	if err != nil {
		t.Fatal(err)
	}
	rhoRamp, err := Ratio(ramp, c, rmin, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !(rhoRamp > 0) {
		t.Fatalf("doubling ramp ratio = %g", rhoRamp)
	}
	// A big fixed chunk dies to early reclaims; a small one wastes
	// overhead at large r but keeps a positive ratio — the ramp must
	// beat the big chunk badly and be comparable or better overall.
	bigChunk := sched.MustNew(2048, 2048)
	rhoBig, err := Ratio(bigChunk, c, rmin, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if rhoBig > 0 {
		t.Errorf("big fixed chunk should be 0-competitive at small r, got %g", rhoBig)
	}
}

func TestBestGeometricRamp(t *testing.T) {
	c, rmin, horizon := 1.0, 4.0, 1024.0
	ramp, gamma, rho, err := BestGeometricRamp(c, rmin, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if ramp.Len() == 0 || !(rho > 0) {
		t.Fatalf("degenerate best ramp: len=%d rho=%g", ramp.Len(), rho)
	}
	if gamma < 1 || gamma > 8 {
		t.Errorf("gamma = %g outside search range", gamma)
	}
	// The optimized ramp must beat the plain doubling ramp's ratio.
	plain, _ := GeometricRamp(rmin, 2, c, horizon)
	rhoPlain, _ := Ratio(plain, c, rmin, horizon)
	if rho < rhoPlain-1e-9 {
		t.Errorf("optimized ramp %g worse than plain doubling %g", rho, rhoPlain)
	}
	if _, _, _, err := BestGeometricRamp(1, 0.5, 10); err == nil {
		t.Error("rmin <= c accepted")
	}
}

func TestRandomizedDoublingConstantCompetitive(t *testing.T) {
	// The cumulative-work model's headline: phase-randomized doubling
	// keeps a constant fraction of the offline optimum, independent of
	// the horizon (contrast with the log barrier of [2]'s
	// single-commitment model).
	var ratios []float64
	for _, horizon := range []float64{256, 4096, 65536} {
		rho, _, err := RandomizedDoublingRatio(1, 8, horizon, 64, 200)
		if err != nil {
			t.Fatal(err)
		}
		if rho < 0.2 || rho > 0.7 {
			t.Errorf("H=%g: ratio %g outside the constant-competitive band", horizon, rho)
		}
		ratios = append(ratios, rho)
	}
	// Flat across 2.5 decades.
	for i := 1; i < len(ratios); i++ {
		if math.Abs(ratios[i]-ratios[0]) > 0.05 {
			t.Errorf("ratio drifts with horizon: %v", ratios)
		}
	}
}

func TestRandomizedDoublingRejectsBadArgs(t *testing.T) {
	if _, _, err := RandomizedDoublingRatio(1, 8, 100, 0, 10); err == nil {
		t.Error("zero phases accepted")
	}
	if _, _, err := RandomizedDoublingRatio(1, 0.5, 100, 4, 10); err == nil {
		t.Error("rmin <= c accepted")
	}
}
