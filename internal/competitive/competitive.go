// Package competitive analyzes cycle-stealing schedules in the
// *worst-case* (risk-oblivious) regime the paper defers to its sequel
// and to Awerbuch–Azar–Fiat–Leighton (STOC 1996, the paper's [2]): no
// life function is known, an adversary picks the reclaim time r, and a
// schedule is judged by its competitive ratio
//
//	ρ(S; rmin, H) = min over r in [rmin, H] of W(S, r) / (r - c),
//
// the worst fraction of the offline optimum (one period of exactly
// length r, committing r-c) that S actually banks. Deterministic
// schedules are 0-competitive against r <= T_0, so the ratio is
// assessed from a warm-up point rmin > c.
//
// A finding worth stating up front (experiment E13): in this
// cumulative-work model, chunked schedules are *constant*-competitive —
// a flat chunk sized just under rmin keeps a fixed fraction of r-c for
// every r, and phase-randomized doubling does the same with better
// constants at small r. The Θ(1/log) barrier of Awerbuch–Azar–Fiat–
// Leighton (the paper's [2]) belongs to their single-commitment model,
// where work does not accumulate across periods; the two regimes should
// not be conflated, and this package measures the cumulative one.
package competitive

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/sched"
)

// Ratio returns the deterministic competitive ratio of s over reclaim
// times in [rmin, horizon]: the minimum of W(s, r)/(r-c). Since W is a
// right-open step function rising at each boundary T_k and the offline
// benchmark r-c is increasing, the minimum over each step is attained
// just before the next boundary; the global minimum is therefore a
// minimum over boundaries plus the two interval endpoints.
func Ratio(s sched.Schedule, c, rmin, horizon float64) (float64, error) {
	if !(c >= 0) {
		return 0, fmt.Errorf("competitive: negative overhead %g", c)
	}
	if !(rmin > c) || !(horizon > rmin) {
		return 0, fmt.Errorf("competitive: need c < rmin < horizon, got c=%g rmin=%g horizon=%g", c, rmin, horizon)
	}
	eval := func(r float64) float64 {
		return sched.RealizedWork(s, c, r) / (r - c)
	}
	worst := math.Min(eval(rmin), eval(horizon))
	for _, tk := range s.Boundaries() {
		// Just at the boundary the period ending there is still lost
		// (W commits only for r > T_k), which is the adversary's best
		// moment in the step.
		if tk > rmin && tk <= horizon {
			if v := eval(tk); v < worst {
				worst = v
			}
		}
	}
	return worst, nil
}

// GeometricRamp returns the schedule t_i = base·γ^i truncated at the
// horizon. base must exceed c and γ must be >= 1.
func GeometricRamp(base, gamma, c, horizon float64) (sched.Schedule, error) {
	if !(base > c) {
		return sched.Schedule{}, fmt.Errorf("competitive: base %g must exceed overhead %g", base, c)
	}
	if !(gamma >= 1) {
		return sched.Schedule{}, fmt.Errorf("competitive: ramp factor %g must be >= 1", gamma)
	}
	var periods []float64
	t, total := base, 0.0
	for total+t <= horizon && len(periods) < 10_000 {
		periods = append(periods, t)
		total += t
		t *= gamma
		if gamma == 1 && total+t > horizon {
			break
		}
	}
	if len(periods) == 0 {
		return sched.Schedule{}, fmt.Errorf("competitive: no ramp period fits horizon %g", horizon)
	}
	s, err := sched.New(periods...)
	if err != nil {
		return sched.Schedule{}, err
	}
	return sched.Normalize(s, c), nil
}

// BestGeometricRamp searches ramp factors γ in [1, 8] for the schedule
// with the highest deterministic competitive ratio over
// [rmin, horizon]. The base is pinned strictly inside (c, rmin) so the
// first period completes before the earliest adversarial reclaim (a
// base at or beyond rmin is 0-competitive at r = rmin). It returns the
// ramp, its γ and its ratio.
func BestGeometricRamp(c, rmin, horizon float64) (sched.Schedule, float64, float64, error) {
	if !(rmin > c) {
		return sched.Schedule{}, 0, 0, fmt.Errorf("competitive: rmin %g must exceed c %g", rmin, c)
	}
	base := c + (rmin-c)*0.75
	objective := func(gamma float64) float64 {
		ramp, err := GeometricRamp(base, gamma, c, horizon)
		if err != nil {
			return math.Inf(-1)
		}
		rho, err := Ratio(ramp, c, rmin, horizon)
		if err != nil {
			return math.Inf(-1)
		}
		return rho
	}
	gamma, rho, err := numeric.MaximizeScan(objective, 1, 8, 96, numeric.MaxOptions{Tol: 1e-6})
	if err != nil {
		return sched.Schedule{}, 0, 0, err
	}
	ramp, err := GeometricRamp(base, gamma, c, horizon)
	if err != nil {
		return sched.Schedule{}, 0, 0, err
	}
	return ramp, gamma, rho, nil
}

// RandomizedDoublingRatio evaluates the phase-randomized doubling
// strategy: the chunk ladder is 2c·2^{u}, 2c·2^{u+1}, ... with a
// uniformly random phase u in [0, 1). For each reclaim time r the
// expected committed work E_u[W(r)] is averaged over a phase grid, and
// the function returns the minimum over a geometric r-grid of
// E_u[W(r)]/(r - c), together with 1/log2(horizon/c) as a reference
// scale (the randomized ratio stays constant, far above that scale —
// see the package comment).
func RandomizedDoublingRatio(c, rmin, horizon float64, phases, rPoints int) (rho, logScale float64, err error) {
	if phases < 1 || rPoints < 2 {
		return 0, 0, fmt.Errorf("competitive: need phases >= 1 and rPoints >= 2")
	}
	if !(rmin > c) || !(horizon > rmin) {
		return 0, 0, fmt.Errorf("competitive: need c < rmin < horizon")
	}
	schedules := make([]sched.Schedule, phases)
	for i := range schedules {
		u := (float64(i) + 0.5) / float64(phases)
		base := 2 * c * math.Pow(2, u) // first chunk in [2c, 4c): always productive
		s, err := GeometricRamp(base, 2, c, horizon*2)
		if err != nil {
			return 0, 0, err
		}
		schedules[i] = s
	}
	worst := math.Inf(1)
	for j := 0; j < rPoints; j++ {
		// Geometric r-grid: the guarantee is scale-free.
		frac := float64(j) / float64(rPoints-1)
		r := rmin * math.Pow(horizon/rmin, frac)
		var mean numeric.KahanSum
		for _, s := range schedules {
			mean.Add(sched.RealizedWork(s, c, r))
		}
		ratio := mean.Value() / float64(phases) / (r - c)
		if ratio < worst {
			worst = ratio
		}
	}
	return worst, 1 / math.Log2(horizon/c), nil
}
