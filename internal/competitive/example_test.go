package competitive_test

import (
	"fmt"
	"log"

	"repro/internal/competitive"
)

// With no risk model at all, a doubling ramp still banks a constant
// fraction of whatever an omniscient scheduler could have banked.
func Example() {
	ramp, err := competitive.GeometricRamp(2, 2, 1, 4096)
	if err != nil {
		log.Fatal(err)
	}
	rho, err := competitive.Ratio(ramp, 1, 8, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("doubling ramp: %d periods, worst-case ratio %.3f\n", ramp.Len(), rho)
	// Output: doubling ramp: 11 periods, worst-case ratio 0.308
}
