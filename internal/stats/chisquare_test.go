package stats

import (
	"math"
	"testing"
)

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Classic critical values: P(X >= x) = 0.05.
	cases := []struct {
		df   int
		crit float64
	}{
		{1, 3.841}, {2, 5.991}, {5, 11.070}, {10, 18.307}, {30, 43.773},
	}
	for _, c := range cases {
		p := ChiSquareSurvival(c.crit, c.df)
		if math.Abs(p-0.05) > 0.001 {
			t.Errorf("df=%d: survival(%g) = %g, want 0.05", c.df, c.crit, p)
		}
	}
	if ChiSquareSurvival(0, 3) != 1 {
		t.Error("survival at 0 should be 1")
	}
	if ChiSquareSurvival(-1, 3) != 1 {
		t.Error("survival below 0 should be 1")
	}
}

func TestChiSquareSurvivalDF2ClosedForm(t *testing.T) {
	// df=2 is exponential: P(X >= x) = exp(-x/2).
	for _, x := range []float64{0.5, 1, 3, 10, 25} {
		got := ChiSquareSurvival(x, 2)
		want := math.Exp(-x / 2)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("df=2 survival(%g) = %.12g, want %.12g", x, got, want)
		}
	}
}

func TestChiSquarePerfectFit(t *testing.T) {
	obs := []int64{100, 200, 300}
	exp := []float64{100, 200, 300}
	stat, p, err := ChiSquare(obs, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || p != 1 {
		t.Errorf("perfect fit: stat=%g p=%g", stat, p)
	}
}

func TestChiSquareDetectsMismatch(t *testing.T) {
	obs := []int64{150, 150, 300}
	exp := []float64{100, 200, 300}
	_, p, err := ChiSquare(obs, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("gross mismatch has p = %g", p)
	}
}

func TestChiSquareFairDieSimulation(t *testing.T) {
	// Balanced counts near expectation: p should be comfortably large.
	obs := []int64{1010, 985, 1003, 997, 1012, 993}
	exp := make([]float64, 6)
	for i := range exp {
		exp[i] = 1000
	}
	stat, p, err := ChiSquare(obs, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.5 {
		t.Errorf("near-perfect die: stat=%g p=%g", stat, p)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquare(nil, nil, 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := ChiSquare([]int64{1}, []float64{1}, 0); err == nil {
		t.Error("single cell (0 df) accepted")
	}
	if _, _, err := ChiSquare([]int64{1, 2}, []float64{1, 0}, 0); err == nil {
		t.Error("zero expected accepted")
	}
	if _, _, err := ChiSquare([]int64{1, 2}, []float64{1}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
}
