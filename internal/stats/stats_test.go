package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.N() != 8 {
		t.Errorf("n = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", r.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(r.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %g, want %g", r.Variance(), 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %g/%g", r.Min(), r.Max())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 {
		t.Error("empty accumulator not zero")
	}
	r.Add(3)
	if r.Variance() != 0 {
		t.Error("single-point variance not zero")
	}
	if !math.IsInf(r.CI(0.95), 1) {
		t.Error("single-point CI should be infinite")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	var whole, a, b Running
	for i := 0; i < 100; i++ {
		v := math.Sin(float64(i)) * float64(i)
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged n = %d", a.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("merged mean %g vs %g", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9*whole.Variance() {
		t.Errorf("merged variance %g vs %g", a.Variance(), whole.Variance())
	}
	//lint:allow floatcmp min/max merge is exact selection, no arithmetic
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("merged min/max wrong")
	}
}

func TestRunningMergeEmptyCases(t *testing.T) {
	var a, b Running
	b.Add(5)
	a.Merge(b) // empty receiver
	if a.N() != 1 || a.Mean() != 5 {
		t.Error("merge into empty failed")
	}
	var c Running
	a.Merge(c) // empty argument
	if a.N() != 1 {
		t.Error("merge of empty changed receiver")
	}
}

func TestRunningPropertyMergeAssociative(t *testing.T) {
	check := func(xs, ys []float64) bool {
		for _, v := range append(append([]float64{}, xs...), ys...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		var seq, a, b Running
		for _, v := range xs {
			seq.Add(v)
			a.Add(v)
		}
		for _, v := range ys {
			seq.Add(v)
			b.Add(v)
		}
		a.Merge(b)
		if a.N() != seq.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(seq.Mean())
		return math.Abs(a.Mean()-seq.Mean()) <= 1e-9*scale
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	var r Running
	for i := 0; i < 100; i++ {
		r.Add(float64(i))
	}
	s := Summarize(&r)
	if s.N != 100 || s.Mean != 49.5 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	q, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 3 {
		t.Errorf("median = %g, want 3", q)
	}
	if xs[0] != 3 {
		t.Error("Quantile mutated input")
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 5 {
		t.Errorf("extremes = %g, %g", q0, q1)
	}
	qm, _ := Quantile(xs, 0.25)
	if qm != 2 {
		t.Errorf("q25 = %g, want 2", qm)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrNoData) {
		t.Error("empty input accepted")
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Error("q > 1 accepted")
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Classical t-table values.
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.975, 1, 12.706},
		{0.975, 10, 2.228},
		{0.975, 30, 2.042},
		{0.95, 10, 1.812},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.df)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("t(%g, %d) = %.4f, want %.3f", c.p, c.df, got, c.want)
		}
	}
}

func TestTQuantileLargeDFMatchesNormal(t *testing.T) {
	got := TQuantile(0.975, 100000)
	if math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("t(0.975, inf) = %g, want 1.96", got)
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	hi := TQuantile(0.9, 7)
	lo := TQuantile(0.1, 7)
	if math.Abs(hi+lo) > 1e-6 {
		t.Errorf("asymmetric quantiles: %g vs %g", hi, lo)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 15} {
		h.Add(v)
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("out of range = %d, %d", under, over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin 1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin 4 = %d", h.Counts[4])
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramRejectsBadConfig(t *testing.T) {
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("degenerate range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestMeanAbsError(t *testing.T) {
	v, err := MeanAbsError([]float64{1, 2, 3}, []float64{1, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-(0+2+3)/3.0) > 1e-12 {
		t.Errorf("MAE = %g", v)
	}
	if _, err := MeanAbsError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MeanAbsError(nil, nil); !errors.Is(err, ErrNoData) {
		t.Error("empty input accepted")
	}
}

func TestCIShrinksWithN(t *testing.T) {
	var small, large Running
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 3))
	}
	if large.CI(0.95) >= small.CI(0.95) {
		t.Errorf("CI did not shrink: %g vs %g", large.CI(0.95), small.CI(0.95))
	}
}
