// Package stats provides the summary statistics the Monte-Carlo
// experiments report: streaming mean/variance, confidence intervals,
// quantiles, histograms, and paired comparisons.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
)

// ErrNoData reports a statistic requested over an empty sample.
var ErrNoData = errors.New("stats: no data")

// Running accumulates a sample one observation at a time using
// Welford's algorithm, which is numerically stable over the millions of
// episode replications the simulator produces. The zero value is an
// empty accumulator ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance (0 with < 2 points).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// CI returns the half-width of the confidence interval on the mean at
// the given confidence level (e.g. 0.95), using the Student-t quantile
// for the sample's degrees of freedom.
func (r *Running) CI(level float64) float64 {
	if r.n < 2 {
		return math.Inf(1)
	}
	return TQuantile(1-(1-level)/2, int(r.n-1)) * r.StdErr()
}

// Merge combines another accumulator into r (parallel reduction).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n1, n2 := float64(r.n), float64(o.n)
	d := o.mean - r.mean
	tot := n1 + n2
	r.mean += d * n2 / tot
	r.m2 += o.m2 + d*d*n1*n2/tot
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// Summary is a frozen view of a sample.
type Summary struct {
	N      int64
	Mean   float64
	StdDev float64
	StdErr float64
	Min    float64
	Max    float64
	CI95   float64
}

// Summarize freezes the accumulator into a Summary.
func Summarize(r *Running) Summary {
	return Summary{
		N:      r.N(),
		Mean:   r.Mean(),
		StdDev: r.StdDev(),
		StdErr: r.StdErr(),
		Min:    r.Min(),
		Max:    r.Max(),
		CI95:   r.CI(0.95),
	}
}

// String renders the summary as "mean ± ci95 (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.6g ± %.3g (n=%d)", s.Mean, s.CI95, s.N)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7). It does not modify
// xs.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g outside [0, 1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// TQuantile returns the p-quantile of the Student-t distribution with
// df degrees of freedom, computed by bisection on the regularized
// incomplete beta CDF. For df > 1000 the normal quantile is used.
func TQuantile(p float64, df int) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: t quantile p=%g outside (0,1)", p))
	}
	if df >= 1000 {
		return normalQuantile(p)
	}
	cdf := func(t float64) float64 { return tCDF(t, float64(df)) }
	lo, hi := -1e3, 1e3
	for i := 0; i < 200 && hi-lo > 1e-10*(1+math.Abs(hi)); i++ {
		mid := lo + (hi-lo)/2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// tCDF is the Student-t CDF via the regularized incomplete beta function.
func tCDF(t, df float64) float64 {
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	ib := regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// regIncBeta computes the regularized incomplete beta I_x(a, b) with the
// continued-fraction expansion (Lentz's algorithm).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	if x > (a+1)/(a+b+2) {
		// Use the symmetry relation for faster convergence.
		return 1 - regIncBeta(b, a, 1-x)
	}
	const eps = 1e-15
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var num float64
		switch {
		case i == 0:
			num = 1
		case i%2 == 0:
			num = float64(m) * (b - float64(m)) * x / ((a + float64(2*m) - 1) * (a + float64(2*m)))
		default:
			num = -(a + float64(m)) * (a + b + float64(m)) * x / ((a + float64(2*m)) * (a + float64(2*m) + 1))
		}
		d = 1 + num*d
		if math.Abs(d) < 1e-30 {
			d = 1e-30
		}
		d = 1 / d
		c = 1 + num/c
		if math.Abs(c) < 1e-30 {
			c = 1e-30
		}
		f *= c * d
		if math.Abs(1-c*d) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// normalQuantile is the standard normal quantile (Acklam's rational
// approximation, |relative error| < 1.15e-9).
func normalQuantile(p float64) float64 {
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		return -normalQuantile(1 - p)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Histogram bins observations into equal-width cells over [Lo, Hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	under  int64
	over   int64
}

// NewHistogram returns a histogram with n bins over [lo, hi].
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if !(lo < hi) || n < 1 {
		return nil, fmt.Errorf("stats: invalid histogram [%g, %g) with %d bins", lo, hi, n)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}, nil
}

// Add bins one observation (out-of-range values are tallied separately).
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of binned observations, including out-of-range
// tallies.
func (h *Histogram) Total() int64 {
	n := h.under + h.over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// OutOfRange returns the (below, above) tallies.
func (h *Histogram) OutOfRange() (int64, int64) { return h.under, h.over }

// MeanAbsError returns the mean absolute difference between paired
// slices; it fails on length mismatch or empty input.
func MeanAbsError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrNoData
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = math.Abs(a[i] - b[i])
	}
	return numeric.Mean(diffs), nil
}
