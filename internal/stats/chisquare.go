package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadCells reports unusable chi-square cells.
var ErrBadCells = errors.New("stats: invalid chi-square cells")

// ChiSquare performs Pearson's goodness-of-fit test: observed counts
// against expected counts (same length, expected all positive, sums
// should agree). It returns the statistic and the p-value under the
// chi-square distribution with len(cells)-1-ddof degrees of freedom.
// Use ddof for parameters estimated from the data (0 when the expected
// distribution is fully specified, as in the simulator validations).
func ChiSquare(observed []int64, expected []float64, ddof int) (statistic, p float64, err error) {
	if len(observed) == 0 || len(observed) != len(expected) {
		return 0, 0, fmt.Errorf("%w: %d observed vs %d expected", ErrBadCells, len(observed), len(expected))
	}
	df := len(observed) - 1 - ddof
	if df < 1 {
		return 0, 0, fmt.Errorf("%w: %d cells leave %d degrees of freedom", ErrBadCells, len(observed), df)
	}
	stat := 0.0
	for i, e := range expected {
		if !(e > 0) {
			return 0, 0, fmt.Errorf("%w: expected[%d] = %g", ErrBadCells, i, e)
		}
		d := float64(observed[i]) - e
		stat += d * d / e
	}
	return stat, ChiSquareSurvival(stat, df), nil
}

// ChiSquareSurvival returns P(X >= x) for X ~ chi-square with df
// degrees of freedom: the upper regularized incomplete gamma
// Q(df/2, x/2).
func ChiSquareSurvival(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return regGammaQ(float64(df)/2, x/2)
}

// regGammaQ computes the upper regularized incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a), using the series for x < a+1 and the
// continued fraction otherwise (Numerical-Recipes style, both to ~1e-12).
func regGammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - regGammaPSeries(a, x)
	}
	return regGammaQCF(a, x)
}

// regGammaPSeries evaluates P(a, x) by its power series.
func regGammaPSeries(a, x float64) float64 {
	lg := lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// regGammaQCF evaluates Q(a, x) by Lentz's continued fraction.
func regGammaQCF(a, x float64) float64 {
	lg := lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
