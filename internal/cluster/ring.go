// Package cluster is the horizontal scaling layer behind csgate and a
// clustered csserve fleet: a rendezvous hash ring that assigns every
// canonical plan/estimate cache key a stable owner replica, and a peer
// protocol (Node) that lets replicas fill cache misses from each other
// instead of recomputing — the paper's owner/borrower asymmetry lifted
// one level up, where a replica "steals" a result from the key's
// previous holder (pull-on-miss) or "shares" it ahead of time
// (push-replicate on compute), per Van Houdt's stealing-vs-sharing
// framing.
//
// The package depends only on net/http, encoding/json and internal/obs;
// the cache it fills is abstracted behind the Store interface, which
// internal/serve's Server implements.
package cluster

import (
	"fmt"
	"sort"
)

// Ring is an immutable rendezvous (highest-random-weight) hash over a
// replica set. Every key independently ranks all replicas by
// hash(replica, key); the top-ranked replica owns the key. The property
// that makes this the right structure for a serving fleet: removing a
// replica remaps exactly the keys it owned (each promotes its #2
// choice), and adding one remaps exactly the ~1/N of keys the newcomer
// now wins — no other key moves, so a rolling restart never invalidates
// the surviving replicas' caches.
//
// Membership changes build a new Ring (the node list is copied and
// never mutated), so readers need no locks; the gate swaps health
// state, not ring structure.
type Ring struct {
	nodes []string
}

// NewRing builds a ring over the given replica identities (base URLs in
// practice). Duplicates are dropped; order does not matter — ownership
// depends only on the set. An empty ring is legal and owns nothing.
func NewRing(nodes []string) *Ring {
	seen := make(map[string]struct{}, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if _, ok := seen[n]; ok || n == "" {
			continue
		}
		seen[n] = struct{}{}
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	return &Ring{nodes: uniq}
}

// Len returns the replica count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns a copy of the replica set in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// score is the 64-bit FNV-1a hash of node and key with a separator
// byte, so ("ab","c") and ("a","bc") never collide.
func score(node, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	h ^= 0xff
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// Owner returns the replica that owns key, "" on an empty ring.
func (r *Ring) Owner(key string) string {
	best, bestScore := "", uint64(0)
	for _, n := range r.nodes {
		s := score(n, key)
		if best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}

// Owners returns up to n replicas in preference order for key: the
// owner first, then the replica that would take over if the owner
// drained, and so on. This is the fallback order the gate walks during
// a rolling restart and the probe order a stealing replica uses — the
// key's previous holder is whichever peer ranks highest after self.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 || len(r.nodes) == 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	type ranked struct {
		node  string
		score uint64
	}
	rs := make([]ranked, len(r.nodes))
	for i, node := range r.nodes {
		rs[i] = ranked{node: node, score: score(node, key)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		return rs[i].node < rs[j].node
	})
	out := make([]string, n)
	for i := range out {
		out[i] = rs[i].node
	}
	return out
}

// Validate reports an error when self is named but absent from the
// replica set — the misconfiguration where a replica would steal from
// (or hand off to) a ring it is not part of.
func (r *Ring) Validate(self string) error {
	if self == "" {
		return nil
	}
	for _, n := range r.nodes {
		if n == self {
			return nil
		}
	}
	return fmt.Errorf("cluster: self %q is not in the replica set %v", self, r.nodes)
}
