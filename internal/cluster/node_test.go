package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// memStore is a map-backed Store; hot order is most-recently-put
// first, which is all the warm-handoff tests need.
type memStore struct {
	mu    sync.Mutex
	m     map[string]json.RawMessage
	order []string // put order, oldest first
}

func newMemStore() *memStore { return &memStore{m: map[string]json.RawMessage{}} }

func (s *memStore) PeerGet(key string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

func (s *memStore) PeerPut(key string, val json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		s.order = append(s.order, key)
	}
	s.m[key] = val
	return nil
}

func (s *memStore) PeerHot(n int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for i := len(s.order) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, Entry{Key: s.order[i], Val: s.m[s.order[i]]})
	}
	return out
}

func (s *memStore) has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	return ok
}

func (s *memStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// peerServer runs a real Node's peer protocol over a memStore on an
// httptest listener, counting cache lookups.
type peerServer struct {
	store *memStore
	srv   *httptest.Server
	node  *Node
	gets  atomic.Int64
}

// startPeer brings up a peer replica. ringOf is called with the
// server's URL to produce the full replica set (the URL is only known
// after the listener binds, so rings that must contain it are built by
// the caller).
func startPeer(t *testing.T, delay time.Duration) *peerServer {
	t.Helper()
	p := &peerServer{store: newMemStore()}
	mux := http.NewServeMux()
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && len(r.URL.Path) > len("/v1/peer/cache/") && r.URL.Path[:len("/v1/peer/cache/")] == "/v1/peer/cache/" {
			p.gets.Add(1)
			if delay > 0 {
				time.Sleep(delay)
			}
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(p.srv.Close)
	node, err := NewNode(Config{
		Self:  p.srv.URL,
		Peers: []string{p.srv.URL},
	}, p.store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	p.node = node
	node.Routes(mux)
	return p
}

func newTestNode(t *testing.T, self string, peers []string, cfg Config, store Store) *Node {
	t.Helper()
	cfg.Self = self
	cfg.Peers = peers
	n, err := NewNode(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

// Concurrent steal fills for one key coalesce onto a single peer
// fetch: 32 goroutines miss together, the peer sees exactly one GET,
// and every caller gets the value. Run under -race this also proves
// the fillCall handoff is properly synchronized.
func TestStealFillSingleflight(t *testing.T) {
	peer := startPeer(t, 50*time.Millisecond)
	const key = "plan|life=uniform|L=450|hl=0|d=0|c=1"
	val := json.RawMessage(`{"key":"` + key + `","expected_work":42}`)
	if err := peer.store.PeerPut(key, val); err != nil {
		t.Fatal(err)
	}

	self := "http://self.test:0"
	n := newTestNode(t, self, []string{self, peer.srv.URL}, Config{Probes: 1}, newMemStore())

	const goroutines = 32
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		hits  atomic.Int64
	)
	start.Add(1)
	for i := 0; i < goroutines; i++ {
		done.Add(1)
		//lint:allow goroutinecap Node.Fill is internally synchronized; concurrent fills coalescing is the behaviour under test
		go func() {
			defer done.Done()
			start.Wait()
			got, ok := n.Fill(context.Background(), key)
			if ok && string(got) == string(val) {
				hits.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()

	if hits.Load() != goroutines {
		t.Errorf("%d of %d concurrent fills got the value", hits.Load(), goroutines)
	}
	if got := peer.gets.Load(); got != 1 {
		t.Errorf("peer saw %d cache fetches for one key, want 1 (singleflight)", got)
	}
}

// A steal fill that no peer can satisfy reports a miss (local compute
// pays), and a share-mode node never pulls at all.
func TestFillMissAndSharePolicy(t *testing.T) {
	peer := startPeer(t, 0)
	self := "http://self.test:0"

	steal := newTestNode(t, self, []string{self, peer.srv.URL}, Config{}, newMemStore())
	if _, ok := steal.Fill(context.Background(), "plan|absent"); ok {
		t.Error("steal fill reported a hit for a key no peer holds")
	}
	if peer.gets.Load() == 0 {
		t.Error("steal fill never consulted the peer")
	}

	share := newTestNode(t, self, []string{self, peer.srv.URL}, Config{Fill: FillShare}, newMemStore())
	before := peer.gets.Load()
	if _, ok := share.Fill(context.Background(), "plan|absent"); ok {
		t.Error("share fill reported a hit")
	}
	if peer.gets.Load() != before {
		t.Error("share fill pulled from a peer; sharing is push-only")
	}
}

// Share fill pushes each offered entry to the key's next-preferred
// peer asynchronously; the peer installs it via /v1/peer/warm.
func TestShareOfferReplicates(t *testing.T) {
	peer := startPeer(t, 0)
	self := "http://self.test:0"
	n := newTestNode(t, self, []string{self, peer.srv.URL}, Config{Fill: FillShare}, newMemStore())

	const key = "plan|life=uniform|L=777|hl=0|d=0|c=1"
	val := json.RawMessage(`{"key":"` + key + `","expected_work":7}`)
	n.Offer(key, val)

	deadline := time.Now().Add(2 * time.Second)
	for !peer.store.has(key) {
		if time.Now().After(deadline) {
			t.Fatal("peer never received the pushed entry")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, _ := peer.store.PeerGet(key)
	if string(got) != string(val) {
		t.Errorf("peer stored %s, want %s", got, val)
	}

	// Steal-mode offers are a no-op.
	steal := newTestNode(t, self, []string{self, peer.srv.URL}, Config{}, newMemStore())
	steal.Offer("plan|other", val)
	time.Sleep(50 * time.Millisecond)
	if peer.store.has("plan|other") {
		t.Error("steal-mode Offer pushed to a peer")
	}
}

// The drain/restart cycle: a draining replica hands its hot working
// set to the survivor, and a restarted replica pulls back exactly its
// own arc — so the first warm wave after a rolling restart is served
// from cache on both policies.
func TestHandoffThenWarmStart(t *testing.T) {
	survivor := startPeer(t, 0)
	self := "http://restarting.test:0"
	peers := []string{self, survivor.srv.URL}

	// The "old" process: a store with 40 hot entries across both arcs.
	oldStore := newMemStore()
	old := newTestNode(t, self, peers, Config{HotN: 64}, oldStore)
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = "plan|synthetic|" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		val := json.RawMessage(`{"k":"` + keys[i] + `"}`)
		if err := oldStore.PeerPut(keys[i], val); err != nil {
			t.Fatal(err)
		}
	}
	if pushed := old.Handoff(context.Background()); pushed != len(keys) {
		t.Fatalf("Handoff pushed %d entries, want %d (single survivor takes all)", pushed, len(keys))
	}
	if survivor.store.len() != len(keys) {
		t.Fatalf("survivor holds %d entries after handoff, want %d", survivor.store.len(), len(keys))
	}

	// The "new" process: empty store, same ring. WarmStart must install
	// exactly the keys this replica owns — the others stay with the
	// survivor, where routed traffic (or a steal) will find them.
	newStore := newMemStore()
	restarted := newTestNode(t, self, peers, Config{HotN: 64}, newStore)
	installed := restarted.WarmStart(context.Background())

	owned := 0
	for _, key := range keys {
		if restarted.Ring().Owner(key) == self {
			owned++
			if !newStore.has(key) {
				t.Errorf("own-arc key %q missing after warm start", key)
			}
		} else if newStore.has(key) {
			t.Errorf("warm start installed %q, which belongs to the survivor", key)
		}
	}
	if installed != owned {
		t.Errorf("WarmStart reported %d installs, want %d (own arc of %d keys)", installed, owned, len(keys))
	}
	if owned == 0 {
		t.Fatal("test key set has no keys on the restarting replica's arc; widen the key set")
	}
}

// Config validation failures.
func TestNewNodeRejects(t *testing.T) {
	store := newMemStore()
	if _, err := NewNode(Config{Self: "http://a:1", Peers: []string{"http://a:1"}, Fill: "borrow"}, store); err == nil {
		t.Error("unknown fill policy accepted")
	}
	if _, err := NewNode(Config{Self: "http://a:1", Peers: []string{"http://b:1"}}, store); err == nil {
		t.Error("self outside the replica set accepted")
	}
	if _, err := NewNode(Config{Self: "http://a:1", Peers: []string{"http://a:1"}}, nil); err == nil {
		t.Error("nil store accepted")
	}
}
