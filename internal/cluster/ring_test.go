package cluster

import (
	"fmt"
	"testing"
)

func syntheticKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("plan|life=poly|L=%d|d=3|c=1", 100+i)
	}
	return keys
}

func nodeURLs(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return urls
}

// Ownership is a pure function of (node set, key): input order and
// duplicates must not matter, or two ring builders (gate, csload,
// replicas) would disagree on routing.
func TestRingDeterministic(t *testing.T) {
	urls := nodeURLs(5)
	shuffled := []string{urls[3], urls[0], urls[4], urls[0], urls[2], urls[1]}
	a, b := NewRing(urls), NewRing(shuffled)
	if a.Len() != 5 || b.Len() != 5 {
		t.Fatalf("ring sizes = %d, %d, want 5 (duplicates deduped)", a.Len(), b.Len())
	}
	for _, key := range syntheticKeys(200) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs across build orders: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

// Owners returns every node exactly once, highest preference first,
// with Owner as its head.
func TestRingOwnersPreference(t *testing.T) {
	ring := NewRing(nodeURLs(6))
	for _, key := range syntheticKeys(50) {
		owners := ring.Owners(key, ring.Len())
		if len(owners) != 6 {
			t.Fatalf("Owners(%q) returned %d nodes, want 6", key, len(owners))
		}
		if owners[0] != ring.Owner(key) {
			t.Fatalf("Owners(%q)[0] = %s, Owner = %s", key, owners[0], ring.Owner(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %s", key, o)
			}
			seen[o] = true
		}
		if got := ring.Owners(key, 2); len(got) != 2 || got[0] != owners[0] || got[1] != owners[1] {
			t.Fatalf("Owners(%q, 2) = %v, want prefix of %v", key, got, owners[:2])
		}
	}
}

// The core rendezvous property behind zero-downtime drains: removing a
// node remaps exactly that node's keys, and each remapped key lands on
// its previous second choice. Survivors' arcs are untouched.
func TestRingRemovalRemapsOnlyOwnArc(t *testing.T) {
	const n = 8
	urls := nodeURLs(n)
	keys := syntheticKeys(10_000)
	full := NewRing(urls)
	removed := urls[3]
	reduced := NewRing(append(append([]string{}, urls[:3]...), urls[4:]...))

	fromRemoved := 0
	for _, key := range keys {
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != removed {
			if after != before {
				t.Fatalf("key %q moved %s -> %s though its owner was not removed", key, before, after)
			}
			continue
		}
		fromRemoved++
		if want := full.Owners(key, 2)[1]; after != want {
			t.Fatalf("key %q remapped to %s, want its second preference %s", key, after, want)
		}
	}
	// The removed node's arc should be roughly 1/n of the key space.
	lo, hi := len(keys)/(2*n), 2*len(keys)/n
	if fromRemoved < lo || fromRemoved > hi {
		t.Errorf("removed node owned %d of %d keys, want roughly 1/%d in [%d, %d]",
			fromRemoved, len(keys), n, lo, hi)
	}
}

// Adding a node steals ~1/(n+1) of the key space — every remapped key
// moves to the new node and nowhere else.
func TestRingAdditionRemapBounds(t *testing.T) {
	const n = 8
	urls := nodeURLs(n)
	keys := syntheticKeys(10_000)
	before := NewRing(urls)
	added := "http://replica-new:8080"
	after := NewRing(append(append([]string{}, urls...), added))

	moved := 0
	for _, key := range keys {
		a, b := before.Owner(key), after.Owner(key)
		if a == b {
			continue
		}
		if b != added {
			t.Fatalf("key %q moved %s -> %s, but only the new node may gain keys", key, a, b)
		}
		moved++
	}
	lo, hi := len(keys)/(2*(n+1)), 2*len(keys)/(n+1)
	if moved < lo || moved > hi {
		t.Errorf("adding a node moved %d of %d keys, want roughly 1/%d in [%d, %d]",
			moved, len(keys), n+1, lo, hi)
	}
}

func TestRingValidate(t *testing.T) {
	ring := NewRing(nodeURLs(3))
	if err := ring.Validate(nodeURLs(3)[1]); err != nil {
		t.Errorf("Validate(member) = %v", err)
	}
	if err := ring.Validate("http://stranger:1"); err == nil {
		t.Error("Validate(non-member) succeeded")
	}
	if err := NewRing(nil).Validate("http://anyone:1"); err == nil {
		t.Error("empty ring accepted a named self")
	}
}
