package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Fill policies. On a local cache miss a stealing replica pulls the
// result from the key's previous holder before falling back to local
// compute; a sharing replica never pulls — instead every fresh
// computation is pushed to the key's next-preferred peers, so the copy
// is already there when a failover or restart moves traffic.
const (
	FillSteal = "steal"
	FillShare = "share"
)

// Entry is one cache entry on the peer wire: the canonical spec key and
// the stored response, opaque JSON to this package.
type Entry struct {
	Key string          `json:"key"`
	Val json.RawMessage `json:"val"`
}

// Store is the local cache a Node reads and fills. internal/serve's
// Server implements it over its plan/estimate LRUs.
type Store interface {
	// PeerGet returns the cached response for key, marshaled for the
	// wire; false on a miss.
	PeerGet(key string) (json.RawMessage, bool)
	// PeerPut installs a response received from a peer. Implementations
	// must validate the payload (a malformed or mis-keyed entry is an
	// error, not a crash).
	PeerPut(key string, val json.RawMessage) error
	// PeerHot returns up to n of the most recently used entries — the
	// working set worth handing off on drain or pulling on restart.
	PeerHot(n int) []Entry
}

// Config tunes a Node. Zero values take the defaults documented per
// field.
type Config struct {
	// Self is this replica's identity in Peers (its base URL). It is
	// excluded from fetch, push and handoff targets.
	Self string
	// Peers is the full replica set, including Self.
	Peers []string
	// Fill selects the peer fill policy: FillSteal (default) or
	// FillShare.
	Fill string
	// Timeout bounds one peer fetch attempt (default 250ms). A fetch
	// that misses it falls back — ultimately to local compute — so a
	// slow peer can delay a miss but never wedge it.
	Timeout time.Duration
	// Retries is the number of extra attempts per probed peer after a
	// transport error (default 1); Backoff is the delay before the
	// first retry, doubling per attempt (default 25ms).
	Retries int
	Backoff time.Duration
	// Probes caps how many peers a steal fill consults, in the key's
	// preference order (default 2: the key's fallback owner and the
	// next in line). A 404 moves to the next peer without retrying.
	Probes int
	// Concurrency bounds in-flight outbound peer fetches across all
	// requests (default 8); excess fills report a miss rather than
	// queueing behind a slow peer.
	Concurrency int
	// HotN is the working-set size for warm handoff: entries pushed to
	// peers on drain and pulled back on start (default 128).
	HotN int
	// Replicate is how many next-preferred peers a share-fill push
	// targets per computed key (default 1).
	Replicate int
	// Registry receives the node's metrics; a private one is created
	// when nil.
	Registry *obs.Registry
	// Client is the outbound HTTP client (default http.DefaultClient;
	// per-attempt deadlines come from Timeout, not the client).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Fill == "" {
		c.Fill = FillSteal
	}
	if c.Timeout <= 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.Probes <= 0 {
		c.Probes = 2
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.HotN <= 0 {
		c.HotN = 128
	}
	if c.Replicate <= 0 {
		c.Replicate = 1
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Node is one replica's cluster participation: it serves the peer
// protocol over the local Store and implements the configured fill
// policy against the other replicas. Create with NewNode, mount with
// Routes, stop with Close.
type Node struct {
	cfg    Config
	ring   *Ring
	store  Store
	client *http.Client
	sem    chan struct{}

	mu    sync.Mutex // guards fills
	fills map[string]*fillCall

	pushCh chan pushJob
	wg     sync.WaitGroup

	fetchHit   *obs.Counter
	fetchMiss  *obs.Counter
	fetchErr   *obs.Counter
	fetchRetry *obs.Counter
	pushSent   *obs.Counter
	pushDrop   *obs.Counter
	serveHit   *obs.Counter
	serveMiss  *obs.Counter
	installed  *obs.Counter
	handoff    *obs.Counter
	warmed     *obs.Counter
}

// fillCall coalesces concurrent steal fills for one key: the leader
// fetches, everyone waits on done.
type fillCall struct {
	done chan struct{}
	val  json.RawMessage
	ok   bool
}

type pushJob struct {
	key     string
	val     json.RawMessage
	targets []string
}

// NewNode builds a node for store over cfg's replica set.
func NewNode(cfg Config, store Store) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Fill != FillSteal && cfg.Fill != FillShare {
		return nil, fmt.Errorf("cluster: unknown fill policy %q (want %s or %s)", cfg.Fill, FillSteal, FillShare)
	}
	if store == nil {
		return nil, errors.New("cluster: nil store")
	}
	ring := NewRing(cfg.Peers)
	if err := ring.Validate(cfg.Self); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:    cfg,
		ring:   ring,
		store:  store,
		client: cfg.Client,
		sem:    make(chan struct{}, cfg.Concurrency),
		fills:  make(map[string]*fillCall),
		pushCh: make(chan pushJob, 256),
	}
	{
		reg := cfg.Registry
		n.fetchHit = reg.Counter(obs.Labeled("cs_cluster_peer_fetch_total", "outcome", "hit"), "steal fills satisfied by a peer")
		n.fetchMiss = reg.Counter(obs.Labeled("cs_cluster_peer_fetch_total", "outcome", "miss"), "steal fills no probed peer could satisfy")
		n.fetchErr = reg.Counter(obs.Labeled("cs_cluster_peer_fetch_total", "outcome", "error"), "peer fetch attempts that failed in transport")
		n.fetchRetry = reg.Counter("cs_cluster_peer_fetch_retries_total", "peer fetch attempts retried after a transport error")
		n.pushSent = reg.Counter("cs_cluster_push_total", "share-fill replications pushed to peers")
		n.pushDrop = reg.Counter("cs_cluster_push_dropped_total", "share-fill replications dropped because the push queue was full")
		n.serveHit = reg.Counter(obs.Labeled("cs_cluster_peer_serve_total", "outcome", "hit"), "peer cache lookups served from the local store")
		n.serveMiss = reg.Counter(obs.Labeled("cs_cluster_peer_serve_total", "outcome", "miss"), "peer cache lookups that missed the local store")
		n.installed = reg.Counter("cs_cluster_warm_installed_total", "entries installed into the local store by peer warm pushes")
		n.handoff = reg.Counter("cs_cluster_handoff_entries_total", "hot entries pushed to peers during drain")
		n.warmed = reg.Counter("cs_cluster_warm_start_total", "entries pulled from peers at startup")
	}
	n.wg.Add(1)
	//lint:allow goroutinecap the pusher drains pushCh, a channel closed exactly once by Close; Node fields it reads are set before the goroutine starts and never mutated
	go n.pusher()
	return n, nil
}

// Fill implements the serve-side PeerFiller hook: under steal it probes
// the key's preferred peers for a cached copy; under share it reports a
// miss immediately (sharing is push-only — the copy either arrived
// ahead of time or the miss computes locally). Concurrent fills for one
// key coalesce onto a single peer fetch.
func (n *Node) Fill(ctx context.Context, key string) (json.RawMessage, bool) {
	if n.cfg.Fill != FillSteal {
		return nil, false
	}
	n.mu.Lock()
	if c, ok := n.fills[key]; ok {
		n.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.ok
		case <-ctx.Done():
			return nil, false
		}
	}
	c := &fillCall{done: make(chan struct{})}
	n.fills[key] = c
	n.mu.Unlock()

	c.val, c.ok = n.fetch(ctx, key)
	n.mu.Lock()
	delete(n.fills, key)
	n.mu.Unlock()
	close(c.done)
	return c.val, c.ok
}

// fetch walks the key's peer preference order under the concurrency
// bound, retrying transport errors with exponential backoff and
// treating a 404 as an authoritative miss at that peer.
func (n *Node) fetch(ctx context.Context, key string) (json.RawMessage, bool) {
	select {
	case n.sem <- struct{}{}:
		defer func() { <-n.sem }()
	case <-ctx.Done():
		return nil, false
	}
	probed := 0
	for _, peer := range n.ring.Owners(key, n.ring.Len()) {
		if peer == n.cfg.Self {
			continue
		}
		if probed >= n.cfg.Probes {
			break
		}
		probed++
		backoff := n.cfg.Backoff
		for attempt := 0; attempt <= n.cfg.Retries; attempt++ {
			if attempt > 0 {
				n.fetchRetry.Inc()
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					n.fetchMiss.Inc()
					return nil, false
				}
				backoff *= 2
			}
			val, found, retryable := n.fetchOne(ctx, peer, key)
			if found {
				n.fetchHit.Inc()
				return val, true
			}
			if !retryable {
				break // authoritative miss at this peer: move on
			}
			n.fetchErr.Inc()
		}
		if ctx.Err() != nil {
			break
		}
	}
	n.fetchMiss.Inc()
	return nil, false
}

// fetchOne performs one GET /v1/peer/cache/{key} against peer.
// retryable distinguishes transport/server errors (worth retrying)
// from an authoritative 404 miss.
func (n *Node) fetchOne(ctx context.Context, peer, key string) (val json.RawMessage, found, retryable bool) {
	actx, cancel := context.WithTimeout(ctx, n.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, peer+"/v1/peer/cache/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, false, false
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, false, true
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
		if err != nil {
			return nil, false, true
		}
		return body, true, false
	case http.StatusNotFound:
		return nil, false, false
	default:
		return nil, false, true
	}
}

// Offer publishes a freshly computed response for push replication.
// Under steal it is a no-op; under share the entry is queued for the
// key's next-preferred peers and pushed asynchronously — a full queue
// drops the offer (replication is an optimization, never backpressure
// on the serving path).
func (n *Node) Offer(key string, val json.RawMessage) {
	if n.cfg.Fill != FillShare {
		return
	}
	targets := n.pushTargets(key, n.cfg.Replicate)
	if len(targets) == 0 {
		return
	}
	select {
	case n.pushCh <- pushJob{key: key, val: val, targets: targets}:
	default:
		n.pushDrop.Inc()
	}
}

// pushTargets returns up to k peers in the key's preference order,
// excluding self.
func (n *Node) pushTargets(key string, k int) []string {
	var targets []string
	for _, peer := range n.ring.Owners(key, n.ring.Len()) {
		if peer == n.cfg.Self {
			continue
		}
		targets = append(targets, peer)
		if len(targets) >= k {
			break
		}
	}
	return targets
}

func (n *Node) pusher() {
	defer n.wg.Done()
	for job := range n.pushCh {
		for _, target := range job.targets {
			if n.pushWarm(context.Background(), target, []Entry{{Key: job.key, Val: job.val}}) == nil {
				n.pushSent.Inc()
			}
		}
	}
}

// warmRequest is the POST /v1/peer/warm body.
type warmRequest struct {
	Entries []Entry `json:"entries"`
}

// warmResponse reports how many entries the receiver installed.
type warmResponse struct {
	Installed int `json:"installed"`
}

// hotResponse is the GET /v1/peer/hot body.
type hotResponse struct {
	Entries []Entry `json:"entries"`
}

// pushWarm POSTs entries to target's /v1/peer/warm.
func (n *Node) pushWarm(ctx context.Context, target string, entries []Entry) error {
	body, err := json.Marshal(warmRequest{Entries: entries})
	if err != nil {
		return err
	}
	actx, cancel := context.WithTimeout(ctx, 4*n.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, target+"/v1/peer/warm", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: warm push to %s: status %d", target, resp.StatusCode)
	}
	return nil
}

// Handoff pushes the local store's hottest entries to their
// next-preferred peers — the drain-time half of warm handoff, called
// after this replica stops accepting traffic so its working set
// survives the restart somewhere steal can find it (and share-filled
// peers get any keys the compute-time pushes missed). Returns the
// number of entries pushed.
func (n *Node) Handoff(ctx context.Context) int {
	entries := n.store.PeerHot(n.cfg.HotN)
	byTarget := make(map[string][]Entry)
	for _, e := range entries {
		targets := n.pushTargets(e.Key, 1)
		if len(targets) == 0 {
			continue
		}
		byTarget[targets[0]] = append(byTarget[targets[0]], e)
	}
	pushed := 0
	for target, batch := range byTarget {
		if ctx.Err() != nil {
			break
		}
		if n.pushWarm(ctx, target, batch) == nil {
			pushed += len(batch)
		}
	}
	n.handoff.Add(uint64(pushed))
	return pushed
}

// WarmStart pulls each peer's hot working set and installs the entries
// this replica owns — the restart-time half of warm handoff, called
// before serving so the first warm wave hits a populated cache instead
// of stampeding the worker pool. Returns the number of entries
// installed.
func (n *Node) WarmStart(ctx context.Context) int {
	installed := 0
	for _, peer := range n.ring.Nodes() {
		if peer == n.cfg.Self || ctx.Err() != nil {
			continue
		}
		entries, err := n.pullHot(ctx, peer)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if n.cfg.Self != "" && n.ring.Owner(e.Key) != n.cfg.Self {
				continue // not our arc: the gate will not route it here
			}
			if n.store.PeerPut(e.Key, e.Val) == nil {
				installed++
			}
		}
	}
	n.warmed.Add(uint64(installed))
	return installed
}

// pullHot GETs peer's /v1/peer/hot working set.
func (n *Node) pullHot(ctx context.Context, peer string) ([]Entry, error) {
	actx, cancel := context.WithTimeout(ctx, 4*n.cfg.Timeout)
	defer cancel()
	u := peer + "/v1/peer/hot?n=" + strconv.Itoa(n.cfg.HotN)
	req, err := http.NewRequestWithContext(actx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: hot pull from %s: status %d", peer, resp.StatusCode)
	}
	var hot hotResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxWarmBytes)).Decode(&hot); err != nil {
		return nil, err
	}
	return hot.Entries, nil
}

// Wire-size caps: one cached response, and one warm batch.
const (
	maxEntryBytes = 1 << 20
	maxWarmBytes  = 16 << 20
)

// Routes mounts the peer protocol on mux:
//
//	GET  /v1/peer/cache/{key}  one entry, 404 on miss
//	POST /v1/peer/warm         install pushed entries
//	GET  /v1/peer/hot?n=N      the hottest N local entries
//
// Peer traffic is replica-to-replica: it is deliberately outside the
// SLO-tracked user routes and outside the serving path's pool (lookups
// touch only the cache).
func (n *Node) Routes(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/peer/cache/{key}", n.handleCacheGet)
	mux.HandleFunc("POST /v1/peer/warm", n.handleWarm)
	mux.HandleFunc("GET /v1/peer/hot", n.handleHot)
}

func (n *Node) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	val, ok := n.store.PeerGet(key)
	if !ok {
		n.serveMiss.Inc()
		http.Error(w, "miss", http.StatusNotFound)
		return
	}
	n.serveHit.Inc()
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(val)
}

func (n *Node) handleWarm(w http.ResponseWriter, r *http.Request) {
	var req warmRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxWarmBytes))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad warm body: "+err.Error(), http.StatusBadRequest)
		return
	}
	installed := 0
	for _, e := range req.Entries {
		if e.Key == "" || len(e.Val) == 0 || len(e.Val) > maxEntryBytes {
			continue
		}
		if n.store.PeerPut(e.Key, e.Val) == nil {
			installed++
		}
	}
	n.installed.Add(uint64(installed))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(warmResponse{Installed: installed})
}

func (n *Node) handleHot(w http.ResponseWriter, r *http.Request) {
	count := n.cfg.HotN
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if v < count {
			count = v
		}
	}
	entries := n.store.PeerHot(count)
	if entries == nil {
		entries = []Entry{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(hotResponse{Entries: entries})
}

// Fill policy and ring accessors (csserve's healthz/log lines).
func (n *Node) FillPolicy() string { return n.cfg.Fill }
func (n *Node) Ring() *Ring        { return n.ring }

// Close stops the push worker. Call after the HTTP layer is down.
func (n *Node) Close() {
	close(n.pushCh)
	n.wg.Wait()
}
