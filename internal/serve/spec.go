// Package serve is the long-running plan/simulation service: HTTP/JSON
// endpoints over the paper's planner (system 3.6 recurrence via
// core.PlanBest) and the nowsim Monte-Carlo harness, scaled for many
// concurrent what-if queries by three layers:
//
//   - a sharded LRU cache of computed plans keyed by the canonicalized
//     request spec, so an identical question is answered once;
//   - request coalescing (singleflight): N concurrent identical
//     requests run one computation and share the result, with the
//     computation cancelled only when every waiter has gone away;
//   - a bounded worker pool with backpressure: a full queue rejects
//     immediately (the handler maps that to 429 + Retry-After) instead
//     of letting latency collapse, and per-request deadlines abandon
//     simulations nobody is waiting for.
//
// Everything is instrumented through internal/obs: request latency
// quantiles, queue depth, cache hit/miss/eviction counts, coalesce and
// cancellation counters, all on /metrics.
package serve

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
)

// Spec limits. Bounds are validation, not tuning: they keep one request
// from monopolizing a worker for minutes or blowing up the response
// size.
const (
	// MaxEpisodesLimit caps /v1/estimate episode counts.
	MaxEpisodesLimit = 5_000_000
	// maxLifespan caps lifespans/half-lives so schedule generation and
	// episode simulation stay bounded.
	maxLifespan = 1e9
	// maxPolyDegree caps the polynomial exponent.
	maxPolyDegree = 64
)

// PlanSpec is the body of POST /v1/plan: a life-function scenario to
// plan for. Zero-valued fields take the CLI defaults (uniform life,
// L=1000, halflife=32, d=2, c=1), mirroring csplan.
type PlanSpec struct {
	// Life is the life-function family: uniform, poly, geomdec or
	// geominc (the nowsim.BuildLife vocabulary).
	Life string `json:"life,omitempty"`
	// Lifespan is the potential lifespan L (uniform, poly, geominc).
	Lifespan float64 `json:"lifespan,omitempty"`
	// HalfLife is the geometric half-life (geomdec).
	HalfLife float64 `json:"halflife,omitempty"`
	// D is the polynomial exponent (poly).
	D int `json:"d,omitempty"`
	// C is the per-period communication overhead.
	C float64 `json:"c,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline,
	// clamped to its maximum. It does not participate in the cache key.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// lifeParams records which spec fields a life family actually reads.
// Canonicalization zeroes the rest, so requests differing only in an
// ignored parameter share one cache entry and one in-flight
// computation.
var lifeParams = map[string]struct{ lifespan, halflife, d bool }{
	"uniform": {lifespan: true},
	"poly":    {lifespan: true, d: true},
	"geomdec": {halflife: true},
	"geominc": {lifespan: true},
}

// normalize applies defaults, validates ranges, and strips parameters
// the chosen life function ignores. The returned spec is canonical:
// two requests asking the same mathematical question normalize to
// equal specs and therefore equal cache keys.
func (s PlanSpec) normalize() (PlanSpec, error) {
	if s.Life == "" {
		s.Life = "uniform"
	}
	params, ok := lifeParams[s.Life]
	if !ok {
		return s, fmt.Errorf("unknown life function %q (want uniform, poly, geomdec, or geominc)", s.Life)
	}
	if s.Lifespan == 0 {
		s.Lifespan = 1000
	}
	if s.HalfLife == 0 {
		s.HalfLife = 32
	}
	if s.D == 0 {
		s.D = 2
	}
	if s.C == 0 {
		s.C = 1
	}
	if !(s.C > 0) || math.IsInf(s.C, 0) || math.IsNaN(s.C) {
		return s, fmt.Errorf("overhead c must be positive and finite, got %g", s.C)
	}
	if !(s.Lifespan > 0) || s.Lifespan > maxLifespan {
		return s, fmt.Errorf("lifespan must be in (0, %g], got %g", maxLifespan, s.Lifespan)
	}
	if !(s.HalfLife > 0) || s.HalfLife > maxLifespan {
		return s, fmt.Errorf("halflife must be in (0, %g], got %g", maxLifespan, s.HalfLife)
	}
	if s.D < 1 || s.D > maxPolyDegree {
		return s, fmt.Errorf("d must be in [1, %d], got %d", maxPolyDegree, s.D)
	}
	if !params.lifespan {
		s.Lifespan = 0
	}
	if !params.halflife {
		s.HalfLife = 0
	}
	if !params.d {
		s.D = 0
	}
	if s.TimeoutMS < 0 {
		return s, fmt.Errorf("timeout_ms must be >= 0, got %d", s.TimeoutMS)
	}
	return s, nil
}

// g formats a float the way the cache key needs: shortest exact form.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Key returns the canonical cache key. Call only on normalized specs.
func (s PlanSpec) key() string {
	var sb strings.Builder
	sb.WriteString("plan|life=")
	sb.WriteString(s.Life)
	sb.WriteString("|L=")
	sb.WriteString(g(s.Lifespan))
	sb.WriteString("|hl=")
	sb.WriteString(g(s.HalfLife))
	sb.WriteString("|d=")
	sb.WriteString(strconv.Itoa(s.D))
	sb.WriteString("|c=")
	sb.WriteString(g(s.C))
	return sb.String()
}

// Canonicalize returns the normalized spec — exported for the csgate
// front tier and csload's client-side shard map, which must derive the
// same cache key a replica will so consistent-hash routing and the
// replica's cache agree on key identity.
func (s PlanSpec) Canonicalize() (PlanSpec, error) { return s.normalize() }

// Key returns the canonical cache key of a canonicalized spec.
func (s PlanSpec) Key() string { return s.key() }

// buildLife resolves the normalized spec to a life function, restoring
// the defaults canonicalization zeroed (BuildLife validates the ones
// that matter).
func (s PlanSpec) buildLife() (lifefn.Life, error) {
	lifespan, halflife, d := s.Lifespan, s.HalfLife, s.D
	if lifespan == 0 {
		lifespan = 1000
	}
	if halflife == 0 {
		halflife = 32
	}
	if d == 0 {
		d = 2
	}
	return nowsim.BuildLife(s.Life, lifespan, halflife, d)
}

// EstimateSpec is the body of POST /v1/estimate: a scenario plus a
// chunking policy and Monte-Carlo parameters. The estimate is
// deterministic given (spec, policy, episodes, seed), which is what
// makes coalescing and caching sound.
type EstimateSpec struct {
	PlanSpec
	// Policy is the nowsim.ParsePolicy vocabulary: guideline,
	// progressive, fixed:<chunk>, or allatonce.
	Policy string `json:"policy,omitempty"`
	// Episodes is the Monte-Carlo episode count (default 100000,
	// capped by the server's -max-episodes).
	Episodes int `json:"episodes,omitempty"`
	// Seed seeds the deterministic RNG stream (default 1).
	Seed uint64 `json:"seed,omitempty"`
}

var errEpisodesRange = errors.New("episodes out of range")

// normalize canonicalizes the embedded scenario and the Monte-Carlo
// parameters. maxEpisodes is the server's configured cap.
func (s EstimateSpec) normalize(maxEpisodes int) (EstimateSpec, error) {
	var err error
	s.PlanSpec, err = s.PlanSpec.normalize()
	if err != nil {
		return s, err
	}
	if s.Policy == "" {
		s.Policy = "guideline"
	}
	if s.Episodes == 0 {
		s.Episodes = 100_000
	}
	if maxEpisodes <= 0 || maxEpisodes > MaxEpisodesLimit {
		maxEpisodes = MaxEpisodesLimit
	}
	if s.Episodes < 1 || s.Episodes > maxEpisodes {
		return s, fmt.Errorf("%w: want [1, %d], got %d", errEpisodesRange, maxEpisodes, s.Episodes)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s, nil
}

// key returns the canonical cache key. Call only on normalized specs.
func (s EstimateSpec) key() string {
	var sb strings.Builder
	sb.WriteString("est|")
	sb.WriteString(s.PlanSpec.key())
	sb.WriteString("|policy=")
	sb.WriteString(s.Policy)
	sb.WriteString("|n=")
	sb.WriteString(strconv.Itoa(s.Episodes))
	sb.WriteString("|seed=")
	sb.WriteString(strconv.FormatUint(s.Seed, 10))
	return sb.String()
}

// Canonicalize returns the normalized spec under the hard episode
// ceiling (a router cannot know a replica's configured cap; a spec the
// gate canonicalizes but the replica rejects is answered 4xx by the
// replica either way).
func (s EstimateSpec) Canonicalize() (EstimateSpec, error) { return s.normalize(MaxEpisodesLimit) }

// Key returns the canonical cache key of a canonicalized spec.
func (s EstimateSpec) Key() string { return s.key() }

// parsePolicy resolves the normalized spec's policy against its life
// function. The policy spec is validated before any pool work is
// queued, so bad requests fail fast with a 4xx.
func (s EstimateSpec) parsePolicy(l lifefn.Life) (nowsim.PolicySpec, error) {
	return nowsim.ParsePolicy(s.Policy, l, s.C, planOptions())
}

// planOptions is the planner tuning the service uses: the library
// defaults (MaxPeriods 10k, ScanPoints 64) — the same question a
// csplan invocation would ask, so cached answers agree with the CLI.
func planOptions() core.PlanOptions { return core.PlanOptions{} }
