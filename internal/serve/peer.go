package serve

// Cluster participation. A clustered Server plays two roles:
//
//   - it consumes peer fill through the PeerFiller hook — consulted on
//     a cache miss inside the per-key singleflight (so concurrent
//     misses on one key cause at most one peer fetch) and offered every
//     freshly computed response for push replication;
//   - it is the cluster's local Store — PeerGet/PeerPut/PeerHot
//     implement internal/cluster.Store over the plan and estimate LRUs,
//     serving the peer protocol endpoints a cluster.Node mounts.
//
// Responses cross the peer wire as their JSON encodings. The per-
// response serving stamps (cached / coalesced / peer_filled /
// elapsed_ms) are zeroed before an entry is stored, exactly as the
// local compute path stores unstamped values, so a peer-filled entry is
// indistinguishable from a locally computed one on the next hit.

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// PeerFiller is the cluster fill hook (implemented by cluster.Node).
type PeerFiller interface {
	// Fill tries to satisfy a cache miss from a peer; the returned
	// payload is a marshaled PlanResponse or EstimateResponse.
	Fill(ctx context.Context, key string) (json.RawMessage, bool)
	// Offer publishes a freshly computed response for push
	// replication; implementations must not block the serving path.
	Offer(key string, val json.RawMessage)
}

// SetPeers installs the cluster fill hook. Call before the server
// starts handling requests; a nil hook (the default) disables peer
// fill.
func (s *Server) SetPeers(p PeerFiller) { s.peers = p }

// cacheFor maps a canonical key to the cache that stores it: estimate
// keys carry the "est|" prefix, everything else is a plan key.
func (s *Server) cacheFor(key string) *Cache {
	if strings.HasPrefix(key, "est|") {
		return s.estCache
	}
	return s.planCache
}

// peerFillPlan asks the cluster for a cached plan on a local miss,
// installing a hit into the local cache. Runs inside the singleflight
// leader, on the group-owned context, so the peer phase bills to the
// request that triggered the fetch.
func (s *Server) peerFillPlan(ctx context.Context, key string) (PlanResponse, bool) {
	if s.peers == nil {
		return PlanResponse{}, false
	}
	endPeer := obs.StartPhase(ctx, obs.PhasePeer)
	raw, ok := s.peers.Fill(ctx, key)
	if ok {
		var resp PlanResponse
		if err := json.Unmarshal(raw, &resp); err == nil && resp.Key == key {
			resp.Cached, resp.Coalesced, resp.PeerFilled, resp.ElapsedMS = false, false, false, 0
			s.planCache.Put(key, resp)
			resp.PeerFilled = true
			endPeer("outcome", "hit")
			s.peerFilled.Inc()
			return resp, true
		}
	}
	endPeer("outcome", "miss")
	s.peerMissed.Inc()
	return PlanResponse{}, false
}

// peerFillEstimate is peerFillPlan for the estimate cache.
func (s *Server) peerFillEstimate(ctx context.Context, key string) (EstimateResponse, bool) {
	if s.peers == nil {
		return EstimateResponse{}, false
	}
	endPeer := obs.StartPhase(ctx, obs.PhasePeer)
	raw, ok := s.peers.Fill(ctx, key)
	if ok {
		var resp EstimateResponse
		if err := json.Unmarshal(raw, &resp); err == nil && resp.Key == key {
			resp.Cached, resp.Coalesced, resp.PeerFilled, resp.ElapsedMS = false, false, false, 0
			s.estCache.Put(key, resp)
			resp.PeerFilled = true
			endPeer("outcome", "hit")
			s.peerFilled.Inc()
			return resp, true
		}
	}
	endPeer("outcome", "miss")
	s.peerMissed.Inc()
	return EstimateResponse{}, false
}

// offerPeers hands a freshly computed response to the cluster for push
// replication (a no-op under steal fill or outside a cluster).
func (s *Server) offerPeers(key string, resp any) {
	if s.peers == nil {
		return
	}
	raw, err := json.Marshal(resp)
	if err != nil {
		return
	}
	s.peers.Offer(key, raw)
}

// PeerGet implements cluster.Store: the cached response for key,
// marshaled for the wire. The lookup goes through the ordinary cache
// path, so a peer steal bumps the entry's recency — a key the cluster
// keeps asking for stays in this replica's working set.
func (s *Server) PeerGet(key string) (json.RawMessage, bool) {
	v, ok := s.cacheFor(key).Get(key)
	if !ok {
		return nil, false
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, false
	}
	return raw, true
}

// PeerPut implements cluster.Store: validate and install an entry
// received from a peer (warm push, drain handoff, or startup pull).
func (s *Server) PeerPut(key string, val json.RawMessage) error {
	if strings.HasPrefix(key, "est|") {
		var resp EstimateResponse
		if err := json.Unmarshal(val, &resp); err != nil {
			return fmt.Errorf("serve: bad peer estimate entry: %w", err)
		}
		if resp.Key != key {
			return fmt.Errorf("serve: peer entry key mismatch: %q vs %q", resp.Key, key)
		}
		resp.Cached, resp.Coalesced, resp.PeerFilled, resp.ElapsedMS = false, false, false, 0
		s.estCache.Put(key, resp)
		return nil
	}
	var resp PlanResponse
	if err := json.Unmarshal(val, &resp); err != nil {
		return fmt.Errorf("serve: bad peer plan entry: %w", err)
	}
	if resp.Key != key {
		return fmt.Errorf("serve: peer entry key mismatch: %q vs %q", resp.Key, key)
	}
	resp.Cached, resp.Coalesced, resp.PeerFilled, resp.ElapsedMS = false, false, false, 0
	s.planCache.Put(key, resp)
	return nil
}

// PeerHot implements cluster.Store: the hottest entries across both
// caches, plan entries first (they are the cheap-to-move, expensive-
// to-recompute majority of the working set).
func (s *Server) PeerHot(n int) []cluster.Entry {
	if n <= 0 {
		return nil
	}
	entries := make([]cluster.Entry, 0, n)
	appendHot := func(c *Cache, quota int) {
		keys, vals := c.Hottest(quota)
		for i, key := range keys {
			raw, err := json.Marshal(vals[i])
			if err != nil {
				continue
			}
			entries = append(entries, cluster.Entry{Key: key, Val: raw})
		}
	}
	appendHot(s.planCache, n)
	if len(entries) < n {
		appendHot(s.estCache, n-len(entries))
	}
	return entries
}
