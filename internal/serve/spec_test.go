package serve

import (
	"strings"
	"testing"
)

func TestPlanSpecDefaultsAndKey(t *testing.T) {
	spec, err := PlanSpec{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Life != "uniform" || spec.Lifespan != 1000 || spec.C != 1 {
		t.Errorf("defaults wrong: %+v", spec)
	}
	if got := spec.key(); got != "plan|life=uniform|L=1000|hl=0|d=0|c=1" {
		t.Errorf("key = %q", got)
	}
}

// Requests that differ only in parameters their life function ignores
// must canonicalize to the same key; parameters that matter must keep
// keys apart.
func TestPlanSpecCanonicalizationMergesIrrelevantFields(t *testing.T) {
	a, err := PlanSpec{Life: "uniform", Lifespan: 500, HalfLife: 99, D: 7}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanSpec{Life: "uniform", Lifespan: 500, HalfLife: 3, D: 1}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.key() != b.key() {
		t.Errorf("irrelevant fields split the key: %q vs %q", a.key(), b.key())
	}
	c, err := PlanSpec{Life: "uniform", Lifespan: 501}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.key() == c.key() {
		t.Error("different lifespans share a key")
	}
	d, err := PlanSpec{Life: "geomdec", Lifespan: 500, HalfLife: 32}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.key(), "|L=0|") {
		t.Errorf("geomdec key should drop the lifespan: %q", d.key())
	}
}

// TimeoutMS must not participate in the cache key: the same question
// with a different deadline is still the same question.
func TestPlanSpecTimeoutNotInKey(t *testing.T) {
	a, _ := PlanSpec{TimeoutMS: 50}.normalize()
	b, _ := PlanSpec{TimeoutMS: 5000}.normalize()
	if a.key() != b.key() {
		t.Errorf("timeout leaked into the key: %q vs %q", a.key(), b.key())
	}
}

func TestPlanSpecValidation(t *testing.T) {
	cases := []PlanSpec{
		{Life: "weibull"},      // not served
		{C: -1},                // bad overhead
		{Lifespan: -5},         // bad lifespan
		{Life: "poly", D: 200}, // degree over cap
		{Lifespan: 1e12},       // over cap
		{Life: "geomdec", HalfLife: -1},
		{TimeoutMS: -3},
	}
	for _, spec := range cases {
		if _, err := spec.normalize(); err == nil {
			t.Errorf("spec %+v should not validate", spec)
		}
	}
}

func TestEstimateSpecDefaultsAndKey(t *testing.T) {
	spec, err := EstimateSpec{}.normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Policy != "guideline" || spec.Episodes != 100_000 || spec.Seed != 1 {
		t.Errorf("defaults wrong: %+v", spec)
	}
	want := "est|plan|life=uniform|L=1000|hl=0|d=0|c=1|policy=guideline|n=100000|seed=1"
	if got := spec.key(); got != want {
		t.Errorf("key = %q, want %q", got, want)
	}
}

func TestEstimateSpecEpisodeCap(t *testing.T) {
	if _, err := (EstimateSpec{Episodes: 2_000_001}).normalize(2_000_000); err == nil {
		t.Error("episodes over the cap should not validate")
	}
	if _, err := (EstimateSpec{Episodes: -5}).normalize(0); err == nil {
		t.Error("negative episodes should not validate")
	}
	if _, err := (EstimateSpec{Episodes: 1_999_999}).normalize(2_000_000); err != nil {
		t.Errorf("episodes under the cap rejected: %v", err)
	}
}

// The life the spec builds must round-trip through the shared nowsim
// vocabulary for every served family.
func TestPlanSpecBuildLifeAllFamilies(t *testing.T) {
	for _, spec := range []PlanSpec{
		{Life: "uniform", Lifespan: 100},
		{Life: "poly", Lifespan: 100, D: 3},
		{Life: "geomdec", HalfLife: 16},
		{Life: "geominc", Lifespan: 64},
	} {
		n, err := spec.normalize()
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if _, err := n.buildLife(); err != nil {
			t.Errorf("%+v: buildLife: %v", spec, err)
		}
	}
}
