package serve

import (
	"context"
	"sync"

	"repro/internal/obs"
)

// flightGroup coalesces concurrent calls that share a key: the first
// caller becomes the leader and runs fn once in its own goroutine;
// everyone (leader included) waits for that one result. The
// computation runs on a context owned by the group, cancelled only
// when every waiter has abandoned the call — one impatient client
// cannot kill a result three other clients still want, but a
// computation nobody is waiting for stops burning a worker.
type flightGroup struct {
	mu sync.Mutex // guards m and every flightCall's waiters/shared
	m  map[string]*flightCall
}

type flightCall struct {
	done    chan struct{} // closed when val/err are set
	val     any
	err     error
	waiters int
	shared  bool // a second waiter ever joined
	cancel  context.CancelFunc
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// Do returns fn's result for key, running fn at most once per key at a
// time. shared reports whether the result (or error) was shared with
// other callers; leader reports whether this caller started the
// computation (followers joined an existing one — their wait is
// coalesce time, not compute time). When ctx ends before the
// computation finishes, Do returns ctx's error; if that caller was the
// last waiter the computation's context is cancelled too.
//
// The follower path (joining an in-flight call) is allocation-free;
// the leader path's allocations are once per computation, amortized
// over every coalesced caller, and carry hotalloc allowances below.
//
//cs:hotpath coalesce
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (v any, shared, leader bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters++
		c.shared = true
		g.mu.Unlock()
		v, shared, err = g.wait(ctx, c)
		return v, shared, false, err
	}
	runCtx, cancel := context.WithCancel(context.Background())
	// The computation outlives ctx by design, but it still attributes
	// its queue/compute time to the trace of the request that started
	// it. If the leader's request finishes first, the trace is already
	// finalized and late phases are dropped — the attribution
	// invariant (phases <= total) survives leader abandonment.
	runCtx = obs.ContextWithReqTrace(runCtx, obs.ReqTraceFrom(ctx))         //lint:allow hotalloc leader path: trace propagation happens once per computation
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel} //lint:allow hotalloc leader path: one call record per computation, shared by all coalesced callers
	g.m[key] = c
	g.mu.Unlock()
	//lint:allow hotalloc leader path: one worker goroutine per computation
	go func() {
		//lint:allow ctxguard runCtx is group-owned, not the request's: the leader goroutine must outlive an impatient leader, and wait() cancels runCtx when the last waiter leaves
		v, err := fn(runCtx)
		g.mu.Lock()
		c.val, c.err = v, err
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
		cancel()
	}()
	//lint:allow goroutinecap c.val/c.err are published before close(c.done) and read only after it; waiters/shared are guarded by g.mu
	v, shared, err = g.wait(ctx, c)
	return v, shared, true, err
}

// wait blocks until the call completes or ctx ends. Leaving as the
// last waiter cancels the computation.
func (g *flightGroup) wait(ctx context.Context, c *flightCall) (any, bool, error) {
	select {
	case <-c.done:
		return c.val, c.shared, c.err
	case <-ctx.Done():
	}
	// The caller gave up. If the call completed in the meantime,
	// prefer its result — it is already paid for.
	select {
	case <-c.done:
		return c.val, c.shared, c.err
	default:
	}
	g.mu.Lock()
	c.waiters--
	last := c.waiters == 0
	shared := c.shared
	g.mu.Unlock()
	if last {
		c.cancel()
	}
	return nil, shared, ctx.Err()
}
