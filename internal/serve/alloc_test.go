package serve

import "testing"

// TestCacheGetHitAllocFree pins the //cs:hotpath budget of the cache
// hit path at runtime: shard selection, map lookup and the LRU bump
// must not allocate.
func TestCacheGetHitAllocFree(t *testing.T) {
	c := NewCache(64, 4, CacheMetrics{})
	c.Put("hot-key", 42)
	var ok bool
	avg := testing.AllocsPerRun(200, func() {
		_, ok = c.Get("hot-key")
	})
	if !ok {
		t.Fatal("expected a cache hit")
	}
	if avg != 0 {
		t.Fatalf("cache hit allocates %.2f/run, want 0", avg)
	}
}
