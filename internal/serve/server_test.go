package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	mux := http.NewServeMux()
	s.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return s, ts
}

func post(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestPlanEndpointComputesAndCaches(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"life":"uniform","lifespan":500,"c":2}`

	resp, raw := post(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var cold PlanResponse
	if err := json.Unmarshal(raw, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Error("first request reported cached")
	}
	if !(cold.ExpectedWork > 0) || !(cold.T0 > 2) || cold.PeriodsTotal <= 0 {
		t.Errorf("implausible plan: %+v", cold)
	}
	if len(cold.Periods) == 0 || len(cold.Periods) > maxPeriodsReturned {
		t.Errorf("periods len = %d", len(cold.Periods))
	}
	if !(cold.Bracket[0] <= cold.T0 && cold.T0 <= cold.Bracket[1]) {
		t.Errorf("t0 %g outside bracket %v", cold.T0, cold.Bracket)
	}

	resp, raw = post(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var warm PlanResponse
	if err := json.Unmarshal(raw, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("second identical request missed the cache")
	}
	if math.Abs(warm.ExpectedWork-cold.ExpectedWork) > 0 || warm.Key != cold.Key {
		t.Errorf("cached response diverged: %+v vs %+v", warm, cold)
	}
}

// A spec that differs only in fields the life function ignores must
// hit the same cache entry.
func TestPlanCacheKeyCanonicalization(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	if resp, raw := post(t, ts.URL+"/v1/plan", `{"life":"uniform","lifespan":400,"halflife":7}`); resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	_, raw := post(t, ts.URL+"/v1/plan", `{"life":"uniform","lifespan":400,"halflife":99,"d":5}`)
	var second PlanResponse
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("canonically identical spec missed the cache")
	}
}

func TestPlanEndpointRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"life":"weibull"}`, 400},
		{`{"c":-1}`, 400},
		{`{"unknown_field":1}`, 400},
		{`not json`, 400},
		{`{"life":"powerlaw","d":2}`, 400},
	} {
		resp, raw := post(t, ts.URL+"/v1/plan", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("body %q: status = %d (%s), want %d", tc.body, resp.StatusCode, raw, tc.want)
		}
		var e httpError
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("body %q: error payload missing: %s", tc.body, raw)
		}
	}
}

// The service's estimate must be bit-deterministic: the same spec and
// seed through HTTP equals a direct MonteCarlo run.
func TestEstimateEndpointMatchesDirectMonteCarlo(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, raw := post(t, ts.URL+"/v1/estimate",
		`{"life":"uniform","lifespan":300,"c":1,"policy":"fixed:15","episodes":20000,"seed":7}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var got EstimateResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}

	l, err := lifefn.NewUniform(300)
	if err != nil {
		t.Fatal(err)
	}
	want := nowsim.MonteCarlo(&nowsim.FixedChunkPolicy{Chunk: 15}, nowsim.LifeOwner{Life: l}, 1, 20000, 7)
	if math.Abs(got.Work.Mean-want.Work.Mean) > 0 {
		t.Errorf("work mean %g, want %g (must be bit-identical)", got.Work.Mean, want.Work.Mean)
	}
	if got.Episodes != want.Episodes {
		t.Errorf("episodes %d, want %d", got.Episodes, want.Episodes)
	}
	if !(got.Work.CI95Lo <= got.Work.Mean && got.Work.Mean <= got.Work.CI95Hi) {
		t.Errorf("confidence band does not contain the mean: %+v", got.Work)
	}
	if got.AnalyticE != nil {
		t.Error("fixed policy should not report an analytic E")
	}

	// guideline must report the analytic expected work.
	resp, raw = post(t, ts.URL+"/v1/estimate",
		`{"life":"uniform","lifespan":300,"c":1,"policy":"guideline","episodes":5000}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var guide EstimateResponse
	if err := json.Unmarshal(raw, &guide); err != nil {
		t.Fatal(err)
	}
	if guide.AnalyticE == nil || !(*guide.AnalyticE > 0) {
		t.Errorf("guideline estimate missing analytic E: %+v", guide)
	}
}

// Concurrent identical requests must coalesce onto one computation:
// at most one response may report a fresh (uncached, uncoalesced)
// compute.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 8})

	// Park the only worker so the leader's compute stays queued while
	// the other requests arrive and join the in-flight call.
	block := make(chan struct{})
	occupied := make(chan struct{})
	go func() {
		_ = s.pool.Do(context.Background(), func(context.Context) {
			close(occupied)
			<-block
		})
	}()
	<-occupied

	const n = 6
	responses := make([]PlanResponse, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json",
				strings.NewReader(`{"life":"poly","lifespan":600,"d":3,"c":1}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			_ = json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the requests pile onto the flight
	close(block)
	wg.Wait()

	fresh := 0
	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !(responses[i].ExpectedWork > 0) {
			t.Fatalf("request %d: bad response %+v", i, responses[i])
		}
		if math.Abs(responses[i].ExpectedWork-responses[0].ExpectedWork) > 0 {
			t.Errorf("request %d: diverging result", i)
		}
		if !responses[i].Cached && !responses[i].Coalesced {
			fresh++
		}
	}
	if fresh > 1 {
		t.Errorf("%d fresh computations for identical concurrent requests, want at most 1", fresh)
	}
	if s.reg.Counter("cs_serve_coalesced_total", "").Value() == 0 && fresh > 0 {
		t.Error("no coalescing recorded")
	}
}

// With the single worker parked and a zero queue, a request must be
// shed with 429 + Retry-After while the parked work still completes.
func TestQueueFullReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: -1}) // queue capacity 0
	block := make(chan struct{})
	occupied := make(chan struct{})
	inflight := make(chan error, 1)
	go func() {
		// With no queue buffer the hand-off only succeeds once the
		// worker is parked in receive; retry through pool startup.
		for {
			err := s.pool.Do(context.Background(), func(context.Context) {
				close(occupied)
				<-block
			})
			if !errors.Is(err, ErrQueueFull) {
				inflight <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	<-occupied

	resp, raw := post(t, ts.URL+"/v1/plan", `{"life":"uniform","lifespan":777}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	close(block)
	if err := <-inflight; err != nil {
		t.Errorf("in-flight work dropped: %v", err)
	}
	// The pool must be usable again.
	resp, raw = post(t, ts.URL+"/v1/plan", `{"life":"uniform","lifespan":777}`)
	if resp.StatusCode != 200 {
		t.Fatalf("post-burst status = %d (%s), want 200", resp.StatusCode, raw)
	}
	if s.reg.Counter("cs_serve_rejected_total", "").Value() == 0 {
		t.Error("rejection not counted")
	}
}

// A request whose deadline expires mid-simulation gets 504 and leaves
// the pool usable.
func TestEstimateDeadlineCancelsAndPoolSurvives(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, raw := post(t, ts.URL+"/v1/estimate",
		`{"life":"uniform","lifespan":1000,"policy":"fixed:10","episodes":2000000,"timeout_ms":1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, raw)
	}
	if s.reg.Counter("cs_serve_cancelled_total", "").Value() == 0 {
		t.Error("cancellation not counted")
	}
	resp, raw = post(t, ts.URL+"/v1/estimate",
		`{"life":"uniform","lifespan":1000,"policy":"fixed:10","episodes":2000,"seed":3}`)
	if resp.StatusCode != 200 {
		t.Fatalf("pool unusable after deadline: status = %d (%s)", resp.StatusCode, raw)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s := New(Config{Workers: 1})
	mux := http.NewServeMux()
	s.Routes(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || h.Status != "ok" || h.QueueCapacity != 64 {
		t.Errorf("healthz = %d %+v", resp.StatusCode, h)
	}

	s.Drain()
	if !s.Draining() {
		t.Error("Draining() false after Drain")
	}
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", resp.StatusCode)
	}
}

// The metric surface the CI smoke job asserts on must exist: request
// latency quantiles, cache hit counters, queue depth.
func TestMetricsExposition(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	body := `{"life":"uniform","lifespan":222}`
	post(t, ts.URL+"/v1/plan", body)
	post(t, ts.URL+"/v1/plan", body)

	var sb strings.Builder
	if err := s.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cs_http_request_ms{route="plan",quantile="0.99"}`,
		`cs_http_requests_total{route="plan",code="200"} 2`,
		`cs_serve_cache_hits_total{route="plan"} 1`,
		`cs_serve_cache_misses_total{route="plan"} 1`,
		"cs_serve_queue_depth",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// Flight-configured servers record one event per request.
func TestFlightRecorderSeesRequests(t *testing.T) {
	fl := obs.NewFlightRecorder(16)
	_, ts := newTestServer(t, Config{Workers: 1, Flight: fl})
	post(t, ts.URL+"/v1/plan", `{"life":"uniform","lifespan":333}`)
	post(t, ts.URL+"/v1/plan", `{"bad json`)
	events, _ := fl.Snapshot()
	if len(events) != 2 {
		t.Fatalf("flight events = %d, want 2", len(events))
	}
	if events[0].Kind != "http:plan" || events[0].Period != 200 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Period != 400 {
		t.Errorf("event 1 = %+v", events[1])
	}
}

// Sequential distinct requests fill the cache up to its LRU capacity.
func TestPlanCacheEvictionThroughHandlers(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, PlanCacheEntries: 4, CacheShards: 1})
	for i := 0; i < 8; i++ {
		resp, raw := post(t, ts.URL+"/v1/plan", fmt.Sprintf(`{"life":"uniform","lifespan":%d}`, 100+i))
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: %d (%s)", i, resp.StatusCode, raw)
		}
	}
	if got := s.planCache.Len(); got != 4 {
		t.Errorf("plan cache holds %d entries, want 4", got)
	}
	if s.reg.Counter(obs.Labeled("cs_serve_cache_evictions_total", "route", "plan"), "").Value() != 4 {
		t.Error("evictions not counted")
	}
}
