package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func invariantOK(rec obs.TraceRecord) bool {
	sum := rec.Breakdown["queue_ms"] + rec.Breakdown["coalesce_ms"] + rec.Breakdown["compute_ms"]
	return sum <= rec.TotalMS
}

// A cold request through the full stack must yield a trace stitched
// under the caller's traceparent, with queue/compute attribution and
// the cache outcome; a warm repeat must show the hit.
func TestTraceAttributionEndToEnd(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{SampleRate: 1})
	_, ts := newTestServer(t, Config{Workers: 2, Tracer: tr})
	parent := obs.NewTraceContext()
	body := `{"life":"uniform","lifespan":350,"policy":"fixed:12","episodes":5000,"seed":9}`

	doPost := func() *http.Response {
		req, err := http.NewRequest("POST", ts.URL+"/v1/estimate", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(obs.TraceparentHeader, parent.Traceparent())
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		return resp
	}

	resp := doPost()
	if got := resp.Header.Get(obs.TraceIDHeader); got != parent.TraceIDString() {
		t.Fatalf("%s = %q, want %q", obs.TraceIDHeader, got, parent.TraceIDString())
	}
	st := resp.Header.Get("Server-Timing")
	for _, want := range []string{"cache;dur=", "queue;dur=", "compute;dur=", "total;dur="} {
		if !strings.Contains(st, want) {
			t.Errorf("Server-Timing missing %s: %q", want, st)
		}
	}
	doPost() // warm: cache hit under the same trace id

	recs := tr.Query(obs.TraceQuery{TraceID: parent.TraceIDString(), Limit: 10})
	if len(recs) != 2 {
		t.Fatalf("stored traces = %d, want 2", len(recs))
	}
	warm, cold := recs[0], recs[1] // most recent first
	if !cold.Remote || cold.ParentID != parent.SpanIDString() {
		t.Errorf("cold trace not stitched under remote parent: %+v", cold)
	}
	if cold.Cache != "miss" || !(cold.Breakdown["compute_ms"] > 0) {
		t.Errorf("cold trace missing compute attribution: %+v", cold.Breakdown)
	}
	if _, ok := cold.Breakdown["queue_ms"]; !ok {
		t.Errorf("cold trace missing queue attribution: %+v", cold.Breakdown)
	}
	if warm.Cache != "hit" || warm.Breakdown["compute_ms"] > 0 {
		t.Errorf("warm trace should be a pure cache hit: %+v", warm.Breakdown)
	}
	for _, rec := range recs {
		if !invariantOK(rec) {
			t.Errorf("attribution invariant violated: %+v", rec.Breakdown)
		}
	}
}

// Satellite requirement: coalesce-wait attribution when the
// singleflight leader's context is cancelled mid-flight (run under
// -race in CI). The follower must carry the coalesce wait in its own
// trace; the leader's trace, finalized at its 504, must not absorb
// the compute that finishes after it — the invariant holds for both.
func TestCoalesceAttributionWithCancelledLeader(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{SampleRate: 1})
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 8, Tracer: tr})

	// Park the only worker so the leader's compute stays queued.
	block := make(chan struct{})
	occupied := make(chan struct{})
	go func() {
		_ = s.pool.Do(context.Background(), func(context.Context) {
			close(occupied)
			<-block
		})
	}()
	<-occupied

	body := `{"life":"uniform","lifespan":444,"policy":"fixed:10","episodes":2000,"seed":4}`
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	var wg sync.WaitGroup
	var followerCode int
	var follower EstimateResponse

	wg.Add(1)
	go func() { // leader: first in, creates the flight, then is cancelled
		defer wg.Done()
		req, err := http.NewRequestWithContext(leaderCtx, "POST", ts.URL+"/v1/estimate", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond) // leader holds the flight

	wg.Add(1)
	go func() { // follower joins the in-flight call
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		followerCode = resp.StatusCode
		_ = json.NewDecoder(resp.Body).Decode(&follower)
	}()
	time.Sleep(100 * time.Millisecond) // follower is waiting on the flight

	cancelLeader() // leader abandons; follower keeps the flight alive
	time.Sleep(100 * time.Millisecond)
	close(block) // worker free: compute runs, follower completes
	wg.Wait()

	if followerCode != 200 || !follower.Coalesced {
		t.Fatalf("follower: code=%d coalesced=%v", followerCode, follower.Coalesced)
	}

	var followerRec, leaderRec *obs.TraceRecord
	for _, rec := range tr.Query(obs.TraceQuery{Route: "estimate", Limit: 10}) {
		rec := rec
		switch {
		case rec.Status == 200:
			followerRec = &rec
		case rec.Status >= 400:
			leaderRec = &rec
		}
	}
	if followerRec == nil {
		t.Fatal("follower trace not stored")
	}
	if !(followerRec.Breakdown["coalesce_ms"] > 0) {
		t.Errorf("follower trace missing coalesce wait: %+v", followerRec.Breakdown)
	}
	if followerRec.Breakdown["compute_ms"] > 0 {
		t.Errorf("follower trace absorbed the leader's compute: %+v", followerRec.Breakdown)
	}
	if !invariantOK(*followerRec) {
		t.Errorf("follower invariant violated: %+v", followerRec.Breakdown)
	}
	if leaderRec == nil {
		t.Fatal("cancelled leader trace not stored (errors must always be kept)")
	}
	// The compute finished after the leader's trace was finalized; the
	// late phase must have been dropped, keeping the invariant.
	if leaderRec.Breakdown["compute_ms"] > 0 {
		t.Errorf("leader trace absorbed post-finalize compute: %+v", leaderRec.Breakdown)
	}
	if !invariantOK(*leaderRec) {
		t.Errorf("leader invariant violated: %+v", leaderRec.Breakdown)
	}
}

// Satellite requirement: healthz carries version, uptime, Go runtime
// and per-shard cache occupancy.
func TestHealthzDiagnostics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Version: "v-test", PlanCacheEntries: 8, CacheShards: 4})
	post(t, ts.URL+"/v1/plan", `{"life":"uniform","lifespan":123}`)

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Version != "v-test" {
		t.Errorf("version = %q", h.Version)
	}
	if !strings.HasPrefix(h.GoVersion, "go") || h.NumCPU <= 0 || h.NumGoroutine <= 0 {
		t.Errorf("runtime fields: %+v", h)
	}
	if !(h.UptimeSeconds > 0) {
		t.Errorf("uptime = %v", h.UptimeSeconds)
	}
	if len(h.PlanCache.PerShard) != 4 || h.PlanCache.ShardCap != 2 {
		t.Errorf("plan cache shards: %+v", h.PlanCache)
	}
	if h.PlanCache.Entries != 1 || h.PlanCache.MaxShard != 1 {
		t.Errorf("plan cache occupancy after one plan: %+v", h.PlanCache)
	}
	if h.PlanCache.Entries != s.planCache.Len() {
		t.Errorf("healthz entries %d != cache len %d", h.PlanCache.Entries, s.planCache.Len())
	}
}
