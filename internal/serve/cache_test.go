package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

// A single-shard cache must evict in exact LRU order, with Get
// refreshing recency.
func TestCacheLRUEvictionOrder(t *testing.T) {
	reg := obs.NewRegistry()
	m := CacheMetrics{
		Hits:      reg.Counter("h", ""),
		Misses:    reg.Counter("m", ""),
		Evictions: reg.Counter("e", ""),
	}
	c := NewCache(3, 1, m)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if _, ok := c.Get("a"); !ok { // refresh a: LRU order is now b, c, a
		t.Fatal("a missing")
	}
	c.Put("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	// These Gets refresh recency too: LRU order becomes d, c, a.
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	c.Put("e", 5) // evicts a (c and d were refreshed after it)
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted")
	}
	for _, k := range []string{"c", "d", "e"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	if got := c.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	if got := m.Evictions.Value(); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
	// 7 hits (a, a, c, d, c, d, e) and 2 misses (b, a).
	if h, miss := m.Hits.Value(), m.Misses.Value(); h != 7 || miss != 2 {
		t.Errorf("hits/misses = %d/%d, want 7/2", h, miss)
	}
}

func TestCachePutRefreshesExistingKey(t *testing.T) {
	c := NewCache(2, 1, CacheMetrics{})
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert: b stays resident
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Errorf("a = %v/%v, want 10/true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestCacheZeroCapacityDisables(t *testing.T) {
	c := NewCache(0, 4, CacheMetrics{})
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache should never hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

// Concurrent readers and writers across shards; run under -race this
// is the cache's data-race gate.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(128, 8, CacheMetrics{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%200)
				if i%3 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Len(); got > 128+8-1 {
		t.Errorf("Len = %d, exceeds capacity slack", got)
	}
}

// Keys must spread across shards (FNV-1a is fine; this guards against
// a future refactor accidentally pinning everything to shard 0).
func TestCacheShardSpread(t *testing.T) {
	c := NewCache(1000, 8, CacheMetrics{})
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("plan|life=uniform|L=%d", i), i)
	}
	used := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if s.ll.Len() > 0 {
			used++
		}
		s.mu.Unlock()
	}
	if used < 4 {
		t.Errorf("only %d of 8 shards used", used)
	}
}
