package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/nowsim"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Config tunes a Server. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// Queue is the bounded request-queue capacity. 0 selects the
	// default of 64; a negative value selects an unbuffered hand-off
	// queue (a submission succeeds only while a worker is ready to
	// take it). A full queue answers 429 immediately.
	Queue int
	// PlanCacheEntries / EstimateCacheEntries size the two LRU caches
	// (defaults 4096 and 512; negative disables a cache).
	PlanCacheEntries     int
	EstimateCacheEntries int
	// CacheShards is the shard count of each cache (default 16).
	CacheShards int
	// DefaultTimeout bounds a request that names no timeout_ms
	// (default 10s); MaxTimeout clamps what a request may ask for
	// (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxEpisodes caps /v1/estimate episode counts (default 2e6,
	// hard-capped at MaxEpisodesLimit).
	MaxEpisodes int
	// Registry receives all metrics; a private one is created when nil.
	Registry *obs.Registry
	// Tracer, when non-nil, receives every request's finalized trace
	// for tail sampling; serve /debug/traces from it to inspect the
	// kept ones. Nil disables the store (requests still carry trace
	// headers and per-phase attribution).
	Tracer *obs.Tracer
	// SLO, when non-nil, receives every plan/estimate outcome for
	// rolling-window burn-rate tracking (healthz probes are excluded —
	// they are not user traffic). Serve /debug/slo from it.
	SLO *obs.SLOTracker
	// Runtime, when non-nil, is the runtime/metrics bridge whose
	// goroutine-leak watchdog verdict /v1/healthz reports. The bridge's
	// own lifecycle (Start/Stop) belongs to the caller.
	Runtime *obs.RuntimeBridge
	// Version is reported by /v1/healthz (build stamp; "dev" when empty).
	Version string
	// Flight, when non-nil, receives one obs.Event per served request
	// (Kind "http:<route>", Period = status code, Length = latency in
	// milliseconds) — the post-mortem tail for crashed or misbehaving
	// serves.
	Flight *obs.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue == 0 {
		c.Queue = 64
	}
	if c.PlanCacheEntries == 0 {
		c.PlanCacheEntries = 4096
	}
	if c.EstimateCacheEntries == 0 {
		c.EstimateCacheEntries = 512
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxEpisodes <= 0 || c.MaxEpisodes > MaxEpisodesLimit {
		c.MaxEpisodes = 2_000_000
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Version == "" {
		c.Version = "dev"
	}
	return c
}

// Server answers plan and estimate queries behind the cache /
// coalescing / worker-pool stack. Create with New, mount with Routes,
// stop with Drain.
type Server struct {
	cfg       Config
	reg       *obs.Registry
	pool      *Pool
	flights   *flightGroup
	planCache *Cache
	estCache  *Cache

	// peers is the cluster fill hook (SetPeers); nil outside a cluster.
	peers PeerFiller

	start    time.Time
	draining atomic.Bool

	coalesced  *obs.Counter
	rejected   *obs.Counter
	cancelled  *obs.Counter
	planErrors *obs.Counter
	episodes   *obs.Counter
	peerFilled *obs.Counter
	peerMissed *obs.Counter
}

// New builds a Server from cfg and registers its metric set on the
// registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	cacheCounters := func(route string) CacheMetrics {
		return CacheMetrics{
			Hits:      reg.Counter(obs.Labeled("cs_serve_cache_hits_total", "route", route), "responses served from the spec-keyed LRU cache"),
			Misses:    reg.Counter(obs.Labeled("cs_serve_cache_misses_total", "route", route), "requests that had to compute"),
			Evictions: reg.Counter(obs.Labeled("cs_serve_cache_evictions_total", "route", route), "LRU entries displaced by new ones"),
		}
	}
	s := &Server{
		cfg:       cfg,
		reg:       reg,
		flights:   newFlightGroup(),
		planCache: NewCache(cfg.PlanCacheEntries, cfg.CacheShards, cacheCounters("plan")),
		estCache:  NewCache(cfg.EstimateCacheEntries, cfg.CacheShards, cacheCounters("estimate")),
		start:     time.Now(),
		coalesced: reg.Counter("cs_serve_coalesced_total", "requests that shared another request's in-flight computation"),
		rejected:  reg.Counter("cs_serve_rejected_total", "requests shed with 429 because the worker queue was full"),
		cancelled: reg.Counter("cs_serve_cancelled_total", "requests abandoned by deadline or client disconnect"),
		planErrors: reg.Counter("cs_serve_compute_errors_total",
			"requests whose planning or simulation failed (unplannable life function, ...)"),
		episodes:   reg.Counter("cs_serve_episodes_simulated_total", "Monte-Carlo episodes run on behalf of /v1/estimate"),
		peerFilled: reg.Counter(obs.Labeled("cs_serve_peer_fill_total", "outcome", "hit"), "cache misses satisfied by a cluster peer instead of local compute"),
		peerMissed: reg.Counter(obs.Labeled("cs_serve_peer_fill_total", "outcome", "miss"), "cache misses no cluster peer could satisfy"),
	}
	s.pool = NewPool(cfg.Workers, cfg.Queue,
		reg.Gauge("cs_serve_queue_depth", "requests queued or running in the worker pool"),
		reg.Counter("cs_serve_pool_skipped_total", "queued tasks skipped because their request had already been abandoned"),
		reg.Quantiles("cs_serve_queue_wait_ms", "worker-pool queue wait in milliseconds (submission to pickup)"))
	return s
}

// Registry returns the registry the server publishes to.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Routes mounts the service endpoints on mux. Each route is wrapped in
// the obs latency/status middleware and, when configured, the flight
// recorder.
func (s *Server) Routes(mux *http.ServeMux) {
	mux.Handle("POST /v1/plan", s.instrument("plan", s.cfg.SLO, http.HandlerFunc(s.handlePlan)))
	mux.Handle("POST /v1/estimate", s.instrument("estimate", s.cfg.SLO, http.HandlerFunc(s.handleEstimate)))
	mux.Handle("GET /v1/healthz", s.instrument("healthz", nil, http.HandlerFunc(s.handleHealthz)))
}

func (s *Server) instrument(route string, slo *obs.SLOTracker, h http.Handler) http.Handler {
	inner := h
	if s.cfg.Flight != nil {
		fl := s.cfg.Flight
		inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := obs.NewResponseRecorder(w)
			reqStart := time.Now()
			h.ServeHTTP(rec, r)
			fl.Emit(obs.Event{
				Time:   time.Since(s.start).Seconds(),
				Worker: -1,
				Kind:   "http:" + route,
				Period: rec.Code(),
				Length: float64(time.Since(reqStart)) / float64(time.Millisecond),
			})
		})
	}
	return obs.InstrumentHandler(s.reg, route, s.cfg.Tracer, slo, inner)
}

// BeginDrain flips only the draining flag: /v1/healthz starts
// answering 503 so load balancers (the csgate prober) route around
// this replica, while in-flight requests and peer-protocol traffic
// keep being served. Call at the top of a graceful shutdown; Drain
// closes the worker pool once the HTTP layer is done.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain flips the server into draining mode (healthz answers 503 so
// load balancers stop sending traffic) and, once the HTTP layer has
// finished its in-flight handlers, closes the worker pool. Call after
// http.Server.Shutdown has returned.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.pool.Close()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Band is a confidence band over a Monte-Carlo statistic.
type Band struct {
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stderr"`
	CI95Lo float64 `json:"ci95_lo"`
	CI95Hi float64 `json:"ci95_hi"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	N      int64   `json:"n"`
}

func bandOf(sum stats.Summary) Band {
	return Band{
		Mean:   sum.Mean,
		StdErr: sum.StdErr,
		CI95Lo: sum.Mean - sum.CI95,
		CI95Hi: sum.Mean + sum.CI95,
		Min:    sum.Min,
		Max:    sum.Max,
		N:      sum.N,
	}
}

// maxPeriodsReturned caps the schedule prefix included in a plan
// response; the full length travels in periods_total.
const maxPeriodsReturned = 128

// PlanResponse is the body of a successful POST /v1/plan.
type PlanResponse struct {
	Key           string     `json:"key"`
	Life          string     `json:"life"`
	C             float64    `json:"c"`
	T0            float64    `json:"t0"`
	Bracket       [2]float64 `json:"bracket"`
	Periods       []float64  `json:"periods"`
	PeriodsTotal  int        `json:"periods_total"`
	TotalDuration float64    `json:"total_duration"`
	ExpectedWork  float64    `json:"expected_work"`
	Evaluations   int        `json:"evaluations"`
	// Cached / Coalesced / PeerFilled describe how this request was
	// served; they are stamped per response and never stored in the
	// cache entry. PeerFilled marks a miss satisfied by a cluster peer's
	// cache instead of local compute — a "fresh" computation is one
	// where all three are false.
	Cached     bool `json:"cached"`
	Coalesced  bool `json:"coalesced"`
	PeerFilled bool `json:"peer_filled"`
	// ElapsedMS is the server-side time spent producing this response —
	// for a cache hit, the lookup; for a miss, queueing plus planning.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// EstimateResponse is the body of a successful POST /v1/estimate.
type EstimateResponse struct {
	Key               string  `json:"key"`
	Life              string  `json:"life"`
	C                 float64 `json:"c"`
	Policy            string  `json:"policy"`
	Episodes          int64   `json:"episodes"`
	Seed              uint64  `json:"seed"`
	Work              Band    `json:"work"`
	Lost              Band    `json:"lost"`
	Periods           Band    `json:"periods"`
	ReclaimedFraction float64 `json:"reclaimed_fraction"`
	// AnalyticE is E(S; p) from the planner when the policy is
	// guideline — the model-vs-simulation comparison in one response.
	AnalyticE  *float64 `json:"analytic_expected_work,omitempty"`
	Cached     bool     `json:"cached"`
	Coalesced  bool     `json:"coalesced"`
	PeerFilled bool     `json:"peer_filled"`
	ElapsedMS  float64  `json:"elapsed_ms"`
}

// httpError is a JSON error payload.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, httpError{Error: fmt.Sprintf(format, args...)})
}

// writeComputeError maps a failed computation to a status code. Queue
// rejection and abandonment get distinct codes so clients can tell
// "retry shortly" (429) from "give this request more time" (504).
func (s *Server) writeComputeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "worker queue full, retry shortly")
	case errors.Is(err, ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.cancelled.Inc()
		writeError(w, http.StatusGatewayTimeout, "request abandoned: %v", err)
	default:
		s.planErrors.Inc()
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	}
}

// decode reads a JSON body into v, rejecting unknown fields and bodies
// over 1 MiB.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// requestCtx derives the per-request deadline context: the spec's
// timeout_ms clamped to MaxTimeout, or DefaultTimeout.
func (s *Server) requestCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	var spec PlanSpec
	if err := decode(w, r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := spec.normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := spec.key()
	rt := obs.ReqTraceFrom(r.Context())
	endCache := rt.StartPhase(obs.PhaseCache)
	if v, ok := s.planCache.Get(key); ok {
		endCache("outcome", "hit")
		resp := v.(PlanResponse)
		resp.Cached = true
		resp.ElapsedMS = msSince(reqStart)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	endCache("outcome", "miss")
	ctx, cancel := s.requestCtx(r, spec.TimeoutMS)
	defer cancel()
	flightStart := time.Now()
	flightObjs, flightBytes := obs.HeapAllocs()
	v, shared, leader, err := s.flights.Do(ctx, key, func(runCtx context.Context) (any, error) {
		// In a cluster, a miss first tries the key's previous holder —
		// inside the singleflight, so N concurrent misses cause at most
		// one peer fetch; only when no peer has it does local compute
		// pay the full planning cost.
		if resp, ok := s.peerFillPlan(runCtx, key); ok {
			return resp, nil
		}
		var resp PlanResponse
		var compErr error
		if poolErr := s.pool.Do(runCtx, func(taskCtx context.Context) {
			endCompute := obs.StartPhase(taskCtx, obs.PhaseCompute)
			resp, compErr = s.computePlan(spec, key)
			endCompute()
		}); poolErr != nil {
			return nil, poolErr
		}
		if compErr != nil {
			return nil, compErr
		}
		s.planCache.Put(key, resp)
		s.offerPeers(key, resp)
		return resp, nil
	})
	if !leader {
		// A follower's entire flight wait is coalesce time: it rode on
		// the leader's queue + compute. The alloc delta necessarily
		// includes the leader's compute allocations (process-global
		// counters — see DESIGN.md section 13).
		objs, bytes := obs.HeapAllocs()
		rt.AddPhaseAlloc(obs.PhaseCoalesce, flightStart, time.Since(flightStart), objs-flightObjs, bytes-flightBytes)
	}
	if shared {
		s.coalesced.Inc()
	}
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	resp := v.(PlanResponse)
	resp.Coalesced = shared
	resp.ElapsedMS = msSince(reqStart)
	writeJSON(w, http.StatusOK, resp)
}

// computePlan runs the guideline planner for a normalized spec.
func (s *Server) computePlan(spec PlanSpec, key string) (PlanResponse, error) {
	life, err := spec.buildLife()
	if err != nil {
		return PlanResponse{}, err
	}
	pol, err := nowsim.ParsePolicy("guideline", life, spec.C, planOptions())
	if err != nil {
		return PlanResponse{}, err
	}
	plan := *pol.Plan
	return PlanResponse{
		Key:           key,
		Life:          life.String(),
		C:             spec.C,
		T0:            plan.T0,
		Bracket:       [2]float64{plan.Bracket.Lo, plan.Bracket.Hi},
		Periods:       plan.Schedule.Prefix(maxPeriodsReturned).Periods(),
		PeriodsTotal:  plan.Schedule.Len(),
		TotalDuration: plan.Schedule.Total(),
		ExpectedWork:  plan.ExpectedWork,
		Evaluations:   plan.Evaluations,
	}, nil
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	var spec EstimateSpec
	if err := decode(w, r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := spec.normalize(s.cfg.MaxEpisodes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := spec.key()
	rt := obs.ReqTraceFrom(r.Context())
	endCache := rt.StartPhase(obs.PhaseCache)
	if v, ok := s.estCache.Get(key); ok {
		endCache("outcome", "hit")
		resp := v.(EstimateResponse)
		resp.Cached = true
		resp.ElapsedMS = msSince(reqStart)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	endCache("outcome", "miss")
	ctx, cancel := s.requestCtx(r, spec.TimeoutMS)
	defer cancel()
	flightStart := time.Now()
	flightObjs, flightBytes := obs.HeapAllocs()
	v, shared, leader, err := s.flights.Do(ctx, key, func(runCtx context.Context) (any, error) {
		if resp, ok := s.peerFillEstimate(runCtx, key); ok {
			return resp, nil
		}
		var resp EstimateResponse
		var compErr error
		if poolErr := s.pool.Do(runCtx, func(taskCtx context.Context) {
			endCompute := obs.StartPhase(taskCtx, obs.PhaseCompute)
			resp, compErr = s.computeEstimate(taskCtx, spec, key)
			endCompute()
		}); poolErr != nil {
			return nil, poolErr
		}
		if compErr != nil {
			return nil, compErr
		}
		s.estCache.Put(key, resp)
		s.offerPeers(key, resp)
		return resp, nil
	})
	if !leader {
		objs, bytes := obs.HeapAllocs()
		rt.AddPhaseAlloc(obs.PhaseCoalesce, flightStart, time.Since(flightStart), objs-flightObjs, bytes-flightBytes)
	}
	if shared {
		s.coalesced.Inc()
	}
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	resp := v.(EstimateResponse)
	resp.Coalesced = shared
	resp.ElapsedMS = msSince(reqStart)
	writeJSON(w, http.StatusOK, resp)
}

// computeEstimate runs the seeded Monte-Carlo for a normalized spec,
// honouring ctx between episodes.
func (s *Server) computeEstimate(ctx context.Context, spec EstimateSpec, key string) (EstimateResponse, error) {
	life, err := spec.buildLife()
	if err != nil {
		return EstimateResponse{}, err
	}
	pol, err := spec.parsePolicy(life)
	if err != nil {
		return EstimateResponse{}, err
	}
	res, err := nowsim.MonteCarloCtx(ctx, pol.Factory(), nowsim.LifeOwner{Life: life}, spec.C, spec.Episodes, spec.Seed, nowsim.Obs{})
	s.episodes.Add(uint64(res.Episodes))
	if err != nil {
		return EstimateResponse{}, err
	}
	resp := EstimateResponse{
		Key:      key,
		Life:     life.String(),
		C:        spec.C,
		Policy:   pol.Name,
		Episodes: res.Episodes,
		Seed:     spec.Seed,
		Work:     bandOf(res.Work),
		Lost:     bandOf(res.Lost),
		Periods:  bandOf(res.Periods),
	}
	if res.Episodes > 0 {
		resp.ReclaimedFraction = float64(res.Reclaimed) / float64(res.Episodes)
	}
	if pol.Plan != nil {
		e := pol.Plan.ExpectedWork
		resp.AnalyticE = &e
	}
	return resp, nil
}

// CacheHealth describes one LRU cache in the healthz payload: total
// residency plus the per-shard breakdown, so shard skew is visible
// from a single curl.
type CacheHealth struct {
	Entries  int   `json:"entries"`
	ShardCap int   `json:"shard_cap"`
	PerShard []int `json:"per_shard,omitempty"`
	MaxShard int   `json:"max_shard"`
}

func cacheHealth(c *Cache) CacheHealth {
	lens := c.ShardLens()
	h := CacheHealth{ShardCap: c.ShardCap(), PerShard: lens}
	for _, n := range lens {
		h.Entries += n
		if n > h.MaxShard {
			h.MaxShard = n
		}
	}
	return h
}

// Healthz is the body of GET /v1/healthz — everything a smoke-test
// failure needs for a first diagnosis in one response: build identity,
// runtime shape, pool state, and per-shard cache occupancy.
type Healthz struct {
	Status           string      `json:"status"`
	Version          string      `json:"version"`
	UptimeSeconds    float64     `json:"uptime_seconds"`
	GoVersion        string      `json:"go_version"`
	NumCPU           int         `json:"num_cpu"`
	NumGoroutine     int         `json:"num_goroutine"`
	Workers          int         `json:"workers"`
	QueueDepth       int         `json:"queue_depth"`
	QueueCapacity    int         `json:"queue_capacity"`
	PlanCacheEntries int         `json:"plan_cache_entries"`
	EstCacheEntries  int         `json:"estimate_cache_entries"`
	PlanCache        CacheHealth `json:"plan_cache"`
	EstCache         CacheHealth `json:"estimate_cache"`
	// Runtime is the GC / heap / goroutine block: cycle count, last and
	// cumulative GC pause, heap residency, and the leak-watchdog verdict.
	Runtime obs.RuntimeHealth `json:"runtime"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Healthz{
		Status:           "ok",
		Version:          s.cfg.Version,
		UptimeSeconds:    time.Since(s.start).Seconds(),
		GoVersion:        runtime.Version(),
		NumCPU:           runtime.NumCPU(),
		NumGoroutine:     runtime.NumGoroutine(),
		Workers:          s.cfg.Workers,
		QueueDepth:       s.pool.QueueDepth(),
		QueueCapacity:    s.pool.QueueCap(),
		PlanCacheEntries: s.planCache.Len(),
		EstCacheEntries:  s.estCache.Len(),
		PlanCache:        cacheHealth(s.planCache),
		EstCache:         cacheHealth(s.estCache),
		Runtime:          obs.ReadRuntimeHealth(),
	}
	h.Runtime.GoroutineLeakSuspected = s.cfg.Runtime.LeakSuspected()
	status := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
