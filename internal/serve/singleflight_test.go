package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// N concurrent callers of the same key must execute the body exactly
// once and all observe its result.
func TestFlightGroupCoalescesSameKey(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	sharedFlags := make([]bool, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		//lint:allow goroutinecap flightGroup synchronizes internally with its own mutex; concurrent Do is the API under test
		go func(i int) {
			defer wg.Done()
			v, shared, _, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
				calls.Add(1)
				<-release // hold the call open so every goroutine joins it
				return 42, nil
			})
			results[i], sharedFlags[i], errs[i] = v, shared, err
		}(i)
	}
	// Let the goroutines join the in-flight call, then release it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("body executed %d times, want exactly 1", got)
	}
	sharedCount := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i].(int) != 42 {
			t.Fatalf("caller %d got %v", i, results[i])
		}
		if sharedFlags[i] {
			sharedCount++
		}
	}
	if sharedCount == 0 {
		t.Error("no caller observed the call as shared")
	}
}

// Distinct keys must not serialize behind each other.
func TestFlightGroupDistinctKeysRunIndependently(t *testing.T) {
	g := newFlightGroup()
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		_, _, _, _ = g.Do(context.Background(), "slow", func(context.Context) (any, error) {
			<-block
			return nil, nil
		})
		close(done)
	}()
	//lint:allow goroutinecap flightGroup synchronizes internally with its own mutex; concurrent Do is the API under test
	v, _, _, err := g.Do(context.Background(), "fast", func(context.Context) (any, error) { return 1, nil })
	if err != nil || v.(int) != 1 {
		t.Fatalf("fast key blocked: %v %v", v, err)
	}
	close(block)
	<-done
}

// When every waiter abandons a call, its computation context must be
// cancelled; a waiter that leaves while others remain must not cancel
// it.
func TestFlightGroupCancelsOnlyWhenLastWaiterLeaves(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	runCtxCh := make(chan context.Context, 1)
	finish := make(chan struct{})

	patient := make(chan error, 1)
	go func() {
		_, _, _, err := g.Do(context.Background(), "k", func(runCtx context.Context) (any, error) {
			runCtxCh <- runCtx
			close(started)
			<-finish
			return nil, runCtx.Err()
		})
		patient <- err
	}()
	<-started
	runCtx := <-runCtxCh

	// An impatient waiter joins and leaves.
	impatientCtx, impatientCancel := context.WithCancel(context.Background())
	impatientDone := make(chan error, 1)
	//lint:allow goroutinecap flightGroup synchronizes internally with its own mutex; concurrent Do is the API under test
	go func() {
		_, _, _, err := g.Do(impatientCtx, "k", func(context.Context) (any, error) {
			t.Error("second Do must join, not re-run")
			return nil, nil
		})
		impatientDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	impatientCancel()
	if err := <-impatientDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient waiter error = %v, want context.Canceled", err)
	}
	if runCtx.Err() != nil {
		t.Fatal("computation cancelled while a waiter remained")
	}

	// Let the patient waiter finish normally.
	close(finish)
	if err := <-patient; err != nil {
		t.Fatalf("patient waiter: %v", err)
	}
}

func TestFlightGroupCancelsWhenAllWaitersLeave(t *testing.T) {
	g := newFlightGroup()
	runCtxCh := make(chan context.Context, 1)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, _, err := g.Do(ctx, "k", func(runCtx context.Context) (any, error) {
			runCtxCh <- runCtx
			<-runCtx.Done() // simulate a cancellable computation
			return nil, runCtx.Err()
		})
		errCh <- err
	}()
	runCtx := <-runCtxCh
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
	select {
	case <-runCtx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("computation context not cancelled after the last waiter left")
	}
}

// A completed call must leave the group empty so the next Do runs
// fresh.
func TestFlightGroupForgetsCompletedCalls(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		v, shared, _, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
			return calls.Add(1), nil
		})
		if err != nil || shared {
			t.Fatalf("iteration %d: err=%v shared=%v", i, err, shared)
		}
		if v.(int64) != int64(i+1) {
			t.Fatalf("iteration %d reused a stale result: %v", i, v)
		}
	}
}
