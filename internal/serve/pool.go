package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrQueueFull reports that the pool's bounded queue rejected a
// submission. Handlers map it to 429 Too Many Requests with a
// Retry-After hint: under overload the service sheds load at the door
// instead of queueing unboundedly and timing everyone out.
var ErrQueueFull = errors.New("serve: worker queue full")

// ErrPoolClosed reports a submission to a draining or closed pool.
var ErrPoolClosed = errors.New("serve: pool closed")

// Pool is a fixed-size worker pool with a bounded queue. Submissions
// never block: a full queue fails fast with ErrQueueFull. A task whose
// context has already ended by the time a worker picks it up is
// skipped entirely, so a burst of abandoned requests cannot occupy the
// workers.
type Pool struct {
	mu     sync.RWMutex // guards closed vs. sends on tasks
	closed bool
	tasks  chan *poolTask
	wg     sync.WaitGroup

	depth   *obs.Gauge        // queued + running tasks; nil-safe
	skipped *obs.Counter      // tasks whose ctx ended before a worker ran them
	wait    *obs.QuantileHist // queue wait (submission -> worker pickup) in ms; nil-safe
}

type poolTask struct {
	//lint:allow ctxguard the task is the request's unit of work in the queue; its context rides with it like http.Request's, and workers drop the task the moment it ends
	ctx  context.Context
	fn   func(context.Context)
	enq  time.Time // submission time, for queue-wait attribution
	ran  bool      // set by the worker before done closes; read by Do only after <-done
	done chan struct{}

	// Queue-wait allocation attribution: the submitting goroutine
	// snapshots the allocation counters, the worker diffs them at
	// pickup. Captured only when the request is traced.
	rt                *obs.ReqTrace
	enqObjs, enqBytes uint64
}

// NewPool starts workers goroutines servicing a queue of the given
// capacity. workers <= 0 defaults to 1; queue < 0 defaults to 0 (only
// hand-off, no buffering). depth, skipped and wait may be nil.
func NewPool(workers, queue int, depth *obs.Gauge, skipped *obs.Counter, wait *obs.QuantileHist) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan *poolTask, queue), depth: depth, skipped: skipped, wait: wait}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		if t.ctx.Err() == nil {
			// Attribute the time the task spent queued — both to the
			// pool-wide histogram and to the owning request's trace.
			waited := time.Since(t.enq)
			if p.wait != nil {
				p.wait.Observe(float64(waited) / float64(time.Millisecond))
			}
			if t.rt != nil {
				objs, bytes := obs.HeapAllocs()
				t.rt.AddPhaseAlloc(obs.PhaseQueue, t.enq, waited, objs-t.enqObjs, bytes-t.enqBytes)
			}
			t.fn(t.ctx)
			t.ran = true
		} else if p.skipped != nil {
			p.skipped.Inc()
		}
		if p.depth != nil {
			p.depth.Add(-1)
		}
		close(t.done)
	}
}

// Do submits fn and waits until a worker has finished running it or
// ctx ends, whichever comes first. Do returns nil only when fn has
// actually run to completion: a task skipped because its context ended
// while queued reports the context error, never success. fn receives
// ctx and is expected to honour its cancellation (the Monte-Carlo
// runner checks it between episodes). When Do returns ctx.Err() the
// task may still be queued —
// the worker that eventually dequeues it sees the dead context and
// skips it, keeping the pool usable after any number of abandoned
// requests.
func (p *Pool) Do(ctx context.Context, fn func(context.Context)) error {
	t := &poolTask{ctx: ctx, fn: fn, enq: time.Now(), done: make(chan struct{})}
	if rt := obs.ReqTraceFrom(ctx); rt != nil {
		t.rt = rt
		t.enqObjs, t.enqBytes = obs.HeapAllocs()
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrPoolClosed
	}
	// Count the task before it becomes visible to workers so the gauge
	// never dips negative when a worker dequeues and decrements first.
	if p.depth != nil {
		p.depth.Add(1)
	}
	select {
	case p.tasks <- t:
	default:
		if p.depth != nil {
			p.depth.Add(-1)
		}
		p.mu.RUnlock()
		return ErrQueueFull
	}
	p.mu.RUnlock()
	select {
	case <-t.done:
		if !t.ran {
			// The worker skipped the task because ctx had already ended.
			// When done and ctx.Done() are both ready this branch can
			// still win the select, so report the (sticky) context error
			// rather than claiming fn ran.
			return ctx.Err()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueDepth returns the number of tasks currently queued (excluding
// ones a worker has already dequeued).
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// QueueCap returns the queue capacity.
func (p *Pool) QueueCap() int { return cap(p.tasks) }

// Close drains the pool: it stops accepting submissions, lets the
// workers finish every task already queued, and returns when they have
// exited. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
