package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// CacheMetrics are the optional counters a Cache updates. Nil fields
// are skipped, so unit tests can run an unobserved cache.
type CacheMetrics struct {
	Hits      *obs.Counter
	Misses    *obs.Counter
	Evictions *obs.Counter
}

// Cache is a sharded LRU map from canonical spec keys to computed
// responses. Sharding bounds lock contention on the hot hit path: a
// key's shard is chosen by FNV-1a hash, and each shard holds its own
// mutex, map and recency list. Capacity is enforced per shard
// (ceil(capacity/shards)), so total residency never exceeds
// capacity + shards - 1 entries.
type Cache struct {
	shards []cacheShard
	m      CacheMetrics
}

type cacheShard struct {
	mu  sync.Mutex
	ll  *list.List // front = most recently used
	idx map[string]*list.Element
	cap int
}

type cacheEntry struct {
	key string
	val any
}

// NewCache builds a cache holding roughly capacity entries across the
// given number of shards. capacity <= 0 disables caching (every Get
// misses, Put is a no-op); shards <= 0 defaults to 16, clamped so each
// shard holds at least one entry.
func NewCache(capacity, shards int, m CacheMetrics) *Cache {
	if capacity <= 0 {
		return &Cache{m: m}
	}
	if shards <= 0 {
		shards = 16
	}
	if shards > capacity {
		shards = capacity
	}
	perShard := (capacity + shards - 1) / shards
	c := &Cache{shards: make([]cacheShard, shards), m: m}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].idx = make(map[string]*list.Element)
		c.shards[i].cap = perShard
	}
	return c
}

// fnv1a is the 32-bit FNV-1a hash, inlined to keep shard selection
// allocation-free.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv1a(key)%uint32(len(c.shards))]
}

// Get returns the cached value for key and marks it most recently
// used. The hit path is allocation-free: shard selection hashes
// in place and the entry value is returned without re-boxing.
//
//cs:hotpath cache-hit
func (c *Cache) Get(key string) (any, bool) {
	if len(c.shards) == 0 {
		if c.m.Misses != nil {
			c.m.Misses.Inc()
		}
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.idx[key]
	var val any
	if ok {
		s.ll.MoveToFront(el)
		val = el.Value.(*cacheEntry).val
	}
	s.mu.Unlock()
	if !ok {
		if c.m.Misses != nil {
			c.m.Misses.Inc()
		}
		return nil, false
	}
	if c.m.Hits != nil {
		c.m.Hits.Inc()
	}
	return val, true
}

// Put stores val under key, evicting the shard's least recently used
// entry when the shard is full. Storing an existing key refreshes its
// value and recency.
func (c *Cache) Put(key string, val any) {
	if len(c.shards) == 0 {
		return
	}
	s := c.shard(key)
	evicted := false
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
	} else {
		s.idx[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
		if s.ll.Len() > s.cap {
			last := s.ll.Back()
			s.ll.Remove(last)
			delete(s.idx, last.Value.(*cacheEntry).key)
			evicted = true
		}
	}
	s.mu.Unlock()
	if evicted && c.m.Evictions != nil {
		c.m.Evictions.Inc()
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Hottest returns up to n of the most recently used entries as
// parallel key/value slices — the working set worth handing to peers
// on drain. Recency is tracked per shard, so the result interleaves
// shard MRU prefixes round-robin: an approximation of global recency
// that never requires a cross-shard clock. Empty for a disabled cache.
func (c *Cache) Hottest(n int) (keys []string, vals []any) {
	if n <= 0 || len(c.shards) == 0 {
		return nil, nil
	}
	// Snapshot each shard's MRU order under its own lock (keys and
	// values copied inside it: a concurrent Put may overwrite an
	// entry's val in place).
	perShard := make([][]cacheEntry, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*cacheEntry)
			perShard[i] = append(perShard[i], cacheEntry{key: e.key, val: e.val})
		}
		s.mu.Unlock()
	}
	for depth := 0; len(keys) < n; depth++ {
		advanced := false
		for i := range perShard {
			if depth >= len(perShard[i]) {
				continue
			}
			advanced = true
			e := &perShard[i][depth]
			keys = append(keys, e.key)
			vals = append(vals, e.val)
			if len(keys) >= n {
				break
			}
		}
		if !advanced {
			break
		}
	}
	return keys, vals
}

// ShardLens returns the per-shard resident entry counts — the skew
// diagnostic /v1/healthz exposes (a hot shard means hash imbalance or
// a pathological key distribution). Nil for a disabled cache.
func (c *Cache) ShardLens() []int {
	if len(c.shards) == 0 {
		return nil
	}
	lens := make([]int, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		lens[i] = s.ll.Len()
		s.mu.Unlock()
	}
	return lens
}

// ShardCap returns the per-shard capacity (0 for a disabled cache).
func (c *Cache) ShardCap() int {
	if len(c.shards) == 0 {
		return 0
	}
	return c.shards[0].cap
}
