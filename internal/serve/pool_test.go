package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestPoolRunsSubmittedWork(t *testing.T) {
	p := NewPool(2, 4, nil, nil, nil)
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				err := p.Do(context.Background(), func(context.Context) { ran.Add(1) })
				if err == nil {
					return
				}
				if !errors.Is(err, ErrQueueFull) {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := ran.Load(); got != 20 {
		t.Errorf("ran = %d, want 20", got)
	}
}

// A full queue must reject immediately with ErrQueueFull, not block.
func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1, nil, nil, nil)
	defer p.Close()
	block := make(chan struct{})
	occupied := make(chan struct{})
	go func() {
		_ = p.Do(context.Background(), func(context.Context) {
			close(occupied)
			<-block
		})
	}()
	<-occupied
	// Fill the one queue slot and wait until the task is really queued
	// (the worker is parked, so the depth cannot drop again).
	queued := make(chan error, 1)
	go func() {
		queued <- p.Do(context.Background(), func(context.Context) {})
	}()
	deadline := time.Now().Add(2 * time.Second)
	for p.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("filler task never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Do(context.Background(), func(context.Context) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Do on a full queue = %v, want ErrQueueFull", err)
	}
	close(block)
	if err := <-queued; err != nil {
		t.Fatalf("queued task failed: %v", err)
	}
}

// A request abandoned by deadline — while queued or while running —
// must leave the pool fully usable.
func TestPoolDeadlineLeavesPoolUsable(t *testing.T) {
	reg := obs.NewRegistry()
	skipped := reg.Counter("skipped", "")
	p := NewPool(1, 4, reg.Gauge("depth", ""), skipped, nil)
	defer p.Close()

	block := make(chan struct{})
	occupied := make(chan struct{})
	go func() {
		_ = p.Do(context.Background(), func(context.Context) {
			close(occupied)
			<-block
		})
	}()
	<-occupied

	// Queue a task, then abandon it before any worker is free.
	ctx, cancel := context.WithCancel(context.Background())
	var abandonedRan atomic.Bool
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.Do(ctx, func(context.Context) { abandonedRan.Store(true) })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned Do = %v, want context.Canceled", err)
	}

	// Release the worker; the dead task must be skipped, and new work
	// must still run.
	close(block)
	var ran atomic.Bool
	if err := p.Do(context.Background(), func(context.Context) { ran.Store(true) }); err != nil {
		t.Fatalf("pool unusable after abandoned request: %v", err)
	}
	if !ran.Load() {
		t.Error("follow-up task did not run")
	}
	if abandonedRan.Load() {
		t.Error("abandoned task ran anyway")
	}
	if skipped.Value() != 1 {
		t.Errorf("skipped = %d, want 1", skipped.Value())
	}
}

// A task whose context is already dead when the worker dequeues it must
// never be reported as success: the worker closes done without running
// fn, and when done and ctx.Done() are both ready Do's select picks
// randomly — the done branch has to notice fn never ran. (The old code
// returned nil here roughly half the time, which let handlers cache
// zero-valued responses.)
func TestPoolSkippedTaskNeverReportsSuccess(t *testing.T) {
	p := NewPool(1, 256, nil, nil, nil)
	defer p.Close()
	for i := 0; i < 200; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Bool
		err := p.Do(ctx, func(context.Context) { ran.Store(true) })
		if ran.Load() {
			t.Fatal("fn ran despite a pre-cancelled context")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do with a pre-cancelled ctx = %v, want context.Canceled", err)
		}
	}
}

// A task running when its context expires keeps its worker only until
// the fn returns (the fn is responsible for honouring ctx); Do itself
// returns promptly with the context error.
func TestPoolDoReturnsOnDeadlineWhileRunning(t *testing.T) {
	// Queue capacity 1: a zero-capacity queue only accepts a task while
	// a worker is already parked in receive, which races with pool
	// startup.
	p := NewPool(1, 1, nil, nil, nil)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	finish := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- p.Do(ctx, func(taskCtx context.Context) {
			close(started)
			<-taskCtx.Done()
			<-finish
		})
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	close(finish) // let the worker finish the orphaned fn
}

// Close must drain queued work before returning, and reject later
// submissions with ErrPoolClosed.
func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(1, 8, nil, nil, nil)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Do(context.Background(), func(context.Context) {
				time.Sleep(2 * time.Millisecond)
				ran.Add(1)
			})
		}()
	}
	wg.Wait() // every Do returned, so every task ran
	p.Close()
	if got := ran.Load(); got != 6 {
		t.Errorf("ran = %d before Close returned, want 6", got)
	}
	if err := p.Do(context.Background(), func(context.Context) {}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Do after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}
