package core

import (
	"math"
	"testing"
)

func TestProgressiveUniformTracksStaticPlan(t *testing.T) {
	// Against the exact uniform life function, progressive re-planning
	// should reproduce (approximately) the static guideline plan: the
	// first period matches, and subsequent conditional re-plans shrink
	// the way the static schedule's periods do.
	l := mustUniform(1000)
	pr, err := NewProgressive(l, 1, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pl := mustPlanner(t, l, 1)
	static, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	var periods []float64
	for i := 0; i < 6; i++ {
		p, ok, err := pr.NextPeriod()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		periods = append(periods, p)
	}
	if len(periods) < 6 {
		t.Fatalf("progressive stopped after %d periods", len(periods))
	}
	if math.Abs(periods[0]-static.T0)/static.T0 > 0.02 {
		t.Errorf("progressive t0 = %g, static %g", periods[0], static.T0)
	}
	// Conditioning a uniform-risk function leaves a uniform-risk
	// function with shorter lifespan, so successive periods must be
	// strictly decreasing, echoing Corollary 5.1.
	for i := 1; i < len(periods); i++ {
		if periods[i] >= periods[i-1] {
			t.Errorf("progressive periods not decreasing: %v", periods)
		}
	}
}

func TestProgressiveGeomDecMemoryless(t *testing.T) {
	// The memoryless life function re-plans to the same period forever.
	l := mustGeomDec(math.Pow(2, 1.0/16))
	pr, err := NewProgressive(l, 1, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p1, ok, err := pr.NextPeriod()
	if err != nil || !ok {
		t.Fatalf("first period: %v %v", ok, err)
	}
	p2, ok, err := pr.NextPeriod()
	if err != nil || !ok {
		t.Fatalf("second period: %v %v", ok, err)
	}
	if math.Abs(p1-p2)/p1 > 1e-3 {
		t.Errorf("memoryless re-plan changed period: %g -> %g", p1, p2)
	}
}

func TestProgressiveStopsAtHorizon(t *testing.T) {
	l := mustUniform(10)
	pr, err := NewProgressive(l, 1, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	steps := 0
	for {
		p, ok, err := pr.NextPeriod()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		total += p
		steps++
		if steps > 100 {
			t.Fatal("progressive never stopped")
		}
	}
	if total > 10 {
		t.Errorf("progressive overran the horizon: %g", total)
	}
	if steps == 0 {
		t.Error("progressive produced no periods")
	}
	if pr.PeriodsPlanned() != steps {
		t.Errorf("PeriodsPlanned = %d, want %d", pr.PeriodsPlanned(), steps)
	}
}

func TestProgressiveReset(t *testing.T) {
	l := mustUniform(100)
	pr, err := NewProgressive(l, 1, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := pr.NextPeriod()
	if err != nil {
		t.Fatal(err)
	}
	pr.Reset()
	if pr.Elapsed() != 0 || pr.PeriodsPlanned() != 0 {
		t.Error("reset did not clear state")
	}
	p2, _, err := pr.NextPeriod()
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow floatcmp replay determinism: bit-identical
	if p1 != p2 {
		t.Errorf("replay after reset differs: %g vs %g", p1, p2)
	}
}

func TestProgressiveRejectsBadOverhead(t *testing.T) {
	if _, err := NewProgressive(mustUniform(10), 0, PlanOptions{}); err == nil {
		t.Error("c=0 accepted")
	}
}
