// Package core implements the scheduling guidelines of Rosenberg,
// "Guidelines for Data-Parallel Cycle-Stealing in Networks of
// Workstations, I" (CMPSCI TR 98-15 / IPPS 1998) — the paper's primary
// contribution.
//
// Given a life function p (see internal/lifefn) and the per-period
// communication overhead c, the guidelines determine a near-optimal
// cycle-stealing schedule in two steps:
//
//  1. Every non-initial period length follows inductively from t_0
//     through system (3.6): p(T_k) = p(T_{k-1}) + (t_{k-1}-c)·p'(T_{k-1}).
//     GenerateFrom implements that forward induction for arbitrary
//     differentiable life functions by numerically inverting p.
//
//  2. The initial period length t_0 is bracketed by Theorem 3.2 (lower
//     bound, any differentiable p) and Theorem 3.3 (upper bounds for
//     convex and concave p), refined by Corollary 5.5 when the horizon
//     is finite. T0Bracket computes the bracket; PlanBest searches it
//     for the t_0 whose generated schedule maximizes expected work.
//
// The package also provides the closed-form period recurrences the paper
// derives for its three Section-4 families, the optimal-schedule
// existence test of Corollary 3.2, and the structural laws of Section 5
// (growth rates, period-count bounds, perturbation optimality) as
// checkable predicates.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lifefn"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Common errors returned by the planners.
var (
	// ErrBadOverhead reports a nonpositive or non-finite overhead c.
	ErrBadOverhead = errors.New("core: overhead c must be positive and finite")
	// ErrBadT0 reports an initial period too short to be productive.
	ErrBadT0 = errors.New("core: initial period must exceed the overhead c")
	// ErrNoSchedule reports that no productive schedule exists for the
	// requested configuration (cf. Corollary 3.2).
	ErrNoSchedule = errors.New("core: life function admits no productive schedule")
)

// PlanOptions tunes schedule generation and the t0 search.
type PlanOptions struct {
	// MaxPeriods caps the number of generated periods; needed for
	// unbounded-horizon life functions whose optimal schedules are
	// infinite (e.g. geometric decreasing). If zero, 10_000 is used.
	MaxPeriods int
	// TailEps stops generation once p(T_k) falls below it: the omitted
	// tail of an infinite schedule then contributes less than
	// TailEps·t_k per period to expected work. If zero, 1e-12 is used.
	TailEps float64
	// ScanPoints is the grid resolution of the t0 search inside the
	// guideline bracket. If zero, 64 is used.
	ScanPoints int
	// Metrics, when non-nil, receives the cs_plan_* gauges describing
	// each PlanBest run (bracket width, objective evaluations, chosen
	// t0, schedule length, expected work). nil disables publishing.
	Metrics *obs.Registry
}

func (o PlanOptions) withDefaults() PlanOptions {
	if o.MaxPeriods <= 0 {
		o.MaxPeriods = 10_000
	}
	if o.TailEps <= 0 {
		o.TailEps = 1e-12
	}
	if o.ScanPoints <= 0 {
		o.ScanPoints = 64
	}
	return o
}

// Plan is the result of a guideline planning run.
type Plan struct {
	// Schedule is the generated schedule in productive normal form.
	Schedule sched.Schedule
	// T0 is the initial period length the search settled on.
	T0 float64
	// Bracket is the guideline bracket [Lo, Hi] that contained the
	// search (Theorems 3.2/3.3, Corollary 5.5).
	Bracket Bracket
	// ExpectedWork is E(Schedule; p) under the planning life function.
	ExpectedWork float64
	// Evaluations counts the objective evaluations (schedule generations
	// plus expected-work integrations) the t0 search spent.
	Evaluations int
}

// Planner derives guideline schedules for one (life function, overhead)
// configuration.
type Planner struct {
	life lifefn.Life
	c    float64
	opt  PlanOptions
}

// NewPlanner returns a planner for life function l with per-period
// overhead c.
func NewPlanner(l lifefn.Life, c float64, opt PlanOptions) (*Planner, error) {
	if !(c > 0) || math.IsInf(c, 0) {
		return nil, fmt.Errorf("%w: got %g", ErrBadOverhead, c)
	}
	if l == nil {
		return nil, errors.New("core: nil life function")
	}
	return &Planner{life: l, c: c, opt: opt.withDefaults()}, nil
}

// Life returns the planner's life function.
func (pl *Planner) Life() lifefn.Life { return pl.life }

// Overhead returns the planner's communication overhead c.
func (pl *Planner) Overhead() float64 { return pl.c }

// StopReason records why the forward induction of system (3.6) stopped
// emitting periods. The distinction matters to the existence decision:
// a schedule whose generation stopped because the remaining survival
// probability was negligible (StopTail) has converged, while one whose
// recurrence died structurally (StopExhausted, StopUnproductive,
// StopFlat) leaves survival probability unexploited.
type StopReason int

const (
	// StopTail: p(T_k) fell below TailEps — the omitted tail is
	// negligible; the (possibly infinite) schedule has converged.
	StopTail StopReason = iota
	// StopExhausted: the recurrence's target survival dropped to zero
	// or below — the horizon (or the system's feasible range) is used
	// up.
	StopExhausted
	// StopUnproductive: the next prescribed period would not exceed c.
	StopUnproductive
	// StopFlat: the derivative vanished while survival remained
	// positive; the system prescribes nothing further.
	StopFlat
	// StopMaxPeriods: the MaxPeriods cap was reached.
	StopMaxPeriods
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopTail:
		return "tail-converged"
	case StopExhausted:
		return "target-exhausted"
	case StopUnproductive:
		return "next-period-unproductive"
	case StopFlat:
		return "derivative-flat"
	case StopMaxPeriods:
		return "max-periods"
	default:
		return "unknown"
	}
}

// Structural reports whether generation died for a structural reason,
// leaving non-negligible survival probability unexploited, as opposed
// to converging (StopTail) or being truncated by the cap.
func (r StopReason) Structural() bool {
	return r == StopExhausted || r == StopUnproductive || r == StopFlat
}

// GenerateFrom builds a schedule from the initial period length t0 by
// the forward induction of Corollary 3.1 (system (3.6)):
//
//	p(T_k) = p(T_{k-1}) + (t_{k-1} - c)·p'(T_{k-1}),
//
// inverting p numerically at each step. Generation stops when the next
// period would be unproductive (length <= c; the productive normal form
// of Proposition 2.1 excludes it), when the target survival drops to
// zero or below (the horizon is exhausted), when p(T_k) falls below
// TailEps, or at MaxPeriods.
func (pl *Planner) GenerateFrom(t0 float64) (sched.Schedule, error) {
	s, _, err := pl.GenerateTrace(t0)
	return s, err
}

// GenerateTrace is GenerateFrom plus the reason generation stopped.
func (pl *Planner) GenerateTrace(t0 float64) (sched.Schedule, StopReason, error) {
	if !(t0 > pl.c) {
		return sched.Schedule{}, StopUnproductive, fmt.Errorf("%w: t0=%g, c=%g", ErrBadT0, t0, pl.c)
	}
	horizon := pl.life.Horizon()
	if !math.IsInf(horizon, 1) && t0 >= horizon {
		// A first period consuming the whole lifespan commits nothing
		// (p(T_0) = 0); clamp to the horizon so the caller's search sees
		// a smooth, zero-valued objective rather than an error.
		t0 = horizon
	}
	periods := []float64{t0}
	tPrev := t0
	tk := t0 // running boundary T_{k-1}
	reason := StopMaxPeriods
	for len(periods) < pl.opt.MaxPeriods {
		pPrev := pl.life.P(tk)
		if pPrev <= pl.opt.TailEps {
			reason = StopTail
			break
		}
		//lint:allow nonnegwork recurrence (3.6) term; t_{k-1} > c is a planner invariant
		target := pPrev + (tPrev-pl.c)*pl.life.Deriv(tk)
		if target <= 0 {
			reason = StopExhausted
			break
		}
		if target >= pPrev {
			// p' vanished (flat region): no further productive period
			// can be prescribed by the system.
			reason = StopFlat
			break
		}
		next, err := pl.invertP(target, tk)
		if err != nil {
			return sched.Schedule{}, reason, fmt.Errorf("core: inverting system (3.6) at period %d: %w", len(periods), err)
		}
		t := next - tk
		if t <= pl.c {
			reason = StopUnproductive
			break
		}
		periods = append(periods, t)
		tPrev, tk = t, next
	}
	s, err := sched.New(periods...)
	if err != nil {
		return sched.Schedule{}, reason, err
	}
	return sched.Normalize(s, pl.c), reason, nil
}

// invertP solves p(T) = target for T > from on the decreasing branch.
func (pl *Planner) invertP(target, from float64) (float64, error) {
	horizon := pl.life.Horizon()
	var hi float64
	if math.IsInf(horizon, 1) {
		lo, h, err := numeric.BracketRootGrowing(func(t float64) float64 {
			return pl.life.P(t) - target
		}, from, math.Max(pl.c, from*0.5)+1, 1e30)
		if err != nil {
			return 0, err
		}
		from, hi = lo, h
		//lint:allow floatcmp bracket collapsed onto the root exactly
		if from == hi {
			return from, nil
		}
	} else {
		hi = horizon
	}
	root, err := numeric.Brent(func(t float64) float64 {
		return pl.life.P(t) - target
	}, from, hi, numeric.RootOptions{AbsTol: 1e-13})
	if err != nil {
		return 0, err
	}
	return root, nil
}

// ExpectedWork evaluates E(s; p) under the planner's configuration.
func (pl *Planner) ExpectedWork(s sched.Schedule) float64 {
	return sched.ExpectedWork(s, pl.life, pl.c)
}

// PlanBest computes the guideline bracket for t0, searches it for the
// initial period whose generated schedule maximizes expected work, and
// returns the resulting plan. It fails with ErrNoSchedule when the life
// function flunks the existence test of Corollary 3.2 over the bracket's
// span.
func (pl *Planner) PlanBest() (Plan, error) {
	br, err := pl.T0Bracket()
	if err != nil {
		return Plan{}, err
	}
	evaluations := 0
	objective := func(t0 float64) float64 {
		evaluations++
		s, genErr := pl.GenerateFrom(t0)
		if genErr != nil {
			return math.Inf(-1)
		}
		return pl.ExpectedWork(s)
	}
	t0, _, err := numeric.MaximizeScan(objective, br.Lo, br.Hi, pl.opt.ScanPoints, numeric.MaxOptions{Tol: 1e-10})
	if err != nil {
		return Plan{}, fmt.Errorf("core: t0 search failed: %w", err)
	}
	s, err := pl.GenerateFrom(t0)
	if err != nil {
		return Plan{}, err
	}
	e := pl.ExpectedWork(s)
	if !(e > 0) {
		if _, ok := ExistsProductive(pl.life, pl.c); !ok {
			return Plan{}, ErrNoSchedule
		}
		return Plan{}, fmt.Errorf("core: search found no productive schedule in bracket [%g, %g]", br.Lo, br.Hi)
	}
	plan := Plan{Schedule: s, T0: t0, Bracket: br, ExpectedWork: e, Evaluations: evaluations}
	plan.publish(pl.opt.Metrics)
	return plan, nil
}

// publish writes the plan's summary gauges to reg (no-op when nil), so
// a planning run shows up on /metrics next to the simulation series.
func (p Plan) publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("cs_plan_t0_bracket_width", "width of the guideline t0 bracket (Hi - Lo)").Set(p.Bracket.Hi - p.Bracket.Lo)
	reg.Gauge("cs_plan_search_evaluations", "objective evaluations spent by the t0 search").Set(float64(p.Evaluations))
	reg.Gauge("cs_plan_schedule_periods", "periods in the planned schedule").Set(float64(p.Schedule.Len()))
	reg.Gauge("cs_plan_t0", "initial period length the search settled on").Set(p.T0)
	reg.Gauge("cs_plan_expected_work", "expected committed work of the planned schedule").Set(p.ExpectedWork)
}
