package core

import (
	"math"
	"testing"
)

func TestBracketUniformMatchesPaperBounds(t *testing.T) {
	// Numerical Thm 3.2 / 3.3 bounds must agree with the explicit
	// simplification (4.4) up to the simplification's own slack.
	c, L := 1.0, 1000.0
	pl := mustPlanner(t, mustUniform(L), c)
	br, err := pl.T0Bracket()
	if err != nil {
		t.Fatal(err)
	}
	paper := UniformT0Bounds(c, L)
	// Exact Thm 3.2 lower bound for p_{1,L} solves
	// t = sqrt(c²/4 + c(L-t)) + c/2, slightly below sqrt(cL)+c;
	// the paper's simplified lower bound sqrt(cL) is within a few %.
	if math.Abs(br.Detail.Thm32Lower-paper.Lo)/paper.Lo > 0.1 {
		t.Errorf("Thm32Lower = %g, paper sqrt(cL) = %g", br.Detail.Thm32Lower, paper.Lo)
	}
	if br.Detail.Thm33Upper > paper.Hi*1.1 {
		t.Errorf("Thm33Upper = %g exceeds paper bound %g", br.Detail.Thm33Upper, paper.Hi)
	}
	// The known optimum sqrt(2cL) must lie inside the final bracket.
	opt := math.Sqrt(2 * c * L)
	if !(br.Lo <= opt && opt <= br.Hi) {
		t.Errorf("bracket [%g, %g] misses optimal %g", br.Lo, br.Hi, opt)
	}
}

func TestBracketGeomDecMatchesPaperBounds(t *testing.T) {
	a := math.Pow(2, 1.0/32)
	c := 1.0
	pl := mustPlanner(t, mustGeomDec(a), c)
	br, err := pl.T0Bracket()
	if err != nil {
		t.Fatal(err)
	}
	paper := GeomDecT0Bounds(a, c)
	// Lower bound: closed form is exact here (p/p' is constant).
	if math.Abs(br.Detail.Thm32Lower-paper.Lo)/paper.Lo > 0.02 {
		t.Errorf("Thm32Lower = %g, paper %g", br.Detail.Thm32Lower, paper.Lo)
	}
	// Lemma 3.1 numeric bound should be within a factor ~2 of the
	// paper's c + 1/ln a (the paper's own derivation is loose in the
	// same way).
	if br.Detail.Lemma31Upper < paper.Lo || br.Detail.Lemma31Upper > 3*paper.Hi {
		t.Errorf("Lemma31Upper = %g vs paper hi %g", br.Detail.Lemma31Upper, paper.Hi)
	}
}

func TestBracketWidthModerate(t *testing.T) {
	// Section 6: the bounds "usually still leave one with a factor-of-2
	// uncertainty" — so the bracket should be narrow, not vacuous. Allow
	// up to ~8x to absorb margins across all scenarios.
	cases := []struct {
		name string
		pl   *Planner
	}{
		{"uniform", mustPlanner(t, mustUniform(1000), 1)},
		{"poly3", mustPlanner(t, mustPoly(3, 1000), 1)},
		{"geomdec", mustPlanner(t, mustGeomDec(math.Pow(2, 1.0/32)), 1)},
		{"geominc", mustPlanner(t, mustGeomInc(64), 1)},
	}
	for _, c := range cases {
		br, err := c.pl.T0Bracket()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !(br.Lo < br.Hi) {
			t.Fatalf("%s: degenerate bracket [%g, %g]", c.name, br.Lo, br.Hi)
		}
		if ratio := br.Hi / br.Lo; ratio > 8 {
			t.Errorf("%s: bracket ratio %g too loose [%g, %g]", c.name, ratio, br.Lo, br.Hi)
		}
	}
}

func TestBracketPolyFamilyContainsScaling(t *testing.T) {
	// Section 4.1: t0 scales as (c/d)^{1/(d+1)}·L^{d/(d+1)}. The numeric
	// bracket must contain the paper's simplified bracket midpoint.
	for _, d := range []int{1, 2, 3, 4, 5} {
		c, L := 1.0, 1000.0
		pl := mustPlanner(t, mustPoly(d, L), c)
		br, err := pl.T0Bracket()
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		paper := PolyT0Bounds(d, c, L)
		// The paper's bracket is a simplification of the exact Thm
		// 3.2/3.3 bounds (it uses p <= 1 and drops low-order terms), so
		// the two brackets need not nest; they must overlap and agree
		// on the scaling (same order of magnitude).
		if paper.Hi < br.Lo || paper.Lo > br.Hi {
			t.Errorf("d=%d: paper bracket [%g, %g] disjoint from numeric [%g, %g]",
				d, paper.Lo, paper.Hi, br.Lo, br.Hi)
		}
		if br.Lo < paper.Lo/4 || br.Hi > paper.Hi*4 {
			t.Errorf("d=%d: numeric bracket [%g, %g] off-scale vs paper [%g, %g]",
				d, br.Lo, br.Hi, paper.Lo, paper.Hi)
		}
	}
}

func TestBracketTinyLifespanDegenerates(t *testing.T) {
	// Lifespan barely above c: bracket must still be valid and ordered.
	pl := mustPlanner(t, mustUniform(1.5), 1)
	br, err := pl.T0Bracket()
	if err != nil {
		t.Fatal(err)
	}
	if !(br.Lo > 1 && br.Lo < br.Hi && br.Hi <= 1.5) {
		t.Errorf("bracket [%g, %g] invalid for L=1.5, c=1", br.Lo, br.Hi)
	}
}

func TestBracketFailsWhenLifespanBelowOverhead(t *testing.T) {
	pl := mustPlanner(t, mustUniform(0.5), 1)
	if _, err := pl.T0Bracket(); err == nil {
		t.Error("bracket computed for L < c")
	}
}

func TestCor55LowerActiveForConcave(t *testing.T) {
	pl := mustPlanner(t, mustPoly(2, 1000), 1)
	br, err := pl.T0Bracket()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(1*1000/2) + 0.75
	if math.Abs(br.Detail.Cor55Lower-want) > 1e-9 {
		t.Errorf("Cor55Lower = %g, want %g", br.Detail.Cor55Lower, want)
	}
}

func TestCor55AbsentForConvex(t *testing.T) {
	pl := mustPlanner(t, mustGeomDec(2), 1)
	br, err := pl.T0Bracket()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(br.Detail.Cor55Lower) {
		t.Errorf("Cor55Lower = %g for convex life function, want NaN", br.Detail.Cor55Lower)
	}
}

func TestLowerRHSDegenerateDerivative(t *testing.T) {
	// Where p' = 0 with p > 0 the bound must degenerate to +Inf, not
	// produce NaN.
	pl := mustPlanner(t, mustPoly(3, 100), 1)
	if v := lowerRHS(pl.life, 1, 0); !math.IsInf(v, 1) {
		t.Errorf("lowerRHS at p'=0: %g, want +Inf", v)
	}
}
