package core

import (
	"math"
)

// LocalMax is one local maximum of the E(t0) landscape.
type LocalMax struct {
	T0 float64
	E  float64
}

// T0Landscape probes Section 6's uniqueness question ("Are optimal
// cycle-stealing schedules unique? ... Theorem 3.1 implies that
// distinct optimal schedules must have different initial
// period-lengths"): it samples E(generate(t0)) over the guideline
// bracket at n points and returns the interior local maxima in t0
// order. A single reported maximum supports uniqueness for the
// configuration; several materially-tied maxima would witness
// non-uniqueness.
//
// Maxima within relTol of each other in E are considered ties and all
// reported; strictly dominated local maxima (more than relTol below the
// best) are filtered out, since only global maximizers are optimal
// schedule candidates.
func (pl *Planner) T0Landscape(n int, relTol float64) ([]LocalMax, error) {
	if n < 8 {
		n = 8
	}
	if relTol <= 0 {
		relTol = 1e-6
	}
	br, err := pl.T0Bracket()
	if err != nil {
		return nil, err
	}
	es := make([]float64, n+1)
	ts := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		t0 := br.Lo + (br.Hi-br.Lo)*float64(i)/float64(n)
		ts[i] = t0
		s, err := pl.GenerateFrom(t0)
		if err != nil {
			es[i] = math.Inf(-1)
			continue
		}
		es[i] = pl.ExpectedWork(s)
	}
	var maxima []LocalMax
	best := math.Inf(-1)
	for i := 0; i <= n; i++ {
		left := math.Inf(-1)
		if i > 0 {
			left = es[i-1]
		}
		right := math.Inf(-1)
		if i < n {
			right = es[i+1]
		}
		if es[i] >= left && es[i] >= right && !math.IsInf(es[i], -1) {
			// Skip plateau duplicates: only the first sample of a flat
			// run counts.
			//lint:allow floatcmp plateau detection is deliberately exact
			if i > 0 && es[i] == es[i-1] {
				continue
			}
			maxima = append(maxima, LocalMax{T0: ts[i], E: es[i]})
			if es[i] > best {
				best = es[i]
			}
		}
	}
	// Keep only maxima within relTol of the global best.
	out := maxima[:0]
	for _, m := range maxima {
		if m.E >= best*(1-relTol) {
			out = append(out, m)
		}
	}
	return out, nil
}
