package core

import (
	"fmt"

	"repro/internal/lifefn"
)

// Progressive plans a cycle-stealing episode period by period, the
// regimen Section 6 points out system (3.6) enables: because t_{k+1}
// is determined only after period k has ended, the scheduler can work
// from conditional rather than absolute probabilities. Each call to
// NextPeriod re-bases the life function on the survival observed so far
// and re-derives the best initial period for the remaining episode.
//
// Against the exact life function the progressive plan closely tracks
// the static plan (conditioning commutes with system (3.6)); its value
// is with approximate knowledge — e.g. a trace-fitted p that is
// re-fitted as the episode unfolds.
type Progressive struct {
	base    lifefn.Life
	c       float64
	opt     PlanOptions
	elapsed float64
	planned int
}

// NewProgressive returns a progressive planner over life function l
// with overhead c.
func NewProgressive(l lifefn.Life, c float64, opt PlanOptions) (*Progressive, error) {
	if !(c > 0) {
		return nil, fmt.Errorf("%w: got %g", ErrBadOverhead, c)
	}
	return &Progressive{base: l, c: c, opt: opt.withDefaults()}, nil
}

// Elapsed returns the episode time conditioned on so far.
func (pr *Progressive) Elapsed() float64 { return pr.elapsed }

// PeriodsPlanned returns how many periods NextPeriod has produced.
func (pr *Progressive) PeriodsPlanned() int { return pr.planned }

// NextPeriod returns the next period length for an episode that has
// survived to the current elapsed time, or ok=false when no further
// productive period is advisable (the conditional life function admits
// no productive schedule, or the horizon is exhausted). On success the
// internal clock advances by the returned period, i.e. the caller is
// assumed to dispatch it.
func (pr *Progressive) NextPeriod() (t float64, ok bool, err error) {
	cond, err := lifefn.NewConditional(pr.base, pr.elapsed)
	if err != nil {
		return 0, false, nil // zero survival probability: episode over
	}
	if cond.Horizon() <= pr.c {
		return 0, false, nil
	}
	if _, exists := ExistsProductive(cond, pr.c); !exists {
		return 0, false, nil
	}
	planner, err := NewPlanner(cond, pr.c, pr.opt)
	if err != nil {
		return 0, false, err
	}
	plan, err := planner.PlanBest()
	if err != nil {
		if err == ErrNoSchedule {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("core: progressive re-plan at τ=%g: %w", pr.elapsed, err)
	}
	pr.elapsed += plan.T0
	pr.planned++
	return plan.T0, true, nil
}

// Reset rewinds the planner to the episode start.
func (pr *Progressive) Reset() { pr.elapsed = 0; pr.planned = 0 }
