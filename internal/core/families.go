package core

import (
	"fmt"
	"math"

	"repro/internal/lifefn"
	"repro/internal/numeric"
	"repro/internal/sched"
)

// This file carries the closed-form instantiations of the guidelines
// that Section 4 of the paper derives for its three life-function
// families. Each family gets (a) the explicit next-period recurrence
// obtained from system (3.6) and (b) the explicit t0 bounds obtained
// from Theorems 3.2/3.3. They exist both as a user-facing fast path
// (no root finding) and as an independent cross-check of the generic
// numerical machinery in core.go / bounds.go.

// T0Bounds is an explicit closed-form bracket on the optimal initial
// period length for one of the Section 4 families.
type T0Bounds struct {
	Lo, Hi float64
}

// Contains reports whether t lies within the bounds (inclusive).
func (b T0Bounds) Contains(t float64) bool { return t >= b.Lo && t <= b.Hi }

// Width returns Hi - Lo.
func (b T0Bounds) Width() float64 { return b.Hi - b.Lo }

// UniformNextPeriod is recurrence (4.1) for the uniform-risk scenario
// p_{1,L}: t_k = t_{k-1} - c, which coincides with the optimal
// recurrence of [BCLR97]. The raw difference is deliberate: a
// non-positive result signals exhaustion to the schedule builder.
func UniformNextPeriod(tPrev, c float64) float64 {
	//lint:allow nonnegwork recurrence (4.1); non-positive result signals exhaustion
	return tPrev - c
}

// UniformT0Bounds is the explicit bracket (4.4) for the uniform-risk
// scenario: sqrt(cL) <= t0 <= 2·sqrt(cL) + 1. The true optimum (4.5)
// is sqrt(2cL) + low-order terms, inside the bracket.
func UniformT0Bounds(c, l float64) T0Bounds {
	r := math.Sqrt(c * l)
	return T0Bounds{Lo: r, Hi: 2*r + 1}
}

// PolyNextPeriod is the Section 4.1 recurrence for p_{d,L}:
// t_k = ((1 + d(t_{k-1}-c)/T_{k-1})^{1/d} - 1)·T_{k-1}, where T_{k-1}
// is the boundary preceding the new period. For d = 1 it reduces to
// recurrence (4.1); note the d = 1 form is T-free only after algebraic
// simplification, which the general formula reproduces numerically.
func PolyNextPeriod(d int, tPrev, boundary, c float64) float64 {
	dd := float64(d)
	//lint:allow nonnegwork recurrence (4.1) generalized; sign carries exhaustion
	return (math.Pow(1+dd*(tPrev-c)/boundary, 1/dd) - 1) * boundary
}

// PolyT0Bounds is the simplified Section 4.1 bracket for p_{d,L}:
// (c/d)^{1/(d+1)}·L^{d/(d+1)} <= t0 <= 2·(c/d)^{1/(d+1)}·L^{d/(d+1)} + 1.
func PolyT0Bounds(d int, c, l float64) T0Bounds {
	dd := float64(d)
	base := math.Pow(c/dd, 1/(dd+1)) * math.Pow(l, dd/(dd+1))
	return T0Bounds{Lo: base, Hi: 2*base + 1}
}

// GeomDecNextPeriod is recurrence (4.6) for p_a(t) = a^{-t}:
// a^{-t_k} + t_{k-1}·ln a = 1 + c·ln a, solvable whenever
// t_{k-1} < c + 1/ln a. The second return value reports solvability.
func GeomDecNextPeriod(a, tPrev, c float64) (float64, bool) {
	lna := math.Log(a)
	arg := 1 + (c-tPrev)*lna
	if arg <= 0 {
		return 0, false
	}
	return -math.Log(arg) / lna, true
}

// GeomDecT0Bounds is the Section 4.2 bracket for p_a:
// sqrt(c²/4 + c/ln a) + c/2 <= t0 <= c + 1/ln a. The paper notes the
// upper bound is remarkably close to the optimal value.
func GeomDecT0Bounds(a, c float64) T0Bounds {
	lna := math.Log(a)
	return T0Bounds{
		Lo: math.Sqrt(c*c/4+c/lna) + c/2,
		Hi: c + 1/lna,
	}
}

// GeomIncNextPeriod is recurrence (4.7) for the doubling-risk scenario:
// t_{k+1} = log2((t_k - c)·ln 2 + 1).
func GeomIncNextPeriod(tPrev, c float64) float64 {
	//lint:allow nonnegwork recurrence (4.7); sign carries exhaustion
	return math.Log2((tPrev-c)*math.Ln2 + 1)
}

// GeomIncT0Window solves the Section 4.3 window
// 2^{t0/2}·t0² <= 2^L <= 2^{t0}·t0², i.e.
// t0 + 2·log2(t0) >= L and t0/2 + 2·log2(t0) <= L, for the implied
// bracket on t0. Both boundary equations are solved numerically.
func GeomIncT0Window(l float64) (T0Bounds, error) {
	// Lower edge: t + 2·log2 t = L.
	lo, err := solveIncreasing(func(t float64) float64 { return t + 2*math.Log2(t) - l }, l)
	if err != nil {
		return T0Bounds{}, fmt.Errorf("core: geominc t0 window lower edge: %w", err)
	}
	// Upper edge: t/2 + 2·log2 t = L.
	hi, err := solveIncreasing(func(t float64) float64 { return t/2 + 2*math.Log2(t) - l }, 2*l)
	if err != nil {
		return T0Bounds{}, fmt.Errorf("core: geominc t0 window upper edge: %w", err)
	}
	return T0Bounds{Lo: lo, Hi: hi}, nil
}

// solveIncreasing finds the root of a strictly increasing f on
// (tiny, max].
func solveIncreasing(f func(float64) float64, max float64) (float64, error) {
	return numeric.Brent(f, 1e-9, max, numeric.RootOptions{AbsTol: 1e-12})
}

// Recurrence yields the next period length from the previous period and
// the boundary (cumulative time) before the new period. ok=false ends
// generation.
type Recurrence func(tPrev, boundary float64) (t float64, ok bool)

// GenerateByRecurrence iterates a closed-form family recurrence from t0,
// applying the same termination rules as Planner.GenerateFrom: periods
// stay productive (> c), the cumulative time stays inside the horizon,
// survival stays above tailEps, and at most maxPeriods are emitted.
func GenerateByRecurrence(rec Recurrence, l lifefn.Life, c, t0 float64, opt PlanOptions) (sched.Schedule, error) {
	opt = opt.withDefaults()
	if !(t0 > c) {
		return sched.Schedule{}, fmt.Errorf("%w: t0=%g, c=%g", ErrBadT0, t0, c)
	}
	horizon := l.Horizon()
	periods := []float64{t0}
	tPrev, boundary := t0, t0
	for len(periods) < opt.MaxPeriods {
		if l.P(boundary) <= opt.TailEps {
			break
		}
		t, ok := rec(tPrev, boundary)
		if !ok || !(t > c) || math.IsNaN(t) {
			break
		}
		if !math.IsInf(horizon, 1) && boundary+t > horizon {
			break
		}
		periods = append(periods, t)
		tPrev, boundary = t, boundary+t
	}
	s, err := sched.New(periods...)
	if err != nil {
		return sched.Schedule{}, err
	}
	return sched.Normalize(s, c), nil
}

// FamilyRecurrence returns the Section 4 closed-form recurrence matching
// the given life function, or ok=false when the paper derives none for
// its type.
func FamilyRecurrence(l lifefn.Life, c float64) (Recurrence, bool) {
	switch f := l.(type) {
	case lifefn.Uniform:
		return func(tPrev, _ float64) (float64, bool) {
			//lint:allow nonnegwork forwards recurrence (4.1); caller stops on t <= c
			return UniformNextPeriod(tPrev, c), true
		}, true
	case lifefn.Poly:
		return func(tPrev, boundary float64) (float64, bool) {
			return PolyNextPeriod(f.D, tPrev, boundary, c), true
		}, true
	case lifefn.GeomDecreasing:
		return func(tPrev, _ float64) (float64, bool) {
			return GeomDecNextPeriod(f.A, tPrev, c)
		}, true
	case lifefn.GeomIncreasing:
		return func(tPrev, _ float64) (float64, bool) {
			return GeomIncNextPeriod(tPrev, c), true
		}, true
	default:
		return nil, false
	}
}
