package core

import (
	"strings"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/obs"
)

// TestPlanBestPublishesMetrics checks that a planning run with a
// registry wired through PlanOptions.Metrics records the search's
// shape: a positive bracket width, at least ScanPoints objective
// evaluations, and the plan's own summary numbers.
func TestPlanBestPublishesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	l, lerr := lifefn.NewUniform(100)
	if lerr != nil {
		t.Fatal(lerr)
	}
	pl, err := NewPlanner(l, 1, PlanOptions{ScanPoints: 16, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Evaluations < 16 {
		t.Errorf("Evaluations = %d, want >= ScanPoints (16)", plan.Evaluations)
	}
	checks := map[string]float64{
		"cs_plan_t0_bracket_width":   plan.Bracket.Hi - plan.Bracket.Lo,
		"cs_plan_search_evaluations": float64(plan.Evaluations),
		"cs_plan_schedule_periods":   float64(plan.Schedule.Len()),
		"cs_plan_t0":                 plan.T0,
		"cs_plan_expected_work":      plan.ExpectedWork,
	}
	//lint:allow determinism iteration order does not affect assertions
	for name, want := range checks {
		//lint:allow floatcmp gauges must republish plan fields bit-for-bit
		if got := reg.Gauge(name, "").Value(); got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	if w := plan.Bracket.Hi - plan.Bracket.Lo; !(w > 0) {
		t.Errorf("bracket width %g, want > 0", w)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cs_plan_expected_work") {
		t.Errorf("exposition missing cs_plan_expected_work:\n%s", sb.String())
	}
}

// TestPlanBestNilMetrics pins that planning without a registry is
// unchanged: same plan, no panic, Evaluations still counted.
func TestPlanBestNilMetrics(t *testing.T) {
	l, lerr := lifefn.NewUniform(100)
	if lerr != nil {
		t.Fatal(lerr)
	}
	mk := func(reg *obs.Registry) Plan {
		pl, err := NewPlanner(l, 1, PlanOptions{ScanPoints: 16, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := pl.PlanBest()
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	plain := mk(nil)
	observed := mk(obs.NewRegistry())
	//lint:allow floatcmp metrics must not perturb the plan: bit-identical
	if plain.T0 != observed.T0 || plain.ExpectedWork != observed.ExpectedWork ||
		plain.Evaluations != observed.Evaluations {
		t.Errorf("plan differs with metrics enabled: %+v vs %+v", plain, observed)
	}
}
