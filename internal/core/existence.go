package core

import (
	"fmt"
	"math"

	"repro/internal/lifefn"
	"repro/internal/numeric"
	"repro/internal/sched"
)

// ExistsProductive implements the literal existence test of Corollary
// 3.2: it scans for a witness t > c with p(t) > -(t-c)·p'(t), a
// necessary condition for an optimal schedule. The scan covers a dense
// linear grid plus a geometric sweep of the tail.
//
// Note the literal condition is weak: for p = (1+t)^{-d} it reduces to
// 1+t > d(t-c), which is satisfiable just above c for every d, so the
// literal scan cannot by itself reproduce the paper's claim that d > 1
// admits no optimal schedule. See TailMarginFails and AdmitsOptimal for
// the tail reading under which the claim follows.
func ExistsProductive(l lifefn.Life, c float64) (witness float64, ok bool) {
	span := searchSpan(l, 1e-15)
	if !(span > c) {
		return 0, false
	}
	margin := func(t float64) float64 {
		//lint:allow nonnegwork Corollary 3.2 margin; its sign is the tested quantity
		return l.P(t) + (t-c)*l.Deriv(t)
	}
	lo := c * (1 + 1e-9)
	for i := 1; i <= 512; i++ {
		t := lo + (span-lo)*float64(i)/512
		if margin(t) > 0 {
			return t, true
		}
	}
	for t := lo * 1.001; t < span; t *= 1.5 {
		if margin(t) > 0 {
			return t, true
		}
	}
	return 0, false
}

// ExistenceMargin returns the largest sampled value of
// p(t) + (t-c)·p'(t) for t in (c, span]: positive iff the Corollary 3.2
// scan finds a witness, and its magnitude indicates how comfortably.
func ExistenceMargin(l lifefn.Life, c float64) float64 {
	span := searchSpan(l, 1e-15)
	if !(span > c) {
		return math.Inf(-1)
	}
	lo := c * (1 + 1e-9)
	best := math.Inf(-1)
	for i := 1; i <= 1024; i++ {
		t := lo + (span-lo)*float64(i)/1024
		//lint:allow nonnegwork Corollary 3.2 margin; its sign is the computed quantity
		if m := l.P(t) + (t-c)*l.Deriv(t); m > best {
			best = m
		}
	}
	return best
}

// TailMarginFails reports whether the Corollary 3.2 margin
// p(t) + (t-c)·p'(t) is eventually negative: negative at every sampled
// time in the far tail (a geometric ladder across the last decades of
// the effective span). Equivalently, 1/h(t) < t - c in the tail, where
// h = -p'/p is the hazard rate. Only meaningful for unbounded-horizon
// life functions; it returns false for bounded horizons.
func TailMarginFails(l lifefn.Life, c float64) bool {
	if !math.IsInf(l.Horizon(), 1) {
		return false
	}
	span := searchSpan(l, 1e-15)
	if span <= 4*c {
		return false
	}
	// Sample the far half of the effective span: the margin must be
	// negative at every point there for the tail failure to hold.
	for i := 0; i <= 8; i++ {
		t := span * (0.5 + 0.5*float64(i)/8)
		//lint:allow nonnegwork Corollary 3.2 margin; negativity is what the test checks
		if l.P(t)+(t-c)*l.Deriv(t) > 0 {
			return false
		}
	}
	return true
}

// HazardDecreasing reports whether the hazard rate h = -p'/p decreases
// across the sampled tail of the life function: the "risk fades with
// age" regime in which postponing work indefinitely keeps paying off.
func HazardDecreasing(l lifefn.Life, c float64) bool {
	span := searchSpan(l, 1e-15)
	hazard := func(t float64) float64 {
		p := l.P(t)
		if p <= 0 {
			return math.Inf(1)
		}
		return -l.Deriv(t) / p
	}
	prev := hazard(math.Max(2*c, span/1024))
	dec := false
	for t := math.Max(4*c, span/512); t <= span; t *= 2 {
		h := hazard(t)
		if h > prev*(1+1e-9) {
			return false
		}
		if h < prev*(1-1e-9) {
			dec = true
		}
		prev = h
	}
	return dec
}

// Admissibility is the outcome of the optimal-schedule existence
// decision.
type Admissibility struct {
	// Admits reports whether the life function admits an optimal
	// schedule under the paper's Corollary 3.2 criteria (see
	// AdmitsOptimal for the exact reading).
	Admits bool
	// Reason explains a negative decision.
	Reason string
	// BestPlan is the best guideline plan found while deciding (valid
	// whenever one could be constructed, even on a negative decision —
	// it is then the best-effort schedule, not a certified optimum).
	BestPlan Plan
	// AppendGain is the expected-work improvement available by
	// appending one more productive period to BestPlan's schedule
	// (diagnostic only).
	AppendGain float64
}

// AdmitsOptimal decides whether the life function admits an optimal
// schedule, reproducing the paper's Corollary 3.2 conclusions:
//
//   - the literal scan must find a witness t > c with
//     p(t) > -(t-c)·p'(t) (Corollary 3.2 as stated);
//   - for unbounded horizons, the margin must not fail permanently in
//     the tail while the hazard rate fades: when 1/h(t) < t-c for all
//     large t *and* h is decreasing, there is always a later, safer
//     time to postpone work to, and no schedule is unimprovable. This
//     is the reading under which the paper's example — p = (1+t)^{-d}
//     with d > 1 admits no optimal schedule — follows; the constant-
//     hazard (memoryless) scenario also fails the raw tail margin but
//     is exempted because its conditional risk never improves, and
//     [BCLR97] proves its equal-period optimum outright.
//
// The reproduction note: numerically, forward generation under
// system (3.6) for d > 1 still converges to a well-defined supremum at
// a critical t0 (see the E8 experiment), so the non-existence claim
// rests on this tail reading rather than on the literal corollary; the
// package preserves the paper's verdicts while exposing the literal
// test (ExistsProductive) separately.
func AdmitsOptimal(l lifefn.Life, c float64, opt PlanOptions) (Admissibility, error) {
	if _, ok := ExistsProductive(l, c); !ok {
		return Admissibility{Admits: false, Reason: "no t > c satisfies the Corollary 3.2 inequality"}, nil
	}
	if TailMarginFails(l, c) && HazardDecreasing(l, c) {
		ad := Admissibility{
			Admits: false,
			Reason: "Corollary 3.2 margin is negative throughout the tail while the hazard rate fades: work can be postponed indefinitely",
		}
		// Best-effort plan for diagnostics.
		if pl, err := NewPlanner(l, c, opt); err == nil {
			if plan, err := pl.PlanBest(); err == nil {
				ad.BestPlan = plan
				ad.AppendGain = bestAppendGain(l, c, plan.Schedule.Total())
			}
		}
		return ad, nil
	}
	pl, err := NewPlanner(l, c, opt)
	if err != nil {
		return Admissibility{}, err
	}
	plan, err := pl.PlanBest()
	if err != nil {
		if err == ErrNoSchedule {
			return Admissibility{Admits: false, Reason: "no productive schedule in the guideline bracket"}, nil
		}
		return Admissibility{}, fmt.Errorf("core: admissibility decision: %w", err)
	}
	return Admissibility{
		Admits:     true,
		BestPlan:   plan,
		AppendGain: bestAppendGain(l, c, plan.Schedule.Total()),
	}, nil
}

// bestAppendGain returns the largest expected work obtainable from one
// extra period appended at time tau: max over t > c of (t-c)·p(tau+t).
func bestAppendGain(l lifefn.Life, c, tau float64) float64 {
	horizon := l.Horizon()
	var hi float64
	if math.IsInf(horizon, 1) {
		hi = searchSpan(l, 1e-15) // far tail
	} else {
		hi = horizon - tau
	}
	if hi <= c {
		return 0
	}
	yield := func(t float64) float64 { return sched.PositiveSub(t, c) * l.P(tau+t) }
	_, best, err := numeric.MaximizeScan(yield, c*(1+1e-12), hi, 128, numeric.MaxOptions{Tol: 1e-9})
	if err != nil || best < 0 {
		return 0
	}
	return best
}
