package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lifefn"
)

func TestScaleInvarianceOfGuidelines(t *testing.T) {
	// Changing time units — (p, c) → (p(·/k), kc) — must scale the
	// guideline schedule's periods and expected work by exactly k. This
	// is a strong end-to-end consistency check on the whole pipeline:
	// bounds, bracket, root-finding and search all have to commute with
	// the rescaling.
	base := mustUniform(500)
	cBase := 1.0
	basePlan, err := mustPlanner(t, base, cBase).PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{0.25, 2, 7.5, 60} {
		scaled, err := lifefn.NewScaled(base, k)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := mustPlanner(t, scaled, cBase*k).PlanBest()
		if err != nil {
			t.Fatalf("k=%g: %v", k, err)
		}
		if math.Abs(plan.T0-k*basePlan.T0) > 1e-4*k*basePlan.T0 {
			t.Errorf("k=%g: t0 = %g, want %g", k, plan.T0, k*basePlan.T0)
		}
		if math.Abs(plan.ExpectedWork-k*basePlan.ExpectedWork) > 1e-4*k*basePlan.ExpectedWork {
			t.Errorf("k=%g: E = %g, want %g", k, plan.ExpectedWork, k*basePlan.ExpectedWork)
		}
		if plan.Schedule.Len() != basePlan.Schedule.Len() {
			t.Errorf("k=%g: m = %d, want %d", k, plan.Schedule.Len(), basePlan.Schedule.Len())
		}
	}
}

func TestPropertyGeneratedSchedulesRespectStructure(t *testing.T) {
	// Property: for random concave configurations (d, L, c, t0), the
	// forward generation of system (3.6) yields schedules that are
	// strictly decreasing with steps of at least c (Thm 5.2 direction),
	// stay inside the lifespan, and have only productive periods.
	check := func(di, li, ci, ti uint8) bool {
		d := 1 + int(di%4)
		L := 100 + float64(li)*8
		c := 0.5 + float64(ci%8)/4 // 0.5 .. 2.25
		l, err := lifefn.NewPoly(d, L)
		if err != nil {
			return false
		}
		pl, err := NewPlanner(l, c, PlanOptions{})
		if err != nil {
			return false
		}
		br, err := pl.T0Bracket()
		if err != nil {
			return true // degenerate configuration: nothing to check
		}
		t0 := br.Lo + (br.Hi-br.Lo)*float64(ti)/255
		if t0 <= c {
			return true
		}
		s, err := pl.GenerateFrom(t0)
		if err != nil || s.Len() == 0 {
			return true
		}
		if s.Total() > L+1e-6 {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			if s.Period(i) <= c {
				return false
			}
			//lint:allow nonnegwork growth-law bound, comparison only
			if i > 0 && s.Period(i) > s.Period(i-1)-c+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExpectedWorkBoundedByMeanLifetime(t *testing.T) {
	// E(S; p) <= ∫p (the mean reclaim time): every unit of time
	// contributes at most p(τ)dτ of expected committed work. A global
	// sanity invariant tying sched, lifefn and numeric together.
	check := func(li, ci, ti uint8) bool {
		L := 50 + float64(li)
		c := 0.5 + float64(ci%6)/4
		l, err := lifefn.NewUniform(L)
		if err != nil {
			return false
		}
		mean, err := lifefn.MeanLifetime(l)
		if err != nil {
			return false
		}
		pl, err := NewPlanner(l, c, PlanOptions{})
		if err != nil {
			return false
		}
		t0 := c + 0.1 + float64(ti)/8
		if t0 >= L {
			return true
		}
		s, err := pl.GenerateFrom(t0)
		if err != nil {
			return true
		}
		return pl.ExpectedWork(s) <= mean+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
