package core

import (
	"fmt"
	"math"

	"repro/internal/lifefn"
	"repro/internal/numeric"
)

// Bracket is a guideline bracket on the optimal initial period length:
// Theorems 3.2 and 3.3 guarantee that the optimal t0 lies in [Lo, Hi]
// (up to the small safety margin recorded in Margin). Detail records
// which individual bounds were active.
type Bracket struct {
	Lo, Hi float64
	// Margin is the relative slack applied to each side to absorb the
	// numerical solution of the implicit bound equations.
	Margin float64
	// Detail carries the raw per-theorem bounds for reporting.
	Detail BoundDetail
}

// BoundDetail is the set of individual t0 bounds that produced a
// Bracket. Bounds that do not apply (wrong shape, unbounded horizon, or
// no numerical solution) are NaN.
type BoundDetail struct {
	// Thm32Lower is the implicit lower bound (3.7), valid for every
	// differentiable life function.
	Thm32Lower float64
	// Thm33Upper is the shape-specific upper bound (3.13) (convex) or
	// (3.14) (concave).
	Thm33Upper float64
	// Lemma31Upper is the implicit, shape-free upper bound (3.10)
	// (combined with the "either t0 <= 2c" alternative).
	Lemma31Upper float64
	// Cor55Lower is the refined concave lower bound sqrt(cL/2) + 3c/4.
	Cor55Lower float64
	// Span is the search ceiling: the horizon for bounded life
	// functions, the effective decay span otherwise.
	Span float64
}

// lowerRHS evaluates the right-hand side of inequality (3.7):
// sqrt(c²/4 - c·p(t)/p'(t)) + c/2. It returns +Inf where the derivative
// vanishes while survival remains positive (the bound degenerates
// there).
func lowerRHS(l lifefn.Life, c, t float64) float64 {
	p := l.P(t)
	dp := l.Deriv(t)
	if dp >= 0 {
		if p <= 0 {
			return c
		}
		return math.Inf(1)
	}
	return math.Sqrt(c*c/4-c*p/dp) + c/2
}

// upperRHS evaluates the right-hand side of the shape-specific upper
// bound: (3.13) uses p'(t) for convex life functions, (3.14) uses
// p'(t/2) for concave ones.
func upperRHS(l lifefn.Life, c, t float64, shape lifefn.Shape) float64 {
	p := l.P(t)
	var dp float64
	switch {
	case shape.IsConvex():
		dp = l.Deriv(t)
	case shape.IsConcave():
		dp = l.Deriv(t / 2)
	default:
		return math.NaN()
	}
	if dp >= 0 {
		if p <= 0 {
			return c
		}
		return math.Inf(1)
	}
	return 2*math.Sqrt(c*c/4-c*p/dp) + c
}

// searchSpan returns the upper end of the t0 search range: the horizon
// when finite, otherwise the time by which p decays below tailEps.
func searchSpan(l lifefn.Life, tailEps float64) float64 {
	if h := l.Horizon(); !math.IsInf(h, 1) {
		return h
	}
	span := 1.0
	for l.P(span) > tailEps && span < 1e12 {
		span *= 2
	}
	return span
}

// T0Bracket computes the guideline bracket for the optimal initial
// period length: the largest lower bound among Theorem 3.2 and (for
// concave p with finite horizon) Corollary 5.5, and the smallest upper
// bound among Theorem 3.3, Lemma 3.1 and the search span. A small
// relative margin is applied on both sides so that the bracketed search
// cannot lose the optimum to the numerical solution of the implicit
// bound equations.
func (pl *Planner) T0Bracket() (Bracket, error) {
	c := pl.c
	l := pl.life
	span := searchSpan(l, pl.opt.TailEps)
	if !(span > c) {
		return Bracket{}, fmt.Errorf("%w: lifespan %g does not exceed overhead %g", ErrNoSchedule, span, c)
	}
	d := BoundDetail{
		Thm32Lower:   math.NaN(),
		Thm33Upper:   math.NaN(),
		Lemma31Upper: math.NaN(),
		Cor55Lower:   math.NaN(),
		Span:         span,
	}

	// --- Lower bound, Theorem 3.2: smallest t in (c, span] with
	// t >= lowerRHS(t).
	gap := func(t float64) float64 { return t - lowerRHS(l, c, t) }
	if lo, ok := firstCrossing(gap, c*(1+1e-9), span, 256); ok {
		d.Thm32Lower = lo
	}

	// --- Lower bound, Corollary 5.5 (concave, finite horizon).
	shape := l.Shape()
	if shape.IsConcave() && !math.IsInf(l.Horizon(), 1) {
		d.Cor55Lower = math.Sqrt(c*l.Horizon()/2) + 0.75*c
	}

	// --- Upper bound, Theorem 3.3 (needs a definite shape and t0 > 2c):
	// largest t in [2c, span] with t <= upperRHS(t).
	if shape != lifefn.Unknown {
		slack := func(t float64) float64 { return upperRHS(l, c, t, shape) - t }
		if hi, ok := lastCrossing(slack, 2*c, span, 256); ok {
			d.Thm33Upper = math.Max(hi, 2*c)
		} else if slack(span) >= 0 {
			d.Thm33Upper = span
		} else {
			d.Thm33Upper = 2 * c
		}
	}

	// --- Upper bound, Lemma 3.1: largest t0 in [2c, span] satisfying
	// condition (3.10); 2c if none does.
	if hi, ok := lastCrossing(func(t0 float64) float64 {
		return pl.lemma31Slack(t0)
	}, 2*c, span, 256); ok {
		d.Lemma31Upper = math.Max(hi, 2*c)
	} else if pl.lemma31Slack(span) >= 0 {
		d.Lemma31Upper = span
	} else {
		d.Lemma31Upper = 2 * c
	}

	lo := c * (1 + 1e-9)
	if !math.IsNaN(d.Thm32Lower) {
		lo = math.Max(lo, d.Thm32Lower)
	}
	if !math.IsNaN(d.Cor55Lower) {
		lo = math.Max(lo, d.Cor55Lower)
	}
	hi := span
	if !math.IsNaN(d.Thm33Upper) {
		hi = math.Min(hi, d.Thm33Upper)
	}
	if !math.IsNaN(d.Lemma31Upper) {
		hi = math.Min(hi, d.Lemma31Upper)
	}

	const margin = 0.02
	lo *= 1 - margin
	hi *= 1 + margin
	if lo <= c {
		lo = c * (1 + 1e-9)
	}
	if hi > span {
		hi = span
	}
	if !(lo < hi) {
		// Degenerate bracket (tiny lifespans): search the whole range.
		lo, hi = c*(1+1e-9), span
	}
	return Bracket{Lo: lo, Hi: hi, Margin: margin, Detail: d}, nil
}

// lemma31Slack measures how much t0 satisfies condition (3.10):
// p(t0) - max_{t in (c, t0-c)} (1 - c/t)·p(t). Nonnegative slack means
// the condition holds. For t0 <= 2c the inner interval is empty and the
// lemma places no constraint, so the slack is +Inf.
func (pl *Planner) lemma31Slack(t0 float64) float64 {
	c := pl.c
	if t0 <= 2*c {
		return math.Inf(1)
	}
	inner := func(t float64) float64 { return (1 - c/t) * pl.life.P(t) }
	//lint:allow nonnegwork interval endpoint of (3.10), positive by the t0 > 2c guard above
	_, best, err := numeric.MaximizeScan(inner, c*(1+1e-9), t0-c, 64, numeric.MaxOptions{Tol: 1e-9})
	if err != nil {
		return math.Inf(1)
	}
	return pl.life.P(t0) - best
}

// firstCrossing finds the smallest t in [lo, hi] where f changes from
// negative to nonnegative, scanning n cells and refining by bisection.
func firstCrossing(f func(float64) float64, lo, hi float64, n int) (float64, bool) {
	if !(lo < hi) {
		return 0, false
	}
	prevT, prevF := lo, f(lo)
	if prevF >= 0 {
		return lo, true
	}
	h := (hi - lo) / float64(n)
	for i := 1; i <= n; i++ {
		t := lo + float64(i)*h
		ft := f(t)
		if ft >= 0 {
			return bisectCrossing(f, prevT, t), true
		}
		prevT, prevF = t, ft
	}
	_ = prevF
	return 0, false
}

// lastCrossing finds the largest t in [lo, hi] where f is nonnegative,
// scanning from hi downward and refining by bisection at the boundary.
func lastCrossing(f func(float64) float64, lo, hi float64, n int) (float64, bool) {
	if !(lo < hi) {
		return 0, false
	}
	h := (hi - lo) / float64(n)
	prevT := hi
	prevF := f(hi)
	if prevF >= 0 {
		return hi, true
	}
	for i := n - 1; i >= 0; i-- {
		t := lo + float64(i)*h
		ft := f(t)
		if ft >= 0 {
			return bisectCrossing(f, prevT, t), true
		}
		prevT, prevF = t, ft
	}
	_ = prevF
	return 0, false
}

// bisectCrossing refines the boundary between a point where f < 0 (neg)
// and one where f >= 0 (pos), returning a point on the nonnegative side.
func bisectCrossing(f func(float64) float64, neg, pos float64) float64 {
	for i := 0; i < 80 && math.Abs(pos-neg) > 1e-12*(1+math.Abs(pos)); i++ {
		mid := neg + (pos-neg)/2
		if f(mid) >= 0 {
			pos = mid
		} else {
			neg = mid
		}
	}
	return pos
}
