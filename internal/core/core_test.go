package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/sched"
)

func mustPlanner(t *testing.T, l lifefn.Life, c float64) *Planner {
	t.Helper()
	pl, err := NewPlanner(l, c, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestNewPlannerRejectsBadInput(t *testing.T) {
	l, _ := lifefn.NewUniform(10)
	if _, err := NewPlanner(l, 0, PlanOptions{}); !errors.Is(err, ErrBadOverhead) {
		t.Errorf("c=0: err = %v", err)
	}
	if _, err := NewPlanner(l, math.Inf(1), PlanOptions{}); !errors.Is(err, ErrBadOverhead) {
		t.Errorf("c=Inf: err = %v", err)
	}
	if _, err := NewPlanner(nil, 1, PlanOptions{}); err == nil {
		t.Error("nil life accepted")
	}
}

func TestGenerateFromRejectsShortT0(t *testing.T) {
	l, _ := lifefn.NewUniform(100)
	pl := mustPlanner(t, l, 1)
	if _, err := pl.GenerateFrom(0.5); !errors.Is(err, ErrBadT0) {
		t.Errorf("err = %v, want ErrBadT0", err)
	}
}

func TestGenerateFromUniformMatchesClosedForm(t *testing.T) {
	// System (3.6) on p_{1,L} must reproduce t_k = t_{k-1} - c exactly
	// (equation 4.1).
	l, _ := lifefn.NewUniform(1000)
	pl := mustPlanner(t, l, 1)
	s, err := pl.GenerateFrom(45)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < s.Len(); k++ {
		want := s.Period(k-1) - 1
		if math.Abs(s.Period(k)-want) > 1e-6 {
			t.Fatalf("t_%d = %.9g, want %.9g", k, s.Period(k), want)
		}
	}
	// All periods productive (normal form).
	for k := 0; k < s.Len(); k++ {
		if s.Period(k) <= 1 {
			t.Fatalf("unproductive period %d = %g", k, s.Period(k))
		}
	}
	if s.Total() > 1000+1e-9 {
		t.Fatalf("schedule overruns lifespan: %g", s.Total())
	}
}

func TestGenerateFromSatisfiesSystem36(t *testing.T) {
	configs := []struct {
		name string
		l    lifefn.Life
		c    float64
		t0   float64
	}{
		{"uniform", mustUniform(1000), 1, 45},
		{"poly-d3", mustPoly(3, 500), 2, 120},
		{"geomdec", mustGeomDec(math.Pow(2, 1.0/32)), 1, 9},
		{"geominc", mustGeomInc(64), 1, 50},
		{"weibull", mustWeibull(0.8, 40), 1, 10},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			pl := mustPlanner(t, cfg.l, cfg.c)
			s, err := pl.GenerateFrom(cfg.t0)
			if err != nil {
				t.Fatal(err)
			}
			if s.Len() < 2 {
				t.Skipf("only %d periods generated", s.Len())
			}
			if r := Residual36(s, cfg.l, cfg.c); r > 1e-8 {
				t.Errorf("system (3.6) residual = %g", r)
			}
		})
	}
}

func TestGenerateFromGeomDecFixedPointIsEqualPeriods(t *testing.T) {
	// Starting at the fixed point of recurrence (4.6), all generated
	// periods must be (numerically) identical — [BCLR97]'s equal-period
	// structure.
	a := math.Pow(2, 1.0/32)
	l, _ := lifefn.NewGeomDecreasing(a)
	pl := mustPlanner(t, l, 1)
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Schedule
	if s.Len() < 10 {
		t.Fatalf("expected a long truncated-infinite schedule, got %d periods", s.Len())
	}
	t0 := s.Period(0)
	// The equal-period fixed point of recurrence (4.6) is unstable
	// (the map's derivative at the fixed point is a^{t*} > 1), so
	// root-finder noise amplifies geometrically along the schedule;
	// check the first 50 periods, where the drift is still tiny.
	limit := s.Len()
	if limit > 50 {
		limit = 50
	}
	for k := 1; k < limit; k++ {
		if math.Abs(s.Period(k)-t0) > 1e-5*t0 {
			t.Fatalf("period %d = %.9g differs from t0 = %.9g", k, s.Period(k), t0)
		}
	}
}

func TestPlanBestUniformNearSqrt2cL(t *testing.T) {
	// Equation (4.5): optimal t0 = sqrt(2cL) + low-order terms; the
	// guideline search must land within a few percent.
	for _, cfg := range []struct{ c, l float64 }{{1, 100}, {1, 1000}, {2, 5000}, {5, 10000}} {
		l, _ := lifefn.NewUniform(cfg.l)
		pl := mustPlanner(t, l, cfg.c)
		plan, err := pl.PlanBest()
		if err != nil {
			t.Fatal(err)
		}
		want := math.Sqrt(2 * cfg.c * cfg.l)
		if math.Abs(plan.T0-want)/want > 0.10 {
			t.Errorf("c=%g L=%g: t0 = %g, want ≈ %g", cfg.c, cfg.l, plan.T0, want)
		}
		// Paper bracket (4.4) must contain the found t0.
		b := UniformT0Bounds(cfg.c, cfg.l)
		if !b.Contains(plan.T0) {
			t.Errorf("c=%g L=%g: t0 = %g outside paper bracket [%g, %g]", cfg.c, cfg.l, plan.T0, b.Lo, b.Hi)
		}
	}
}

func TestPlanBestBracketContainsT0(t *testing.T) {
	for _, l := range []lifefn.Life{
		mustUniform(500), mustPoly(2, 500), mustPoly(4, 500),
		mustGeomDec(math.Pow(2, 1.0/16)), mustGeomInc(48),
	} {
		pl := mustPlanner(t, l, 1)
		plan, err := pl.PlanBest()
		if err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		if plan.T0 < plan.Bracket.Lo-1e-9 || plan.T0 > plan.Bracket.Hi+1e-9 {
			t.Errorf("%s: t0 = %g outside bracket [%g, %g]", l, plan.T0, plan.Bracket.Lo, plan.Bracket.Hi)
		}
		if !(plan.ExpectedWork > 0) {
			t.Errorf("%s: E = %g", l, plan.ExpectedWork)
		}
	}
}

func TestPlanBestGeomDecMatchesBCLROptimal(t *testing.T) {
	// The guideline schedule for a^{-t} must reach the exact optimal
	// expected work (t*-c)·a^{-t*}/(1-a^{-t*}) to high accuracy.
	a := math.Pow(2, 1.0/32)
	c := 1.0
	l, _ := lifefn.NewGeomDecreasing(a)
	pl := mustPlanner(t, l, c)
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	// Solve t + a^{-t}/ln a = c + 1/ln a for the optimal common period.
	lna := math.Log(a)
	tStar := plan.T0 // initialize near the guideline answer
	for i := 0; i < 200; i++ {
		tStar = c + 1/lna - math.Exp(-tStar*lna)/lna
	}
	//lint:allow nonnegwork closed-form optimum; tStar > c at the fixed point
	eStar := (tStar - c) * math.Exp(-tStar*lna) / (1 - math.Exp(-tStar*lna))
	if math.Abs(plan.ExpectedWork-eStar)/eStar > 1e-4 {
		t.Errorf("E = %.8g, optimal %.8g", plan.ExpectedWork, eStar)
	}
	if math.Abs(plan.T0-tStar)/tStar > 1e-3 {
		t.Errorf("t0 = %.8g, optimal %.8g", plan.T0, tStar)
	}
}

func TestPlanBestOnInadmissibleLifeIsBestEffort(t *testing.T) {
	// p(t) = (1+t)^{-2} admits no optimal schedule; PlanBest still
	// returns the best system-(3.6) schedule (sup not attained), and
	// AdmitsOptimal is the call that flags the non-existence.
	p, _ := lifefn.NewPowerLaw(2)
	pl := mustPlanner(t, p, 1)
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatalf("best-effort plan failed: %v", err)
	}
	if !(plan.ExpectedWork > 0) {
		t.Errorf("E = %g", plan.ExpectedWork)
	}
}

func TestExpectedWorkAccessors(t *testing.T) {
	l, _ := lifefn.NewUniform(10)
	pl := mustPlanner(t, l, 1)
	if pl.Overhead() != 1 {
		t.Error("Overhead accessor")
	}
	if pl.Life() == nil {
		t.Error("Life accessor")
	}
	s := sched.MustNew(4, 3)
	if got := pl.ExpectedWork(s); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("E = %g, want 2.4", got)
	}
}

// --- helpers ---

func mustUniform(l float64) lifefn.Life {
	u, err := lifefn.NewUniform(l)
	if err != nil {
		panic(err)
	}
	return u
}

func mustPoly(d int, l float64) lifefn.Life {
	p, err := lifefn.NewPoly(d, l)
	if err != nil {
		panic(err)
	}
	return p
}

func mustGeomDec(a float64) lifefn.Life {
	g, err := lifefn.NewGeomDecreasing(a)
	if err != nil {
		panic(err)
	}
	return g
}

func mustGeomInc(l float64) lifefn.Life {
	g, err := lifefn.NewGeomIncreasing(l)
	if err != nil {
		panic(err)
	}
	return g
}

func mustWeibull(k, scale float64) lifefn.Life {
	w, err := lifefn.NewWeibull(k, scale)
	if err != nil {
		panic(err)
	}
	return w
}
