package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lifefn"
)

// The full guideline pipeline on the paper's uniform-risk scenario:
// bracket t0 by Theorems 3.2/3.3, search it, generate the rest of the
// schedule through system (3.6).
func Example() {
	life, err := lifefn.NewUniform(1000)
	if err != nil {
		log.Fatal(err)
	}
	planner, err := core.NewPlanner(life, 1, core.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.PlanBest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bracket=[%.1f, %.1f] t0=%.2f m=%d E=%.1f\n",
		plan.Bracket.Lo, plan.Bracket.Hi, plan.T0,
		plan.Schedule.Len(), plan.ExpectedWork)
	// Output: bracket=[31.0, 63.5] t0=44.22 m=44 E=470.7
}

// Forward generation alone: all non-initial periods follow from t0.
func ExamplePlanner_GenerateFrom() {
	life, _ := lifefn.NewUniform(100)
	planner, _ := core.NewPlanner(life, 2, core.PlanOptions{})
	s, err := planner.GenerateFrom(20)
	if err != nil {
		log.Fatal(err)
	}
	// Uniform risk: periods decrease by exactly c (paper eq. 4.1).
	fmt.Printf("%.0f %.0f %.0f ... (%d periods)\n",
		s.Period(0), s.Period(1), s.Period(2), s.Len())
	// Output: 20 18 16 ... (7 periods)
}

// The Section 4.2 closed forms, no root-finding required.
func ExampleGeomDecT0Bounds() {
	bounds := core.GeomDecT0Bounds(2, 1) // a=2: half-life of 1 time unit
	fmt.Printf("lo=%.3f hi=%.3f\n", bounds.Lo, bounds.Hi)
	// Output: lo=1.801 hi=2.443
}

// Progressive (conditional-probability) planning from Section 6.
func ExampleProgressive() {
	life, _ := lifefn.NewUniform(100)
	prog, _ := core.NewProgressive(life, 1, core.PlanOptions{})
	for i := 0; i < 3; i++ {
		t, ok, err := prog.NextPeriod()
		if err != nil || !ok {
			break
		}
		fmt.Printf("period %d: %.2f\n", i, t)
	}
	// Output:
	// period 0: 13.64
	// period 1: 12.64
	// period 2: 11.64
}
