package core

import (
	"math"
	"testing"
)

func TestBackwardSatisfiesTerminalAndInteriorConditions(t *testing.T) {
	l := mustUniform(500)
	pl := mustPlanner(t, l, 1)
	s, err := pl.GenerateBackward(480)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() < 3 {
		t.Fatalf("only %d periods", s.Len())
	}
	// Interior boundaries from the second transition on satisfy system
	// (3.6): the clipped first period is the free parameter and its
	// transition is stationary only at the searched optimum.
	bounds0 := s.Boundaries()
	for k := 2; k < s.Len(); k++ {
		want := l.P(bounds0[k-1]) + (s.Period(k-1)-1)*l.Deriv(bounds0[k-1])
		if r := math.Abs(l.P(bounds0[k]) - want); r > 1e-8 {
			t.Errorf("interior residual at k=%d: %g", k, r)
		}
	}
	// … and the final boundary satisfies the terminal stationarity.
	bounds := s.Boundaries()
	last := bounds[len(bounds)-1]
	tLast := s.Period(s.Len() - 1)
	term := l.P(last) + (tLast-1)*l.Deriv(last)
	if math.Abs(term) > 1e-9 {
		t.Errorf("terminal residual = %g", term)
	}
}

func TestBackwardAgreesWithForwardPlan(t *testing.T) {
	// The two constructions parameterize the same stationary family:
	// their searched optima must coincide in expected work (and, for
	// these scenarios, in schedule shape).
	scenarios := []struct {
		name string
		pl   *Planner
	}{
		{"uniform", mustPlanner(t, mustUniform(1000), 1)},
		{"poly3", mustPlanner(t, mustPoly(3, 500), 2)},
		{"geominc", mustPlanner(t, mustGeomInc(64), 1)},
	}
	for _, sc := range scenarios {
		fwd, err := sc.pl.PlanBest()
		if err != nil {
			t.Fatalf("%s forward: %v", sc.name, err)
		}
		bwd, err := sc.pl.PlanBestBackward()
		if err != nil {
			t.Fatalf("%s backward: %v", sc.name, err)
		}
		if rel := math.Abs(fwd.ExpectedWork-bwd.ExpectedWork) / fwd.ExpectedWork; rel > 2e-3 {
			t.Errorf("%s: forward E %.8g vs backward E %.8g (rel %g)",
				sc.name, fwd.ExpectedWork, bwd.ExpectedWork, rel)
		}
		// E(t0) is extremely flat near the optimum, so the two searches
		// may settle on different near-optimal stationary members with
		// different period counts; what must hold is that the backward
		// schedule is itself structurally sound.
		if err := CheckGrowthRate(bwd.Schedule, sc.pl.Life().Shape(), sc.pl.Overhead(), 1e-4); err != nil {
			t.Errorf("%s: backward schedule violates growth law: %v", sc.name, err)
		}
	}
}

func TestBackwardRejectsBadInput(t *testing.T) {
	pl := mustPlanner(t, mustUniform(100), 1)
	if _, err := pl.GenerateBackward(0.5); err == nil {
		t.Error("tEnd <= c accepted")
	}
	if _, err := pl.GenerateBackward(100); err == nil {
		t.Error("tEnd at horizon accepted")
	}
	gd := mustPlanner(t, mustGeomDec(2), 1)
	if _, err := gd.GenerateBackward(5); err == nil {
		t.Error("infinite horizon accepted")
	}
	if _, err := gd.PlanBestBackward(); err == nil {
		t.Error("infinite-horizon backward planning accepted")
	}
}

func TestBackwardUniformMatchesArithmetic(t *testing.T) {
	// For uniform risk the backward chain must reproduce the
	// t_{k-1} = t_k + c arithmetic structure.
	pl := mustPlanner(t, mustUniform(400), 1)
	s, err := pl.GenerateBackward(390)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < s.Len(); k++ {
		if math.Abs(s.Period(k)-(s.Period(k-1)-1)) > 1e-6 && k > 1 {
			t.Fatalf("period %d = %g, want %g", k, s.Period(k), s.Period(k-1)-1)
		}
	}
}
