package core

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/sched"
)

// This file provides the backward counterpart of GenerateFrom. Forward
// generation fixes t0 and induces every later period through system
// (3.6); it leaves the *terminal* stationarity — the (k = m-1) instance
// of system (3.1), p(T_{m-1}) = -(t_{m-1}-c)·p'(T_{m-1}) — to the t0
// search. Backward generation does the opposite: it fixes the episode's
// final boundary T_end, reads the last period off the terminal
// condition, and walks system (3.6) backwards
//
//	t_{k-1} = c + (p(T_k) - p(T_{k-1})) / p'(T_{k-1}),
//
// explicitly (no root finding), until the chain crosses time zero; the
// leftover segment becomes the free initial period. The two
// constructions parameterize the same family of stationary schedules
// from opposite ends, so their optima must agree — a strong
// cross-check the tests enforce.

// GenerateBackward builds a schedule whose final boundary is tEnd,
// satisfying the terminal stationarity exactly and system (3.6) at
// every interior boundary. It requires a finite-horizon life function
// (infinite optimal schedules have no final period to anchor on) and
// tEnd in (c, horizon).
func (pl *Planner) GenerateBackward(tEnd float64) (sched.Schedule, error) {
	horizon := pl.life.Horizon()
	if math.IsInf(horizon, 1) {
		return sched.Schedule{}, fmt.Errorf("core: backward generation needs a finite horizon (got %s)", pl.life)
	}
	if !(tEnd > pl.c) || !(tEnd < horizon) {
		return sched.Schedule{}, fmt.Errorf("%w: tEnd=%g outside (c, horizon)=(%g, %g)", ErrBadT0, tEnd, pl.c, horizon)
	}
	// Terminal condition: t_last = c - p(T)/p'(T).
	dp := pl.life.Deriv(tEnd)
	if dp >= 0 {
		return sched.Schedule{}, fmt.Errorf("core: derivative vanishes at tEnd=%g", tEnd)
	}
	tLast := pl.c - pl.life.P(tEnd)/dp
	// The periods accumulate back-to-front.
	var reversed []float64
	boundary := tEnd // T_k
	period := tLast  // t_k
	for len(reversed) < pl.opt.MaxPeriods {
		prevBoundary := boundary - period // T_{k-1}
		if prevBoundary < -1e-12*boundary {
			// The period overshoots time zero: clip it to start at 0 —
			// t0 is the free parameter, unconstrained by the system.
			reversed = append(reversed, boundary)
			boundary = 0
			break
		}
		if prevBoundary <= 1e-12*boundary {
			// The chain landed (numerically) exactly at zero: the
			// current period is the first.
			reversed = append(reversed, period)
			boundary = 0
			break
		}
		reversed = append(reversed, period)
		dpPrev := pl.life.Deriv(prevBoundary)
		if dpPrev >= 0 {
			// Flat region: no further period is prescribed; everything
			// before prevBoundary merges into the initial period.
			reversed = append(reversed, prevBoundary)
			boundary = 0
			break
		}
		prevPeriod := pl.c + (pl.life.P(boundary)-pl.life.P(prevBoundary))/dpPrev
		if !(prevPeriod > pl.c) || math.IsNaN(prevPeriod) {
			// The system prescribes an unproductive predecessor:
			// everything before prevBoundary is the initial period.
			reversed = append(reversed, prevBoundary)
			boundary = 0
			break
		}
		boundary = prevBoundary
		period = prevPeriod
	}
	if boundary != 0 {
		return sched.Schedule{}, fmt.Errorf("core: backward chain did not reach time zero from tEnd=%g within %d periods", tEnd, pl.opt.MaxPeriods)
	}
	// Reverse into forward order.
	periods := make([]float64, 0, len(reversed))
	for i := len(reversed) - 1; i >= 0; i-- {
		periods = append(periods, reversed[i])
	}
	s, err := sched.New(periods...)
	if err != nil {
		return sched.Schedule{}, err
	}
	return sched.Normalize(s, pl.c), nil
}

// PlanBestBackward searches the final boundary T_end over (c, horizon)
// for the backward-generated schedule maximizing expected work. For
// finite-horizon life functions it must agree with PlanBest (the two
// parameterize the same stationary family); the package tests pin that
// agreement down.
func (pl *Planner) PlanBestBackward() (Plan, error) {
	horizon := pl.life.Horizon()
	if math.IsInf(horizon, 1) {
		return Plan{}, fmt.Errorf("core: backward planning needs a finite horizon (got %s)", pl.life)
	}
	objective := func(tEnd float64) float64 {
		s, err := pl.GenerateBackward(tEnd)
		if err != nil {
			return math.Inf(-1)
		}
		return pl.ExpectedWork(s)
	}
	lo := pl.c * (1 + 1e-9)
	hi := horizon * (1 - 1e-9)
	tEnd, _, err := numeric.MaximizeScan(objective, lo, hi, 128, numeric.MaxOptions{Tol: 1e-10})
	if err != nil {
		return Plan{}, fmt.Errorf("core: backward tEnd search: %w", err)
	}
	s, err := pl.GenerateBackward(tEnd)
	if err != nil {
		return Plan{}, err
	}
	e := pl.ExpectedWork(s)
	if !(e > 0) {
		return Plan{}, fmt.Errorf("core: backward search found no productive schedule")
	}
	t0 := 0.0
	if s.Len() > 0 {
		t0 = s.Period(0)
	}
	return Plan{Schedule: s, T0: t0, ExpectedWork: e}, nil
}
