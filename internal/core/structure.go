package core

import (
	"fmt"
	"math"

	"repro/internal/lifefn"
	"repro/internal/sched"
)

// CheckGrowthRate verifies the period growth-rate law of Theorem 5.2 on
// a schedule: for concave life functions every internal period must
// satisfy t_{i+1} <= t_i - c; for convex ones t_{i+1} >= t_i - c. Linear
// life functions must satisfy both with equality. It returns the first
// violation (with slack beyond tol) or nil. Shapes other than
// concave/convex/linear are unconstrained and always pass.
func CheckGrowthRate(s sched.Schedule, shape lifefn.Shape, c, tol float64) error {
	for i := 0; i+1 < s.Len(); i++ {
		// The final period is exempt ("each internal period"), and for
		// the concave direction the bound constrains periods i with a
		// successor, which i+1 < Len captures.
		ti, tn := s.Period(i), s.Period(i+1)
		//lint:allow nonnegwork Theorem 3.7 growth bound; compared, never used as work
		bound := ti - c
		if shape.IsConcave() && tn > bound+tol {
			return fmt.Errorf("core: concave growth law violated at period %d: t_{i+1}=%g > t_i-c=%g", i, tn, bound)
		}
		if shape.IsConvex() && tn < bound-tol {
			return fmt.Errorf("core: convex growth law violated at period %d: t_{i+1}=%g < t_i-c=%g", i, tn, bound)
		}
	}
	return nil
}

// CheckStrictlyDecreasing verifies Corollary 5.1: optimal schedules for
// concave life functions have strictly decreasing period lengths.
func CheckStrictlyDecreasing(s sched.Schedule, tol float64) error {
	for i := 0; i+1 < s.Len(); i++ {
		if s.Period(i+1) >= s.Period(i)+tol {
			return fmt.Errorf("core: periods not strictly decreasing at %d: %g -> %g", i, s.Period(i), s.Period(i+1))
		}
	}
	return nil
}

// MaxPeriodsConcave returns the period-count bound of Corollary 5.3 for
// a concave life function with potential lifespan L and overhead c:
// m < ceil(sqrt(2L/c + 1/4) + 1/2). The returned value is that ceiling
// (so a valid schedule has strictly fewer periods only when the bound is
// not attained; the paper notes the uniform-risk optimum attains the
// floor variant).
func MaxPeriodsConcave(l, c float64) int {
	if !(l > 0) || !(c > 0) {
		return 0
	}
	return int(math.Ceil(math.Sqrt(2*l/c+0.25) + 0.5))
}

// MaxPeriodsFromT0 returns the Corollary 5.2 bound: an optimal schedule
// for a concave life function has at most t0/c periods.
func MaxPeriodsFromT0(t0, c float64) int {
	if !(t0 > 0) || !(c > 0) {
		return 0
	}
	return int(math.Floor(t0 / c))
}

// T0LowerFromPeriods returns the Corollary 5.4 lower bound on the
// optimal t0 of an m-period schedule for a concave life function with
// lifespan L: t0 >= L/m + (m-1)c/2.
func T0LowerFromPeriods(l, c float64, m int) float64 {
	if m <= 0 {
		return math.NaN()
	}
	return l/float64(m) + float64(m-1)*c/2
}

// PerturbationReport describes how a schedule fares against one of its
// δ-perturbations S^{[k,±δ]} (Section 5.1).
type PerturbationReport struct {
	Index int     // period k that was perturbed
	Delta float64 // signed δ applied to period k (and -δ to period k+1)
	Gain  float64 // E(perturbed) - E(original); negative means original wins
}

// CheckLocalOptimality exercises Theorem 5.1: for a schedule satisfying
// system (3.6) under a concave life function, every δ-perturbation must
// be strictly less productive. It tries both signs of each delta at
// every adjacent period pair and returns all perturbations that gained
// more than tol (an empty slice certifies local optimality at the
// sampled deltas).
func CheckLocalOptimality(s sched.Schedule, l lifefn.Life, c float64, deltas []float64, tol float64) []PerturbationReport {
	base := sched.ExpectedWork(s, l, c)
	var violations []PerturbationReport
	for k := 0; k+1 < s.Len(); k++ {
		for _, d := range deltas {
			for _, signed := range [2]float64{d, -d} {
				pert, err := s.Perturb(k, signed)
				if err != nil {
					continue // perturbation would empty a period
				}
				if gain := sched.ExpectedWork(pert, l, c) - base; gain > tol {
					violations = append(violations, PerturbationReport{Index: k, Delta: signed, Gain: gain})
				}
			}
		}
	}
	return violations
}

// Residual36 measures how well a schedule satisfies system (3.6): it
// returns the maximum absolute residual
// |p(T_k) - p(T_{k-1}) - (t_{k-1}-c)·p'(T_{k-1})| over all interior
// boundaries. Guideline-generated schedules should have residuals at
// the root-finder tolerance.
func Residual36(s sched.Schedule, l lifefn.Life, c float64) float64 {
	worst := 0.0
	bounds := s.Boundaries()
	for k := 1; k < s.Len(); k++ {
		tPrev := s.Period(k - 1)
		//lint:allow nonnegwork residual of recurrence (3.6), raw by definition
		want := l.P(bounds[k-1]) + (tPrev-c)*l.Deriv(bounds[k-1])
		if r := math.Abs(l.P(bounds[k]) - want); r > worst {
			worst = r
		}
	}
	//lint:allow probrange a residual of probabilities carries the probability dimension but is a diagnostic magnitude, not itself a probability
	return worst
}
