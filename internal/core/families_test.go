package core

import (
	"math"
	"testing"

	"repro/internal/lifefn"
)

func TestUniformNextPeriod(t *testing.T) {
	if got := UniformNextPeriod(10, 1); got != 9 {
		t.Errorf("got %g, want 9", got)
	}
}

func TestPolyNextPeriodReducesToUniformAtD1(t *testing.T) {
	for _, tc := range []struct{ tPrev, boundary, c float64 }{
		{10, 10, 1}, {7.5, 30, 1}, {20, 100, 2.5},
	} {
		got := PolyNextPeriod(1, tc.tPrev, tc.boundary, tc.c)
		//lint:allow nonnegwork expected recurrence value, raw by definition
		want := tc.tPrev - tc.c
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("PolyNext(1, %g, %g, %g) = %g, want %g", tc.tPrev, tc.boundary, tc.c, got, want)
		}
	}
}

func TestGeomDecNextPeriodFixedPoint(t *testing.T) {
	// The fixed point of (4.6) is [BCLR97]'s optimal period equation
	// a^{-t} + t·ln a = 1 + c·ln a.
	a, c := math.Pow(2, 1.0/16), 1.0
	lna := math.Log(a)
	// Solve the fixed point by iteration.
	tStar := 5.0
	for i := 0; i < 300; i++ {
		tStar = c + 1/lna - math.Exp(-tStar*lna)/lna
	}
	next, ok := GeomDecNextPeriod(a, tStar, c)
	if !ok {
		t.Fatal("recurrence unsolvable at fixed point")
	}
	if math.Abs(next-tStar) > 1e-9 {
		t.Errorf("fixed point drifts: %g -> %g", tStar, next)
	}
}

func TestGeomDecNextPeriodUnsolvableBeyondLimit(t *testing.T) {
	// (4.6) is solvable only when t_{k-1} < c + 1/ln a.
	a, c := 2.0, 1.0
	limit := c + 1/math.Log(a)
	if _, ok := GeomDecNextPeriod(a, limit+0.5, c); ok {
		t.Error("recurrence solvable beyond its validity limit")
	}
	if _, ok := GeomDecNextPeriod(a, limit-0.1, c); !ok {
		t.Error("recurrence unsolvable inside its validity limit")
	}
}

func TestGeomIncNextPeriodKnownValues(t *testing.T) {
	// t=c gives log2(0+1) = 0; t = c+2 gives log2(2·ln2+1).
	if got := GeomIncNextPeriod(1, 1); got != 0 {
		t.Errorf("GeomIncNext(c, c) = %g, want 0", got)
	}
	want := math.Log2(2*math.Ln2 + 1)
	if got := GeomIncNextPeriod(3, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("got %g, want %g", got, want)
	}
}

func TestClosedFormRecurrencesMatchGenericInversion(t *testing.T) {
	// The Section 4 closed forms and the generic numeric inversion of
	// system (3.6) must generate the same schedules.
	cases := []struct {
		name string
		l    lifefn.Life
		c    float64
		t0   float64
	}{
		{"uniform", mustUniform(1000), 1, 44},
		{"poly2", mustPoly(2, 800), 1, 90},
		{"poly4", mustPoly(4, 800), 2, 200},
		{"geomdec", mustGeomDec(math.Pow(2, 1.0/24)), 1, 8},
		{"geominc", mustGeomInc(64), 1, 54},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			rec, ok := FamilyRecurrence(cse.l, cse.c)
			if !ok {
				t.Fatal("no family recurrence")
			}
			closed, err := GenerateByRecurrence(rec, cse.l, cse.c, cse.t0, PlanOptions{MaxPeriods: 400})
			if err != nil {
				t.Fatal(err)
			}
			pl := mustPlanner(t, cse.l, cse.c)
			pl.opt.MaxPeriods = 400
			generic, err := pl.GenerateFrom(cse.t0)
			if err != nil {
				t.Fatal(err)
			}
			n := closed.Len()
			if generic.Len() < n {
				n = generic.Len()
			}
			if n == 0 {
				t.Fatal("no periods generated")
			}
			// Termination details may differ by one trailing period;
			// all shared periods must agree.
			if diff := closed.Len() - generic.Len(); diff < -1 || diff > 1 {
				t.Errorf("period counts differ: closed %d vs generic %d", closed.Len(), generic.Len())
			}
			for i := 0; i < n; i++ {
				a, b := closed.Period(i), generic.Period(i)
				if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
					t.Fatalf("period %d: closed %.10g vs generic %.10g", i, a, b)
				}
			}
		})
	}
}

func TestFamilyRecurrenceUnknownType(t *testing.T) {
	w := mustWeibull(2, 10)
	if _, ok := FamilyRecurrence(w, 1); ok {
		t.Error("recurrence offered for Weibull")
	}
}

func TestGenerateByRecurrenceRejectsShortT0(t *testing.T) {
	rec, _ := FamilyRecurrence(mustUniform(100), 1)
	if _, err := GenerateByRecurrence(rec, mustUniform(100), 1, 0.5, PlanOptions{}); err == nil {
		t.Error("t0 < c accepted")
	}
}

func TestUniformT0BoundsFormula(t *testing.T) {
	b := UniformT0Bounds(1, 100)
	if math.Abs(b.Lo-10) > 1e-12 || math.Abs(b.Hi-21) > 1e-12 {
		t.Errorf("bounds = [%g, %g], want [10, 21]", b.Lo, b.Hi)
	}
	if !b.Contains(math.Sqrt(200)) {
		t.Error("bracket excludes sqrt(2cL)")
	}
	//lint:allow floatcmp Width is defined as exactly Hi-Lo
	if b.Width() != b.Hi-b.Lo {
		t.Error("Width wrong")
	}
}

func TestPolyT0BoundsMatchUniformAtD1(t *testing.T) {
	u := UniformT0Bounds(2, 500)
	p := PolyT0Bounds(1, 2, 500)
	if math.Abs(u.Lo-p.Lo) > 1e-9 || math.Abs(u.Hi-p.Hi) > 1e-9 {
		t.Errorf("d=1 poly bounds [%g, %g] differ from uniform [%g, %g]", p.Lo, p.Hi, u.Lo, u.Hi)
	}
}

func TestGeomDecT0BoundsOrdering(t *testing.T) {
	for _, a := range []float64{1.01, 1.1, 2, 10} {
		b := GeomDecT0Bounds(a, 1)
		if !(b.Lo > 1 && b.Lo < b.Hi) {
			t.Errorf("a=%g: bounds [%g, %g] not ordered above c", a, b.Lo, b.Hi)
		}
	}
}

func TestGeomIncT0WindowBracketsPlannerT0(t *testing.T) {
	for _, L := range []float64{32, 64, 128} {
		w, err := GeomIncT0Window(L)
		if err != nil {
			t.Fatal(err)
		}
		if !(w.Lo < w.Hi && w.Hi <= 2*L) {
			t.Errorf("L=%g: window [%g, %g] malformed", L, w.Lo, w.Hi)
		}
		pl := mustPlanner(t, mustGeomInc(L), 1)
		plan, err := pl.PlanBest()
		if err != nil {
			t.Fatal(err)
		}
		// The window derives from bounds with low-order slack; allow 10%.
		if plan.T0 < w.Lo*0.9 || plan.T0 > w.Hi*1.1 {
			t.Errorf("L=%g: planner t0 = %g outside window [%g, %g]", L, plan.T0, w.Lo, w.Hi)
		}
	}
}
