package core

import (
	"math"
	"testing"

	"repro/internal/lifefn"
)

func TestLiteralCor32WitnessExistsNearCForPowerLaw(t *testing.T) {
	// The literal Corollary 3.2 inequality p(t) > -(t-c)p'(t) reduces,
	// for p = (1+t)^{-d}, to 1+t > d(t-c), which holds on a nonempty
	// window just above c for every d. The literal scan must find it.
	for _, d := range []float64{0.5, 1, 1.5, 2, 3} {
		p, err := lifefn.NewPowerLaw(d)
		if err != nil {
			t.Fatal(err)
		}
		w, ok := ExistsProductive(p, 1)
		if !ok {
			t.Errorf("d=%g: literal scan found no witness", d)
			continue
		}
		// Verify the witness actually satisfies the inequality.
		if m := p.P(w) + (w-1)*p.Deriv(w); m <= 0 {
			t.Errorf("d=%g: witness %g has margin %g", d, w, m)
		}
	}
}

func TestAdmitsOptimalPowerLawPaperClaim(t *testing.T) {
	// The paper: p(t) = 1/(1+t)^d with d > 1 does not admit an optimal
	// schedule. Our decision procedure must certify this via a material
	// append gain on the best system-(3.6) schedule.
	for _, d := range []float64{1.5, 2, 3} {
		p, err := lifefn.NewPowerLaw(d)
		if err != nil {
			t.Fatal(err)
		}
		ad, err := AdmitsOptimal(p, 1, PlanOptions{MaxPeriods: 2000})
		if err != nil {
			t.Fatalf("d=%g: %v", d, err)
		}
		if ad.Admits {
			t.Errorf("d=%g: decided admissible", d)
		}
	}
}

func TestTailMarginSeparatesFamilies(t *testing.T) {
	// Margin 1/h(t) - (t-c): for a^{-t} it fails in the tail (1/h is
	// constant) but the hazard is constant, so the exemption applies;
	// for (1+t)^{-d} with d > 1 both the tail failure and the fading
	// hazard hold.
	gd := mustGeomDec(math.Pow(2, 1.0/16))
	if !TailMarginFails(gd, 1) {
		t.Error("geomdec: tail margin should fail (1/h constant)")
	}
	if HazardDecreasing(gd, 1) {
		t.Error("geomdec: hazard should be constant, not decreasing")
	}
	pw, _ := lifefn.NewPowerLaw(2)
	if !TailMarginFails(pw, 1) {
		t.Error("powerlaw d=2: tail margin should fail")
	}
	if !HazardDecreasing(pw, 1) {
		t.Error("powerlaw: hazard should decrease")
	}
	pwLight, _ := lifefn.NewPowerLaw(0.5)
	if TailMarginFails(pwLight, 1) {
		t.Error("powerlaw d=0.5: tail margin should hold")
	}
	u := mustUniform(100)
	if TailMarginFails(u, 1) {
		t.Error("bounded horizon: tail test must not apply")
	}
}

func TestAdmitsOptimalStandardScenarios(t *testing.T) {
	for _, l := range []lifefn.Life{
		mustUniform(500), mustPoly(3, 500),
		mustGeomDec(math.Pow(2, 1.0/16)), mustGeomInc(48),
	} {
		ad, err := AdmitsOptimal(l, 1, PlanOptions{})
		if err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		if !ad.Admits {
			t.Errorf("%s: decided inadmissible (%s)", l, ad.Reason)
		}
	}
}

func TestAdmitsOptimalOverheadDominates(t *testing.T) {
	ad, err := AdmitsOptimal(mustUniform(5), 10, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ad.Admits {
		t.Error("admissible with c > L")
	}
}

func TestExistsProductiveStandardScenarios(t *testing.T) {
	for _, l := range []lifefn.Life{
		mustUniform(100), mustPoly(3, 100),
		mustGeomDec(math.Pow(2, 1.0/16)), mustGeomInc(32),
	} {
		if w, ok := ExistsProductive(l, 1); !ok {
			t.Errorf("%s: no witness found", l)
		} else if w <= 1 {
			t.Errorf("%s: witness %g <= c", l, w)
		}
	}
}

func TestExistsProductiveOverheadDominates(t *testing.T) {
	if _, ok := ExistsProductive(mustUniform(5), 10); ok {
		t.Error("witness found with c > L")
	}
}

func TestExistenceMarginSign(t *testing.T) {
	if m := ExistenceMargin(mustUniform(100), 1); m <= 0 {
		t.Errorf("uniform margin = %g, want positive", m)
	}
	if m := ExistenceMargin(mustUniform(5), 10); !math.IsInf(m, -1) {
		t.Errorf("c > L margin = %g, want -Inf", m)
	}
}
