package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lifefn"
	"repro/internal/sched"
)

func TestGrowthRateTheorem52OnGeneratedSchedules(t *testing.T) {
	// Theorem 5.2: t_{i+1} <= t_i - c for concave p; >= for convex p.
	cases := []struct {
		name string
		l    lifefn.Life
	}{
		{"uniform", mustUniform(1000)},
		{"poly2", mustPoly(2, 1000)},
		{"poly5", mustPoly(5, 1000)},
		{"geominc", mustGeomInc(64)},
		{"geomdec", mustGeomDec(math.Pow(2, 1.0/32))},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			pl := mustPlanner(t, cse.l, 1)
			plan, err := pl.PlanBest()
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckGrowthRate(plan.Schedule, cse.l.Shape(), 1, 1e-6); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestUniformGrowthIsExactlyC(t *testing.T) {
	// For the (both concave and convex) uniform-risk function the
	// growth law binds with equality: t_{i+1} = t_i - c.
	pl := mustPlanner(t, mustUniform(500), 2)
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGrowthRate(plan.Schedule, lifefn.Linear, 2, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestCorollary51StrictDecreaseForConcave(t *testing.T) {
	for _, l := range []lifefn.Life{mustUniform(800), mustPoly(3, 800), mustGeomInc(48)} {
		pl := mustPlanner(t, l, 1)
		plan, err := pl.PlanBest()
		if err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		if err := CheckStrictlyDecreasing(plan.Schedule, 1e-9); err != nil {
			t.Errorf("%s: %v", l, err)
		}
	}
}

func TestCorollary52PeriodCountFromT0(t *testing.T) {
	pl := mustPlanner(t, mustUniform(1000), 1)
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	if m := plan.Schedule.Len(); m > MaxPeriodsFromT0(plan.T0, 1) {
		t.Errorf("m = %d exceeds t0/c = %d", m, MaxPeriodsFromT0(plan.T0, 1))
	}
}

func TestCorollary53PeriodCountBound(t *testing.T) {
	// m < ceil(sqrt(2L/c + 1/4) + 1/2) for concave life functions, and
	// the uniform-risk optimum attains the floor variant (tightness).
	for _, cfg := range []struct{ c, L float64 }{{1, 100}, {1, 1000}, {2, 1000}, {5, 2000}} {
		pl := mustPlanner(t, mustUniform(cfg.L), cfg.c)
		plan, err := pl.PlanBest()
		if err != nil {
			t.Fatal(err)
		}
		bound := MaxPeriodsConcave(cfg.L, cfg.c)
		m := plan.Schedule.Len()
		if m >= bound+1 {
			t.Errorf("c=%g L=%g: m = %d not < bound %d", cfg.c, cfg.L, m, bound)
		}
		// Tightness: within 2 of the floor variant.
		floorBound := int(math.Floor(math.Sqrt(2*cfg.L/cfg.c+0.25) + 0.5))
		if m < floorBound-2 {
			t.Errorf("c=%g L=%g: m = %d far below tight bound %d", cfg.c, cfg.L, m, floorBound)
		}
	}
}

func TestCorollary54T0Lower(t *testing.T) {
	pl := mustPlanner(t, mustUniform(1000), 1)
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	lb := T0LowerFromPeriods(1000, 1, plan.Schedule.Len())
	// The searched t0 is accurate to the golden-section tolerance, not
	// exact; Corollary 5.4 must hold up to that search error.
	if plan.T0 < lb-1e-3*lb {
		t.Errorf("t0 = %g below Cor 5.4 bound %g (m=%d)", plan.T0, lb, plan.Schedule.Len())
	}
	if !math.IsNaN(T0LowerFromPeriods(10, 1, 0)) {
		t.Error("m=0 should give NaN")
	}
}

func TestTheorem51LocalOptimality(t *testing.T) {
	// Schedules satisfying (3.6) under concave p beat all their
	// δ-perturbations.
	deltas := []float64{1e-3, 1e-2, 0.1, 0.5, 1}
	for _, l := range []lifefn.Life{mustUniform(500), mustPoly(2, 500), mustGeomInc(48)} {
		pl := mustPlanner(t, l, 1)
		plan, err := pl.PlanBest()
		if err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		if v := CheckLocalOptimality(plan.Schedule, l, 1, deltas, 1e-9); len(v) != 0 {
			t.Errorf("%s: %d perturbations beat the guideline schedule, first: %+v", l, len(v), v[0])
		}
	}
}

func TestLocalOptimalityDetectsBadSchedule(t *testing.T) {
	// Sanity: a deliberately unbalanced schedule must be improvable.
	l := mustUniform(100)
	s := sched.MustNew(5, 40) // far from satisfying (3.6)
	v := CheckLocalOptimality(s, l, 1, []float64{1, 5, 10}, 1e-9)
	if len(v) == 0 {
		t.Error("no improving perturbation found for an unbalanced schedule")
	}
}

func TestPropertyPerturbationsNeverBeatGuidelineUniform(t *testing.T) {
	// Property over random δ and k for the uniform scenario.
	pl := mustPlanner(t, mustUniform(400), 1)
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	base := pl.ExpectedWork(plan.Schedule)
	check := func(ki uint8, di uint16) bool {
		k := int(ki) % (plan.Schedule.Len() - 1)
		delta := (float64(di)/65535)*2 - 1 // (-1, 1)
		if delta == 0 {
			return true
		}
		pert, err := plan.Schedule.Perturb(k, delta)
		if err != nil {
			return true // perturbation infeasible
		}
		return pl.ExpectedWork(pert) <= base+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestResidual36FlagsNonconformingSchedule(t *testing.T) {
	l := mustUniform(100)
	good := sched.MustNew(14, 13, 12) // satisfies t_{k+1} = t_k - 1 (c=1)
	if r := Residual36(good, l, 1); r > 1e-9 {
		t.Errorf("residual of conforming schedule = %g", r)
	}
	bad := sched.MustNew(14, 14, 14)
	if r := Residual36(bad, l, 1); r < 1e-3 {
		t.Errorf("residual of equal-period schedule = %g, want large", r)
	}
}

func TestGuidelinePlansAreStationary(t *testing.T) {
	// The strongest optimality certificate available: the analytic
	// gradient of E (whose vanishing is exactly system (3.1)) must be
	// near zero in EVERY coordinate of a guideline plan — forward
	// generation enforces the consecutive differences (3.6), and the t0
	// search closes the loop on the terminal condition.
	for _, l := range []lifefn.Life{
		mustUniform(800), mustPoly(3, 500),
		mustGeomDec(math.Pow(2, 1.0/24)), mustGeomInc(48),
	} {
		pl := mustPlanner(t, l, 1)
		plan, err := pl.PlanBest()
		if err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		grad := sched.Gradient(plan.Schedule, l, 1)
		scale := plan.ExpectedWork / plan.Schedule.Total() // work density
		for k, g := range grad {
			if math.Abs(g) > 0.02*scale+1e-4 {
				t.Errorf("%s: ∂E/∂t_%d = %g (scale %g)", l, k, g, scale)
			}
		}
	}
}

func TestMaxPeriodsConcaveEdgeCases(t *testing.T) {
	if MaxPeriodsConcave(0, 1) != 0 || MaxPeriodsConcave(10, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	if MaxPeriodsFromT0(0, 1) != 0 {
		t.Error("t0=0 should give 0")
	}
}
