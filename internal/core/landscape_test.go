package core

import (
	"testing"
)

func TestT0LandscapeSingleMaximumStandardScenarios(t *testing.T) {
	for _, l := range []struct {
		name string
		pl   *Planner
	}{
		{"uniform", mustPlanner(t, mustUniform(800), 1)},
		{"geominc", mustPlanner(t, mustGeomInc(48), 1)},
	} {
		maxima, err := l.pl.T0Landscape(256, 1e-6)
		if err != nil {
			t.Fatalf("%s: %v", l.name, err)
		}
		if len(maxima) != 1 {
			t.Errorf("%s: %d global-tied maxima: %+v", l.name, len(maxima), maxima)
		}
		if len(maxima) > 0 && !(maxima[0].E > 0) {
			t.Errorf("%s: degenerate maximum %+v", l.name, maxima[0])
		}
	}
}

func TestT0LandscapeMatchesPlanBest(t *testing.T) {
	pl := mustPlanner(t, mustUniform(500), 2)
	maxima, err := pl.T0Landscape(512, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	if len(maxima) == 0 {
		t.Fatal("no maxima")
	}
	best := maxima[0]
	for _, m := range maxima {
		if m.E > best.E {
			best = m
		}
	}
	// Grid maximum can only fall slightly short of the refined search.
	if best.E > plan.ExpectedWork+1e-9 || best.E < 0.999*plan.ExpectedWork {
		t.Errorf("landscape best E %g vs plan %g", best.E, plan.ExpectedWork)
	}
}

func TestStopReasonStrings(t *testing.T) {
	//lint:allow determinism iteration order does not affect assertions
	for r, want := range map[StopReason]string{
		StopTail:         "tail-converged",
		StopExhausted:    "target-exhausted",
		StopUnproductive: "next-period-unproductive",
		StopFlat:         "derivative-flat",
		StopMaxPeriods:   "max-periods",
		StopReason(99):   "unknown",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if !StopExhausted.Structural() || StopTail.Structural() || StopMaxPeriods.Structural() {
		t.Error("Structural classification wrong")
	}
}
