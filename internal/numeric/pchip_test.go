package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPCHIPReproducesKnots(t *testing.T) {
	xs := []float64{0, 1, 2.5, 4, 7}
	ys := []float64{1, 0.8, 0.5, 0.2, 0}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := p.At(xs[i]); !almostEqual(got, ys[i], 1e-12) {
			t.Errorf("At(%g) = %g, want %g", xs[i], got, ys[i])
		}
	}
}

func TestPCHIPMonotonePreserving(t *testing.T) {
	// Kaplan–Meier-like step-ish survival data; the interpolant must
	// never increase anywhere between knots.
	xs := []float64{0, 1, 2, 3, 5, 8, 13, 20}
	ys := []float64{1, 0.93, 0.81, 0.80, 0.52, 0.20, 0.05, 0}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	prev := p.At(0)
	for i := 1; i <= 2000; i++ {
		x := 20 * float64(i) / 2000
		v := p.At(x)
		if v > prev+1e-12 {
			t.Fatalf("interpolant increases at x=%g: %g -> %g", x, prev, v)
		}
		prev = v
	}
}

func TestPCHIPDerivativeSign(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 0.6, 0.3, 0}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 100; i++ {
		x := 3 * float64(i) / 100
		if d := p.DerivAt(x); d > 1e-12 {
			t.Fatalf("derivative positive (%g) at x=%g on decreasing data", d, x)
		}
	}
}

func TestPCHIPDerivativeMatchesFiniteDifference(t *testing.T) {
	xs := []float64{0, 0.5, 1.2, 2, 3.3, 4}
	ys := []float64{1, 0.9, 0.7, 0.4, 0.1, 0}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.25, 0.8, 1.5, 2.9, 3.7} {
		an := p.DerivAt(x)
		fd := Derivative(p.At, x)
		if math.Abs(an-fd) > 1e-5*(1+math.Abs(an)) {
			t.Errorf("DerivAt(%g) = %g, finite difference %g", x, an, fd)
		}
	}
}

func TestPCHIPConstantExtrapolation(t *testing.T) {
	p, err := NewPCHIP([]float64{0, 1, 2}, []float64{1, 0.5, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.At(-5); got != 1 {
		t.Errorf("At(-5) = %g, want 1", got)
	}
	//lint:allow floatcmp interpolant must reproduce knot ordinates bit-for-bit
	if got := p.At(100); got != 0.1 {
		t.Errorf("At(100) = %g, want 0.1", got)
	}
	if d := p.DerivAt(100); d != 0 {
		t.Errorf("DerivAt(100) = %g, want 0", d)
	}
}

func TestPCHIPLinearDataIsLinear(t *testing.T) {
	// On exactly linear data the interpolant must reproduce the line.
	p, err := NewPCHIP([]float64{0, 1, 2, 3}, []float64{3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 30; i++ {
		x := 3 * float64(i) / 30
		if got := p.At(x); !almostEqual(got, 3-x, 1e-10) {
			t.Errorf("At(%g) = %g, want %g", x, got, 3-x)
		}
	}
}

func TestPCHIPTwoKnots(t *testing.T) {
	p, err := NewPCHIP([]float64{0, 2}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.At(1); !almostEqual(got, 0.5, 1e-10) {
		t.Errorf("At(1) = %g, want 0.5", got)
	}
}

func TestPCHIPRejectsBadKnots(t *testing.T) {
	cases := [][2][]float64{
		{{0}, {1}},               // too few
		{{0, 0, 1}, {1, 0.5, 0}}, // duplicate x
		{{0, 2, 1}, {1, 0.5, 0}}, // unsorted
		{{0, 1, 2}, {1, 0.5}},    // length mismatch
	}
	for i, c := range cases {
		if _, err := NewPCHIP(c[0], c[1]); !errors.Is(err, ErrBadKnots) {
			t.Errorf("case %d: err = %v, want ErrBadKnots", i, err)
		}
	}
}

func TestPCHIPPropertyStaysInDataRange(t *testing.T) {
	// Property: for monotone decreasing data, the interpolant never
	// leaves [min(y), max(y)] — the property that keeps survival
	// probabilities valid.
	check := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		cur := 1.0
		for i, r := range raw {
			xs[i] = float64(i)
			ys[i] = cur
			cur -= float64(r) / (256 * float64(len(raw)))
			if cur < 0 {
				cur = 0
			}
		}
		p, err := NewPCHIP(xs, ys)
		if err != nil {
			return false
		}
		lo, hi := ys[len(ys)-1], ys[0]
		for i := 0; i <= 200; i++ {
			x := xs[len(xs)-1] * float64(i) / 200
			v := p.At(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
