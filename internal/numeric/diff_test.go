package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDerivativeExp(t *testing.T) {
	for _, x := range []float64{0, 0.5, 1, 10, 100} {
		got := Derivative(math.Exp, x)
		want := math.Exp(x)
		if math.Abs(got-want)/want > 1e-8 {
			t.Errorf("d/dx exp at %g = %.12g, want %.12g", x, got, want)
		}
	}
}

func TestDerivativePropertyPolynomials(t *testing.T) {
	// Property: derivative of ax² + bx at random points matches 2ax + b.
	check := func(ai, bi, xi int8) bool {
		a, b, x := float64(ai)/16, float64(bi)/16, float64(xi)/16
		f := func(v float64) float64 { return a*v*v + b*v }
		got := Derivative(f, x)
		want := 2*a*x + b
		return math.Abs(got-want) <= 1e-7*(1+math.Abs(want))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDerivativeOneSided(t *testing.T) {
	// Survival curve defined only on [0, L]: left endpoint needs a
	// forward stencil, right endpoint a backward one.
	l := 100.0
	p := func(x float64) float64 { return 1 - x*x/(l*l) }
	fwd := DerivativeOneSided(p, 0, +1)
	if math.Abs(fwd-0) > 1e-8 {
		t.Errorf("forward derivative at 0 = %g, want 0", fwd)
	}
	back := DerivativeOneSided(p, l, -1)
	want := -2 / l
	if math.Abs(back-want) > 1e-6 {
		t.Errorf("backward derivative at L = %g, want %g", back, want)
	}
}

func TestSecondDerivative(t *testing.T) {
	got := SecondDerivative(func(x float64) float64 { return x * x * x }, 2)
	if math.Abs(got-12) > 1e-3 {
		t.Errorf("f'' = %g, want 12", got)
	}
}

func TestSecondDerivativeSignClassifiesCurvature(t *testing.T) {
	concave := func(x float64) float64 { return 1 - x*x }
	convex := func(x float64) float64 { return math.Exp(-x) }
	if SecondDerivative(concave, 1) >= 0 {
		t.Error("concave function reported nonnegative second derivative")
	}
	if SecondDerivative(convex, 1) <= 0 {
		t.Error("convex function reported nonpositive second derivative")
	}
}
