package numeric

import "math"

// Derivative estimates f'(x) with a central difference extrapolated by
// one Richardson step, which removes the leading O(h²) error term. The
// step is scaled to x's magnitude. It is used to differentiate empirical
// (trace-fitted) life functions for which no analytic derivative exists.
func Derivative(f func(float64) float64, x float64) float64 {
	h := diffStep(x)
	d1 := central(f, x, h)
	d2 := central(f, x, h/2)
	return (4*d2 - d1) / 3
}

// DerivativeOneSided estimates f'(x) using points on one side of x only:
// forward differences when dir > 0, backward when dir < 0. It is needed
// at the endpoints of life functions defined on [0, L], where a central
// stencil would leave the domain.
func DerivativeOneSided(f func(float64) float64, x float64, dir int) float64 {
	h := diffStep(x)
	if dir < 0 {
		h = -h
	}
	// Second-order one-sided stencil: (-3f(x) + 4f(x+h) - f(x+2h)) / 2h.
	return (-3*f(x) + 4*f(x+h) - f(x+2*h)) / (2 * h)
}

// SecondDerivative estimates f”(x) with a central stencil. It backs the
// convexity/concavity detector for empirical life functions.
func SecondDerivative(f func(float64) float64, x float64) float64 {
	h := math.Sqrt(diffStep(x)) // larger step: f'' amplifies rounding error
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

func central(f func(float64) float64, x, h float64) float64 {
	return (f(x+h) - f(x-h)) / (2 * h)
}

func diffStep(x float64) float64 {
	// cbrt(eps) balances truncation against rounding for central stencils.
	const cbrtEps = 6.055454452393343e-06
	scale := math.Abs(x)
	if scale < 1 {
		scale = 1
	}
	return cbrtEps * scale
}
