package numeric

import (
	"fmt"
	"math"
	"sort"
)

// invPhi is 1/φ, the golden-section ratio used by MaximizeGolden.
const invPhi = 0.6180339887498949

// MaxOptions configures the one-dimensional maximizers.
type MaxOptions struct {
	// Tol is the absolute tolerance on the argmax location. If zero,
	// 1e-10 is used.
	Tol float64
	// MaxIter bounds the number of iterations. If zero, 300 is used.
	MaxIter int
}

func (o MaxOptions) withDefaults() MaxOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 300
	}
	return o
}

// MaximizeGolden maximizes a unimodal f on [a, b] by golden-section
// search. It returns the argmax and the maximum value. For non-unimodal
// f it converges to some local maximum inside the interval.
func MaximizeGolden(f func(float64) float64, a, b float64, opt MaxOptions) (x, fx float64, err error) {
	opt = opt.withDefaults()
	if !(a <= b) {
		return 0, 0, fmt.Errorf("%w: [%g, %g]", ErrInvalidInterval, a, b)
	}
	//lint:allow floatcmp degenerate zero-width interval short-circuit
	if a == b {
		return a, f(a), nil
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < opt.MaxIter && b-a > opt.Tol; i++ {
		if f1 < f2 {
			a = x1
			x1, f1 = x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		} else {
			b = x2
			x2, f2 = x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		}
	}
	if f1 > f2 {
		return x1, f1, nil
	}
	return x2, f2, nil
}

// MaximizeScan evaluates f at n+1 evenly spaced points of [a, b], then
// refines around the best sample with golden-section search over the two
// adjacent cells. It is robust to multimodality at the sampled scale and
// is the workhorse behind the t0 searches: the guideline bounds give a
// narrow [a, b], the scan localizes the mode, and golden section
// polishes it.
func MaximizeScan(f func(float64) float64, a, b float64, n int, opt MaxOptions) (x, fx float64, err error) {
	if !(a <= b) {
		return 0, 0, fmt.Errorf("%w: [%g, %g]", ErrInvalidInterval, a, b)
	}
	if n < 2 {
		n = 2
	}
	//lint:allow floatcmp degenerate zero-width interval short-circuit
	if a == b {
		return a, f(a), nil
	}
	h := (b - a) / float64(n)
	bestI, bestF := 0, math.Inf(-1)
	for i := 0; i <= n; i++ {
		v := f(a + float64(i)*h)
		if v > bestF {
			bestI, bestF = i, v
		}
	}
	lo := a + float64(bestI-1)*h
	hi := a + float64(bestI+1)*h
	if lo < a {
		lo = a
	}
	if hi > b {
		hi = b
	}
	x, fx, err = MaximizeGolden(f, lo, hi, opt)
	if err != nil {
		return 0, 0, err
	}
	if bestF > fx {
		// Guard against golden section landing on a worse local mode.
		return a + float64(bestI)*h, bestF, nil
	}
	return x, fx, nil
}

// NelderMeadOptions configures NelderMead.
type NelderMeadOptions struct {
	// Tol is the convergence tolerance on the simplex function-value
	// spread. If zero, 1e-10 is used.
	Tol float64
	// MaxIter bounds the number of simplex transformations. If zero,
	// 2000 per dimension is used.
	MaxIter int
	// Step is the initial simplex edge length. If zero, 5% of each
	// coordinate's magnitude (min 0.1) is used.
	Step float64
}

// NelderMead minimizes f starting from x0 using the Nelder–Mead simplex
// algorithm with standard coefficients (reflection 1, expansion 2,
// contraction 0.5, shrink 0.5). It returns the best point found and its
// value. The input slice is not modified.
//
// The cycle-stealing code uses it (negated) as a scenario-agnostic
// ground-truth maximizer of expected work over period vectors, to
// cross-check the guideline schedules.
func NelderMead(f func([]float64) float64, x0 []float64, opt NelderMeadOptions) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 2000 * n
	}

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	base := append([]float64(nil), x0...)
	simplex[0] = vertex{base, f(base)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), base...)
		step := opt.Step
		if step <= 0 {
			step = 0.05 * math.Abs(x[i])
			if step < 0.1 {
				step = 0.1
			}
		}
		x[i] += step
		simplex[i+1] = vertex{x, f(x)}
	}
	order := func() {
		sort.SliceStable(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	}
	centroid := make([]float64, n)
	trial := make([]float64, n)

	for iter := 0; iter < opt.MaxIter; iter++ {
		order()
		best, worst := simplex[0], simplex[n]
		if math.Abs(worst.f-best.f) <= opt.Tol*(math.Abs(best.f)+opt.Tol) {
			break
		}
		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := range centroid {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		at := func(coef float64) float64 {
			for j := range trial {
				trial[j] = centroid[j] + coef*(centroid[j]-worst.x[j])
			}
			return f(trial)
		}
		replaceWorst := func(v float64) {
			copy(simplex[n].x, trial)
			simplex[n].f = v
		}

		fr := at(1) // reflection
		switch {
		case fr < best.f:
			fe := at(2) // expansion
			if fe < fr {
				replaceWorst(fe)
			} else {
				_ = at(1)
				replaceWorst(fr)
			}
		case fr < simplex[n-1].f:
			replaceWorst(fr)
		default:
			fc := at(-0.5) // inside contraction
			if fc < worst.f {
				replaceWorst(fc)
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = best.x[j] + 0.5*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}
	order()
	return append([]float64(nil), simplex[0].x...), simplex[0].f
}
