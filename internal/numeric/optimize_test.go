package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaximizeGoldenParabola(t *testing.T) {
	x, fx, err := MaximizeGolden(func(x float64) float64 { return -(x - 3) * (x - 3) }, 0, 10, MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 3, 1e-7) || !almostEqual(fx, 0, 1e-12) {
		t.Errorf("argmax = %g (f=%g), want 3 (0)", x, fx)
	}
}

func TestMaximizeGoldenMonotone(t *testing.T) {
	// Maximum at the right endpoint.
	x, _, err := MaximizeGolden(func(x float64) float64 { return x }, 0, 5, MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 5, 1e-6) {
		t.Errorf("argmax = %g, want 5", x)
	}
}

func TestMaximizeGoldenDegenerateInterval(t *testing.T) {
	x, fx, err := MaximizeGolden(func(x float64) float64 { return -x * x }, 2, 2, MaxOptions{})
	if err != nil || x != 2 || fx != -4 {
		t.Errorf("got (%g, %g, %v), want (2, -4, nil)", x, fx, err)
	}
}

func TestMaximizeScanExpectedYieldShape(t *testing.T) {
	// The greedy objective (t-c)·p(t) for uniform risk: maximum of
	// (t-1)(1-t/100) at t = (1+100)/2 = 50.5.
	f := func(x float64) float64 { return (x - 1) * (1 - x/100) }
	x, _, err := MaximizeScan(f, 1, 100, 32, MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 50.5, 1e-6) {
		t.Errorf("argmax = %g, want 50.5", x)
	}
}

func TestMaximizeScanMultimodalPicksGlobal(t *testing.T) {
	// Two humps; the taller one is at x ≈ 8.
	f := func(x float64) float64 {
		return math.Exp(-(x-2)*(x-2)) + 2*math.Exp(-(x-8)*(x-8))
	}
	x, _, err := MaximizeScan(f, 0, 10, 64, MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 8, 1e-4) {
		t.Errorf("argmax = %g, want 8", x)
	}
}

func TestMaximizeScanPropertyQuadratics(t *testing.T) {
	// Property: the argmax of -(x-m)² over [0, 1] is recovered for any
	// planted m in (0, 1).
	check := func(seed uint16) bool {
		m := float64(seed%60000)/60000*0.8 + 0.1
		f := func(x float64) float64 { return -(x - m) * (x - m) }
		x, _, err := MaximizeScan(f, 0, 1, 32, MaxOptions{})
		return err == nil && almostEqual(x, m, 1e-6)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, fx := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 20000})
	if fx > 1e-8 {
		t.Errorf("f(min) = %g at %v, want ~0 at (1,1)", fx, x)
	}
	if !almostEqual(x[0], 1, 1e-3) || !almostEqual(x[1], 1, 1e-3) {
		t.Errorf("argmin = %v, want (1, 1)", x)
	}
}

func TestNelderMeadQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			d := v - float64(i)
			s += d * d
		}
		return s
	}
	x, fx := NelderMead(f, []float64{5, 5, 5, 5}, NelderMeadOptions{})
	if fx > 1e-10 {
		t.Errorf("f(min) = %g at %v", fx, x)
	}
}

func TestNelderMeadEmptyInput(t *testing.T) {
	x, fx := NelderMead(func(x []float64) float64 { return 7 }, nil, NelderMeadOptions{})
	if x != nil || fx != 7 {
		t.Errorf("got (%v, %g), want (nil, 7)", x, fx)
	}
}

func TestNelderMeadDoesNotMutateStart(t *testing.T) {
	x0 := []float64{3, 4}
	NelderMead(func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }, x0, NelderMeadOptions{})
	if x0[0] != 3 || x0[1] != 4 {
		t.Errorf("start point mutated: %v", x0)
	}
}
