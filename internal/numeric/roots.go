// Package numeric provides the numerical routines the cycle-stealing
// library is built on: bracketed root finding, one-dimensional and
// multi-dimensional optimization, adaptive quadrature, monotone cubic
// interpolation, finite differences, and compensated summation.
//
// Everything here is deterministic and allocation-light; the package
// exists because the repository is stdlib-only and Go's standard library
// has no numerical analysis support.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// Common errors returned by the solvers in this package.
var (
	// ErrNoBracket reports that the supplied interval does not bracket a
	// root (the function has the same sign at both endpoints).
	ErrNoBracket = errors.New("numeric: interval does not bracket a root")
	// ErrMaxIterations reports that a solver exhausted its iteration
	// budget before reaching the requested tolerance.
	ErrMaxIterations = errors.New("numeric: maximum iterations exceeded")
	// ErrInvalidInterval reports a degenerate or reversed interval.
	ErrInvalidInterval = errors.New("numeric: invalid interval")
	// ErrNonFinite reports that a function evaluation produced NaN or Inf.
	ErrNonFinite = errors.New("numeric: non-finite function value")
)

// RootOptions configures the bracketed root finders.
type RootOptions struct {
	// AbsTol is the absolute tolerance on the root location.
	// If zero, a default of 1e-12 is used.
	AbsTol float64
	// RelTol is the relative tolerance on the root location.
	// If zero, a default of 4*machine-epsilon is used.
	RelTol float64
	// MaxIter bounds the number of iterations. If zero, 200 is used.
	MaxIter int
}

func (o RootOptions) withDefaults() RootOptions {
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-12
	}
	if o.RelTol <= 0 {
		o.RelTol = 4 * math.Nextafter(1, 2) // ~4 ulp
		o.RelTol -= 4                       // 4*(1+eps) - 4 = 4*eps
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	return o
}

// Bisect finds a root of f in [a, b] by bisection. It requires
// f(a) and f(b) to have opposite signs (an exact zero at an endpoint is
// accepted). Bisection is slow but unconditionally convergent; it is the
// fallback of last resort for the hybrid solvers.
func Bisect(f func(float64) float64, a, b float64, opt RootOptions) (float64, error) {
	opt = opt.withDefaults()
	if !(a < b) {
		return 0, fmt.Errorf("%w: [%g, %g]", ErrInvalidInterval, a, b)
	}
	fa, fb := f(a), f(b)
	if !isFinite(fa) || !isFinite(fb) {
		return 0, ErrNonFinite
	}
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < opt.MaxIter; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if !isFinite(fm) {
			return 0, ErrNonFinite
		}
		if fm == 0 || (b-a)/2 < opt.AbsTol+opt.RelTol*math.Abs(m) {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, ErrMaxIterations
}

// Brent finds a root of f in the bracketing interval [a, b] using
// Brent's method (inverse quadratic interpolation with secant and
// bisection safeguards). It converges superlinearly on smooth functions
// while retaining bisection's robustness.
func Brent(f func(float64) float64, a, b float64, opt RootOptions) (float64, error) {
	opt = opt.withDefaults()
	if !(a < b) {
		return 0, fmt.Errorf("%w: [%g, %g]", ErrInvalidInterval, a, b)
	}
	fa, fb := f(a), f(b)
	if !isFinite(fa) || !isFinite(fb) {
		return 0, ErrNonFinite
	}
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	// Arrange |f(b)| <= |f(a)|: b is the best iterate.
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa // previous iterate
	d := b - a     // step before last
	e := d         // last step
	for i := 0; i < opt.MaxIter; i++ {
		if fb == 0 {
			return b, nil
		}
		tol := opt.AbsTol + opt.RelTol*math.Abs(b)
		m := 0.5 * (c - b)
		if math.Abs(m) <= tol {
			return b, nil
		}
		if math.Abs(e) < tol || math.Abs(fa) <= math.Abs(fb) {
			// Bisection step.
			d, e = m, m
		} else {
			s := fb / fa
			var p, q float64
			//lint:allow floatcmp Brent picks secant vs IQI on exact bracket equality
			if a == c {
				// Secant (linear interpolation).
				p = 2 * m * s
				q = 1 - s
			} else {
				// Inverse quadratic interpolation.
				qa := fa / fc
				r := fb / fc
				p = s * (2*m*qa*(qa-r) - (b-a)*(r-1))
				q = (qa - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			} else {
				p = -p
			}
			if 2*p < math.Min(3*m*q-math.Abs(tol*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d, e = m, m
			}
		}
		a, fa = b, fb
		if math.Abs(d) > tol {
			b += d
		} else if m > 0 {
			b += tol
		} else {
			b -= tol
		}
		fb = f(b)
		if !isFinite(fb) {
			return 0, ErrNonFinite
		}
		if (fb > 0) == (fc > 0) {
			// b and c no longer bracket; move c to the old a.
			c, fc = a, fa
			d = b - a
			e = d
		}
		if math.Abs(fc) < math.Abs(fb) {
			// Ensure b remains the best iterate.
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
	}
	return b, ErrMaxIterations
}

// Newton finds a root of f near x0 given its derivative df, falling back
// to a Brent step inside [lo, hi] whenever the Newton iterate leaves the
// interval or the derivative degenerates. [lo, hi] must bracket the root.
func Newton(f, df func(float64) float64, x0, lo, hi float64, opt RootOptions) (float64, error) {
	opt = opt.withDefaults()
	if !(lo < hi) {
		return 0, fmt.Errorf("%w: [%g, %g]", ErrInvalidInterval, lo, hi)
	}
	x := math.Min(math.Max(x0, lo), hi)
	for i := 0; i < opt.MaxIter; i++ {
		fx := f(x)
		if !isFinite(fx) {
			return 0, ErrNonFinite
		}
		if fx == 0 {
			return x, nil
		}
		dfx := df(x)
		if dfx == 0 || !isFinite(dfx) {
			return Brent(f, lo, hi, opt)
		}
		step := fx / dfx
		next := x - step
		if next <= lo || next >= hi || !isFinite(next) {
			return Brent(f, lo, hi, opt)
		}
		if math.Abs(step) < opt.AbsTol+opt.RelTol*math.Abs(next) {
			return next, nil
		}
		x = next
	}
	return x, ErrMaxIterations
}

// BracketRootGrowing expands an interval [a, a+step] geometrically to the
// right until it brackets a sign change of f or width exceeds max-a.
// It returns the bracketing interval. Useful when only a lower endpoint
// of the root's location is known.
func BracketRootGrowing(f func(float64) float64, a, step, max float64) (lo, hi float64, err error) {
	if step <= 0 {
		return 0, 0, fmt.Errorf("%w: nonpositive step %g", ErrInvalidInterval, step)
	}
	fa := f(a)
	if !isFinite(fa) {
		return 0, 0, ErrNonFinite
	}
	if fa == 0 {
		return a, a, nil
	}
	lo = a
	width := step
	for hi = a + step; hi <= max; hi = lo + width {
		fhi := f(hi)
		if !isFinite(fhi) {
			return 0, 0, ErrNonFinite
		}
		if fhi == 0 || math.Signbit(fhi) != math.Signbit(fa) {
			return lo, hi, nil
		}
		lo, fa = hi, fhi
		width *= 2
	}
	return 0, 0, fmt.Errorf("%w: no sign change in [%g, %g]", ErrNoBracket, a, max)
}

func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
