package numeric

import (
	"errors"
	"math"
	"testing"
)

func TestBisectMaxIterations(t *testing.T) {
	// One iteration cannot resolve a root to 1e-12.
	_, err := Bisect(func(x float64) float64 { return x - 0.37 }, 0, 1, RootOptions{MaxIter: 1})
	if !errors.Is(err, ErrMaxIterations) {
		t.Errorf("err = %v, want ErrMaxIterations", err)
	}
}

func TestBisectNonFinite(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return math.NaN() }, 0, 1, RootOptions{})
	if !errors.Is(err, ErrNonFinite) {
		t.Errorf("err = %v", err)
	}
	// NaN appearing mid-iteration.
	f := func(x float64) float64 {
		if x > 0.4 && x < 0.6 {
			return math.NaN()
		}
		return x - 0.37
	}
	if _, err := Bisect(f, 0, 1, RootOptions{}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("mid-iteration NaN: err = %v", err)
	}
}

func TestBrentRootAtEndpoints(t *testing.T) {
	r, err := Brent(func(x float64) float64 { return x }, 0, 1, RootOptions{})
	if err != nil || r != 0 {
		t.Errorf("left endpoint root: %g, %v", r, err)
	}
	r, err = Brent(func(x float64) float64 { return x - 1 }, 0, 1, RootOptions{})
	if err != nil || r != 1 {
		t.Errorf("right endpoint root: %g, %v", r, err)
	}
}

func TestNewtonBadInterval(t *testing.T) {
	f := func(x float64) float64 { return x }
	df := func(x float64) float64 { return 1 }
	if _, err := Newton(f, df, 0, 1, -1, RootOptions{}); !errors.Is(err, ErrInvalidInterval) {
		t.Errorf("err = %v", err)
	}
}

func TestNewtonNonFinite(t *testing.T) {
	f := func(x float64) float64 { return math.NaN() }
	df := func(x float64) float64 { return 1 }
	if _, err := Newton(f, df, 0.5, 0, 1, RootOptions{}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("err = %v", err)
	}
}

func TestMaximizeGoldenInvalidInterval(t *testing.T) {
	if _, _, err := MaximizeGolden(func(x float64) float64 { return x }, 2, 1, MaxOptions{}); err == nil {
		t.Error("reversed interval accepted")
	}
	if _, _, err := MaximizeScan(func(x float64) float64 { return x }, 2, 1, 8, MaxOptions{}); err == nil {
		t.Error("reversed interval accepted by scan")
	}
}

func TestMaximizeScanDegenerate(t *testing.T) {
	x, fx, err := MaximizeScan(func(x float64) float64 { return -x * x }, 3, 3, 8, MaxOptions{})
	if err != nil || x != 3 || fx != -9 {
		t.Errorf("degenerate scan: (%g, %g, %v)", x, fx, err)
	}
	// n < 2 is clamped, not rejected.
	if _, _, err := MaximizeScan(func(x float64) float64 { return -x * x }, 0, 1, 1, MaxOptions{}); err != nil {
		t.Errorf("n=1 rejected: %v", err)
	}
}

func TestMaximizeScanGuardPrefersGridWhenGoldenWorse(t *testing.T) {
	// A spike the golden refinement can converge away from: the guard
	// must return the better grid sample.
	spike := func(x float64) float64 {
		if math.Abs(x-0.5) < 1e-4 {
			return 10
		}
		return math.Sin(20 * x)
	}
	// Grid with a point at exactly 0.5 (n divides evenly).
	x, fx, err := MaximizeScan(spike, 0, 1, 10, MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fx < 10 {
		t.Errorf("lost the spike: argmax %g value %g", x, fx)
	}
}

func TestIntegrateDepthExhausted(t *testing.T) {
	// A pathological oscillator with depth 1 cannot meet 1e-12.
	f := func(x float64) float64 { return math.Sin(1000 * x) }
	_, err := Integrate(f, 0, 10, QuadOptions{Tol: 1e-14, MaxDepth: 2})
	if !errors.Is(err, ErrMaxIterations) {
		t.Errorf("err = %v, want depth exhaustion", err)
	}
}

func TestDerivativeOneSidedForward(t *testing.T) {
	// Forward stencil at zero for sqrt-like one-sided functions.
	f := func(x float64) float64 { return 3*x + 1 }
	if d := DerivativeOneSided(f, 0, +1); math.Abs(d-3) > 1e-6 {
		t.Errorf("forward derivative = %g", d)
	}
}

func TestNelderMeadOneDimension(t *testing.T) {
	x, fx := NelderMead(func(v []float64) float64 {
		d := v[0] - 2.5
		return d * d
	}, []float64{0}, NelderMeadOptions{})
	if math.Abs(x[0]-2.5) > 1e-4 || fx > 1e-8 {
		t.Errorf("1-D Nelder-Mead: %v, %g", x, fx)
	}
}
