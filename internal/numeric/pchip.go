package numeric

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadKnots reports invalid interpolation knots (too few, unsorted, or
// duplicated abscissae).
var ErrBadKnots = errors.New("numeric: invalid interpolation knots")

// PCHIP is a monotone piecewise-cubic Hermite interpolant
// (Fritsch–Carlson). If the data are monotone, the interpolant is
// monotone too — exactly the property a tabulated survival function
// needs: an empirical life function interpolated with PCHIP stays a
// valid, nonincreasing probability curve with a continuous derivative.
type PCHIP struct {
	xs, ys, ds []float64 // knots, values, endpoint-adjusted slopes
}

// NewPCHIP builds the interpolant over strictly increasing xs. ys must
// have the same length; at least two knots are required.
func NewPCHIP(xs, ys []float64) (*PCHIP, error) {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return nil, fmt.Errorf("%w: %d xs, %d ys", ErrBadKnots, len(xs), len(ys))
	}
	for i := 1; i < n; i++ {
		if !(xs[i] > xs[i-1]) {
			return nil, fmt.Errorf("%w: xs[%d]=%g not > xs[%d]=%g", ErrBadKnots, i, xs[i], i-1, xs[i-1])
		}
	}
	p := &PCHIP{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		ds: make([]float64, n),
	}
	// Interval widths and secant slopes.
	h := make([]float64, n-1)
	delta := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		h[i] = xs[i+1] - xs[i]
		delta[i] = (ys[i+1] - ys[i]) / h[i]
	}
	// Interior slopes: weighted harmonic mean when the secants agree in
	// sign, zero otherwise (Fritsch–Carlson; guarantees monotonicity).
	for i := 1; i < n-1; i++ {
		if delta[i-1]*delta[i] <= 0 {
			p.ds[i] = 0
			continue
		}
		w1 := 2*h[i] + h[i-1]
		w2 := h[i] + 2*h[i-1]
		p.ds[i] = (w1 + w2) / (w1/delta[i-1] + w2/delta[i])
	}
	p.ds[0] = edgeSlope(h[0], hAt(h, 1), delta[0], deltaAt(delta, 1))
	p.ds[n-1] = edgeSlope(h[n-2], hAt(h, n-3), delta[n-2], deltaAt(delta, n-3))
	return p, nil
}

func hAt(h []float64, i int) float64 {
	if i < 0 || i >= len(h) {
		return h[0]
	}
	return h[i]
}

func deltaAt(d []float64, i int) float64 {
	if i < 0 || i >= len(d) {
		return d[0]
	}
	return d[i]
}

// edgeSlope is the standard shape-preserving three-point endpoint rule.
func edgeSlope(h0, h1, d0, d1 float64) float64 {
	s := ((2*h0+h1)*d0 - h0*d1) / (h0 + h1)
	if s*d0 <= 0 {
		return 0
	}
	if d0*d1 <= 0 && math.Abs(s) > 3*math.Abs(d0) {
		return 3 * d0
	}
	return s
}

// Domain returns the interpolation interval [min, max].
func (p *PCHIP) Domain() (float64, float64) { return p.xs[0], p.xs[len(p.xs)-1] }

// At evaluates the interpolant at x. Outside the knot range the nearest
// endpoint value is returned (constant extrapolation), which keeps a
// survival function within [0, 1].
func (p *PCHIP) At(x float64) float64 {
	v, _ := p.eval(x)
	return v
}

// DerivAt evaluates the interpolant's derivative at x; zero outside the
// knot range (matching the constant extrapolation of At).
func (p *PCHIP) DerivAt(x float64) float64 {
	_, d := p.eval(x)
	return d
}

func (p *PCHIP) eval(x float64) (val, deriv float64) {
	n := len(p.xs)
	if x <= p.xs[0] {
		//lint:allow floatcmp exact knot hit returns the stored ordinate
		if x == p.xs[0] {
			return p.ys[0], p.ds[0]
		}
		return p.ys[0], 0
	}
	if x >= p.xs[n-1] {
		//lint:allow floatcmp exact knot hit returns the stored ordinate
		if x == p.xs[n-1] {
			return p.ys[n-1], p.ds[n-1]
		}
		return p.ys[n-1], 0
	}
	// Locate the interval with sort.SearchFloat64s: index of first knot > x.
	i := sort.SearchFloat64s(p.xs, x)
	//lint:allow floatcmp exact knot hit returns the stored ordinate
	if p.xs[i] == x {
		return p.ys[i], p.ds[i]
	}
	i-- // now xs[i] < x < xs[i+1]
	h := p.xs[i+1] - p.xs[i]
	s := (x - p.xs[i]) / h
	y0, y1 := p.ys[i], p.ys[i+1]
	d0, d1 := p.ds[i], p.ds[i+1]
	// Cubic Hermite basis.
	s2 := s * s
	s3 := s2 * s
	h00 := 2*s3 - 3*s2 + 1
	h10 := s3 - 2*s2 + s
	h01 := -2*s3 + 3*s2
	h11 := s3 - s2
	val = h00*y0 + h10*h*d0 + h01*y1 + h11*h*d1
	// Basis derivatives w.r.t. x (chain rule through s).
	dh00 := (6*s2 - 6*s) / h
	dh10 := (3*s2 - 4*s + 1) / h
	dh01 := (-6*s2 + 6*s) / h
	dh11 := (3*s2 - 2*s) / h
	deriv = dh00*y0 + dh10*h*d0 + dh01*y1 + dh11*h*d1
	return val, deriv
}
