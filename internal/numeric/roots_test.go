package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBisectLinear(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return 2*x - 3 }, 0, 10, RootOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, 1.5, 1e-9) {
		t.Errorf("root = %g, want 1.5", root)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x }, 0, 1, RootOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if root != 0 {
		t.Errorf("root = %g, want exact 0", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, RootOptions{})
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisectReversedInterval(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x }, 1, -1, RootOptions{})
	if !errors.Is(err, ErrInvalidInterval) {
		t.Errorf("err = %v, want ErrInvalidInterval", err)
	}
}

func TestBrentPolynomial(t *testing.T) {
	// x³ - 2x - 5 has a root near 2.0945514815423265.
	f := func(x float64) float64 { return x*x*x - 2*x - 5 }
	root, err := Brent(f, 1, 3, RootOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, 2.0945514815423265, 1e-10) {
		t.Errorf("root = %.16g", root)
	}
}

func TestBrentTranscendental(t *testing.T) {
	// cos(x) = x near 0.7390851332151607.
	root, err := Brent(func(x float64) float64 { return math.Cos(x) - x }, 0, 1, RootOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, 0.7390851332151607, 1e-10) {
		t.Errorf("root = %.16g", root)
	}
}

func TestBrentSteepSurvival(t *testing.T) {
	// The shape GenerateFrom inverts: survival curve minus a target.
	l := 1000.0
	target := 0.3
	root, err := Brent(func(x float64) float64 { return (1 - x/l) - target }, 0, l, RootOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, 700, 1e-8) {
		t.Errorf("root = %g, want 700", root)
	}
}

func TestBrentNoBracket(t *testing.T) {
	_, err := Brent(func(x float64) float64 { return 1 + x*x }, -5, 5, RootOptions{})
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentNonFinite(t *testing.T) {
	_, err := Brent(func(x float64) float64 { return math.NaN() }, 0, 1, RootOptions{})
	if !errors.Is(err, ErrNonFinite) {
		t.Errorf("err = %v, want ErrNonFinite", err)
	}
}

func TestBrentPropertyRandomCubics(t *testing.T) {
	// Property: for roots planted at r in (0, 1), Brent on [−1, 2]
	// recovers r for the monotone cubic (x−r)³ + (x−r).
	check := func(seed uint16) bool {
		r := float64(seed) / 65536.0
		f := func(x float64) float64 { d := x - r; return d*d*d + d }
		root, err := Brent(f, -1, 2, RootOptions{})
		return err == nil && almostEqual(root, r, 1e-8)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewtonQuadratic(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	df := func(x float64) float64 { return 2 * x }
	root, err := Newton(f, df, 1, 0, 2, RootOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, math.Sqrt2, 1e-10) {
		t.Errorf("root = %.16g, want sqrt(2)", root)
	}
}

func TestNewtonFallsBackOnFlatDerivative(t *testing.T) {
	// Derivative vanishes at the start point; must fall back to Brent.
	f := func(x float64) float64 { return x*x*x - 1 }
	df := func(x float64) float64 { return 3 * x * x }
	root, err := Newton(f, df, 0, -1, 2, RootOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, 1, 1e-9) {
		t.Errorf("root = %g, want 1", root)
	}
}

func TestNewtonEscapingIterateFallsBack(t *testing.T) {
	// tan-like blowup pushes Newton outside [lo, hi]; Brent must save it.
	f := func(x float64) float64 { return math.Atan(x - 0.5) }
	df := func(x float64) float64 { return 1 / (1 + (x-0.5)*(x-0.5)) }
	root, err := Newton(f, df, -0.9, -1, 1, RootOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, 0.5, 1e-9) {
		t.Errorf("root = %g, want 0.5", root)
	}
}

func TestBracketRootGrowing(t *testing.T) {
	f := func(x float64) float64 { return 100 - x }
	lo, hi, err := BracketRootGrowing(f, 0, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 100 && hi >= 100) {
		t.Errorf("bracket [%g, %g] does not contain 100", lo, hi)
	}
}

func TestBracketRootGrowingFarRoot(t *testing.T) {
	// Regression: the expansion loop once zeroed its width after the
	// first step and spun forever. The root here needs many doublings.
	f := func(x float64) float64 { return math.Exp(-x/1e5) - 0.5 }
	lo, hi, err := BracketRootGrowing(f, 0, 1, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e5 * math.Ln2
	if !(lo <= want && want <= hi) {
		t.Errorf("bracket [%g, %g] misses root %g", lo, hi, want)
	}
}

func TestBracketRootGrowingNoRoot(t *testing.T) {
	_, _, err := BracketRootGrowing(func(x float64) float64 { return 1 + x }, 0, 1, 100)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBracketRootGrowingBadStep(t *testing.T) {
	_, _, err := BracketRootGrowing(func(x float64) float64 { return x }, 0, 0, 10)
	if !errors.Is(err, ErrInvalidInterval) {
		t.Errorf("err = %v, want ErrInvalidInterval", err)
	}
}
