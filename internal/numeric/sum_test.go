package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKahanSumCancellations(t *testing.T) {
	// 1 + 1e100 - 1e100 loses the 1 under naive summation order.
	var k KahanSum
	k.Add(1)
	k.Add(1e100)
	k.Add(-1e100)
	if got := k.Value(); got != 1 {
		t.Errorf("compensated sum = %g, want 1", got)
	}
}

func TestKahanSumManySmall(t *testing.T) {
	var k KahanSum
	n := 10_000_000
	for i := 0; i < n; i++ {
		k.Add(0.1)
	}
	want := float64(n) * 0.1
	if math.Abs(k.Value()-want) > 1e-4 {
		t.Errorf("sum = %.10f, want %.10f", k.Value(), want)
	}
}

func TestKahanReset(t *testing.T) {
	var k KahanSum
	k.Add(5)
	k.Reset()
	k.Add(2)
	if k.Value() != 2 {
		t.Errorf("after reset sum = %g, want 2", k.Value())
	}
}

func TestSumEmpty(t *testing.T) {
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean = %g, want 2.5", got)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestSumPropertyMatchesExactIntegers(t *testing.T) {
	// Property: sums of small integers are exact.
	check := func(xs []int8) bool {
		fs := make([]float64, len(xs))
		var exact int64
		for i, v := range xs {
			fs[i] = float64(v)
			exact += int64(v)
		}
		//lint:allow floatcmp compensated sum of small ints is exact
		return Sum(fs) == float64(exact)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
