package numeric

import (
	"fmt"
	"math"
)

// QuadOptions configures the adaptive quadrature routine.
type QuadOptions struct {
	// Tol is the absolute error tolerance. If zero, 1e-10 is used.
	Tol float64
	// MaxDepth bounds the recursion depth. If zero, 48 is used.
	MaxDepth int
}

// Integrate computes the definite integral of f over [a, b] with
// adaptive Simpson quadrature. It is used to evaluate expected reclaim
// times and to validate sampled survival functions against their
// analytic densities.
func Integrate(f func(float64) float64, a, b float64, opt QuadOptions) (float64, error) {
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxDepth <= 0 {
		opt.MaxDepth = 48
	}
	//lint:allow floatcmp degenerate zero-width interval short-circuit
	if a == b {
		return 0, nil
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	fa, fb := f(a), f(b)
	m := a + (b-a)/2
	fm := f(m)
	if !isFinite(fa) || !isFinite(fb) || !isFinite(fm) {
		return 0, ErrNonFinite
	}
	whole := simpson(a, b, fa, fm, fb)
	v, err := adaptiveSimpson(f, a, b, fa, fm, fb, whole, opt.Tol, opt.MaxDepth)
	return sign * v, err
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) (float64, error) {
	m := a + (b-a)/2
	lm := a + (m-a)/2
	rm := m + (b-m)/2
	flm, frm := f(lm), f(rm)
	if !isFinite(flm) || !isFinite(frm) {
		return 0, ErrNonFinite
	}
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if depth <= 0 {
		return left + right, fmt.Errorf("%w: adaptive Simpson depth exhausted on [%g, %g]", ErrMaxIterations, a, b)
	}
	if math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15, nil
	}
	lv, lerr := adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1)
	if lerr != nil {
		return lv, lerr
	}
	rv, rerr := adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
	return lv + rv, rerr
}
