package numeric

import (
	"math"
	"testing"
)

func TestIntegratePolynomial(t *testing.T) {
	// ∫₀¹ x² dx = 1/3 (Simpson is exact on cubics).
	v, err := Integrate(func(x float64) float64 { return x * x }, 0, 1, QuadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 1.0/3, 1e-12) {
		t.Errorf("integral = %.16g, want 1/3", v)
	}
}

func TestIntegrateSin(t *testing.T) {
	v, err := Integrate(math.Sin, 0, math.Pi, QuadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 2, 1e-9) {
		t.Errorf("integral = %.16g, want 2", v)
	}
}

func TestIntegrateReversedLimits(t *testing.T) {
	v, err := Integrate(func(x float64) float64 { return 1 }, 1, 0, QuadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, -1, 1e-12) {
		t.Errorf("integral = %g, want -1", v)
	}
}

func TestIntegrateEmptyInterval(t *testing.T) {
	v, err := Integrate(math.Exp, 2, 2, QuadOptions{})
	if err != nil || v != 0 {
		t.Errorf("got (%g, %v), want (0, nil)", v, err)
	}
}

func TestIntegrateSurvivalMeanLifetime(t *testing.T) {
	// Mean of Exp(rate=2) via ∫ survival: 1/2.
	v, err := Integrate(func(x float64) float64 { return math.Exp(-2 * x) }, 0, 40, QuadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 0.5, 1e-8) {
		t.Errorf("integral = %.12g, want 0.5", v)
	}
}

func TestIntegrateSharpPeak(t *testing.T) {
	// Narrow Gaussian: adaptive refinement must find the mass.
	sigma := 1e-3
	f := func(x float64) float64 {
		d := (x - 0.5) / sigma
		return math.Exp(-d * d / 2)
	}
	v, err := Integrate(f, 0, 1, QuadOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := sigma * math.Sqrt(2*math.Pi)
	if math.Abs(v-want)/want > 1e-6 {
		t.Errorf("integral = %.12g, want %.12g", v, want)
	}
}

func TestIntegrateNonFinite(t *testing.T) {
	_, err := Integrate(func(x float64) float64 { return 1 / x }, -1, 1, QuadOptions{})
	if err == nil {
		t.Error("expected error integrating across a pole")
	}
}
