package numeric

import (
	"math"
	"testing"
)

func FuzzPCHIPStaysInRange(f *testing.F) {
	f.Add(uint8(10), uint8(20), uint8(30), uint8(40))
	f.Add(uint8(0), uint8(0), uint8(255), uint8(1))
	f.Add(uint8(255), uint8(254), uint8(253), uint8(252))
	f.Fuzz(func(t *testing.T, a, b, c, d uint8) {
		// Build a nonincreasing survival-style curve from the fuzz
		// bytes.
		drops := []float64{float64(a), float64(b), float64(c), float64(d)}
		xs := []float64{0, 1, 2, 3, 4}
		ys := make([]float64, 5)
		cur := 1.0
		ys[0] = cur
		for i, drop := range drops {
			cur -= drop / (4 * 256)
			if cur < 0 {
				cur = 0
			}
			ys[i+1] = cur
		}
		p, err := NewPCHIP(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		prev := math.Inf(1)
		for i := 0; i <= 200; i++ {
			x := 4 * float64(i) / 200
			v := p.At(x)
			if v < ys[4]-1e-9 || v > 1+1e-9 {
				t.Fatalf("interpolant %g outside data range at %g", v, x)
			}
			if v > prev+1e-9 {
				t.Fatalf("interpolant increases at %g", x)
			}
			prev = v
		}
	})
}

func FuzzBrentPlantedRoot(f *testing.F) {
	f.Add(uint16(100))
	f.Add(uint16(65535))
	f.Add(uint16(0))
	f.Fuzz(func(t *testing.T, seed uint16) {
		root := float64(seed)/65536*8 + 1 // (1, 9)
		fn := func(x float64) float64 {
			d := x - root
			return d + 0.1*d*d*d
		}
		got, err := Brent(fn, 0, 10, RootOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-root) > 1e-8 {
			t.Fatalf("root = %g, want %g", got, root)
		}
	})
}
