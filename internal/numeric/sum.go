package numeric

// KahanSum accumulates float64 values with Kahan–Babuška (Neumaier)
// compensation, so that long expected-work summations and Monte-Carlo
// averages do not drift. The zero value is an empty sum ready to use.
type KahanSum struct {
	sum float64
	c   float64 // running compensation
}

// Add accumulates v into the sum.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if abs(k.sum) >= abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated total.
func (k *KahanSum) Value() float64 { return k.sum + k.c }

// Reset clears the accumulator.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Value()
}

// Mean returns the compensated arithmetic mean of xs, or 0 for an empty
// slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
