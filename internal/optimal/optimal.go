// Package optimal reproduces the provably optimal cycle-stealing
// schedules of Bhatt, Chung, Leighton and Rosenberg, "On optimal
// strategies for cycle-stealing in networks of workstations" (IEEE
// Trans. Computers 46, 1997) — reference [3] of the paper — for the
// three scenarios its guidelines are evaluated against in Section 4:
//
//   - uniform risk p(t) = 1 - t/L: the optimal schedule is the
//     arithmetic sequence t_k = t_0 - kc with t_0 = L/m + (m-1)c/2 for
//     the best period count m;
//   - geometrically decreasing lifespan p(t) = a^{-t}: the optimal
//     schedule is infinite with all periods equal to the root of
//     t + a^{-t}/ln a = c + 1/ln a;
//   - geometrically increasing risk p(t) = (2^L - 2^t)/(2^L - 1): the
//     optimal periods satisfy t_{k+1} = log2(t_k - c + 2).
//
// The package also provides a scenario-agnostic ground-truth optimizer
// (exhaustive period-count scan + Nelder–Mead over period vectors) used
// to cross-check both the closed forms here and the guideline schedules
// of internal/core.
package optimal

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lifefn"
	"repro/internal/numeric"
	"repro/internal/sched"
)

// ErrUnsupported reports a life function outside the three [BCLR97]
// scenarios.
var ErrUnsupported = errors.New("optimal: no closed-form optimal schedule for this life function")

// Result is an optimal (or ground-truth) schedule with its expected
// work.
type Result struct {
	Schedule     sched.Schedule
	ExpectedWork float64
	// T0 is the schedule's initial period (0 for an empty schedule).
	T0 float64
}

func newResult(s sched.Schedule, l lifefn.Life, c float64) Result {
	r := Result{Schedule: s, ExpectedWork: sched.ExpectedWork(s, l, c)}
	if s.Len() > 0 {
		r.T0 = s.Period(0)
	}
	return r
}

// Uniform returns the optimal schedule for the uniform-risk scenario
// p(t) = 1 - t/L with overhead c, following [BCLR97]: optimal periods
// form the arithmetic sequence t_k = t_0 - kc. For each feasible period
// count m (bounded by Corollary 5.3) the expected work is an exactly
// quadratic, concave function of t_0, so the per-m optimum is solved in
// closed form and clamped to the feasible range [mc, L/m + (m-1)c/2] —
// the upper end exhausts the lifespan; the paper notes the optimum may
// deliberately leave part of the lifespan unused, which the interior
// solution captures.
func Uniform(l lifefn.Uniform, c float64) (Result, error) {
	if !(c > 0) {
		return Result{}, fmt.Errorf("optimal: overhead must be positive, got %g", c)
	}
	if l.L <= c {
		// No productive period fits: the optimal schedule is empty.
		return Result{}, nil
	}
	mMax := int(math.Ceil(math.Sqrt(2*l.L/c+0.25)+0.5)) + 1
	best := Result{}
	for m := 1; m <= mMax; m++ {
		t0, ok := uniformBestT0(l.L, c, m)
		if !ok {
			continue
		}
		periods := make([]float64, m)
		for k := range periods {
			periods[k] = t0 - float64(k)*c
		}
		s, err := sched.New(periods...)
		if err != nil {
			continue
		}
		if r := newResult(s, l, c); r.ExpectedWork > best.ExpectedWork {
			best = r
		}
	}
	return best, nil
}

// uniformBestT0 maximizes E over t0 for the m-period arithmetic
// schedule t_k = t0 - kc under p(t) = 1 - t/L. With
// T_k = (k+1)t0 - k(k+1)c/2, each term (t0-(k+1)c)(1 - T_k/L) is
// quadratic in t0 with negative leading coefficient, so E(t0) is
// concave; the unconstrained maximizer is clamped into the feasible
// interval (mc, L/m + (m-1)c/2].
func uniformBestT0(l, c float64, m int) (float64, bool) {
	lo := float64(m) * c // keeps the last period above c
	hi := l/float64(m) + float64(m-1)*c/2
	if !(lo < hi) {
		return 0, false
	}
	// E(u) = A·u² + B·u + C; A = -Σ (k+1)/L, B below, C irrelevant.
	var a, b float64
	for k := 0; k < m; k++ {
		kk := float64(k)
		alpha := (kk + 1) * c
		beta := (kk + 1) / l
		gamma := 1 + kk*(kk+1)*c/(2*l)
		a -= beta
		b += gamma + alpha*beta
	}
	u := -b / (2 * a)
	if u < lo {
		u = lo * (1 + 1e-12)
	}
	if u > hi {
		u = hi
	}
	return u, true
}

// GeomDecreasingPeriod returns the optimal common period length for the
// geometrically decreasing lifespan scenario p(t) = a^{-t}: the unique
// root t* > c of t + a^{-t}/ln a = c + 1/ln a ([BCLR97] proves all
// optimal periods are equal and satisfy this equation).
func GeomDecreasingPeriod(l lifefn.GeomDecreasing, c float64) (float64, error) {
	lna := l.LnA()
	f := func(t float64) float64 {
		return t + math.Exp(-t*lna)/lna - c - 1/lna
	}
	// f(c) = a^{-c}/ln a - 1/ln a < 0; f is increasing for t > 0 up to
	// slope 1, and f(c + 1/ln a) = a^{-t}/ln a > 0.
	hi := c + 1/lna
	if f(hi) <= 0 {
		// Root at or beyond the upper endpoint (numerically degenerate).
		return hi, nil
	}
	root, err := numeric.Brent(f, c, hi, numeric.RootOptions{AbsTol: 1e-13})
	if err != nil {
		return 0, fmt.Errorf("optimal: geomdec period: %w", err)
	}
	return root, nil
}

// GeomDecreasing returns the optimal (truncated-infinite) schedule for
// p(t) = a^{-t}: equal periods t* repeated until the survival
// probability falls below tailEps (the true optimum is infinite; the
// truncation error in expected work is below tailEps·t*/(1-a^{-t*})).
// ExpectedWorkGeomDecreasing gives the exact closed-form value.
func GeomDecreasing(l lifefn.GeomDecreasing, c, tailEps float64, maxPeriods int) (Result, error) {
	if tailEps <= 0 {
		tailEps = 1e-12
	}
	if maxPeriods <= 0 {
		maxPeriods = 100_000
	}
	t, err := GeomDecreasingPeriod(l, c)
	if err != nil {
		return Result{}, err
	}
	if !(t > c) {
		return Result{}, nil
	}
	// Periods needed for a^{-k t} <= tailEps.
	k := int(math.Ceil(-math.Log(tailEps) / (t * l.LnA())))
	if k < 1 {
		k = 1
	}
	if k > maxPeriods {
		k = maxPeriods
	}
	periods := make([]float64, k)
	for i := range periods {
		periods[i] = t
	}
	s, err := sched.New(periods...)
	if err != nil {
		return Result{}, err
	}
	return newResult(s, l, c), nil
}

// ExpectedWorkGeomDecreasing returns the exact expected work of the
// infinite equal-period schedule with period t under p(t) = a^{-t}:
// (t - c)·a^{-t} / (1 - a^{-t}).
func ExpectedWorkGeomDecreasing(l lifefn.GeomDecreasing, c, t float64) float64 {
	q := math.Exp(-t * l.LnA())
	return (t - c) * q / (1 - q)
}

// GeomIncreasing returns the optimal schedule for the doubling-risk
// scenario p(t) = (2^L - 2^t)/(2^L - 1): periods follow [BCLR97]'s
// recurrence t_{k+1} = log2(t_k - c + 2), and the initial period is
// chosen by a bracketed search maximizing expected work (the original
// paper derives the recurrence by period-perturbation arguments and
// pins t_0 ad hoc; no closed form for t_0 is given there either).
func GeomIncreasing(l lifefn.GeomIncreasing, c float64) (Result, error) {
	if !(c > 0) {
		return Result{}, fmt.Errorf("optimal: overhead must be positive, got %g", c)
	}
	if l.L <= c {
		return Result{}, nil
	}
	gen := func(t0 float64) sched.Schedule {
		return generateGeomInc(l, c, t0)
	}
	objective := func(t0 float64) float64 {
		return sched.ExpectedWork(gen(t0), l, c)
	}
	lo := c * (1 + 1e-9)
	t0, _, err := numeric.MaximizeScan(objective, lo, l.L, 512, numeric.MaxOptions{Tol: 1e-11})
	if err != nil {
		return Result{}, fmt.Errorf("optimal: geominc t0 search: %w", err)
	}
	return newResult(gen(t0), l, c), nil
}

// generateGeomInc iterates t_{k+1} = log2(t_k - c + 2) from t0, keeping
// the cumulative time inside the lifespan and the periods productive.
func generateGeomInc(l lifefn.GeomIncreasing, c, t0 float64) sched.Schedule {
	var periods []float64
	t, total := t0, 0.0
	for t > c && total+t <= l.L && len(periods) < 100_000 {
		periods = append(periods, t)
		total += t
		t = math.Log2(t - c + 2)
	}
	s, err := sched.New(periods...)
	if err != nil {
		return sched.Schedule{}
	}
	return sched.Normalize(s, c)
}
