package optimal

import (
	"math"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/sched"
)

func TestGroundTruthPolishImproves(t *testing.T) {
	// Nelder–Mead polishing must never make the result worse.
	l, _ := lifefn.NewGeomIncreasing(32)
	rough, err := GroundTruth(l, 1, GroundTruthOptions{Sweeps: 2})
	if err != nil {
		t.Fatal(err)
	}
	polished, err := GroundTruth(l, 1, GroundTruthOptions{Sweeps: 2, Polish: true})
	if err != nil {
		t.Fatal(err)
	}
	if polished.ExpectedWork < rough.ExpectedWork-1e-9 {
		t.Errorf("polish regressed: %g -> %g", rough.ExpectedWork, polished.ExpectedWork)
	}
}

func TestGroundTruthUnboundedHorizon(t *testing.T) {
	// Exponential owner: ground truth must approach the closed-form
	// equal-period optimum despite the unbounded support.
	a := math.Pow(2, 1.0/16)
	l, _ := lifefn.NewGeomDecreasing(a)
	c := 1.0
	gt, err := GroundTruth(l, c, GroundTruthOptions{MaxPeriods: 40})
	if err != nil {
		t.Fatal(err)
	}
	tStar, err := GeomDecreasingPeriod(l, c)
	if err != nil {
		t.Fatal(err)
	}
	exact := ExpectedWorkGeomDecreasing(l, c, tStar)
	// The finite-period ground truth must come close to the infinite
	// optimum (its truncation forfeits only the geometric tail).
	if gt.ExpectedWork < 0.95*exact {
		t.Errorf("ground truth %g far below exact %g", gt.ExpectedWork, exact)
	}
	if gt.ExpectedWork > exact+1e-6 {
		t.Errorf("ground truth %g above the provable optimum %g", gt.ExpectedWork, exact)
	}
}

func TestGroundTruthRespectsMaxPeriods(t *testing.T) {
	l, _ := lifefn.NewUniform(1000)
	gt, err := GroundTruth(l, 1, GroundTruthOptions{MaxPeriods: 5, Sweeps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if gt.Schedule.Len() > 5 {
		t.Errorf("m = %d exceeds cap", gt.Schedule.Len())
	}
	// The capped optimum must still beat the naive single period.
	single := sched.MustNew(500)
	if gt.ExpectedWork <= sched.ExpectedWork(single, l, 1) {
		t.Errorf("capped ground truth %g no better than one period", gt.ExpectedWork)
	}
}

func TestUniformBestT0Infeasible(t *testing.T) {
	// m so large that mc >= the exhausting t0: infeasible.
	if _, ok := uniformBestT0(10, 1, 100); ok {
		t.Error("infeasible m accepted")
	}
	if t0, ok := uniformBestT0(100, 1, 5); !ok || t0 <= 5 {
		t.Errorf("feasible m rejected or degenerate: %g, %v", t0, ok)
	}
}
