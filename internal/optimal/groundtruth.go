package optimal

import (
	"fmt"
	"math"

	"repro/internal/lifefn"
	"repro/internal/numeric"
	"repro/internal/sched"
)

// GroundTruthOptions configures the scenario-agnostic optimizer.
type GroundTruthOptions struct {
	// MaxPeriods caps the period counts tried. If zero, the Corollary
	// 5.3 bound is used for finite horizons and 64 otherwise.
	MaxPeriods int
	// Sweeps is the number of coordinate-ascent passes per period
	// count. If zero, 40 is used.
	Sweeps int
	// Polish enables a Nelder–Mead refinement after coordinate ascent.
	Polish bool
}

// GroundTruth maximizes expected work E(S; p) directly over period
// vectors, with no appeal to the paper's guidelines: for each candidate
// period count m it runs cyclic coordinate ascent (each period optimized
// by bracketed golden-section search with the others fixed), optionally
// polished by Nelder–Mead, and returns the best schedule found. It is
// the reference the guideline schedules are measured against when no
// [BCLR97] closed form applies.
//
// The search is heuristic (the objective need not be concave in the
// period vector) but deterministic; on the three [BCLR97] scenarios it
// reproduces the known optima to several digits, which the test suite
// pins down.
func GroundTruth(l lifefn.Life, c float64, opt GroundTruthOptions) (Result, error) {
	if !(c > 0) {
		return Result{}, fmt.Errorf("optimal: overhead must be positive, got %g", c)
	}
	horizon := l.Horizon()
	span := horizon
	if math.IsInf(horizon, 1) {
		span = 1.0
		for l.P(span) > 1e-12 && span < 1e12 {
			span *= 2
		}
	}
	if span <= c {
		return Result{}, nil
	}
	mMax := opt.MaxPeriods
	if mMax <= 0 {
		if math.IsInf(horizon, 1) {
			mMax = 64
		} else {
			mMax = int(math.Ceil(math.Sqrt(2*span/c+0.25)+0.5)) + 2
		}
	}
	sweeps := opt.Sweeps
	if sweeps <= 0 {
		sweeps = 40
	}

	eval := func(periods []float64) float64 {
		s, err := sched.New(periods...)
		if err != nil {
			return math.Inf(-1)
		}
		return sched.ExpectedWork(s, l, c)
	}

	best := Result{}
	stale := 0 // consecutive period counts with no improvement
	for m := 1; m <= mMax; m++ {
		periods := initialGuess(l, c, span, m)
		if periods == nil {
			continue
		}
		coordinateAscent(periods, eval, l, c, span, sweeps)
		if opt.Polish && m <= 24 {
			periods = nelderMeadPolish(periods, eval, c)
		}
		s, err := sched.New(periods...)
		if err != nil {
			continue
		}
		s = sched.Normalize(s, c)
		r := newResult(s, l, c)
		if r.ExpectedWork > best.ExpectedWork+1e-12 {
			best = r
			stale = 0
		} else {
			stale++
			if stale >= 6 && best.ExpectedWork > 0 {
				break // adding periods stopped helping
			}
		}
	}
	return best, nil
}

// initialGuess seeds m periods: a front-loaded geometric split of the
// usable span, every period strictly longer than c.
func initialGuess(l lifefn.Life, c, span float64, m int) []float64 {
	usable := span
	if usable <= float64(m)*c {
		return nil
	}
	periods := make([]float64, m)
	// Weights 2^{-i} front-load early periods, mimicking the decreasing
	// shape optimal schedules have for concave life functions.
	totalW := 0.0
	for i := 0; i < m; i++ {
		totalW += math.Pow(2, -float64(i)/4)
	}
	for i := 0; i < m; i++ {
		w := math.Pow(2, -float64(i)/4) / totalW
		periods[i] = c + (usable-float64(m)*c)*w
	}
	return periods
}

// coordinateAscent optimizes each period in turn by golden-section
// search on (c, remaining span], cycling until a sweep yields no
// improvement.
func coordinateAscent(periods []float64, eval func([]float64) float64, l lifefn.Life, c, span float64, sweeps int) {
	cur := eval(periods)
	for s := 0; s < sweeps; s++ {
		improved := false
		for i := range periods {
			others := 0.0
			for j, t := range periods {
				if j != i {
					others += t
				}
			}
			hi := span - others
			if math.IsInf(l.Horizon(), 1) {
				hi = periods[i] * 4 // local search window for unbounded horizons
			}
			if hi <= c {
				continue
			}
			orig := periods[i]
			x, fx, err := numeric.MaximizeScan(func(t float64) float64 {
				periods[i] = t
				return eval(periods)
			}, c*(1+1e-12), hi, 24, numeric.MaxOptions{Tol: 1e-11})
			if err != nil || fx <= cur+1e-13 {
				periods[i] = orig
				continue
			}
			periods[i] = x
			cur = fx
			improved = true
		}
		if !improved {
			break
		}
	}
}

// nelderMeadPolish refines the period vector in an unconstrained
// parametrization t_i = c + exp(x_i), which keeps every period
// productive by construction.
func nelderMeadPolish(periods []float64, eval func([]float64) float64, c float64) []float64 {
	x0 := make([]float64, len(periods))
	for i, t := range periods {
		x0[i] = math.Log(math.Max(t-c, 1e-9))
	}
	decoded := make([]float64, len(periods))
	decode := func(x []float64) []float64 {
		for i, v := range x {
			decoded[i] = c + math.Exp(v)
		}
		return decoded
	}
	xBest, _ := numeric.NelderMead(func(x []float64) float64 {
		return -eval(decode(x))
	}, x0, numeric.NelderMeadOptions{Tol: 1e-12, Step: 0.05})
	out := make([]float64, len(periods))
	copy(out, decode(xBest))
	if eval(out) >= eval(periods) {
		return out
	}
	return periods
}
