package optimal

import (
	"math"
	"testing"

	"repro/internal/lifefn"
	"repro/internal/sched"
)

func TestUniformOptimalStructure(t *testing.T) {
	l, _ := lifefn.NewUniform(1000)
	r, err := Uniform(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Schedule
	if s.Len() == 0 {
		t.Fatal("empty optimal schedule")
	}
	// Arithmetic structure t_k = t_0 - kc exhausting L exactly.
	for k := 1; k < s.Len(); k++ {
		if math.Abs(s.Period(k)-(s.Period(k-1)-1)) > 1e-9 {
			t.Fatalf("period %d not arithmetic", k)
		}
	}
	// The optimum may deliberately leave a sliver of the lifespan
	// unused (the paper's Section 2 remark), but never overruns it and
	// uses almost all of it.
	if s.Total() > 1000+1e-9 || s.Total() < 950 {
		t.Errorf("total = %g, want ≈ 1000 without overrun", s.Total())
	}
	// t0 near sqrt(2cL).
	if math.Abs(r.T0-math.Sqrt(2000)) > 2 {
		t.Errorf("t0 = %g, want ≈ %g", r.T0, math.Sqrt(2000))
	}
	// Period count matches the floor variant of Corollary 5.3.
	floorBound := int(math.Floor(math.Sqrt(2*1000/1.0+0.25) + 0.5))
	if d := s.Len() - floorBound; d < -1 || d > 0 {
		t.Errorf("m = %d, want ≈ %d", s.Len(), floorBound)
	}
}

func TestUniformOptimalBeatsNeighbours(t *testing.T) {
	// The chosen m must beat m-1 and m+1 period arithmetic schedules.
	l, _ := lifefn.NewUniform(500)
	c := 2.0
	r, err := Uniform(l, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{r.Schedule.Len() - 1, r.Schedule.Len() + 1} {
		if m < 1 {
			continue
		}
		t0 := 500/float64(m) + float64(m-1)*c/2
		periods := make([]float64, 0, m)
		ok := true
		for k := 0; k < m; k++ {
			p := t0 - float64(k)*c
			if p <= 0 {
				ok = false
				break
			}
			periods = append(periods, p)
		}
		if !ok {
			continue
		}
		s, err := sched.New(periods...)
		if err != nil {
			continue
		}
		if e := sched.ExpectedWork(s, l, c); e > r.ExpectedWork+1e-9 {
			t.Errorf("m=%d beats chosen m=%d: %g > %g", m, r.Schedule.Len(), e, r.ExpectedWork)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	l, _ := lifefn.NewUniform(0.5)
	r, err := Uniform(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schedule.Len() != 0 || r.ExpectedWork != 0 {
		t.Errorf("expected empty schedule for L < c, got %v", r.Schedule)
	}
	if _, err := Uniform(l, 0); err == nil {
		t.Error("c=0 accepted")
	}
}

func TestGeomDecreasingPeriodEquation(t *testing.T) {
	// The period must satisfy t + a^{-t}/ln a = c + 1/ln a exactly.
	for _, a := range []float64{math.Pow(2, 1.0/8), math.Pow(2, 1.0/32), 1.5} {
		l, _ := lifefn.NewGeomDecreasing(a)
		c := 1.0
		tStar, err := GeomDecreasingPeriod(l, c)
		if err != nil {
			t.Fatal(err)
		}
		lna := math.Log(a)
		res := tStar + math.Exp(-tStar*lna)/lna - c - 1/lna
		if math.Abs(res) > 1e-9 {
			t.Errorf("a=%g: residual %g", a, res)
		}
		if tStar <= c {
			t.Errorf("a=%g: t* = %g <= c", a, tStar)
		}
		// Inside the paper's Section 4.2 bounds.
		lo := math.Sqrt(c*c/4+c/lna) + c/2
		hi := c + 1/lna
		if tStar < lo-1e-9 || tStar > hi+1e-9 {
			t.Errorf("a=%g: t* = %g outside [%g, %g]", a, tStar, lo, hi)
		}
	}
}

func TestGeomDecreasingScheduleAndClosedForm(t *testing.T) {
	a := math.Pow(2, 1.0/16)
	l, _ := lifefn.NewGeomDecreasing(a)
	c := 1.0
	r, err := GeomDecreasing(l, c, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schedule.Len() < 10 {
		t.Fatalf("schedule too short: %d", r.Schedule.Len())
	}
	// All periods equal.
	t0 := r.Schedule.Period(0)
	for k := 1; k < r.Schedule.Len(); k++ {
		if r.Schedule.Period(k) != t0 {
			t.Fatal("periods not equal")
		}
	}
	// Truncated sum matches the closed form.
	exact := ExpectedWorkGeomDecreasing(l, c, t0)
	if math.Abs(r.ExpectedWork-exact) > 1e-6*exact {
		t.Errorf("E = %.12g, closed form %.12g", r.ExpectedWork, exact)
	}
}

func TestGeomDecreasingEqualPeriodIsBestAmongEqualPeriods(t *testing.T) {
	// t* must maximize the closed-form E over equal-period schedules.
	a := math.Pow(2, 1.0/16)
	l, _ := lifefn.NewGeomDecreasing(a)
	c := 1.0
	tStar, err := GeomDecreasingPeriod(l, c)
	if err != nil {
		t.Fatal(err)
	}
	eStar := ExpectedWorkGeomDecreasing(l, c, tStar)
	for _, dt := range []float64{-1, -0.1, -0.01, 0.01, 0.1, 1} {
		if e := ExpectedWorkGeomDecreasing(l, c, tStar+dt); e > eStar+1e-12 {
			t.Errorf("t*+%g beats t*: %g > %g", dt, e, eStar)
		}
	}
}

func TestGeomIncreasingRecurrence(t *testing.T) {
	l, _ := lifefn.NewGeomIncreasing(64)
	c := 1.0
	r, err := GeomIncreasing(l, c)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Schedule
	if s.Len() < 2 {
		t.Fatalf("schedule too short: %d", s.Len())
	}
	for k := 1; k < s.Len(); k++ {
		want := math.Log2(s.Period(k-1) - c + 2)
		if math.Abs(s.Period(k)-want) > 1e-9 {
			t.Fatalf("t_%d = %g, recurrence wants %g", k, s.Period(k), want)
		}
	}
	if s.Total() > 64+1e-9 {
		t.Errorf("schedule overruns lifespan: %g", s.Total())
	}
	if !(r.ExpectedWork > 0) {
		t.Error("no expected work")
	}
}

func TestGeomIncreasingDegenerate(t *testing.T) {
	l, _ := lifefn.NewGeomIncreasing(0.5)
	r, err := GeomIncreasing(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schedule.Len() != 0 {
		t.Error("expected empty schedule for L < c")
	}
}

func TestGroundTruthMatchesUniformClosedForm(t *testing.T) {
	l, _ := lifefn.NewUniform(200)
	c := 2.0
	closed, err := Uniform(l, c)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := GroundTruth(l, c, GroundTruthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gt.ExpectedWork < closed.ExpectedWork*(1-1e-3) {
		t.Errorf("ground truth E = %g below closed-form optimal %g", gt.ExpectedWork, closed.ExpectedWork)
	}
	if gt.ExpectedWork > closed.ExpectedWork*(1+1e-3) {
		t.Errorf("ground truth E = %g exceeds provably optimal %g — optimizer or closed form broken", gt.ExpectedWork, closed.ExpectedWork)
	}
}

func TestGroundTruthMatchesGeomIncreasing(t *testing.T) {
	l, _ := lifefn.NewGeomIncreasing(32)
	c := 1.0
	closed, err := GeomIncreasing(l, c)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := GroundTruth(l, c, GroundTruthOptions{Polish: true})
	if err != nil {
		t.Fatal(err)
	}
	// [BCLR97]'s doubling-risk recurrence comes from *unit* (discrete)
	// perturbations, so in the continuous model the ground truth may
	// legitimately edge past it by a fraction of a percent — but never
	// fall below it, and the two must agree in shape.
	if gt.ExpectedWork < closed.ExpectedWork*(1-1e-3) {
		t.Errorf("ground truth E = %g below [BCLR97] schedule %g", gt.ExpectedWork, closed.ExpectedWork)
	}
	if gt.ExpectedWork > closed.ExpectedWork*1.02 {
		t.Errorf("ground truth E = %g implausibly above [BCLR97] %g", gt.ExpectedWork, closed.ExpectedWork)
	}
}

func TestGroundTruthDegenerate(t *testing.T) {
	l, _ := lifefn.NewUniform(0.5)
	r, err := GroundTruth(l, 1, GroundTruthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Schedule.Len() != 0 {
		t.Error("expected empty result for L < c")
	}
	if _, err := GroundTruth(l, -1, GroundTruthOptions{}); err == nil {
		t.Error("negative c accepted")
	}
}
