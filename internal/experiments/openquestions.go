package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/report"
	"repro/internal/sched"
)

// RunE17 probes Section 6's uniqueness question: for each scenario, the
// E(t0) landscape over the guideline bracket is scanned for global-tied
// local maxima. Theorem 3.1 implies distinct optimal schedules must
// differ in t0, so a single surviving maximum supports the uniqueness
// conjecture for that configuration.
func RunE17() (*report.Table, error) {
	t := &report.Table{
		ID:      "E17",
		Title:   "Uniqueness probe (§6): global-tied local maxima of E(t0)",
		Columns: []string{"scenario", "c", "maxima", "t0.best", "E.best", "uniqueSupported"},
	}
	scenarios, err := scenarioSet()
	if err != nil {
		return nil, err
	}
	for _, sc := range scenarios {
		for _, c := range []float64{0.5, 1, 4} {
			pl, err := core.NewPlanner(sc.life, c, core.PlanOptions{})
			if err != nil {
				return nil, err
			}
			maxima, err := pl.T0Landscape(512, 1e-6)
			if err != nil {
				return nil, fmt.Errorf("E17 %s c=%g: %w", sc.name, c, err)
			}
			if len(maxima) == 0 {
				t.AddRow(sc.name, c, 0, "-", "-", false)
				continue
			}
			best := maxima[0]
			for _, m := range maxima {
				if m.E > best.E {
					best = m
				}
			}
			t.AddRow(sc.name, c, len(maxima), best.T0, best.E, len(maxima) == 1)
		}
	}
	t.AddNote("one surviving maximum per configuration supports the paper's uniqueness conjecture on all [BCLR97] scenarios (each is proved unique there by scenario-specific arguments)")
	return t, nil
}

// RunE18 measures model misspecification: the planner believes one life
// function while the owner follows another. Each cell is the expected
// work of the misinformed plan, evaluated under the truth, relative to
// the correctly informed plan — the operational risk of assuming the
// wrong risk curve, which the trace pipeline (E10) exists to avoid.
func RunE18() (*report.Table, error) {
	t := &report.Table{
		ID:      "E18",
		Title:   "Misspecification matrix: E(plan(assumed); truth) / E(plan(truth); truth)",
		Columns: []string{"truth \\ assumed", "uniform", "poly3", "geomdec", "geominc"},
	}
	// All scenarios share a comparable time scale (~mean lifetime 100).
	u, err := lifefn.NewUniform(200)
	if err != nil {
		return nil, err
	}
	p3, err := lifefn.NewPoly(3, 134) // mean lifetime = L·(1 - 1/(d+1)) ≈ 100
	if err != nil {
		return nil, err
	}
	gd, err := lifefn.NewGeomDecreasing(1.0100502) // mean 1/ln a ≈ 100
	if err != nil {
		return nil, err
	}
	gi, err := lifefn.NewGeomIncreasing(105) // mean ≈ L - log2(L) ≈ 98
	if err != nil {
		return nil, err
	}
	models := []namedLife{
		{"uniform", u}, {"poly3", p3}, {"geomdec", gd}, {"geominc", gi},
	}
	const c = 1.0
	plans := make(map[string]core.Plan, len(models))
	for _, m := range models {
		plan, err := guidelinePlan(m.life, c)
		if err != nil {
			return nil, fmt.Errorf("E18 planning on %s: %w", m.name, err)
		}
		plans[m.name] = plan
	}
	for _, truth := range models {
		row := []interface{}{truth.name}
		ref := sched.ExpectedWork(plans[truth.name].Schedule, truth.life, c)
		for _, assumed := range models {
			e := sched.ExpectedWork(plans[assumed.name].Schedule, truth.life, c)
			row = append(row, fmt.Sprintf("%.3f", ratio(e, ref)))
		}
		t.AddRow(row...)
	}
	t.AddNote("diagonal = 1 by construction; off-diagonal shows assuming constant risk (uniform) is the most forgiving error, while planning for a doubling-risk coffee break under a long memoryless reality forfeits the tail")
	return t, nil
}
