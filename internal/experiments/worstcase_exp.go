package experiments

import (
	"fmt"

	"repro/internal/core"

	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/optimal"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/worstcase"
)

// RunE19 previews the sequel's worst-case regime and its tension with
// this paper's expected-work regime: for a lifespan-L episode with up
// to q adversarial interruptions, compare the worst-case-optimal
// schedule (m equal periods, G* ≈ L - 2√(qcL) + qc) against the
// expected-work-optimal schedule for uniform risk, under both metrics.
func RunE19() (*report.Table, error) {
	t := &report.Table{
		ID:      "E19",
		Title:   "Worst-case (q interruptions) vs expected-work optimality: the price of robustness",
		Columns: []string{"q", "m.wc", "G.optimal", "G.closedForm", "G.expPlan", "E.wcPlan", "E.expPlan", "robustnessCost%", "guaranteeGain"},
	}
	const (
		L = 1000.0
		c = 1.0
	)
	u, err := lifefn.NewUniform(L)
	if err != nil {
		return nil, err
	}
	expOpt, err := optimal.Uniform(u, c)
	if err != nil {
		return nil, err
	}
	for _, q := range []int{1, 2, 4, 8, 16} {
		wc, err := worstcase.Optimal(L, c, q)
		if err != nil {
			return nil, fmt.Errorf("E19 q=%d: %w", q, err)
		}
		gExp := worstcase.GuaranteedWork(expOpt.Schedule, c, q)
		eWc := sched.ExpectedWork(wc.Schedule, u, c)
		costPct := 100 * (1 - ratio(eWc, expOpt.ExpectedWork))
		t.AddRow(q, wc.Periods, wc.Guaranteed, worstcase.ClosedFormGuarantee(L, c, q),
			gExp, eWc, expOpt.ExpectedWork, costPct, wc.Guaranteed-gExp)
	}
	t.AddNote("the worst-case plan gives up robustnessCost%% of expected work to raise the adversarial guarantee by guaranteeGain — the sequel's L-2√(qcL)+qc closed form sits within rounding of the integer optimum")
	return t, nil
}

// RunE20 runs the intro's data-parallel workload end to end on a
// heterogeneous farm (mixed owner behaviours AND mixed machine speeds)
// and compares chunking policies by makespan and borrowed-time
// efficiency — the system-level payoff of the per-episode guidelines.
func RunE20() (*report.Table, error) {
	t := &report.Table{
		ID:      "E20",
		Title:   "Heterogeneous farm: policy comparison end to end",
		Columns: []string{"policy", "makespan", "committed", "lost", "overheadTime", "efficiency%", "episodes"},
	}
	const (
		c         = 1.0
		taskCount = 3000
		seed      = 2026
	)
	type workerSpec struct {
		life  lifefn.Life
		speed float64
	}
	var specs []workerSpec
	for i := 0; i < 6; i++ {
		var l lifefn.Life
		var err error
		if i%2 == 0 {
			l, err = lifefn.NewGeomDecreasing(1.0 + 0.02*float64(i+1))
		} else {
			l, err = lifefn.NewUniform(120 + 60*float64(i))
		}
		if err != nil {
			return nil, err
		}
		specs = append(specs, workerSpec{life: l, speed: 0.5 + 0.5*float64(i%3)})
	}
	policies := []struct {
		name    string
		factory func(l lifefn.Life) (func() nowsim.Policy, error)
	}{
		{"guideline", func(l lifefn.Life) (func() nowsim.Policy, error) {
			plan, err := guidelinePlan(l, c)
			if err != nil {
				return nil, err
			}
			return func() nowsim.Policy { return nowsim.NewSchedulePolicy(plan.Schedule, "guideline") }, nil
		}},
		{"progressive", func(l lifefn.Life) (func() nowsim.Policy, error) {
			return func() nowsim.Policy {
				p, err := nowsim.NewProgressivePolicy(l, c, planOptsE20())
				if err != nil {
					return &nowsim.FixedChunkPolicy{Chunk: 20}
				}
				return p
			}, nil
		}},
		{"fixed-25", func(l lifefn.Life) (func() nowsim.Policy, error) {
			return func() nowsim.Policy { return &nowsim.FixedChunkPolicy{Chunk: 25} }, nil
		}},
		{"all-at-once-300", func(l lifefn.Life) (func() nowsim.Policy, error) {
			return func() nowsim.Policy { return &nowsim.FixedChunkPolicy{Chunk: 300} }, nil
		}},
	}
	for _, pol := range policies {
		workers := make([]nowsim.Worker, len(specs))
		ok := true
		for i, spec := range specs {
			factory, err := pol.factory(spec.life)
			if err != nil {
				ok = false
				break
			}
			workers[i] = nowsim.Worker{
				ID:    i,
				Owner: nowsim.LifeOwner{Life: spec.life},
				BusySampler: func(r *rng.Source) float64 {
					return r.Uniform(10, 40)
				},
				PolicyFactory: factory,
				Speed:         spec.speed,
			}
		}
		if !ok {
			continue
		}
		pool, err := nowsim.NewRandomTasks(taskCount, 0.5, 2.5, rng.New(seed))
		if err != nil {
			return nil, err
		}
		res, err := nowsim.RunFarm(nowsim.FarmConfig{
			Workers:  workers,
			Overhead: c,
			Seed:     seed,
			MaxTime:  1e7,
		}, pool)
		if err != nil {
			return nil, fmt.Errorf("E20 %s: %w", pol.name, err)
		}
		t.AddRow(pol.name, res.Makespan, res.CommittedWork, res.LostWork,
			res.OverheadTime, 100*res.Efficiency(), res.Episodes)
	}
	t.AddNote("guideline and progressive chunking dominate fixed rules on both makespan and borrowed-time efficiency; all-at-once drowns in lost work — the Section 1 tension at farm scale")
	t.AddNote("progressive reproduces the static guideline row exactly: with the true life function, conditional re-planning commutes with system (3.6); its payoff appears only under imperfect knowledge (E10, E18)")
	return t, nil
}

// planOptsE20 keeps the progressive policy's per-period re-planning
// affordable inside the farm loop.
func planOptsE20() core.PlanOptions { return core.PlanOptions{ScanPoints: 16, MaxPeriods: 500} }
