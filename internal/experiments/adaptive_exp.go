package experiments

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/report"
	"repro/internal/rng"
)

// RunE21 compares three knowledge regimes over a long run of episodes
// against the same owner: the oracle (guideline plan on the true life
// function), the model-free adaptive policy (learns a chunk size across
// episodes, no fitting), and a never-learning fixed policy started at
// the adaptive policy's initial estimate. Work is reported per quarter
// of the run — the adaptive learning curve.
func RunE21() (*report.Table, error) {
	t := &report.Table{
		ID:      "E21",
		Title:   "Learning across episodes: oracle vs adaptive vs frozen start",
		Columns: []string{"owner", "policy", "Q1", "Q2", "Q3", "Q4", "total", "final chunk"},
	}
	gd, err := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/16))
	if err != nil {
		return nil, err
	}
	u, err := lifefn.NewUniform(120)
	if err != nil {
		return nil, err
	}
	const (
		c        = 1.0
		episodes = 2000
	)
	for _, owner := range []namedLife{{"geomdec(hl=16)", gd}, {"uniform(L=120)", u}} {
		// One shared reclaim sequence per owner: every policy faces the
		// same reality.
		src := rng.New(777)
		sampler := nowsim.LifeOwner{Life: owner.life}
		reclaims := make([]float64, episodes)
		for i := range reclaims {
			reclaims[i] = sampler.ReclaimAfter(src)
		}
		plan, err := guidelinePlan(owner.life, c)
		if err != nil {
			return nil, fmt.Errorf("E21 %s: %w", owner.name, err)
		}
		adaptive, err := baseline.NewAdaptive(baseline.AdaptiveOptions{Initial: 150})
		if err != nil {
			return nil, err
		}
		type contender struct {
			name   string
			policy nowsim.Policy
			learns bool
		}
		contenders := []contender{
			{"oracle (guideline)", nowsim.NewSchedulePolicy(plan.Schedule, "oracle"), false},
			{"adaptive (from 150)", adaptive, true},
			{"frozen (150)", &nowsim.FixedChunkPolicy{Chunk: 150}, false},
		}
		for _, cd := range contenders {
			quarters := [4]float64{}
			for i, r := range reclaims {
				res := nowsim.RunEpisode(cd.policy, c, r)
				if cd.learns {
					adaptive.ObserveCommitted(res.PeriodsCommitted)
				}
				quarters[i*4/episodes] += res.Work
			}
			total := quarters[0] + quarters[1] + quarters[2] + quarters[3]
			chunk := "-"
			if cd.learns {
				chunk = fmt.Sprintf("%.1f", adaptive.Chunk())
			}
			t.AddRow(owner.name, cd.name, quarters[0], quarters[1], quarters[2], quarters[3], total, chunk)
		}
	}
	t.AddNote("adaptive's quarters climb toward the oracle while the frozen policy stays at its floor — model-free learning recovers most of the value of knowing p, without traces or fitting")
	return t, nil
}
