package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/report"
)

// RunE5 checks the Section 5 structural laws on guideline schedules for
// every scenario: the Theorem 5.2 growth rates, Corollary 5.1 strict
// decrease (concave), the Corollary 5.2 and 5.3 period-count bounds and
// the Corollary 5.4 t0 bound.
func RunE5() (*report.Table, error) {
	t := &report.Table{
		ID:      "E5",
		Title:   "Structural laws (Thm 5.2, Cors 5.1-5.4) on guideline schedules",
		Columns: []string{"scenario", "shape", "m", "bound.cor53", "bound.cor52", "growthLaw", "strictDecrease", "t0", "bound.cor54"},
	}
	scenarios, err := scenarioSet()
	if err != nil {
		return nil, err
	}
	for _, sc := range scenarios {
		c := 1.0
		plan, err := guidelinePlan(sc.life, c)
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", sc.name, err)
		}
		shape := sc.life.Shape()
		growth := "ok"
		if err := core.CheckGrowthRate(plan.Schedule, shape, c, 1e-6); err != nil {
			growth = "VIOLATED"
		}
		decrease := "n/a"
		if shape.IsConcave() {
			decrease = "ok"
			if err := core.CheckStrictlyDecreasing(plan.Schedule, 1e-9); err != nil {
				decrease = "VIOLATED"
			}
		}
		cor53 := "n/a"
		cor54 := "n/a"
		horizon := sc.life.Horizon()
		if shape.IsConcave() && !math.IsInf(horizon, 1) {
			cor53 = fmt.Sprintf("%d", core.MaxPeriodsConcave(horizon, c))
			cor54 = fmt.Sprintf("%.6g", core.T0LowerFromPeriods(horizon, c, plan.Schedule.Len()))
		}
		t.AddRow(sc.name, shape.String(), plan.Schedule.Len(), cor53,
			core.MaxPeriodsFromT0(plan.T0, c), growth, decrease, plan.T0, cor54)
	}
	t.AddNote("for concave scenarios m must stay below bound.cor53 and t0 at or above bound.cor54; the uniform scenario attains both")
	return t, nil
}

// RunE6 validates equation (2.1): the Monte-Carlo mean committed work of
// the discrete-event simulator must match the analytic E(S; p) within
// confidence intervals, for every scenario.
func RunE6() (*report.Table, error) {
	t := &report.Table{
		ID:      "E6",
		Title:   "Monte-Carlo validation of E(S;p) (100k episodes per scenario)",
		Columns: []string{"scenario", "E.analytic", "E.montecarlo", "ci95", "z", "chi2.p", "reclaimedFrac"},
	}
	scenarios, err := scenarioSet()
	if err != nil {
		return nil, err
	}
	const episodes = 100_000
	c := 1.0
	for i, sc := range scenarios {
		plan, err := guidelinePlan(sc.life, c)
		if err != nil {
			return nil, fmt.Errorf("E6 %s: %w", sc.name, err)
		}
		analytic, mc, z := nowsim.ValidateExpectedWork(plan.Schedule, sc.life, c, episodes, 1000+uint64(i))
		_, chiP, err := nowsim.ValidateDistribution(plan.Schedule, sc.life, c, episodes, 5000+uint64(i), 10)
		if err != nil {
			return nil, fmt.Errorf("E6 chi-square %s: %w", sc.name, err)
		}
		res := nowsim.MonteCarlo(nowsim.NewSchedulePolicy(plan.Schedule, sc.name),
			nowsim.LifeOwner{Life: sc.life}, c, 10_000, 77+uint64(i))
		t.AddRow(sc.name, analytic, mc.Mean, mc.CI95, z, chiP,
			float64(res.Reclaimed)/float64(res.Episodes))
	}
	t.AddNote("z is the standardized difference between simulation and theory; |z| < 4 on 100k episodes validates the mean identity")
	t.AddNote("chi2.p tests the FULL distribution of committed-period counts against sched.CommitProbabilities — a non-vanishing p-value validates the simulator beyond the mean")
	return t, nil
}

// RunE11 exercises Theorem 5.1: guideline schedules for concave life
// functions must beat every sampled delta-perturbation.
func RunE11() (*report.Table, error) {
	t := &report.Table{
		ID:      "E11",
		Title:   "Local optimality: guideline schedules vs [k,±δ]-perturbations",
		Columns: []string{"scenario", "pairs", "deltasTried", "violations", "worstGain"},
	}
	scenarios, err := scenarioSet()
	if err != nil {
		return nil, err
	}
	deltas := []float64{1e-3, 1e-2, 0.1, 0.5, 1, 2}
	for _, sc := range scenarios {
		if !sc.life.Shape().IsConcave() {
			continue // Theorem 5.1 is proved for concave life functions
		}
		plan, err := guidelinePlan(sc.life, 1)
		if err != nil {
			return nil, fmt.Errorf("E11 %s: %w", sc.name, err)
		}
		viol := core.CheckLocalOptimality(plan.Schedule, sc.life, 1, deltas, 1e-9)
		worst := 0.0
		for _, v := range viol {
			if v.Gain > worst {
				worst = v.Gain
			}
		}
		t.AddRow(sc.name, plan.Schedule.Len()-1, len(deltas)*2, len(viol), worst)
	}
	t.AddNote("0 violations = no perturbation of any adjacent period pair improves expected work (Theorem 5.1)")
	return t, nil
}

// RunE8 runs the existence experiment on the power-law family,
// reporting both the literal Corollary 3.2 scan and the tail reading
// under which the paper's d > 1 conclusion follows, plus the
// best-effort guideline expected work (the sup the family approaches).
func RunE8() (*report.Table, error) {
	t := &report.Table{
		ID:      "E8",
		Title:   "Existence test on p(t)=(1+t)^{-d} (Cor 3.2)",
		Columns: []string{"d", "literalWitness", "tailMarginFails", "hazardFades", "admitsOptimal", "E.bestEffort"},
	}
	for _, d := range []float64{0.5, 1, 1.5, 2, 3} {
		p, err := lifefn.NewPowerLaw(d)
		if err != nil {
			return nil, err
		}
		c := 1.0
		_, literal := core.ExistsProductive(p, c)
		tail := core.TailMarginFails(p, c)
		fades := core.HazardDecreasing(p, c)
		ad, err := core.AdmitsOptimal(p, c, core.PlanOptions{MaxPeriods: 4000})
		if err != nil {
			return nil, fmt.Errorf("E8 d=%g: %w", d, err)
		}
		t.AddRow(d, literal, tail, fades, ad.Admits, ad.BestPlan.ExpectedWork)
	}
	t.AddNote("the literal Cor 3.2 inequality holds near c for every d (1+t > d(t-c) just above c); the paper's 'd>1 admits no optimal schedule' follows under the tail reading — see DESIGN.md")
	t.AddNote("E.bestEffort for inadmissible d is the supremum the system-(3.6) family approaches at its singular t0")
	return t, nil
}
