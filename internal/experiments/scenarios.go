package experiments

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/optimal"
	"repro/internal/report"
	"repro/internal/sched"
)

// RunE1 reproduces the Section 4.1 uniform-risk comparison: the paper's
// explicit bracket (4.4) sqrt(cL) <= t0 <= 2 sqrt(cL)+1, the optimum
// (4.5) t0 ≈ sqrt(2cL) of [BCLR97], and the expected-work ratio between
// the guideline schedule and the provably optimal one.
func RunE1() (*report.Table, error) {
	t := &report.Table{
		ID:      "E1",
		Title:   "Uniform risk p(t)=1-t/L: guideline vs [BCLR97] optimal",
		Columns: []string{"c", "L", "paperLo", "paperHi", "t0.guideline", "t0.optimal", "sqrt(2cL)", "E.guideline", "E.optimal", "E.ratio", "m.g", "m.opt"},
	}
	for _, c := range []float64{1, 2, 5, 10} {
		for _, L := range []float64{100, 1000, 10000} {
			l, err := lifefn.NewUniform(L)
			if err != nil {
				return nil, err
			}
			pl, err := core.NewPlanner(l, c, core.PlanOptions{})
			if err != nil {
				return nil, err
			}
			plan, err := pl.PlanBest()
			if err != nil {
				return nil, fmt.Errorf("E1 c=%g L=%g: %w", c, L, err)
			}
			opt, err := optimal.Uniform(l, c)
			if err != nil {
				return nil, err
			}
			paper := core.UniformT0Bounds(c, L)
			t.AddRow(c, L, paper.Lo, paper.Hi, plan.T0, opt.T0, math.Sqrt(2*c*L),
				plan.ExpectedWork, opt.ExpectedWork, ratio(plan.ExpectedWork, opt.ExpectedWork),
				plan.Schedule.Len(), opt.Schedule.Len())
		}
	}
	t.AddNote("paper bracket (4.4) must contain both t0 columns; E.ratio ≈ 1 shows the guidelines match the ad-hoc optimum")
	return t, nil
}

// RunE2 reproduces the general-d part of Section 4.1: the simplified
// bracket (c/d)^{1/(d+1)} L^{d/(d+1)} <= t0 <= 2·(same) + 1, with the
// scenario-agnostic ground-truth optimizer as the reference (no
// [BCLR97] closed form exists for d > 1).
func RunE2() (*report.Table, error) {
	t := &report.Table{
		ID:      "E2",
		Title:   "Family p_{d,L}(t)=1-t^d/L^d: t0 scaling and guideline quality",
		Columns: []string{"d", "c", "L", "paperLo", "paperHi", "t0.guideline", "E.guideline", "E.groundtruth", "E.ratio", "m"},
	}
	for _, d := range []int{1, 2, 3, 4, 5} {
		for _, cfg := range []struct{ c, L float64 }{{1, 1000}, {5, 1000}, {2, 4000}} {
			l, err := lifefn.NewPoly(d, cfg.L)
			if err != nil {
				return nil, err
			}
			pl, err := core.NewPlanner(l, cfg.c, core.PlanOptions{})
			if err != nil {
				return nil, err
			}
			plan, err := pl.PlanBest()
			if err != nil {
				return nil, fmt.Errorf("E2 d=%d: %w", d, err)
			}
			gt, err := optimal.GroundTruth(l, cfg.c, optimal.GroundTruthOptions{Sweeps: 12})
			if err != nil {
				return nil, err
			}
			paper := core.PolyT0Bounds(d, cfg.c, cfg.L)
			t.AddRow(d, cfg.c, cfg.L, paper.Lo, paper.Hi, plan.T0,
				plan.ExpectedWork, gt.ExpectedWork, ratio(plan.ExpectedWork, gt.ExpectedWork),
				plan.Schedule.Len())
		}
	}
	t.AddNote("E.ratio ≈ 1 against a guideline-free coordinate-ascent optimizer; t0 follows the (c/d)^{1/(d+1)}·L^{d/(d+1)} scaling")
	return t, nil
}

// RunE3 reproduces Section 4.2: the t0 bounds
// sqrt(c²/4 + c/ln a) + c/2 <= t0 <= c + 1/ln a (the paper notes the
// upper bound nearly touches the optimum), the [BCLR97] equal-period
// optimum, and the Section 6 claim that greedy is optimal here.
func RunE3() (*report.Table, error) {
	t := &report.Table{
		ID:      "E3",
		Title:   "Geometrically decreasing lifespan p_a(t)=a^{-t}",
		Columns: []string{"halfLife", "c", "boundLo", "boundHi", "t*.optimal", "t0.guideline", "t0.greedy", "E.guideline", "E.optimal", "E.ratio", "hi-t*"},
	}
	for _, hl := range []float64{8, 16, 32, 64} {
		for _, c := range []float64{0.5, 1, 2} {
			a := math.Pow(2, 1/hl)
			l, err := lifefn.NewGeomDecreasing(a)
			if err != nil {
				return nil, err
			}
			bounds := core.GeomDecT0Bounds(a, c)
			tStar, err := optimal.GeomDecreasingPeriod(l, c)
			if err != nil {
				return nil, err
			}
			eStar := optimal.ExpectedWorkGeomDecreasing(l, c, tStar)
			pl, err := core.NewPlanner(l, c, core.PlanOptions{})
			if err != nil {
				return nil, err
			}
			plan, err := pl.PlanBest()
			if err != nil {
				return nil, fmt.Errorf("E3 hl=%g c=%g: %w", hl, c, err)
			}
			greedy, err := baseline.Greedy(l, c, baseline.GreedyOptions{})
			if err != nil {
				return nil, err
			}
			t.AddRow(hl, c, bounds.Lo, bounds.Hi, tStar, plan.T0, greedy.Period(0),
				plan.ExpectedWork, eStar, ratio(plan.ExpectedWork, eStar), bounds.Hi-tStar)
		}
	}
	t.AddNote("hi-t* shows how close the paper's upper bound c+1/ln a sits to the optimum; t0.greedy = c+1/ln a exactly (greedy is optimal here, §6)")
	return t, nil
}

// RunE4 reproduces Section 4.3: the guideline recurrence (4.7) against
// [BCLR97]'s t_{k+1} = log2(t_k - c + 2), and the paper's 2^L window
// for t0. The [BCLR97] recurrence stems from unit (discrete)
// perturbations, so in the continuous model the guideline schedule may
// edge slightly past it.
func RunE4() (*report.Table, error) {
	t := &report.Table{
		ID:      "E4",
		Title:   "Geometrically increasing risk p(t)=(2^L-2^t)/(2^L-1)",
		Columns: []string{"L", "c", "windowLo", "windowHi", "t0.guideline", "t0.bclr", "E.guideline", "E.bclr", "E.ratio", "m.g", "m.bclr"},
	}
	for _, L := range []float64{16, 32, 64, 128} {
		for _, c := range []float64{0.5, 1, 2} {
			l, err := lifefn.NewGeomIncreasing(L)
			if err != nil {
				return nil, err
			}
			window, err := core.GeomIncT0Window(L)
			if err != nil {
				return nil, err
			}
			pl, err := core.NewPlanner(l, c, core.PlanOptions{})
			if err != nil {
				return nil, err
			}
			plan, err := pl.PlanBest()
			if err != nil {
				return nil, fmt.Errorf("E4 L=%g c=%g: %w", L, c, err)
			}
			bclr, err := optimal.GeomIncreasing(l, c)
			if err != nil {
				return nil, err
			}
			t.AddRow(L, c, window.Lo, window.Hi, plan.T0, bclr.T0,
				plan.ExpectedWork, bclr.ExpectedWork, ratio(plan.ExpectedWork, bclr.ExpectedWork),
				plan.Schedule.Len(), bclr.Schedule.Len())
		}
	}
	t.AddNote("window is the paper's 2^{t0/2}t0² <= 2^L <= 2^{t0}t0² bracket (low-order terms dropped); E.ratio >= 1 is expected — [BCLR97]'s recurrence is discretely, not continuously, stationary")
	return t, nil
}

// guidelinePlan is a helper building a guideline plan for a scenario.
func guidelinePlan(l lifefn.Life, c float64) (core.Plan, error) {
	pl, err := core.NewPlanner(l, c, core.PlanOptions{})
	if err != nil {
		return core.Plan{}, err
	}
	return pl.PlanBest()
}

// scenarioSet returns the standard trio of [BCLR97] scenarios plus a
// steeper polynomial, for the structural and validation experiments.
func scenarioSet() ([]namedLife, error) {
	u, err := lifefn.NewUniform(1000)
	if err != nil {
		return nil, err
	}
	p3, err := lifefn.NewPoly(3, 1000)
	if err != nil {
		return nil, err
	}
	gd, err := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/32))
	if err != nil {
		return nil, err
	}
	gi, err := lifefn.NewGeomIncreasing(64)
	if err != nil {
		return nil, err
	}
	return []namedLife{
		{"uniform(L=1000)", u},
		{"poly(d=3,L=1000)", p3},
		{"geomdec(hl=32)", gd},
		{"geominc(L=64)", gi},
	}, nil
}

type namedLife struct {
	name string
	life lifefn.Life
}

// optimalFor returns the [BCLR97] optimal result for the three known
// scenarios and the ground-truth optimizer otherwise.
func optimalFor(l lifefn.Life, c float64) (optimal.Result, error) {
	switch f := l.(type) {
	case lifefn.Uniform:
		return optimal.Uniform(f, c)
	case lifefn.GeomDecreasing:
		return optimal.GeomDecreasing(f, c, 1e-12, 0)
	case lifefn.GeomIncreasing:
		return optimal.GeomIncreasing(f, c)
	default:
		return optimal.GroundTruth(l, c, optimal.GroundTruthOptions{})
	}
}

var _ = sched.Schedule{}
