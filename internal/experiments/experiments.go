// Package experiments regenerates every evaluation artifact of the
// paper (the Section 4 scenario comparisons and the Section 5
// structural claims), as identified E1–E11 in DESIGN.md. Each
// experiment returns a report.Table so that cmd/csbench, the test
// suite, the benchmarks and EXPERIMENTS.md all share one source of
// truth.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/report"
)

// Experiment is one reproducible evaluation artifact.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E1").
	ID string
	// Title is a one-line description.
	Title string
	// Source cites the paper section the experiment reproduces.
	Source string
	// Run produces the table. Implementations are deterministic.
	Run func() (*report.Table, error)
}

// All returns every experiment in id order.
func All() []Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "Uniform risk: guideline vs optimal (d=1)", Source: "§4.1, eqs. (4.1), (4.4), (4.5)", Run: RunE1},
		{ID: "E2", Title: "Polynomial family p_{d,L}: t0 scaling and E ratios", Source: "§4.1, eqs. (4.2), (4.3)", Run: RunE2},
		{ID: "E3", Title: "Geometrically decreasing lifespan: bounds and greedy optimality", Source: "§4.2, eq. (4.6); §6", Run: RunE3},
		{ID: "E4", Title: "Geometrically increasing risk: guideline vs [BCLR97] recurrence", Source: "§4.3, eq. (4.7)", Run: RunE4},
		{ID: "E5", Title: "Structural laws of optimal schedules", Source: "Thm 5.2, Cors 5.1–5.4", Run: RunE5},
		{ID: "E6", Title: "Monte-Carlo validation of E(S;p)", Source: "eq. (2.1)", Run: RunE6},
		{ID: "E7", Title: "Policy sweep: who wins at which overhead", Source: "§1 motivation, §6 greedy", Run: RunE7},
		{ID: "E8", Title: "Existence of optimal schedules (power-law family)", Source: "Cor 3.2", Run: RunE8},
		{ID: "E9", Title: "Checkpointing application (scheduling saves)", Source: "§1 Remark / [7]", Run: RunE9},
		{ID: "E10", Title: "Trace-fitted life functions: fit error and schedule regret", Source: "§1, §6 (conditional probabilities)", Run: RunE10},
		{ID: "E11", Title: "Local optimality under perturbations", Source: "Thm 5.1", Run: RunE11},
		{ID: "E12", Title: "Discrete analogue: integer DP vs rounded guideline", Source: "§6 open question", Run: RunE12},
		{ID: "E13", Title: "Worst-case competitive ratios (risk-oblivious)", Source: "§1 sequel teaser; related work [2]", Run: RunE13},
		{ID: "E14", Title: "Multimodal mixture life functions", Source: "§2 model scope (shape-free results)", Run: RunE14},
		{ID: "E15", Title: "Task granularity vs the fluid model", Source: "§2 task-duration assumption", Run: RunE15},
		{ID: "E16", Title: "Ablation: planner design choices", Source: "implementation (DESIGN.md §5)", Run: RunE16},
		{ID: "E17", Title: "Uniqueness probe: local maxima of E(t0)", Source: "§6 open question", Run: RunE17},
		{ID: "E18", Title: "Misspecification matrix", Source: "§1/§6 approximate-knowledge claim", Run: RunE18},
		{ID: "E19", Title: "Worst-case vs expected optimality (sequel preview)", Source: "§1 sequel teaser; [BCLR97] adversarial half", Run: RunE19},
		{ID: "E20", Title: "Heterogeneous farm end to end", Source: "§1 motivation", Run: RunE20},
		{ID: "E21", Title: "Model-free adaptive chunking: learning curve", Source: "§6 (beyond: no-knowledge regime)", Run: RunE21},
		{ID: "E22", Title: "Robust planning on Greenwood bands", Source: "§1 approximate knowledge (robust variant)", Run: RunE22},
	}
	sort.Slice(exps, func(i, j int) bool { return lessID(exps[i].ID, exps[j].ID) })
	return exps
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

func lessID(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
