package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("expected 22 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Run == nil || e.Title == "" || e.Source == "" {
			t.Errorf("%s: incomplete registration", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for i := 1; i <= 22; i++ {
		if !seen["E"+strconv.Itoa(i)] {
			t.Errorf("missing E%d", i)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E3")
	if err != nil || e.ID != "E3" {
		t.Errorf("ByID(E3) = %v, %v", e.ID, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// cell finds the column index by header name.
func colIndex(t *testing.T, cols []string, name string) int {
	t.Helper()
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	t.Fatalf("column %q not found in %v", name, cols)
	return -1
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", s, err)
	}
	return v
}

func TestE1GuidelineMatchesOptimal(t *testing.T) {
	tbl, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	ratioCol := colIndex(t, tbl.Columns, "E.ratio")
	loCol := colIndex(t, tbl.Columns, "paperLo")
	hiCol := colIndex(t, tbl.Columns, "paperHi")
	t0Col := colIndex(t, tbl.Columns, "t0.guideline")
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range tbl.Rows {
		if r := parseF(t, row[ratioCol]); r < 0.995 || r > 1.005 {
			t.Errorf("E ratio %g off unity in row %v", r, row)
		}
		t0 := parseF(t, row[t0Col])
		if t0 < parseF(t, row[loCol])-1e-9 || t0 > parseF(t, row[hiCol])+1e-9 {
			t.Errorf("guideline t0 %g outside paper bracket in row %v", t0, row)
		}
	}
}

func TestE3UpperBoundNearOptimalAndGreedyMatches(t *testing.T) {
	tbl, err := RunE3()
	if err != nil {
		t.Fatal(err)
	}
	ratioCol := colIndex(t, tbl.Columns, "E.ratio")
	greedyCol := colIndex(t, tbl.Columns, "t0.greedy")
	hiCol := colIndex(t, tbl.Columns, "boundHi")
	for _, row := range tbl.Rows {
		if r := parseF(t, row[ratioCol]); r < 0.999 || r > 1.001 {
			t.Errorf("guideline/optimal ratio %g in row %v", r, row)
		}
		// Section 6: the greedy first period maximizes (t-c)a^{-t},
		// which equals the paper's upper bound c + 1/ln a.
		g, hi := parseF(t, row[greedyCol]), parseF(t, row[hiCol])
		if abs(g-hi) > 1e-2*hi {
			t.Errorf("greedy t0 %g != paper upper bound %g", g, hi)
		}
	}
}

func TestE4GuidelineAtLeastBCLR(t *testing.T) {
	tbl, err := RunE4()
	if err != nil {
		t.Fatal(err)
	}
	ratioCol := colIndex(t, tbl.Columns, "E.ratio")
	for _, row := range tbl.Rows {
		if r := parseF(t, row[ratioCol]); r < 0.999 || r > 1.05 {
			t.Errorf("E ratio %g outside [1, 1.05) band in row %v", r, row)
		}
	}
}

func TestE5NoViolations(t *testing.T) {
	tbl, err := RunE5()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		for _, cell := range row {
			if strings.Contains(cell, "VIOLATED") {
				t.Errorf("structural violation in row %v", row)
			}
		}
	}
}

func TestE8VerdictsMatchPaper(t *testing.T) {
	tbl, err := RunE8()
	if err != nil {
		t.Fatal(err)
	}
	dCol := colIndex(t, tbl.Columns, "d")
	admitCol := colIndex(t, tbl.Columns, "admitsOptimal")
	for _, row := range tbl.Rows {
		d := parseF(t, row[dCol])
		admits := row[admitCol] == "yes"
		if d > 1 && admits {
			t.Errorf("d=%g decided admissible", d)
		}
		if d <= 1 && !admits {
			t.Errorf("d=%g decided inadmissible", d)
		}
	}
}

func TestE11NoImprovingPerturbations(t *testing.T) {
	tbl, err := RunE11()
	if err != nil {
		t.Fatal(err)
	}
	vCol := colIndex(t, tbl.Columns, "violations")
	for _, row := range tbl.Rows {
		if row[vCol] != "0" {
			t.Errorf("perturbation violations in row %v", row)
		}
	}
}

func TestE12RoundingLossTiny(t *testing.T) {
	tbl, err := RunE12()
	if err != nil {
		t.Fatal(err)
	}
	lossCol := colIndex(t, tbl.Columns, "roundLoss%")
	for _, row := range tbl.Rows {
		if loss := parseF(t, row[lossCol]); loss > 0.5 {
			t.Errorf("rounding loss %g%% too large in row %v", loss, row)
		}
	}
}

func TestE13ConstantCompetitive(t *testing.T) {
	tbl, err := RunE13()
	if err != nil {
		t.Fatal(err)
	}
	randCol := colIndex(t, tbl.Columns, "rho.randomized")
	aaoCol := colIndex(t, tbl.Columns, "allAtOnce")
	var first float64
	for i, row := range tbl.Rows {
		rho := parseF(t, row[randCol])
		if i == 0 {
			first = rho
		}
		if abs(rho-first) > 0.05 {
			t.Errorf("randomized ratio drifts with horizon: %g vs %g", rho, first)
		}
		if parseF(t, row[aaoCol]) != 0 {
			t.Errorf("all-at-once not 0-competitive in row %v", row)
		}
	}
}

func TestE14GuidelineNearGroundTruth(t *testing.T) {
	tbl, err := RunE14()
	if err != nil {
		t.Fatal(err)
	}
	ratioCol := colIndex(t, tbl.Columns, "E.ratio")
	for _, row := range tbl.Rows {
		if r := parseF(t, row[ratioCol]); r < 0.99 {
			t.Errorf("guideline falls below 99%% of ground truth in row %v", row)
		}
	}
}

func TestE15FillFractionMonotone(t *testing.T) {
	tbl, err := RunE15()
	if err != nil {
		t.Fatal(err)
	}
	fillCol := colIndex(t, tbl.Columns, "fillFraction")
	first := parseF(t, tbl.Rows[0][fillCol])
	last := parseF(t, tbl.Rows[len(tbl.Rows)-1][fillCol])
	if first < 0.97 {
		t.Errorf("fine-grained fill fraction %g should approach 1", first)
	}
	if last > first {
		t.Errorf("coarse tasks (%g) should fill worse than fine ones (%g)", last, first)
	}
}

func TestE17UniquenessSupported(t *testing.T) {
	tbl, err := RunE17()
	if err != nil {
		t.Fatal(err)
	}
	col := colIndex(t, tbl.Columns, "uniqueSupported")
	for _, row := range tbl.Rows {
		if row[col] != "yes" {
			t.Errorf("uniqueness not supported in row %v", row)
		}
	}
}

func TestE18DiagonalOptimal(t *testing.T) {
	tbl, err := RunE18()
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal is 1 by construction; every off-diagonal entry must be
	// <= 1 + tolerance (no misinformed plan may beat the informed one).
	for i, row := range tbl.Rows {
		for j := 1; j < len(row); j++ {
			v := parseF(t, row[j])
			if j-1 == i {
				if abs(v-1) > 1e-9 {
					t.Errorf("diagonal cell (%d,%d) = %g", i, j, v)
				}
			} else if v > 1+1e-6 {
				t.Errorf("misinformed plan beats informed one at (%d,%d): %g", i, j, v)
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
