package experiments

import (
	"strings"
	"testing"
)

func TestE2GuidelineNearGroundTruth(t *testing.T) {
	tbl, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	ratioCol := colIndex(t, tbl.Columns, "E.ratio")
	for _, row := range tbl.Rows {
		r := parseF(t, row[ratioCol])
		// The guideline may slightly beat the heuristic ground truth;
		// it must never fall behind materially.
		if r < 0.995 || r > 1.05 {
			t.Errorf("E ratio %g outside [0.995, 1.05] in row %v", r, row)
		}
	}
}

func TestE6SimulatorValidated(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-episode validation skipped in -short mode")
	}
	tbl, err := RunE6()
	if err != nil {
		t.Fatal(err)
	}
	zCol := colIndex(t, tbl.Columns, "z")
	pCol := colIndex(t, tbl.Columns, "chi2.p")
	for _, row := range tbl.Rows {
		if z := parseF(t, row[zCol]); z > 4.5 {
			t.Errorf("mean validation z = %g in row %v", z, row)
		}
		if p := parseF(t, row[pCol]); p < 1e-4 {
			t.Errorf("distribution validation p = %g in row %v", p, row)
		}
	}
}

func TestE7GuidelineDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("policy sweep skipped in -short mode")
	}
	tbl, err := RunE7()
	if err != nil {
		t.Fatal(err)
	}
	gCol := colIndex(t, tbl.Columns, "guideline")
	aCol := colIndex(t, tbl.Columns, "allAtOnce")
	for _, row := range tbl.Rows {
		if row[gCol] == "-" {
			continue
		}
		if g := parseF(t, row[gCol]); g < 0.99 {
			t.Errorf("guideline at %s of optimal in row %v", row[gCol], row)
		}
		if row[aCol] != "-" {
			if a := parseF(t, row[aCol]); a > 0.2 {
				t.Errorf("all-at-once suspiciously good (%g) in row %v", a, row)
			}
		}
	}
}

func TestE9GuidelineBeatsBadFixed(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint Monte-Carlo skipped in -short mode")
	}
	tbl, err := RunE9()
	if err != nil {
		t.Fatal(err)
	}
	polCol := colIndex(t, tbl.Columns, "policy")
	mkCol := colIndex(t, tbl.Columns, "makespan.mean")
	failCol := colIndex(t, tbl.Columns, "failure")
	best := map[string]float64{}
	worstFixed := map[string]float64{}
	for _, row := range tbl.Rows {
		mk := parseF(t, row[mkCol])
		key := row[failCol]
		switch {
		case row[polCol] == "guideline":
			best[key] = mk
		case strings.HasPrefix(row[polCol], "fixed(rare") || strings.HasPrefix(row[polCol], "fixed(frantic"):
			if mk > worstFixed[key] {
				worstFixed[key] = mk
			}
		}
	}
	for key, g := range best {
		if w, ok := worstFixed[key]; !ok || g >= w {
			t.Errorf("%s: guideline makespan %g not better than bad fixed %g", key, g, w)
		}
	}
}

func TestE10RegretShrinksWithTrace(t *testing.T) {
	tbl, err := RunE10()
	if err != nil {
		t.Fatal(err)
	}
	nCol := colIndex(t, tbl.Columns, "sessions")
	rCol := colIndex(t, tbl.Columns, "regret.km%")
	// Within each truth block, the largest-n regret must be below the
	// smallest-n regret (monotonicity up to noise is too strict).
	type pair struct{ small, large float64 }
	blocks := map[string]*pair{}
	tCol := colIndex(t, tbl.Columns, "truth")
	for _, row := range tbl.Rows {
		b, ok := blocks[row[tCol]]
		if !ok {
			b = &pair{}
			blocks[row[tCol]] = b
		}
		n := parseF(t, row[nCol])
		r := parseF(t, row[rCol])
		if n == 50 {
			b.small = r
		}
		if n == 5000 {
			b.large = r
		}
	}
	for truth, b := range blocks {
		if b.large >= b.small {
			t.Errorf("%s: regret did not shrink from n=50 (%g%%) to n=5000 (%g%%)", truth, b.small, b.large)
		}
	}
}

func TestE16ReferenceQuality(t *testing.T) {
	tbl, err := RunE16()
	if err != nil {
		t.Fatal(err)
	}
	rCol := colIndex(t, tbl.Columns, "E.ratio")
	for _, row := range tbl.Rows {
		if r := parseF(t, row[rCol]); r < 0.999 || r > 1.001 {
			t.Errorf("variant quality %g drifted from reference in row %v", r, row)
		}
	}
}

func TestE19ClosedFormAgreement(t *testing.T) {
	tbl, err := RunE19()
	if err != nil {
		t.Fatal(err)
	}
	gCol := colIndex(t, tbl.Columns, "G.optimal")
	cfCol := colIndex(t, tbl.Columns, "G.closedForm")
	costCol := colIndex(t, tbl.Columns, "robustnessCost%")
	for _, row := range tbl.Rows {
		g, cf := parseF(t, row[gCol]), parseF(t, row[cfCol])
		if abs(g-cf) > 0.01*cf {
			t.Errorf("integer optimum %g vs closed form %g in row %v", g, cf, row)
		}
		if cost := parseF(t, row[costCol]); cost < 0 || cost > 20 {
			t.Errorf("robustness cost %g%% implausible in row %v", cost, row)
		}
	}
}

func TestE21AdaptiveApproachesOracle(t *testing.T) {
	tbl, err := RunE21()
	if err != nil {
		t.Fatal(err)
	}
	polCol := colIndex(t, tbl.Columns, "policy")
	totCol := colIndex(t, tbl.Columns, "total")
	ownCol := colIndex(t, tbl.Columns, "owner")
	oracle := map[string]float64{}
	adaptive := map[string]float64{}
	frozen := map[string]float64{}
	for _, row := range tbl.Rows {
		v := parseF(t, row[totCol])
		switch {
		case strings.HasPrefix(row[polCol], "oracle"):
			oracle[row[ownCol]] = v
		case strings.HasPrefix(row[polCol], "adaptive"):
			adaptive[row[ownCol]] = v
		case strings.HasPrefix(row[polCol], "frozen"):
			frozen[row[ownCol]] = v
		}
	}
	for owner, o := range oracle {
		a, f := adaptive[owner], frozen[owner]
		if a < 0.85*o {
			t.Errorf("%s: adaptive total %g below 85%% of oracle %g", owner, a, o)
		}
		if a <= 2*f {
			t.Errorf("%s: adaptive %g did not dominate frozen start %g", owner, a, f)
		}
		if a > o*1.001 {
			t.Errorf("%s: adaptive %g beat the oracle %g — check the oracle", owner, a, o)
		}
	}
}

func TestE20GuidelineWinsFarm(t *testing.T) {
	if testing.Short() {
		t.Skip("farm simulation skipped in -short mode")
	}
	tbl, err := RunE20()
	if err != nil {
		t.Fatal(err)
	}
	polCol := colIndex(t, tbl.Columns, "policy")
	mkCol := colIndex(t, tbl.Columns, "makespan")
	var guideline, fixed float64
	for _, row := range tbl.Rows {
		switch row[polCol] {
		case "guideline":
			guideline = parseF(t, row[mkCol])
		case "fixed-25":
			fixed = parseF(t, row[mkCol])
		}
	}
	if !(guideline > 0) || !(fixed > 0) {
		t.Fatal("missing policies in table")
	}
	if guideline >= fixed {
		t.Errorf("guideline makespan %g not better than fixed-25 %g", guideline, fixed)
	}
}
