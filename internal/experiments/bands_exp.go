package experiments

import (
	"fmt"
	"math"

	"repro/internal/lifefn"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
)

// RunE22 evaluates robust planning on Greenwood confidence bands: fit a
// trace, plan on the center estimate and on the pessimistic (lower
// band) curve, then evaluate both plans under the nominal truth AND
// under a harsher reality (owner returns 25% sooner than the trace
// suggested — the systematic drift a stale trace produces). The
// pessimistic plan should concede little under the nominal truth and
// lose less under the harsh one.
func RunE22() (*report.Table, error) {
	t := &report.Table{
		ID:      "E22",
		Title:   "Robust planning on Greenwood bands: nominal vs harsher-than-fitted reality",
		Columns: []string{"truth", "sessions", "E.center@nominal", "E.pess@nominal", "E.center@harsh", "E.pess@harsh", "harshGain%"},
	}
	const c = 1.0
	gdTruth, err := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/32))
	if err != nil {
		return nil, err
	}
	gdHarsh, err := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/24))
	if err != nil {
		return nil, err
	}
	uTruth, err := lifefn.NewUniform(200)
	if err != nil {
		return nil, err
	}
	uHarsh, err := lifefn.NewUniform(150)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name         string
		truth, harsh lifefn.Life
	}{
		{"geomdec(hl 32→24)", gdTruth, gdHarsh},
		{"uniform(L 200→150)", uTruth, uHarsh},
	}
	for _, cse := range cases {
		for _, n := range []int{100, 400, 1600} {
			obs := trace.SampleAbsences(cse.truth, n, rng.New(8080+uint64(n)))
			center, pessimistic, _, err := trace.FitLifeBand(obs, 1.96, trace.FitOptions{})
			if err != nil {
				return nil, fmt.Errorf("E22 %s n=%d: %w", cse.name, n, err)
			}
			centerPlan, err := guidelinePlan(center, c)
			if err != nil {
				return nil, fmt.Errorf("E22 center plan %s n=%d: %w", cse.name, n, err)
			}
			pessPlan, err := guidelinePlan(pessimistic, c)
			if err != nil {
				return nil, fmt.Errorf("E22 pessimistic plan %s n=%d: %w", cse.name, n, err)
			}
			eCenterNom := sched.ExpectedWork(centerPlan.Schedule, cse.truth, c)
			ePessNom := sched.ExpectedWork(pessPlan.Schedule, cse.truth, c)
			eCenterHarsh := sched.ExpectedWork(centerPlan.Schedule, cse.harsh, c)
			ePessHarsh := sched.ExpectedWork(pessPlan.Schedule, cse.harsh, c)
			gain := 100 * (ratio(ePessHarsh, eCenterHarsh) - 1)
			t.AddRow(cse.name, n, eCenterNom, ePessNom, eCenterHarsh, ePessHarsh, gain)
		}
	}
	t.AddNote("harshGain%% = extra work the pessimistic-band plan retains when the owner actually returns ~25%% sooner than the trace suggested")
	t.AddNote("honest finding: the hedge buys essentially nothing in either scenario (gains within ±3%% and shrinking with n) — E(t0) is flat near its optimum (cf. E16), so the band's small plan shift cannot offset systematic drift, which hurts both plans almost equally. Bands guard against sampling noise, not model drift; the point-estimate pipeline of E10 is already as robust as this hedge")
	return t, nil
}
