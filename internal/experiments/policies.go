package experiments

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/faultsim"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
)

// RunE7 sweeps the relative overhead c/L across the three scenarios and
// reports each policy's expected work normalized to the optimal
// schedule's: who wins, by what factor, and where the chunking policies
// cross over.
func RunE7() (*report.Table, error) {
	t := &report.Table{
		ID:      "E7",
		Title:   "Policy sweep: E normalized to optimal, by relative overhead",
		Columns: []string{"scenario", "c/L", "guideline", "greedy", "bestFixed", "doubling", "allAtOnce", "E.optimal"},
	}
	scenarios, err := scenarioSet()
	if err != nil {
		return nil, err
	}
	for _, sc := range scenarios {
		span := sc.life.Horizon()
		if math.IsInf(span, 1) {
			span = 1000 // geomdec hl=32: effective scale
		}
		for _, rel := range []float64{1e-4, 1e-3, 1e-2, 0.05, 0.2} {
			c := rel * span
			opt, err := optimalFor(sc.life, c)
			if err != nil {
				return nil, fmt.Errorf("E7 %s rel=%g: %w", sc.name, rel, err)
			}
			if !(opt.ExpectedWork > 0) {
				continue
			}
			norm := func(s sched.Schedule, err error) string {
				if err != nil {
					return "-"
				}
				return fmt.Sprintf("%.4f", sched.ExpectedWork(s, sc.life, c)/opt.ExpectedWork)
			}
			plan, err := guidelinePlan(sc.life, c)
			guidelineCell := "-"
			if err == nil {
				guidelineCell = fmt.Sprintf("%.4f", plan.ExpectedWork/opt.ExpectedWork)
			}
			t.AddRow(sc.name, rel,
				guidelineCell,
				norm(baseline.Greedy(sc.life, c, baseline.GreedyOptions{})),
				norm(baseline.BestFixedChunk(sc.life, c)),
				norm(baseline.Doubling(sc.life, c)),
				norm(baseline.AllAtOnce(sc.life, c)),
				opt.ExpectedWork)
		}
	}
	t.AddNote("guideline ≈ 1 everywhere; greedy = 1 only for geomdec (§6); all-at-once is competitive only as c/L grows toward the episode scale")
	return t, nil
}

// RunE9 runs the Remark's fault-tolerance application: expected
// makespan of a fixed job under guideline-derived save intervals vs
// fixed-interval baselines, for two failure regimes.
func RunE9() (*report.Table, error) {
	t := &report.Table{
		ID:      "E9",
		Title:   "Scheduling saves in a fault-prone system (Remark §1 / [7])",
		Columns: []string{"failure", "policy", "makespan.mean", "ci95", "failures.mean", "lost.mean", "saveTime.mean"},
	}
	gd, err := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/25))
	if err != nil {
		return nil, err
	}
	u, err := lifefn.NewUniform(120)
	if err != nil {
		return nil, err
	}
	const (
		totalWork = 300.0
		saveCost  = 1.0
		runs      = 300
	)
	for _, failure := range []namedLife{{"geomdec(hl=25)", gd}, {"uniform(L=120)", u}} {
		plan, err := guidelinePlan(failure.life, saveCost)
		if err != nil {
			return nil, fmt.Errorf("E9 %s: %w", failure.name, err)
		}
		policies := []struct {
			name    string
			factory func() nowsim.Policy
		}{
			{"guideline", func() nowsim.Policy { return nowsim.NewSchedulePolicy(plan.Schedule, "guideline") }},
			{"fixed(opt-chunk)", func() nowsim.Policy { return &nowsim.FixedChunkPolicy{Chunk: plan.T0} }},
			{"fixed(rare)", func() nowsim.Policy { return &nowsim.FixedChunkPolicy{Chunk: 100} }},
			{"fixed(frantic)", func() nowsim.Policy { return &nowsim.FixedChunkPolicy{Chunk: saveCost + 0.25} }},
		}
		for _, pol := range policies {
			cfg := faultsim.Config{
				TotalWork:     totalWork,
				SaveCost:      saveCost,
				Failure:       failure.life,
				RebootCost:    1,
				PolicyFactory: pol.factory,
			}
			mc, err := faultsim.MonteCarlo(cfg, runs, 4242)
			if err != nil {
				return nil, fmt.Errorf("E9 %s/%s: %w", failure.name, pol.name, err)
			}
			t.AddRow(failure.name, pol.name, mc.Makespan.Mean, mc.Makespan.CI95,
				mc.Failures.Mean, mc.LostWork.Mean, mc.SaveTime.Mean)
		}
	}
	t.AddNote("one inter-failure interval maps to one cycle-stealing episode, the save cost to c; guideline intervals minimize makespan against badly tuned fixed intervals")
	return t, nil
}

// RunE10 measures the trace pipeline: owner absences sampled from a
// known truth, product-limit fit, smoothing into an empirical life
// function, planning on the fit — and the regret of that plan when
// evaluated under the truth.
func RunE10() (*report.Table, error) {
	t := &report.Table{
		ID:      "E10",
		Title:   "Trace-fitted life functions: fit error and schedule regret",
		Columns: []string{"truth", "sessions", "KS.km", "regret.km%", "KS.mle", "regret.mle%", "E.truthPlan"},
	}
	u, err := lifefn.NewUniform(200)
	if err != nil {
		return nil, err
	}
	gd, err := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/32))
	if err != nil {
		return nil, err
	}
	c := 1.0
	for _, truth := range []namedLife{{"uniform(L=200)", u}, {"geomdec(hl=32)", gd}} {
		truthPlan, err := guidelinePlan(truth.life, c)
		if err != nil {
			return nil, fmt.Errorf("E10 %s: %w", truth.name, err)
		}
		// Parametric family matching the truth (the paper's "encapsulate
		// by some well-behaved curve" done with a known family).
		mleFit := func(obs []trace.Observation) (lifefn.Life, error) {
			switch truth.life.(type) {
			case lifefn.Uniform:
				return trace.FitUniform(obs)
			case lifefn.GeomDecreasing:
				return trace.FitGeomDecreasing(obs)
			default:
				return nil, fmt.Errorf("no parametric family for %s", truth.name)
			}
		}
		span := trace.EffectiveSpan(truth.life)
		regretOf := func(fit lifefn.Life) (float64, error) {
			fitPlan, err := guidelinePlan(fit, c)
			if err != nil {
				return 0, err
			}
			eUnderTruth := sched.ExpectedWork(fitPlan.Schedule, truth.life, c)
			return 100 * (1 - eUnderTruth/truthPlan.ExpectedWork), nil
		}
		for _, n := range []int{50, 200, 1000, 5000} {
			obs := trace.SampleAbsences(truth.life, n, rng.New(31337+uint64(n)))
			km, err := trace.FitLife(obs, trace.FitOptions{})
			if err != nil {
				return nil, fmt.Errorf("E10 fit %s n=%d: %w", truth.name, n, err)
			}
			regKM, err := regretOf(km)
			if err != nil {
				return nil, fmt.Errorf("E10 plan-on-fit %s n=%d: %w", truth.name, n, err)
			}
			mle, err := mleFit(obs)
			if err != nil {
				return nil, fmt.Errorf("E10 MLE %s n=%d: %w", truth.name, n, err)
			}
			regMLE, err := regretOf(mle)
			if err != nil {
				return nil, fmt.Errorf("E10 plan-on-MLE %s n=%d: %w", truth.name, n, err)
			}
			t.AddRow(truth.name, n,
				trace.KSDistance(km, truth.life, span, 400), regKM,
				trace.KSDistance(mle, truth.life, span, 400), regMLE,
				truthPlan.ExpectedWork)
		}
	}
	t.AddNote("regret = expected-work loss from planning on the fitted curve instead of the truth; both shrink as the trace grows")
	t.AddNote("when the parametric family is known, the MLE fit reaches negligible regret with far fewer sessions than the non-parametric Kaplan–Meier+smoothing pipeline")
	return t, nil
}
