package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/numeric"
	"repro/internal/report"
)

// countingLife wraps a life function and counts evaluations of P — the
// planner's dominant cost — so ablations can report work done, not
// wall time (which would break determinism of the tables).
type countingLife struct {
	lifefn.Life
	evals *int64
}

func (c countingLife) P(t float64) float64 {
	*c.evals++
	return c.Life.P(t)
}

// RunE16 ablates the planner's design choices on two contrasting
// scenarios: the t0 bracket (Theorems 3.2/3.3) versus a naive full-span
// search, the scan resolution inside the bracket, and the tail
// truncation threshold for infinite schedules. Quality is E relative to
// the reference configuration; cost is the number of P evaluations.
// (The measured outcome is more interesting than the naive expectation:
// see the table notes.)
func RunE16() (*report.Table, error) {
	t := &report.Table{
		ID:      "E16",
		Title:   "Ablation: planner design choices (bracket, scan resolution, tail eps)",
		Columns: []string{"scenario", "variant", "t0", "E.ratio", "P.evals", "evals.ratio"},
	}
	u, err := lifefn.NewUniform(1000)
	if err != nil {
		return nil, err
	}
	gd, err := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/32))
	if err != nil {
		return nil, err
	}
	const c = 1.0
	for _, sc := range []namedLife{{"uniform(L=1000)", u}, {"geomdec(hl=32)", gd}} {
		ref, refEvals, err := planCounted(sc.life, c, core.PlanOptions{}, false)
		if err != nil {
			return nil, fmt.Errorf("E16 %s reference: %w", sc.name, err)
		}
		variants := []struct {
			name     string
			opt      core.PlanOptions
			fullSpan bool
		}{
			{"reference (bracket, scan=64)", core.PlanOptions{}, false},
			{"coarse scan=8", core.PlanOptions{ScanPoints: 8}, false},
			{"fine scan=256", core.PlanOptions{ScanPoints: 256}, false},
			{"no bracket (full-span scan=64)", core.PlanOptions{}, true},
			{"loose tail eps=1e-6", core.PlanOptions{TailEps: 1e-6}, false},
		}
		for _, v := range variants {
			plan, evals, err := planCounted(sc.life, c, v.opt, v.fullSpan)
			if err != nil {
				return nil, fmt.Errorf("E16 %s %s: %w", sc.name, v.name, err)
			}
			t.AddRow(sc.name, v.name, plan.T0,
				ratio(plan.ExpectedWork, ref.ExpectedWork),
				evals, ratio(float64(evals), float64(refEvals)))
		}
	}
	t.AddNote("measured surprise: on these unimodal scenarios the bound computation (Lemma 3.1's inner maximization dominates) costs more P evaluations than the narrower search saves — the bracket's value is its guarantee (provable containment of the optimum; protection when E(t0) is singular/multimodal, cf. E8), not raw speed")
	t.AddNote("scan resolution and tail eps barely move E here: the t0 objective is flat near its maximum, which is itself a guideline selling point (Section 6's 'manageably narrow search space')")
	return t, nil
}

// planCounted plans with an instrumented life function; fullSpan
// replaces the guideline bracket by a naive search over (c, span].
func planCounted(l lifefn.Life, c float64, opt core.PlanOptions, fullSpan bool) (core.Plan, int64, error) {
	var evals int64
	counted := countingLife{Life: l, evals: &evals}
	pl, err := core.NewPlanner(counted, c, opt)
	if err != nil {
		return core.Plan{}, 0, err
	}
	if !fullSpan {
		plan, err := pl.PlanBest()
		return plan, evals, err
	}
	// Naive full-span search: same generator, no bracket.
	span := l.Horizon()
	if math.IsInf(span, 1) {
		span = 1.0
		for l.P(span) > 1e-12 && span < 1e12 {
			span *= 2
		}
	}
	scan := opt.ScanPoints
	if scan <= 0 {
		scan = 64
	}
	objective := func(t0 float64) float64 {
		s, genErr := pl.GenerateFrom(t0)
		if genErr != nil {
			return math.Inf(-1)
		}
		return pl.ExpectedWork(s)
	}
	t0, _, err := numeric.MaximizeScan(objective, c*(1+1e-9), span, scan, numeric.MaxOptions{Tol: 1e-10})
	if err != nil {
		return core.Plan{}, evals, err
	}
	s, err := pl.GenerateFrom(t0)
	if err != nil {
		return core.Plan{}, evals, err
	}
	return core.Plan{Schedule: s, T0: t0, ExpectedWork: pl.ExpectedWork(s)}, evals, nil
}
