package experiments

import (
	"fmt"
	"math"

	"repro/internal/competitive"
	"repro/internal/discrete"
	"repro/internal/lifefn"
	"repro/internal/nowsim"
	"repro/internal/optimal"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

// RunE12 answers the paper's closing open question — do the continuous
// guidelines yield valuable discrete analogues? — by comparing the
// exactly optimal integer-period schedule (dynamic programming) with
// the rounded continuous guideline schedule.
func RunE12() (*report.Table, error) {
	t := &report.Table{
		ID:      "E12",
		Title:   "Discrete analogue (§6 open question): integer DP vs rounded guideline",
		Columns: []string{"scenario", "c", "E.continuous", "E.intDP", "E.rounded", "roundLoss%", "m.DP", "m.cont"},
	}
	u500, err := lifefn.NewUniform(500)
	if err != nil {
		return nil, err
	}
	p3, err := lifefn.NewPoly(3, 300)
	if err != nil {
		return nil, err
	}
	gi, err := lifefn.NewGeomIncreasing(64)
	if err != nil {
		return nil, err
	}
	gd, err := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/24))
	if err != nil {
		return nil, err
	}
	for _, sc := range []namedLife{
		{"uniform(L=500)", u500},
		{"poly(d=3,L=300)", p3},
		{"geominc(L=64)", gi},
		{"geomdec(hl=24)", gd},
	} {
		for _, c := range []float64{1, 3} {
			plan, err := guidelinePlan(sc.life, c)
			if err != nil {
				return nil, fmt.Errorf("E12 %s c=%g: %w", sc.name, c, err)
			}
			horizon := discrete.HorizonFor(sc.life, 1e-9, 4096)
			dp, err := discrete.Optimal(sc.life, c, horizon)
			if err != nil {
				return nil, fmt.Errorf("E12 DP %s c=%g: %w", sc.name, c, err)
			}
			rounded, err := discrete.RoundSchedule(plan.Schedule, c)
			if err != nil {
				return nil, err
			}
			eRounded := sched.ExpectedWork(rounded, sc.life, c)
			loss := 100 * (1 - ratio(eRounded, dp.ExpectedWork))
			t.AddRow(sc.name, c, plan.ExpectedWork, dp.ExpectedWork, eRounded, loss,
				dp.Schedule.Len(), plan.Schedule.Len())
		}
	}
	t.AddNote("roundLoss%% = integer-optimal work sacrificed by simply rounding the continuous guideline — fractions of a percent: the continuous guidelines do yield valuable discrete analogues")
	return t, nil
}

// RunE13 covers the worst-case regime the paper defers to its sequel
// and to [2]: deterministic and randomized chunking judged by
// competitive ratio against an adversarial reclaim time, across
// horizon scales. The measured finding (documented in EXPERIMENTS.md):
// in the paper's *cumulative-work* model the ratio is constant in the
// horizon — flat chunks sized to the warm-up bound and phase-randomized
// doubling both hold a fixed fraction of the offline optimum — unlike
// the single-commitment model of [2], where only logarithmic
// competitiveness is possible.
func RunE13() (*report.Table, error) {
	t := &report.Table{
		ID:      "E13",
		Title:   "Worst-case (risk-oblivious) cycle-stealing: competitive ratios",
		Columns: []string{"horizon", "rho.doubling", "rho.bestRamp", "gamma.best", "rho.randomized", "allAtOnce"},
	}
	const (
		c    = 1.0
		rmin = 8.0
	)
	for _, horizon := range []float64{256, 1024, 4096, 16384, 65536} {
		ramp, err := competitive.GeometricRamp(2, 2, c, horizon)
		if err != nil {
			return nil, err
		}
		rhoDet, err := competitive.Ratio(ramp, c, rmin, horizon)
		if err != nil {
			return nil, err
		}
		_, gamma, rhoBest, err := competitive.BestGeometricRamp(c, rmin, horizon)
		if err != nil {
			return nil, err
		}
		rhoRand, _, err := competitive.RandomizedDoublingRatio(c, rmin, horizon, 64, 256)
		if err != nil {
			return nil, err
		}
		allAtOnce, err := competitive.Ratio(sched.MustNew(horizon), c, rmin, horizon)
		if err != nil {
			return nil, err
		}
		t.AddRow(horizon, rhoDet, rhoBest, gamma, rhoRand, allAtOnce)
	}
	t.AddNote("ratios are flat across 2.5 decades of horizons: cumulative-work cycle-stealing is constant-competitive (contrast with the log barrier of [2]'s single-commitment model); all-at-once is 0-competitive")
	return t, nil
}

// RunE14 plans under multimodal owner behaviour: mixtures of the basic
// scenarios, where curvature is generally lost and only the paper's
// shape-free machinery applies. The guideline plan is checked against
// the scenario-agnostic ground truth and the greedy baseline.
func RunE14() (*report.Table, error) {
	t := &report.Table{
		ID:      "E14",
		Title:   "Multimodal (mixture) life functions: shape-free guideline quality",
		Columns: []string{"mixture", "shapeDetected", "t0", "m", "E.guideline", "E.groundtruth", "E.ratio"},
	}
	coffee, err := lifefn.NewUniform(30)
	if err != nil {
		return nil, err
	}
	meeting, err := lifefn.NewUniform(300)
	if err != nil {
		return nil, err
	}
	memoryless, err := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/40))
	if err != nil {
		return nil, err
	}
	lateRisk, err := lifefn.NewPoly(3, 200)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name       string
		components []lifefn.Life
		weights    []float64
	}{
		{"0.7·uniform(30) + 0.3·uniform(300)", []lifefn.Life{coffee, meeting}, []float64{7, 3}},
		{"0.5·geomdec(40) + 0.5·uniform(300)", []lifefn.Life{memoryless, meeting}, []float64{1, 1}},
		{"0.6·poly3(200) + 0.4·uniform(30)", []lifefn.Life{lateRisk, coffee}, []float64{6, 4}},
	}
	const c = 1.0
	for _, cse := range cases {
		mix, err := lifefn.NewMixture(cse.components, cse.weights)
		if err != nil {
			return nil, err
		}
		plan, err := guidelinePlan(mix, c)
		if err != nil {
			return nil, fmt.Errorf("E14 %s: %w", cse.name, err)
		}
		gt, err := optimal.GroundTruth(mix, c, optimal.GroundTruthOptions{Sweeps: 15})
		if err != nil {
			return nil, err
		}
		t.AddRow(cse.name, mix.Shape().String(), plan.T0, plan.Schedule.Len(),
			plan.ExpectedWork, gt.ExpectedWork, ratio(plan.ExpectedWork, gt.ExpectedWork))
	}
	t.AddNote("with curvature lost, only the Thm 3.2 lower bound and the span cap bracket t0 — the guideline search still lands within a fraction of a percent of the ground truth")
	return t, nil
}

// RunE15 measures the data-parallel quantization the model abstracts
// away: periods carry indivisible tasks, so a period of length t packs
// at most floor((t-c)/d)·d task time. The experiment sweeps task
// granularity and reports simulated committed work as a fraction of the
// fluid (infinitely divisible) analytic E.
func RunE15() (*report.Table, error) {
	t := &report.Table{
		ID:      "E15",
		Title:   "Task granularity: simulated committed work vs fluid E(S;p)",
		Columns: []string{"taskDuration", "E.fluid", "work.simulated", "ci95", "fillFraction", "fill.bestfit", "slack/episode"},
	}
	life, err := lifefn.NewUniform(1000)
	if err != nil {
		return nil, err
	}
	const (
		c        = 1.0
		episodes = 1000
	)
	plan, err := guidelinePlan(life, c)
	if err != nil {
		return nil, err
	}
	owner := nowsim.LifeOwner{Life: life}
	for _, d := range []float64{0.1, 0.5, 1, 2, 5, 10, 20} {
		src := rng.New(5150 + uint64(d*10))
		// Mixed durations in [d/2, 3d/2) make packing non-trivial; the
		// base workload is generated once and cloned per episode.
		base, err := nowsim.NewWorkload(nowsim.WorkloadSpec{
			Tasks: int(1500/d) + 32, Dist: nowsim.DistUniform, Lo: d / 2, Hi: 3 * d / 2,
		}, rng.New(uint64(d*100)+9))
		if err != nil {
			return nil, err
		}
		var work, workBF, slack stats.Running
		for i := 0; i < episodes; i++ {
			reclaim := owner.ReclaimAfter(src)
			pol := nowsim.NewSchedulePolicy(plan.Schedule, "E15")
			res := nowsim.RunTaskEpisode(pol, base.Clone(), c, reclaim)
			work.Add(res.Work)
			slack.Add(res.Slack)
			resBF := nowsim.RunTaskEpisodeOpt(pol, base.Clone(), c, reclaim,
				nowsim.TaskEpisodeOptions{BestFitWindow: -1}) // auto window
			workBF.Add(resBF.Work)
		}
		t.AddRow(d, plan.ExpectedWork, work.Mean(), work.CI(0.95),
			ratio(work.Mean(), plan.ExpectedWork),
			ratio(workBF.Mean(), plan.ExpectedWork), slack.Mean())
	}
	t.AddNote("fillFraction → 1 as tasks shrink (the fluid model is the fine-grain limit); coarse tasks strand period capacity as slack — the cost of indivisibility the paper's task-duration assumption hides")
	t.AddNote("fill.bestfit: best-fit-decreasing packing (legal because task durations are known) recovers part of the coarse-grain loss over FIFO packing")
	return t, nil
}
