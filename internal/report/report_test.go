package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:      "T1",
		Title:   "sample",
		Columns: []string{"name", "value", "flag"},
	}
	t.AddRow("alpha", 1.5, true)
	t.AddRow("beta,comma", 42, false)
	t.AddRow("gamma", int64(7), 0.3333333333333)
	t.AddNote("a note with %d parts", 2)
	return t
}

func TestAddRowFormatting(t *testing.T) {
	tbl := sample()
	if tbl.Rows[0][1] != "1.5" {
		t.Errorf("float cell = %q", tbl.Rows[0][1])
	}
	if tbl.Rows[0][2] != "yes" || tbl.Rows[1][2] != "no" {
		t.Errorf("bool cells = %q, %q", tbl.Rows[0][2], tbl.Rows[1][2])
	}
	if tbl.Rows[1][1] != "42" {
		t.Errorf("int cell = %q", tbl.Rows[1][1])
	}
	if tbl.Rows[2][1] != "7" {
		t.Errorf("int64 cell = %q", tbl.Rows[2][1])
	}
	if tbl.Rows[2][2] != "0.333333" {
		t.Errorf("float precision cell = %q", tbl.Rows[2][2])
	}
	if len(tbl.Notes) != 1 || tbl.Notes[0] != "a note with 2 parts" {
		t.Errorf("notes = %v", tbl.Notes)
	}
}

func TestWriteTextAligned(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== T1: sample ==") {
		t.Error("missing header")
	}
	lines := strings.Split(out, "\n")
	// Header and every data row must align on the "value" column.
	var headerIdx int
	for _, ln := range lines {
		if strings.HasPrefix(ln, "name") {
			headerIdx = strings.Index(ln, "value")
		}
	}
	if headerIdx <= 0 {
		t.Fatalf("no aligned header in:\n%s", out)
	}
	if !strings.Contains(out, "note: a note with 2 parts") {
		t.Error("missing note")
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "### T1 — sample") {
		t.Error("missing markdown header")
	}
	if !strings.Contains(out, "| name | value | flag |") {
		t.Error("missing markdown column row")
	}
	if !strings.Contains(out, "|---|---|---|") {
		t.Error("missing markdown separator")
	}
	if !strings.Contains(out, "*a note with 2 parts*") {
		t.Error("missing italic note")
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"beta,comma"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.HasPrefix(out, "name,value,flag\n") {
		t.Errorf("csv header wrong:\n%s", out)
	}
}

func TestCSVQuoteEscaping(t *testing.T) {
	tbl := &Table{ID: "q", Title: "quotes", Columns: []string{"a"}}
	tbl.AddRow(`say "hi"`)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"say ""hi"""`) {
		t.Errorf("quote escaping wrong: %s", b.String())
	}
}
