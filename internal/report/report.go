// Package report renders the experiment tables: aligned plain text for
// the terminal and EXPERIMENTS.md, CSV for downstream tooling. Keeping
// one Table type shared by cmd/csbench, the tests and the docs
// guarantees they can never disagree about what an experiment produced.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a rectangular experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title is a one-line description.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the cells, already formatted.
	Rows [][]string
	// Notes are free-form lines printed under the table.
	Notes []string
}

// AddRow appends a row, formatting each value: strings verbatim,
// integers with %d, floats compactly with %.6g, everything else with
// %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case string:
		return v
	case int:
		return strconv.Itoa(v)
	case int64:
		return strconv.FormatInt(v, 10)
	case float64:
		return formatFloat(v)
	case bool:
		if v {
			return "yes"
		}
		return "no"
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// AddNote appends a free-form footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the table as GitHub-flavored markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (quotes cells containing commas or
// quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
