package worstcase

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

func TestGuaranteedWorkHandComputed(t *testing.T) {
	s := sched.MustNew(10, 8, 6, 4)
	c := 1.0
	// Productive times: 9, 7, 5, 3 (total 24).
	cases := []struct {
		q    int
		want float64
	}{
		{0, 24}, {1, 15}, {2, 8}, {3, 3}, {4, 0}, {10, 0},
	}
	for _, cse := range cases {
		if got := GuaranteedWork(s, c, cse.q); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("q=%d: G = %g, want %g", cse.q, got, cse.want)
		}
	}
	if got := GuaranteedWork(s, c, -1); got != 24 {
		t.Errorf("negative q treated as %g", got)
	}
}

func TestStrikeSet(t *testing.T) {
	s := sched.MustNew(4, 10, 6)
	set := StrikeSet(s, 1, 2)
	if len(set) != 2 || set[0] != 1 || set[1] != 2 {
		t.Errorf("strike set = %v, want [1 2]", set)
	}
	if StrikeSet(s, 1, 0) != nil {
		t.Error("q=0 should strike nothing")
	}
	// Unproductive periods are not struck.
	tiny := sched.MustNew(0.5, 0.5)
	if got := StrikeSet(tiny, 1, 2); len(got) != 0 {
		t.Errorf("struck unproductive periods: %v", got)
	}
}

func TestOptimalMatchesClosedForm(t *testing.T) {
	for _, cse := range []struct {
		l, c float64
		q    int
	}{
		{1000, 1, 1}, {1000, 1, 4}, {1000, 2, 9}, {10000, 5, 2},
	} {
		res, err := Optimal(cse.l, cse.c, cse.q)
		if err != nil {
			t.Fatal(err)
		}
		cf := ClosedFormGuarantee(cse.l, cse.c, cse.q)
		if res.Guaranteed < cf-0.02*cf {
			t.Errorf("L=%g c=%g q=%d: G=%g below closed form %g", cse.l, cse.c, cse.q, res.Guaranteed, cf)
		}
		// The integer optimum can beat the continuous approximation
		// only by rounding slack.
		if res.Guaranteed > cf+math.Sqrt(cse.c*cse.l) {
			t.Errorf("L=%g c=%g q=%d: G=%g implausibly above closed form %g", cse.l, cse.c, cse.q, res.Guaranteed, cf)
		}
		// All periods equal and the lifespan exhausted.
		if math.Abs(res.Schedule.Total()-cse.l) > 1e-6 {
			t.Errorf("total = %g, want %g", res.Schedule.Total(), cse.l)
		}
	}
}

func TestOptimalQZeroIsOnePeriod(t *testing.T) {
	// With no adversary the whole lifespan in one period is optimal.
	res, err := Optimal(100, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Periods != 1 || math.Abs(res.Guaranteed-99) > 1e-9 {
		t.Errorf("q=0: m=%d G=%g, want 1/99", res.Periods, res.Guaranteed)
	}
}

func TestOptimalDegenerate(t *testing.T) {
	res, err := Optimal(10, 1, 50) // adversary budget beyond any feasible m
	if err != nil {
		t.Fatal(err)
	}
	if res.Guaranteed != 0 || res.Schedule.Len() != 0 {
		t.Errorf("expected empty result, got %+v", res)
	}
	if _, err := Optimal(-1, 1, 1); err == nil {
		t.Error("negative L accepted")
	}
	if _, err := Optimal(10, 1, -1); err == nil {
		t.Error("negative q accepted")
	}
}

func TestPropertyEqualPeriodsBeatUnequal(t *testing.T) {
	// Property: for the same m and total duration, the equal-period
	// schedule's guaranteed work is at least any unequal split's (the
	// equalization argument behind Optimal).
	check := func(raw []uint8, qi uint8) bool {
		if len(raw) < 2 || len(raw) > 8 {
			return true
		}
		c := 1.0
		q := int(qi % uint8(len(raw)))
		periods := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			periods[i] = c + 0.1 + float64(r)/16
			total += periods[i]
		}
		unequal, err := sched.New(periods...)
		if err != nil {
			return true
		}
		equal := make([]float64, len(raw))
		for i := range equal {
			equal[i] = total / float64(len(raw))
		}
		eq, err := sched.New(equal...)
		if err != nil {
			return true
		}
		return GuaranteedWork(eq, c, q) >= GuaranteedWork(unequal, c, q)-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestWorstCaseVsExpectedTradeoff(t *testing.T) {
	// The robustness tension the sequel studies: the worst-case-optimal
	// schedule sacrifices expected work, and the expected-work-optimal
	// schedule sacrifices guarantees. Both directions must be strict.
	l, c, q := 1000.0, 1.0, 3
	wc, err := Optimal(l, c, q)
	if err != nil {
		t.Fatal(err)
	}
	// Expected-optimal under uniform risk (arithmetic schedule).
	arith := make([]float64, 0, 44)
	t0 := 44.7
	for tt := t0; tt > c; tt -= c {
		if sum(arith)+tt > l {
			break
		}
		arith = append(arith, tt)
	}
	expectedOpt := sched.MustNew(arith...)
	if g := GuaranteedWork(expectedOpt, c, q); g >= wc.Guaranteed {
		t.Errorf("expected-optimal schedule guarantee %g >= worst-case optimum %g", g, wc.Guaranteed)
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
