// Package worstcase implements the guaranteed-work regime the paper
// defers to its sequel ("In a forthcoming sequel to this paper, we
// focus on (nearly) optimizing a worst-case, rather than expected,
// measure of a cycle-stealing episode's work output"), in the
// bounded-adversary formulation of [BCLR97]'s second half: the episode
// lasts L time units, during which a malicious adversary may interrupt
// the borrowed workstation up to q times; each interruption destroys
// the period in progress. The cycle-stealer's guaranteed work is the
// schedule's total productive time minus what the adversary's best q
// strikes can destroy:
//
//	G(S; q) = Σ (t_i - c) - Σ_{q largest periods} (t_i - c).
//
// With the whole lifespan available (Σ t_i = L), equal periods are
// optimal, and the guaranteed work of m equal periods is
// (m - q)·(L/m - c), maximized near m* = sqrt(qL/c):
//
//	G* ≈ L - 2·sqrt(qcL) + qc,
//
// the worst-case analogue of the paper's expected-work results (and of
// the sqrt(cL)-flavored t0 guidelines). The package provides the exact
// integer-m optimizer, the guaranteed-work functional for arbitrary
// schedules, and the adversary's optimal strike set.
package worstcase

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sched"
)

// GuaranteedWork returns G(S; q): the work schedule s banks if an
// optimal adversary interrupts at most q of its periods (each strike
// destroys one period's productive time; the paper's draconian loss,
// repeated q times). Periods with t <= c contribute nothing and are
// never worth striking.
func GuaranteedWork(s sched.Schedule, c float64, q int) float64 {
	if q < 0 {
		q = 0
	}
	works := make([]float64, 0, s.Len())
	total := 0.0
	for i := 0; i < s.Len(); i++ {
		w := sched.PositiveSub(s.Period(i), c)
		works = append(works, w)
		total += w
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(works)))
	for i := 0; i < q && i < len(works); i++ {
		total -= works[i]
	}
	return total
}

// StrikeSet returns the indices of the periods an optimal adversary
// destroys (the q periods with the largest productive time, ties broken
// toward earlier periods).
func StrikeSet(s sched.Schedule, c float64, q int) []int {
	if q <= 0 || s.Len() == 0 {
		return nil
	}
	type pw struct {
		idx int
		w   float64
	}
	all := make([]pw, s.Len())
	for i := 0; i < s.Len(); i++ {
		all[i] = pw{i, sched.PositiveSub(s.Period(i), c)}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].w > all[j].w })
	if q > len(all) {
		q = len(all)
	}
	out := make([]int, 0, q)
	for _, p := range all[:q] {
		if p.w <= 0 {
			break // striking unproductive periods is pointless
		}
		out = append(out, p.idx)
	}
	sort.Ints(out)
	return out
}

// Result is an optimal worst-case schedule.
type Result struct {
	Schedule sched.Schedule
	// Guaranteed is G(Schedule; q).
	Guaranteed float64
	// Periods is the chosen period count m.
	Periods int
}

// Optimal returns the schedule maximizing guaranteed work for lifespan
// L, overhead c and at most q adversarial interruptions: m equal
// periods of L/m with the best integer m (equalization is optimal — any
// imbalance hands the adversary a larger strike while total productive
// time is fixed at L - mc). If even the best m yields nothing (q too
// large or c too large), an empty schedule is returned.
func Optimal(l, c float64, q int) (Result, error) {
	if !(l > 0) || !(c > 0) {
		return Result{}, fmt.Errorf("worstcase: need positive lifespan and overhead, got L=%g c=%g", l, c)
	}
	if q < 0 {
		return Result{}, fmt.Errorf("worstcase: negative interruption budget %d", q)
	}
	mCont := math.Sqrt(float64(q) * l / c)
	best := Result{}
	tryM := func(m int) {
		if m <= q {
			return // adversary kills everything
		}
		t := l / float64(m)
		if t <= c {
			return
		}
		g := float64(m-q) * (t - c)
		if g > best.Guaranteed {
			periods := make([]float64, m)
			for i := range periods {
				periods[i] = t
			}
			s, err := sched.New(periods...)
			if err != nil {
				return
			}
			best = Result{Schedule: s, Guaranteed: g, Periods: m}
		}
	}
	// The continuous optimum is at sqrt(qL/c); check its integer
	// neighbours plus the boundary cases.
	for dm := -2; dm <= 2; dm++ {
		tryM(int(math.Round(mCont)) + dm)
	}
	tryM(q + 1)
	maxM := int(l / c)
	tryM(maxM)
	// Defensive sweep for small problems where rounding heuristics can
	// miss (cheap: maxM is small exactly then).
	if maxM <= 4096 {
		for m := q + 1; m <= maxM; m++ {
			tryM(m)
		}
	}
	return best, nil
}

// ClosedFormGuarantee returns the continuous-m approximation
// L - 2·sqrt(qcL) + qc of the optimal guaranteed work (exact when
// sqrt(qL/c) is an integer and positive; the integer optimum differs
// only by rounding).
func ClosedFormGuarantee(l, c float64, q int) float64 {
	g := l - 2*math.Sqrt(float64(q)*c*l) + float64(q)*c
	if g < 0 {
		return 0
	}
	return g
}
