package worstcase_test

import (
	"fmt"
	"log"

	"repro/internal/worstcase"
)

// Guard a 100-unit opportunity against an adversary allowed two
// interruptions.
func Example() {
	res, err := worstcase.Optimal(100, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m=%d guarantee=%.2f closedForm=%.2f\n",
		res.Periods, res.Guaranteed, worstcase.ClosedFormGuarantee(100, 1, 2))
	// Output: m=14 guarantee=73.71 closedForm=73.72
}
