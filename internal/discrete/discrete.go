// Package discrete answers the paper's closing open question — "Can one
// show that our continuous guidelines yield valuable discrete
// analogues?" — computationally. The original problem is discrete:
// periods are whole numbers of time quanta. This package computes the
// exactly optimal integer-period schedule by dynamic programming and
// provides the natural discretization of a continuous guideline
// schedule, so the two can be compared (experiment E12).
//
// The DP exploits the episode structure: once a period ends at integer
// time τ with the owner still away, the optimal continuation depends
// only on τ. With V(τ) = the maximum additional expected work given
// survival to τ (normalized by p(τ)),
//
//	V(τ) = max(0, max_{t ≥ 1} [ (t ⊖ c)·p(τ+t) + p(τ+t)·V(τ+t) ] / p(τ))
//
// and the optimal schedule reads off the argmaxes from τ = 0. For
// bounded horizons the table has L+1 entries and O(L²) transitions; for
// unbounded horizons the caller supplies a cutoff beyond which the
// remaining value is negligible.
package discrete

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lifefn"
	"repro/internal/sched"
)

// ErrBadHorizon reports an unusable time horizon.
var ErrBadHorizon = errors.New("discrete: horizon must be a positive whole number of quanta")

// Result is an exactly optimal integer-period schedule.
type Result struct {
	// Schedule has integer period lengths (as float64s).
	Schedule sched.Schedule
	// ExpectedWork is E(Schedule; p) computed by the DP (and equal to
	// sched.ExpectedWork up to rounding).
	ExpectedWork float64
}

// Optimal computes the optimal integer-period schedule for life
// function l with integer overhead quantum cost c (c may be fractional;
// periods are integers). horizon is the last integer time considered —
// for bounded life functions pass ceil of the lifespan; for unbounded
// ones pass a time by which p is negligible.
func Optimal(l lifefn.Life, c float64, horizon int) (Result, error) {
	if horizon < 1 {
		return Result{}, fmt.Errorf("%w: got %d", ErrBadHorizon, horizon)
	}
	if !(c >= 0) {
		return Result{}, fmt.Errorf("discrete: negative overhead %g", c)
	}
	// p[τ] cached at integer times.
	p := make([]float64, horizon+1)
	for tau := 0; tau <= horizon; tau++ {
		p[tau] = l.P(float64(tau))
	}
	// value[τ] = maximum additional *unconditional* expected work
	// contributed by periods starting at τ (i.e. Σ (t_i ⊖ c)p(T_i) over
	// the remaining periods), NOT normalized by p(τ). Zero beyond the
	// horizon.
	value := make([]float64, horizon+2)
	choice := make([]int, horizon+1) // optimal next period length at τ; 0 = stop
	for tau := horizon; tau >= 0; tau-- {
		best := 0.0
		bestT := 0
		if p[tau] > 0 {
			for t := 1; tau+t <= horizon; t++ {
				w := float64(t) - c
				if w < 0 {
					w = 0
				}
				v := w*p[tau+t] + value[tau+t]
				if v > best+1e-15 {
					best, bestT = v, t
				}
			}
		}
		value[tau] = best
		choice[tau] = bestT
	}
	// Read off the schedule.
	var periods []float64
	for tau := 0; tau <= horizon; {
		t := choice[tau]
		if t == 0 {
			break
		}
		periods = append(periods, float64(t))
		tau += t
	}
	s, err := sched.New(periods...)
	if err != nil {
		if len(periods) == 0 {
			return Result{Schedule: sched.Schedule{}, ExpectedWork: 0}, nil
		}
		return Result{}, err
	}
	return Result{Schedule: sched.Normalize(s, c), ExpectedWork: value[0]}, nil
}

// RoundSchedule is the natural discrete analogue of a continuous
// schedule: each period is rounded to the nearest positive integer, and
// the result is put in productive normal form. The rounding never
// changes a boundary by more than m/2 quanta in total.
func RoundSchedule(s sched.Schedule, c float64) (sched.Schedule, error) {
	periods := make([]float64, 0, s.Len())
	for i := 0; i < s.Len(); i++ {
		t := math.Round(s.Period(i))
		if t < 1 {
			t = 1
		}
		periods = append(periods, t)
	}
	if len(periods) == 0 {
		return sched.Schedule{}, nil
	}
	out, err := sched.New(periods...)
	if err != nil {
		return sched.Schedule{}, err
	}
	return sched.Normalize(out, c), nil
}

// HorizonFor suggests a DP horizon for a life function: its lifespan
// rounded up when bounded, else the first integer time with
// p < tailEps (capped at maxHorizon).
func HorizonFor(l lifefn.Life, tailEps float64, maxHorizon int) int {
	if tailEps <= 0 {
		tailEps = 1e-9
	}
	if maxHorizon <= 0 {
		maxHorizon = 1 << 20
	}
	if h := l.Horizon(); !math.IsInf(h, 1) {
		n := int(math.Ceil(h))
		if n > maxHorizon {
			return maxHorizon
		}
		return n
	}
	for n := 1; n <= maxHorizon; n *= 2 {
		if l.P(float64(n)) < tailEps {
			return n
		}
	}
	return maxHorizon
}
