package discrete_test

import (
	"fmt"
	"log"

	"repro/internal/discrete"
	"repro/internal/lifefn"
)

// The paper's "discrete analogue" open question in ten lines: the exact
// integer-period optimum via dynamic programming.
func Example() {
	life, err := lifefn.NewUniform(40)
	if err != nil {
		log.Fatal(err)
	}
	res, err := discrete.Optimal(life, 1, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("periods=%v E=%.4f\n", res.Schedule.Periods(), res.ExpectedWork)
	// Output: periods=[8 7 6 5 4 4 3 2] E=14.5000
}
