package discrete

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lifefn"
	"repro/internal/sched"
)

func TestOptimalUniformSmallExhaustive(t *testing.T) {
	// L=6, c=1: small enough to enumerate all integer compositions by
	// hand-rolled recursion and verify the DP is exact.
	l, _ := lifefn.NewUniform(6)
	c := 1.0
	res, err := Optimal(l, c, 6)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	var rec func(prefix []float64, total float64)
	rec = func(prefix []float64, total float64) {
		if len(prefix) > 0 {
			s, err := sched.New(prefix...)
			if err == nil {
				if e := sched.ExpectedWork(s, l, c); e > best {
					best = e
				}
			}
		}
		for t := 1.0; total+t <= 6; t++ {
			rec(append(prefix, t), total+t)
		}
	}
	rec(nil, 0)
	if math.Abs(res.ExpectedWork-best) > 1e-9 {
		t.Errorf("DP E = %g, exhaustive best = %g", res.ExpectedWork, best)
	}
}

func TestOptimalMatchesExpectedWork(t *testing.T) {
	l, _ := lifefn.NewUniform(100)
	res, err := Optimal(l, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	direct := sched.ExpectedWork(res.Schedule, l, 1)
	if math.Abs(direct-res.ExpectedWork) > 1e-9 {
		t.Errorf("DP value %g != direct E %g", res.ExpectedWork, direct)
	}
}

func TestOptimalUniformNearContinuous(t *testing.T) {
	// The integer optimum must be sandwiched between the rounded
	// continuous guideline and the continuous optimum.
	l, _ := lifefn.NewUniform(500)
	c := 1.0
	res, err := Optimal(l, c, 500)
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := core.NewPlanner(l, c, core.PlanOptions{})
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	rounded, err := RoundSchedule(plan.Schedule, c)
	if err != nil {
		t.Fatal(err)
	}
	eRounded := sched.ExpectedWork(rounded, l, c)
	if res.ExpectedWork < eRounded-1e-9 {
		t.Errorf("integer DP %g below rounded guideline %g", res.ExpectedWork, eRounded)
	}
	if res.ExpectedWork > plan.ExpectedWork+0.5 {
		t.Errorf("integer DP %g implausibly above continuous optimum %g", res.ExpectedWork, plan.ExpectedWork)
	}
	// The paper's open question, answered affirmatively: rounding the
	// continuous guideline loses almost nothing vs the exact integer
	// optimum.
	if eRounded < res.ExpectedWork*0.999 {
		t.Errorf("rounded guideline %g loses > 0.1%% vs DP %g", eRounded, res.ExpectedWork)
	}
}

func TestOptimalGrowthLawHoldsDiscretely(t *testing.T) {
	// Theorem 5.2's concave law t_{i+1} <= t_i - c should hold for the
	// integer optimum too (up to integer slack of 1 quantum).
	l, _ := lifefn.NewUniform(200)
	res, err := Optimal(l, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schedule
	for i := 0; i+2 < s.Len(); i++ {
		if s.Period(i+1) > s.Period(i)-1+1+1e-9 { // t_{i+1} <= t_i - c + 1 quantum slack
			t.Errorf("discrete growth law violated at %d: %g -> %g", i, s.Period(i), s.Period(i+1))
		}
	}
}

func TestOptimalDegenerate(t *testing.T) {
	l, _ := lifefn.NewUniform(3)
	res, err := Optimal(l, 5, 3) // overhead dwarfs horizon
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectedWork != 0 || res.Schedule.Len() != 0 {
		t.Errorf("expected empty result, got %+v", res)
	}
	if _, err := Optimal(l, 1, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Optimal(l, -1, 5); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestRoundSchedule(t *testing.T) {
	s := sched.MustNew(4.4, 3.6, 0.3)
	r, err := RoundSchedule(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4.4→4, 3.6→4, 0.3→1 (≤ c, merged/dropped by normal form).
	want := sched.MustNew(4, 4)
	if !r.Equal(want, 1e-12) {
		t.Errorf("rounded = %v, want %v", r, want)
	}
}

func TestHorizonFor(t *testing.T) {
	u, _ := lifefn.NewUniform(99.5)
	if h := HorizonFor(u, 0, 0); h != 100 {
		t.Errorf("bounded horizon = %d, want 100", h)
	}
	g, _ := lifefn.NewGeomDecreasing(math.Pow(2, 1.0/8))
	h := HorizonFor(g, 1e-9, 0)
	if g.P(float64(h)) >= 1e-9 {
		t.Errorf("unbounded horizon %d not deep enough", h)
	}
	if capped := HorizonFor(g, 1e-300, 64); capped != 64 {
		t.Errorf("cap ignored: %d", capped)
	}
}

func TestOptimalGeomIncreasing(t *testing.T) {
	l, _ := lifefn.NewGeomIncreasing(32)
	res, err := Optimal(l, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.ExpectedWork > 0) {
		t.Fatal("no work")
	}
	// Against the continuous plan: the integer optimum can differ only
	// by the quantization loss, which is small at this scale.
	pl, _ := core.NewPlanner(l, 1, core.PlanOptions{})
	plan, err := pl.PlanBest()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectedWork > plan.ExpectedWork+1e-9 {
		t.Errorf("integer DP %g beats continuous optimum %g", res.ExpectedWork, plan.ExpectedWork)
	}
	if res.ExpectedWork < 0.97*plan.ExpectedWork {
		t.Errorf("integer DP %g far below continuous %g", res.ExpectedWork, plan.ExpectedWork)
	}
}
