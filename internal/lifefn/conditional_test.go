package lifefn

import (
	"math"
	"testing"
)

func TestConditionalBasics(t *testing.T) {
	u, _ := NewUniform(100)
	c, err := NewConditional(u, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.P(0); got != 1 {
		t.Errorf("P(0) = %g, want 1", got)
	}
	// p(t | survived 40) = (1 - (40+t)/100)/(1 - 40/100) = 1 - t/60.
	if got := c.P(30); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(30) = %g, want 0.5", got)
	}
	if got := c.Horizon(); math.Abs(got-60) > 1e-12 {
		t.Errorf("Horizon = %g, want 60", got)
	}
	if c.Shape() != Linear {
		t.Errorf("shape = %v, want linear", c.Shape())
	}
}

func TestConditionalUniformIsUniform(t *testing.T) {
	// Conditioning the uniform-risk function yields the uniform-risk
	// function on the remaining lifespan — the structural fact behind
	// progressive re-planning.
	u, _ := NewUniform(100)
	c, _ := NewConditional(u, 25)
	rem, _ := NewUniform(75)
	for i := 0; i <= 50; i++ {
		x := 75 * float64(i) / 50
		if math.Abs(c.P(x)-rem.P(x)) > 1e-12 {
			t.Fatalf("P mismatch at %g: %g vs %g", x, c.P(x), rem.P(x))
		}
	}
}

func TestConditionalGeomDecreasingMemoryless(t *testing.T) {
	// a^{-t} is memoryless: conditioning must not change the curve.
	g, _ := NewGeomDecreasing(math.Pow(2, 1.0/8))
	c, _ := NewConditional(g, 13)
	for i := 0; i <= 40; i++ {
		x := 40 * float64(i) / 40
		if math.Abs(c.P(x)-g.P(x)) > 1e-12 {
			t.Fatalf("memorylessness violated at %g: %g vs %g", x, c.P(x), g.P(x))
		}
	}
}

func TestConditionalValidates(t *testing.T) {
	gi, _ := NewGeomIncreasing(64)
	c, err := NewConditional(gi, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(c, ValidateOptions{}); err != nil {
		t.Error(err)
	}
}

func TestConditionalRejectsDeadEpisode(t *testing.T) {
	u, _ := NewUniform(10)
	if _, err := NewConditional(u, 10); err == nil {
		t.Error("conditioning on zero-probability survival accepted")
	}
	if _, err := NewConditional(u, -1); err == nil {
		t.Error("negative conditioning time accepted")
	}
}

func TestConditionalDerivConsistent(t *testing.T) {
	p3, _ := NewPoly(3, 50)
	c, _ := NewConditional(p3, 10)
	for _, x := range []float64{1, 5, 15, 30} {
		h := 1e-6
		fd := (c.P(x+h) - c.P(x-h)) / (2 * h)
		if math.Abs(fd-c.Deriv(x)) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("Deriv(%g) = %g, fd = %g", x, c.Deriv(x), fd)
		}
	}
}

func TestConditionalNested(t *testing.T) {
	// Conditioning twice equals conditioning once on the sum.
	u, _ := NewUniform(100)
	c1, _ := NewConditional(u, 20)
	c2, _ := NewConditional(c1, 30)
	direct, _ := NewConditional(u, 50)
	for i := 0; i <= 20; i++ {
		x := 50 * float64(i) / 20
		if math.Abs(c2.P(x)-direct.P(x)) > 1e-12 {
			t.Fatalf("nested conditioning mismatch at %g", x)
		}
	}
}
