package lifefn

import (
	"errors"
	"math"
	"testing"
)

func sampleCurve(l Life, span float64, n int) (ts, ps []float64) {
	ts = make([]float64, n+1)
	ps = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		ts[i] = span * float64(i) / float64(n)
		ps[i] = l.P(ts[i])
	}
	return ts, ps
}

func TestEmpiricalReproducesUniform(t *testing.T) {
	u, _ := NewUniform(100)
	ts, ps := sampleCurve(u, 100, 50)
	e, err := NewEmpirical(ts, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 200; i++ {
		x := 100 * float64(i) / 200
		if math.Abs(e.P(x)-u.P(x)) > 1e-6 {
			t.Fatalf("P(%g) = %g, want %g", x, e.P(x), u.P(x))
		}
	}
	if e.Horizon() != 100 {
		t.Errorf("horizon = %g, want 100", e.Horizon())
	}
	if err := Validate(e, ValidateOptions{}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalShapeDetection(t *testing.T) {
	p3, _ := NewPoly(3, 60)
	ts, ps := sampleCurve(p3, 60, 80)
	e, err := NewEmpirical(ts, ps)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Shape(); !s.IsConcave() {
		t.Errorf("detected shape %v for concave data", s)
	}
}

func TestEmpiricalUnboundedTail(t *testing.T) {
	g, _ := NewGeomDecreasing(math.Pow(2, 1.0/8))
	ts, ps := sampleCurve(g, 40, 60) // P(40) ≈ 0.03 > 0: unbounded
	e, err := NewEmpirical(ts, ps)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(e.Horizon(), 1) {
		t.Fatalf("horizon = %g, want +Inf", e.Horizon())
	}
	// Tail must keep decaying toward zero, monotonically.
	prev := e.P(40)
	for _, x := range []float64{45, 60, 90, 150, 400} {
		v := e.P(x)
		if v > prev+1e-12 {
			t.Fatalf("tail increases at %g", x)
		}
		prev = v
	}
	if e.P(400) > 1e-4 {
		t.Errorf("tail P(400) = %g has not decayed", e.P(400))
	}
}

func TestEmpiricalDerivNonPositive(t *testing.T) {
	gi, _ := NewGeomIncreasing(32)
	ts, ps := sampleCurve(gi, 32, 64)
	e, err := NewEmpirical(ts, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 320; i++ {
		x := 32 * float64(i) / 320
		if d := e.Deriv(x); d > 1e-9 {
			t.Fatalf("Deriv(%g) = %g > 0", x, d)
		}
	}
}

// TestEmpiricalPNeverExceedsOne pins the upper clamp in Empirical.P:
// NewEmpirical accepts ps[0] within 1e-9 of 1 and the PCHIP interpolant
// passes through the samples, so without the clamp P just above t=0
// reproduced a ps[0] slightly greater than one.
func TestEmpiricalPNeverExceedsOne(t *testing.T) {
	ts := []float64{0, 1, 2}
	ps := []float64{1 + 9e-10, 0.5, 0}
	e, err := NewEmpirical(ts, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 1000; i++ {
		x := 2 * float64(i) / 1000
		if p := e.P(x); p > 1 || p < 0 {
			t.Fatalf("P(%g) = %.20g, escapes [0, 1]", x, p)
		}
	}
	if p := e.P(1e-12); p > 1 {
		t.Errorf("P(1e-12) = %.20g, want <= 1", p)
	}
}

func TestEmpiricalRejectsBadSamples(t *testing.T) {
	cases := []struct {
		name   string
		ts, ps []float64
	}{
		{"too few", []float64{0, 1}, []float64{1, 0}},
		{"nonzero start", []float64{1, 2, 3}, []float64{1, 0.5, 0}},
		{"p0 not one", []float64{0, 1, 2}, []float64{0.9, 0.5, 0}},
		{"increasing p", []float64{0, 1, 2}, []float64{1, 0.5, 0.7}},
		{"negative p", []float64{0, 1, 2}, []float64{1, 0.5, -0.1}},
		{"length mismatch", []float64{0, 1, 2}, []float64{1, 0.5}},
	}
	for _, c := range cases {
		if _, err := NewEmpirical(c.ts, c.ps); !errors.Is(err, ErrBadSamples) {
			t.Errorf("%s: err = %v, want ErrBadSamples", c.name, err)
		}
	}
}

func TestEmpiricalConditionalComposition(t *testing.T) {
	// An empirical life function must compose with Conditional — the
	// trace-fitted progressive-planning path.
	u, _ := NewUniform(80)
	ts, ps := sampleCurve(u, 80, 40)
	e, err := NewEmpirical(ts, ps)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewConditional(e, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.P(30); math.Abs(got-0.5) > 1e-5 {
		t.Errorf("conditional empirical P(30) = %g, want ~0.5", got)
	}
}
