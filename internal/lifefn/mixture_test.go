package lifefn

import (
	"math"
	"testing"
)

func TestMixtureBasics(t *testing.T) {
	short, _ := NewUniform(10)
	long, _ := NewUniform(100)
	m, err := NewMixture([]Life{short, long}, []float64{7, 3})
	if err != nil {
		t.Fatal(err)
	}
	w := m.Weights()
	if math.Abs(w[0]-0.7) > 1e-12 || math.Abs(w[1]-0.3) > 1e-12 {
		t.Errorf("weights = %v", w)
	}
	// P(5) = 0.7·0.5 + 0.3·0.95 = 0.635.
	if got := m.P(5); math.Abs(got-0.635) > 1e-12 {
		t.Errorf("P(5) = %g, want 0.635", got)
	}
	// Beyond the short component only the long one survives.
	if got := m.P(50); math.Abs(got-0.3*0.5) > 1e-12 {
		t.Errorf("P(50) = %g, want 0.15", got)
	}
	if m.Horizon() != 100 {
		t.Errorf("horizon = %g", m.Horizon())
	}
	if err := Validate(m, ValidateOptions{}); err != nil {
		t.Error(err)
	}
}

func TestMixtureShapeRules(t *testing.T) {
	u1, _ := NewUniform(10)
	u2, _ := NewUniform(50)
	g1, _ := NewGeomDecreasing(2)
	g2, _ := NewGeomDecreasing(1.1)
	p3, _ := NewPoly(3, 20)

	linear, _ := NewMixture([]Life{u1, u2}, []float64{1, 1})
	// Mixture of two different-slope linear functions is piecewise
	// linear with a kink at the short horizon — concave overall? The
	// derivative steps from -(w1/10 + w2/50) to -(w2/50) at t=10: it
	// *increases*, so the mixture is convex, not linear. The shape rule
	// classifies by component agreement: both Linear → Linear claim
	// would be wrong, so the implementation must report what the
	// components justify pointwise. Verify against DetectShape.
	detected := DetectShape(linear, 0, 50, 256)
	if linear.Shape() == Linear && detected == Concave {
		t.Errorf("mixture of linear components misclassified: declared %v, detected %v", linear.Shape(), detected)
	}

	convex, _ := NewMixture([]Life{g1, g2}, []float64{1, 2})
	if convex.Shape() != Convex {
		t.Errorf("all-convex mixture shape = %v", convex.Shape())
	}
	if d := DetectShape(convex, 0, 40, 128); d != Convex {
		t.Errorf("all-convex mixture detected as %v", d)
	}

	mixed, _ := NewMixture([]Life{g1, p3}, []float64{1, 1})
	if mixed.Shape() != Unknown {
		t.Errorf("mixed-shape mixture = %v, want unknown", mixed.Shape())
	}
}

func TestMixtureDerivConsistent(t *testing.T) {
	u, _ := NewUniform(40)
	g, _ := NewGeomDecreasing(math.Pow(2, 1.0/8))
	m, _ := NewMixture([]Life{u, g}, []float64{1, 1})
	for _, x := range []float64{1, 5, 15, 30, 60} {
		h := 1e-6 * (1 + x)
		fd := (m.P(x+h) - m.P(x-h)) / (2 * h)
		if math.Abs(fd-m.Deriv(x)) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("Deriv(%g) = %g, fd = %g", x, m.Deriv(x), fd)
		}
	}
}

// TestMixturePNeverExceedsOne pins the clamp in Mixture.P: normalizing
// the weights and then re-summing them each round once let float ripple
// push the weighted sum of all-surviving components a few ulps above 1.
// Six equal weights of 0.1 reproduce that: Σ (0.1/0.6) = 1 + 2e-16
// under left-to-right accumulation.
func TestMixturePNeverExceedsOne(t *testing.T) {
	plateau := Func{
		PFunc: func(tt float64) float64 {
			if tt <= 1 {
				return 1
			}
			if tt >= 2 {
				return 0
			}
			return 2 - tt
		},
		DerivFunc: func(tt float64) float64 {
			if tt < 1 || tt > 2 {
				return 0
			}
			return -1
		},
		Lifespan: 2,
		Name:     "plateau",
	}
	components := make([]Life, 6)
	weights := make([]float64, 6)
	for i := range components {
		components[i] = plateau
		weights[i] = 0.1
	}
	m, err := NewMixture(components, weights)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{1e-12, 0.25, 0.5, 0.999, 1, 1.5, 2, 3} {
		if p := m.P(tt); p > 1 || p < 0 {
			t.Errorf("P(%g) = %.20g, escapes [0, 1]", tt, p)
		}
	}
}

func TestMixtureRejectsBadInput(t *testing.T) {
	u, _ := NewUniform(10)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture([]Life{u}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewMixture([]Life{u}, []float64{0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewMixture([]Life{nil}, []float64{1}); err == nil {
		t.Error("nil component accepted")
	}
}

func TestMixtureConditionalComposes(t *testing.T) {
	// Conditioning a mixture reweights toward long-lived components —
	// the Bayesian update progressive planning relies on.
	short, _ := NewUniform(10)
	long, _ := NewUniform(100)
	m, _ := NewMixture([]Life{short, long}, []float64{1, 1})
	cond, err := NewConditional(m, 10) // short component is dead
	if err != nil {
		t.Fatal(err)
	}
	// p(t | survived 10) should now be exactly the long component's
	// conditional curve.
	longCond, _ := NewConditional(long, 10)
	for i := 0; i <= 20; i++ {
		x := 90 * float64(i) / 20
		if math.Abs(cond.P(x)-longCond.P(x)) > 1e-12 {
			t.Fatalf("conditioned mixture mismatch at %g: %g vs %g", x, cond.P(x), longCond.P(x))
		}
	}
}
