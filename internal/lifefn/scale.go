package lifefn

import (
	"fmt"
	"math"
)

// Scaled is the life function p(t/k) for a time-unit change k > 0: the
// same owner behaviour measured in different units (seconds vs minutes,
// or a machine k× faster so everything takes 1/k as long). Curvature
// and the model identities are preserved; the horizon scales by k.
//
// Scaling underpins a useful invariance of the guidelines (tested in
// internal/core): scaling time by k while scaling the overhead c by k
// scales the optimal periods by k and the expected work by k.
type Scaled struct {
	Base Life
	K    float64 //cs:unit dimensionless
}

// NewScaled returns base with its time axis stretched by factor k.
func NewScaled(base Life, k float64) (*Scaled, error) {
	if base == nil {
		return nil, fmt.Errorf("lifefn: nil base life function")
	}
	if !(k > 0) || math.IsInf(k, 0) {
		return nil, fmt.Errorf("lifefn: scale factor must be positive and finite, got %g", k)
	}
	return &Scaled{Base: base, K: k}, nil
}

// P implements Life.
//
//cs:unit t=time return=probability
func (s *Scaled) P(t float64) float64 { return s.Base.P(t / s.K) }

// Deriv implements Life.
//
//cs:unit t=time return=rate
func (s *Scaled) Deriv(t float64) float64 { return s.Base.Deriv(t/s.K) / s.K }

// Shape implements Life: rescaling time preserves curvature sign.
func (s *Scaled) Shape() Shape { return s.Base.Shape() }

// Horizon implements Life.
//
//cs:unit return=time
func (s *Scaled) Horizon() float64 {
	h := s.Base.Horizon()
	if math.IsInf(h, 1) {
		return h
	}
	return h * s.K
}

// String implements Life.
func (s *Scaled) String() string {
	return fmt.Sprintf("scaled(%s, k=%g)", s.Base.String(), s.K)
}
