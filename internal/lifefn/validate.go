package lifefn

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// ValidateOptions tunes Validate's sampling.
type ValidateOptions struct {
	// Samples is the number of grid points checked; 256 if zero.
	Samples int
	// Span is the time range checked for unbounded-horizon functions;
	// if zero, the time by which P has fallen below 1e-6 (capped at
	// 1e9) is used.
	Span float64
	// Tol is the tolerance for the model identities; 1e-6 if zero.
	Tol float64
}

// Validate checks that l satisfies the paper's model assumptions on a
// sample grid: P(0) = 1; P nonincreasing and within [0, 1]; P tending to
// zero at the horizon; Deriv nonpositive and consistent with a finite
// difference of P. It returns the first violation found, or nil.
func Validate(l Life, opt ValidateOptions) error {
	if opt.Samples <= 0 {
		opt.Samples = 256
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-6
	}
	if p0 := l.P(0); math.Abs(p0-1) > opt.Tol {
		return fmt.Errorf("lifefn: %s: P(0) = %g, want 1", l, p0)
	}
	span := opt.Span
	if span <= 0 {
		span = effectiveSpan(l)
	}
	prev := l.P(0)
	for i := 1; i <= opt.Samples; i++ {
		t := span * float64(i) / float64(opt.Samples)
		p := l.P(t)
		if math.IsNaN(p) || p < -opt.Tol || p > 1+opt.Tol {
			return fmt.Errorf("lifefn: %s: P(%g) = %g outside [0, 1]", l, t, p)
		}
		if p > prev+opt.Tol {
			return fmt.Errorf("lifefn: %s: P increases from %g to %g at t=%g", l, prev, p, t)
		}
		d := l.Deriv(t)
		if d > opt.Tol {
			return fmt.Errorf("lifefn: %s: Deriv(%g) = %g > 0", l, t, d)
		}
		// Interior derivative consistency check (skip kinks at the ends).
		if i < opt.Samples && p > 1e-6 && p < 1-1e-6 {
			fd := numeric.Derivative(l.P, t)
			scale := math.Abs(d) + math.Abs(fd) + 1e-9
			if math.Abs(d-fd)/scale > 1e-3 {
				return fmt.Errorf("lifefn: %s: Deriv(%g) = %g disagrees with finite difference %g", l, t, d, fd)
			}
		}
		prev = p
	}
	if end := l.P(span); end > 1e-3 {
		return fmt.Errorf("lifefn: %s: P(%g) = %g has not decayed toward 0", l, span, end)
	}
	return nil
}

// effectiveSpan returns the horizon for bounded life functions and a
// time by which P has decayed below 1e-6 for unbounded ones.
func effectiveSpan(l Life) float64 {
	if h := l.Horizon(); !math.IsInf(h, 1) {
		return h
	}
	span := 1.0
	for l.P(span) > 1e-6 && span < 1e9 {
		span *= 2
	}
	return span
}

// MeanLifetime returns the expected reclaim time E[R] = ∫ P(t) dt,
// integrated to the horizon (or to the effective span for unbounded
// functions).
func MeanLifetime(l Life) (float64, error) {
	span := effectiveSpan(l)
	v, err := numeric.Integrate(l.P, 0, span, numeric.QuadOptions{Tol: 1e-10})
	if err != nil {
		return v, fmt.Errorf("lifefn: mean lifetime of %s: %w", l, err)
	}
	return v, nil
}

// InverseP solves P(t) = y for t within [0, hi] by bisection on the
// nonincreasing curve. It is the primitive behind both schedule
// generation (inverting system (3.6)) and inverse-transform sampling of
// reclaim times. hi must satisfy P(hi) <= y <= P(0).
func InverseP(l Life, y, hi float64) (float64, error) {
	if y > 1 || y < 0 {
		return 0, fmt.Errorf("lifefn: InverseP target %g outside [0, 1]", y)
	}
	f := func(t float64) float64 { return l.P(t) - y }
	root, err := numeric.Brent(f, 0, hi, numeric.RootOptions{AbsTol: 1e-13})
	if err != nil {
		return 0, fmt.Errorf("lifefn: InverseP(%s, %g): %w", l, y, err)
	}
	return root, nil
}
