package lifefn

import (
	"fmt"
	"math"
)

// Conditional is the life function of an episode that is known to have
// survived to time Tau, re-based so that its own clock starts at zero:
//
//	p(t | survived Tau) = base.P(Tau + t) / base.P(Tau).
//
// Section 6 of the paper observes that, because system (3.6) determines
// t_{k+1} only after period k has ended, schedules can be built
// progressively from conditional rather than absolute probabilities;
// Conditional is that construction. Concavity and convexity are
// preserved, since conditioning shifts and positively rescales P.
type Conditional struct {
	Base Life
	Tau  float64 //cs:unit time
	pTau float64 //cs:unit probability
}

// NewConditional returns base conditioned on survival to tau.
// It fails if the conditioning event has zero probability.
//
//cs:unit tau=time
func NewConditional(base Life, tau float64) (*Conditional, error) {
	if tau < 0 {
		return nil, fmt.Errorf("lifefn: negative conditioning time %g", tau)
	}
	pt := base.P(tau)
	if !(pt > 0) {
		return nil, fmt.Errorf("lifefn: conditioning on zero-probability survival to t=%g (p=%g)", tau, pt)
	}
	return &Conditional{Base: base, Tau: tau, pTau: pt}, nil
}

// P implements Life.
//
//cs:unit t=time return=probability
func (c *Conditional) P(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return c.Base.P(c.Tau+t) / c.pTau //lint:allow unitflow a ratio of like probabilities is the conditional probability
}

// Deriv implements Life.
//
//cs:unit t=time return=rate
func (c *Conditional) Deriv(t float64) float64 {
	if t < 0 {
		return 0
	}
	return c.Base.Deriv(c.Tau+t) / c.pTau
}

// Shape implements Life: conditioning preserves curvature.
func (c *Conditional) Shape() Shape { return c.Base.Shape() }

// Horizon implements Life.
//
//cs:unit return=time
func (c *Conditional) Horizon() float64 {
	h := c.Base.Horizon()
	if math.IsInf(h, 1) {
		return h
	}
	if rem := h - c.Tau; rem > 0 {
		return rem
	}
	return 0
}

// String implements Life.
func (c *Conditional) String() string {
	return fmt.Sprintf("%s | survived %g", c.Base.String(), c.Tau)
}
