package lifefn

import (
	"fmt"
	"math"
)

// Mixture is a convex combination of life functions:
// P(t) = Σ w_i · P_i(t). It models multimodal owner behaviour — e.g. an
// owner who takes a quick coffee break with probability 0.7 and leaves
// for a long meeting with probability 0.3. Mixtures of valid life
// functions are valid life functions, but curvature is generally not
// preserved, so most mixtures only support the paper's shape-free
// results (Theorems 3.1 and 3.2); a mixture of all-convex components is
// convex (a nonnegative combination of nondecreasing derivatives is
// nondecreasing), and likewise for concave.
type Mixture struct {
	components []Life
	weights    []float64 //cs:unit probability
	shape      Shape
	horizon    float64 //cs:unit time
	name       string
}

// NewMixture returns the weighted mixture of the given life functions.
// Weights must be positive and are normalized to sum to one. At least
// one component is required.
func NewMixture(components []Life, weights []float64) (*Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return nil, fmt.Errorf("lifefn: mixture needs matched components/weights, got %d/%d", len(components), len(weights))
	}
	total := 0.0
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("lifefn: mixture weight %d is %g, must be positive and finite", i, w)
		}
		if components[i] == nil {
			return nil, fmt.Errorf("lifefn: mixture component %d is nil", i)
		}
		total += w
	}
	m := &Mixture{
		components: append([]Life(nil), components...),
		weights:    make([]float64, len(weights)),
	}
	for i, w := range weights {
		m.weights[i] = w / total
	}
	// Horizon: the furthest component horizon (the mixture survives as
	// long as any component might).
	m.horizon = 0
	for _, c := range m.components {
		h := c.Horizon()
		if math.IsInf(h, 1) {
			m.horizon = math.Inf(1)
			break
		}
		if h > m.horizon {
			m.horizon = h
		}
	}
	// Shape: component agreement is NOT sufficient — mixing two linear
	// life functions with different horizons yields a convex piecewise
	// curve (the derivative jumps up where the short component dies).
	// Classify numerically over the effective span instead. Mixtures of
	// bounded components also have derivative kinks at interior
	// horizons; the planners tolerate these, but strictly speaking the
	// paper's differentiability assumption holds only piecewise.
	span := m.horizon
	if math.IsInf(span, 1) {
		span = 1.0
		for m.P(span) > 1e-9 && span < 1e12 {
			span *= 2
		}
	}
	m.shape = DetectShape(m, 0, span, 256)
	m.name = fmt.Sprintf("mixture(%d components)", len(m.components))
	return m, nil
}

// P implements Life.
//
//cs:unit t=time return=probability
func (m *Mixture) P(t float64) float64 {
	if t <= 0 {
		return 1
	}
	sum := 0.0
	for i, c := range m.components {
		sum += m.weights[i] * c.P(t)
	}
	// The normalized weights sum to one and every component P is at
	// most one, but the two rounding steps can leave the accumulated
	// sum a few ulps above; a survival probability must not exceed 1.
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Deriv implements Life.
//
//cs:unit t=time return=rate
func (m *Mixture) Deriv(t float64) float64 {
	if t < 0 {
		return 0
	}
	sum := 0.0
	for i, c := range m.components {
		sum += m.weights[i] * c.Deriv(t)
	}
	return sum
}

// Shape implements Life.
func (m *Mixture) Shape() Shape { return m.shape }

// Horizon implements Life.
//
//cs:unit return=time
func (m *Mixture) Horizon() float64 { return m.horizon }

// String implements Life.
func (m *Mixture) String() string { return m.name }

// Weights returns a copy of the normalized mixture weights.
//
//cs:unit return=probability
func (m *Mixture) Weights() []float64 { return append([]float64(nil), m.weights...) }
