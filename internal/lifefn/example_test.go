package lifefn_test

import (
	"fmt"
	"log"

	"repro/internal/lifefn"
)

// The three scenario families of the paper, side by side at their
// half-probability points.
func Example() {
	uniform, err := lifefn.NewUniform(100)
	if err != nil {
		log.Fatal(err)
	}
	halfLife, err := lifefn.NewGeomDecreasing(1.0218971486541166) // 2^{1/32}
	if err != nil {
		log.Fatal(err)
	}
	doubling, err := lifefn.NewGeomIncreasing(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform:  P(50)=%.3f shape=%s\n", uniform.P(50), uniform.Shape())
	fmt.Printf("halflife: P(32)=%.3f shape=%s\n", halfLife.P(32), halfLife.Shape())
	fmt.Printf("doubling: P(50)=%.3f shape=%s\n", doubling.P(50), doubling.Shape())
	// Output:
	// uniform:  P(50)=0.500 shape=linear
	// halflife: P(32)=0.500 shape=convex
	// doubling: P(50)=1.000 shape=concave
}

// Conditioning re-bases a life function on observed survival — the
// mechanism behind the paper's progressive (Section 6) scheduling.
func ExampleNewConditional() {
	u, _ := lifefn.NewUniform(100)
	cond, err := lifefn.NewConditional(u, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(30 | survived 40) = %.2f, remaining horizon %.0f\n",
		cond.P(30), cond.Horizon())
	// Output: P(30 | survived 40) = 0.50, remaining horizon 60
}

// Mixtures model owners with several behaviour modes.
func ExampleNewMixture() {
	coffee, _ := lifefn.NewUniform(10)
	meeting, _ := lifefn.NewUniform(90)
	mix, err := lifefn.NewMixture([]lifefn.Life{coffee, meeting}, []float64{3, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(20) = %.4f (coffee mode is over; meeting mode persists)\n", mix.P(20))
	// Output: P(20) = 0.1944 (coffee mode is over; meeting mode persists)
}
