package lifefn

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// HazardRate returns the instantaneous reclaim hazard
// h(t) = -p'(t)/p(t): the conditional rate at which the owner returns
// given survival to t. The paper's scenarios read naturally in hazard
// terms — constant for a^{-t} (memoryless), rising to infinity at L for
// the bounded families, falling for heavy tails (which is exactly the
// regime where optimal schedules stop existing; see core.AdmitsOptimal).
//
//cs:unit t=time return=rate
func HazardRate(l Life, t float64) float64 {
	p := l.P(t)
	if p <= 0 {
		return math.Inf(1)
	}
	return -l.Deriv(t) / p
}

// CumulativeHazard returns Λ(t) = ∫₀ᵗ h(τ) dτ by adaptive quadrature.
// For any valid life function, p(t) = exp(-Λ(t)) — an identity the
// property tests exercise across every built-in family.
//
//cs:unit t=time
func CumulativeHazard(l Life, t float64) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	if h := l.Horizon(); !math.IsInf(h, 1) && t >= h {
		return math.Inf(1), nil
	}
	v, err := numeric.Integrate(func(tau float64) float64 {
		return HazardRate(l, tau)
	}, 0, t, numeric.QuadOptions{Tol: 1e-10})
	if err != nil {
		return v, fmt.Errorf("lifefn: cumulative hazard of %s at %g: %w", l, t, err)
	}
	return v, nil
}
