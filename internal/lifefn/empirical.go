package lifefn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
)

// ErrBadSamples reports unusable survival samples.
var ErrBadSamples = errors.New("lifefn: invalid survival samples")

// Empirical is a life function fitted from tabulated survival samples —
// the paper's "knowledge ... garnered possibly from trace data,
// encapsulated by some well-behaved curve". The samples are interpolated
// with a monotone cubic (PCHIP), which keeps the curve nonincreasing and
// continuously differentiable, exactly the smoothness the guidelines
// assume.
type Empirical struct {
	interp  *numeric.PCHIP
	shape   Shape
	horizon float64 //cs:unit time
	name    string
}

// NewEmpirical builds a life function from survival samples: ts strictly
// increasing starting at 0, ps nonincreasing with ps[0] = 1. If the last
// sample's survival is (near) zero the horizon is the last abscissa;
// otherwise the horizon is unbounded and P decays exponentially beyond
// the last sample, matching its terminal hazard rate.
//
//cs:unit ts=time ps=probability
func NewEmpirical(ts, ps []float64) (*Empirical, error) {
	if len(ts) < 3 || len(ts) != len(ps) {
		return nil, fmt.Errorf("%w: need >= 3 matched samples, got %d/%d", ErrBadSamples, len(ts), len(ps))
	}
	if ts[0] != 0 {
		return nil, fmt.Errorf("%w: first sample must be at t=0, got %g", ErrBadSamples, ts[0])
	}
	if math.Abs(ps[0]-1) > 1e-9 {
		return nil, fmt.Errorf("%w: p(0) must be 1, got %g", ErrBadSamples, ps[0])
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] > ps[i-1]+1e-12 {
			return nil, fmt.Errorf("%w: survival increases at sample %d (%g -> %g)", ErrBadSamples, i, ps[i-1], ps[i])
		}
		if ps[i] < 0 {
			return nil, fmt.Errorf("%w: negative survival %g at sample %d", ErrBadSamples, ps[i], i)
		}
	}
	interp, err := numeric.NewPCHIP(ts, ps)
	if err != nil {
		return nil, fmt.Errorf("lifefn: %w", err)
	}
	e := &Empirical{interp: interp, name: fmt.Sprintf("empirical(%d samples)", len(ts))}
	last := len(ts) - 1
	if ps[last] <= 1e-9 {
		e.horizon = ts[last]
	} else {
		e.horizon = math.Inf(1)
	}
	e.shape = DetectShape(e, 0, ts[last], 64)
	return e, nil
}

// P implements Life.
//
//cs:unit t=time return=probability
func (e *Empirical) P(t float64) float64 {
	if t <= 0 {
		return 1
	}
	_, hi := e.interp.Domain()
	if t <= hi {
		v := e.interp.At(t)
		if v < 0 {
			return 0
		}
		// ps[0] may sit a hair above 1 (NewEmpirical allows 1e-9 slack)
		// and the interpolant passes through the samples, so clamp the
		// top end too: a survival probability must not exceed 1.
		if v > 1 {
			return 1
		}
		return v
	}
	if !math.IsInf(e.horizon, 1) {
		return 0
	}
	return e.tailP(t, hi)
}

// Deriv implements Life.
//
//cs:unit t=time return=rate
func (e *Empirical) Deriv(t float64) float64 {
	if t < 0 {
		return 0
	}
	_, hi := e.interp.Domain()
	if t <= hi {
		return e.interp.DerivAt(t)
	}
	if !math.IsInf(e.horizon, 1) {
		return 0
	}
	return -e.tailRate(hi) * e.tailP(t, hi)
}

// tailP extends the curve past the last sample with exponential decay at
// the terminal hazard rate, so an unbounded empirical life function
// still tends to zero.
//
//cs:unit t=time hi=time return=probability
func (e *Empirical) tailP(t, hi float64) float64 {
	return e.interp.At(hi) * math.Exp(-e.tailRate(hi)*(t-hi))
}

//cs:unit hi=time return=rate
func (e *Empirical) tailRate(hi float64) float64 {
	p := e.interp.At(hi)
	d := e.interp.DerivAt(hi)
	if p <= 0 || d >= 0 {
		return 1 // arbitrary positive rate; curve is already ~0
	}
	return -d / p
}

// Shape implements Life.
func (e *Empirical) Shape() Shape { return e.shape }

// Horizon implements Life.
//
//cs:unit return=time
func (e *Empirical) Horizon() float64 { return e.horizon }

// String implements Life.
func (e *Empirical) String() string { return e.name }

// DetectShape samples l's derivative at n+1 points of [lo, hi] and
// classifies the curvature: Concave if the derivative never increases,
// Convex if it never decreases, Linear if both, Unknown otherwise.
// Comparisons use a small relative slack so that floating-point ripple
// on a straight line is still classified Linear.
//
//cs:unit lo=time hi=time
func DetectShape(l Life, lo, hi float64, n int) Shape {
	if n < 2 {
		n = 2
	}
	h := (hi - lo) / float64(n)
	tol := 1e-9
	prev := l.Deriv(lo + 1e-12)
	nonInc, nonDec := true, true
	scale := math.Abs(prev) + 1e-30
	for i := 1; i <= n; i++ {
		t := lo + float64(i)*h
		if t >= hi {
			t = hi - 1e-12*(hi-lo) // stay inside the open interval
		}
		d := l.Deriv(t)
		if d > prev+tol*scale {
			nonInc = false
		}
		if d < prev-tol*scale {
			nonDec = false
		}
		prev = d
		if s := math.Abs(d); s > scale {
			scale = s
		}
	}
	switch {
	case nonInc && nonDec:
		return Linear
	case nonInc:
		return Concave
	case nonDec:
		return Convex
	default:
		return Unknown
	}
}
