package lifefn

import (
	"math"
	"testing"
)

func TestHazardRateKnownForms(t *testing.T) {
	// Memoryless: constant hazard ln a.
	a := math.Pow(2, 1.0/16)
	g, _ := NewGeomDecreasing(a)
	for _, x := range []float64{0.5, 5, 50} {
		if h := HazardRate(g, x); math.Abs(h-math.Log(a)) > 1e-12 {
			t.Errorf("exponential hazard at %g = %g, want %g", x, h, math.Log(a))
		}
	}
	// Uniform: h(t) = 1/(L-t), exploding at the horizon.
	u, _ := NewUniform(100)
	if h := HazardRate(u, 50); math.Abs(h-0.02) > 1e-12 {
		t.Errorf("uniform hazard at 50 = %g, want 0.02", h)
	}
	if h := HazardRate(u, 100); !math.IsInf(h, 1) {
		t.Errorf("uniform hazard at L = %g, want +Inf", h)
	}
	// Power law: h(t) = d/(1+t), fading.
	p, _ := NewPowerLaw(2)
	if h := HazardRate(p, 9); math.Abs(h-0.2) > 1e-12 {
		t.Errorf("power-law hazard at 9 = %g, want 0.2", h)
	}
}

func TestCumulativeHazardIdentity(t *testing.T) {
	// p(t) = exp(-Λ(t)) for every family, at interior points.
	lives := []Life{}
	u, _ := NewUniform(100)
	p3, _ := NewPoly(3, 100)
	g, _ := NewGeomDecreasing(math.Pow(2, 1.0/16))
	gi, _ := NewGeomIncreasing(48)
	pw, _ := NewPowerLaw(1.5)
	lives = append(lives, u, p3, g, gi, pw)
	for _, l := range lives {
		span := l.Horizon()
		if math.IsInf(span, 1) {
			span = 40
		}
		for _, frac := range []float64{0.1, 0.4, 0.7} {
			x := frac * span
			lam, err := CumulativeHazard(l, x)
			if err != nil {
				t.Fatalf("%s at %g: %v", l, x, err)
			}
			want := l.P(x)
			got := math.Exp(-lam)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Errorf("%s: exp(-Λ(%g)) = %.9g, p = %.9g", l, x, got, want)
			}
		}
	}
}

func TestCumulativeHazardBoundary(t *testing.T) {
	u, _ := NewUniform(10)
	if v, _ := CumulativeHazard(u, 0); v != 0 {
		t.Errorf("Λ(0) = %g", v)
	}
	if v, _ := CumulativeHazard(u, 10); !math.IsInf(v, 1) {
		t.Errorf("Λ(L) = %g, want +Inf", v)
	}
	if v, _ := CumulativeHazard(u, -3); v != 0 {
		t.Errorf("Λ(-3) = %g", v)
	}
}
