package lifefn

import (
	"math"
	"testing"
)

func TestScaledBasics(t *testing.T) {
	u, _ := NewUniform(100)
	s, err := NewScaled(u, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.P(150); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(150) = %g, want 0.5", got)
	}
	if got := s.Horizon(); got != 300 {
		t.Errorf("horizon = %g, want 300", got)
	}
	if s.Shape() != Linear {
		t.Errorf("shape = %v", s.Shape())
	}
	if err := Validate(s, ValidateOptions{}); err != nil {
		t.Error(err)
	}
}

func TestScaledDerivChainRule(t *testing.T) {
	p3, _ := NewPoly(3, 50)
	s, _ := NewScaled(p3, 2)
	for _, x := range []float64{5, 20, 60, 90} {
		h := 1e-6 * (1 + x)
		fd := (s.P(x+h) - s.P(x-h)) / (2 * h)
		if math.Abs(fd-s.Deriv(x)) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("Deriv(%g) = %g, fd = %g", x, s.Deriv(x), fd)
		}
	}
}

func TestScaledUnboundedHorizon(t *testing.T) {
	g, _ := NewGeomDecreasing(2)
	s, _ := NewScaled(g, 8)
	if !math.IsInf(s.Horizon(), 1) {
		t.Error("scaled unbounded horizon should stay unbounded")
	}
	// Scaling an exponential by 8 is an exponential with 8x half-life.
	g8, _ := NewGeomDecreasing(math.Pow(2, 1.0/8))
	for i := 0; i <= 30; i++ {
		x := 30 * float64(i) / 30
		if math.Abs(s.P(x)-g8.P(x)) > 1e-12 {
			t.Fatalf("scaled exponential mismatch at %g", x)
		}
	}
}

func TestScaledRejectsBadInput(t *testing.T) {
	u, _ := NewUniform(10)
	if _, err := NewScaled(nil, 2); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewScaled(u, 0); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := NewScaled(u, math.Inf(1)); err == nil {
		t.Error("infinite factor accepted")
	}
}
