package lifefn

import (
	"math"
	"testing"
	"testing/quick"
)

// allBuiltins returns one representative of every built-in family.
func allBuiltins(t *testing.T) []Life {
	t.Helper()
	u, err := NewUniform(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPoly(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := NewPoly(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := NewGeomDecreasing(math.Pow(2, 1.0/16))
	if err != nil {
		t.Fatal(err)
	}
	gi, err := NewGeomIncreasing(48)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := NewPowerLaw(2)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := NewWeibull(0.8, 30)
	if err != nil {
		t.Fatal(err)
	}
	return []Life{u, p2, p5, gd, gi, pw, wb}
}

func TestBuiltinsSatisfyModel(t *testing.T) {
	for _, l := range allBuiltins(t) {
		if err := Validate(l, ValidateOptions{}); err != nil {
			t.Errorf("%s: %v", l, err)
		}
	}
}

func TestConstructorsRejectBadParameters(t *testing.T) {
	if _, err := NewUniform(0); err == nil {
		t.Error("NewUniform(0) accepted")
	}
	if _, err := NewUniform(math.Inf(1)); err == nil {
		t.Error("NewUniform(Inf) accepted")
	}
	if _, err := NewPoly(0, 10); err == nil {
		t.Error("NewPoly(0, 10) accepted")
	}
	if _, err := NewPoly(2, -1); err == nil {
		t.Error("NewPoly(2, -1) accepted")
	}
	if _, err := NewGeomDecreasing(1); err == nil {
		t.Error("NewGeomDecreasing(1) accepted")
	}
	if _, err := NewGeomIncreasing(0); err == nil {
		t.Error("NewGeomIncreasing(0) accepted")
	}
	if _, err := NewPowerLaw(0); err == nil {
		t.Error("NewPowerLaw(0) accepted")
	}
	if _, err := NewWeibull(0, 1); err == nil {
		t.Error("NewWeibull(0, 1) accepted")
	}
}

func TestUniformValues(t *testing.T) {
	u, _ := NewUniform(100)
	cases := []struct{ t, want float64 }{
		{0, 1}, {25, 0.75}, {50, 0.5}, {100, 0}, {150, 0}, {-3, 1},
	}
	for _, c := range cases {
		if got := u.P(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if u.Shape() != Linear {
		t.Errorf("shape = %v, want linear", u.Shape())
	}
}

func TestPolyReducesToUniformAtD1(t *testing.T) {
	u, _ := NewUniform(77)
	p, _ := NewPoly(1, 77)
	for i := 0; i <= 50; i++ {
		x := 77 * float64(i) / 50
		if math.Abs(u.P(x)-p.P(x)) > 1e-12 {
			t.Fatalf("P mismatch at %g: %g vs %g", x, u.P(x), p.P(x))
		}
		if math.Abs(u.Deriv(x)-p.Deriv(x)) > 1e-12 {
			t.Fatalf("Deriv mismatch at %g", x)
		}
	}
}

func TestPolyShapes(t *testing.T) {
	p1, _ := NewPoly(1, 10)
	p3, _ := NewPoly(3, 10)
	if p1.Shape() != Linear {
		t.Errorf("p_{1,L} shape = %v", p1.Shape())
	}
	if p3.Shape() != Concave {
		t.Errorf("p_{3,L} shape = %v", p3.Shape())
	}
}

func TestGeomDecreasingHalfLife(t *testing.T) {
	// a = 2^{1/32} gives a half-life of 32 time units.
	g, _ := NewGeomDecreasing(math.Pow(2, 1.0/32))
	if got := g.P(32); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(half-life) = %g, want 0.5", got)
	}
	if got := g.P(64); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("P(2·half-life) = %g, want 0.25", got)
	}
	if !math.IsInf(g.Horizon(), 1) {
		t.Error("geometric decreasing should have unbounded horizon")
	}
}

func TestGeomIncreasingMatchesDefinition(t *testing.T) {
	// For small L, compare against the literal (2^L - 2^t)/(2^L - 1).
	g, _ := NewGeomIncreasing(20)
	for i := 0; i <= 40; i++ {
		x := 20 * float64(i) / 40
		want := (math.Pow(2, 20) - math.Pow(2, x)) / (math.Pow(2, 20) - 1)
		if got := g.P(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("P(%g) = %.12g, want %.12g", x, got, want)
		}
	}
}

func TestGeomIncreasingLargeLStable(t *testing.T) {
	// 2^1000 overflows float64; the expm1 form must stay finite.
	g, _ := NewGeomIncreasing(1000)
	if p := g.P(500); math.IsNaN(p) || p <= 0 || p > 1 {
		t.Errorf("P(500) = %g", p)
	}
	if d := g.Deriv(999); math.IsNaN(d) || d >= 0 {
		t.Errorf("Deriv(999) = %g", d)
	}
}

func TestPowerLawTail(t *testing.T) {
	p, _ := NewPowerLaw(2)
	if got := p.P(9); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("P(9) = %g, want 0.01", got)
	}
}

func TestWeibullShapeClassification(t *testing.T) {
	convex, _ := NewWeibull(0.7, 10)
	if convex.Shape() != Convex {
		t.Errorf("k<1 shape = %v, want convex", convex.Shape())
	}
	mixed, _ := NewWeibull(2, 10)
	if mixed.Shape() != Unknown {
		t.Errorf("k>1 shape = %v, want unknown", mixed.Shape())
	}
}

func TestDerivMatchesFiniteDifferenceEverywhere(t *testing.T) {
	for _, l := range allBuiltins(t) {
		span := l.Horizon()
		if math.IsInf(span, 1) {
			span = 64
		}
		for i := 1; i < 40; i++ {
			x := span * float64(i) / 40
			h := 1e-6 * (1 + x)
			fd := (l.P(x+h) - l.P(x-h)) / (2 * h)
			an := l.Deriv(x)
			if math.Abs(fd-an) > 1e-4*(1+math.Abs(an)) {
				t.Errorf("%s: Deriv(%g) = %g, fd = %g", l, x, an, fd)
			}
		}
	}
}

func TestShapeDetectionAgreesWithDeclared(t *testing.T) {
	for _, l := range allBuiltins(t) {
		declared := l.Shape()
		if declared == Unknown {
			continue
		}
		span := l.Horizon()
		if math.IsInf(span, 1) {
			span = 64
		}
		detected := DetectShape(l, 0, span, 128)
		ok := detected == declared ||
			(declared == Linear && (detected == Concave || detected == Convex))
		if !ok {
			t.Errorf("%s: declared %v, detected %v", l, declared, detected)
		}
	}
}

func TestPropertyPIsProbability(t *testing.T) {
	// Property: P stays in [0, 1] at arbitrary times for arbitrary
	// family parameters.
	check := func(li uint8, ti uint16, di uint8) bool {
		l := 1 + float64(li)
		x := float64(ti) / 16
		d := 1 + int(di%6)
		u, err := NewPoly(d, l)
		if err != nil {
			return false
		}
		p := u.P(x)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMeanLifetimeUniform(t *testing.T) {
	u, _ := NewUniform(100)
	m, err := MeanLifetime(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-50) > 1e-6 {
		t.Errorf("mean lifetime = %g, want 50", m)
	}
}

func TestMeanLifetimeGeomDecreasing(t *testing.T) {
	// E[R] for survival a^{-t} is 1/ln a.
	a := math.Pow(2, 1.0/16)
	g, _ := NewGeomDecreasing(a)
	m, err := MeanLifetime(g)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Log(a)
	if math.Abs(m-want) > 1e-4*want {
		t.Errorf("mean lifetime = %g, want %g", m, want)
	}
}

func TestInverseP(t *testing.T) {
	u, _ := NewUniform(200)
	x, err := InverseP(u, 0.25, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-150) > 1e-8 {
		t.Errorf("InverseP(0.25) = %g, want 150", x)
	}
}

func TestInversePRejectsBadTarget(t *testing.T) {
	u, _ := NewUniform(10)
	if _, err := InverseP(u, 1.5, 10); err == nil {
		t.Error("accepted target > 1")
	}
	if _, err := InverseP(u, -0.1, 10); err == nil {
		t.Error("accepted negative target")
	}
}

func TestFuncAdapter(t *testing.T) {
	f := Func{
		PFunc:     func(t float64) float64 { return math.Max(0, 1-t/10) },
		DerivFunc: func(t float64) float64 { return -0.1 },
		Curvature: Linear,
		Lifespan:  10,
		Name:      "custom",
	}
	if f.P(5) != 0.5 || f.Shape() != Linear || f.Horizon() != 10 || f.String() != "custom" {
		t.Error("Func adapter misbehaves")
	}
}

func TestValidateCatchesBrokenLife(t *testing.T) {
	increasing := Func{
		PFunc:     func(t float64) float64 { return math.Min(1, t/10) },
		DerivFunc: func(t float64) float64 { return 0.1 },
		Curvature: Linear,
		Lifespan:  10,
	}
	if err := Validate(increasing, ValidateOptions{}); err == nil {
		t.Error("Validate accepted an increasing 'life function'")
	}
	badStart := Func{
		PFunc:     func(t float64) float64 { return 0.5 * math.Max(0, 1-t/10) },
		DerivFunc: func(t float64) float64 { return -0.05 },
		Curvature: Linear,
		Lifespan:  10,
	}
	if err := Validate(badStart, ValidateOptions{}); err == nil {
		t.Error("Validate accepted P(0) != 1")
	}
}

func TestShapeStrings(t *testing.T) {
	if Concave.String() != "concave" || Convex.String() != "convex" ||
		Linear.String() != "linear" || Unknown.String() != "unknown" {
		t.Error("Shape.String mismatch")
	}
	if !Linear.IsConcave() || !Linear.IsConvex() || Concave.IsConvex() || Convex.IsConcave() {
		t.Error("shape predicates wrong")
	}
}
