// Package lifefn defines life functions: the survival curves that drive
// cycle-stealing risk in Rosenberg's model (CMPSCI TR 98-15). A life
// function p gives, for each time t, the probability p(t) that the
// borrowed workstation has not been reclaimed by time t. All of the
// paper's guidelines are expressed in terms of p and its derivative.
//
// The package supplies the three families the paper evaluates (uniform /
// polynomial risk, geometrically decreasing lifespan, geometrically
// increasing risk), the power-law family used by the paper's
// non-existence example, conditional (re-based) life functions for
// progressive scheduling, and empirical life functions fitted from trace
// data.
package lifefn

import (
	"fmt"
	"math"
)

// Shape classifies the curvature of a life function, which the paper's
// t0 upper bounds (Theorem 3.3) and growth-rate laws (Theorem 5.2)
// depend on. A life function is concave when its derivative is
// everywhere nonincreasing, convex when everywhere nondecreasing;
// Linear means both at once (the uniform-risk scenario).
type Shape int

const (
	// Unknown means the curvature is unclassified or mixed.
	Unknown Shape = iota
	// Concave life functions have nonincreasing derivative.
	Concave
	// Convex life functions have nondecreasing derivative.
	Convex
	// Linear life functions are both concave and convex.
	Linear
)

// String returns the lower-case name of the shape.
func (s Shape) String() string {
	switch s {
	case Concave:
		return "concave"
	case Convex:
		return "convex"
	case Linear:
		return "linear"
	default:
		return "unknown"
	}
}

// IsConcave reports whether the shape admits the concave-case bounds.
func (s Shape) IsConcave() bool { return s == Concave || s == Linear }

// IsConvex reports whether the shape admits the convex-case bounds.
func (s Shape) IsConvex() bool { return s == Convex || s == Linear }

// Life is a survival function for a cycle-stealing episode.
//
// Implementations must satisfy the paper's model assumptions: P(0) = 1,
// P nonincreasing and differentiable, and P(t) → 0 (at t = Horizon()
// when the horizon is finite, as t → ∞ otherwise). For t beyond a finite
// horizon, P must return 0.
type Life interface {
	// P returns the probability that the workstation is still available
	// at time t.
	//
	//cs:unit t=time return=probability
	P(t float64) float64
	// Deriv returns dP/dt at time t.
	//
	//cs:unit t=time return=rate
	Deriv(t float64) float64
	// Shape classifies the curvature of P.
	Shape() Shape
	// Horizon returns the potential lifespan L when the episode has a
	// known upper bound, or math.Inf(1) when it does not.
	//
	//cs:unit return=time
	Horizon() float64
	// String names the life function with its parameters.
	String() string
}

// Uniform is the uniform-risk life function p(t) = 1 - t/L of [BCLR97]:
// the risk of reclamation is constant across the potential lifespan L.
// It is both concave and convex.
type Uniform struct {
	L float64 //cs:unit time
}

// NewUniform returns the uniform-risk life function with lifespan L.
//
//cs:unit l=time
func NewUniform(l float64) (Uniform, error) {
	if !(l > 0) || math.IsInf(l, 0) {
		return Uniform{}, fmt.Errorf("lifefn: uniform lifespan must be positive and finite, got %g", l)
	}
	return Uniform{L: l}, nil
}

// P implements Life.
//
//cs:unit t=time return=probability
func (u Uniform) P(t float64) float64 {
	if t <= 0 {
		return 1
	}
	if t >= u.L {
		return 0
	}
	return 1 - t/u.L //lint:allow unitflow the complementary elapsed fraction of L is the uniform survival probability
}

// Deriv implements Life.
//
//cs:unit t=time return=rate
func (u Uniform) Deriv(t float64) float64 {
	if t < 0 || t > u.L {
		return 0
	}
	return -1 / u.L
}

// Shape implements Life.
func (u Uniform) Shape() Shape { return Linear }

// Horizon implements Life.
//
//cs:unit return=time
func (u Uniform) Horizon() float64 { return u.L }

// String implements Life.
func (u Uniform) String() string { return fmt.Sprintf("uniform(L=%g)", u.L) }

// Poly is the concave family p_{d,L}(t) = 1 - t^d/L^d of Section 4.1.
// d = 1 recovers Uniform; larger d concentrates the reclamation risk
// near the end of the lifespan.
type Poly struct {
	D int     // exponent, >= 1
	L float64 //cs:unit time
}

// NewPoly returns the polynomial life function p_{d,L}.
func NewPoly(d int, l float64) (Poly, error) {
	if d < 1 {
		return Poly{}, fmt.Errorf("lifefn: poly exponent must be >= 1, got %d", d)
	}
	if !(l > 0) || math.IsInf(l, 0) {
		return Poly{}, fmt.Errorf("lifefn: poly lifespan must be positive and finite, got %g", l)
	}
	return Poly{D: d, L: l}, nil
}

// P implements Life.
func (p Poly) P(t float64) float64 {
	if t <= 0 {
		return 1
	}
	if t >= p.L {
		return 0
	}
	return 1 - math.Pow(t/p.L, float64(p.D))
}

// Deriv implements Life.
func (p Poly) Deriv(t float64) float64 {
	if t < 0 || t > p.L {
		return 0
	}
	d := float64(p.D)
	if t == 0 && p.D > 1 {
		return 0
	}
	return -d / p.L * math.Pow(t/p.L, d-1)
}

// Shape implements Life.
func (p Poly) Shape() Shape {
	if p.D == 1 {
		return Linear
	}
	return Concave
}

// Horizon implements Life.
//
//cs:unit return=time
func (p Poly) Horizon() float64 { return p.L }

// String implements Life.
func (p Poly) String() string { return fmt.Sprintf("poly(d=%d, L=%g)", p.D, p.L) }

// GeomDecreasing is the geometrically decreasing lifespan life function
// p_a(t) = a^{-t} of Section 4.2: the episode has a "half-life"; the
// conditional risk is identical at every instant. It is convex with an
// unbounded horizon.
type GeomDecreasing struct {
	A float64 // risk factor, > 1
}

// NewGeomDecreasing returns the life function a^{-t}.
func NewGeomDecreasing(a float64) (GeomDecreasing, error) {
	if !(a > 1) || math.IsInf(a, 0) {
		return GeomDecreasing{}, fmt.Errorf("lifefn: geometric risk factor must be > 1 and finite, got %g", a)
	}
	return GeomDecreasing{A: a}, nil
}

// LnA returns ln a, the hazard rate of the episode.
func (g GeomDecreasing) LnA() float64 { return math.Log(g.A) }

// P implements Life.
func (g GeomDecreasing) P(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-t * g.LnA())
}

// Deriv implements Life.
func (g GeomDecreasing) Deriv(t float64) float64 {
	if t < 0 {
		return 0
	}
	return -g.LnA() * math.Exp(-t*g.LnA())
}

// Shape implements Life.
func (g GeomDecreasing) Shape() Shape { return Convex }

// Horizon implements Life.
func (g GeomDecreasing) Horizon() float64 { return math.Inf(1) }

// String implements Life.
func (g GeomDecreasing) String() string { return fmt.Sprintf("geomdec(a=%g)", g.A) }

// GeomIncreasing is the geometrically increasing risk life function
// p(t) = (2^L - 2^t)/(2^L - 1) of Section 4.3, modelling an opportunity
// (such as a coffee break) whose interruption risk doubles at every time
// unit. It is concave with horizon L.
//
// The implementation evaluates (1 - 2^{t-L}) / (1 - 2^{-L}) to stay
// finite for large L.
type GeomIncreasing struct {
	L float64 //cs:unit time
}

// NewGeomIncreasing returns the doubling-risk life function with
// lifespan L.
func NewGeomIncreasing(l float64) (GeomIncreasing, error) {
	if !(l > 0) || math.IsInf(l, 0) {
		return GeomIncreasing{}, fmt.Errorf("lifefn: geomInc lifespan must be positive and finite, got %g", l)
	}
	return GeomIncreasing{L: l}, nil
}

// P implements Life.
func (g GeomIncreasing) P(t float64) float64 {
	if t <= 0 {
		return 1
	}
	if t >= g.L {
		return 0
	}
	num := -math.Expm1((t - g.L) * math.Ln2) // 1 - 2^{t-L}
	den := -math.Expm1(-g.L * math.Ln2)      // 1 - 2^{-L}
	return num / den
}

// Deriv implements Life.
func (g GeomIncreasing) Deriv(t float64) float64 {
	if t < 0 || t > g.L {
		return 0
	}
	den := -math.Expm1(-g.L * math.Ln2)
	return -math.Ln2 * math.Exp((t-g.L)*math.Ln2) / den
}

// Shape implements Life.
func (g GeomIncreasing) Shape() Shape { return Concave }

// Horizon implements Life.
//
//cs:unit return=time
func (g GeomIncreasing) Horizon() float64 { return g.L }

// String implements Life.
func (g GeomIncreasing) String() string { return fmt.Sprintf("geominc(L=%g)", g.L) }

// PowerLaw is the heavy-tailed life function p(t) = (1+t)^{-d}. For
// d > 1 the paper's Corollary 3.2 shows it admits no optimal schedule;
// the family exists here to exercise that existence test. It is convex
// with an unbounded horizon.
type PowerLaw struct {
	D float64 // tail exponent, > 0
}

// NewPowerLaw returns the life function (1+t)^{-d}.
func NewPowerLaw(d float64) (PowerLaw, error) {
	if !(d > 0) || math.IsInf(d, 0) {
		return PowerLaw{}, fmt.Errorf("lifefn: power-law exponent must be positive and finite, got %g", d)
	}
	return PowerLaw{D: d}, nil
}

// P implements Life.
func (p PowerLaw) P(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Pow(1+t, -p.D)
}

// Deriv implements Life.
func (p PowerLaw) Deriv(t float64) float64 {
	if t < 0 {
		return 0
	}
	return -p.D * math.Pow(1+t, -p.D-1)
}

// Shape implements Life.
func (p PowerLaw) Shape() Shape { return Convex }

// Horizon implements Life.
func (p PowerLaw) Horizon() float64 { return math.Inf(1) }

// String implements Life.
func (p PowerLaw) String() string { return fmt.Sprintf("powerlaw(d=%g)", p.D) }

// Weibull is the survival function exp(-(t/Scale)^K). For K <= 1 it is
// convex; for K > 1 it has a flex point, so its shape is Unknown and
// only the paper's shape-free results (Theorems 3.1, 3.2) apply — it is
// the package's stock example of a merely differentiable life function.
type Weibull struct {
	K     float64 // shape, > 0
	Scale float64 //cs:unit time
}

// NewWeibull returns the Weibull survival life function.
func NewWeibull(k, scale float64) (Weibull, error) {
	if !(k > 0) || !(scale > 0) {
		return Weibull{}, fmt.Errorf("lifefn: weibull parameters must be positive, got k=%g scale=%g", k, scale)
	}
	return Weibull{K: k, Scale: scale}, nil
}

// P implements Life.
func (w Weibull) P(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-math.Pow(t/w.Scale, w.K))
}

// Deriv implements Life.
func (w Weibull) Deriv(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t == 0 {
		if w.K < 1 {
			return math.Inf(-1)
		}
		if w.K > 1 {
			return 0
		}
		return -1 / w.Scale
	}
	u := t / w.Scale
	return -w.K / w.Scale * math.Pow(u, w.K-1) * w.P(t)
}

// Shape implements Life.
func (w Weibull) Shape() Shape {
	if w.K <= 1 {
		return Convex
	}
	return Unknown
}

// Horizon implements Life.
func (w Weibull) Horizon() float64 { return math.Inf(1) }

// String implements Life.
func (w Weibull) String() string { return fmt.Sprintf("weibull(k=%g, scale=%g)", w.K, w.Scale) }

// Func adapts arbitrary closures into a Life. It is the escape hatch for
// tests and for callers with bespoke survival curves.
type Func struct {
	PFunc     func(float64) float64
	DerivFunc func(float64) float64
	Curvature Shape
	Lifespan  float64 //cs:unit time
	Name      string
}

// P implements Life.
func (f Func) P(t float64) float64 { return f.PFunc(t) }

// Deriv implements Life.
func (f Func) Deriv(t float64) float64 { return f.DerivFunc(t) }

// Shape implements Life.
func (f Func) Shape() Shape { return f.Curvature }

// Horizon implements Life.
//
//cs:unit return=time
func (f Func) Horizon() float64 { return f.Lifespan }

// String implements Life.
func (f Func) String() string {
	if f.Name != "" {
		return f.Name
	}
	return "func"
}
