// Package rng provides a small deterministic random number generator and
// the distributions the simulators need. Monte-Carlo experiments must be
// reproducible bit-for-bit across runs and machines, so the package uses
// an explicitly seeded xoshiro256** generator (seeded through splitmix64)
// instead of math/rand's global, version-dependent source.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** pseudorandom generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, which guarantees
// a well-mixed, nonzero internal state for any seed (including 0).
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Split derives an independent child generator from the parent's stream.
// Parent and child may be used concurrently from different goroutines
// (after the split) without sharing state; simulations split one root
// seed per workstation / per replication.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), never exactly 0 —
// convenient for inverse-transform sampling through logarithms.
func (r *Source) Float64Open() float64 {
	for {
		if u := r.Float64(); u > 0 {
			return u
		}
	}
}

// Uniform returns a uniform value in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection keeps the distribution exact.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Exponential returns a draw from the exponential distribution with the
// given rate (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Weibull returns a draw with the given shape and scale parameters
// (survival exp(-(t/scale)^shape)). It panics unless both are positive.
func (r *Source) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	return scale * math.Pow(-math.Log(r.Float64Open()), 1/shape)
}

// LogNormal returns exp(N(mu, sigma)). It panics if sigma < 0.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	if sigma < 0 {
		panic("rng: LogNormal with negative sigma")
	}
	return math.Exp(mu + sigma*r.Normal())
}

// Normal returns a standard normal draw via the Box–Muller transform.
func (r *Source) Normal() float64 {
	u := r.Float64Open()
	v := r.Float64Open()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// FromSurvival draws a nonnegative lifetime whose survival function is
// surv (surv(0)=1, nonincreasing, limit 0), by inverse-transform
// sampling: it solves surv(t) = u by bisection on a geometrically grown
// bracket. horizon > 0 caps the search (and the lifetime) for survival
// functions with bounded support; pass 0 for unbounded support.
func (r *Source) FromSurvival(surv func(float64) float64, horizon float64) float64 {
	u := r.Float64Open()
	// Grow hi until surv(hi) <= u.
	hi := 1.0
	if horizon > 0 {
		hi = horizon
	} else {
		for surv(hi) > u {
			hi *= 2
			if hi > 1e30 {
				return hi
			}
		}
	}
	lo := 0.0
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := lo + (hi-lo)/2
		if surv(mid) > u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}
