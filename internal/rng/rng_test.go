package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between differently seeded streams", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	v1, v2 := r.Uint64(), r.Uint64()
	if v1 == 0 && v2 == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between parent and split child", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g outside [0, 1)", v)
		}
	}
}

func TestFloat64MeanAndVariance(t *testing.T) {
	r := New(11)
	n := 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %g, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %g, want ~1/12", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70_000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d has %d hits, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExponentialMean(t *testing.T) {
	r := New(9)
	n := 200_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %g, want 0.5", mean)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	r := New(13)
	n := 100_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, 3)
	}
	if mean := sum / float64(n); math.Abs(mean-3) > 0.1 {
		t.Errorf("Weibull(1,3) mean = %g, want 3", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	n := 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g", variance)
	}
}

func TestFromSurvivalUniform(t *testing.T) {
	// Survival 1 - t/L on [0, L]: draws must be Uniform(0, L).
	r := New(23)
	l := 50.0
	surv := func(t float64) float64 {
		if t >= l {
			return 0
		}
		return 1 - t/l
	}
	n := 100_000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.FromSurvival(surv, l)
		if v < 0 || v > l {
			t.Fatalf("draw %g outside [0, %g]", v, l)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-25) > 0.3 {
		t.Errorf("mean = %g, want 25", mean)
	}
}

func TestFromSurvivalExponentialUnbounded(t *testing.T) {
	r := New(29)
	surv := func(t float64) float64 { return math.Exp(-t) }
	n := 50_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.FromSurvival(surv, 0)
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.05 {
		t.Errorf("mean = %g, want 1", mean)
	}
}

func TestFromSurvivalPropertyWithinSupport(t *testing.T) {
	// Property: draws from a bounded survival curve stay in [0, horizon].
	check := func(seed uint32, li uint8) bool {
		l := 1 + float64(li)
		r := New(uint64(seed))
		surv := func(t float64) float64 {
			if t >= l {
				return 0
			}
			return 1 - t/l
		}
		for i := 0; i < 20; i++ {
			v := r.FromSurvival(surv, l)
			if v < 0 || v > l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(31)
	for i := 0; i < 10_000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %g", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(37)
	for i := 0; i < 10_000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal = %g", v)
		}
	}
}
