package trace_test

import (
	"fmt"
	"log"

	"repro/internal/lifefn"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Fit a life function from owner-absence observations, non-parametric
// (Kaplan–Meier + smoothing) and parametric (exponential MLE) side by
// side.
func Example() {
	truth, err := lifefn.NewGeomDecreasing(1.0442737824274138) // half-life 16
	if err != nil {
		log.Fatal(err)
	}
	obs := trace.SampleAbsences(truth, 2000, rng.New(42))

	km, err := trace.FitLife(obs, trace.FitOptions{Knots: 24})
	if err != nil {
		log.Fatal(err)
	}
	mle, err := trace.FitGeomDecreasing(obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KM fit distance:  %.3f\n", trace.KSDistance(km, truth, 64, 200))
	fmt.Printf("MLE fit distance: %.3f\n", trace.KSDistance(mle, truth, 64, 200))
	// Output:
	// KM fit distance:  0.012
	// MLE fit distance: 0.004
}
